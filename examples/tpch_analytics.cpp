// TPC-H nested analytics: builds the micro-benchmark's customer->orders->
// lineitems hierarchy from the flat TPC-H relations, then answers a
// nested-to-flat question ("total spend per part name, per customer") on the
// standard and shredded routes, comparing execution statistics.
//
// This is the workload family of Figure 7 driven through the public API.
#include <cstdio>

#include "exec/pipeline.h"
#include "shred/shredded_type.h"
#include "tpch/generator.h"
#include "tpch/queries.h"
#include "util/stopwatch.h"
#include "util/strings.h"

using namespace trance;

namespace {

Status RegisterAll(exec::Executor* executor, const tpch::TpchData& d) {
  struct E {
    const tpch::Table* t;
    const char* n;
  };
  for (const E& e : {E{&d.region, "Region"}, E{&d.nation, "Nation"},
                     E{&d.customer, "Customer"}, E{&d.orders, "Orders"},
                     E{&d.lineitem, "Lineitem"}, E{&d.part, "Part"}}) {
    TRANCE_ASSIGN_OR_RETURN(
        runtime::Dataset ds,
        runtime::Source(executor->cluster(), e.t->schema, e.t->rows, e.n));
    executor->Register(e.n, ds);
    executor->Register(shred::FlatInputName(e.n), std::move(ds));
  }
  return Status::OK();
}

Status Run() {
  tpch::TpchConfig cfg;
  cfg.scale = 0.002;
  tpch::TpchData data = tpch::Generate(cfg);
  std::printf("Generated TPC-H at scale %.3f: %zu lineitems, %zu orders, "
              "%zu customers, %zu parts\n\n",
              cfg.scale, data.lineitem.rows.size(), data.orders.rows.size(),
              data.customer.rows.size(), data.part.rows.size());

  const int depth = 2;  // customer -> orders -> lineitems
  TRANCE_ASSIGN_OR_RETURN(nrc::Program build_nested,
                          tpch::FlatToNested(depth, tpch::Width::kNarrow));
  TRANCE_ASSIGN_OR_RETURN(nrc::Program to_flat,
                          tpch::NestedToFlat(depth, tpch::Width::kNarrow));

  // --- Standard route ---
  runtime::Cluster std_cluster(runtime::ClusterConfig{.num_partitions = 8});
  exec::Executor std_exec(&std_cluster, {});
  TRANCE_RETURN_NOT_OK(RegisterAll(&std_exec, data));
  TRANCE_ASSIGN_OR_RETURN(runtime::Dataset nested,
                          exec::RunStandard(build_nested, &std_exec, {}));
  std_exec.Register("COP", std::move(nested));
  std_cluster.stats().Reset();
  Stopwatch w1;
  TRANCE_ASSIGN_OR_RETURN(runtime::Dataset flat_std,
                          exec::RunStandard(to_flat, &std_exec, {}));
  std::printf("STANDARD: %zu result rows, wall %.3fs\n  %s\n\n",
              flat_std.NumRows(), w1.ElapsedSeconds(),
              std_cluster.stats().ToString().c_str());

  // --- Shredded route (no unshredding needed: flat output) ---
  runtime::Cluster sh_cluster(runtime::ClusterConfig{.num_partitions = 8});
  exec::Executor sh_exec(&sh_cluster, {});
  TRANCE_RETURN_NOT_OK(RegisterAll(&sh_exec, data));
  TRANCE_ASSIGN_OR_RETURN(exec::ShreddedRun nested_sh,
                          exec::RunShredded(build_nested, &sh_exec, {}));
  sh_exec.Register(shred::FlatInputName("COP"), nested_sh.top);
  for (const auto& [path, ds] : nested_sh.dicts) {
    sh_exec.Register(shred::DictInputName("COP", path), ds);
  }
  sh_cluster.stats().Reset();
  Stopwatch w2;
  TRANCE_ASSIGN_OR_RETURN(exec::ShreddedRun flat_sh,
                          exec::RunShredded(to_flat, &sh_exec, {}));
  std::printf("SHRED: %zu result rows, wall %.3fs\n  %s\n\n",
              flat_sh.top.NumRows(), w2.ElapsedSeconds(),
              sh_cluster.stats().ToString().c_str());

  // Show a few result rows.
  std::printf("sample rows (name, pname, total):\n");
  for (const auto& row : runtime::Take(flat_sh.top, 5)) {
    std::printf("  %s\n", runtime::RowToString(row).c_str());
  }
  return Status::OK();
}

}  // namespace

int main() {
  Status st = Run();
  if (!st.ok()) {
    std::printf("FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
