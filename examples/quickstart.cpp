// Quickstart: the paper's running example (Example 1) end to end.
//
// Builds the nested COP relation and the flat Part relation, expresses the
// query "for each customer and order, the total amount spent per part name"
// in NRC, and runs it three ways:
//   1. the reference interpreter (centralized semantics),
//   2. the standard compilation route (unnesting -> plan -> distributed
//      runtime),
//   3. the shredded compilation route (symbolic shredding ->
//      materialization -> flat plans), with unshredding.
// Prints the program, the materialized shredded program, results, and the
// distributed execution statistics of both routes.
#include <cstdio>
#include <iostream>

#include "exec/pipeline.h"
#include "nrc/builder.h"
#include "nrc/interp.h"
#include "nrc/printer.h"
#include "shred/materialize.h"

using namespace trance;
using namespace trance::nrc::dsl;
using nrc::Expr;
using nrc::Type;
using nrc::Value;

namespace {

Value T2(const std::string& a, Value va, const std::string& b, Value vb) {
  return Value::Tuple({{a, std::move(va)}, {b, std::move(vb)}});
}

nrc::Program RunningExample() {
  nrc::Program p;
  p.inputs = {
      {"COP",
       BagTu({{"cname", Type::String()},
              {"corders",
               BagTu({{"odate", Type::Int()},
                      {"oparts", BagTu({{"pid", Type::Int()},
                                        {"qty", Type::Real()}})}})}})},
      {"Part", BagTu({{"pid", Type::Int()},
                      {"pname", Type::String()},
                      {"price", Type::Real()}})}};
  p.assignments.push_back(
      {"Q",
       For("cop", V("COP"),
           SngTup(
               {{"cname", V("cop.cname")},
                {"corders",
                 For("co", V("cop.corders"),
                     SngTup({{"odate", V("co.odate")},
                             {"oparts",
                              SumBy({"pname"}, {"total"},
                                    For("op", V("co.oparts"),
                                        For("p", V("Part"),
                                            If(Eq(V("op.pid"), V("p.pid")),
                                               SngTup({{"pname", V("p.pname")},
                                                       {"total",
                                                        Mul(V("op.qty"),
                                                            V("p.price"))}})))))}}))}}))});
  return p;
}

std::map<std::string, Value> MakeInputs() {
  Value part = Value::Bag(
      {Value::Tuple({{"pid", Value::Int(1)},
                     {"pname", Value::Str("bolt")},
                     {"price", Value::Real(2.0)}}),
       Value::Tuple({{"pid", Value::Int(2)},
                     {"pname", Value::Str("nut")},
                     {"price", Value::Real(1.0)}}),
       Value::Tuple({{"pid", Value::Int(3)},
                     {"pname", Value::Str("gear")},
                     {"price", Value::Real(5.0)}})});
  Value oparts1 =
      Value::Bag({T2("pid", Value::Int(1), "qty", Value::Real(3)),
                  T2("pid", Value::Int(2), "qty", Value::Real(4)),
                  T2("pid", Value::Int(1), "qty", Value::Real(1))});
  Value oparts2 =
      Value::Bag({T2("pid", Value::Int(3), "qty", Value::Real(2))});
  Value corders =
      Value::Bag({T2("odate", Value::Int(19940101), "oparts", oparts1),
                  T2("odate", Value::Int(19940215), "oparts",
                     Value::EmptyBag()),
                  T2("odate", Value::Int(19940330), "oparts", oparts2)});
  Value cop = Value::Bag(
      {T2("cname", Value::Str("alice"), "corders", corders),
       T2("cname", Value::Str("bob"), "corders", Value::EmptyBag())});
  return {{"COP", cop}, {"Part", part}};
}

}  // namespace

int main() {
  nrc::Program program = RunningExample();
  auto inputs = MakeInputs();

  std::printf("=== Source NRC program ===\n%s\n",
              nrc::PrintProgram(program).c_str());

  // 1. Reference interpreter.
  nrc::Interpreter interp;
  auto oracle = interp.EvalProgram(program, inputs);
  if (!oracle.ok()) {
    std::cerr << "interpreter failed: " << oracle.status() << "\n";
    return 1;
  }
  std::printf("=== Interpreter result ===\n%s\n\n",
              nrc::Canonicalize(oracle->at("Q")).ToString().c_str());

  // 2. Standard compilation route on the distributed runtime.
  runtime::Cluster cluster1(runtime::ClusterConfig{.num_partitions = 4});
  auto standard = exec::RunStandardOnValues(program, inputs, &cluster1, {});
  if (!standard.ok()) {
    std::cerr << "standard route failed: " << standard.status() << "\n";
    return 1;
  }
  std::printf("=== Standard route: agrees with interpreter: %s ===\n",
              nrc::DeepBagEquals(*standard, oracle->at("Q")) ? "yes" : "NO");
  std::printf("%s\n\n", cluster1.stats().ToString().c_str());

  // 3. Shredded compilation route: show the materialized program, run it.
  auto mat = shred::ShredAndMaterialize(
      program, shred::MaterializeMode::kDomainElimination);
  if (!mat.ok()) {
    std::cerr << "shredding failed: " << mat.status() << "\n";
    return 1;
  }
  std::printf("=== Materialized shredded program ===\n%s\n",
              nrc::PrintProgram(mat->program).c_str());

  runtime::Cluster cluster2(runtime::ClusterConfig{.num_partitions = 4});
  auto shredded = exec::RunShreddedOnValues(program, inputs, &cluster2, {});
  if (!shredded.ok()) {
    std::cerr << "shredded route failed: " << shredded.status() << "\n";
    return 1;
  }
  std::printf("=== Shredded route: agrees with interpreter: %s ===\n",
              nrc::DeepBagEquals(*shredded, oracle->at("Q")) ? "yes" : "NO");
  std::printf("%s\n", cluster2.stats().ToString().c_str());
  return 0;
}
