// Observability tour: runs a nested TPC-H query on the standard and
// shredded routes with tracing enabled, prints EXPLAIN ANALYZE for both
// (the compiled plan with per-operator runtime stats joined on), and writes
// a Chrome trace_event JSON loadable in chrome://tracing or Perfetto.
#include <cstdio>

#include "exec/pipeline.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "shred/shredded_type.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

using namespace trance;

namespace {

Status RegisterAll(exec::Executor* executor, const tpch::TpchData& d) {
  struct E {
    const tpch::Table* t;
    const char* n;
  };
  for (const E& e : {E{&d.region, "Region"}, E{&d.nation, "Nation"},
                     E{&d.customer, "Customer"}, E{&d.orders, "Orders"},
                     E{&d.lineitem, "Lineitem"}, E{&d.part, "Part"}}) {
    TRANCE_ASSIGN_OR_RETURN(
        runtime::Dataset ds,
        runtime::Source(executor->cluster(), e.t->schema, e.t->rows, e.n));
    executor->Register(e.n, ds);
    executor->Register(shred::FlatInputName(e.n), std::move(ds));
  }
  return Status::OK();
}

Status Run() {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.set_enabled(true);

  tpch::TpchConfig cfg;
  cfg.scale = 0.004;
  tpch::TpchData data = tpch::Generate(cfg);

  const int depth = 2;  // customer -> orders -> lineitems
  TRANCE_ASSIGN_OR_RETURN(nrc::Program build_nested,
                          tpch::FlatToNested(depth, tpch::Width::kNarrow));

  // --- Standard route ---
  {
    runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 8});
    exec::Executor executor(&cluster, {});
    TRANCE_RETURN_NOT_OK(RegisterAll(&executor, data));
    plan::PlanProgram compiled;
    TRANCE_ASSIGN_OR_RETURN(
        runtime::Dataset out,
        exec::RunStandard(build_nested, &executor, {}, &compiled));
    std::printf("=== EXPLAIN ANALYZE (standard, flat-to-nested d%d, "
                "%zu rows) ===\n%s\n",
                depth, out.NumRows(),
                obs::ExplainAnalyze(compiled, cluster.stats()).c_str());
    obs::AppendJobStagesToTrace(cluster.stats(), &tracer, "standard");
  }

  // --- Shredded route ---
  {
    runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 8});
    exec::Executor executor(&cluster, {});
    TRANCE_RETURN_NOT_OK(RegisterAll(&executor, data));
    plan::PlanProgram compiled;
    TRANCE_ASSIGN_OR_RETURN(
        exec::ShreddedRun run,
        exec::RunShredded(build_nested, &executor, {},
                          shred::MaterializeMode::kDomainElimination,
                          &compiled));
    std::printf("=== EXPLAIN ANALYZE (shredded, flat-to-nested d%d, "
                "top %zu rows, %zu dicts) ===\n%s\n",
                depth, run.top.NumRows(), run.dicts.size(),
                obs::ExplainAnalyze(compiled, cluster.stats()).c_str());
    obs::AppendJobStagesToTrace(cluster.stats(), &tracer, "shredded");
  }

  const char* trace_path = "explain_analyze_trace.json";
  TRANCE_RETURN_NOT_OK(
      obs::WriteFile(trace_path, tracer.ToChromeTraceJson()));
  std::printf("wrote %s (%zu events) — open in chrome://tracing\n",
              trace_path, tracer.events().size());
  return Status::OK();
}

}  // namespace

int main() {
  Status st = Run();
  if (!st.ok()) {
    std::printf("FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
