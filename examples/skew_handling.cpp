// Skew handling (Section 5): detects heavy keys by sampling, splits a skewed
// dataset into a skew-triple, and compares a plain shuffle join against the
// skew-aware join (light part shuffled, heavy part joined by broadcasting
// the matching rows of the small side).
#include <cstdio>

#include "runtime/cluster.h"
#include "runtime/ops.h"
#include "skew/skew.h"
#include "util/random.h"
#include "util/strings.h"

using namespace trance;
using runtime::Field;
using runtime::Row;

int main() {
  runtime::ClusterConfig cfg;
  cfg.num_partitions = 8;
  cfg.stage_overhead_seconds = 0.005;
  cfg.seconds_per_net_byte = 4e-8;
  runtime::Cluster cluster(cfg);

  // A big skewed fact side (Zipf over keys) and a small dimension side.
  Rng rng(1);
  ZipfSampler zipf(512, 2.5);
  std::vector<Row> fact;
  for (int i = 0; i < 200000; ++i) {
    fact.push_back(Row({Field::Int(static_cast<int64_t>(zipf.Sample(&rng))),
                        Field::Real(rng.NextDouble())}));
  }
  std::vector<Row> dim;
  for (int64_t k = 0; k < 512; ++k) {
    dim.push_back(Row({Field::Int(k), Field::Str("name_" + std::to_string(k))}));
  }
  runtime::Schema fact_schema({{"k", nrc::Type::Int()},
                               {"v", nrc::Type::Real()}});
  runtime::Schema dim_schema({{"k2", nrc::Type::Int()},
                              {"name", nrc::Type::String()}});
  auto f = runtime::Source(&cluster, fact_schema, fact, "fact").ValueOrDie();
  auto d = runtime::Source(&cluster, dim_schema, dim, "dim").ValueOrDie();

  // Heavy-key detection by per-partition sampling. This demo prints the key
  // values, so it detects with the legacy KeyView storage (the debug
  // rendering type); membership — and the joins below, which run on the
  // default binary-codec path — is identical either way.
  cluster.set_key_codec_enabled(false);
  skew::HeavyKeySet hk = skew::DetectHeavyKeys(&cluster, f, {0});
  cluster.set_key_codec_enabled(true);
  std::printf("detected %zu heavy keys (threshold %.1f%% of sampled tuples "
              "per partition):", hk.keys.size(),
              100 * cluster.config().heavy_key_threshold);
  for (const auto& k : hk.keys) {
    std::printf(" %lld", static_cast<long long>(k.fields[0].AsInt()));
  }
  std::printf("\n\n");

  // Plain shuffle join: all values of a heavy key land on one worker.
  cluster.stats().Reset();
  auto plain = runtime::HashJoin(&cluster, f, d, {0}, {0},
                                 runtime::JoinType::kInner, "plain_join")
                   .ValueOrDie();
  std::printf("plain shuffle join:  %8zu rows, shuffle %9s, max recv %9s, "
              "sim %.3fs\n",
              plain.NumRows(),
              FormatBytes(cluster.stats().total_shuffle_bytes()).c_str(),
              FormatBytes(cluster.stats().stages().back()
                              .max_partition_recv_bytes)
                  .c_str(),
              cluster.stats().sim_seconds());

  // Skew-aware join: the heavy keys' rows stay where they are; the matching
  // dimension rows are broadcast.
  cluster.stats().Reset();
  auto lt = skew::SkewTriple::AllLight(f);
  auto rt = skew::SkewTriple::AllLight(d);
  auto aware = skew::SkewAwareJoin(&cluster, lt, rt, {0}, {0},
                                   runtime::JoinType::kInner, "skew_join")
                   .ValueOrDie();
  std::printf("skew-aware join:     %8zu rows, shuffle %9s, sim %.3fs "
              "(light %zu + heavy %zu)\n",
              aware.NumRows(),
              FormatBytes(cluster.stats().total_shuffle_bytes()).c_str(),
              cluster.stats().sim_seconds(), aware.light.NumRows(),
              aware.heavy.NumRows());
  return 0;
}
