// Biomedical end-to-end pipeline: runs all five steps of the E2E analysis
// (Section 6's real-world benchmark shape) on the shredded route, keeping
// every intermediate in shredded form — the pattern the paper recommends for
// pipelines whose final output is flat.
#include <cstdio>

#include "biomed/generator.h"
#include "biomed/pipeline.h"
#include "exec/bridge.h"
#include "exec/pipeline.h"
#include "shred/shredded_type.h"
#include "util/strings.h"

using namespace trance;

namespace {

Status Run() {
  biomed::BiomedConfig cfg = biomed::BiomedConfig::Small();
  biomed::BiomedData data = biomed::Generate(cfg);
  std::printf("Synthetic ICGC-shaped inputs: %zu samples, %zu network edges, "
              "%zu expression rows\n\n",
              data.bn2.size(), data.bf2.size(), data.bf1.size());

  runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 8});
  exec::Executor executor(&cluster, {});

  // Flat inputs (they are their own shredded form).
  struct E {
    const runtime::Schema* s;
    const std::vector<runtime::Row>* r;
    const char* n;
  };
  for (const E& e : {E{&data.bf1_schema, &data.bf1, "BF1"},
                     E{&data.bf2_schema, &data.bf2, "BF2"},
                     E{&data.bf3_schema, &data.bf3, "BF3"}}) {
    TRANCE_ASSIGN_OR_RETURN(
        runtime::Dataset ds,
        runtime::Source(&cluster, *e.s, *e.r, e.n));
    executor.Register(e.n, ds);
    executor.Register(shred::FlatInputName(e.n), std::move(ds));
  }
  // Nested inputs, shredded.
  {
    TRANCE_ASSIGN_OR_RETURN(nrc::Value bn2,
                            exec::RowsToValue(data.bn2, data.bn2_schema));
    TRANCE_RETURN_NOT_OK(exec::RegisterShreddedInput(
        &executor, "BN2", biomed::Bn2Type(), bn2, 0));
    TRANCE_ASSIGN_OR_RETURN(nrc::Value bn1,
                            exec::RowsToValue(data.bn1, data.bn1_schema));
    TRANCE_RETURN_NOT_OK(exec::RegisterShreddedInput(
        &executor, "BN1", biomed::Bn1Type(), bn1, 90000000));
  }

  for (int step = 1; step <= biomed::kNumSteps; ++step) {
    TRANCE_ASSIGN_OR_RETURN(nrc::Program program, biomed::StepProgram(step));
    cluster.stats().Reset();
    TRANCE_ASSIGN_OR_RETURN(exec::ShreddedRun run,
                            exec::RunShredded(program, &executor, {}));
    std::string var = "Step" + std::to_string(step);
    executor.Register(shred::FlatInputName(var), run.top);
    for (const auto& [path, ds] : run.dicts) {
      executor.Register(shred::DictInputName(var, path), ds);
    }
    std::printf("Step%d: top=%zu rows", step, run.top.NumRows());
    for (const auto& [path, ds] : run.dicts) {
      std::printf(", dict[%s]=%zu rows", path.c_str(), ds.NumRows());
    }
    std::printf("  (shuffle %s, sim %.2fs)\n",
                FormatBytes(cluster.stats().total_shuffle_bytes()).c_str(),
                cluster.stats().sim_seconds());
    if (step == biomed::kNumSteps) {
      std::printf("\ntop driver-gene candidates (gene, hub score):\n");
      for (const auto& row : runtime::Take(run.top, 8)) {
        std::printf("  %s\n", runtime::RowToString(row).c_str());
      }
    }
  }
  return Status::OK();
}

}  // namespace

int main() {
  Status st = Run();
  if (!st.ok()) {
    std::printf("FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
