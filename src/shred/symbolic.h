// Symbolic query shredding (Section 4, Fig. 4): the recursive functions F
// and D translating a source NRC expression e into
//   e^F — computing the flat version of the output (labels in place of
//         inner bags), and
//   e^D — the dictionary tree: a tuple expression holding, per bag-valued
//         attribute, a lambda from labels to flat bags (a^fun) and the child
//         dictionary tree wrapped in a singleton bag (a^child).
//
// Labels are NewLabel expressions capturing only the *relevant* attributes
// of the free variables (the paper's refinement): exactly the flat-variable
// projections the shredded bag body uses. Dictionary lambdas deconstruct
// them with the match construct, whose bound tuple carries canonical
// parameter names "<flatvar>.<attr>".
//
// groupBy is desugared (dedup of keys + correlated subquery) before
// shredding, since its output introduces a fresh nesting level.
#ifndef TRANCE_SHRED_SYMBOLIC_H_
#define TRANCE_SHRED_SYMBOLIC_H_

#include <map>
#include <string>

#include "nrc/expr.h"
#include "nrc/typecheck.h"
#include "util/status.h"

namespace trance {
namespace shred {

/// The shredded form of one expression.
struct ShreddedQuery {
  nrc::ExprPtr flat;       // e^F
  nrc::ExprPtr dict_tree;  // e^D (tuple expression)
};

/// Desugars every groupBy in `e` into dedup-of-keys + correlated subquery
/// (requires the expression to typecheck under `env`).
StatusOr<nrc::ExprPtr> DesugarGroupBy(const nrc::ExprPtr& e,
                                      const nrc::TypeEnv& env);

/// Shredding context: how source variables map to their flat/dict names.
struct VarMapping {
  std::string flat_name;
  std::string dict_name;
};

class SymbolicShredder {
 public:
  /// `env` types the source free variables (inputs / prior assignments);
  /// `mapping` names their shredded counterparts (defaults to name+"_F",
  /// name+"_D").
  SymbolicShredder(nrc::TypeEnv env,
                   std::map<std::string, VarMapping> mapping);

  /// Runs Fig. 4 on a (groupBy-desugared) source expression.
  StatusOr<ShreddedQuery> Shred(const nrc::ExprPtr& e);

 private:
  struct FD {
    nrc::ExprPtr f;
    nrc::ExprPtr d;
  };

  StatusOr<FD> ShredImpl(const nrc::ExprPtr& e);
  StatusOr<nrc::ExprPtr> EmptyDictTree(const nrc::TypePtr& source_bag_type);

  /// Builds the NewLabel / lambda-with-match pair for a bag-valued tuple
  /// attribute whose shredded body is `body_f`.
  StatusOr<FD> MakeLabelAndDict(const nrc::ExprPtr& body_f,
                                const nrc::ExprPtr& body_d);

  nrc::TypeEnv src_env_;                        // source-variable types
  std::map<std::string, VarMapping> mapping_;   // source var -> names
  std::map<std::string, nrc::TypePtr> flat_env_;  // flat-variable types
  nrc::Typechecker src_types_;
  int match_counter_ = 0;
};

}  // namespace shred
}  // namespace trance

#endif  // TRANCE_SHRED_SYMBOLIC_H_
