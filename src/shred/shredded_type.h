// Shredded type derivation (Section 4): T -> (T^F, T^D).
//
// T^F replaces every bag-valued attribute with a Label; T^D is a tuple type
// holding, for each bag-valued attribute a, a dictionary a^fun of type
// Label -> Bag(T^F_a) and a child dictionary tree a^child wrapped in a
// singleton bag (the type system forbids tuples directly inside tuples).
//
// This module also provides the "dictionary walk": the list of dictionary
// paths of a nested type (e.g. COP -> ["corders", "corders_oparts"]) with,
// for each path, the flat element type of the dictionary's bags and the
// relational schema (label column + element fields) used by the runtime's
// dictionary representation.
#ifndef TRANCE_SHRED_SHREDDED_TYPE_H_
#define TRANCE_SHRED_SHREDDED_TYPE_H_

#include <string>
#include <vector>

#include "nrc/type.h"
#include "util/status.h"

namespace trance {
namespace shred {

struct ShreddedType {
  nrc::TypePtr flat;       // T^F
  nrc::TypePtr dict_tree;  // T^D (tuple type; empty tuple for flat T)
};

/// Derives (T^F, T^D) for any NRC type.
StatusOr<ShreddedType> ShredType(const nrc::TypePtr& type);

/// One dictionary of a nested type, in document order (parent before child).
struct DictEntry {
  /// Underscore-joined attribute path, e.g. "corders_oparts".
  std::string path;
  /// The bag-valued attribute's name at its level, e.g. "oparts".
  std::string attr;
  /// Path of the parent dictionary ("" for top-level attributes).
  std::string parent_path;
  /// Flat element type of the dictionary's bags (tuple or scalar), i.e.
  /// T^F_a's element.
  nrc::TypePtr flat_elem;
};

/// Enumerates the dictionaries of a nested bag type, parents first.
StatusOr<std::vector<DictEntry>> DictTreeWalk(const nrc::TypePtr& bag_type);

/// The relational dictionary representation: Bag(<label: Label, ...fields>)
/// (scalar elements surface as a single "_value" column).
StatusOr<nrc::TypePtr> RelationalDictType(const nrc::TypePtr& flat_elem);

/// The interpreter-level pair representation: Bag(<label, value: Bag(F)>).
StatusOr<nrc::TypePtr> PairDictType(const nrc::TypePtr& flat_elem);

/// Conventional names for the shredded inputs of relation `name`.
std::string FlatInputName(const std::string& name);
std::string DictInputName(const std::string& name, const std::string& path);

}  // namespace shred
}  // namespace trance

#endif  // TRANCE_SHRED_SHREDDED_TYPE_H_
