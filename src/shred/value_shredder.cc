#include "shred/value_shredder.h"

#include <map>
#include <unordered_map>

namespace trance {
namespace shred {

using nrc::Type;
using nrc::TypePtr;
using nrc::Value;

namespace {

class Shredder {
 public:
  explicit Shredder(int64_t seed) : next_id_(seed) {}

  StatusOr<Value> ShredBag(const Value& bag, const TypePtr& elem,
                           const std::string& path) {
    if (!bag.is_bag()) {
      return Status::TypeError("ShredBag over non-bag value");
    }
    std::vector<Value> out;
    out.reserve(bag.AsBag().elems.size());
    for (const auto& t : bag.AsBag().elems) {
      TRANCE_ASSIGN_OR_RETURN(Value flat, ShredElem(t, elem, path));
      out.push_back(std::move(flat));
    }
    return Value::Bag(std::move(out));
  }

  std::map<std::string, std::vector<Value>>& dict_rows() { return dicts_; }

 private:
  StatusOr<Value> ShredElem(const Value& t, const TypePtr& elem,
                            const std::string& path) {
    if (!elem->is_tuple()) return t;  // scalar element
    if (!t.is_tuple()) return Status::TypeError("expected tuple value");
    nrc::TupleValue out;
    for (const auto& f : elem->fields()) {
      TRANCE_ASSIGN_OR_RETURN(Value fv, t.Field(f.name));
      if (!f.type->is_bag()) {
        out.fields.emplace_back(f.name, std::move(fv));
        continue;
      }
      // Mint a unique label for this inner bag and append its (shredded)
      // elements to the dictionary at this path.
      std::string sub_path = path.empty() ? f.name : path + "_" + f.name;
      Value label =
          Value::Label({{"@" + sub_path, Value::Int(next_id_++)}});
      TRANCE_ASSIGN_OR_RETURN(Value flat_inner,
                              ShredBag(fv, f.type->element(), sub_path));
      auto& rows = dicts_[sub_path];
      for (const auto& inner : flat_inner.AsBag().elems) {
        nrc::TupleValue row;
        row.fields.emplace_back("label", label);
        if (inner.is_tuple()) {
          for (const auto& [n, v] : inner.AsTuple().fields) {
            row.fields.emplace_back(n, v);
          }
        } else {
          row.fields.emplace_back("_value", inner);
        }
        rows.push_back(Value::Tuple(std::move(row)));
      }
      out.fields.emplace_back(f.name, std::move(label));
    }
    return Value::Tuple(std::move(out));
  }

  int64_t next_id_;
  std::map<std::string, std::vector<Value>> dicts_;
};

/// Index of a relational dictionary: label -> flat element tuples.
using DictIndex =
    std::unordered_map<Value, std::vector<Value>, nrc::ValueHash,
                       nrc::ValueEq>;

StatusOr<DictIndex> IndexDict(const Value& relational) {
  DictIndex idx;
  if (!relational.is_bag()) {
    return Status::TypeError("dictionary is not a bag");
  }
  for (const auto& row : relational.AsBag().elems) {
    TRANCE_ASSIGN_OR_RETURN(Value label, row.Field("label"));
    nrc::TupleValue rest;
    for (const auto& [n, v] : row.AsTuple().fields) {
      if (n != "label") rest.fields.emplace_back(n, v);
    }
    Value elem = rest.fields.size() == 1 && rest.fields[0].first == "_value"
                     ? rest.fields[0].second
                     : Value::Tuple(std::move(rest));
    idx[label].push_back(std::move(elem));
  }
  return idx;
}

class Unshredder {
 public:
  Status Index(const ShreddedValue& s) {
    for (const auto& [path, dict] : s.dicts) {
      TRANCE_ASSIGN_OR_RETURN(DictIndex idx, IndexDict(dict));
      index_[path] = std::move(idx);
    }
    return Status::OK();
  }

  StatusOr<Value> RebuildBag(const Value& flat_bag, const TypePtr& elem,
                             const std::string& path) {
    if (!flat_bag.is_bag()) {
      return Status::TypeError("unshred over non-bag value");
    }
    std::vector<Value> out;
    out.reserve(flat_bag.AsBag().elems.size());
    for (const auto& t : flat_bag.AsBag().elems) {
      TRANCE_ASSIGN_OR_RETURN(Value v, RebuildElem(t, elem, path));
      out.push_back(std::move(v));
    }
    return Value::Bag(std::move(out));
  }

 private:
  StatusOr<Value> RebuildElem(const Value& t, const TypePtr& elem,
                              const std::string& path) {
    if (!elem->is_tuple()) return t;
    nrc::TupleValue out;
    for (const auto& f : elem->fields()) {
      TRANCE_ASSIGN_OR_RETURN(Value fv, t.Field(f.name));
      if (!f.type->is_bag()) {
        out.fields.emplace_back(f.name, std::move(fv));
        continue;
      }
      std::string sub_path = path.empty() ? f.name : path + "_" + f.name;
      auto dict = index_.find(sub_path);
      if (dict == index_.end()) {
        return Status::KeyError("no dictionary for path " + sub_path);
      }
      std::vector<Value> members;
      auto hit = dict->second.find(fv);
      if (hit != dict->second.end()) members = hit->second;
      TRANCE_ASSIGN_OR_RETURN(
          Value rebuilt,
          RebuildBag(Value::Bag(std::move(members)), f.type->element(),
                     sub_path));
      out.fields.emplace_back(f.name, std::move(rebuilt));
    }
    return Value::Tuple(std::move(out));
  }

  std::map<std::string, DictIndex> index_;
};

}  // namespace

StatusOr<ShreddedValue> ShredValue(const Value& bag, const TypePtr& bag_type,
                                   int64_t label_seed) {
  if (bag_type == nullptr || !bag_type->is_bag()) {
    return Status::Invalid("ShredValue requires a bag type");
  }
  Shredder s(label_seed);
  TRANCE_ASSIGN_OR_RETURN(Value flat,
                          s.ShredBag(bag, bag_type->element(), ""));
  ShreddedValue out;
  out.flat = std::move(flat);
  TRANCE_ASSIGN_OR_RETURN(std::vector<DictEntry> walk,
                          DictTreeWalk(bag_type));
  for (const auto& entry : walk) {
    auto it = s.dict_rows().find(entry.path);
    out.dicts.emplace_back(entry.path,
                           it == s.dict_rows().end()
                               ? Value::EmptyBag()
                               : Value::Bag(std::move(it->second)));
  }
  return out;
}

StatusOr<Value> UnshredValue(const ShreddedValue& shredded,
                             const TypePtr& bag_type) {
  if (bag_type == nullptr || !bag_type->is_bag()) {
    return Status::Invalid("UnshredValue requires a bag type");
  }
  Unshredder u;
  TRANCE_RETURN_NOT_OK(u.Index(shredded));
  return u.RebuildBag(shredded.flat, bag_type->element(), "");
}

StatusOr<Value> RelationalToPairDict(const Value& relational,
                                     const TypePtr& flat_elem) {
  TRANCE_ASSIGN_OR_RETURN(DictIndex idx, IndexDict(relational));
  (void)flat_elem;
  std::vector<Value> out;
  out.reserve(idx.size());
  for (auto& [label, members] : idx) {
    out.push_back(Value::Tuple(
        {{"label", label}, {"value", Value::Bag(members)}}));
  }
  return Value::Bag(std::move(out));
}

StatusOr<Value> PairToRelationalDict(const Value& pairs,
                                     const TypePtr& flat_elem) {
  if (!pairs.is_bag()) return Status::TypeError("pair dict is not a bag");
  std::vector<Value> out;
  for (const auto& p : pairs.AsBag().elems) {
    TRANCE_ASSIGN_OR_RETURN(Value label, p.Field("label"));
    TRANCE_ASSIGN_OR_RETURN(Value value, p.Field("value"));
    if (!value.is_bag()) return Status::TypeError("pair value is not a bag");
    for (const auto& elem : value.AsBag().elems) {
      nrc::TupleValue row;
      row.fields.emplace_back("label", label);
      if (flat_elem->is_tuple()) {
        if (!elem.is_tuple()) return Status::TypeError("expected tuple");
        for (const auto& [n, v] : elem.AsTuple().fields) {
          row.fields.emplace_back(n, v);
        }
      } else {
        row.fields.emplace_back("_value", elem);
      }
      out.push_back(Value::Tuple(std::move(row)));
    }
  }
  return Value::Bag(std::move(out));
}

}  // namespace shred
}  // namespace trance
