// Value-level shredding and unshredding (Section 4): converting nested
// objects to their shredded representation (flat top bag + dictionaries) and
// back. Each lower-level bag receives a unique label.
//
// Dictionaries come in two encodings:
//  - relational (the runtime's): Bag(<label, ...element fields>), one row per
//    element, matching RelationalDictType;
//  - pair (the interpreter's / Fig. 5's): Bag(<label, value: Bag(F)>).
#ifndef TRANCE_SHRED_VALUE_SHREDDER_H_
#define TRANCE_SHRED_VALUE_SHREDDER_H_

#include <string>
#include <vector>

#include "nrc/value.h"
#include "shred/shredded_type.h"
#include "util/status.h"

namespace trance {
namespace shred {

/// A shredded nested value: flat top-level bag plus one dictionary per path.
struct ShreddedValue {
  nrc::Value flat;
  std::vector<std::pair<std::string, nrc::Value>> dicts;  // path -> dict

  const nrc::Value* Dict(const std::string& path) const {
    for (const auto& [p, v] : dicts) {
      if (p == path) return &v;
    }
    return nullptr;
  }
};

/// Shreds a nested bag; dictionaries in relational form. `label_seed` offsets
/// the minted label ids so several inputs get disjoint labels.
StatusOr<ShreddedValue> ShredValue(const nrc::Value& bag,
                                   const nrc::TypePtr& bag_type,
                                   int64_t label_seed = 0);

/// Rebuilds the nested bag from a shredded representation (relational
/// dictionaries).
StatusOr<nrc::Value> UnshredValue(const ShreddedValue& shredded,
                                  const nrc::TypePtr& bag_type);

/// Converts one relational dictionary to pair form (grouping rows by label).
StatusOr<nrc::Value> RelationalToPairDict(const nrc::Value& relational,
                                          const nrc::TypePtr& flat_elem);

/// Converts one pair-form dictionary to relational form.
StatusOr<nrc::Value> PairToRelationalDict(const nrc::Value& pairs,
                                          const nrc::TypePtr& flat_elem);

}  // namespace shred
}  // namespace trance

#endif  // TRANCE_SHRED_VALUE_SHREDDER_H_
