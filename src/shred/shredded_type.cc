#include "shred/shredded_type.h"

namespace trance {
namespace shred {

using nrc::Type;
using nrc::TypePtr;

StatusOr<ShreddedType> ShredType(const TypePtr& type) {
  if (type == nullptr) return Status::Invalid("ShredType(null)");
  switch (type->kind()) {
    case Type::Kind::kScalar:
    case Type::Kind::kLabel:
      return ShreddedType{type, Type::Tuple({})};
    case Type::Kind::kBag: {
      TRANCE_ASSIGN_OR_RETURN(ShreddedType inner, ShredType(type->element()));
      return ShreddedType{Type::Bag(inner.flat), inner.dict_tree};
    }
    case Type::Kind::kTuple: {
      std::vector<nrc::Field> flat_fields;
      std::vector<nrc::Field> dict_fields;
      for (const auto& f : type->fields()) {
        if (f.type->is_bag()) {
          TRANCE_ASSIGN_OR_RETURN(ShreddedType sub, ShredType(f.type));
          flat_fields.push_back({f.name, Type::Label()});
          dict_fields.push_back({f.name + "fun", Type::Dict(sub.flat)});
          dict_fields.push_back(
              {f.name + "child", Type::Bag(sub.dict_tree)});
        } else {
          TRANCE_ASSIGN_OR_RETURN(ShreddedType sub, ShredType(f.type));
          flat_fields.push_back({f.name, sub.flat});
        }
      }
      return ShreddedType{Type::Tuple(std::move(flat_fields)),
                          Type::Tuple(std::move(dict_fields))};
    }
    case Type::Kind::kDict:
      return Status::Invalid("cannot shred a dictionary type");
  }
  return Status::Internal("unhandled type in ShredType");
}

namespace {
Status Walk(const TypePtr& elem, const std::string& parent,
            std::vector<DictEntry>* out) {
  if (!elem->is_tuple()) return Status::OK();
  for (const auto& f : elem->fields()) {
    if (!f.type->is_bag()) continue;
    TRANCE_ASSIGN_OR_RETURN(ShreddedType sub, ShredType(f.type->element()));
    DictEntry entry;
    entry.attr = f.name;
    entry.parent_path = parent;
    entry.path = parent.empty() ? f.name : parent + "_" + f.name;
    entry.flat_elem = sub.flat;
    std::string path = entry.path;
    out->push_back(std::move(entry));
    TRANCE_RETURN_NOT_OK(Walk(f.type->element(), path, out));
  }
  return Status::OK();
}
}  // namespace

StatusOr<std::vector<DictEntry>> DictTreeWalk(const TypePtr& bag_type) {
  if (bag_type == nullptr || !bag_type->is_bag()) {
    return Status::Invalid("DictTreeWalk over non-bag type");
  }
  std::vector<DictEntry> out;
  TRANCE_RETURN_NOT_OK(Walk(bag_type->element(), "", &out));
  return out;
}

StatusOr<TypePtr> RelationalDictType(const TypePtr& flat_elem) {
  std::vector<nrc::Field> fields;
  fields.push_back({"label", Type::Label()});
  if (flat_elem->is_tuple()) {
    for (const auto& f : flat_elem->fields()) {
      if (f.name == "label") {
        return Status::Invalid(
            "element attribute 'label' collides with the dictionary key");
      }
      fields.push_back(f);
    }
  } else {
    fields.push_back({"_value", flat_elem});
  }
  return Type::Bag(Type::Tuple(std::move(fields)));
}

StatusOr<TypePtr> PairDictType(const TypePtr& flat_elem) {
  return Type::Bag(Type::Tuple(
      {{"label", Type::Label()}, {"value", Type::Bag(flat_elem)}}));
}

std::string FlatInputName(const std::string& name) { return name + "_F"; }

std::string DictInputName(const std::string& name, const std::string& path) {
  return name + "_D_" + path;
}

}  // namespace shred
}  // namespace trance
