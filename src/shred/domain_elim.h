// Normalization of shredded expressions and the domain-elimination rules of
// Section 4.
//
// SimplifyShredded performs the Normalize step of Fig. 5 (let inlining) plus
// the symbolic reductions that make dictionary plumbing concrete:
//   Proj(<tuple ctor>, a)         -> the field expression
//   get({e})                      -> e
//   Lookup(lambda l. b, lbl)      -> b[l := lbl]
//   match NewLabel(ps) = m then b -> b[m.p := ps[p]]
// and rewrites residual Lookups whose dictionary expression resolves through
// a DictResolver (chains of .afun/.achild/get over dictionary-tree variables)
// into MatLookups on the materialized dictionary datasets.
//
// EmitRelationalDict turns one symbolic dictionary lambda into a flat NRC
// expression producing the *relational* dictionary Bag(<label, ...fields>),
// applying:
//   rule 1 — the label captures exactly one label-typed attribute that keys a
//            MatLookup: iterate the parent's materialized dictionary directly
//            (with the sumBy extension);
//   rule 2 — the label captures scalar attributes equated with generator
//            attributes: produce label-tagged rows from the generators alone;
//   baseline — otherwise: a LabDomain assignment (dedup of parent labels)
//            plus per-label evaluation (single-label captures lower to a
//            join; general captures keep the match construct, which only the
//            interpreter evaluates).
#ifndef TRANCE_SHRED_DOMAIN_ELIM_H_
#define TRANCE_SHRED_DOMAIN_ELIM_H_

#include <map>
#include <string>
#include <vector>

#include "nrc/expr.h"
#include "util/status.h"

namespace trance {
namespace shred {

/// Resolves dictionary-tree variables to materialized dataset names:
/// Var(root) descends through Proj(., "<a>fun"/"<a>child") and get(); a
/// "...fun" endpoint at path p resolves to `mat_names[root].prefix + p`.
struct DictResolver {
  /// Dict-tree variable name -> base name used for its materialized
  /// dictionaries ("X" => dictionaries "X_D_<path>").
  std::map<std::string, std::string> roots;

  /// Materialized dataset name for base + path.
  std::string MatName(const std::string& base, const std::string& path) const;

  /// Attempts to resolve `e` to (base, path, is_fun_endpoint).
  bool Resolve(const nrc::ExprPtr& e, std::string* base, std::string* path,
               bool* is_fun) const;
};

/// Fig. 5 Normalize + symbolic reduction + MatLookup rewriting.
StatusOr<nrc::ExprPtr> SimplifyShredded(const nrc::ExprPtr& e,
                                        const DictResolver& resolver);

/// One dictionary lambda of a dictionary tree (already simplified):
/// lambda `lambda_var`. match `lambda_var` = NewLabel(`match_var`) then body.
struct DictLambda {
  std::string lambda_var;
  std::string match_var;
  nrc::ExprPtr body;
  nrc::TypePtr param_type;  // tuple type of the captured parameters
};

/// Which derivation produced a dictionary:
///   kRule1/kRule2 — the Section 4 domain-elimination rules;
///   kRule3 — label domain rebuilt from the *parent expression's* own
///            generators (for labels capturing several attributes, e.g. a
///            label plus a correlation scalar, as in the biomedical Step2);
///            two assignments, both runtime-executable;
///   kBaseline — Fig. 5 label domains; runtime-executable only for
///            single-label captures (match kept otherwise).
enum class DictEmission { kRule1, kRule2, kRule3, kBaseline };

struct EmittedDict {
  DictEmission rule;
  /// Expression computing the relational dictionary Bag(<label, ...>).
  nrc::ExprPtr expr;
  /// For kBaseline: an extra prerequisite assignment (the label domain);
  /// empty var otherwise.
  std::string domain_var;
  nrc::ExprPtr domain_expr;
};

/// `parent` names the materialized parent collection (top bag or parent
/// dictionary) and `attr` the label-valued attribute keying this dictionary;
/// they are only used by the baseline emission. `flat_elem` is the
/// dictionary's flat element type; `force_baseline` disables the rules (the
/// domain-elimination ablation).
StatusOr<EmittedDict> EmitRelationalDict(const DictLambda& lam,
                                         const std::string& parent,
                                         const std::string& attr,
                                         const nrc::TypePtr& flat_elem,
                                         const std::string& domain_var_name,
                                         bool force_baseline);

/// Rule-3 emission: `parent_expr` is the comprehension that computes the
/// parent collection (the flat top bag or the parent dictionary), whose head
/// constructs this dictionary's labels via NewLabel(attr := ...). The label
/// domain re-runs the parent's generators, deduplicated over the captured
/// parameters; the dictionary iterates that domain. Fails (so the caller can
/// fall back) when the parent expression does not have the required shape.
StatusOr<EmittedDict> EmitRule3Dict(const DictLambda& lam,
                                    const nrc::ExprPtr& parent_expr,
                                    const std::string& attr,
                                    const nrc::TypePtr& flat_elem,
                                    const std::string& domain_var_name);

}  // namespace shred
}  // namespace trance

#endif  // TRANCE_SHRED_DOMAIN_ELIM_H_
