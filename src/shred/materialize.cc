#include "shred/materialize.h"

#include <map>

#include "nrc/typecheck.h"
#include "shred/domain_elim.h"
#include "shred/symbolic.h"

namespace trance {
namespace shred {

using nrc::Expr;
using nrc::ExprPtr;
using nrc::Type;
using nrc::TypePtr;

namespace {

struct CollectedDicts {
  // path -> dictionary lambdas contributing to it
  std::map<std::string, std::vector<DictLambda>> lambdas;
  // path -> already-materialized source dictionaries (passthrough)
  std::map<std::string, std::vector<std::string>> passthrough;
};

/// Records passthroughs for every dictionary path under `src_elem`.
void CollectPassthrough(const TypePtr& src_elem, const std::string& prefix,
                        const std::string& base, const std::string& src_path,
                        const DictResolver& resolver, CollectedDicts* out) {
  if (!src_elem->is_tuple()) return;
  for (const auto& f : src_elem->fields()) {
    if (!f.type->is_bag()) continue;
    std::string sub = prefix.empty() ? f.name : prefix + "_" + f.name;
    std::string src_sub =
        src_path.empty() ? f.name : src_path + "_" + f.name;
    out->passthrough[sub].push_back(resolver.MatName(base, src_sub));
    CollectPassthrough(f.type->element(), sub, base, src_sub, resolver, out);
  }
}

Status CollectDicts(const ExprPtr& d_expr, const TypePtr& src_elem,
                    const std::string& prefix, const DictResolver& resolver,
                    CollectedDicts* out) {
  using K = Expr::Kind;
  if (!src_elem->is_tuple()) return Status::OK();
  bool has_bag_attr = false;
  for (const auto& f : src_elem->fields()) {
    if (f.type->is_bag()) has_bag_attr = true;
  }
  if (!has_bag_attr) return Status::OK();

  if (d_expr->kind() == K::kDictTreeUnion) {
    TRANCE_RETURN_NOT_OK(
        CollectDicts(d_expr->child(0), src_elem, prefix, resolver, out));
    return CollectDicts(d_expr->child(1), src_elem, prefix, resolver, out);
  }

  // A resolvable dictionary-tree expression: everything below is already
  // materialized (input or earlier assignment).
  {
    std::string base, path;
    bool is_fun = false;
    if (resolver.Resolve(d_expr, &base, &path, &is_fun) && !is_fun) {
      CollectPassthrough(src_elem, prefix, base, path, resolver, out);
      return Status::OK();
    }
  }

  if (d_expr->kind() != K::kTupleCtor) {
    return Status::NotImplemented(
        "dictionary tree did not normalize to a tuple constructor");
  }
  auto field_of = [&](const std::string& name) -> ExprPtr {
    for (const auto& f : d_expr->fields()) {
      if (f.name == name) return f.expr;
    }
    return nullptr;
  };
  for (const auto& f : src_elem->fields()) {
    if (!f.type->is_bag()) continue;
    std::string sub = prefix.empty() ? f.name : prefix + "_" + f.name;
    ExprPtr fun = field_of(f.name + "fun");
    ExprPtr child = field_of(f.name + "child");
    if (fun == nullptr || child == nullptr) {
      return Status::Internal("dictionary tree lacks entries for attribute " +
                              f.name);
    }
    // The fun entry: a lambda whose body is (usually) a match.
    if (fun->kind() != K::kLambda) {
      return Status::NotImplemented("dictionary is not a lambda after "
                                    "normalization");
    }
    DictLambda lam;
    lam.lambda_var = fun->var_name();
    const ExprPtr& body = fun->child(0);
    if (body->kind() == K::kMatchLabel &&
        body->child(0)->kind() == K::kVarRef &&
        body->child(0)->var_name() == lam.lambda_var) {
      lam.match_var = body->var_name();
      lam.body = body->child(1);
      lam.param_type = body->match_param_type();
    } else {
      lam.match_var = "_unused_m";
      lam.body = body;
      lam.param_type = Type::Tuple({});
    }
    out->lambdas[sub].push_back(std::move(lam));

    // Child dictionary tree.
    ExprPtr child_tree = child;
    if (child_tree->kind() == K::kSingleton) {
      child_tree = child_tree->child(0);
    } else if (child_tree->kind() == K::kGet) {
      // leave as-is; resolver handles chains
    }
    TRANCE_RETURN_NOT_OK(
        CollectDicts(child_tree, f.type->element(), sub, resolver, out));
  }
  return Status::OK();
}

}  // namespace

StatusOr<MaterializedProgram> ShredAndMaterialize(const nrc::Program& source,
                                                  MaterializeMode mode) {
  nrc::Typechecker tc;
  TRANCE_ASSIGN_OR_RETURN(nrc::TypeEnv full_env, tc.CheckProgram(source));

  MaterializedProgram out;
  DictResolver resolver;
  nrc::TypeEnv src_env;
  std::map<std::string, VarMapping> mapping;

  // Shredded inputs.
  for (const auto& in : source.inputs) {
    src_env[in.name] = in.type;
    if (!in.type->is_bag()) {
      return Status::Invalid("program input is not a bag: " + in.name);
    }
    TRANCE_ASSIGN_OR_RETURN(ShreddedType st, ShredType(in.type));
    out.program.inputs.push_back({FlatInputName(in.name), st.flat});
    TRANCE_ASSIGN_OR_RETURN(std::vector<DictEntry> walk,
                            DictTreeWalk(in.type));
    for (const auto& d : walk) {
      TRANCE_ASSIGN_OR_RETURN(TypePtr rel, RelationalDictType(d.flat_elem));
      out.program.inputs.push_back({DictInputName(in.name, d.path), rel});
    }
    mapping[in.name] = {FlatInputName(in.name), in.name + "_D"};
    resolver.roots[in.name + "_D"] = in.name;
  }

  std::string last_var;
  for (const auto& a : source.assignments) {
    const TypePtr& vt = full_env.at(a.var);
    SymbolicShredder shredder(src_env, mapping);
    TRANCE_ASSIGN_OR_RETURN(ShreddedQuery sq, shredder.Shred(a.expr));
    TRANCE_ASSIGN_OR_RETURN(ExprPtr flat, SimplifyShredded(sq.flat, resolver));
    std::string flat_var = a.var + "_F";
    out.program.assignments.push_back({flat_var, flat});
    // Emitted expression per path (the rule-3 derivation reads the parent's
    // expression to rebuild label domains).
    std::map<std::string, ExprPtr> emitted_exprs;
    emitted_exprs[""] = flat;

    if (vt->is_bag()) {
      TRANCE_ASSIGN_OR_RETURN(ExprPtr dict_tree,
                              SimplifyShredded(sq.dict_tree, resolver));
      TRANCE_ASSIGN_OR_RETURN(std::vector<DictEntry> walk, DictTreeWalk(vt));
      CollectedDicts collected;
      TRANCE_RETURN_NOT_OK(
          CollectDicts(dict_tree, vt->element(), "", resolver, &collected));
      int domain_counter = 0;
      for (const auto& entry : walk) {
        std::string dict_var = DictInputName(a.var, entry.path);
        std::string parent_var =
            entry.parent_path.empty()
                ? flat_var
                : DictInputName(a.var, entry.parent_path);
        std::vector<ExprPtr> pieces;
        auto lam_it = collected.lambdas.find(entry.path);
        if (lam_it != collected.lambdas.end()) {
          for (const auto& lam : lam_it->second) {
            std::string domain_var =
                a.var + "_LD_" + entry.path +
                (domain_counter ? "_" + std::to_string(domain_counter) : "");
            ++domain_counter;
            TRANCE_ASSIGN_OR_RETURN(
                EmittedDict emitted,
                EmitRelationalDict(lam, parent_var, entry.attr,
                                   entry.flat_elem, domain_var,
                                   mode == MaterializeMode::kBaseline));
            bool match_kept =
                emitted.rule == DictEmission::kBaseline &&
                (lam.param_type == nullptr || !lam.param_type->is_tuple() ||
                 lam.param_type->fields().size() != 1 ||
                 !lam.param_type->fields()[0].type->is_label());
            if (match_kept && mode != MaterializeMode::kBaseline) {
              // Multi-attribute captures: derive the label domain from the
              // parent expression instead (rule 3), keeping the program
              // runtime-executable.
              auto parent_it = emitted_exprs.find(entry.parent_path);
              if (parent_it != emitted_exprs.end()) {
                auto rule3 =
                    EmitRule3Dict(lam, parent_it->second, entry.attr,
                                  entry.flat_elem, domain_var);
                if (rule3.ok()) {
                  emitted = std::move(rule3).value();
                  match_kept = false;
                }
              }
            }
            if (emitted.rule == DictEmission::kBaseline ||
                emitted.rule == DictEmission::kRule3) {
              out.program.assignments.push_back(
                  {emitted.domain_var, emitted.domain_expr});
              if (match_kept) out.interpreter_only = true;
            }
            pieces.push_back(emitted.expr);
          }
        }
        auto pass_it = collected.passthrough.find(entry.path);
        if (pass_it != collected.passthrough.end()) {
          for (const auto& src : pass_it->second) {
            pieces.push_back(Expr::Var(src));
          }
        }
        if (pieces.empty()) {
          return Status::Internal("no dictionary derivation for path " +
                                  entry.path + " of " + a.var);
        }
        ExprPtr expr = pieces[0];
        for (size_t i = 1; i < pieces.size(); ++i) {
          expr = Expr::Union(expr, pieces[i]);
        }
        emitted_exprs[entry.path] = pieces[0];
        out.program.assignments.push_back({dict_var, expr});
      }
    }

    mapping[a.var] = {flat_var, a.var + "_D"};
    resolver.roots[a.var + "_D"] = a.var;
    src_env[a.var] = vt;
    last_var = a.var;
  }

  if (last_var.empty()) return Status::Invalid("empty program");
  out.top_var = last_var + "_F";
  out.output_type = full_env.at(last_var);
  if (out.output_type->is_bag()) {
    TRANCE_ASSIGN_OR_RETURN(std::vector<DictEntry> walk,
                            DictTreeWalk(out.output_type));
    for (const auto& d : walk) {
      out.dicts.push_back(
          {d.path, DictInputName(last_var, d.path), d.flat_elem});
    }
  }

  // Validate: the materialized program must typecheck.
  nrc::Typechecker check;
  auto env = check.CheckProgram(out.program);
  if (!env.ok()) {
    return Status::Internal("materialized program does not typecheck: " +
                            env.status().ToString());
  }
  return out;
}

}  // namespace shred
}  // namespace trance
