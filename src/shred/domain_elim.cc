#include "shred/domain_elim.h"

#include <set>

#include "shred/shredded_type.h"

namespace trance {
namespace shred {

using nrc::Expr;
using nrc::ExprPtr;
using nrc::Type;
using nrc::TypePtr;

std::string DictResolver::MatName(const std::string& base,
                                  const std::string& path) const {
  return DictInputName(base, path);
}

bool DictResolver::Resolve(const ExprPtr& e, std::string* base,
                           std::string* path, bool* is_fun) const {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kVarRef: {
      auto it = roots.find(e->var_name());
      if (it == roots.end()) return false;
      *base = it->second;
      path->clear();
      *is_fun = false;
      return true;
    }
    case K::kGet:
      return Resolve(e->child(0), base, path, is_fun);
    case K::kProj: {
      std::string b, p;
      bool f;
      if (!Resolve(e->child(0), &b, &p, &f) || f) return false;
      const std::string& attr = e->attr();
      auto ends_with = [&](const std::string& suffix) {
        return attr.size() > suffix.size() &&
               attr.compare(attr.size() - suffix.size(), suffix.size(),
                            suffix) == 0;
      };
      std::string a;
      bool fun;
      if (ends_with("fun")) {
        a = attr.substr(0, attr.size() - 3);
        fun = true;
      } else if (ends_with("child")) {
        a = attr.substr(0, attr.size() - 5);
        fun = false;
      } else {
        return false;
      }
      *base = b;
      *path = p.empty() ? a : p + "_" + a;
      *is_fun = fun;
      return true;
    }
    default:
      return false;
  }
}

namespace {

/// One bottom-up simplification pass with local reduction rules; `Simp`
/// re-simplifies after substitutions, so the result is a normal form.
class Simplifier {
 public:
  explicit Simplifier(const DictResolver& resolver) : resolver_(resolver) {}

  StatusOr<ExprPtr> Simp(const ExprPtr& e) {
    using K = Expr::Kind;
    switch (e->kind()) {
      case K::kConst:
      case K::kVarRef:
      case K::kEmptyBag:
        return e;
      case K::kLet: {
        TRANCE_ASSIGN_OR_RETURN(ExprPtr v, Simp(e->child(0)));
        return Simp(nrc::Substitute(e->child(1), e->var_name(), v));
      }
      case K::kProj: {
        TRANCE_ASSIGN_OR_RETURN(ExprPtr base, Simp(e->child(0)));
        if (base->kind() == K::kTupleCtor) {
          for (const auto& f : base->fields()) {
            if (f.name == e->attr()) return f.expr;
          }
          return Status::KeyError("projection " + e->attr() +
                                  " missing from tuple constructor");
        }
        return Expr::Proj(base, e->attr());
      }
      case K::kGet: {
        TRANCE_ASSIGN_OR_RETURN(ExprPtr inner, Simp(e->child(0)));
        if (inner->kind() == K::kSingleton) return inner->child(0);
        return Expr::Get(inner);
      }
      case K::kLookup: {
        TRANCE_ASSIGN_OR_RETURN(ExprPtr dict, Simp(e->child(0)));
        TRANCE_ASSIGN_OR_RETURN(ExprPtr lbl, Simp(e->child(1)));
        if (dict->kind() == K::kLambda) {
          return Simp(nrc::Substitute(dict->child(0), dict->var_name(), lbl));
        }
        std::string base, path;
        bool is_fun = false;
        if (resolver_.Resolve(dict, &base, &path, &is_fun) && is_fun) {
          return Expr::MatLookup(Expr::Var(resolver_.MatName(base, path)),
                                 lbl);
        }
        return Expr::Lookup(dict, lbl);
      }
      case K::kMatchLabel: {
        TRANCE_ASSIGN_OR_RETURN(ExprPtr lbl, Simp(e->child(0)));
        if (lbl->kind() == K::kNewLabel) {
          // Static deconstruction: bind the match variable to the literal
          // parameter tuple and reduce the projections away.
          std::vector<nrc::NamedExpr> params = lbl->fields();
          return Simp(nrc::Substitute(e->child(1), e->var_name(),
                                      Expr::Tuple(std::move(params))));
        }
        TRANCE_ASSIGN_OR_RETURN(ExprPtr body, Simp(e->child(1)));
        return Expr::MatchLabel(lbl, e->var_name(), body,
                                e->match_param_type());
      }
      case K::kForUnion: {
        TRANCE_ASSIGN_OR_RETURN(ExprPtr dom, Simp(e->child(0)));
        TRANCE_ASSIGN_OR_RETURN(ExprPtr body, Simp(e->child(1)));
        return Expr::ForUnion(e->var_name(), dom, body);
      }
      case K::kLambda: {
        TRANCE_ASSIGN_OR_RETURN(ExprPtr body, Simp(e->child(0)));
        return Expr::Lambda(e->var_name(), body);
      }
      case K::kTupleCtor:
      case K::kNewLabel: {
        std::vector<nrc::NamedExpr> fields;
        for (const auto& f : e->fields()) {
          TRANCE_ASSIGN_OR_RETURN(ExprPtr fe, Simp(f.expr));
          fields.push_back({f.name, fe});
        }
        return e->kind() == K::kTupleCtor
                   ? Expr::Tuple(std::move(fields))
                   : Expr::NewLabel(std::move(fields));
      }
      default: {
        std::vector<ExprPtr> kids;
        for (size_t i = 0; i < e->num_children(); ++i) {
          TRANCE_ASSIGN_OR_RETURN(ExprPtr k, Simp(e->child(i)));
          kids.push_back(k);
        }
        switch (e->kind()) {
          case K::kSingleton:
            return Expr::Singleton(kids[0]);
          case K::kUnion:
            return Expr::Union(kids[0], kids[1]);
          case K::kIfThen:
            return Expr::IfThen(kids[0], kids[1],
                                kids.size() == 3 ? kids[2] : nullptr);
          case K::kPrimOp:
            return Expr::PrimOp(e->prim_op(), kids[0], kids[1]);
          case K::kCmp:
            return Expr::Cmp(e->cmp_op(), kids[0], kids[1]);
          case K::kBoolOp:
            return Expr::BoolOp(e->bool_op(), kids[0], kids[1]);
          case K::kNot:
            return Expr::Not(kids[0]);
          case K::kDedup:
            return Expr::Dedup(kids[0]);
          case K::kGroupBy:
            return Expr::GroupBy(e->keys(), kids[0], e->attr());
          case K::kSumBy:
            return Expr::SumBy(e->keys(), e->values(), kids[0]);
          case K::kMatLookup:
            return Expr::MatLookup(kids[0], kids[1]);
          case K::kDictTreeUnion:
            return Expr::DictTreeUnion(kids[0], kids[1]);
          case K::kBagToDict:
            return Expr::BagToDict(kids[0]);
          default:
            return Status::Internal("unhandled node in SimplifyShredded");
        }
      }
    }
  }

 private:
  const DictResolver& resolver_;
};

/// Collects the match-variable attributes used in `e` (Proj(Var(m), p)).
void CollectMatchAttrs(const ExprPtr& e, const std::string& m,
                       std::set<std::string>* attrs, int* other_refs) {
  using K = Expr::Kind;
  if (e->kind() == K::kProj && e->child(0)->kind() == K::kVarRef &&
      e->child(0)->var_name() == m) {
    attrs->insert(e->attr());
    return;
  }
  if (e->kind() == K::kVarRef && e->var_name() == m) {
    ++*other_refs;  // whole-variable reference: rules do not apply
    return;
  }
  if ((e->kind() == K::kForUnion || e->kind() == K::kLet ||
       e->kind() == K::kLambda) &&
      e->var_name() == m) {
    // Shadowed below; domain still counts.
    CollectMatchAttrs(e->child(0), m, attrs, other_refs);
    return;
  }
  if (e->kind() == K::kMatchLabel && e->var_name() == m) {
    CollectMatchAttrs(e->child(0), m, attrs, other_refs);
    return;
  }
  if (e->kind() == K::kTupleCtor || e->kind() == K::kNewLabel) {
    for (const auto& f : e->fields()) {
      CollectMatchAttrs(f.expr, m, attrs, other_refs);
    }
    return;
  }
  for (size_t i = 0; i < e->num_children(); ++i) {
    CollectMatchAttrs(e->child(i), m, attrs, other_refs);
  }
}

struct Qual {
  bool is_gen = false;
  std::string var;
  ExprPtr domain;
  ExprPtr cond;
};

/// Splits a comprehension into qualifiers (And-conjunctions flattened into
/// separate filters) and its head.
void DecomposeComp(const ExprPtr& e, std::vector<Qual>* quals, ExprPtr* head) {
  using K = Expr::Kind;
  if (e->kind() == K::kForUnion) {
    quals->push_back({true, e->var_name(), e->child(0), nullptr});
    DecomposeComp(e->child(1), quals, head);
    return;
  }
  if (e->kind() == K::kIfThen && e->num_children() == 2) {
    std::vector<ExprPtr> stack{e->child(0)};
    while (!stack.empty()) {
      ExprPtr c = stack.back();
      stack.pop_back();
      if (c->kind() == K::kBoolOp && c->bool_op() == nrc::BoolOpKind::kAnd) {
        stack.push_back(c->child(0));
        stack.push_back(c->child(1));
      } else {
        quals->push_back({false, "", nullptr, c});
      }
    }
    DecomposeComp(e->child(1), quals, head);
    return;
  }
  *head = e;
}

/// Rebuilds a comprehension from qualifiers and a head.
ExprPtr RebuildComp(const std::vector<Qual>& quals, const ExprPtr& head) {
  ExprPtr e = head;
  for (auto it = quals.rbegin(); it != quals.rend(); ++it) {
    if (it->is_gen) {
      e = Expr::ForUnion(it->var, it->domain, e);
    } else {
      e = Expr::IfThen(it->cond, e);
    }
  }
  return e;
}

/// Prepends `label := label_expr` to every head tuple of a comprehension
/// body, turning a bag of flat elements into relational dictionary rows.
StatusOr<ExprPtr> PrependLabel(const ExprPtr& e, const ExprPtr& label_expr,
                               const TypePtr& flat_elem) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kForUnion: {
      TRANCE_ASSIGN_OR_RETURN(ExprPtr body,
                              PrependLabel(e->child(1), label_expr, flat_elem));
      return Expr::ForUnion(e->var_name(), e->child(0), body);
    }
    case K::kIfThen: {
      TRANCE_ASSIGN_OR_RETURN(ExprPtr t,
                              PrependLabel(e->child(1), label_expr, flat_elem));
      if (e->num_children() == 3) {
        TRANCE_ASSIGN_OR_RETURN(
            ExprPtr f, PrependLabel(e->child(2), label_expr, flat_elem));
        return Expr::IfThen(e->child(0), t, f);
      }
      return Expr::IfThen(e->child(0), t);
    }
    case K::kUnion: {
      TRANCE_ASSIGN_OR_RETURN(ExprPtr a,
                              PrependLabel(e->child(0), label_expr, flat_elem));
      TRANCE_ASSIGN_OR_RETURN(ExprPtr b,
                              PrependLabel(e->child(1), label_expr, flat_elem));
      return Expr::Union(a, b);
    }
    case K::kSingleton: {
      const ExprPtr& inner = e->child(0);
      std::vector<nrc::NamedExpr> fields;
      fields.push_back({"label", label_expr});
      if (inner->kind() == K::kTupleCtor) {
        for (const auto& f : inner->fields()) fields.push_back(f);
      } else {
        fields.push_back({"_value", inner});
      }
      return Expr::Singleton(Expr::Tuple(std::move(fields)));
    }
    case K::kEmptyBag: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr rel, RelationalDictType(flat_elem));
      return Expr::EmptyBag(rel);
    }
    case K::kDedup: {
      TRANCE_ASSIGN_OR_RETURN(ExprPtr inner,
                              PrependLabel(e->child(0), label_expr, flat_elem));
      return Expr::Dedup(inner);
    }
    default:
      return Status::NotImplemented(
          "cannot relationalize this dictionary body shape");
  }
}

/// Generic relationalization used by the baseline: iterate the value bag and
/// tag each element with the label.
StatusOr<ExprPtr> WrapValueBag(const ExprPtr& value_bag,
                               const ExprPtr& label_expr,
                               const TypePtr& flat_elem,
                               const std::string& elem_var) {
  std::vector<nrc::NamedExpr> fields;
  fields.push_back({"label", label_expr});
  if (flat_elem->is_tuple()) {
    for (const auto& f : flat_elem->fields()) {
      fields.push_back({f.name, Expr::Proj(Expr::Var(elem_var), f.name)});
    }
  } else {
    fields.push_back({"_value", Expr::Var(elem_var)});
  }
  return Expr::ForUnion(elem_var, value_bag,
                        Expr::Singleton(Expr::Tuple(std::move(fields))));
}

}  // namespace

StatusOr<ExprPtr> SimplifyShredded(const ExprPtr& e,
                                   const DictResolver& resolver) {
  Simplifier s(resolver);
  return s.Simp(e);
}

StatusOr<EmittedDict> EmitRule3Dict(const DictLambda& lam,
                                    const ExprPtr& parent_expr,
                                    const std::string& attr,
                                    const TypePtr& flat_elem,
                                    const std::string& domain_var_name) {
  using K = Expr::Kind;
  if (lam.param_type == nullptr || !lam.param_type->is_tuple() ||
      lam.param_type->fields().empty()) {
    return Status::NotImplemented("rule 3 requires captured parameters");
  }
  // Locate the NewLabel for `attr` in the parent comprehension's head.
  ExprPtr pe = parent_expr;
  if (pe->kind() == K::kSumBy) pe = pe->child(0);
  std::vector<Qual> pquals;
  ExprPtr phead;
  DecomposeComp(pe, &pquals, &phead);
  if (phead == nullptr || phead->kind() != K::kSingleton ||
      phead->child(0)->kind() != K::kTupleCtor) {
    return Status::NotImplemented("rule 3: parent head is not a tuple");
  }
  ExprPtr label_ctor;
  for (const auto& f : phead->child(0)->fields()) {
    if (f.name == attr) label_ctor = f.expr;
  }
  if (label_ctor == nullptr || label_ctor->kind() != K::kNewLabel) {
    return Status::NotImplemented(
        "rule 3: parent head does not construct the label explicitly");
  }
  // The label domain: re-run the parent generators, project the captured
  // parameters, dedup.
  std::vector<nrc::NamedExpr> domain_fields;
  for (const auto& p : label_ctor->fields()) domain_fields.push_back(p);
  ExprPtr domain_comp = RebuildComp(
      pquals, Expr::Singleton(Expr::Tuple(std::move(domain_fields))));

  EmittedDict out;
  out.rule = DictEmission::kRule3;
  out.domain_var = domain_var_name;
  out.domain_expr = Expr::Dedup(domain_comp);

  // Rebuild the label and bind the match variable from the domain tuple.
  const std::string dv = "_lab3";
  std::vector<nrc::NamedExpr> rebuilt;
  std::vector<nrc::NamedExpr> m_binding;
  for (const auto& f : lam.param_type->fields()) {
    rebuilt.push_back({f.name, Expr::Proj(Expr::Var(dv), f.name)});
    m_binding.push_back({f.name, Expr::Proj(Expr::Var(dv), f.name)});
  }
  ExprPtr label_expr = Expr::NewLabel(std::move(rebuilt));
  ExprPtr body = nrc::Substitute(lam.body, lam.match_var,
                                 Expr::Tuple(std::move(m_binding)));
  DictResolver empty;
  TRANCE_ASSIGN_OR_RETURN(body, SimplifyShredded(body, empty));

  bool inner_sum = body->kind() == K::kSumBy;
  ExprPtr comp2 = inner_sum ? body->child(0) : body;
  TRANCE_ASSIGN_OR_RETURN(ExprPtr tagged,
                          PrependLabel(comp2, label_expr, flat_elem));
  if (inner_sum) {
    std::vector<std::string> keys;
    keys.push_back("label");
    for (const auto& k : body->keys()) keys.push_back(k);
    out.expr = Expr::SumBy(keys, body->values(),
                           Expr::ForUnion(dv, Expr::Var(domain_var_name),
                                          tagged));
    return out;
  }
  out.expr =
      Expr::ForUnion(dv, Expr::Var(domain_var_name), tagged);
  return out;
}

StatusOr<EmittedDict> EmitRelationalDict(const DictLambda& lam,
                                         const std::string& parent,
                                         const std::string& attr,
                                         const TypePtr& flat_elem,
                                         const std::string& domain_var_name,
                                         bool force_baseline) {
  using K = Expr::Kind;
  EmittedDict out;
  out.rule = DictEmission::kBaseline;

  TRANCE_ASSIGN_OR_RETURN(TypePtr rel_type, RelationalDictType(flat_elem));

  // Trivial empty dictionary.
  if (lam.body->kind() == K::kEmptyBag) {
    out.rule = DictEmission::kRule1;
    out.expr = Expr::EmptyBag(rel_type);
    return out;
  }

  // Peel an aggregation wrapper.
  ExprPtr comp = lam.body;
  bool has_sum = false;
  std::vector<std::string> sum_keys, sum_vals;
  if (comp->kind() == K::kSumBy) {
    has_sum = true;
    sum_keys = comp->keys();
    sum_vals = comp->values();
    comp = comp->child(0);
  }

  std::set<std::string> m_attrs;
  int other_refs = 0;
  CollectMatchAttrs(lam.body, lam.match_var, &m_attrs, &other_refs);

  std::vector<Qual> quals;
  ExprPtr head;
  DecomposeComp(comp, &quals, &head);

  auto wrap_sum = [&](ExprPtr e) {
    if (!has_sum) return e;
    std::vector<std::string> keys;
    keys.push_back("label");
    for (const auto& k : sum_keys) keys.push_back(k);
    return Expr::SumBy(keys, sum_vals, e);
  };

  auto param_type_of = [&](const std::string& p) -> TypePtr {
    if (lam.param_type == nullptr || !lam.param_type->is_tuple()) {
      return nullptr;
    }
    auto t = lam.param_type->FieldType(p);
    return t.ok() ? *t : nullptr;
  };

  // --- Rule 1: single label-typed capture keying the leading MatLookup. ---
  if (!force_baseline && other_refs == 0 && m_attrs.size() == 1 &&
      !quals.empty() && quals[0].is_gen &&
      quals[0].domain->kind() == K::kMatLookup) {
    const std::string& p = *m_attrs.begin();
    const ExprPtr& key = quals[0].domain->child(1);
    TypePtr pt = param_type_of(p);
    bool key_is_param = key->kind() == K::kProj &&
                        key->child(0)->kind() == K::kVarRef &&
                        key->child(0)->var_name() == lam.match_var &&
                        key->attr() == p;
    if (key_is_param && pt != nullptr && pt->is_label()) {
      ExprPtr label_expr = Expr::Proj(Expr::Var(quals[0].var), "label");
      TRANCE_ASSIGN_OR_RETURN(ExprPtr body,
                              PrependLabel(head, label_expr, flat_elem));
      // Any residual reference to m.P denotes the same label the rows carry.
      std::vector<Qual> tail(quals.begin() + 1, quals.end());
      ExprPtr inner = RebuildComp(tail, body);
      inner = nrc::Substitute(inner, lam.match_var,
                              Expr::Tuple({{p, label_expr}}));
      DictResolver empty;
      TRANCE_ASSIGN_OR_RETURN(inner, SimplifyShredded(inner, empty));
      out.rule = DictEmission::kRule1;
      out.expr = wrap_sum(Expr::ForUnion(
          quals[0].var, quals[0].domain->child(0), inner));
      return out;
    }
  }

  // --- Rule 2: scalar captures equated with generator attributes. ---
  if (!force_baseline && other_refs == 0 && !m_attrs.empty()) {
    bool all_scalar = true;
    for (const auto& p : m_attrs) {
      TypePtr pt = param_type_of(p);
      if (pt == nullptr || !pt->is_scalar()) all_scalar = false;
    }
    if (all_scalar) {
      std::map<std::string, ExprPtr> bindings;  // param -> generator-side expr
      std::vector<Qual> q2;
      bool ok = true;
      for (const auto& q : quals) {
        if (q.is_gen) {
          // Generators must not mention the match variable.
          std::set<std::string> used;
          int refs = 0;
          CollectMatchAttrs(q.domain, lam.match_var, &used, &refs);
          if (!used.empty() || refs > 0) ok = false;
          q2.push_back(q);
          continue;
        }
        // Equality filter matching  side == m.p  (either orientation)?
        const ExprPtr& c = q.cond;
        bool consumed = false;
        if (c->kind() == K::kCmp && c->cmp_op() == nrc::CmpOpKind::kEq) {
          for (int flip = 0; flip < 2 && !consumed; ++flip) {
            const ExprPtr& ms = c->child(flip == 0 ? 1 : 0);
            const ExprPtr& side = c->child(flip == 0 ? 0 : 1);
            if (ms->kind() == K::kProj &&
                ms->child(0)->kind() == K::kVarRef &&
                ms->child(0)->var_name() == lam.match_var) {
              std::set<std::string> side_used;
              int side_refs = 0;
              CollectMatchAttrs(side, lam.match_var, &side_used, &side_refs);
              if (side_used.empty() && side_refs == 0 &&
                  bindings.count(ms->attr()) == 0) {
                bindings[ms->attr()] = side;
                consumed = true;
              }
            }
          }
        }
        if (!consumed) {
          // A residual filter may not mention the match variable.
          std::set<std::string> used;
          int refs = 0;
          CollectMatchAttrs(c, lam.match_var, &used, &refs);
          if (!used.empty() || refs > 0) ok = false;
          q2.push_back(q);
        }
      }
      // The head may not mention the match variable either.
      {
        std::set<std::string> used;
        int refs = 0;
        CollectMatchAttrs(head, lam.match_var, &used, &refs);
        if (!used.empty() || refs > 0) ok = false;
      }
      if (ok && bindings.size() == m_attrs.size()) {
        std::vector<nrc::NamedExpr> params;
        for (const auto& f : lam.param_type->fields()) {
          auto it = bindings.find(f.name);
          if (it == bindings.end()) {
            ok = false;
            break;
          }
          params.push_back({f.name, it->second});
        }
        if (ok) {
          ExprPtr label_expr = Expr::NewLabel(std::move(params));
          TRANCE_ASSIGN_OR_RETURN(ExprPtr body,
                                  PrependLabel(head, label_expr, flat_elem));
          out.rule = DictEmission::kRule2;
          out.expr = wrap_sum(RebuildComp(q2, body));
          return out;
        }
      }
    }
  }

  // --- Baseline: label-domain assignment + per-label evaluation. ---
  out.rule = DictEmission::kBaseline;
  out.domain_var = domain_var_name;
  out.domain_expr = Expr::Dedup(Expr::ForUnion(
      "_x", Expr::Var(parent),
      Expr::Singleton(
          Expr::Tuple({{"label", Expr::Proj(Expr::Var("_x"), attr)}}))));

  ExprPtr label_of_l = Expr::Proj(Expr::Var("_lab"), "label");
  if (lam.param_type != nullptr && lam.param_type->is_tuple() &&
      lam.param_type->fields().size() == 1 &&
      lam.param_type->fields()[0].type->is_label()) {
    // Single-label capture: the collapse rule makes the captured parameter
    // the label itself, so the match can be substituted away and the result
    // stays executable on the distributed runtime. The body is
    // relationalized in place (label prepended to its heads) so the plan
    // route's unnesting can lower it.
    const std::string& p = lam.param_type->fields()[0].name;
    ExprPtr body = lam.body;
    body = nrc::Substitute(body, lam.match_var,
                           Expr::Tuple({{p, label_of_l}}));
    DictResolver empty;
    TRANCE_ASSIGN_OR_RETURN(body, SimplifyShredded(body, empty));
    bool inner_sum = body->kind() == K::kSumBy;
    ExprPtr comp2 = inner_sum ? body->child(0) : body;
    TRANCE_ASSIGN_OR_RETURN(ExprPtr tagged,
                            PrependLabel(comp2, label_of_l, flat_elem));
    ExprPtr inner = tagged;
    if (inner_sum) {
      std::vector<std::string> keys;
      keys.push_back("label");
      for (const auto& k : body->keys()) keys.push_back(k);
      inner = Expr::SumBy(keys, body->values(),
                          Expr::ForUnion("_lab", Expr::Var(domain_var_name),
                                         tagged));
      out.expr = inner;
      return out;
    }
    out.expr = Expr::ForUnion("_lab", Expr::Var(domain_var_name), inner);
    return out;
  }

  // General captures keep the match construct (interpreter-evaluable only).
  ExprPtr matched = Expr::MatchLabel(label_of_l, lam.match_var, lam.body,
                                     lam.param_type);
  TRANCE_ASSIGN_OR_RETURN(ExprPtr wrapped,
                          WrapValueBag(matched, label_of_l, flat_elem, "_v"));
  out.expr = Expr::ForUnion("_lab", Expr::Var(domain_var_name), wrapped);
  return out;
}

}  // namespace shred
}  // namespace trance
