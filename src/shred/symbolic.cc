#include "shred/symbolic.h"

#include <algorithm>
#include <set>

#include "shred/shredded_type.h"

namespace trance {
namespace shred {

using nrc::Expr;
using nrc::ExprPtr;
using nrc::Type;
using nrc::TypeEnv;
using nrc::TypePtr;

namespace {

/// Desugaring of groupBy with environment tracking.
class GroupByDesugarer {
 public:
  StatusOr<ExprPtr> Rewrite(const ExprPtr& e, const TypeEnv& env) {
    using K = Expr::Kind;
    switch (e->kind()) {
      case K::kGroupBy: {
        TRANCE_ASSIGN_OR_RETURN(ExprPtr child, Rewrite(e->child(0), env));
        nrc::Typechecker tc;
        TRANCE_ASSIGN_OR_RETURN(TypePtr ct, tc.Check(child, env));
        if (!ct->is_bag() || !ct->element()->is_tuple()) {
          return Status::TypeError("groupBy over non-tuple bag");
        }
        const auto& fields = ct->element()->fields();
        std::string d = "_gbd" + std::to_string(++counter_);
        std::string x0 = "_gbx" + std::to_string(++counter_);
        std::string x1 = "_gby" + std::to_string(++counter_);
        // dedup(for x0 in child union { <k := x0.k ...> })
        std::vector<nrc::NamedExpr> key_fields;
        for (const auto& k : e->keys()) {
          key_fields.push_back({k, Expr::Proj(Expr::Var(x0), k)});
        }
        ExprPtr domain = Expr::Dedup(Expr::ForUnion(
            x0, child, Expr::Singleton(Expr::Tuple(key_fields))));
        // inner: for x1 in child union if (x1.k == d.k && ...) then {<rest>}
        ExprPtr cond;
        for (const auto& k : e->keys()) {
          ExprPtr c = Expr::Cmp(nrc::CmpOpKind::kEq,
                                Expr::Proj(Expr::Var(x1), k),
                                Expr::Proj(Expr::Var(d), k));
          cond = cond == nullptr
                     ? c
                     : Expr::BoolOp(nrc::BoolOpKind::kAnd, cond, c);
        }
        std::vector<nrc::NamedExpr> rest_fields;
        for (const auto& f : fields) {
          if (std::find(e->keys().begin(), e->keys().end(), f.name) ==
              e->keys().end()) {
            rest_fields.push_back({f.name, Expr::Proj(Expr::Var(x1), f.name)});
          }
        }
        ExprPtr inner = Expr::ForUnion(
            x1, child,
            Expr::IfThen(cond,
                         Expr::Singleton(Expr::Tuple(rest_fields))));
        std::vector<nrc::NamedExpr> head;
        for (const auto& k : e->keys()) {
          head.push_back({k, Expr::Proj(Expr::Var(d), k)});
        }
        head.push_back({e->attr(), inner});
        return Expr::ForUnion(d, domain,
                              Expr::Singleton(Expr::Tuple(head)));
      }
      case K::kForUnion: {
        TRANCE_ASSIGN_OR_RETURN(ExprPtr dom, Rewrite(e->child(0), env));
        nrc::Typechecker tc;
        TRANCE_ASSIGN_OR_RETURN(TypePtr dt, tc.Check(dom, env));
        TypeEnv inner = env;
        if (dt->is_bag()) inner[e->var_name()] = dt->element();
        TRANCE_ASSIGN_OR_RETURN(ExprPtr body, Rewrite(e->child(1), inner));
        return Expr::ForUnion(e->var_name(), dom, body);
      }
      case K::kLet: {
        TRANCE_ASSIGN_OR_RETURN(ExprPtr v, Rewrite(e->child(0), env));
        nrc::Typechecker tc;
        TRANCE_ASSIGN_OR_RETURN(TypePtr vt, tc.Check(v, env));
        TypeEnv inner = env;
        inner[e->var_name()] = vt;
        TRANCE_ASSIGN_OR_RETURN(ExprPtr body, Rewrite(e->child(1), inner));
        return Expr::Let(e->var_name(), v, body);
      }
      case K::kTupleCtor:
      case K::kNewLabel: {
        std::vector<nrc::NamedExpr> fields;
        for (const auto& f : e->fields()) {
          TRANCE_ASSIGN_OR_RETURN(ExprPtr fe, Rewrite(f.expr, env));
          fields.push_back({f.name, fe});
        }
        return e->kind() == K::kTupleCtor ? Expr::Tuple(std::move(fields))
                                          : Expr::NewLabel(std::move(fields));
      }
      default: {
        if (e->num_children() == 0) return e;
        std::vector<ExprPtr> kids;
        for (size_t i = 0; i < e->num_children(); ++i) {
          TRANCE_ASSIGN_OR_RETURN(ExprPtr k, Rewrite(e->child(i), env));
          kids.push_back(k);
        }
        switch (e->kind()) {
          case K::kProj:
            return Expr::Proj(kids[0], e->attr());
          case K::kSingleton:
            return Expr::Singleton(kids[0]);
          case K::kGet:
            return Expr::Get(kids[0]);
          case K::kUnion:
            return Expr::Union(kids[0], kids[1]);
          case K::kIfThen:
            return Expr::IfThen(kids[0], kids[1],
                                kids.size() == 3 ? kids[2] : nullptr);
          case K::kPrimOp:
            return Expr::PrimOp(e->prim_op(), kids[0], kids[1]);
          case K::kCmp:
            return Expr::Cmp(e->cmp_op(), kids[0], kids[1]);
          case K::kBoolOp:
            return Expr::BoolOp(e->bool_op(), kids[0], kids[1]);
          case K::kNot:
            return Expr::Not(kids[0]);
          case K::kDedup:
            return Expr::Dedup(kids[0]);
          case K::kSumBy:
            return Expr::SumBy(e->keys(), e->values(), kids[0]);
          default:
            return Status::NotImplemented(
                "expression kind in groupBy desugaring");
        }
      }
    }
  }

 private:
  int counter_ = 0;
};

/// A flat reference that a label must capture: a projection of a tuple-typed
/// flat variable or a whole scalar/label-typed flat variable.
struct FlatRef {
  std::string pname;   // canonical parameter name
  ExprPtr source;      // expression creating the captured value
  TypePtr type;
};

void CollectFlatRefs(const ExprPtr& e,
                     const std::map<std::string, TypePtr>& flat_env,
                     std::set<std::string>* bound,
                     std::map<std::string, FlatRef>* out) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kProj: {
      const ExprPtr& base = e->child(0);
      if (base->kind() == K::kVarRef && bound->count(base->var_name()) == 0) {
        auto it = flat_env.find(base->var_name());
        if (it != flat_env.end() && it->second->is_tuple()) {
          auto ft = it->second->FieldType(e->attr());
          if (ft.ok() && ((*ft)->is_scalar() || (*ft)->is_label())) {
            std::string pname = base->var_name() + "." + e->attr();
            out->emplace(pname, FlatRef{pname, e, *ft});
            return;
          }
        }
      }
      CollectFlatRefs(base, flat_env, bound, out);
      return;
    }
    case K::kVarRef: {
      if (bound->count(e->var_name())) return;
      auto it = flat_env.find(e->var_name());
      if (it != flat_env.end() &&
          (it->second->is_scalar() || it->second->is_label())) {
        out->emplace(e->var_name(), FlatRef{e->var_name(), e, it->second});
      }
      return;
    }
    case K::kForUnion:
    case K::kLet: {
      CollectFlatRefs(e->child(0), flat_env, bound, out);
      bool inserted = bound->insert(e->var_name()).second;
      CollectFlatRefs(e->child(1), flat_env, bound, out);
      if (inserted) bound->erase(e->var_name());
      return;
    }
    case K::kLambda:
    case K::kMatchLabel: {
      if (e->kind() == K::kMatchLabel) {
        CollectFlatRefs(e->child(0), flat_env, bound, out);
      }
      bool inserted = bound->insert(e->var_name()).second;
      CollectFlatRefs(e->child(e->kind() == K::kMatchLabel ? 1 : 0), flat_env,
                      bound, out);
      if (inserted) bound->erase(e->var_name());
      return;
    }
    case K::kTupleCtor:
    case K::kNewLabel:
      for (const auto& f : e->fields()) {
        CollectFlatRefs(f.expr, flat_env, bound, out);
      }
      return;
    default:
      for (size_t i = 0; i < e->num_children(); ++i) {
        CollectFlatRefs(e->child(i), flat_env, bound, out);
      }
      return;
  }
}

/// Rewrites captured flat references to projections of the match variable.
ExprPtr RewriteToMatchVar(const ExprPtr& e,
                          const std::map<std::string, FlatRef>& refs,
                          const std::string& match_var,
                          std::set<std::string>* bound) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kProj: {
      const ExprPtr& base = e->child(0);
      if (base->kind() == K::kVarRef && bound->count(base->var_name()) == 0) {
        std::string pname = base->var_name() + "." + e->attr();
        if (refs.count(pname)) {
          return Expr::Proj(Expr::Var(match_var), pname);
        }
      }
      return Expr::Proj(RewriteToMatchVar(base, refs, match_var, bound),
                        e->attr());
    }
    case K::kVarRef: {
      if (bound->count(e->var_name()) == 0 && refs.count(e->var_name())) {
        return Expr::Proj(Expr::Var(match_var), e->var_name());
      }
      return e;
    }
    case K::kConst:
    case K::kEmptyBag:
      return e;
    case K::kForUnion: {
      ExprPtr dom = RewriteToMatchVar(e->child(0), refs, match_var, bound);
      bool inserted = bound->insert(e->var_name()).second;
      ExprPtr body = RewriteToMatchVar(e->child(1), refs, match_var, bound);
      if (inserted) bound->erase(e->var_name());
      return Expr::ForUnion(e->var_name(), dom, body);
    }
    case K::kLet: {
      ExprPtr v = RewriteToMatchVar(e->child(0), refs, match_var, bound);
      bool inserted = bound->insert(e->var_name()).second;
      ExprPtr body = RewriteToMatchVar(e->child(1), refs, match_var, bound);
      if (inserted) bound->erase(e->var_name());
      return Expr::Let(e->var_name(), v, body);
    }
    case K::kLambda: {
      bool inserted = bound->insert(e->var_name()).second;
      ExprPtr body = RewriteToMatchVar(e->child(0), refs, match_var, bound);
      if (inserted) bound->erase(e->var_name());
      return Expr::Lambda(e->var_name(), body);
    }
    case K::kMatchLabel: {
      ExprPtr lbl = RewriteToMatchVar(e->child(0), refs, match_var, bound);
      bool inserted = bound->insert(e->var_name()).second;
      ExprPtr body = RewriteToMatchVar(e->child(1), refs, match_var, bound);
      if (inserted) bound->erase(e->var_name());
      return Expr::MatchLabel(lbl, e->var_name(), body,
                              e->match_param_type());
    }
    case K::kTupleCtor:
    case K::kNewLabel: {
      std::vector<nrc::NamedExpr> fields;
      for (const auto& f : e->fields()) {
        fields.push_back(
            {f.name, RewriteToMatchVar(f.expr, refs, match_var, bound)});
      }
      return e->kind() == K::kTupleCtor ? Expr::Tuple(std::move(fields))
                                        : Expr::NewLabel(std::move(fields));
    }
    default: {
      std::vector<ExprPtr> kids;
      for (size_t i = 0; i < e->num_children(); ++i) {
        kids.push_back(RewriteToMatchVar(e->child(i), refs, match_var, bound));
      }
      switch (e->kind()) {
        case K::kSingleton:
          return Expr::Singleton(kids[0]);
        case K::kGet:
          return Expr::Get(kids[0]);
        case K::kUnion:
          return Expr::Union(kids[0], kids[1]);
        case K::kIfThen:
          return Expr::IfThen(kids[0], kids[1],
                              kids.size() == 3 ? kids[2] : nullptr);
        case K::kPrimOp:
          return Expr::PrimOp(e->prim_op(), kids[0], kids[1]);
        case K::kCmp:
          return Expr::Cmp(e->cmp_op(), kids[0], kids[1]);
        case K::kBoolOp:
          return Expr::BoolOp(e->bool_op(), kids[0], kids[1]);
        case K::kNot:
          return Expr::Not(kids[0]);
        case K::kDedup:
          return Expr::Dedup(kids[0]);
        case K::kGroupBy:
          return Expr::GroupBy(e->keys(), kids[0], e->attr());
        case K::kSumBy:
          return Expr::SumBy(e->keys(), e->values(), kids[0]);
        case K::kLookup:
          return Expr::Lookup(kids[0], kids[1]);
        case K::kMatLookup:
          return Expr::MatLookup(kids[0], kids[1]);
        case K::kDictTreeUnion:
          return Expr::DictTreeUnion(kids[0], kids[1]);
        case K::kBagToDict:
          return Expr::BagToDict(kids[0]);
        default:
          TRANCE_CHECK(false, "unreachable RewriteToMatchVar");
          return e;
      }
    }
  }
}

}  // namespace

StatusOr<ExprPtr> DesugarGroupBy(const ExprPtr& e, const TypeEnv& env) {
  GroupByDesugarer d;
  return d.Rewrite(e, env);
}

SymbolicShredder::SymbolicShredder(TypeEnv env,
                                   std::map<std::string, VarMapping> mapping)
    : src_env_(std::move(env)), mapping_(std::move(mapping)) {
  for (const auto& [name, t] : src_env_) {
    if (mapping_.count(name) == 0) {
      mapping_[name] = {FlatInputName(name), name + "_D"};
    }
    auto st = ShredType(t);
    if (st.ok()) flat_env_[mapping_[name].flat_name] = st->flat;
  }
}

StatusOr<ShreddedQuery> SymbolicShredder::Shred(const ExprPtr& e) {
  TRANCE_ASSIGN_OR_RETURN(ExprPtr desugared, DesugarGroupBy(e, src_env_));
  TRANCE_ASSIGN_OR_RETURN(FD fd, ShredImpl(desugared));
  return ShreddedQuery{fd.f, fd.d};
}

StatusOr<nrc::ExprPtr> SymbolicShredder::EmptyDictTree(
    const TypePtr& source_bag_type) {
  const TypePtr elem = source_bag_type->is_bag()
                           ? source_bag_type->element()
                           : source_bag_type;
  std::vector<nrc::NamedExpr> fields;
  if (elem->is_tuple()) {
    for (const auto& f : elem->fields()) {
      if (!f.type->is_bag()) continue;
      TRANCE_ASSIGN_OR_RETURN(ShreddedType st, ShredType(f.type));
      fields.push_back(
          {f.name + "fun",
           Expr::Lambda("_l", Expr::EmptyBag(st.flat))});
      TRANCE_ASSIGN_OR_RETURN(ExprPtr child, EmptyDictTree(f.type));
      fields.push_back({f.name + "child", Expr::Singleton(child)});
    }
  }
  return Expr::Tuple(std::move(fields));
}

StatusOr<SymbolicShredder::FD> SymbolicShredder::MakeLabelAndDict(
    const ExprPtr& body_f, const ExprPtr& body_d) {
  std::map<std::string, FlatRef> refs;
  std::set<std::string> bound;
  CollectFlatRefs(body_f, flat_env_, &bound, &refs);
  // NewLabel with canonically named, sorted parameters (std::map iterates
  // sorted) so label construction is deterministic across query sites.
  std::vector<nrc::NamedExpr> params;
  std::vector<nrc::Field> param_fields;
  for (const auto& [pname, ref] : refs) {
    params.push_back({pname, ref.source});
    param_fields.push_back({pname, ref.type});
  }
  std::string m = "_m" + std::to_string(++match_counter_);
  std::string l = "_l" + std::to_string(match_counter_);
  bound.clear();
  ExprPtr rewritten = RewriteToMatchVar(body_f, refs, m, &bound);
  ExprPtr fun = Expr::Lambda(
      l, Expr::MatchLabel(Expr::Var(l), m, rewritten,
                          Type::Tuple(std::move(param_fields))));
  FD out;
  out.f = Expr::NewLabel(std::move(params));
  out.d = fun;
  (void)body_d;
  return out;
}

StatusOr<SymbolicShredder::FD> SymbolicShredder::ShredImpl(const ExprPtr& e) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kConst:
      return FD{e, Expr::Tuple({})};
    case K::kVarRef: {
      auto it = mapping_.find(e->var_name());
      if (it == mapping_.end()) {
        return Status::Invalid("unmapped source variable " + e->var_name());
      }
      return FD{Expr::Var(it->second.flat_name),
                Expr::Var(it->second.dict_name)};
    }
    case K::kProj: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr t, src_types_.Check(e, src_env_));
      TRANCE_ASSIGN_OR_RETURN(FD base, ShredImpl(e->child(0)));
      if (t->is_bag()) {
        ExprPtr f = Expr::Lookup(Expr::Proj(base.d, e->attr() + "fun"),
                                 Expr::Proj(base.f, e->attr()));
        ExprPtr d = Expr::Get(Expr::Proj(base.d, e->attr() + "child"));
        return FD{f, d};
      }
      return FD{Expr::Proj(base.f, e->attr()), Expr::Tuple({})};
    }
    case K::kTupleCtor: {
      std::vector<nrc::NamedExpr> flat_fields;
      std::vector<nrc::NamedExpr> dict_fields;
      for (const auto& f : e->fields()) {
        TRANCE_ASSIGN_OR_RETURN(TypePtr ft, src_types_.Check(f.expr, src_env_));
        TRANCE_ASSIGN_OR_RETURN(FD sub, ShredImpl(f.expr));
        if (ft->is_bag()) {
          TRANCE_ASSIGN_OR_RETURN(FD lab, MakeLabelAndDict(sub.f, sub.d));
          flat_fields.push_back({f.name, lab.f});
          dict_fields.push_back({f.name + "fun", lab.d});
          dict_fields.push_back({f.name + "child", Expr::Singleton(sub.d)});
        } else {
          flat_fields.push_back({f.name, sub.f});
        }
      }
      return FD{Expr::Tuple(std::move(flat_fields)),
                Expr::Tuple(std::move(dict_fields))};
    }
    case K::kEmptyBag: {
      TRANCE_ASSIGN_OR_RETURN(ShreddedType st, ShredType(e->declared_type()));
      TRANCE_ASSIGN_OR_RETURN(ExprPtr d, EmptyDictTree(e->declared_type()));
      return FD{Expr::EmptyBag(st.flat), d};
    }
    case K::kSingleton: {
      TRANCE_ASSIGN_OR_RETURN(FD sub, ShredImpl(e->child(0)));
      return FD{Expr::Singleton(sub.f), sub.d};
    }
    case K::kGet: {
      TRANCE_ASSIGN_OR_RETURN(FD sub, ShredImpl(e->child(0)));
      return FD{Expr::Get(sub.f), sub.d};
    }
    case K::kForUnion: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr dt, src_types_.Check(e->child(0),
                                                           src_env_));
      if (!dt->is_bag()) return Status::TypeError("for over non-bag");
      TRANCE_ASSIGN_OR_RETURN(FD dom, ShredImpl(e->child(0)));
      const std::string& x = e->var_name();
      VarMapping vm{x + "_F", x + "_D"};
      auto saved_mapping = mapping_;
      auto saved_env = src_env_;
      mapping_[x] = vm;
      src_env_[x] = dt->element();
      TRANCE_ASSIGN_OR_RETURN(ShreddedType est, ShredType(dt->element()));
      flat_env_[vm.flat_name] = est.flat;
      auto body = ShredImpl(e->child(1));
      mapping_ = std::move(saved_mapping);
      src_env_ = std::move(saved_env);
      if (!body.ok()) return body.status();
      ExprPtr f = Expr::Let(vm.dict_name, dom.d,
                            Expr::ForUnion(vm.flat_name, dom.f, body->f));
      ExprPtr d = Expr::Let(vm.dict_name, dom.d, body->d);
      return FD{f, d};
    }
    case K::kUnion: {
      TRANCE_ASSIGN_OR_RETURN(FD a, ShredImpl(e->child(0)));
      TRANCE_ASSIGN_OR_RETURN(FD b, ShredImpl(e->child(1)));
      return FD{Expr::Union(a.f, b.f), Expr::DictTreeUnion(a.d, b.d)};
    }
    case K::kLet: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr vt, src_types_.Check(e->child(0),
                                                           src_env_));
      TRANCE_ASSIGN_OR_RETURN(FD v, ShredImpl(e->child(0)));
      const std::string& x = e->var_name();
      VarMapping vm{x + "_F", x + "_D"};
      auto saved_mapping = mapping_;
      auto saved_env = src_env_;
      mapping_[x] = vm;
      src_env_[x] = vt;
      TRANCE_ASSIGN_OR_RETURN(ShreddedType vst, ShredType(vt));
      flat_env_[vm.flat_name] = vst.flat;
      auto body = ShredImpl(e->child(1));
      mapping_ = std::move(saved_mapping);
      src_env_ = std::move(saved_env);
      if (!body.ok()) return body.status();
      ExprPtr f = Expr::Let(vm.dict_name, v.d,
                            Expr::Let(vm.flat_name, v.f, body->f));
      ExprPtr d = Expr::Let(vm.dict_name, v.d,
                            Expr::Let(vm.flat_name, v.f, body->d));
      return FD{f, d};
    }
    case K::kIfThen: {
      TRANCE_ASSIGN_OR_RETURN(FD c, ShredImpl(e->child(0)));
      TRANCE_ASSIGN_OR_RETURN(FD t, ShredImpl(e->child(1)));
      if (e->num_children() == 3) {
        TRANCE_ASSIGN_OR_RETURN(FD f, ShredImpl(e->child(2)));
        TRANCE_ASSIGN_OR_RETURN(TypePtr tt, src_types_.Check(e, src_env_));
        ExprPtr d = tt->is_bag() ? Expr::DictTreeUnion(t.d, f.d)
                                 : Expr::Tuple({});
        return FD{Expr::IfThen(c.f, t.f, f.f), d};
      }
      return FD{Expr::IfThen(c.f, t.f), t.d};
    }
    case K::kPrimOp: {
      TRANCE_ASSIGN_OR_RETURN(FD a, ShredImpl(e->child(0)));
      TRANCE_ASSIGN_OR_RETURN(FD b, ShredImpl(e->child(1)));
      return FD{Expr::PrimOp(e->prim_op(), a.f, b.f), Expr::Tuple({})};
    }
    case K::kCmp: {
      TRANCE_ASSIGN_OR_RETURN(FD a, ShredImpl(e->child(0)));
      TRANCE_ASSIGN_OR_RETURN(FD b, ShredImpl(e->child(1)));
      return FD{Expr::Cmp(e->cmp_op(), a.f, b.f), Expr::Tuple({})};
    }
    case K::kBoolOp: {
      TRANCE_ASSIGN_OR_RETURN(FD a, ShredImpl(e->child(0)));
      TRANCE_ASSIGN_OR_RETURN(FD b, ShredImpl(e->child(1)));
      return FD{Expr::BoolOp(e->bool_op(), a.f, b.f), Expr::Tuple({})};
    }
    case K::kNot: {
      TRANCE_ASSIGN_OR_RETURN(FD a, ShredImpl(e->child(0)));
      return FD{Expr::Not(a.f), Expr::Tuple({})};
    }
    case K::kDedup: {
      TRANCE_ASSIGN_OR_RETURN(FD a, ShredImpl(e->child(0)));
      return FD{Expr::Dedup(a.f), a.d};
    }
    case K::kSumBy: {
      TRANCE_ASSIGN_OR_RETURN(FD a, ShredImpl(e->child(0)));
      return FD{Expr::SumBy(e->keys(), e->values(), a.f), Expr::Tuple({})};
    }
    case K::kGroupBy:
      return Status::Internal("groupBy must be desugared before shredding");
    default:
      return Status::NotImplemented(
          "NRC^{Lbl+lambda} constructs cannot be re-shredded");
  }
}

}  // namespace shred
}  // namespace trance
