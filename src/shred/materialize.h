// The materialization phase (Section 4, Fig. 5): turns symbolically shredded
// programs into lambda-free assignment sequences computing explicit
// (relational) dictionaries.
//
// For a source program P with assignments v <= e, the materialized program
// contains, per assignment:
//   v_F       <= e^F with symbolic input dictionaries replaced by their
//                materialized counterparts (ReplaceSymbolicDicts),
//   v_D_<p>   <= one relational dictionary Bag(<label, ...fields>) per
//                dictionary path p of v's type, derived from the dictionary
//                tree e^D via domain elimination (or via LabDomain
//                assignments in baseline mode, Fig. 5 lines 3-8),
// over the shredded inputs X_F / X_D_<p>.
#ifndef TRANCE_SHRED_MATERIALIZE_H_
#define TRANCE_SHRED_MATERIALIZE_H_

#include <string>
#include <vector>

#include "nrc/expr.h"
#include "shred/shredded_type.h"
#include "util/status.h"

namespace trance {
namespace shred {

enum class MaterializeMode {
  kDomainElimination,  // apply the Section 4 domain-elimination rules
  kBaseline,           // always compute label domains (Fig. 5 verbatim)
};

struct MatDictOut {
  std::string path;
  std::string var;
  nrc::TypePtr flat_elem;
};

struct MaterializedProgram {
  nrc::Program program;
  /// Variable of the final top-level flat bag.
  std::string top_var;
  /// The final assignment's dictionaries, parents first.
  std::vector<MatDictOut> dicts;
  /// Source (nested) type of the final assignment.
  nrc::TypePtr output_type;
  /// True when some dictionary kept a match construct (baseline mode with
  /// multi-attribute labels); such programs run on the interpreter only.
  bool interpreter_only = false;
};

/// Shreds and materializes a whole program.
StatusOr<MaterializedProgram> ShredAndMaterialize(const nrc::Program& source,
                                                  MaterializeMode mode);

}  // namespace shred
}  // namespace trance

#endif  // TRANCE_SHRED_MATERIALIZE_H_
