// Columnar partition blocks: schema-typed column storage under the operators.
//
// A PartitionBlock stores one Dataset partition as typed columns instead of
// std::vector<Row> of variant Fields: int64/double/uint8 values live in
// contiguous ColumnVector<T> arrays, strings in a shared char arena with
// offsets, and label/bag-typed (or type-unstable) cells in a variant fallback
// column. Every column carries a null bitmap. Blocks are lossless: RowAt /
// ToRows reproduce the exact Field values that went in, so Field::Hash,
// Field::DeepSize, RowHashOn, and the key codec observe bit-identical values
// on both representations — the invariant that keeps results, placement,
// shuffle bytes, and every pre-existing JobStats field unchanged whether
// ExecOptions::enable_columnar is on or off.
//
// Layout follows the ClickHouse ColumnVector<T> idiom (flat typed arrays, no
// per-value dispatch on scan) and Thrill's cache-friendly flat item storage.
#ifndef TRANCE_RUNTIME_COLUMN_H_
#define TRANCE_RUNTIME_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nrc/type.h"
#include "runtime/field.h"
#include "runtime/schema.h"
#include "util/hash.h"

namespace trance {
namespace runtime {
namespace column {

/// Flat typed array; the ClickHouse ColumnVector shape. T is a POD cell type.
template <typename T>
class ColumnVector {
 public:
  void Append(T v) { data_.push_back(v); }
  T operator[](size_t i) const { return data_[i]; }
  size_t size() const { return data_.size(); }
  const T* data() const { return data_.data(); }
  void Reserve(size_t n) { data_.reserve(n); }
  uint64_t ByteFootprint() const { return data_.capacity() * sizeof(T); }

 private:
  std::vector<T> data_;
};

/// String column: contiguous char arena + end offsets (offset[i] is the end
/// of value i; value i spans [offset[i-1], offset[i])).
class StringColumn {
 public:
  void Append(std::string_view s) {
    chars_.append(s.data(), s.size());
    offsets_.push_back(chars_.size());
  }
  std::string_view At(size_t i) const {
    uint64_t begin = i == 0 ? 0 : offsets_[i - 1];
    return std::string_view(chars_.data() + begin, offsets_[i] - begin);
  }
  size_t size() const { return offsets_.size(); }
  uint64_t ByteFootprint() const {
    return chars_.capacity() + offsets_.capacity() * sizeof(uint64_t);
  }

 private:
  std::string chars_;
  std::vector<uint64_t> offsets_;
};

/// Per-column null bitmap, one bit per row, packed into 64-bit words.
class NullBitmap {
 public:
  void Append(bool is_null) {
    size_t word = size_ / 64;
    if (word == words_.size()) words_.push_back(0);
    if (is_null) {
      words_[word] |= uint64_t{1} << (size_ % 64);
      any_ = true;
    }
    ++size_;
  }
  bool IsNull(size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1;
  }
  bool any() const { return any_; }
  size_t size() const { return size_; }
  uint64_t ByteFootprint() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
  bool any_ = false;
};

/// One schema column in typed form. Scalar int/real/bool/string columns use
/// the flat representations above; label/bag/date-typed columns — and any
/// column whose runtime values do not match the declared scalar type — fall
/// back to a variant column of whole Fields.
class AnyColumn {
 public:
  enum class Kind { kInt64, kReal, kBool, kString, kVariant };

  /// Storage kind for a declared NRC column type. Label, bag, tuple, dict,
  /// and date columns use the variant fallback.
  static Kind KindForType(const nrc::TypePtr& type) {
    if (type == nullptr || !type->is_scalar()) return Kind::kVariant;
    switch (type->scalar_kind()) {
      case nrc::ScalarKind::kInt: return Kind::kInt64;
      case nrc::ScalarKind::kReal: return Kind::kReal;
      case nrc::ScalarKind::kBool: return Kind::kBool;
      case nrc::ScalarKind::kString: return Kind::kString;
      case nrc::ScalarKind::kDate: return Kind::kVariant;
    }
    return Kind::kVariant;
  }

  explicit AnyColumn(Kind kind = Kind::kVariant) : kind_(kind) {}

  Kind kind() const { return kind_; }
  size_t size() const { return nulls_.size(); }

  /// Appends one cell. NULLs set the bitmap bit and a default value slot; a
  /// value that does not match the column's typed kind demotes the whole
  /// column to kVariant first (losslessly), so blocks never reject data.
  void Append(const Field& f);

  /// Typed-copy append from another column; falls back to Append(At(i)) when
  /// the kinds differ.
  void AppendFrom(const AnyColumn& src, size_t i);

  bool IsNull(size_t i) const { return nulls_.IsNull(i); }

  /// Materializes cell i as a Field, bit-identical to the Field appended.
  Field At(size_t i) const;

  /// Bytes that Field accounting (Field::DeepSize) would charge for cell i.
  /// Matches field.cc exactly: 8 for null/int/real/bool, 32 + length for
  /// strings, DeepSize of the stored Field for variant cells.
  uint64_t CellBytes(size_t i) const;

  /// Field::Hash of cell i without materializing scalar cells.
  uint64_t CellHash(size_t i) const;

  uint64_t ByteFootprint() const;

  // Typed readers for tight scan loops; valid only for the matching kind.
  const int64_t* ints() const { return ints_.data(); }
  const double* reals() const { return reals_.data(); }
  const uint8_t* bools() const { return bools_.data(); }
  const StringColumn& strings() const { return strs_; }
  const NullBitmap& nulls() const { return nulls_; }

 private:
  void DemoteToVariant();

  Kind kind_;
  ColumnVector<int64_t> ints_;
  ColumnVector<double> reals_;
  ColumnVector<uint8_t> bools_;
  StringColumn strs_;
  std::vector<Field> variant_;
  NullBitmap nulls_;
  uint64_t variant_bytes_ = 0;  // accumulated DeepSize of variant cells
};

/// One partition in columnar form. Constructed from a Schema (column kinds
/// derive from the declared NRC types) and filled row-by-row or from an
/// existing std::vector<Row>. Rows whose width disagrees with the schema
/// demote the whole block to a ragged row-vector fallback, so the block is
/// lossless for any input the row path accepts.
class PartitionBlock {
 public:
  PartitionBlock() = default;
  explicit PartitionBlock(const Schema& schema);

  static PartitionBlock FromRows(const Schema& schema,
                                 const std::vector<Row>& rows);

  void AppendRow(const Row& r);
  /// Column-wise copy of row i of src. Falls back to AppendRow when either
  /// block is ragged or the widths differ.
  void AppendRowFrom(const PartitionBlock& src, size_t i);

  size_t NumRows() const { return ragged_mode_ ? ragged_.size() : num_rows_; }
  size_t NumCols() const { return cols_.size(); }

  /// Materializes row i; bit-identical to the row appended.
  Row RowAt(size_t i) const;
  /// Materializes cell (row, col). Valid in ragged mode too.
  Field FieldAt(size_t row, size_t col) const;
  bool IsNull(size_t row, size_t col) const;

  std::vector<Row> ToRows() const;
  void AppendRowsTo(std::vector<Row>* out) const;

  /// Bytes Field accounting charges for row i — identical to
  /// RowDeepSize(RowAt(i)) without materializing.
  uint64_t RowBytesAt(size_t i) const;
  uint64_t TotalRowBytes() const;

  /// RowHashOn(RowAt(i), cols) without materializing scalar cells.
  uint64_t HashRowOn(size_t i, const std::vector<int>& cols) const;

  /// In-memory footprint of the columnar storage itself (arena capacity, not
  /// Field accounting); feeds the columnar_bytes counter.
  uint64_t ByteFootprint() const;

  bool ragged() const { return ragged_mode_; }
  const AnyColumn& col(size_t i) const { return cols_[i]; }

 private:
  void DemoteToRagged();

  std::vector<AnyColumn> cols_;
  size_t num_rows_ = 0;
  // Fallback for rows whose width disagrees with the schema (width changes
  // mid-pipeline are legal in the row path, e.g. between fused stage steps).
  bool ragged_mode_ = false;
  std::vector<Row> ragged_;
};

}  // namespace column
}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_COLUMN_H_
