// The simulated cluster: worker/partition configuration, cost model, memory
// caps, and statistics collection. Stands in for the paper's 5-node Spark 2.4
// cluster (see DESIGN.md substitution table).
#ifndef TRANCE_RUNTIME_CLUSTER_H_
#define TRANCE_RUNTIME_CLUSTER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "runtime/dataset.h"
#include "runtime/fault.h"
#include "runtime/key_codec.h"
#include "runtime/spill.h"
#include "runtime/stats.h"
#include "util/hash.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace trance {
namespace runtime {

struct ClusterConfig {
  /// Number of partitions ("1000 partitions used for shuffling data" in the
  /// paper; scaled down with the data).
  int num_partitions = 16;
  /// Per-partition memory cap; exceeding it is the paper's FAIL ("crashed due
  /// to memory saturation of a node").
  uint64_t partition_memory_cap = 256ull << 20;
  /// Collections smaller than this may be broadcast (paper: Spark broadcasts
  /// anything under 10MB).
  uint64_t broadcast_threshold = 10ull << 20;
  /// Cost model: synchronous stages, straggler-bound.
  double seconds_per_cpu_byte = 2e-9;   // ~500 MB/s scan+build per worker
  double seconds_per_net_byte = 8e-9;   // ~125 MB/s shuffle bandwidth
  double stage_overhead_seconds = 0.05;  // scheduling + barrier overhead
  /// Skew sampling (Section 5): fraction of tuples sampled per partition and
  /// the frequency threshold above which a key is heavy (2.5% => at most 40
  /// distinct heavy keys per partition).
  double skew_sample_rate = 0.1;
  double heavy_key_threshold = 0.025;
  uint64_t seed = 42;
  /// Threads for partition-parallel operator execution. 0 = auto (the
  /// TRANCE_THREADS env var if set, else hardware_concurrency); 1 = fully
  /// sequential (the pre-parallel code path, no pool involvement). The
  /// thread count never affects results: outputs and all JobStats fields
  /// are bit-identical across thread counts (see DESIGN.md, Threading
  /// model).
  int num_threads = 0;
  /// Fault injection & recovery (off by default; see runtime/fault.h and
  /// docs/ARCHITECTURE.md). With faults enabled and a sufficient retry
  /// budget, results and all non-recovery stats are bit-identical to a
  /// fault-free run.
  FaultConfig faults{};
  /// Out-of-core spill knobs (runtime/spill.h, docs/STORAGE.md). Whether the
  /// spill sites engage at all is the executor's ExecOptions::enable_spill;
  /// this configures where runs go and how they are bounded once they do.
  spill::SpillConfig spill{};
};

/// Cluster state: configuration + per-job statistics. One Cluster per
/// executing query; stage recording, scope attribution and memory checks are
/// mutex-guarded so operator internals may run partition-parallel. The
/// stats() reference is only safe to read at stage barriers (i.e. between
/// operator calls), which is where all callers read it.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config)
      : config_(config),
        num_threads_(config.num_threads > 0 ? config.num_threads
                                            : util::DefaultNumThreads()),
        injector_(config.faults) {
    TRANCE_CHECK(config_.num_partitions > 0, "cluster without partitions");
  }
  Cluster() : Cluster(ClusterConfig{}) {}

  const ClusterConfig& config() const { return config_; }
  JobStats& stats() { return stats_; }
  const JobStats& stats() const { return stats_; }

  /// Per-cluster metric registry. Stage recording, memory checks and fault
  /// recovery publish into it alongside (never instead of) JobStats, so a
  /// metric registered here shows up in every exposition surface without
  /// further plumbing (see src/obs/metrics.h). Always on — updates are
  /// sharded atomics, cheap enough to leave unconditional.
  obs::MetricRegistry& metrics() { return metrics_; }
  const obs::MetricRegistry& metrics() const { return metrics_; }

  /// Starts a new job (one executed program): bumps the id that tags every
  /// event this cluster emits. Per-cluster — not process-global — so the id
  /// sequence of a workload is deterministic no matter what else ran in the
  /// process. Returns the new id (first job is 1; 0 means "outside any
  /// job"). Driver-side only.
  uint64_t BeginJob() { return ++job_id_; }
  uint64_t current_job_id() const { return job_id_; }

  int num_partitions() const { return config_.num_partitions; }
  /// Resolved thread budget (config.num_threads, TRANCE_THREADS, or
  /// hardware_concurrency — in that order of precedence).
  int num_threads() const { return num_threads_; }

  /// Runs fn(p) for p in [0, n) on the cluster's thread budget with a
  /// barrier at return; num_threads() == 1 runs inline. Operators keep all
  /// shared state indexed by p and merge after the barrier in partition
  /// order, which is what keeps parallel stats bit-identical to sequential.
  void RunParallel(size_t n, const std::function<void(size_t)>& fn) const {
    util::ParallelFor(num_threads_, n, fn);
  }

  const FaultInjector& fault_injector() const { return injector_; }

  /// Runs the per-partition tasks of one stage with fault injection and
  /// recovery. With the injector disabled this is exactly RunParallel(n,
  /// task). Otherwise, for every task slot p the injector decides (seeded,
  /// deterministically — independent of thread count and wall clock)
  /// whether each attempt faults:
  ///   - crash-type faults (worker crash, transient ResourceExhausted) run
  ///     task(p) and then discard its partial output via reset(p) — a real
  ///     re-execution from the stage's (immutable, driver-held) input
  ///     partitions, i.e. lineage recovery;
  ///   - fetch-loss faults strike before any work: the task is skipped and
  ///     retried.
  /// When `reset` is null the task cannot be unwound mid-flight (e.g. the
  /// shuffle's fetch phase moves rows destructively), so every fault is
  /// handled pre-task like a fetch loss; results are identical either way
  /// because tasks are deterministic.
  ///
  /// Each fault is appended to stage->fault_events and counted in
  /// stage->injected_faults / retries / partition_retries (merged in slot
  /// order after the barrier, so fault telemetry is thread-count-invariant
  /// too). RecordStage later converts the events into the stage's
  /// recovery_sim_seconds charge (bounded exponential backoff + discarded
  /// work), keeping sim_seconds itself fault-invariant.
  ///
  /// A task that faults more than config().faults.max_task_retries times
  /// escalates: the job fails with ResourceExhausted naming `stage_name`
  /// and the partition. The injector itself stops failing a task after
  /// max_faults_per_task faults, so a budget >= max_faults_per_task makes
  /// recovery guaranteed.
  Status RunRecoverableTasks(const std::string& stage_name, size_t n,
                             StageStats* stage,
                             const std::function<void(size_t)>& task,
                             const std::function<void(size_t)>& reset);

  /// Records a finished stage, deriving its simulated time from the cost
  /// model, stamping its wall-time interval, and attributing it to the
  /// current operator scope (if any).
  void RecordStage(StageStats s);

  /// Fails with ResourceExhausted if any partition of `ds` exceeds the
  /// per-partition memory cap.
  Status CheckMemory(const Dataset& ds, const std::string& op);
  /// Same check over precomputed per-partition byte footprints (lets callers
  /// that already walked the dataset avoid a second deep-size pass).
  /// `spilled`, when non-null, marks partitions whose working set was spilled
  /// to disk (runtime/spill.h): they still count toward the peak-bytes
  /// telemetry — so mem_high_water / peak_partition_bytes match an uncapped
  /// run — but no longer fail the cap check.
  Status CheckMemoryBytes(const std::vector<uint64_t>& partition_bytes,
                          const std::string& op,
                          const std::vector<uint8_t>* spilled = nullptr);

  /// Target partition of a key hash. The splitmix64 finalizer decorrelates
  /// partition assignment from low-bit structure in the key hash; the
  /// cluster seed perturbs the mapping so reruns can vary placement
  /// deterministically.
  int PartitionOf(uint64_t key_hash) const {
    return static_cast<int>(SplitMix64(key_hash ^ config_.seed) %
                            static_cast<uint64_t>(config_.num_partitions));
  }
  /// Target partition of an encoded key. The codec's hash is exactly
  /// RowHashOn, so this places a key on the same partition whether the
  /// caller routed via the codec or via the legacy hash — placement is
  /// bit-identical with the codec on or off.
  int PartitionOf(const key_codec::EncodedKey& k) const {
    return PartitionOf(k.hash);
  }
  int PartitionOf(const key_codec::EncodedKeyView& k) const {
    return PartitionOf(k.hash);
  }

  /// Whether keyed operators run on the compact binary key codec (default)
  /// or the historical KeyView containers. Set by the executor from
  /// ExecOptions::enable_key_codec; results and all pre-existing stats are
  /// bit-identical either way (tests/key_codec_test.cc).
  bool key_codec_enabled() const { return key_codec_enabled_; }
  void set_key_codec_enabled(bool on) { key_codec_enabled_ = on; }

  /// Whether the encoded-key operators use the open-addressing flat table
  /// of runtime/flat_hash.h (default) or the node-based
  /// std::unordered_map fallback. Only observable when the key codec is
  /// enabled (the legacy KeyView path has no encoded keys to index). Set by
  /// the executor from ExecOptions::enable_flat_hash; results and all
  /// pre-existing stats are bit-identical either way
  /// (tests/flat_hash_test.cc) — only the flat-only counters
  /// (hash_table_bytes / hash_resizes / hash_probe_len_max) differ (0 when
  /// off).
  bool flat_hash_enabled() const { return flat_hash_enabled_; }
  void set_flat_hash_enabled(bool on) { flat_hash_enabled_ = on; }

  /// Whether operators run partitions through typed columnar blocks
  /// (runtime/column.h, default) or the historical std::vector<Row> path.
  /// Set by the executor from ExecOptions::enable_columnar; results,
  /// placement, shuffle bytes, and every pre-existing stat are bit-identical
  /// either way (tests/columnar_test.cc) — only the columnar-only counters
  /// (columnar_bytes / column_to_row_conversions) differ (0 when off).
  bool columnar_enabled() const { return columnar_enabled_; }
  void set_columnar_enabled(bool on) { columnar_enabled_ = on; }

  /// Whether partitions over the memory threshold spill to disk runs
  /// (runtime/spill.h, default) instead of hard-failing with
  /// ResourceExhausted — the historical FAIL behavior. Set by the executor
  /// from ExecOptions::enable_spill; results, placement, and every
  /// pre-existing stat are bit-identical between a capped spilling run and
  /// an uncapped run (tests/spill_test.cc) — only the spill-only counters
  /// (spill_bytes_written / spill_bytes_read / spill_runs /
  /// spill_merge_passes) differ (0 when off or when nothing spills).
  bool spill_enabled() const { return spill_enabled_; }
  void set_spill_enabled(bool on) { spill_enabled_ = on; }

  /// The cluster's spill manager (created lazily on first use so clusters
  /// that never spill never touch the filesystem). Driver- and task-callable;
  /// the manager's own methods are thread-safe.
  spill::SpillManager* spill_manager();

  /// The partition-byte threshold above which spill sites engage:
  /// config().spill.threshold_bytes, defaulting to the memory cap.
  uint64_t spill_threshold_bytes() const {
    return config_.spill.threshold_bytes > 0 ? config_.spill.threshold_bytes
                                             : config_.partition_memory_cap;
  }

  /// Operator-scope stack for plan-node attribution of stages (EXPLAIN
  /// ANALYZE): stages recorded while a scope is active carry its name.
  void PushScope(std::string scope) {
    std::lock_guard<std::mutex> lock(mu_);
    scope_stack_.push_back(std::move(scope));
  }
  void PopScope() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!scope_stack_.empty()) scope_stack_.pop_back();
  }
  std::string current_scope() const {
    std::lock_guard<std::mutex> lock(mu_);
    return scope_stack_.empty() ? std::string() : scope_stack_.back();
  }

 private:
  /// Publishes one finished stage into metrics_ and the event log; called
  /// from RecordStage under mu_ (driver-sequential, so event order is
  /// thread-count-invariant).
  void PublishStage(size_t stage_index, const StageStats& s);

  ClusterConfig config_;
  int num_threads_;
  bool key_codec_enabled_ = true;
  bool flat_hash_enabled_ = true;
  bool columnar_enabled_ = true;
  bool spill_enabled_ = true;
  FaultInjector injector_;
  /// Lazily created by spill_manager() under mu_.
  std::unique_ptr<spill::SpillManager> spill_manager_;
  obs::MetricRegistry metrics_;
  /// Event-log job tag; mutated by BeginJob from the driver only.
  uint64_t job_id_ = 0;
  /// Driver-side stage sequence number feeding the fault injector. Stages
  /// start sequentially from the driver, so the sequence is deterministic
  /// for a given query + config regardless of thread count.
  std::atomic<uint64_t> next_stage_seq_{0};
  /// Guards stats_, scope_stack_ and last_stage_end_us_ (RecordStage and
  /// CheckMemoryBytes may be reached from concurrent helper code).
  mutable std::mutex mu_;
  JobStats stats_;
  std::vector<std::string> scope_stack_;
  /// End timestamp (WallMicros) of the last recorded stage: the next stage's
  /// wall interval starts here (everything between two records is, to a good
  /// approximation, the later stage's work).
  double last_stage_end_us_ = -1;
};

/// RAII helper: pushes an operator scope for the lifetime of the object.
class StageScope {
 public:
  StageScope(Cluster* cluster, std::string scope) : cluster_(cluster) {
    cluster_->PushScope(std::move(scope));
  }
  ~StageScope() { cluster_->PopScope(); }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  Cluster* cluster_;
};

}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_CLUSTER_H_
