// Runtime schemas: named, NRC-typed columns of a distributed dataset.
// Bag-typed columns hold local nested collections (standard pipeline);
// label-typed columns appear in the shredded pipeline.
#ifndef TRANCE_RUNTIME_SCHEMA_H_
#define TRANCE_RUNTIME_SCHEMA_H_

#include <string>
#include <vector>

#include "nrc/type.h"
#include "util/status.h"

namespace trance {
namespace runtime {

struct Column {
  std::string name;
  nrc::TypePtr type;
};

/// Ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  /// Builds a schema from a bag-of-tuples NRC type.
  static StatusOr<Schema> FromBagType(const nrc::TypePtr& bag_type);

  const std::vector<Column>& columns() const { return cols_; }
  size_t size() const { return cols_.size(); }
  const Column& col(size_t i) const { return cols_[i]; }

  int IndexOf(const std::string& name) const;
  StatusOr<int> Require(const std::string& name) const;

  void Append(Column c) { cols_.push_back(std::move(c)); }

  /// The tuple type of one row.
  nrc::TypePtr RowType() const;
  /// Bag-of-rows type.
  nrc::TypePtr BagType() const;

  std::string ToString() const;

 private:
  std::vector<Column> cols_;
};

}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_SCHEMA_H_
