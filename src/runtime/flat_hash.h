// Flat open-addressing hash index over arena-stored encoded keys.
//
// PR 5 made every keyed operator produce contiguous, memcmp-comparable
// EncodedKey bytes precisely so the node-based std::unordered_map (one
// allocation plus a pointer chase per key) could be replaced by this table —
// the ClickHouse HashMap.h / Thrill design that keeps join/group-by build
// and probe on the memory bandwidth instead of the allocator:
//
//   - open addressing with linear probing over a power-of-two slot array
//     (bucket = SplitMix64(key hash) & mask, so weak low-bit entropy in the
//     commutative RowHashOn value cannot cluster probes);
//   - an append-only byte arena stores every distinct key's encoded bytes
//     inline; a slot is {hash, arena offset, key length, dense value index},
//     so an insert is one arena append (no node allocation) and a probe
//     memcmps the candidate's bytes against contiguous arena memory after a
//     64-bit hash pre-check;
//   - resize at 3/4 load doubles the slot array and reinserts by stored
//     hash — key bytes never move, so views into the arena stay valid;
//   - tombstone-free: the keyed operators only ever insert and look up
//     (there is no erase), which keeps probe chains contiguous forever.
//
// The table maps keys to dense uint32_t indices in first-insertion order —
// exactly the group-index idiom the operators already use — so one index
// type serves every consumer (join chains, cogroup bags, nest groups,
// reduce accumulators, dedup counts, the skew layer's heavy-key set) with
// values living in caller-side vectors. Because callers never iterate the
// table itself, internal ordering is unobservable and results stay
// bit-identical to the map-based path.
//
// StdKeyIndex is the same interface over std::unordered_map<EncodedKey, …> —
// the ExecOptions::enable_flat_hash escape hatch — so each operator's
// encoded path is written once and instantiated with either container.
#ifndef TRANCE_RUNTIME_FLAT_HASH_H_
#define TRANCE_RUNTIME_FLAT_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/key_codec.h"
#include "util/hash.h"

namespace trance {
namespace runtime {
namespace flat_hash {

class FlatKeyIndex {
 public:
  /// Sentinel returned by Find when the key is absent; also the largest
  /// dense index the table can hand out plus one.
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  FlatKeyIndex() = default;
  /// `expected` pre-sizes the slot array so the common build loop never
  /// resizes (matching the reserve() the map-based paths did).
  explicit FlatKeyIndex(size_t expected) {
    if (expected > 0) Rehash(SlotCountFor(expected));
  }

  /// Returns {dense index, true} for a new key (its bytes are appended to
  /// the arena) or {existing index, false}. Indices are dense and assigned
  /// in first-insertion order: the i-th distinct key gets index i.
  std::pair<uint32_t, bool> FindOrInsert(const key_codec::EncodedKeyView& k) {
    if (NeedsGrowth()) Rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
    const size_t mask = slots_.size() - 1;
    size_t b = static_cast<size_t>(SplitMix64(k.hash)) & mask;
    uint64_t dist = 0;
    while (true) {
      Slot& s = slots_[b];
      if (s.index == kEmptySlot) {
        uint32_t idx = static_cast<uint32_t>(keys_.size());
        s.hash = k.hash;
        s.offset = arena_.size();
        s.len = static_cast<uint32_t>(k.bytes.size());
        s.index = idx;
        arena_.append(k.bytes.data(), k.bytes.size());
        keys_.push_back(KeyRef{k.hash, s.offset, s.len});
        if (dist > max_probe_) max_probe_ = dist;
        return {idx, true};
      }
      if (SlotMatches(s, k)) {
        if (dist > max_probe_) max_probe_ = dist;
        return {s.index, false};
      }
      b = (b + 1) & mask;
      ++dist;
    }
  }

  /// Probe-only lookup; never allocates. Returns kNotFound when absent.
  uint32_t Find(const key_codec::EncodedKeyView& k) const {
    if (slots_.empty()) return kNotFound;
    const size_t mask = slots_.size() - 1;
    size_t b = static_cast<size_t>(SplitMix64(k.hash)) & mask;
    uint64_t dist = 0;
    while (true) {
      const Slot& s = slots_[b];
      if (s.index == kEmptySlot) {
        if (dist > max_probe_) max_probe_ = dist;
        return kNotFound;
      }
      if (SlotMatches(s, k)) {
        if (dist > max_probe_) max_probe_ = dist;
        return s.index;
      }
      b = (b + 1) & mask;
      ++dist;
    }
  }

  /// The key of dense index i as a view into the arena (valid for the
  /// table's lifetime — the arena only appends).
  key_codec::EncodedKeyView KeyAt(uint32_t index) const {
    const KeyRef& r = keys_[index];
    return key_codec::EncodedKeyView{
        r.hash, std::string_view(arena_.data() + r.offset, r.len)};
  }

  size_t size() const { return keys_.size(); }

  /// Footprint of the table: slot array + arena bytes + dense key refs.
  /// Deterministic for a given insertion sequence (slot capacity is the
  /// power-of-two growth schedule, the arena holds exactly the distinct key
  /// bytes), so it is safe to gate exactly in bench_diff.
  uint64_t table_bytes() const {
    return static_cast<uint64_t>(slots_.size()) * sizeof(Slot) +
           static_cast<uint64_t>(arena_.size()) +
           static_cast<uint64_t>(keys_.size()) * sizeof(KeyRef);
  }
  /// Slot-array doublings performed after construction.
  uint64_t resizes() const { return resizes_; }
  /// Longest probe sequence (in extra slots past the home bucket) any
  /// insert or lookup walked.
  uint64_t max_probe_len() const { return max_probe_; }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint64_t offset = 0;
    uint32_t len = 0;
    uint32_t index = kEmptySlot;
  };
  struct KeyRef {
    uint64_t hash;
    uint64_t offset;
    uint32_t len;
  };
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;
  static constexpr size_t kMinSlots = 16;

  bool NeedsGrowth() const {
    // Max load factor 3/4: grow before the insert that would cross it.
    return slots_.empty() || (keys_.size() + 1) * 4 > slots_.size() * 3;
  }

  static size_t SlotCountFor(size_t expected) {
    size_t n = kMinSlots;
    while (expected * 4 > n * 3) n *= 2;
    return n;
  }

  bool SlotMatches(const Slot& s, const key_codec::EncodedKeyView& k) const {
    return s.hash == k.hash && s.len == k.bytes.size() &&
           std::memcmp(arena_.data() + s.offset, k.bytes.data(), s.len) == 0;
  }

  void Rehash(size_t new_count) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_count, Slot{});
    if (!old.empty()) ++resizes_;
    const size_t mask = new_count - 1;
    for (const Slot& s : old) {
      if (s.index == kEmptySlot) continue;
      size_t b = static_cast<size_t>(SplitMix64(s.hash)) & mask;
      while (slots_[b].index != kEmptySlot) b = (b + 1) & mask;
      slots_[b] = s;
    }
  }

  std::vector<Slot> slots_;
  std::string arena_;          // all distinct keys' bytes, back to back
  std::vector<KeyRef> keys_;   // dense index -> key location (KeyAt)
  uint64_t resizes_ = 0;
  /// Mutable: Find is logically const but still feeds the probe-length
  /// telemetry (single-writer per table — tables are task-local).
  mutable uint64_t max_probe_ = 0;
};

/// The enable_flat_hash=false fallback: identical interface and dense-index
/// semantics over the node-based map the encoded paths used before the flat
/// table. Flat-only telemetry reads as zero so the escape hatch reproduces
/// the historical stats exactly.
class StdKeyIndex {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  StdKeyIndex() = default;
  explicit StdKeyIndex(size_t expected) { map_.reserve(expected); }

  std::pair<uint32_t, bool> FindOrInsert(const key_codec::EncodedKeyView& k) {
    auto it = map_.find(k);
    if (it != map_.end()) return {it->second, false};
    uint32_t idx = static_cast<uint32_t>(map_.size());
    auto [pos, inserted] = map_.emplace(key_codec::Materialize(k), idx);
    dense_.push_back(&pos->first);
    return {idx, inserted};
  }

  uint32_t Find(const key_codec::EncodedKeyView& k) const {
    auto it = map_.find(k);
    return it == map_.end() ? kNotFound : it->second;
  }

  key_codec::EncodedKeyView KeyAt(uint32_t index) const {
    const key_codec::EncodedKey* k = dense_[index];
    return key_codec::EncodedKeyView{k->hash, k->bytes};
  }

  size_t size() const { return map_.size(); }
  uint64_t table_bytes() const { return 0; }
  uint64_t resizes() const { return 0; }
  uint64_t max_probe_len() const { return 0; }

 private:
  std::unordered_map<key_codec::EncodedKey, uint32_t, key_codec::EncodedKeyHash,
                     key_codec::EncodedKeyEq>
      map_;
  /// Dense-order key pointers (node-based map: stable across rehash).
  std::vector<const key_codec::EncodedKey*> dense_;
};

/// Folds one finished table's telemetry into a task's KeyStats slot (summed
/// per partition in slot order after the stage barrier, like every keyed
/// counter). StdKeyIndex contributes zeros, so the three flat-only counters
/// are exactly 0 when enable_flat_hash is off.
template <class Index>
inline void NoteTableStats(const Index& idx, key_codec::KeyStats* ks) {
  ks->table_bytes += idx.table_bytes();
  ks->resizes += idx.resizes();
  if (idx.max_probe_len() > ks->probe_len_max) {
    ks->probe_len_max = idx.max_probe_len();
  }
}

}  // namespace flat_hash
}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_FLAT_HASH_H_
