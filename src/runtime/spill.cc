#include "runtime/spill.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "runtime/serde.h"
#include "util/strings.h"

namespace trance {
namespace runtime {
namespace spill {

namespace {

namespace fs = std::filesystem;

/// Process-wide manager sequence; keeps concurrent clusters (tests run many)
/// in disjoint directories while staying deterministic per process.
std::atomic<uint64_t>& InstanceCounter() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

std::string BaseDir(const SpillConfig& config) {
  if (!config.dir.empty()) return config.dir;
  if (const char* env = std::getenv("TRANCE_SPILL_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  return ec ? std::string("/tmp") : tmp.string();
}

/// Stage names become path components; keep them shell- and fs-safe.
std::string SanitizeTag(const std::string& tag) {
  std::string out;
  out.reserve(tag.size());
  for (char ch : tag) {
    bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
              (ch >= '0' && ch <= '9') || ch == '-' || ch == '_' || ch == '.';
    out.push_back(ok ? ch : '_');
  }
  return out.empty() ? std::string("stage") : out;
}

/// Rows per row-batch record inside a run file; bounds the in-memory frame
/// buffer without affecting the restored row order.
constexpr size_t kRowsPerRecord = 4096;

}  // namespace

SpillManager::SpillManager(SpillConfig config) : config_(std::move(config)) {
  uint64_t id = InstanceCounter().fetch_add(1);
  root_ = (fs::path(BaseDir(config_)) /
           ("trance-spill-" + std::to_string(::getpid()) + "-" +
            std::to_string(id)))
              .string();
}

SpillManager::~SpillManager() {
  if (config_.keep_files) return;
  bool created;
  {
    std::lock_guard<std::mutex> lock(mu_);
    created = root_created_;
  }
  if (created) {
    std::error_code ec;
    fs::remove_all(root_, ec);  // best effort; temp dirs are reaped anyway
  }
}

std::string SpillManager::RunPath(uint64_t job, const std::string& tag,
                                  size_t partition, size_t run) const {
  return (fs::path(root_) / ("job" + std::to_string(job)) /
          (SanitizeTag(tag) + "-p" + std::to_string(partition) + "-r" +
           std::to_string(run) + ".trs"))
      .string();
}

uint64_t SpillManager::on_disk_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return on_disk_bytes_;
}

Status SpillManager::AccountRun(const std::string& path, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.max_spill_bytes > 0 &&
      on_disk_bytes_ + bytes > config_.max_spill_bytes) {
    return Status::ResourceExhausted(
        "spill byte budget exhausted: run '" + path + "' needs " +
        FormatBytes(bytes) + " with " + FormatBytes(on_disk_bytes_) +
        " already on disk > budget " + FormatBytes(config_.max_spill_bytes));
  }
  on_disk_bytes_ += bytes;
  file_bytes_[path] = bytes;
  return Status::OK();
}

namespace {

Status EnsureParentDir(const std::string& path) {
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    return Status::Internal("spill: cannot create run directory for '" +
                            path + "': " + ec.message());
  }
  return Status::OK();
}

}  // namespace

Status SpillManager::WriteRowsRun(const std::string& path,
                                  const std::vector<Row>& rows,
                                  SpillCounters* c) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    root_created_ = true;
  }
  TRANCE_RETURN_NOT_OK(EnsureParentDir(path));
  serde::BlockFileWriter writer;
  TRANCE_RETURN_NOT_OK(
      writer.Open(path, static_cast<size_t>(config_.io_buffer_bytes)));
  std::vector<Row> batch;
  batch.reserve(std::min(rows.size(), kRowsPerRecord));
  for (size_t i = 0; i < rows.size(); i += kRowsPerRecord) {
    size_t end = std::min(rows.size(), i + kRowsPerRecord);
    batch.assign(rows.begin() + i, rows.begin() + end);
    TRANCE_RETURN_NOT_OK(writer.WriteRows(batch));
  }
  TRANCE_RETURN_NOT_OK(writer.Close());
  uint64_t bytes = writer.bytes_written();
  TRANCE_RETURN_NOT_OK(AccountRun(path, bytes));
  total_written_.fetch_add(bytes);
  total_runs_.fetch_add(1);
  if (c != nullptr) {
    c->bytes_written += bytes;
    c->runs += 1;
  }
  return Status::OK();
}

Status SpillManager::WriteBlockRun(const std::string& path,
                                   const column::PartitionBlock& block,
                                   SpillCounters* c) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    root_created_ = true;
  }
  TRANCE_RETURN_NOT_OK(EnsureParentDir(path));
  serde::BlockFileWriter writer;
  TRANCE_RETURN_NOT_OK(
      writer.Open(path, static_cast<size_t>(config_.io_buffer_bytes)));
  TRANCE_RETURN_NOT_OK(writer.WriteBlock(block));
  TRANCE_RETURN_NOT_OK(writer.Close());
  uint64_t bytes = writer.bytes_written();
  TRANCE_RETURN_NOT_OK(AccountRun(path, bytes));
  total_written_.fetch_add(bytes);
  total_runs_.fetch_add(1);
  if (c != nullptr) {
    c->bytes_written += bytes;
    c->runs += 1;
  }
  return Status::OK();
}

Status SpillManager::ReadRun(const std::string& path, std::vector<Row>* out,
                             uint64_t* block_rows, SpillCounters* c) {
  serde::BlockFileReader reader;
  TRANCE_RETURN_NOT_OK(
      reader.Open(path, static_cast<size_t>(config_.io_buffer_bytes)));
  for (;;) {
    size_t before = out->size();
    uint8_t kind = 0;
    TRANCE_ASSIGN_OR_RETURN(bool more, reader.ReadBatch(out, &kind));
    if (!more) break;
    if (kind == serde::kRecordBlock && block_rows != nullptr) {
      *block_rows += out->size() - before;
    }
  }
  uint64_t bytes = reader.bytes_read();
  TRANCE_RETURN_NOT_OK(reader.Close());
  total_read_.fetch_add(bytes);
  if (c != nullptr) c->bytes_read += bytes;
  return Status::OK();
}

Status SpillManager::ReadRunIntoBlock(const std::string& path,
                                      column::PartitionBlock* out,
                                      SpillCounters* c) {
  serde::BlockFileReader reader;
  TRANCE_RETURN_NOT_OK(
      reader.Open(path, static_cast<size_t>(config_.io_buffer_bytes)));
  for (;;) {
    size_t before = out->NumRows();
    uint8_t kind = 0;
    TRANCE_ASSIGN_OR_RETURN(bool more, reader.ReadBatchInto(out, &kind));
    if (!more) break;
    if (kind == serde::kRecordBlock && c != nullptr) {
      c->rowify_avoided += out->NumRows() - before;
    }
  }
  uint64_t bytes = reader.bytes_read();
  TRANCE_RETURN_NOT_OK(reader.Close());
  total_read_.fetch_add(bytes);
  if (c != nullptr) c->bytes_read += bytes;
  return Status::OK();
}

void SpillManager::RemoveRun(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = file_bytes_.find(path);
    if (it != file_bytes_.end()) {
      on_disk_bytes_ -= std::min(on_disk_bytes_, it->second);
      file_bytes_.erase(it);
    }
  }
  if (config_.keep_files) return;
  std::error_code ec;
  fs::remove(path, ec);
}

Status SpillManager::SpillAndRestoreRows(uint64_t job, const std::string& tag,
                                         size_t partition,
                                         std::vector<Row>* rows,
                                         SpillCounters* c) {
  // Phase 1: partition the row sequence into bounded runs, moving rows out
  // as each run fills so the spilled portion is actually released.
  std::vector<std::string> runs;
  std::vector<Row> chunk;
  uint64_t chunk_bytes = 0;
  auto flush_chunk = [&]() -> Status {
    std::string path = RunPath(job, tag, partition, runs.size());
    TRANCE_RETURN_NOT_OK(WriteRowsRun(path, chunk, c));
    runs.push_back(std::move(path));
    chunk.clear();
    chunk_bytes = 0;
    return Status::OK();
  };
  for (Row& r : *rows) {
    chunk_bytes += RowDeepSize(r);
    chunk.push_back(std::move(r));
    if (chunk_bytes >= config_.max_run_bytes) {
      TRANCE_RETURN_NOT_OK(flush_chunk());
    }
  }
  if (!chunk.empty() || runs.empty()) {
    TRANCE_RETURN_NOT_OK(flush_chunk());
  }
  rows->clear();
  rows->shrink_to_fit();

  // Phase 2: one merge pass — stream the runs back in run order, which is
  // exactly the original row order.
  for (const std::string& path : runs) {
    TRANCE_RETURN_NOT_OK(ReadRun(path, rows, nullptr, c));
  }
  for (const std::string& path : runs) RemoveRun(path);
  if (c != nullptr) c->merge_passes += 1;
  return Status::OK();
}

Status SpillManager::SpillAndRestoreBlock(uint64_t job, const std::string& tag,
                                          size_t partition,
                                          const Schema& schema,
                                          column::PartitionBlock* block,
                                          SpillCounters* c) {
  // Phase 1: split the block's row sequence into bounded chunk blocks, each
  // written as one block record run. Chunks copy column-wise (AppendRowFrom);
  // the source block is released wholesale after the last run lands.
  std::vector<std::string> runs;
  column::PartitionBlock chunk(schema);
  uint64_t chunk_bytes = 0;
  auto flush_chunk = [&]() -> Status {
    std::string path = RunPath(job, tag, partition, runs.size());
    TRANCE_RETURN_NOT_OK(WriteBlockRun(path, chunk, c));
    runs.push_back(std::move(path));
    chunk = column::PartitionBlock(schema);
    chunk_bytes = 0;
    return Status::OK();
  };
  const size_t n = block->NumRows();
  for (size_t i = 0; i < n; ++i) {
    chunk_bytes += block->RowBytesAt(i);
    chunk.AppendRowFrom(*block, i);
    if (chunk_bytes >= config_.max_run_bytes) {
      TRANCE_RETURN_NOT_OK(flush_chunk());
    }
  }
  if (chunk.NumRows() > 0 || runs.empty()) {
    TRANCE_RETURN_NOT_OK(flush_chunk());
  }
  *block = column::PartitionBlock(schema);

  // Phase 2: one merge pass — restore the runs in run order into the fresh
  // block. Per-row appends replay the identical growth sequence, so the
  // restored block's ByteFootprint equals the never-spilled equivalent.
  for (const std::string& path : runs) {
    TRANCE_RETURN_NOT_OK(ReadRunIntoBlock(path, block, c));
  }
  for (const std::string& path : runs) RemoveRun(path);
  if (c != nullptr) c->merge_passes += 1;
  return Status::OK();
}

}  // namespace spill
}  // namespace runtime
}  // namespace trance
