#include "runtime/cluster.h"

#include "util/stopwatch.h"
#include "util/strings.h"

namespace trance {
namespace runtime {

void Cluster::RecordStage(StageStats s) {
  s.sim_seconds =
      config_.stage_overhead_seconds +
      static_cast<double>(s.max_partition_work_bytes) *
          config_.seconds_per_cpu_byte +
      static_cast<double>(s.max_partition_recv_bytes) *
          config_.seconds_per_net_byte;
  // Recovery charge: for every injected fault, the bounded exponential
  // backoff plus the cost-model price of what the fault destroyed — the
  // discarded attempt's work (crash kinds) or the lost fetch (fetch loss).
  // Charged into recovery_sim_seconds, never sim_seconds, so the base stats
  // of a recovered run are bit-identical to a fault-free run.
  for (const FaultEvent& ev : s.fault_events) {
    double charge = injector_.BackoffSeconds(static_cast<int>(ev.attempt));
    uint64_t work = ev.partition < s.partition_work_bytes.size()
                        ? s.partition_work_bytes[ev.partition]
                        : 0;
    uint64_t recv = ev.partition < s.partition_recv_bytes.size()
                        ? s.partition_recv_bytes[ev.partition]
                        : 0;
    charge += ev.kind == FaultKind::kFetchLoss
                  ? static_cast<double>(recv) * config_.seconds_per_net_byte
                  : static_cast<double>(work) * config_.seconds_per_cpu_byte;
    s.recovery_sim_seconds += charge;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (s.scope.empty() && !scope_stack_.empty()) s.scope = scope_stack_.back();
  double now_us = WallMicros();
  s.wall_start_us = last_stage_end_us_ < 0 ? now_us : last_stage_end_us_;
  if (s.wall_start_us > now_us) s.wall_start_us = now_us;
  s.wall_dur_us = now_us - s.wall_start_us;
  last_stage_end_us_ = now_us;
  PublishStage(stats_.stages().size(), s);
  stats_.AddStage(std::move(s));
}

void Cluster::PublishStage(size_t stage_index, const StageStats& s) {
  // Registry half: every JobStats total the stage contributes also lands in
  // the metric registry, from this one site. Integer quantities are
  // counters; maxima are SetMax gauges; accumulated sim-time is an Add
  // gauge (driver-sequential here, so the floating-point order — and hence
  // the value — is deterministic).
  metrics_
      .GetCounter("trance_stages_total", "stages recorded, by data movement",
                  {{"movement", DataMovementName(s.movement)}})
      ->Increment();
  metrics_.GetCounter("trance_rows_in_total", "rows consumed by stages")
      ->Add(s.rows_in);
  metrics_.GetCounter("trance_rows_out_total", "rows produced by stages")
      ->Add(s.rows_out);
  metrics_
      .GetCounter("trance_shuffle_bytes_total",
                  "bytes moved between partitions")
      ->Add(s.shuffle_bytes);
  metrics_.GetCounter("trance_work_bytes_total", "bytes processed by workers")
      ->Add(s.total_work_bytes);
  metrics_
      .GetCounter("trance_heavy_keys_total", "keys flagged by the skew sampler")
      ->Add(s.heavy_key_count);
  metrics_
      .GetCounter("trance_key_encode_bytes_total",
                  "binary key bytes produced by the key codec")
      ->Add(s.key_encode_bytes);
  metrics_
      .GetCounter("trance_hash_build_rows_total",
                  "rows inserted into keyed hash structures")
      ->Add(s.hash_build_rows);
  metrics_
      .GetCounter("trance_hash_probe_hits_total",
                  "keyed lookups that found an existing key")
      ->Add(s.hash_probe_hits);
  metrics_
      .GetGauge("trance_hash_max_chain",
                "max input rows mapped to a single key")
      ->SetMax(static_cast<double>(s.hash_max_chain));
  metrics_
      .GetCounter("trance_hash_table_bytes_total",
                  "flat hash-table footprint built by keyed operators")
      ->Add(s.hash_table_bytes);
  metrics_
      .GetCounter("trance_hash_resizes_total",
                  "flat hash-table slot-array doublings")
      ->Add(s.hash_resizes);
  metrics_
      .GetGauge("trance_hash_probe_len_max",
                "longest open-addressing probe sequence")
      ->SetMax(static_cast<double>(s.hash_probe_len_max));
  metrics_
      .GetCounter("trance_columnar_bytes_total",
                  "typed partition-block footprint built by operators")
      ->Add(s.columnar_bytes);
  metrics_
      .GetCounter("trance_column_to_row_conversions_total",
                  "rows materialized out of typed partition blocks")
      ->Add(s.column_to_row_conversions);
  metrics_
      .GetCounter("trance_spill_bytes_written_total",
                  "bytes written to spill run files")
      ->Add(s.spill_bytes_written);
  metrics_
      .GetCounter("trance_spill_bytes_read_total",
                  "bytes streamed back from spill run files")
      ->Add(s.spill_bytes_read);
  metrics_
      .GetCounter("trance_spill_runs_total", "spill run files produced")
      ->Add(s.spill_runs);
  metrics_
      .GetCounter("trance_spill_merge_passes_total",
                  "stream-merge passes over spill runs")
      ->Add(s.spill_merge_passes);
  metrics_
      .GetCounter("trance_spill_rowify_avoided_total",
                  "rows restored from columnar spill records without "
                  "row-form conversion")
      ->Add(s.spill_rowify_avoided);
  metrics_
      .GetGauge("trance_max_stage_shuffle_bytes",
                "largest single-stage shuffle")
      ->SetMax(static_cast<double>(s.shuffle_bytes));
  metrics_
      .GetGauge("trance_mem_high_water_bytes",
                "largest stage-output partition footprint")
      ->SetMax(static_cast<double>(s.mem_high_water_bytes));
  metrics_
      .GetGauge("trance_sim_seconds_total", "accumulated simulated job time")
      ->Add(s.sim_seconds);
  metrics_
      .GetGauge("trance_recovery_sim_seconds_total",
                "accumulated simulated recovery time")
      ->Add(s.recovery_sim_seconds);
  metrics_
      .GetHistogram("trance_stage_imbalance",
                    "per-stage straggler factor (max/mean worker load)",
                    {1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0})
      ->Observe(s.ImbalanceFactor());

  // Event-log half: one stage_finish per stage; heavy-key decisions get
  // their own event so skew handling is visible without parsing stages.
  obs::EventLog& log = obs::GlobalEventLog();
  if (!log.enabled()) return;
  obs::Event(&log, "stage_finish")
      .U64("job", job_id_)
      .U64("stage", stage_index)
      .Str("op", s.op)
      .Str("scope", s.scope)
      .Str("movement", DataMovementName(s.movement))
      .U64("rows_in", s.rows_in)
      .U64("rows_out", s.rows_out)
      .U64("shuffle_bytes", s.shuffle_bytes)
      .U64("injected_faults", s.injected_faults)
      .F64("sim_seconds", s.sim_seconds)
      .Wall("dur_us", s.wall_dur_us)
      .Emit();
  if (s.heavy_key_count > 0) {
    obs::Event(&log, "heavy_keys")
        .U64("job", job_id_)
        .U64("stage", stage_index)
        .Str("op", s.op)
        .Str("scope", s.scope)
        .U64("count", s.heavy_key_count)
        .Emit();
  }
}

Status Cluster::CheckMemory(const Dataset& ds, const std::string& op) {
  return CheckMemoryBytes(ds.PartitionBytes(num_threads_), op);
}

spill::SpillManager* Cluster::spill_manager() {
  std::lock_guard<std::mutex> lock(mu_);
  if (spill_manager_ == nullptr) {
    spill_manager_ = std::make_unique<spill::SpillManager>(config_.spill);
  }
  return spill_manager_.get();
}

Status Cluster::CheckMemoryBytes(const std::vector<uint64_t>& partition_bytes,
                                 const std::string& op,
                                 const std::vector<uint8_t>* spilled) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t peak = 0;
  size_t peak_partition = 0;
  uint64_t spilled_partitions = 0;
  if (spilled != nullptr) {
    for (uint8_t f : *spilled) spilled_partitions += f ? 1 : 0;
  }
  // Publishes the check's outcome into the registry and event log; shared by
  // the pass and fail exits so every check is visible either way. The event
  // names the observed peak (value and partition) next to the configured cap
  // so spill-vs-fail decisions are debuggable from logs alone.
  auto publish = [&](bool ok) {
    metrics_
        .GetCounter("trance_memory_checks_total", "per-stage memory-cap checks")
        ->Increment();
    if (!ok) {
      metrics_
          .GetCounter("trance_memory_check_failures_total",
                      "memory-cap checks that exceeded the cap")
          ->Increment();
    }
    metrics_
        .GetGauge("trance_peak_partition_bytes",
                  "largest partition footprint seen by memory checks")
        ->SetMax(static_cast<double>(peak));
    obs::EventLog& log = obs::GlobalEventLog();
    if (!log.enabled()) return;
    obs::Event(&log, "memory_check")
        .U64("job", job_id_)
        .Str("op", op)
        .U64("partitions", partition_bytes.size())
        .U64("partition", peak_partition)
        .U64("peak_bytes", peak)
        .U64("cap_bytes", config_.partition_memory_cap)
        .U64("spilled_partitions", spilled_partitions)
        .Bool("ok", ok)
        .Emit();
  };
  for (size_t p = 0; p < partition_bytes.size(); ++p) {
    uint64_t b = partition_bytes[p];
    stats_.NotePeakPartitionBytes(b);
    if (b > peak) {
      peak = b;
      peak_partition = p;
    }
    bool was_spilled = spilled != nullptr && p < spilled->size() &&
                       (*spilled)[p] != 0;
    if (b > config_.partition_memory_cap && !was_spilled) {
      // Name the stage, the plan-node scope, the partition, and the exact
      // observed/configured byte counts so EXPLAIN ANALYZE readers and test
      // failures can attribute the saturation without a debugger.
      std::string where = "stage '" + op + "'";
      if (!scope_stack_.empty()) where += " (scope " + scope_stack_.back() + ")";
      publish(false);
      return Status::ResourceExhausted(
          "worker memory saturated in " + where + ": partition " +
          std::to_string(p) + " holds " + FormatBytes(b) + " (" +
          std::to_string(b) + " bytes) > cap " +
          FormatBytes(config_.partition_memory_cap) + " (" +
          std::to_string(config_.partition_memory_cap) + " bytes)");
    }
  }
  publish(true);
  return Status::OK();
}

Status Cluster::RunRecoverableTasks(const std::string& stage_name, size_t n,
                                    StageStats* stage,
                                    const std::function<void(size_t)>& task,
                                    const std::function<void(size_t)>& reset) {
  if (!injector_.enabled()) {
    RunParallel(n, task);
    return Status::OK();
  }
  const uint64_t stage_seq = next_stage_seq_.fetch_add(1);
  const int budget = config_.faults.max_task_retries;
  // Per-slot fault logs, merged in slot order after the barrier so the
  // telemetry (like every other stat) is thread-count-invariant.
  std::vector<std::vector<FaultKind>> faults(n);
  std::vector<FaultKind> exhausted(n, FaultKind::kNone);
  RunParallel(n, [&](size_t p) {
    for (int attempt = 0;; ++attempt) {
      FaultKind k = injector_.Decide(stage_seq, p, attempt);
      if (k == FaultKind::kNone) {
        task(p);
        return;
      }
      if (reset != nullptr && k != FaultKind::kFetchLoss) {
        // Crash-type fault: the attempt runs and its partial output is
        // discarded — re-execution then recomputes slot p from the stage's
        // still-held input partitions (lineage recovery).
        task(p);
        reset(p);
      }
      faults[p].push_back(k);
      if (attempt >= budget) {
        exhausted[p] = k;
        return;
      }
    }
  });
  // Driver-side merge in slot order: stats, metrics and events all come out
  // thread-count-invariant because nothing here depends on worker timing.
  obs::EventLog& log = obs::GlobalEventLog();
  uint64_t total = 0;
  for (size_t p = 0; p < n; ++p) {
    if (faults[p].empty()) continue;
    total += faults[p].size();
    if (stage->partition_retries.size() < n) {
      stage->partition_retries.resize(n, 0);
    }
    stage->partition_retries[p] += faults[p].size();
    for (size_t a = 0; a < faults[p].size(); ++a) {
      stage->fault_events.push_back({static_cast<uint32_t>(p),
                                     static_cast<uint32_t>(a), faults[p][a]});
      PublishFaultInjected(&metrics_, faults[p][a]);
      if (log.enabled()) {
        obs::Event(&log, "fault")
            .U64("job", job_id_)
            .U64("stage_seq", stage_seq)
            .U64("partition", p)
            .U64("attempt", a)
            .Str("kind", FaultKindName(faults[p][a]))
            .Emit();
        if (static_cast<int>(a) < budget) {
          obs::Event(&log, "retry")
              .U64("job", job_id_)
              .U64("stage_seq", stage_seq)
              .U64("partition", p)
              .U64("attempt", a + 1)
              .F64("backoff_sim_seconds",
                   injector_.BackoffSeconds(static_cast<int>(a)))
              .Emit();
        }
      }
    }
  }
  stage->injected_faults += total;
  for (size_t p = 0; p < n; ++p) {
    if (exhausted[p] == FaultKind::kNone) continue;
    std::string scope = current_scope();
    return Status::ResourceExhausted(
        "retry budget exhausted in stage '" + stage_name + "'" +
        (scope.empty() ? "" : " (scope " + scope + ")") + ": partition " +
        std::to_string(p) + " task failed " + std::to_string(budget + 1) +
        " attempts (last fault: " + FaultKindName(exhausted[p]) +
        ", retry budget " + std::to_string(budget) + ")");
  }
  stage->retries += total;  // every injected fault was followed by a retry
  metrics_
      .GetCounter("trance_task_retries_total",
                  "task re-executions performed by fault recovery")
      ->Add(total);
  return Status::OK();
}

}  // namespace runtime
}  // namespace trance
