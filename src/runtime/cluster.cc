#include "runtime/cluster.h"

#include "util/stopwatch.h"
#include "util/strings.h"

namespace trance {
namespace runtime {

void Cluster::RecordStage(StageStats s) {
  s.sim_seconds =
      config_.stage_overhead_seconds +
      static_cast<double>(s.max_partition_work_bytes) *
          config_.seconds_per_cpu_byte +
      static_cast<double>(s.max_partition_recv_bytes) *
          config_.seconds_per_net_byte;
  std::lock_guard<std::mutex> lock(mu_);
  if (s.scope.empty() && !scope_stack_.empty()) s.scope = scope_stack_.back();
  double now_us = WallMicros();
  s.wall_start_us = last_stage_end_us_ < 0 ? now_us : last_stage_end_us_;
  if (s.wall_start_us > now_us) s.wall_start_us = now_us;
  s.wall_dur_us = now_us - s.wall_start_us;
  last_stage_end_us_ = now_us;
  stats_.AddStage(std::move(s));
}

Status Cluster::CheckMemory(const Dataset& ds, const std::string& op) {
  return CheckMemoryBytes(ds.PartitionBytes(num_threads_), op);
}

Status Cluster::CheckMemoryBytes(const std::vector<uint64_t>& partition_bytes,
                                 const std::string& op) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t b : partition_bytes) {
    stats_.NotePeakPartitionBytes(b);
    if (b > config_.partition_memory_cap) {
      return Status::ResourceExhausted(
          "worker memory saturated in " + op + ": partition holds " +
          FormatBytes(b) + " > cap " + FormatBytes(config_.partition_memory_cap));
    }
  }
  return Status::OK();
}

}  // namespace runtime
}  // namespace trance
