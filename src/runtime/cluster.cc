#include "runtime/cluster.h"

#include "util/stopwatch.h"
#include "util/strings.h"

namespace trance {
namespace runtime {

void Cluster::RecordStage(StageStats s) {
  s.sim_seconds =
      config_.stage_overhead_seconds +
      static_cast<double>(s.max_partition_work_bytes) *
          config_.seconds_per_cpu_byte +
      static_cast<double>(s.max_partition_recv_bytes) *
          config_.seconds_per_net_byte;
  // Recovery charge: for every injected fault, the bounded exponential
  // backoff plus the cost-model price of what the fault destroyed — the
  // discarded attempt's work (crash kinds) or the lost fetch (fetch loss).
  // Charged into recovery_sim_seconds, never sim_seconds, so the base stats
  // of a recovered run are bit-identical to a fault-free run.
  for (const FaultEvent& ev : s.fault_events) {
    double charge = injector_.BackoffSeconds(static_cast<int>(ev.attempt));
    uint64_t work = ev.partition < s.partition_work_bytes.size()
                        ? s.partition_work_bytes[ev.partition]
                        : 0;
    uint64_t recv = ev.partition < s.partition_recv_bytes.size()
                        ? s.partition_recv_bytes[ev.partition]
                        : 0;
    charge += ev.kind == FaultKind::kFetchLoss
                  ? static_cast<double>(recv) * config_.seconds_per_net_byte
                  : static_cast<double>(work) * config_.seconds_per_cpu_byte;
    s.recovery_sim_seconds += charge;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (s.scope.empty() && !scope_stack_.empty()) s.scope = scope_stack_.back();
  double now_us = WallMicros();
  s.wall_start_us = last_stage_end_us_ < 0 ? now_us : last_stage_end_us_;
  if (s.wall_start_us > now_us) s.wall_start_us = now_us;
  s.wall_dur_us = now_us - s.wall_start_us;
  last_stage_end_us_ = now_us;
  stats_.AddStage(std::move(s));
}

Status Cluster::CheckMemory(const Dataset& ds, const std::string& op) {
  return CheckMemoryBytes(ds.PartitionBytes(num_threads_), op);
}

Status Cluster::CheckMemoryBytes(const std::vector<uint64_t>& partition_bytes,
                                 const std::string& op) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t p = 0; p < partition_bytes.size(); ++p) {
    uint64_t b = partition_bytes[p];
    stats_.NotePeakPartitionBytes(b);
    if (b > config_.partition_memory_cap) {
      // Name the stage, the plan-node scope and the partition so EXPLAIN
      // ANALYZE readers and test failures can attribute the saturation.
      std::string where = "stage '" + op + "'";
      if (!scope_stack_.empty()) where += " (scope " + scope_stack_.back() + ")";
      return Status::ResourceExhausted(
          "worker memory saturated in " + where + ": partition " +
          std::to_string(p) + " holds " + FormatBytes(b) + " > cap " +
          FormatBytes(config_.partition_memory_cap));
    }
  }
  return Status::OK();
}

Status Cluster::RunRecoverableTasks(const std::string& stage_name, size_t n,
                                    StageStats* stage,
                                    const std::function<void(size_t)>& task,
                                    const std::function<void(size_t)>& reset) {
  if (!injector_.enabled()) {
    RunParallel(n, task);
    return Status::OK();
  }
  const uint64_t stage_seq = next_stage_seq_.fetch_add(1);
  const int budget = config_.faults.max_task_retries;
  // Per-slot fault logs, merged in slot order after the barrier so the
  // telemetry (like every other stat) is thread-count-invariant.
  std::vector<std::vector<FaultKind>> faults(n);
  std::vector<FaultKind> exhausted(n, FaultKind::kNone);
  RunParallel(n, [&](size_t p) {
    for (int attempt = 0;; ++attempt) {
      FaultKind k = injector_.Decide(stage_seq, p, attempt);
      if (k == FaultKind::kNone) {
        task(p);
        return;
      }
      if (reset != nullptr && k != FaultKind::kFetchLoss) {
        // Crash-type fault: the attempt runs and its partial output is
        // discarded — re-execution then recomputes slot p from the stage's
        // still-held input partitions (lineage recovery).
        task(p);
        reset(p);
      }
      faults[p].push_back(k);
      if (attempt >= budget) {
        exhausted[p] = k;
        return;
      }
    }
  });
  uint64_t total = 0;
  for (size_t p = 0; p < n; ++p) {
    if (faults[p].empty()) continue;
    total += faults[p].size();
    if (stage->partition_retries.size() < n) {
      stage->partition_retries.resize(n, 0);
    }
    stage->partition_retries[p] += faults[p].size();
    for (size_t a = 0; a < faults[p].size(); ++a) {
      stage->fault_events.push_back({static_cast<uint32_t>(p),
                                     static_cast<uint32_t>(a), faults[p][a]});
    }
  }
  stage->injected_faults += total;
  for (size_t p = 0; p < n; ++p) {
    if (exhausted[p] == FaultKind::kNone) continue;
    std::string scope = current_scope();
    return Status::ResourceExhausted(
        "retry budget exhausted in stage '" + stage_name + "'" +
        (scope.empty() ? "" : " (scope " + scope + ")") + ": partition " +
        std::to_string(p) + " task failed " + std::to_string(budget + 1) +
        " attempts (last fault: " + FaultKindName(exhausted[p]) +
        ", retry budget " + std::to_string(budget) + ")");
  }
  stage->retries += total;  // every injected fault was followed by a retry
  return Status::OK();
}

}  // namespace runtime
}  // namespace trance
