#include "runtime/cluster.h"

#include "util/strings.h"

namespace trance {
namespace runtime {

void Cluster::RecordStage(StageStats s) {
  s.sim_seconds =
      config_.stage_overhead_seconds +
      static_cast<double>(s.max_partition_work_bytes) *
          config_.seconds_per_cpu_byte +
      static_cast<double>(s.max_partition_recv_bytes) *
          config_.seconds_per_net_byte;
  stats_.AddStage(std::move(s));
}

Status Cluster::CheckMemory(const Dataset& ds, const std::string& op) {
  for (uint64_t b : ds.PartitionBytes()) {
    stats_.NotePeakPartitionBytes(b);
    if (b > config_.partition_memory_cap) {
      return Status::ResourceExhausted(
          "worker memory saturated in " + op + ": partition holds " +
          FormatBytes(b) + " > cap " + FormatBytes(config_.partition_memory_cap));
    }
  }
  return Status::OK();
}

}  // namespace runtime
}  // namespace trance
