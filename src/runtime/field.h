// Runtime data representation for the distributed dataflow simulator.
//
// A Row is a flat vector of Fields. Fields are scalars, NULL (introduced by
// outer joins / outer unnests), labels (shredded pipeline), or *local nested
// bags* (standard pipeline): like Spark Datasets, a distributed collection is
// partitioned only at the granularity of top-level rows, and any bag-valued
// field lives entirely inside one partition — which is precisely the
// scalability limitation the paper's shredding attacks.
//
// Memory accounting (DeepSize) includes nested bag contents, so a partition
// holding few rows with enormous inner collections correctly saturates the
// simulated worker memory.
#ifndef TRANCE_RUNTIME_FIELD_H_
#define TRANCE_RUNTIME_FIELD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/hash.h"
#include "util/status.h"

namespace trance {
namespace runtime {

class Field;

/// A flat record; the unit of distribution.
struct Row {
  std::vector<Field> fields;

  Row() = default;
  explicit Row(std::vector<Field> f) : fields(std::move(f)) {}
};

struct RtLabel;
using LabelPtr = std::shared_ptr<const RtLabel>;
using BagPtr = std::shared_ptr<const std::vector<Row>>;

/// One cell of a row.
class Field {
 public:
  using Repr = std::variant<std::monostate, int64_t, double, std::string, bool,
                            LabelPtr, BagPtr>;

  Field() : repr_(std::monostate{}) {}  // NULL
  static Field Null() { return Field(); }
  static Field Int(int64_t v) { return Field(Repr(v)); }
  static Field Real(double v) { return Field(Repr(v)); }
  static Field Str(std::string v) { return Field(Repr(std::move(v))); }
  static Field Bool(bool v) { return Field(Repr(v)); }
  static Field Label(LabelPtr l) { return Field(Repr(std::move(l))); }
  static Field Bag(BagPtr b) { return Field(Repr(std::move(b))); }
  static Field Bag(std::vector<Row> rows) {
    return Bag(std::make_shared<const std::vector<Row>>(std::move(rows)));
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_real() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_label() const { return std::holds_alternative<LabelPtr>(repr_); }
  bool is_bag() const { return std::holds_alternative<BagPtr>(repr_); }

  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsReal() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  bool AsBool() const { return std::get<bool>(repr_); }
  const LabelPtr& AsLabel() const { return std::get<LabelPtr>(repr_); }
  const BagPtr& AsBag() const { return std::get<BagPtr>(repr_); }
  double AsNumber() const {
    return is_int() ? static_cast<double>(AsInt()) : AsReal();
  }

  uint64_t Hash() const;
  /// Approximate in-memory footprint in bytes, recursing into bags/labels.
  uint64_t DeepSize() const;
  std::string ToString() const;

  friend bool operator==(const Field& a, const Field& b);
  friend bool FieldLess(const Field& a, const Field& b);

 private:
  explicit Field(Repr r) : repr_(std::move(r)) {}
  Repr repr_;
};

bool operator==(const Field& a, const Field& b);
inline bool operator!=(const Field& a, const Field& b) { return !(a == b); }
bool FieldLess(const Field& a, const Field& b);

/// Runtime label: named captured flat parameters with structural identity;
/// mirrors nrc::LabelValue (including the single-label collapse rule, applied
/// by MakeLabel).
struct RtLabel {
  std::vector<std::pair<std::string, Field>> params;

  uint64_t Hash() const;
  friend bool operator==(const RtLabel& a, const RtLabel& b);
};

/// Creates a label field; collapses NewLabel over a single label parameter.
Field MakeLabel(std::vector<std::pair<std::string, Field>> params);

uint64_t RowHash(const Row& r);
uint64_t RowHashOn(const Row& r, const std::vector<int>& cols);
bool RowEquals(const Row& a, const Row& b);
bool RowEqualsOn(const Row& a, const Row& b, const std::vector<int>& cols_a,
                 const std::vector<int>& cols_b);
bool RowLess(const Row& a, const Row& b);
uint64_t RowDeepSize(const Row& r);
std::string RowToString(const Row& r);

/// A projected key as a deep copy of its fields. Since the encoded-key
/// refactor this is a debug/EXPLAIN rendering type and the container key of
/// the legacy keyed path (ExecOptions::enable_key_codec = false); the hot
/// keyed operators run on runtime/key_codec.h's compact binary keys.
struct KeyView {
  std::vector<Field> fields;

  uint64_t Hash() const {
    uint64_t h = 0x5EED;
    for (const auto& f : fields) h = HashCombine(h, f.Hash());
    return h;
  }
  friend bool operator==(const KeyView& a, const KeyView& b) {
    if (a.fields.size() != b.fields.size()) return false;
    for (size_t i = 0; i < a.fields.size(); ++i) {
      if (!(a.fields[i] == b.fields[i])) return false;
    }
    return true;
  }
};

KeyView ExtractKey(const Row& r, const std::vector<int>& cols);

struct KeyViewHash {
  size_t operator()(const KeyView& k) const {
    return static_cast<size_t>(k.Hash());
  }
};
struct KeyViewEq {
  bool operator()(const KeyView& a, const KeyView& b) const { return a == b; }
};

}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_FIELD_H_
