// Compact binary key codec: the one key representation every keyed runtime
// path shares (join build/probe, cogroup, nest, reduce-by-key, dedup, the
// skew sampler's heavy-key set, and hash partitioning).
//
// An EncodedKey is a type-tagged, length-prefixed byte string over the
// projected key columns plus the commutative key hash:
//
//   bytes:  per column, one tag byte followed by the value encoding
//           (see key_codec.cc for the exact layout; strings and label
//           parameter names are u32-length-prefixed, labels encode their
//           captured params recursively);
//   hash:   identical to RowHashOn(row, cols) — the order-insensitive
//           per-column combine, so permuted key-column lists hash (and
//           therefore partition) identically, preserving the
//           Partitioning::IsHashOn reuse guarantee.
//
// Equality is memcmp over the bytes. This agrees with the legacy
// KeyView-based hash containers: two keys collide in those containers iff
// they are Field-equal AND Field-hash-equal per column, which is exactly
// when their encodings are byte-identical (asserted by
// tests/key_codec_test.cc over randomized values). The one deliberate
// difference: keys are *values* — no per-probe std::vector<Field> deep
// copy, no variant dispatch per comparison.
//
// Bag-typed fields are rejected at encode time with a Status (keyed
// operators require flat keys; see docs/ARCHITECTURE.md, "Row & key
// encoding"). KeyView survives only as a debug/EXPLAIN rendering type.
#ifndef TRANCE_RUNTIME_KEY_CODEC_H_
#define TRANCE_RUNTIME_KEY_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runtime/field.h"
#include "util/status.h"

namespace trance {
namespace runtime {
namespace key_codec {

/// An owning encoded key: the map/set key type of the keyed operators.
struct EncodedKey {
  uint64_t hash = 0;
  std::string bytes;
};

/// A non-owning view over an encoder's scratch buffer; valid until the next
/// Encode call on the same encoder. Probes use views so a lookup never
/// allocates.
struct EncodedKeyView {
  uint64_t hash = 0;
  std::string_view bytes;
};

/// Materializes a view into an owning key (one allocation, on insert only).
inline EncodedKey Materialize(const EncodedKeyView& v) {
  return EncodedKey{v.hash, std::string(v.bytes)};
}

/// Transparent hash/equality so unordered containers keyed by EncodedKey
/// accept EncodedKeyView probes without materializing.
struct EncodedKeyHash {
  using is_transparent = void;
  size_t operator()(const EncodedKey& k) const {
    return static_cast<size_t>(k.hash);
  }
  size_t operator()(const EncodedKeyView& k) const {
    return static_cast<size_t>(k.hash);
  }
};
struct EncodedKeyEq {
  using is_transparent = void;
  bool operator()(const EncodedKey& a, const EncodedKey& b) const {
    return a.hash == b.hash && a.bytes == b.bytes;
  }
  bool operator()(const EncodedKey& a, const EncodedKeyView& b) const {
    return a.hash == b.hash && a.bytes == b.bytes;
  }
  bool operator()(const EncodedKeyView& a, const EncodedKey& b) const {
    return a.hash == b.hash && a.bytes == b.bytes;
  }
  bool operator()(const EncodedKeyView& a, const EncodedKeyView& b) const {
    return a.hash == b.hash && a.bytes == b.bytes;
  }
};

/// Hash-table telemetry of one keyed phase, merged per partition in slot
/// order after the stage barrier (so the stage totals are thread-count
/// invariant, like every other stat).
struct KeyStats {
  uint64_t encode_bytes = 0;  // bytes of encoded keys produced
  uint64_t build_rows = 0;    // rows inserted into keyed hash structures
  uint64_t probe_hits = 0;    // lookups that found an existing key
  uint64_t max_chain = 0;     // max input rows mapped onto a single key
  /// Flat-table telemetry (runtime/flat_hash.h); exactly 0 when
  /// enable_flat_hash is off, like encode_bytes with the codec off.
  uint64_t table_bytes = 0;    // slot array + arena footprint of flat tables
  uint64_t resizes = 0;        // flat-table slot-array doublings
  uint64_t probe_len_max = 0;  // longest open-addressing probe sequence

  void Merge(const KeyStats& o) {
    encode_bytes += o.encode_bytes;
    build_rows += o.build_rows;
    probe_hits += o.probe_hits;
    if (o.max_chain > max_chain) max_chain = o.max_chain;
    table_bytes += o.table_bytes;
    resizes += o.resizes;
    if (o.probe_len_max > probe_len_max) probe_len_max = o.probe_len_max;
  }
};

/// Encodes projected keys into a reusable scratch buffer. One encoder per
/// task/thread; not thread-safe. Tracks the cumulative bytes it encoded
/// (the stage's key_encode_bytes counter).
class KeyEncoder {
 public:
  /// Encodes row[cols] (in column-list order). The returned view aliases
  /// the internal buffer and is invalidated by the next Encode call.
  /// Fails with TypeError on bag-typed fields.
  StatusOr<EncodedKeyView> Encode(const Row& row, const std::vector<int>& cols);

  /// Encodes every field of the row (full-row key, e.g. dedup).
  StatusOr<EncodedKeyView> EncodeRow(const Row& row);

  /// Incremental per-field API for callers that project keys column-wise
  /// (runtime/column.h blocks). Begin() resets the scratch buffer,
  /// Append(field) encodes one key column, Finish() seals and returns the
  /// view. The byte layout and hash are identical to Encode(row, cols) over
  /// the same fields in the same order.
  void Begin();
  Status Append(const Field& f);
  EncodedKeyView Finish();

  /// Total bytes of all successful encodings since construction/reset.
  uint64_t bytes_encoded() const { return bytes_encoded_; }
  void ResetByteCount() { bytes_encoded_ = 0; }

 private:
  std::string buf_;
  uint64_t hash_acc_ = 0;
  uint64_t bytes_encoded_ = 0;
};

/// The codec's key hash without materializing bytes: exactly
/// RowHashOn(row, cols). Shuffle routing uses this (via RowHashOn), which
/// is why partition placement is bit-identical with the codec on or off.
uint64_t KeyHashOn(const Row& row, const std::vector<int>& cols);

}  // namespace key_codec
}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_KEY_CODEC_H_
