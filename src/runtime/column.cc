#include "runtime/column.h"

#include "util/status.h"

namespace trance {
namespace runtime {
namespace column {

namespace {

bool FieldMatchesKind(const Field& f, AnyColumn::Kind k) {
  switch (k) {
    case AnyColumn::Kind::kInt64: return f.is_int();
    case AnyColumn::Kind::kReal: return f.is_real();
    case AnyColumn::Kind::kBool: return f.is_bool();
    case AnyColumn::Kind::kString: return f.is_string();
    case AnyColumn::Kind::kVariant: return true;
  }
  return true;
}

}  // namespace

void AnyColumn::DemoteToVariant() {
  size_t n = size();
  std::vector<Field> cells;
  cells.reserve(n);
  for (size_t i = 0; i < n; ++i) cells.push_back(At(i));
  variant_ = std::move(cells);
  variant_bytes_ = 0;
  for (const auto& f : variant_) variant_bytes_ += f.DeepSize();
  ints_ = ColumnVector<int64_t>();
  reals_ = ColumnVector<double>();
  bools_ = ColumnVector<uint8_t>();
  strs_ = StringColumn();
  kind_ = Kind::kVariant;
}

void AnyColumn::Append(const Field& f) {
  if (kind_ != Kind::kVariant && !f.is_null() && !FieldMatchesKind(f, kind_)) {
    DemoteToVariant();
  }
  bool null = f.is_null();
  switch (kind_) {
    case Kind::kInt64:
      ints_.Append(null ? 0 : f.AsInt());
      break;
    case Kind::kReal:
      reals_.Append(null ? 0.0 : f.AsReal());
      break;
    case Kind::kBool:
      bools_.Append(null ? 0 : (f.AsBool() ? 1 : 0));
      break;
    case Kind::kString:
      strs_.Append(null ? std::string_view() : std::string_view(f.AsString()));
      break;
    case Kind::kVariant:
      variant_.push_back(f);
      variant_bytes_ += f.DeepSize();
      break;
  }
  nulls_.Append(null);
}

void AnyColumn::AppendFrom(const AnyColumn& src, size_t i) {
  if (kind_ != src.kind_) {
    Append(src.At(i));
    return;
  }
  bool null = src.nulls_.IsNull(i);
  switch (kind_) {
    case Kind::kInt64:
      ints_.Append(src.ints_[i]);
      break;
    case Kind::kReal:
      reals_.Append(src.reals_[i]);
      break;
    case Kind::kBool:
      bools_.Append(src.bools_[i]);
      break;
    case Kind::kString:
      strs_.Append(src.strs_.At(i));
      break;
    case Kind::kVariant:
      variant_.push_back(src.variant_[i]);
      variant_bytes_ += src.variant_[i].DeepSize();
      break;
  }
  nulls_.Append(null);
}

Field AnyColumn::At(size_t i) const {
  if (kind_ != Kind::kVariant && nulls_.IsNull(i)) return Field::Null();
  switch (kind_) {
    case Kind::kInt64: return Field::Int(ints_[i]);
    case Kind::kReal: return Field::Real(reals_[i]);
    case Kind::kBool: return Field::Bool(bools_[i] != 0);
    case Kind::kString: return Field::Str(std::string(strs_.At(i)));
    case Kind::kVariant: return variant_[i];
  }
  return Field::Null();
}

uint64_t AnyColumn::CellBytes(size_t i) const {
  switch (kind_) {
    case Kind::kInt64:
    case Kind::kReal:
    case Kind::kBool:
      return 8;  // null/int/real/bool all charge 8 (field.cc)
    case Kind::kString:
      return nulls_.IsNull(i) ? 8 : 32 + strs_.At(i).size();
    case Kind::kVariant:
      return variant_[i].DeepSize();
  }
  return 8;
}

uint64_t AnyColumn::CellHash(size_t i) const {
  if (kind_ != Kind::kVariant && nulls_.IsNull(i)) return 0x9E11;
  switch (kind_) {
    case Kind::kInt64:
      return Mix64(static_cast<uint64_t>(ints_[i]) ^ 0x11);
    case Kind::kReal:
      return HashDouble(reals_[i]);
    case Kind::kBool:
      return Mix64(bools_[i] != 0 ? 0xB001u : 0xB000u);
    case Kind::kString: {
      std::string_view s = strs_.At(i);
      return HashBytes(s.data(), s.size());
    }
    case Kind::kVariant:
      return variant_[i].Hash();
  }
  return 0x9E11;
}

uint64_t AnyColumn::ByteFootprint() const {
  uint64_t b = nulls_.ByteFootprint();
  switch (kind_) {
    case Kind::kInt64: return b + ints_.ByteFootprint();
    case Kind::kReal: return b + reals_.ByteFootprint();
    case Kind::kBool: return b + bools_.ByteFootprint();
    case Kind::kString: return b + strs_.ByteFootprint();
    case Kind::kVariant:
      return b + variant_.capacity() * sizeof(Field) + variant_bytes_;
  }
  return b;
}

PartitionBlock::PartitionBlock(const Schema& schema) {
  cols_.reserve(schema.size());
  for (const auto& c : schema.columns()) {
    cols_.emplace_back(AnyColumn::KindForType(c.type));
  }
}

PartitionBlock PartitionBlock::FromRows(const Schema& schema,
                                        const std::vector<Row>& rows) {
  PartitionBlock b(schema);
  for (const auto& r : rows) b.AppendRow(r);
  return b;
}

void PartitionBlock::DemoteToRagged() {
  std::vector<Row> rows;
  rows.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    Row r;
    r.fields.reserve(cols_.size());
    for (const auto& c : cols_) r.fields.push_back(c.At(i));
    rows.push_back(std::move(r));
  }
  ragged_ = std::move(rows);
  ragged_mode_ = true;
  cols_.clear();
  num_rows_ = 0;
}

void PartitionBlock::AppendRow(const Row& r) {
  if (!ragged_mode_ && r.fields.size() != cols_.size()) DemoteToRagged();
  if (ragged_mode_) {
    ragged_.push_back(r);
    return;
  }
  for (size_t c = 0; c < cols_.size(); ++c) cols_[c].Append(r.fields[c]);
  ++num_rows_;
}

void PartitionBlock::AppendRowFrom(const PartitionBlock& src, size_t i) {
  if (ragged_mode_ || src.ragged_mode_ ||
      src.cols_.size() != cols_.size()) {
    AppendRow(src.RowAt(i));
    return;
  }
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].AppendFrom(src.cols_[c], i);
  }
  ++num_rows_;
}

Row PartitionBlock::RowAt(size_t i) const {
  if (ragged_mode_) return ragged_[i];
  Row r;
  r.fields.reserve(cols_.size());
  for (const auto& c : cols_) r.fields.push_back(c.At(i));
  return r;
}

Field PartitionBlock::FieldAt(size_t row, size_t col) const {
  if (ragged_mode_) return ragged_[row].fields[col];
  return cols_[col].At(row);
}

bool PartitionBlock::IsNull(size_t row, size_t col) const {
  if (ragged_mode_) return ragged_[row].fields[col].is_null();
  return cols_[col].IsNull(row);
}

std::vector<Row> PartitionBlock::ToRows() const {
  std::vector<Row> out;
  AppendRowsTo(&out);
  return out;
}

void PartitionBlock::AppendRowsTo(std::vector<Row>* out) const {
  size_t n = NumRows();
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) out->push_back(RowAt(i));
}

uint64_t PartitionBlock::RowBytesAt(size_t i) const {
  if (ragged_mode_) return RowDeepSize(ragged_[i]);
  uint64_t s = 8;  // RowDeepSize row overhead
  for (const auto& c : cols_) s += c.CellBytes(i);
  return s;
}

uint64_t PartitionBlock::TotalRowBytes() const {
  uint64_t s = 0;
  size_t n = NumRows();
  for (size_t i = 0; i < n; ++i) s += RowBytesAt(i);
  return s;
}

uint64_t PartitionBlock::HashRowOn(size_t i, const std::vector<int>& cols) const {
  if (ragged_mode_) return RowHashOn(ragged_[i], cols);
  // Identical combine to field.cc RowHashOn (commutative sum of finalized
  // per-column hashes).
  uint64_t h = 0x5EED;
  for (int c : cols) {
    TRANCE_CHECK(c >= 0 && static_cast<size_t>(c) < cols_.size(),
                 "PartitionBlock::HashRowOn: bad column");
    h += SplitMix64(cols_[static_cast<size_t>(c)].CellHash(i));
  }
  return SplitMix64(h);
}

uint64_t PartitionBlock::ByteFootprint() const {
  if (ragged_mode_) {
    uint64_t s = ragged_.capacity() * sizeof(Row);
    for (const auto& r : ragged_) s += RowDeepSize(r);
    return s;
  }
  uint64_t s = 0;
  for (const auto& c : cols_) s += c.ByteFootprint();
  return s;
}

}  // namespace column
}  // namespace runtime
}  // namespace trance
