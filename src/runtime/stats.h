// Execution statistics for the simulated cluster.
//
// The evaluation quantities of the paper are data-movement quantities: bytes
// shuffled per stage, straggler load (max per-partition work under
// synchronous stage execution), and memory saturation. Each bulk operator
// records one StageStats; the simulated job time is the sum over stages of
//   overhead + max_partition_work_bytes * cpu_cost + max_partition_recv_bytes * net_cost,
// i.e. every stage is as slow as its most loaded worker — which is exactly
// how skew hurts synchronous platforms like Spark (Section 1, Challenge 3).
//
// Beyond the scalar aggregates, each stage carries per-partition send/recv/
// work histograms, the broadcast-vs-shuffle decision, the heavy-key count
// from the skew sampler, and a memory high-water mark; JobStats aggregates
// them into a job-wide straggler/imbalance summary (src/obs turns these into
// EXPLAIN ANALYZE reports, percentile summaries and Chrome trace exports).
#ifndef TRANCE_RUNTIME_STATS_H_
#define TRANCE_RUNTIME_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/fault.h"

namespace trance {
namespace runtime {

/// How a stage moved data between partitions.
enum class DataMovement {
  kLocal,      // partition-local (no cross-partition movement)
  kShuffle,    // hash repartitioning
  kBroadcast,  // replication to every partition
};

const char* DataMovementName(DataMovement m);

/// One narrow operator inside a fused stage (runtime/stage_pipeline). The
/// per-transform emitted-row count is what EXPLAIN ANALYZE shows for the plan
/// node the transform came from.
struct FusedTransformStats {
  std::string op;
  std::string scope;
  uint64_t rows_out = 0;
};

struct StageStats {
  std::string op;
  /// Plan-operator attribution (set from the cluster's scope stack); empty
  /// for stages recorded outside plan execution (sources, unshredding).
  std::string scope;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t shuffle_bytes = 0;             // bytes moved between partitions
  uint64_t max_partition_recv_bytes = 0;  // heaviest receiver in the shuffle
  uint64_t max_partition_work_bytes = 0;  // heaviest worker's processed bytes
  uint64_t total_work_bytes = 0;
  /// Largest partition footprint of the stage's output (bytes); 0 for stages
  /// that do not materialize an output (sources are pre-cached).
  uint64_t mem_high_water_bytes = 0;
  /// Heavy keys found by the skew sampler (heavy_keys stages only).
  uint64_t heavy_key_count = 0;
  DataMovement movement = DataMovement::kLocal;
  /// Per-partition histograms (indexed by partition; empty when the stage
  /// did not track the quantity).
  std::vector<uint64_t> partition_send_bytes;
  std::vector<uint64_t> partition_recv_bytes;
  std::vector<uint64_t> partition_work_bytes;
  /// Non-empty when this stage ran a fused chain of narrow transforms (one
  /// entry per transform, in chain order).
  std::vector<FusedTransformStats> fused_transforms;
  /// Bytes the unfused pipeline would have materialized between the chain's
  /// transforms (rows emitted by every non-final transform); 0 for unfused
  /// stages.
  uint64_t intermediate_bytes_avoided = 0;
  /// Keyed-operator telemetry (join build/probe, cogroup, nest, reduce,
  /// dedup, heavy-key sampling). build/probe/chain are data-determined and
  /// identical with the key codec on or off; key_encode_bytes is the bytes
  /// of binary keys the codec produced (0 on the legacy KeyView path).
  uint64_t key_encode_bytes = 0;  // encoded key bytes produced this stage
  uint64_t hash_build_rows = 0;   // rows inserted into keyed hash structures
  uint64_t hash_probe_hits = 0;   // lookups that found an existing key
  uint64_t hash_max_chain = 0;    // max input rows mapped to a single key
  /// Flat hash-table telemetry (runtime/flat_hash.h): total slot-array +
  /// arena footprint of the stage's flat tables, slot-array doublings, and
  /// the longest open-addressing probe sequence. All three are exactly 0
  /// when ExecOptions::enable_flat_hash is off (the std::unordered_map
  /// fallback), mirroring how key_encode_bytes is codec-only.
  uint64_t hash_table_bytes = 0;
  uint64_t hash_resizes = 0;
  uint64_t hash_probe_len_max = 0;
  /// Columnar-block telemetry (runtime/column.h): footprint of the typed
  /// partition blocks this stage built, and rows it materialized back out of
  /// blocks as Row values. Both are exactly 0 when
  /// ExecOptions::enable_columnar is off (the historical row path), like
  /// hash_table_bytes with flat hash off; every pre-existing field is
  /// bit-identical either way.
  uint64_t columnar_bytes = 0;
  uint64_t column_to_row_conversions = 0;
  /// Out-of-core spill telemetry (runtime/spill.h): bytes written to /
  /// streamed back from run files, run files produced, and stream-merge
  /// passes over them. All four are exactly 0 when nothing spills (and
  /// always when ExecOptions::enable_spill is off); spilling never changes
  /// any pre-existing field — spill cost flows through these channels only.
  uint64_t spill_bytes_written = 0;
  uint64_t spill_bytes_read = 0;
  uint64_t spill_runs = 0;
  uint64_t spill_merge_passes = 0;
  /// Rows a block-resident spill restored column-wise (block record →
  /// resident block) instead of materializing as Row values — the disk-side
  /// rowifications the resident representation avoided. Like the other
  /// spill counters it is 0 when nothing spills.
  uint64_t spill_rowify_avoided = 0;
  /// Fault-injection & recovery telemetry (empty/zero on fault-free runs and
  /// when the injector is disabled). Every non-recovery field above is
  /// bit-identical between a fault-free run and a run whose injected faults
  /// were all recovered — recovery is stats-transparent.
  std::vector<FaultEvent> fault_events;  // (partition, attempt, kind) log
  uint64_t injected_faults = 0;          // faults injected into this stage
  uint64_t retries = 0;                  // task re-executions performed
  /// Per-task-slot retry counts (indexed like the stage's task loop; empty
  /// when no fault hit the stage).
  std::vector<uint64_t> partition_retries;
  /// Simulated seconds recovery cost this stage: per fault, the bounded
  /// exponential backoff plus the discarded attempt's work (crash kinds,
  /// cpu cost of the partition's work bytes) or re-fetch (fetch loss, net
  /// cost of the partition's recv bytes). Kept OUT of sim_seconds so
  /// fault-free and recovered runs report identical base stats; stamped by
  /// Cluster::RecordStage.
  double recovery_sim_seconds = 0;
  double sim_seconds = 0;
  /// Wall-clock interval of the stage on the process trace timeline
  /// (microseconds since trance::WallMicros epoch); stamped by
  /// Cluster::RecordStage.
  double wall_start_us = 0;
  double wall_dur_us = 0;

  /// Straggler factor: heaviest worker / mean worker load (1.0 when the
  /// stage tracked no per-partition work or did no work).
  double ImbalanceFactor() const;
};

/// Job-wide straggler / skew summary (the aggregate the per-stage maxima
/// previously never surfaced).
struct StragglerSummary {
  uint64_t max_partition_recv_bytes = 0;  // worst single-stage receiver
  uint64_t max_partition_work_bytes = 0;  // worst single-stage worker
  double worst_imbalance = 1.0;           // max over stages of max/mean work
  std::string worst_stage;                // op name of that stage
  uint64_t heavy_key_count = 0;           // total keys flagged by the sampler
};

/// Accumulated statistics for one logical job (query execution).
class JobStats {
 public:
  void AddStage(StageStats s) {
    totals_.shuffle_bytes += s.shuffle_bytes;
    totals_.rows_in += s.rows_in;
    totals_.rows_out += s.rows_out;
    totals_.total_work_bytes += s.total_work_bytes;
    if (s.shuffle_bytes > max_stage_shuffle_) {
      max_stage_shuffle_ = s.shuffle_bytes;
    }
    sim_seconds_ += s.sim_seconds;
    if (!s.fused_transforms.empty()) ++fused_stages_;
    intermediate_bytes_avoided_ += s.intermediate_bytes_avoided;
    injected_faults_ += s.injected_faults;
    retries_ += s.retries;
    recovery_sim_seconds_ += s.recovery_sim_seconds;
    key_encode_bytes_ += s.key_encode_bytes;
    hash_build_rows_ += s.hash_build_rows;
    hash_probe_hits_ += s.hash_probe_hits;
    if (s.hash_max_chain > hash_max_chain_) hash_max_chain_ = s.hash_max_chain;
    hash_table_bytes_ += s.hash_table_bytes;
    hash_resizes_ += s.hash_resizes;
    if (s.hash_probe_len_max > hash_probe_len_max_) {
      hash_probe_len_max_ = s.hash_probe_len_max;
    }
    columnar_bytes_ += s.columnar_bytes;
    column_to_row_conversions_ += s.column_to_row_conversions;
    spill_bytes_written_ += s.spill_bytes_written;
    spill_bytes_read_ += s.spill_bytes_read;
    spill_runs_ += s.spill_runs;
    spill_merge_passes_ += s.spill_merge_passes;
    spill_rowify_avoided_ += s.spill_rowify_avoided;
    stages_.push_back(std::move(s));
  }

  void NotePeakPartitionBytes(uint64_t b) {
    if (b > peak_partition_bytes_) peak_partition_bytes_ = b;
  }

  const std::vector<StageStats>& stages() const { return stages_; }
  uint64_t total_shuffle_bytes() const { return totals_.shuffle_bytes; }
  /// The largest single-stage shuffle ("max data shuffle" in Section 6).
  uint64_t max_stage_shuffle_bytes() const { return max_stage_shuffle_; }
  uint64_t peak_partition_bytes() const { return peak_partition_bytes_; }
  double sim_seconds() const { return sim_seconds_; }
  /// Stages that ran a fused chain of narrow transforms.
  uint64_t fused_stages() const { return fused_stages_; }
  /// Total bytes fusion kept from materializing between narrow operators.
  uint64_t intermediate_bytes_avoided() const {
    return intermediate_bytes_avoided_;
  }
  /// Faults injected across all stages (0 on fault-free runs).
  uint64_t injected_faults() const { return injected_faults_; }
  /// Task re-executions the recovery loop performed.
  uint64_t retries() const { return retries_; }
  /// Total simulated recovery time (backoff + discarded attempts); reported
  /// separately from sim_seconds() so base stats stay fault-invariant.
  double recovery_sim_seconds() const { return recovery_sim_seconds_; }
  /// Bytes of binary keys the key codec produced (0 when the codec is off).
  uint64_t key_encode_bytes() const { return key_encode_bytes_; }
  /// Rows inserted into keyed hash structures across all stages.
  uint64_t hash_build_rows() const { return hash_build_rows_; }
  /// Keyed lookups that found an existing key across all stages.
  uint64_t hash_probe_hits() const { return hash_probe_hits_; }
  /// Worst per-key chain (max over stages of the stage's longest chain).
  uint64_t hash_max_chain() const { return hash_max_chain_; }
  /// Total flat hash-table footprint built across all stages (0 when
  /// enable_flat_hash is off).
  uint64_t hash_table_bytes() const { return hash_table_bytes_; }
  /// Flat-table slot-array doublings across all stages.
  uint64_t hash_resizes() const { return hash_resizes_; }
  /// Longest open-addressing probe sequence any stage saw.
  uint64_t hash_probe_len_max() const { return hash_probe_len_max_; }
  /// Total typed-block footprint operators built (0 when columnar is off).
  uint64_t columnar_bytes() const { return columnar_bytes_; }
  /// Rows materialized back out of typed blocks (0 when columnar is off).
  uint64_t column_to_row_conversions() const {
    return column_to_row_conversions_;
  }
  /// Bytes written to spill run files (0 when nothing spilled).
  uint64_t spill_bytes_written() const { return spill_bytes_written_; }
  /// Bytes streamed back from spill run files.
  uint64_t spill_bytes_read() const { return spill_bytes_read_; }
  /// Spill run files produced across all stages.
  uint64_t spill_runs() const { return spill_runs_; }
  /// Stream-merge passes over spill runs.
  uint64_t spill_merge_passes() const { return spill_merge_passes_; }
  /// Rows restored from spill block records straight into resident blocks
  /// (disk-side rowifications avoided by block residence).
  uint64_t spill_rowify_avoided() const { return spill_rowify_avoided_; }

  /// Job-wide aggregation of the per-stage skew quantities.
  StragglerSummary straggler() const;

  void Reset() {
    stages_.clear();
    totals_ = StageStats{};
    max_stage_shuffle_ = 0;
    peak_partition_bytes_ = 0;
    sim_seconds_ = 0;
    fused_stages_ = 0;
    intermediate_bytes_avoided_ = 0;
    injected_faults_ = 0;
    retries_ = 0;
    recovery_sim_seconds_ = 0;
    key_encode_bytes_ = 0;
    hash_build_rows_ = 0;
    hash_probe_hits_ = 0;
    hash_max_chain_ = 0;
    hash_table_bytes_ = 0;
    hash_resizes_ = 0;
    hash_probe_len_max_ = 0;
    columnar_bytes_ = 0;
    column_to_row_conversions_ = 0;
    spill_bytes_written_ = 0;
    spill_bytes_read_ = 0;
    spill_runs_ = 0;
    spill_merge_passes_ = 0;
    spill_rowify_avoided_ = 0;
  }

  std::string ToString() const;

 private:
  std::vector<StageStats> stages_;
  StageStats totals_;
  uint64_t max_stage_shuffle_ = 0;
  uint64_t peak_partition_bytes_ = 0;
  double sim_seconds_ = 0;
  uint64_t fused_stages_ = 0;
  uint64_t intermediate_bytes_avoided_ = 0;
  uint64_t injected_faults_ = 0;
  uint64_t retries_ = 0;
  double recovery_sim_seconds_ = 0;
  uint64_t key_encode_bytes_ = 0;
  uint64_t hash_build_rows_ = 0;
  uint64_t hash_probe_hits_ = 0;
  uint64_t hash_max_chain_ = 0;
  uint64_t hash_table_bytes_ = 0;
  uint64_t hash_resizes_ = 0;
  uint64_t hash_probe_len_max_ = 0;
  uint64_t columnar_bytes_ = 0;
  uint64_t column_to_row_conversions_ = 0;
  uint64_t spill_bytes_written_ = 0;
  uint64_t spill_bytes_read_ = 0;
  uint64_t spill_runs_ = 0;
  uint64_t spill_merge_passes_ = 0;
  uint64_t spill_rowify_avoided_ = 0;
};

}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_STATS_H_
