#include "runtime/ops.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "runtime/flat_hash.h"
#include "runtime/key_codec.h"
#include "runtime/spill.h"
#include "util/hash.h"

namespace trance {
namespace runtime {

namespace {

/// Accumulates per-partition processed bytes and finalizes max/total plus
/// the per-partition work histogram. Add() is called from partition-parallel
/// loops: each task writes only its own slot p, and Finalize() (called after
/// the stage barrier) folds the slots in partition order — so the resulting
/// stats are bit-identical to a sequential run.
class WorkMeter {
 public:
  explicit WorkMeter(size_t parts) : work_(parts, 0) {}
  void Add(size_t p, uint64_t bytes) { work_[p] += bytes; }
  /// Clears slot p (recovery reset of a discarded task attempt). Only valid
  /// while a single task loop owns the slot.
  void Reset(size_t p) { work_[p] = 0; }
  void Finalize(StageStats* s) const {
    for (uint64_t w : work_) {
      s->total_work_bytes += w;
      if (w > s->max_partition_work_bytes) s->max_partition_work_bytes = w;
    }
    s->partition_work_bytes = work_;
  }

 private:
  std::vector<uint64_t> work_;
};

/// Per-partition keyed-phase telemetry, following the same slot discipline
/// as WorkMeter: each task owns slot p, Finalize folds the slots in
/// partition order after the stage barrier (stats stay thread-count
/// invariant). A stage with several keyed loops (e.g. SumAggregate's
/// combine + final passes) finalizes one meter per loop; the StageStats
/// fields accumulate.
class KeyStatsMeter {
 public:
  explicit KeyStatsMeter(size_t parts) : slots_(parts) {}
  key_codec::KeyStats& slot(size_t p) { return slots_[p]; }
  void Reset(size_t p) { slots_[p] = key_codec::KeyStats{}; }
  void Finalize(StageStats* s) const {
    key_codec::KeyStats total;
    for (const auto& k : slots_) total.Merge(k);
    s->key_encode_bytes += total.encode_bytes;
    s->hash_build_rows += total.build_rows;
    s->hash_probe_hits += total.probe_hits;
    if (total.max_chain > s->hash_max_chain) {
      s->hash_max_chain = total.max_chain;
    }
    s->hash_table_bytes += total.table_bytes;
    s->hash_resizes += total.resizes;
    if (total.probe_len_max > s->hash_probe_len_max) {
      s->hash_probe_len_max = total.probe_len_max;
    }
  }

 private:
  std::vector<key_codec::KeyStats> slots_;
};

/// Returns the first non-OK per-partition task error in partition order (so
/// the surfaced error is deterministic regardless of thread interleaving).
Status FirstError(const std::vector<Status>& errs) {
  for (const Status& e : errs) {
    if (!e.ok()) return e;
  }
  return Status::OK();
}

/// Folds one partition's spill telemetry into the stage and emits its spill
/// event. Driver-side only (post-barrier or sequential loops), in partition
/// order, so spill counters and the event sequence are thread-count-invariant.
void NoteSpill(Cluster* cluster, StageStats* stage, const std::string& op,
               size_t partition, uint64_t partition_bytes,
               const spill::SpillCounters& c) {
  stage->spill_bytes_written += c.bytes_written;
  stage->spill_bytes_read += c.bytes_read;
  stage->spill_runs += c.runs;
  stage->spill_merge_passes += c.merge_passes;
  stage->spill_rowify_avoided += c.rowify_avoided;
  obs::EventLog& log = obs::GlobalEventLog();
  if (!log.enabled()) return;
  obs::Event(&log, "spill")
      .U64("job", cluster->current_job_id())
      .Str("op", op)
      .U64("partition", partition)
      .U64("partition_bytes", partition_bytes)
      .U64("bytes_written", c.bytes_written)
      .U64("bytes_read", c.bytes_read)
      .U64("runs", c.runs)
      .U64("merge_passes", c.merge_passes)
      .U64("rowify_avoided", c.rowify_avoided)
      .Emit();
}

/// Static gate for the codec path of a keyed operator: a key column whose
/// declared type is a bag can never encode, so such operators keep the
/// legacy KeyView containers even with the codec enabled (today's
/// semantics: bag keys compare structurally). Columns with unknown type
/// pass the gate; a bag value reaching the encoder at run time then
/// surfaces as a TypeError rather than a silent divergence.
bool KeyColsEncodable(const Schema& s, const std::vector<int>& cols) {
  for (int c : cols) {
    const auto& t = s.col(static_cast<size_t>(c)).type;
    if (t != nullptr && t->is_bag()) return false;
  }
  return true;
}

/// Which container idiom a keyed operator runs on. Two code paths exist per
/// operator: the encoded path (written once, instantiated with either index
/// container via WithKeyIndex) and the legacy KeyView fallback.
enum class KeyedMode {
  kFlat,    // codec on, flat on: open-addressing table over arena key bytes
  kStdMap,  // codec on, flat off: node-based unordered_map<EncodedKey, …>
  kLegacy,  // codec off (or unencodable keys): historical KeyView containers
};

KeyedMode KeyedModeFor(const Cluster* cluster, bool encodable) {
  if (!cluster->key_codec_enabled() || !encodable) return KeyedMode::kLegacy;
  return cluster->flat_hash_enabled() ? KeyedMode::kFlat : KeyedMode::kStdMap;
}

template <class T>
struct IndexTag {
  using type = T;
};

/// Runs the encoded keyed loop `f` with its index container type: the flat
/// open-addressing table (default) or the std::unordered_map fallback when
/// enable_flat_hash is off. The loop body is written once and instantiated
/// with both, so the escape hatch cannot drift from the flat path.
template <class F>
auto WithKeyIndex(KeyedMode mode, F&& f) {
  return mode == KeyedMode::kFlat ? f(IndexTag<flat_hash::FlatKeyIndex>{})
                                  : f(IndexTag<flat_hash::StdKeyIndex>{});
}

/// Accumulates `add` into `into[i]`, growing the histogram on first use (a
/// stage may run several shuffles, e.g. both sides of a join).
void AccumulateHistogram(std::vector<uint64_t>* into,
                         const std::vector<uint64_t>& add) {
  if (into->size() < add.size()) into->resize(add.size(), 0);
  for (size_t i = 0; i < add.size(); ++i) (*into)[i] += add[i];
}

/// Read view over one partition in either residence. Operators consume their
/// inputs through this view: block-resident partitions serve cell reads,
/// null probes, sizes, and key encoding straight from the column arenas —
/// only MaterializeRow crosses the representation boundary, and only the
/// legacy keyed path counts those crossings (see column_to_row_conversions
/// in docs/METRICS.md). Both residences observe bit-identical Field values,
/// so everything derived from a view is residence-invariant.
struct PartView {
  const std::vector<Row>* rows = nullptr;
  const column::PartitionBlock* block = nullptr;

  static PartView Of(const PartitionStore& s, size_t p) {
    PartView v;
    if (s.block_resident()) {
      v.block = &s.block(p);
    } else {
      v.rows = &s.rows(p);
    }
    return v;
  }
  /// A view over a plain row list (broadcast copies, collected rows).
  static PartView OfRowList(const std::vector<Row>& r) {
    PartView v;
    v.rows = &r;
    return v;
  }

  bool block_backed() const { return block != nullptr; }
  size_t size() const { return block != nullptr ? block->NumRows() : rows->size(); }

  /// Materializes row i (transient unless the caller retains it; the legacy
  /// keyed containers do retain, which is why they count conversions).
  Row MaterializeRow(size_t i) const {
    return block != nullptr ? block->RowAt(i) : (*rows)[i];
  }
  Field FieldAt(size_t i, size_t c) const {
    return block != nullptr ? block->FieldAt(i, c) : (*rows)[i].fields[c];
  }
  bool IsNullAt(size_t i, size_t c) const {
    return block != nullptr ? block->IsNull(i, c)
                            : (*rows)[i].fields[c].is_null();
  }
  bool HasNullKeyAt(size_t i, const std::vector<int>& cols) const {
    for (int c : cols) {
      if (IsNullAt(i, static_cast<size_t>(c))) return true;
    }
    return false;
  }
  /// RowDeepSize of row i without materializing it.
  uint64_t RowBytes(size_t i) const {
    return block != nullptr ? block->RowBytesAt(i) : RowDeepSize((*rows)[i]);
  }
  /// Key fields of row i at `cols` (group/key storage).
  std::vector<Field> KeyFields(size_t i, const std::vector<int>& cols) const {
    std::vector<Field> out;
    out.reserve(cols.size());
    for (int c : cols) out.push_back(FieldAt(i, static_cast<size_t>(c)));
    return out;
  }
  /// Encodes the key columns of row i; byte-identical to
  /// enc->Encode(MaterializeRow(i), cols) — block cells append incrementally
  /// from the arenas, ragged blocks and row lists encode the row form.
  StatusOr<key_codec::EncodedKeyView> EncodeKey(key_codec::KeyEncoder* enc,
                                                size_t i,
                                                const std::vector<int>& cols) const {
    if (block == nullptr) return enc->Encode((*rows)[i], cols);
    if (block->ragged()) return enc->Encode(block->RowAt(i), cols);
    enc->Begin();
    for (int c : cols) {
      TRANCE_RETURN_NOT_OK(enc->Append(block->FieldAt(i, static_cast<size_t>(c))));
    }
    return enc->Finish();
  }
  /// Encodes every column of row i (whole-row membership keys, e.g.
  /// Distinct); byte-identical to enc->EncodeRow(MaterializeRow(i)).
  StatusOr<key_codec::EncodedKeyView> EncodeAllCols(
      key_codec::KeyEncoder* enc, size_t i) const {
    if (block == nullptr) return enc->EncodeRow((*rows)[i]);
    if (block->ragged()) return enc->EncodeRow(block->RowAt(i));
    enc->Begin();
    for (size_t c = 0; c < block->NumCols(); ++c) {
      TRANCE_RETURN_NOT_OK(enc->Append(block->FieldAt(i, c)));
    }
    return enc->Finish();
  }
};

/// Append-only writer over one output partition in whichever residence the
/// operator chose at init (InitBlocks/InitRows). Appends never reserve, so a
/// block partition's ByteFootprint is a pure function of the append sequence
/// — the invariant every columnar_bytes charge and the spill/restore replay
/// rely on. The sink itself charges nothing; callers read the block's
/// footprint after their loop, into the partition's own stat slot.
struct PartSink {
  PartitionStore* store;
  size_t p;

  void Append(const Row& r) {
    if (store->block_resident()) {
      store->block(p).AppendRow(r);
    } else {
      store->rows(p).push_back(r);
    }
  }
  void Append(Row&& r) {
    if (store->block_resident()) {
      store->block(p).AppendRow(r);
    } else {
      store->rows(p).push_back(std::move(r));
    }
  }
  /// Row i of `v`, column-to-column when both sides are blocks.
  void AppendFrom(const PartView& v, size_t i) {
    if (store->block_resident()) {
      if (v.block != nullptr) {
        store->block(p).AppendRowFrom(*v.block, i);
      } else {
        store->block(p).AppendRow((*v.rows)[i]);
      }
    } else {
      store->rows(p).push_back(v.MaterializeRow(i));
    }
  }
};

/// Partitions entering an operator's partition-local phase, in whichever
/// residence the producing shuffle (or reused input) holds them, with the
/// deep-size footprint of each partition. The bytes ride along from the
/// shuffle (where every row was sized exactly once) so the work meter and
/// memory check never re-walk rows a shuffle already sized.
struct ShuffledParts {
  PartitionStore store;
  std::vector<uint64_t> bytes;
};

/// Hash-shuffles `in` to num_partitions buckets keyed on key_cols, recording
/// exact cross-partition movement into `stage`. Two-phase and
/// partition-parallel:
///   1. each input partition buckets its rows by target partition into its
///      own bucket set, sizing every row once (the size feeds movement
///      accounting and the output footprint);
///   2. each target partition concatenates its buckets in fixed
///      input-partition order.
/// Phase 2's fixed order reproduces the sequential row order exactly, and
/// the movement histograms are merged in partition order at the phase-1
/// barrier, so output and stats are identical for any thread count.
///
/// Columnar mode moves columns, not rows: the map side routes cells
/// block-to-block straight out of the resident input block (a row-resident
/// input — the legacy keyed handoff — packs once, counted), and the fetch
/// side concatenates the per-target buckets into the resident output block,
/// so no row materializes on either side. Routing hashes
/// (PartitionBlock::HashRowOn == RowHashOn) and per-row sizes (RowBytesAt ==
/// RowDeepSize) are computed from the identical Field values, so placement
/// and every movement stat are bit-identical either way.
///
/// Fault model: phase-1 (map side) tasks read only the immutable input, so a
/// crash fault re-runs them after discarding the partition's buckets; phase-2
/// (fetch side) consumes the buckets destructively via move, so its faults
/// are fetch-style — they strike before the task touches the buckets (null
/// reset) and the retry re-fetches.
StatusOr<ShuffledParts> ShuffleByKey(Cluster* cluster, const Dataset& in,
                                     const std::vector<int>& key_cols,
                                     StageStats* stage) {
  const size_t n = static_cast<size_t>(cluster->num_partitions());
  const size_t in_n = in.NumPartitions();
  const bool columnar = cluster->columnar_enabled();

  struct SourceBuckets {
    std::vector<std::vector<Row>> rows;  // [target] (row mode)
    std::vector<column::PartitionBlock> blocks;  // [target] (columnar mode)
    std::vector<uint64_t> bytes;         // [target] all routed bytes
    std::vector<uint64_t> moved;         // [target] bytes that changed partition
    uint64_t sent = 0;                   // total bytes leaving this partition
    uint64_t moved_rows = 0;             // rows that changed partition
  };
  std::vector<SourceBuckets> buckets(in_n);
  std::vector<uint64_t> map_col_bytes(in_n, 0);
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      stage->op + ".shuffle_map", in_n, stage,
      [&](size_t p) {
        SourceBuckets& b = buckets[p];
        b.bytes.assign(n, 0);
        b.moved.assign(n, 0);
        if (columnar) {
          // Block-resident inputs route out of their own arenas; only a
          // row-resident input (the legacy keyed handoff) pays for a pack
          // here, and that pack is what map_col_bytes charges for it.
          column::PartitionBlock packed;
          const column::PartitionBlock* in_block = nullptr;
          if (in.store.block_resident()) {
            in_block = &in.store.block(p);
          } else {
            packed = column::PartitionBlock::FromRows(in.schema,
                                                      in.store.rows(p));
            map_col_bytes[p] += packed.ByteFootprint();
            in_block = &packed;
          }
          b.blocks.assign(n, column::PartitionBlock(in.schema));
          const size_t rows = in_block->NumRows();
          for (size_t i = 0; i < rows; ++i) {
            size_t target = static_cast<size_t>(
                cluster->PartitionOf(in_block->HashRowOn(i, key_cols)));
            uint64_t sz = in_block->RowBytesAt(i);
            b.bytes[target] += sz;
            if (target != p) {
              b.moved[target] += sz;
              b.sent += sz;
              ++b.moved_rows;
            }
            b.blocks[target].AppendRowFrom(*in_block, i);
          }
          for (const auto& tb : b.blocks) {
            map_col_bytes[p] += tb.ByteFootprint();
          }
          return;
        }
        b.rows.resize(n);
        for (const auto& row : in.store.rows(p)) {
          // key_codec::KeyHashOn is the codec's key hash and is identical to
          // RowHashOn, so shuffle routing never depends on the codec mode.
          size_t target = static_cast<size_t>(
              cluster->PartitionOf(key_codec::KeyHashOn(row, key_cols)));
          uint64_t sz = RowDeepSize(row);
          b.bytes[target] += sz;
          if (target != p) {
            b.moved[target] += sz;
            b.sent += sz;
            ++b.moved_rows;
          }
          b.rows[target].push_back(row);
        }
      },
      [&](size_t p) {
        buckets[p] = SourceBuckets{};
        map_col_bytes[p] = 0;
      }));

  std::vector<uint64_t> recv(n, 0);
  std::vector<uint64_t> send(std::max(in_n, n), 0);
  uint64_t moved_rows = 0;
  uint64_t moved_bytes = 0;
  for (size_t p = 0; p < in_n; ++p) {
    send[p] = buckets[p].sent;
    stage->shuffle_bytes += buckets[p].sent;
    moved_rows += buckets[p].moved_rows;
    moved_bytes += buckets[p].sent;
    for (size_t t = 0; t < n; ++t) recv[t] += buckets[p].moved[t];
  }

  ShuffledParts out;
  if (columnar) {
    out.store.InitBlocks(n, in.schema);
  } else {
    out.store.InitRows(n);
  }
  out.bytes.assign(n, 0);
  std::vector<uint64_t> fetch_col_bytes(n, 0);

  // Fetch-side spill (runtime/spill.h): a target whose total received bytes
  // exceed the spill threshold writes one run per non-empty source bucket
  // (clearing the bucket as it goes), then stream-merges the runs back in
  // fixed source order — the identical row sequence the in-memory
  // concatenation produces. Columnar targets restore straight into the
  // resident output block (each block-record row counts into rowify_avoided
  // instead of materializing). The spill decision and every run are pure
  // functions of the routed bytes, and the per-target counter slots are
  // folded in target order after the barrier, so results and stats stay
  // thread-count-invariant.
  const bool spill_on = cluster->spill_enabled();
  const uint64_t spill_threshold = cluster->spill_threshold_bytes();
  std::vector<spill::SpillCounters> spill_slots(n);
  std::vector<Status> spill_errs(n, Status::OK());
  auto spill_fetch_target = [&](size_t t) -> Status {
    spill::SpillManager* sm = cluster->spill_manager();
    spill::SpillCounters* c = &spill_slots[t];
    const std::string tag = stage->op + ".shuffle_fetch";
    const uint64_t job = cluster->current_job_id();
    std::vector<std::string> runs;
    for (size_t p = 0; p < in_n; ++p) {
      out.bytes[t] += buckets[p].bytes[t];
      std::string path = sm->RunPath(job, tag, t, runs.size());
      if (columnar) {
        auto& src = buckets[p].blocks[t];
        if (src.NumRows() == 0) continue;
        TRANCE_RETURN_NOT_OK(sm->WriteBlockRun(path, src, c));
        src = column::PartitionBlock(in.schema);
      } else {
        auto& src = buckets[p].rows[t];
        if (src.empty()) continue;
        TRANCE_RETURN_NOT_OK(sm->WriteRowsRun(path, src, c));
        src.clear();
        src.shrink_to_fit();
      }
      runs.push_back(std::move(path));
    }
    // One merge pass: streaming the runs in write order restores the exact
    // source-order concatenation. ReadRunIntoBlock replays the same per-row
    // append sequence the in-memory concatenation performs, so the restored
    // block's footprint equals the never-spilled one.
    for (const std::string& path : runs) {
      if (columnar) {
        TRANCE_RETURN_NOT_OK(
            sm->ReadRunIntoBlock(path, &out.store.block(t), c));
      } else {
        TRANCE_RETURN_NOT_OK(sm->ReadRun(path, &out.store.rows(t), nullptr, c));
      }
    }
    for (const std::string& path : runs) sm->RemoveRun(path);
    c->merge_passes += 1;
    return Status::OK();
  };

  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      stage->op + ".shuffle_fetch", n, stage,
      [&](size_t t) {
        bool spilled = false;
        if (spill_on) {
          uint64_t total_bytes = 0;
          for (size_t p = 0; p < in_n; ++p) total_bytes += buckets[p].bytes[t];
          if (total_bytes > spill_threshold) {
            spill_errs[t] = spill_fetch_target(t);
            spilled = true;
          }
        }
        if (!spilled && columnar) {
          column::PartitionBlock& dst = out.store.block(t);
          for (size_t p = 0; p < in_n; ++p) {
            const auto& src = buckets[p].blocks[t];
            const size_t rows = src.NumRows();
            for (size_t i = 0; i < rows; ++i) dst.AppendRowFrom(src, i);
            out.bytes[t] += buckets[p].bytes[t];
          }
        } else if (!spilled) {
          size_t total = 0;
          for (size_t p = 0; p < in_n; ++p) total += buckets[p].rows[t].size();
          out.store.rows(t).reserve(total);
          for (size_t p = 0; p < in_n; ++p) {
            auto& src = buckets[p].rows[t];
            out.store.rows(t).insert(out.store.rows(t).end(),
                                     std::make_move_iterator(src.begin()),
                                     std::make_move_iterator(src.end()));
            out.bytes[t] += buckets[p].bytes[t];
          }
        }
        if (columnar) {
          fetch_col_bytes[t] += out.store.block(t).ByteFootprint();
        }
      },
      nullptr));
  TRANCE_RETURN_NOT_OK(FirstError(spill_errs));
  for (size_t t = 0; t < n; ++t) {
    if (spill_slots[t].runs == 0 && spill_slots[t].merge_passes == 0) continue;
    NoteSpill(cluster, stage, stage->op + ".shuffle_fetch", t, out.bytes[t],
              spill_slots[t]);
  }
  for (uint64_t b : map_col_bytes) stage->columnar_bytes += b;
  for (uint64_t b : fetch_col_bytes) stage->columnar_bytes += b;

  for (uint64_t b : recv) {
    if (b > stage->max_partition_recv_bytes) {
      stage->max_partition_recv_bytes = b;
    }
  }
  stage->movement = DataMovement::kShuffle;
  AccumulateHistogram(&stage->partition_recv_bytes, recv);
  AccumulateHistogram(&stage->partition_send_bytes, send);
  // Driver-side (post-barrier) publication of what this shuffle moved; the
  // bytes also reach the registry via RecordStage, rows only exist here.
  cluster->metrics()
      .GetCounter("trance_shuffle_rows_total",
                  "rows that changed partition in shuffles")
      ->Add(moved_rows);
  obs::EventLog& log = obs::GlobalEventLog();
  if (log.enabled()) {
    obs::Event(&log, "shuffle")
        .U64("job", cluster->current_job_id())
        .Str("op", stage->op)
        .Str("movement", "shuffle")
        .U64("rows_moved", moved_rows)
        .U64("bytes", moved_bytes)
        .U64("partitions", n)
        .Emit();
  }
  return out;
}

/// Shuffle path of operators that group/join on `key_cols`: reuses the input
/// partitions (zero movement — and still one sizing walk for the work meter)
/// when the guarantee already holds, otherwise hash-shuffles.
StatusOr<ShuffledParts> ShuffleOrReuse(Cluster* cluster, const Dataset& in,
                                       const std::vector<int>& key_cols,
                                       StageStats* stage) {
  if (in.partitioning.IsHashOn(key_cols)) {
    ShuffledParts out;
    out.store = in.store;
    out.bytes = in.PartitionBytes(cluster->num_threads());
    // Keyed-input spill: on the reuse path no shuffle bounds the partitions,
    // so an oversized keyed-build input spills to runs here and streams back
    // in the original order — the downstream index build then inserts the
    // identical row sequence (same hash_* stats, same group emission order).
    // Block-resident partitions spill and restore as block records without
    // materializing a row. Driver-side, in partition order.
    if (cluster->spill_enabled()) {
      const uint64_t threshold = cluster->spill_threshold_bytes();
      for (size_t p = 0; p < out.store.NumPartitions(); ++p) {
        if (out.bytes[p] <= threshold) continue;
        spill::SpillCounters pc;
        if (out.store.block_resident()) {
          TRANCE_RETURN_NOT_OK(cluster->spill_manager()->SpillAndRestoreBlock(
              cluster->current_job_id(), stage->op + ".keyed_input", p,
              in.schema, &out.store.block(p), &pc));
        } else {
          TRANCE_RETURN_NOT_OK(cluster->spill_manager()->SpillAndRestoreRows(
              cluster->current_job_id(), stage->op + ".keyed_input", p,
              &out.store.rows(p), &pc));
        }
        NoteSpill(cluster, stage, stage->op + ".keyed_input", p, out.bytes[p],
                  pc);
      }
    }
    return out;
  }
  return ShuffleByKey(cluster, in, key_cols, stage);
}

/// Output schema of a join: left columns then right columns, right-side
/// collisions suffixed "__r".
Schema JoinSchema(const Schema& l, const Schema& r) {
  Schema out = l;
  for (const auto& c : r.columns()) {
    std::string name = c.name;
    while (out.IndexOf(name) >= 0) name += "__r";
    out.Append({name, c.type});
  }
  return out;
}

Row ConcatRows(const Row& l, const Row& r) {
  Row out;
  out.fields = l.fields;
  out.fields.reserve(l.fields.size() + r.fields.size());
  out.fields.insert(out.fields.end(), r.fields.begin(), r.fields.end());
  return out;
}

Row NullPadRight(const Row& l, size_t right_width) {
  Row out;
  out.fields = l.fields;
  out.fields.reserve(l.fields.size() + right_width);
  for (size_t i = 0; i < right_width; ++i) out.fields.push_back(Field::Null());
  return out;
}

bool HasNullKey(const Row& r, const std::vector<int>& cols) {
  for (int c : cols) {
    if (r.fields[static_cast<size_t>(c)].is_null()) return true;
  }
  return false;
}

/// Partition-local hash join of two partition views into `sink`.
/// `right_schema` supplies the right width (an empty right partition must
/// still NULL-pad fully) and, in columnar mode, the build block's column
/// types. Writes the deep-size footprint of the rows it appended to
/// *out_bytes and the keyed-phase telemetry into *ks. On the encoded modes
/// the build table is keyed by compact binary keys (one arena append per
/// distinct key, no per-probe allocation); kLegacy runs the historical
/// KeyView containers. When `columnar` is set (and the mode is encoded — the
/// legacy path has no block form), the build side is consumed column-wise: a
/// block-resident right partition is used in place, a row list (broadcast or
/// legacy handoff) packs into a typed block once (counted into *col_bytes);
/// probe keys encode straight from the left view's arenas. The legacy path's
/// containers retain Row pointers, so block-resident inputs materialize row
/// vectors there — the one surviving in-memory conversion site, counted into
/// *conversions. All paths count build/probe/chain identically — key
/// identity coincides, so the counters are mode-invariant.
Status LocalJoin(const PartView& left, const PartView& right,
                 const std::vector<int>& lk, const std::vector<int>& rk,
                 JoinType type, const Schema& right_schema, bool columnar,
                 KeyedMode mode, PartSink sink, uint64_t* out_bytes,
                 uint64_t* col_bytes, uint64_t* conversions,
                 key_codec::KeyStats* ks) {
  *out_bytes = 0;
  *col_bytes = 0;
  *conversions = 0;
  const size_t right_width = right_schema.size();
  auto emit = [&](Row&& row) {
    *out_bytes += RowDeepSize(row);
    sink.Append(std::move(row));
  };
  auto emit_matches = [&](const Row& l, const std::vector<const Row*>& rows) {
    for (const Row* r : rows) emit(ConcatRows(l, *r));
  };
  auto emit_miss = [&](const Row& l) {
    if (type == JoinType::kLeftOuter) emit(NullPadRight(l, right_width));
  };
  if (mode != KeyedMode::kLegacy && columnar) {
    return WithKeyIndex(mode, [&](auto tag) -> Status {
      typename decltype(tag)::type built(right.size());
      column::PartitionBlock packed;
      const column::PartitionBlock* rb = right.block;
      if (rb == nullptr) {
        packed = column::PartitionBlock::FromRows(right_schema, *right.rows);
        *col_bytes += packed.ByteFootprint();
        rb = &packed;
      }
      // Dense per-key chains of row offsets into the block — the flat table
      // references (block, row-offset) pairs, never materialized Rows.
      std::vector<std::vector<uint32_t>> chains;
      chains.reserve(right.size());
      key_codec::KeyEncoder enc;
      const size_t rn = rb->NumRows();
      for (size_t i = 0; i < rn; ++i) {
        bool null_key = false;
        for (int c : rk) {
          if (rb->IsNull(i, static_cast<size_t>(c))) {
            null_key = true;
            break;
          }
        }
        if (null_key) continue;
        enc.Begin();
        for (int c : rk) {
          TRANCE_RETURN_NOT_OK(enc.Append(rb->FieldAt(i, static_cast<size_t>(c))));
        }
        auto [gi, inserted] = built.FindOrInsert(enc.Finish());
        if (inserted) {
          chains.emplace_back();
          ks->build_rows++;
        } else {
          ks->probe_hits++;
        }
        chains[gi].push_back(static_cast<uint32_t>(i));
        if (chains[gi].size() > ks->max_chain) ks->max_chain = chains[gi].size();
      }
      const size_t ln = left.size();
      for (size_t j = 0; j < ln; ++j) {
        bool matched = false;
        if (!left.HasNullKeyAt(j, lk)) {
          TRANCE_ASSIGN_OR_RETURN(key_codec::EncodedKeyView k,
                                  left.EncodeKey(&enc, j, lk));
          uint32_t gi = built.Find(k);
          if (gi != decltype(built)::kNotFound) {
            matched = true;
            ks->probe_hits++;
            Row l = left.MaterializeRow(j);
            for (uint32_t ri : chains[gi]) {
              emit(ConcatRows(l, rb->RowAt(ri)));
            }
          }
        }
        if (!matched && type == JoinType::kLeftOuter) {
          emit(NullPadRight(left.MaterializeRow(j), right_width));
        }
      }
      ks->encode_bytes += enc.bytes_encoded();
      NoteTableStats(built, ks);
      return Status::OK();
    });
  }
  if (mode != KeyedMode::kLegacy) {
    // Encoded row path (columnar off, so both views are row-resident).
    const std::vector<Row>& lrows = *left.rows;
    const std::vector<Row>& rrows = *right.rows;
    return WithKeyIndex(mode, [&](auto tag) -> Status {
      typename decltype(tag)::type built(rrows.size());
      // Dense per-key row chains, indexed by the table's insertion-order
      // index (the map-based path stored them in the node values).
      std::vector<std::vector<const Row*>> chains;
      chains.reserve(rrows.size());
      key_codec::KeyEncoder enc;
      for (const auto& r : rrows) {
        if (HasNullKey(r, rk)) continue;
        TRANCE_ASSIGN_OR_RETURN(key_codec::EncodedKeyView k, enc.Encode(r, rk));
        auto [gi, inserted] = built.FindOrInsert(k);
        if (inserted) {
          chains.emplace_back();
          ks->build_rows++;
        } else {
          ks->probe_hits++;
        }
        chains[gi].push_back(&r);
        if (chains[gi].size() > ks->max_chain) ks->max_chain = chains[gi].size();
      }
      for (const auto& l : lrows) {
        bool matched = false;
        if (!HasNullKey(l, lk)) {
          TRANCE_ASSIGN_OR_RETURN(key_codec::EncodedKeyView k,
                                  enc.Encode(l, lk));
          uint32_t gi = built.Find(k);
          if (gi != decltype(built)::kNotFound) {
            matched = true;
            ks->probe_hits++;
            emit_matches(l, chains[gi]);
          }
        }
        if (!matched) emit_miss(l);
      }
      ks->encode_bytes += enc.bytes_encoded();
      NoteTableStats(built, ks);
      return Status::OK();
    });
  }
  // Legacy containers retain Row pointers, so block-resident inputs
  // materialize whole row vectors here (each row counted).
  std::vector<Row> lmat, rmat;
  const std::vector<Row>* lrows = left.rows;
  const std::vector<Row>* rrows = right.rows;
  if (left.block_backed()) {
    lmat = left.block->ToRows();
    *conversions += lmat.size();
    lrows = &lmat;
  }
  if (right.block_backed()) {
    rmat = right.block->ToRows();
    *conversions += rmat.size();
    rrows = &rmat;
  }
  std::unordered_map<KeyView, std::vector<const Row*>, KeyViewHash, KeyViewEq>
      built;
  built.reserve(rrows->size());
  for (const auto& r : *rrows) {
    if (HasNullKey(r, rk)) continue;
    auto [it, inserted] = built.try_emplace(ExtractKey(r, rk));
    if (inserted) {
      ks->build_rows++;
    } else {
      ks->probe_hits++;
    }
    it->second.push_back(&r);
    if (it->second.size() > ks->max_chain) ks->max_chain = it->second.size();
  }
  for (const auto& l : *lrows) {
    bool matched = false;
    if (!HasNullKey(l, lk)) {
      auto it = built.find(ExtractKey(l, lk));
      if (it != built.end()) {
        matched = true;
        ks->probe_hits++;
        emit_matches(l, it->second);
      }
    }
    if (!matched) emit_miss(l);
  }
  return Status::OK();
}

// Stage barrier shared with the fused-stage runner.
using detail::FinishStage;

}  // namespace

StatusOr<Dataset> Source(Cluster* cluster, Schema schema,
                         std::vector<Row> rows, const std::string& name) {
  const size_t n = static_cast<size_t>(cluster->num_partitions());
  Dataset ds;
  ds.schema = std::move(schema);
  ds.partitioning = Partitioning::None();
  StageStats stage;
  stage.op = "source(" + name + ")";
  if (cluster->columnar_enabled()) {
    // Columnar sources land block-resident: the driver appends each row to
    // its round-robin partition block, so downstream stages start from
    // columns without a packing step. Driver-sequential, so the footprint
    // charge is thread-count-invariant.
    ds.store.InitBlocks(n, ds.schema);
    for (size_t i = 0; i < rows.size(); ++i) {
      ds.store.block(i % n).AppendRow(rows[i]);
    }
    for (size_t p = 0; p < n; ++p) {
      stage.columnar_bytes += ds.store.block(p).ByteFootprint();
    }
  } else {
    ds.store.InitRows(n);
    for (size_t i = 0; i < rows.size(); ++i) {
      ds.store.rows(i % n).push_back(std::move(rows[i]));
    }
  }
  // Inputs are pre-cached ("runtime starts after caching all inputs"): they
  // are not charged against the per-partition memory cap.
  stage.rows_in = ds.NumRows();
  stage.rows_out = ds.NumRows();
  cluster->RecordStage(std::move(stage));
  return ds;
}

StatusOr<Dataset> SourcePartitioned(Cluster* cluster, Schema schema,
                                    std::vector<Row> rows,
                                    std::vector<int> key_cols,
                                    const std::string& name) {
  const size_t n = static_cast<size_t>(cluster->num_partitions());
  Dataset ds;
  ds.schema = std::move(schema);
  StageStats stage;
  stage.op = "source_partitioned(" + name + ")";
  if (cluster->columnar_enabled()) {
    ds.store.InitBlocks(n, ds.schema);
    for (const auto& row : rows) {
      int target = cluster->PartitionOf(key_codec::KeyHashOn(row, key_cols));
      ds.store.block(static_cast<size_t>(target)).AppendRow(row);
    }
    for (size_t p = 0; p < n; ++p) {
      stage.columnar_bytes += ds.store.block(p).ByteFootprint();
    }
  } else {
    ds.store.InitRows(n);
    for (auto& row : rows) {
      int target = cluster->PartitionOf(key_codec::KeyHashOn(row, key_cols));
      ds.store.rows(static_cast<size_t>(target)).push_back(std::move(row));
    }
  }
  ds.partitioning = Partitioning::Hash(std::move(key_cols));
  stage.rows_in = ds.NumRows();
  stage.rows_out = ds.NumRows();
  cluster->RecordStage(std::move(stage));
  return ds;
}

StatusOr<Dataset> MapRows(Cluster* cluster, const Dataset& in,
                          Schema out_schema, const MapFn& fn,
                          const std::string& name, bool preserves_partitioning,
                          Partitioning out_partitioning) {
  return RunStagePipeline(
      cluster, in, std::move(out_schema), {RowTransform::Map(name, fn)},
      preserves_partitioning ? in.partitioning : std::move(out_partitioning),
      name);
}

StatusOr<Dataset> FilterRows(Cluster* cluster, const Dataset& in,
                             const PredFn& pred, const std::string& name) {
  return RunStagePipeline(cluster, in, in.schema,
                          {RowTransform::Filter(name, pred)}, in.partitioning,
                          name);
}

StatusOr<Dataset> FlatMapRows(Cluster* cluster, const Dataset& in,
                              Schema out_schema, const FlatMapFn& fn,
                              const std::string& name) {
  return RunStagePipeline(cluster, in, std::move(out_schema),
                          {RowTransform::FlatMap(name, fn)},
                          Partitioning::None(), name);
}

StatusOr<Dataset> Repartition(Cluster* cluster, const Dataset& in,
                              std::vector<int> key_cols,
                              const std::string& name) {
  StageStats stage;
  stage.op = name;
  stage.rows_in = in.NumRows();
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts sp,
                          ShuffleOrReuse(cluster, in, key_cols, &stage));
  Dataset out;
  out.schema = in.schema;
  // The shuffled partitions ARE the output — blocks stay resident.
  out.store = std::move(sp.store);
  out.partitioning = Partitioning::Hash(std::move(key_cols));
  WorkMeter work(out.NumPartitions());
  for (size_t p = 0; p < out.NumPartitions(); ++p) {
    work.Add(p, sp.bytes[p]);
  }
  work.Finalize(&stage);
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(sp.bytes)));
  return out;
}

StatusOr<Dataset> HashJoin(Cluster* cluster, const Dataset& left,
                           const Dataset& right, std::vector<int> left_keys,
                           std::vector<int> right_keys, JoinType type,
                           const std::string& name) {
  StageStats stage;
  stage.op = name;
  stage.rows_in = left.NumRows() + right.NumRows();
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts lsp,
                          ShuffleOrReuse(cluster, left, left_keys, &stage));
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts rsp,
                          ShuffleOrReuse(cluster, right, right_keys, &stage));

  Dataset out;
  out.schema = JoinSchema(left.schema, right.schema);
  const size_t nparts = lsp.store.NumPartitions();
  const KeyedMode mode =
      KeyedModeFor(cluster, KeyColsEncodable(left.schema, left_keys) &&
                                KeyColsEncodable(right.schema, right_keys));
  const bool columnar = cluster->columnar_enabled();
  // The output keeps the residence the local joins built it in: encoded
  // columnar joins append matches into resident blocks (footprint charged
  // per partition slot); the legacy path stays row-resident.
  const bool block_out = columnar && mode != KeyedMode::kLegacy;
  if (block_out) {
    out.store.InitBlocks(nparts, out.schema);
  } else {
    out.store.InitRows(nparts);
  }
  WorkMeter work(nparts);
  KeyStatsMeter kmeter(nparts);
  std::vector<uint64_t> out_bytes(nparts, 0);
  std::vector<uint64_t> col_bytes(nparts, 0);
  std::vector<uint64_t> conv(nparts, 0);
  std::vector<Status> errs(nparts);
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      name, nparts, &stage,
      [&](size_t p) {
        errs[p] = LocalJoin(PartView::Of(lsp.store, p),
                            PartView::Of(rsp.store, p), left_keys, right_keys,
                            type, right.schema, columnar, mode,
                            PartSink{&out.store, p}, &out_bytes[p],
                            &col_bytes[p], &conv[p], &kmeter.slot(p));
        if (block_out) col_bytes[p] += out.store.block(p).ByteFootprint();
        work.Add(p, lsp.bytes[p] + rsp.bytes[p] + out_bytes[p]);
      },
      [&](size_t p) {
        out.store.Clear(p);
        out_bytes[p] = 0;
        col_bytes[p] = 0;
        conv[p] = 0;
        work.Reset(p);
        kmeter.Reset(p);
        errs[p] = Status::OK();
      }));
  TRANCE_RETURN_NOT_OK(FirstError(errs));
  work.Finalize(&stage);
  kmeter.Finalize(&stage);
  for (uint64_t b : col_bytes) stage.columnar_bytes += b;
  for (uint64_t r : conv) stage.column_to_row_conversions += r;
  out.partitioning = Partitioning::Hash(std::move(left_keys));
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(out_bytes)));
  return out;
}

StatusOr<Dataset> BroadcastJoin(Cluster* cluster, const Dataset& left,
                                const Dataset& right,
                                std::vector<int> left_keys,
                                std::vector<int> right_keys, JoinType type,
                                const std::string& name) {
  StageStats stage;
  stage.op = name;
  stage.rows_in = left.NumRows() + right.NumRows();
  // The broadcast replicates the right side to every partition. One parallel
  // sizing pass covers the movement accounting and the send histogram.
  // Collect is a true row boundary (replication leaves the partition store).
  std::vector<Row> bcast = right.Collect(cluster->num_threads());
  std::vector<uint64_t> right_bytes =
      right.PartitionBytes(cluster->num_threads());
  uint64_t bcast_bytes = 0;
  for (uint64_t b : right_bytes) bcast_bytes += b;
  const uint64_t n = static_cast<uint64_t>(cluster->num_partitions());
  stage.shuffle_bytes += bcast_bytes * n;
  stage.max_partition_recv_bytes =
      std::max(stage.max_partition_recv_bytes, bcast_bytes);
  stage.movement = DataMovement::kBroadcast;
  cluster->metrics()
      .GetCounter("trance_broadcast_bytes_total",
                  "bytes replicated to every partition by broadcasts")
      ->Add(bcast_bytes * n);
  {
    obs::EventLog& log = obs::GlobalEventLog();
    if (log.enabled()) {
      obs::Event(&log, "shuffle")
          .U64("job", cluster->current_job_id())
          .Str("op", name)
          .Str("movement", "broadcast")
          .U64("rows_moved", static_cast<uint64_t>(bcast.size()) * n)
          .U64("bytes", bcast_bytes * n)
          .U64("partitions", n)
          .Emit();
    }
  }
  // Every partition receives the full broadcast; each source partition sends
  // its resident right-side rows to all n partitions.
  AccumulateHistogram(&stage.partition_recv_bytes,
                      std::vector<uint64_t>(static_cast<size_t>(n),
                                            bcast_bytes));
  {
    std::vector<uint64_t> send(right.NumPartitions(), 0);
    for (size_t p = 0; p < right.NumPartitions(); ++p) {
      send[p] = right_bytes[p] * n;
    }
    AccumulateHistogram(&stage.partition_send_bytes, send);
  }

  Dataset out;
  out.schema = JoinSchema(left.schema, right.schema);
  const size_t nparts = left.NumPartitions();
  const KeyedMode mode =
      KeyedModeFor(cluster, KeyColsEncodable(left.schema, left_keys) &&
                                KeyColsEncodable(right.schema, right_keys));
  const bool columnar = cluster->columnar_enabled();
  const bool block_out = columnar && mode != KeyedMode::kLegacy;
  if (block_out) {
    out.store.InitBlocks(nparts, out.schema);
  } else {
    out.store.InitRows(nparts);
  }
  std::vector<uint64_t> left_bytes =
      left.PartitionBytes(cluster->num_threads());
  WorkMeter work(nparts);
  KeyStatsMeter kmeter(nparts);
  std::vector<uint64_t> out_bytes(nparts, 0);
  std::vector<uint64_t> col_bytes(nparts, 0);
  std::vector<uint64_t> conv(nparts, 0);
  std::vector<Status> errs(nparts);
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      name, nparts, &stage,
      [&](size_t p) {
        // Columnar mode packs the broadcast row list into a typed block per
        // receiving partition inside LocalJoin (each pack is counted).
        errs[p] = LocalJoin(PartView::Of(left.store, p),
                            PartView::OfRowList(bcast), left_keys, right_keys,
                            type, right.schema, columnar, mode,
                            PartSink{&out.store, p}, &out_bytes[p],
                            &col_bytes[p], &conv[p], &kmeter.slot(p));
        if (block_out) col_bytes[p] += out.store.block(p).ByteFootprint();
        work.Add(p, left_bytes[p] + bcast_bytes + out_bytes[p]);
      },
      [&](size_t p) {
        out.store.Clear(p);
        out_bytes[p] = 0;
        col_bytes[p] = 0;
        conv[p] = 0;
        work.Reset(p);
        kmeter.Reset(p);
        errs[p] = Status::OK();
      }));
  TRANCE_RETURN_NOT_OK(FirstError(errs));
  work.Finalize(&stage);
  kmeter.Finalize(&stage);
  for (uint64_t b : col_bytes) stage.columnar_bytes += b;
  for (uint64_t r : conv) stage.column_to_row_conversions += r;
  // Left rows did not move: the left guarantee (if any) is preserved.
  out.partitioning = left.partitioning;
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(out_bytes)));
  return out;
}

StatusOr<Dataset> NestGroup(Cluster* cluster, const Dataset& in,
                            std::vector<int> key_cols,
                            std::vector<int> value_cols,
                            const std::string& bag_col_name,
                            const std::string& name,
                            std::vector<int> indicator_cols) {
  // Fallback miss rule: all non-bag value columns NULL.
  std::vector<int> miss_cols = indicator_cols;
  if (miss_cols.empty()) {
    for (int c : value_cols) {
      const auto& t = in.schema.col(static_cast<size_t>(c)).type;
      if (t == nullptr || !t->is_bag()) miss_cols.push_back(c);
    }
  }
  StageStats stage;
  stage.op = name;
  stage.rows_in = in.NumRows();
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts sp,
                          ShuffleOrReuse(cluster, in, key_cols, &stage));

  Schema out_schema;
  for (int c : key_cols) {
    out_schema.Append(in.schema.col(static_cast<size_t>(c)));
  }
  std::vector<nrc::Field> bag_fields;
  for (int c : value_cols) {
    const auto& col = in.schema.col(static_cast<size_t>(c));
    bag_fields.push_back({col.name, col.type});
  }
  out_schema.Append(
      {bag_col_name, nrc::Type::Bag(nrc::Type::Tuple(std::move(bag_fields)))});

  Dataset out;
  out.schema = out_schema;
  const size_t nparts = sp.store.NumPartitions();
  const KeyedMode mode =
      KeyedModeFor(cluster, KeyColsEncodable(in.schema, key_cols));
  const bool block_out =
      cluster->columnar_enabled() && mode != KeyedMode::kLegacy;
  if (block_out) {
    out.store.InitBlocks(nparts, out_schema);
  } else {
    out.store.InitRows(nparts);
  }
  WorkMeter work(nparts);
  std::vector<uint64_t> out_bytes(nparts, 0);
  std::vector<uint64_t> col_bytes(nparts, 0);
  std::vector<uint64_t> conv(nparts, 0);
  KeyStatsMeter kmeter(nparts);
  std::vector<Status> errs(nparts);
  auto nest_task = [&](size_t p) {
    // Group storage is mode-independent: (key fields of the first row that
    // created the group, members), in first-seen order. The two key paths
    // only differ in how a row finds its group index.
    PartView v = PartView::Of(sp.store, p);
    std::vector<std::pair<std::vector<Field>, std::vector<Row>>> groups;
    std::vector<uint64_t> group_rows;  // rows mapped per group (chain stat)
    key_codec::KeyStats& ks = kmeter.slot(p);
    // Members project straight from the view (arena reads on block-resident
    // inputs); only the inner Row of a non-miss member materializes.
    auto add_row = [&](size_t gi, size_t i) {
      if (++group_rows[gi] > ks.max_chain) ks.max_chain = group_rows[gi];
      // NULL-to-empty-bag cast: a miss row marks a key with no inner
      // elements (outer join/unnest miss); it creates the group only.
      bool miss = !miss_cols.empty();
      for (int c : miss_cols) {
        if (!v.IsNullAt(i, static_cast<size_t>(c))) {
          miss = false;
          break;
        }
      }
      if (!miss) {
        Row inner;
        inner.fields.reserve(value_cols.size());
        for (int c : value_cols) {
          inner.fields.push_back(v.FieldAt(i, static_cast<size_t>(c)));
        }
        groups[gi].second.push_back(std::move(inner));
      }
    };
    const size_t rows = v.size();
    if (mode != KeyedMode::kLegacy) {
      bool failed = WithKeyIndex(mode, [&](auto tag) -> bool {
        typename decltype(tag)::type index;
        key_codec::KeyEncoder enc;
        for (size_t i = 0; i < rows; ++i) {
          auto kv = v.EncodeKey(&enc, i, key_cols);
          if (!kv.ok()) {
            errs[p] = kv.status();
            return true;
          }
          auto [gi, inserted] = index.FindOrInsert(kv.value());
          if (inserted) {
            groups.emplace_back(v.KeyFields(i, key_cols), std::vector<Row>{});
            group_rows.push_back(0);
            ks.build_rows++;
          } else {
            ks.probe_hits++;
          }
          add_row(gi, i);
        }
        ks.encode_bytes += enc.bytes_encoded();
        NoteTableStats(index, &ks);
        return false;
      });
      if (failed) return;
    } else {
      // Legacy containers key on materialized rows; a block-resident input
      // materializes each row here (counted).
      std::unordered_map<KeyView, size_t, KeyViewHash, KeyViewEq> index;
      for (size_t i = 0; i < rows; ++i) {
        Row row = v.MaterializeRow(i);
        if (v.block_backed()) ++conv[p];
        auto [it, inserted] =
            index.try_emplace(ExtractKey(row, key_cols), groups.size());
        size_t gi = it->second;
        if (inserted) {
          groups.emplace_back(it->first.fields, std::vector<Row>{});
          group_rows.push_back(0);
          ks.build_rows++;
        } else {
          ks.probe_hits++;
        }
        add_row(gi, i);
      }
    }
    PartSink sink{&out.store, p};
    for (auto& [key_fields, members] : groups) {
      Row row;
      row.fields = std::move(key_fields);
      row.fields.push_back(Field::Bag(std::move(members)));
      out_bytes[p] += RowDeepSize(row);
      sink.Append(std::move(row));
    }
    if (block_out) col_bytes[p] += out.store.block(p).ByteFootprint();
    work.Add(p, sp.bytes[p] + out_bytes[p]);
  };
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      name, nparts, &stage, nest_task, [&](size_t p) {
        out.store.Clear(p);
        out_bytes[p] = 0;
        col_bytes[p] = 0;
        conv[p] = 0;
        work.Reset(p);
        kmeter.Reset(p);
        errs[p] = Status::OK();
      }));
  TRANCE_RETURN_NOT_OK(FirstError(errs));
  work.Finalize(&stage);
  kmeter.Finalize(&stage);
  for (uint64_t b : col_bytes) stage.columnar_bytes += b;
  for (uint64_t r : conv) stage.column_to_row_conversions += r;
  out.partitioning = Partitioning::Hash(
      [&] {
        std::vector<int> cols;
        for (int i = 0; i < static_cast<int>(key_cols.size()); ++i) {
          cols.push_back(i);
        }
        return cols;
      }());
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(out_bytes)));
  return out;
}

StatusOr<Dataset> AddIndexColumn(Cluster* cluster, const Dataset& in,
                                 const std::string& id_col_name,
                                 const std::string& name) {
  Schema out_schema = in.schema;
  out_schema.Append({id_col_name, nrc::Type::Int()});
  return RunStagePipeline(cluster, in, std::move(out_schema),
                          {RowTransform::AddIndex(name)}, in.partitioning,
                          name);
}

StatusOr<Dataset> SumAggregate(Cluster* cluster, const Dataset& in,
                               std::vector<int> key_cols,
                               std::vector<int> value_cols,
                               bool map_side_combine,
                               const std::string& name) {
  StageStats stage;
  stage.op = name;
  stage.rows_in = in.NumRows();

  Schema out_schema;
  for (int c : key_cols) {
    out_schema.Append(in.schema.col(static_cast<size_t>(c)));
  }
  std::vector<bool> is_int;
  for (int c : value_cols) {
    const auto& col = in.schema.col(static_cast<size_t>(c));
    out_schema.Append(col);
    is_int.push_back(col.type->is_scalar() &&
                     col.type->scalar_kind() == nrc::ScalarKind::kInt);
  }

  std::vector<int> partial_keys;
  for (int i = 0; i < static_cast<int>(key_cols.size()); ++i) {
    partial_keys.push_back(i);
  }
  const KeyedMode mode =
      KeyedModeFor(cluster, KeyColsEncodable(in.schema, key_cols));
  const bool block_out =
      cluster->columnar_enabled() && mode != KeyedMode::kLegacy;

  // Local aggregation of one partition view into (key, sums) rows appended
  // to `sink`. A row whose value fields are all NULL marks an outer miss: it
  // creates the group but contributes nothing; groups with no contribution
  // emit NULL values. Reads only its arguments and the (const) captured
  // column metadata, so the partition-parallel loops below may share it.
  // Group storage and emission are mode-independent (key fields of the first
  // row that created the group, in first-seen order); only the group lookup
  // differs — the encoded path keys straight off the view (arena reads on
  // blocks), the legacy path materializes each row (counted into *conv on
  // block-resident inputs).
  struct Acc {
    std::vector<double> sums;
    bool seen = false;
  };
  auto aggregate = [&](const PartView& v, bool rows_are_partial,
                       key_codec::KeyStats* ks, PartSink sink,
                       uint64_t* emitted_bytes, uint64_t* conv) -> Status {
    std::vector<std::pair<std::vector<Field>, Acc>> groups;
    std::vector<uint64_t> group_rows;
    const std::vector<int>& cols = rows_are_partial ? partial_keys : key_cols;
    auto value_col_of = [&](size_t vi) {
      return rows_are_partial ? key_cols.size() + vi
                              : static_cast<size_t>(value_cols[vi]);
    };
    auto fold = [&](size_t gi, size_t i) {
      if (++group_rows[gi] > ks->max_chain) ks->max_chain = group_rows[gi];
      Acc& acc = groups[gi].second;
      bool all_null = !value_cols.empty();
      for (size_t vi = 0; vi < value_cols.size(); ++vi) {
        if (!v.IsNullAt(i, value_col_of(vi))) all_null = false;
      }
      if (all_null) return;  // miss marker: group exists, no contribution
      acc.seen = true;
      for (size_t vi = 0; vi < value_cols.size(); ++vi) {
        Field f = v.FieldAt(i, value_col_of(vi));
        if (!f.is_null()) acc.sums[vi] += f.AsNumber();  // lone NULL casts to 0
      }
    };
    auto new_group = [&](std::vector<Field> key_fields) {
      Acc acc;
      acc.sums.assign(value_cols.size(), 0.0);
      groups.emplace_back(std::move(key_fields), std::move(acc));
      group_rows.push_back(0);
      ks->build_rows++;
    };
    const size_t rows = v.size();
    if (mode != KeyedMode::kLegacy) {
      TRANCE_RETURN_NOT_OK(WithKeyIndex(mode, [&](auto tag) -> Status {
        typename decltype(tag)::type index;
        key_codec::KeyEncoder enc;
        for (size_t i = 0; i < rows; ++i) {
          TRANCE_ASSIGN_OR_RETURN(key_codec::EncodedKeyView k,
                                  v.EncodeKey(&enc, i, cols));
          auto [gi, inserted] = index.FindOrInsert(k);
          if (inserted) {
            new_group(v.KeyFields(i, cols));
          } else {
            ks->probe_hits++;
          }
          fold(gi, i);
        }
        ks->encode_bytes += enc.bytes_encoded();
        NoteTableStats(index, ks);
        return Status::OK();
      }));
    } else {
      auto key_fields_of = [&](const Row& row) {
        return rows_are_partial
                   ? std::vector<Field>{row.fields.begin(),
                                        row.fields.begin() +
                                            static_cast<long>(key_cols.size())}
                   : ExtractKey(row, key_cols).fields;
      };
      std::unordered_map<KeyView, size_t, KeyViewHash, KeyViewEq> index;
      for (size_t i = 0; i < rows; ++i) {
        Row row = v.MaterializeRow(i);
        if (v.block_backed()) ++*conv;
        auto [it, inserted] =
            index.try_emplace(KeyView{key_fields_of(row)}, groups.size());
        size_t gi = it->second;
        if (inserted) {
          new_group(it->first.fields);
        } else {
          ks->probe_hits++;
        }
        fold(gi, i);
      }
    }
    for (auto& [key_fields, acc] : groups) {
      Row row;
      row.fields = std::move(key_fields);
      for (size_t i = 0; i < acc.sums.size(); ++i) {
        if (!acc.seen) {
          row.fields.push_back(Field::Null());
        } else {
          row.fields.push_back(
              is_int[i] ? Field::Int(static_cast<int64_t>(acc.sums[i]))
                        : Field::Real(acc.sums[i]));
        }
      }
      *emitted_bytes += RowDeepSize(row);
      sink.Append(std::move(row));
    }
    return Status::OK();
  };

  const size_t in_parts = in.NumPartitions();
  WorkMeter work(in_parts);
  Dataset partial;
  partial.schema = out_schema;
  if (block_out) {
    partial.store.InitBlocks(in_parts, out_schema);
  } else {
    partial.store.InitRows(in_parts);
  }
  std::vector<uint64_t> pre_col_bytes(in_parts, 0);
  std::vector<uint64_t> pre_conv(in_parts, 0);
  // The aggregate runs up to three task loops over the same work meter, so
  // each loop accumulates into its own local vector (folded into the meter
  // after its barrier): a recovery reset may then zero the current loop's
  // slot without destroying an earlier loop's contribution.
  {
    std::vector<uint64_t> local_work(in_parts, 0);
    if (map_side_combine) {
      std::vector<uint64_t> in_bytes =
          in.PartitionBytes(cluster->num_threads());
      KeyStatsMeter kmeter(in_parts);
      std::vector<Status> errs(in_parts);
      TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
          name + ".combine", in_parts, &stage,
          [&](size_t p) {
            uint64_t partial_bytes = 0;
            errs[p] = aggregate(PartView::Of(in.store, p), false,
                                &kmeter.slot(p), PartSink{&partial.store, p},
                                &partial_bytes, &pre_conv[p]);
            if (block_out) {
              pre_col_bytes[p] += partial.store.block(p).ByteFootprint();
            }
            local_work[p] = in_bytes[p] + partial_bytes;
          },
          [&](size_t p) {
            partial.store.Clear(p);
            local_work[p] = 0;
            pre_col_bytes[p] = 0;
            pre_conv[p] = 0;
            kmeter.Reset(p);
            errs[p] = Status::OK();
          }));
      TRANCE_RETURN_NOT_OK(FirstError(errs));
      kmeter.Finalize(&stage);
    } else {
      // Reshape rows to (key, value) layout without combining. Cells project
      // straight from the view; no keyed container, so no conversion.
      TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
          name + ".reshape", in_parts, &stage,
          [&](size_t p) {
            PartView v = PartView::Of(in.store, p);
            PartSink sink{&partial.store, p};
            uint64_t in_bytes = 0;
            const size_t rows = v.size();
            for (size_t i = 0; i < rows; ++i) {
              in_bytes += v.RowBytes(i);
              Row r;
              r.fields.reserve(key_cols.size() + value_cols.size());
              for (int c : key_cols) {
                r.fields.push_back(v.FieldAt(i, static_cast<size_t>(c)));
              }
              for (size_t vi = 0; vi < value_cols.size(); ++vi) {
                // NULLs pass through so the final aggregation pass can apply
                // the miss-marker rule uniformly.
                r.fields.push_back(
                    v.FieldAt(i, static_cast<size_t>(value_cols[vi])));
              }
              sink.Append(std::move(r));
            }
            if (block_out) {
              pre_col_bytes[p] += partial.store.block(p).ByteFootprint();
            }
            local_work[p] = in_bytes;
          },
          [&](size_t p) {
            partial.store.Clear(p);
            local_work[p] = 0;
            pre_col_bytes[p] = 0;
          }));
    }
    for (size_t p = 0; p < in_parts; ++p) work.Add(p, local_work[p]);
  }
  for (uint64_t b : pre_col_bytes) stage.columnar_bytes += b;
  for (uint64_t r : pre_conv) stage.column_to_row_conversions += r;
  partial.partitioning = in.partitioning.IsHashOn(key_cols)
                             ? Partitioning::Hash(partial_keys)
                             : Partitioning::None();

  TRANCE_ASSIGN_OR_RETURN(ShuffledParts sp,
                          ShuffleOrReuse(cluster, partial, partial_keys,
                                         &stage));

  Dataset out;
  out.schema = out_schema;
  const size_t nparts = sp.store.NumPartitions();
  if (block_out) {
    out.store.InitBlocks(nparts, out_schema);
  } else {
    out.store.InitRows(nparts);
  }
  std::vector<uint64_t> out_bytes(nparts, 0);
  std::vector<uint64_t> fin_col_bytes(nparts, 0);
  std::vector<uint64_t> fin_conv(nparts, 0);
  {
    std::vector<uint64_t> local_work(nparts, 0);
    KeyStatsMeter kmeter(nparts);
    std::vector<Status> errs(nparts);
    TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
        name, nparts, &stage,
        [&](size_t p) {
          errs[p] = aggregate(PartView::Of(sp.store, p), true,
                              &kmeter.slot(p), PartSink{&out.store, p},
                              &out_bytes[p], &fin_conv[p]);
          if (block_out) {
            fin_col_bytes[p] += out.store.block(p).ByteFootprint();
          }
          local_work[p] = sp.bytes[p] + out_bytes[p];
        },
        [&](size_t p) {
          out.store.Clear(p);
          out_bytes[p] = 0;
          fin_col_bytes[p] = 0;
          fin_conv[p] = 0;
          local_work[p] = 0;
          kmeter.Reset(p);
          errs[p] = Status::OK();
        }));
    TRANCE_RETURN_NOT_OK(FirstError(errs));
    kmeter.Finalize(&stage);
    for (size_t p = 0; p < nparts; ++p) work.Add(p, local_work[p]);
  }
  work.Finalize(&stage);
  for (uint64_t b : fin_col_bytes) stage.columnar_bytes += b;
  for (uint64_t r : fin_conv) stage.column_to_row_conversions += r;
  out.partitioning = Partitioning::Hash(partial_keys);
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(out_bytes)));
  return out;
}

StatusOr<Schema> UnnestedSchema(const Schema& in, int bag_col,
                                const std::string& id_col_name) {
  const auto& bag_type = in.col(static_cast<size_t>(bag_col)).type;
  if (!bag_type->is_bag()) {
    return Status::TypeError("unnest on non-bag column " +
                             in.col(static_cast<size_t>(bag_col)).name);
  }
  TRANCE_ASSIGN_OR_RETURN(Schema inner, Schema::FromBagType(bag_type));
  Schema out;
  if (!id_col_name.empty()) {
    out.Append({id_col_name, nrc::Type::Int()});
  }
  for (size_t i = 0; i < in.size(); ++i) {
    if (static_cast<int>(i) == bag_col) continue;
    out.Append(in.col(i));
  }
  for (const auto& c : inner.columns()) {
    std::string name = c.name;
    while (out.IndexOf(name) >= 0) name += "__u";
    out.Append({name, c.type});
  }
  return out;
}

StatusOr<Dataset> Unnest(Cluster* cluster, const Dataset& in, int bag_col,
                         const std::string& name) {
  TRANCE_ASSIGN_OR_RETURN(Schema out_schema,
                          UnnestedSchema(in.schema, bag_col, ""));
  return RunStagePipeline(cluster, in, std::move(out_schema),
                          {RowTransform::Unnest(name, bag_col)},
                          Partitioning::None(), name);
}

StatusOr<Dataset> OuterUnnest(Cluster* cluster, const Dataset& in, int bag_col,
                              const std::string& id_col_name,
                              const std::string& name) {
  TRANCE_ASSIGN_OR_RETURN(Schema out_schema,
                          UnnestedSchema(in.schema, bag_col, id_col_name));
  const bool with_id = !id_col_name.empty();
  size_t inner_width = out_schema.size() - (with_id ? 1 : 0) -
                       (in.schema.size() - 1);
  return RunStagePipeline(
      cluster, in, std::move(out_schema),
      {RowTransform::OuterUnnest(name, bag_col, with_id, inner_width)},
      Partitioning::None(), name);
}

StatusOr<Dataset> UnionAll(Cluster* cluster, const Dataset& a,
                           const Dataset& b, const std::string& name) {
  if (a.schema.size() != b.schema.size()) {
    return Status::TypeError("union of schemas with different widths");
  }
  Dataset out;
  out.schema = a.schema;
  const size_t nparts = std::max(a.NumPartitions(), b.NumPartitions());
  const bool columnar = cluster->columnar_enabled();
  if (columnar) {
    out.store.InitBlocks(nparts, a.schema);
  } else {
    out.store.InitRows(nparts);
  }
  StageStats stage;
  stage.op = name;
  stage.rows_in = a.NumRows() + b.NumRows();
  std::vector<uint64_t> col_bytes(nparts, 0);
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      name, nparts, &stage,
      [&](size_t p) {
        if (columnar) {
          // Either input may be row-resident (legacy producer handoff);
          // AppendRowFrom/AppendRow of identical values build identical
          // footprints, so the union's charge is input-residence-invariant.
          column::PartitionBlock& dst = out.store.block(p);
          auto append_all = [&](const Dataset& d) {
            if (p >= d.NumPartitions()) return;
            PartView v = PartView::Of(d.store, p);
            const size_t rows = v.size();
            for (size_t i = 0; i < rows; ++i) {
              if (v.block_backed()) {
                dst.AppendRowFrom(*v.block, i);
              } else {
                dst.AppendRow((*v.rows)[i]);
              }
            }
          };
          append_all(a);
          append_all(b);
          col_bytes[p] = dst.ByteFootprint();
        } else {
          // Columnar off: every producer is row-resident, so direct row
          // access is safe.
          std::vector<Row>& dst = out.store.rows(p);
          size_t total =
              (p < a.NumPartitions() ? a.store.rows(p).size() : 0) +
              (p < b.NumPartitions() ? b.store.rows(p).size() : 0);
          dst.reserve(total);
          if (p < a.NumPartitions()) {
            dst.insert(dst.end(), a.store.rows(p).begin(),
                       a.store.rows(p).end());
          }
          if (p < b.NumPartitions()) {
            dst.insert(dst.end(), b.store.rows(p).begin(),
                       b.store.rows(p).end());
          }
        }
      },
      [&](size_t p) {
        out.store.Clear(p);
        col_bytes[p] = 0;
      }));
  for (uint64_t bts : col_bytes) stage.columnar_bytes += bts;
  out.partitioning = Partitioning::None();
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name));
  return out;
}

StatusOr<Dataset> Distinct(Cluster* cluster, const Dataset& in,
                           const std::string& name) {
  StageStats stage;
  stage.op = name;
  stage.rows_in = in.NumRows();
  std::vector<int> all_cols;
  for (int i = 0; i < static_cast<int>(in.schema.size()); ++i) {
    all_cols.push_back(i);
  }
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts sp,
                          ShuffleOrReuse(cluster, in, all_cols, &stage));
  Dataset out;
  out.schema = in.schema;
  const size_t nparts = sp.store.NumPartitions();
  // Dedup keys on every column, so any bag-typed column sends the whole
  // operator down the legacy path (bag keys compare structurally there).
  const KeyedMode mode =
      KeyedModeFor(cluster, KeyColsEncodable(in.schema, all_cols));
  const bool block_out =
      cluster->columnar_enabled() && mode != KeyedMode::kLegacy;
  if (block_out) {
    out.store.InitBlocks(nparts, in.schema);
  } else {
    out.store.InitRows(nparts);
  }
  WorkMeter work(nparts);
  std::vector<uint64_t> out_bytes(nparts, 0);
  KeyStatsMeter kmeter(nparts);
  std::vector<uint64_t> col_bytes(nparts, 0);
  std::vector<uint64_t> conv(nparts, 0);
  std::vector<Status> errs(nparts);
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      name, nparts, &stage,
      [&](size_t p) {
        key_codec::KeyStats& ks = kmeter.slot(p);
        PartView v = PartView::Of(sp.store, p);
        PartSink sink{&out.store, p};
        const size_t rows = v.size();
        if (mode != KeyedMode::kLegacy) {
          // The membership test encodes straight off the view (column arenas
          // on block-resident input) and probes without materializing; the
          // first occurrence of each key copies column-to-column into the
          // output block. Per-key duplicate counts (the chain stat) live
          // densely beside the index.
          WithKeyIndex(mode, [&](auto tag) {
            typename decltype(tag)::type seen;
            std::vector<uint64_t> counts;
            key_codec::KeyEncoder enc;
            for (size_t i = 0; i < rows; ++i) {
              auto kv = v.EncodeAllCols(&enc, i);
              if (!kv.ok()) {
                errs[p] = kv.status();
                return;
              }
              auto [gi, inserted] = seen.FindOrInsert(kv.value());
              if (inserted) {
                counts.push_back(1);
                ks.build_rows++;
                if (ks.max_chain < 1) ks.max_chain = 1;
                out_bytes[p] += v.RowBytes(i);
                sink.AppendFrom(v, i);
              } else {
                ks.probe_hits++;
                if (++counts[gi] > ks.max_chain) ks.max_chain = counts[gi];
              }
            }
            ks.encode_bytes += enc.bytes_encoded();
            NoteTableStats(seen, &ks);
          });
          if (!errs[p].ok()) return;
        } else {
          std::unordered_map<KeyView, uint64_t, KeyViewHash, KeyViewEq> seen;
          for (size_t i = 0; i < rows; ++i) {
            Row row = v.MaterializeRow(i);
            if (v.block_backed()) ++conv[p];
            auto [it, inserted] = seen.try_emplace(KeyView{row.fields}, 1);
            if (inserted) {
              ks.build_rows++;
              if (ks.max_chain < 1) ks.max_chain = 1;
              out_bytes[p] += RowDeepSize(row);
              sink.Append(std::move(row));
            } else {
              ks.probe_hits++;
              if (++it->second > ks.max_chain) ks.max_chain = it->second;
            }
          }
        }
        if (block_out) col_bytes[p] += out.store.block(p).ByteFootprint();
        work.Add(p, sp.bytes[p] + out_bytes[p]);
      },
      [&](size_t p) {
        out.store.Clear(p);
        out_bytes[p] = 0;
        col_bytes[p] = 0;
        conv[p] = 0;
        work.Reset(p);
        kmeter.Reset(p);
        errs[p] = Status::OK();
      }));
  TRANCE_RETURN_NOT_OK(FirstError(errs));
  work.Finalize(&stage);
  kmeter.Finalize(&stage);
  for (uint64_t b : col_bytes) stage.columnar_bytes += b;
  for (uint64_t r : conv) stage.column_to_row_conversions += r;
  out.partitioning = Partitioning::Hash(std::move(all_cols));
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(out_bytes)));
  return out;
}

StatusOr<Dataset> CoGroup(Cluster* cluster, const Dataset& left,
                          const Dataset& right, std::vector<int> left_keys,
                          std::vector<int> right_keys,
                          std::vector<int> right_value_cols,
                          const std::string& bag_col_name,
                          const std::string& name) {
  StageStats stage;
  stage.op = name;
  stage.rows_in = left.NumRows() + right.NumRows();
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts lsp,
                          ShuffleOrReuse(cluster, left, left_keys, &stage));
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts rsp,
                          ShuffleOrReuse(cluster, right, right_keys, &stage));

  Schema out_schema = left.schema;
  std::vector<nrc::Field> bag_fields;
  for (int c : right_value_cols) {
    const auto& col = right.schema.col(static_cast<size_t>(c));
    bag_fields.push_back({col.name, col.type});
  }
  out_schema.Append(
      {bag_col_name, nrc::Type::Bag(nrc::Type::Tuple(std::move(bag_fields)))});

  Dataset out;
  out.schema = std::move(out_schema);
  const size_t nparts = lsp.store.NumPartitions();
  const KeyedMode mode =
      KeyedModeFor(cluster, KeyColsEncodable(left.schema, left_keys) &&
                                KeyColsEncodable(right.schema, right_keys));
  const bool block_out =
      cluster->columnar_enabled() && mode != KeyedMode::kLegacy;
  if (block_out) {
    out.store.InitBlocks(nparts, out.schema);
  } else {
    out.store.InitRows(nparts);
  }
  WorkMeter work(nparts);
  std::vector<uint64_t> out_bytes(nparts, 0);
  std::vector<uint64_t> col_bytes(nparts, 0);
  std::vector<uint64_t> conv(nparts, 0);
  KeyStatsMeter kmeter(nparts);
  std::vector<Status> errs(nparts);
  auto cogroup_task = [&](size_t p) {
    key_codec::KeyStats& ks = kmeter.slot(p);
    PartView vl = PartView::Of(lsp.store, p);
    PartView vr = PartView::Of(rsp.store, p);
    PartSink sink{&out.store, p};
    auto emit = [&](Row&& row) {
      uint64_t sz = RowDeepSize(row);
      work.Add(p, sz);
      out_bytes[p] += sz;
      sink.Append(std::move(row));
    };
    if (mode != KeyedMode::kLegacy) {
      WithKeyIndex(mode, [&](auto tag) {
        typename decltype(tag)::type built;
        std::vector<std::vector<Row>> chains;  // dense index -> right rows
        key_codec::KeyEncoder enc;
        const size_t rrows = vr.size();
        for (size_t i = 0; i < rrows; ++i) {
          if (vr.HasNullKeyAt(i, right_keys)) continue;
          auto kv = vr.EncodeKey(&enc, i, right_keys);
          if (!kv.ok()) {
            errs[p] = kv.status();
            return;
          }
          auto [gi, inserted] = built.FindOrInsert(kv.value());
          if (inserted) {
            chains.emplace_back();
            ks.build_rows++;
          } else {
            ks.probe_hits++;
          }
          // The bag member projects straight from the view — no whole-row
          // materialization on block-resident input.
          Row proj;
          proj.fields.reserve(right_value_cols.size());
          for (int c : right_value_cols) {
            proj.fields.push_back(vr.FieldAt(i, static_cast<size_t>(c)));
          }
          chains[gi].push_back(std::move(proj));
          if (chains[gi].size() > ks.max_chain) {
            ks.max_chain = chains[gi].size();
          }
        }
        const size_t lrows = vl.size();
        for (size_t j = 0; j < lrows; ++j) {
          const std::vector<Row>* matches = nullptr;
          if (!vl.HasNullKeyAt(j, left_keys)) {
            auto kv = vl.EncodeKey(&enc, j, left_keys);
            if (!kv.ok()) {
              errs[p] = kv.status();
              return;
            }
            uint32_t gi = built.Find(kv.value());
            if (gi != decltype(built)::kNotFound) {
              ks.probe_hits++;
              matches = &chains[gi];
            }
          }
          Row row = vl.MaterializeRow(j);  // transient: emitted immediately
          row.fields.push_back(matches == nullptr
                                   ? Field::Bag(std::vector<Row>{})
                                   : Field::Bag(*matches));
          emit(std::move(row));
        }
        ks.encode_bytes += enc.bytes_encoded();
        NoteTableStats(built, &ks);
      });
      if (!errs[p].ok()) return;
    } else {
      auto project_right = [&](const Row& r) {
        Row proj;
        proj.fields.reserve(right_value_cols.size());
        for (int c : right_value_cols) {
          proj.fields.push_back(r.fields[static_cast<size_t>(c)]);
        }
        return proj;
      };
      std::unordered_map<KeyView, std::vector<Row>, KeyViewHash, KeyViewEq>
          built;
      const size_t rrows = vr.size();
      for (size_t i = 0; i < rrows; ++i) {
        // The KeyView container retains key fields from the materialized row,
        // so a block-resident input converts here (counted) before the
        // null-key filter even looks at it.
        Row r = vr.MaterializeRow(i);
        if (vr.block_backed()) ++conv[p];
        if (HasNullKey(r, right_keys)) continue;
        auto [it, inserted] = built.try_emplace(ExtractKey(r, right_keys));
        if (inserted) {
          ks.build_rows++;
        } else {
          ks.probe_hits++;
        }
        it->second.push_back(project_right(r));
        if (it->second.size() > ks.max_chain) {
          ks.max_chain = it->second.size();
        }
      }
      const size_t lrows = vl.size();
      for (size_t j = 0; j < lrows; ++j) {
        Row l = vl.MaterializeRow(j);
        if (vl.block_backed()) ++conv[p];
        const std::vector<Row>* matches = nullptr;
        if (!HasNullKey(l, left_keys)) {
          auto it = built.find(ExtractKey(l, left_keys));
          if (it != built.end()) {
            ks.probe_hits++;
            matches = &it->second;
          }
        }
        Row row = std::move(l);
        row.fields.push_back(matches == nullptr ? Field::Bag(std::vector<Row>{})
                                                : Field::Bag(*matches));
        emit(std::move(row));
      }
    }
    work.Add(p, lsp.bytes[p] + rsp.bytes[p]);
    if (block_out) col_bytes[p] += out.store.block(p).ByteFootprint();
  };
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      name, nparts, &stage, cogroup_task, [&](size_t p) {
        out.store.Clear(p);
        out_bytes[p] = 0;
        col_bytes[p] = 0;
        conv[p] = 0;
        work.Reset(p);
        kmeter.Reset(p);
        errs[p] = Status::OK();
      }));
  TRANCE_RETURN_NOT_OK(FirstError(errs));
  work.Finalize(&stage);
  kmeter.Finalize(&stage);
  for (uint64_t b : col_bytes) stage.columnar_bytes += b;
  for (uint64_t r : conv) stage.column_to_row_conversions += r;
  out.partitioning = Partitioning::Hash(std::move(left_keys));
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(out_bytes)));
  return out;
}

std::vector<Row> Take(const Dataset& in, size_t limit) {
  std::vector<Row> out;
  for (size_t p = 0; p < in.NumPartitions(); ++p) {
    const size_t rows = in.PartitionRowCount(p);
    for (size_t i = 0; i < rows; ++i) {
      if (out.size() >= limit) return out;
      out.push_back(in.RowAt(p, i));
    }
  }
  return out;
}

}  // namespace runtime
}  // namespace trance
