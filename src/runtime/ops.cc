#include "runtime/ops.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "runtime/flat_hash.h"
#include "runtime/key_codec.h"
#include "runtime/spill.h"
#include "util/hash.h"

namespace trance {
namespace runtime {

namespace {

/// Accumulates per-partition processed bytes and finalizes max/total plus
/// the per-partition work histogram. Add() is called from partition-parallel
/// loops: each task writes only its own slot p, and Finalize() (called after
/// the stage barrier) folds the slots in partition order — so the resulting
/// stats are bit-identical to a sequential run.
class WorkMeter {
 public:
  explicit WorkMeter(size_t parts) : work_(parts, 0) {}
  void Add(size_t p, uint64_t bytes) { work_[p] += bytes; }
  /// Clears slot p (recovery reset of a discarded task attempt). Only valid
  /// while a single task loop owns the slot.
  void Reset(size_t p) { work_[p] = 0; }
  void Finalize(StageStats* s) const {
    for (uint64_t w : work_) {
      s->total_work_bytes += w;
      if (w > s->max_partition_work_bytes) s->max_partition_work_bytes = w;
    }
    s->partition_work_bytes = work_;
  }

 private:
  std::vector<uint64_t> work_;
};

/// Per-partition keyed-phase telemetry, following the same slot discipline
/// as WorkMeter: each task owns slot p, Finalize folds the slots in
/// partition order after the stage barrier (stats stay thread-count
/// invariant). A stage with several keyed loops (e.g. SumAggregate's
/// combine + final passes) finalizes one meter per loop; the StageStats
/// fields accumulate.
class KeyStatsMeter {
 public:
  explicit KeyStatsMeter(size_t parts) : slots_(parts) {}
  key_codec::KeyStats& slot(size_t p) { return slots_[p]; }
  void Reset(size_t p) { slots_[p] = key_codec::KeyStats{}; }
  void Finalize(StageStats* s) const {
    key_codec::KeyStats total;
    for (const auto& k : slots_) total.Merge(k);
    s->key_encode_bytes += total.encode_bytes;
    s->hash_build_rows += total.build_rows;
    s->hash_probe_hits += total.probe_hits;
    if (total.max_chain > s->hash_max_chain) {
      s->hash_max_chain = total.max_chain;
    }
    s->hash_table_bytes += total.table_bytes;
    s->hash_resizes += total.resizes;
    if (total.probe_len_max > s->hash_probe_len_max) {
      s->hash_probe_len_max = total.probe_len_max;
    }
  }

 private:
  std::vector<key_codec::KeyStats> slots_;
};

/// Returns the first non-OK per-partition task error in partition order (so
/// the surfaced error is deterministic regardless of thread interleaving).
Status FirstError(const std::vector<Status>& errs) {
  for (const Status& e : errs) {
    if (!e.ok()) return e;
  }
  return Status::OK();
}

/// Folds one partition's spill telemetry into the stage and emits its spill
/// event. Driver-side only (post-barrier or sequential loops), in partition
/// order, so spill counters and the event sequence are thread-count-invariant.
void NoteSpill(Cluster* cluster, StageStats* stage, const std::string& op,
               size_t partition, uint64_t partition_bytes,
               const spill::SpillCounters& c) {
  stage->spill_bytes_written += c.bytes_written;
  stage->spill_bytes_read += c.bytes_read;
  stage->spill_runs += c.runs;
  stage->spill_merge_passes += c.merge_passes;
  obs::EventLog& log = obs::GlobalEventLog();
  if (!log.enabled()) return;
  obs::Event(&log, "spill")
      .U64("job", cluster->current_job_id())
      .Str("op", op)
      .U64("partition", partition)
      .U64("partition_bytes", partition_bytes)
      .U64("bytes_written", c.bytes_written)
      .U64("bytes_read", c.bytes_read)
      .U64("runs", c.runs)
      .U64("merge_passes", c.merge_passes)
      .Emit();
}

/// Static gate for the codec path of a keyed operator: a key column whose
/// declared type is a bag can never encode, so such operators keep the
/// legacy KeyView containers even with the codec enabled (today's
/// semantics: bag keys compare structurally). Columns with unknown type
/// pass the gate; a bag value reaching the encoder at run time then
/// surfaces as a TypeError rather than a silent divergence.
bool KeyColsEncodable(const Schema& s, const std::vector<int>& cols) {
  for (int c : cols) {
    const auto& t = s.col(static_cast<size_t>(c)).type;
    if (t != nullptr && t->is_bag()) return false;
  }
  return true;
}

/// Which container idiom a keyed operator runs on. Two code paths exist per
/// operator: the encoded path (written once, instantiated with either index
/// container via WithKeyIndex) and the legacy KeyView fallback.
enum class KeyedMode {
  kFlat,    // codec on, flat on: open-addressing table over arena key bytes
  kStdMap,  // codec on, flat off: node-based unordered_map<EncodedKey, …>
  kLegacy,  // codec off (or unencodable keys): historical KeyView containers
};

KeyedMode KeyedModeFor(const Cluster* cluster, bool encodable) {
  if (!cluster->key_codec_enabled() || !encodable) return KeyedMode::kLegacy;
  return cluster->flat_hash_enabled() ? KeyedMode::kFlat : KeyedMode::kStdMap;
}

template <class T>
struct IndexTag {
  using type = T;
};

/// Runs the encoded keyed loop `f` with its index container type: the flat
/// open-addressing table (default) or the std::unordered_map fallback when
/// enable_flat_hash is off. The loop body is written once and instantiated
/// with both, so the escape hatch cannot drift from the flat path.
template <class F>
auto WithKeyIndex(KeyedMode mode, F&& f) {
  return mode == KeyedMode::kFlat ? f(IndexTag<flat_hash::FlatKeyIndex>{})
                                  : f(IndexTag<flat_hash::StdKeyIndex>{});
}

/// Accumulates `add` into `into[i]`, growing the histogram on first use (a
/// stage may run several shuffles, e.g. both sides of a join).
void AccumulateHistogram(std::vector<uint64_t>* into,
                         const std::vector<uint64_t>& add) {
  if (into->size() < add.size()) into->resize(add.size(), 0);
  for (size_t i = 0; i < add.size(); ++i) (*into)[i] += add[i];
}

/// Row lists entering an operator's partition-local phase, with the
/// deep-size footprint of each partition. The bytes ride along from the
/// shuffle (where every row was sized exactly once) so the work meter and
/// memory check never re-walk rows a shuffle already sized.
struct ShuffledParts {
  std::vector<std::vector<Row>> parts;
  std::vector<uint64_t> bytes;
};

/// Hash-shuffles `in` to num_partitions buckets keyed on key_cols, recording
/// exact cross-partition movement into `stage`. Two-phase and
/// partition-parallel:
///   1. each input partition buckets its rows by target partition into its
///      own bucket set, sizing every row once (the size feeds movement
///      accounting and the output footprint);
///   2. each target partition concatenates its buckets in fixed
///      input-partition order.
/// Phase 2's fixed order reproduces the sequential row order exactly, and
/// the movement histograms are merged in partition order at the phase-1
/// barrier, so output and stats are identical for any thread count.
///
/// Fault model: phase-1 (map side) tasks read only the immutable input, so a
/// crash fault re-runs them after discarding the partition's buckets; phase-2
/// (fetch side) consumes the buckets destructively via move, so its faults
/// are fetch-style — they strike before the task touches the buckets (null
/// reset) and the retry re-fetches.
StatusOr<ShuffledParts> ShuffleByKey(Cluster* cluster, const Dataset& in,
                                     const std::vector<int>& key_cols,
                                     StageStats* stage) {
  const size_t n = static_cast<size_t>(cluster->num_partitions());
  const size_t in_n = in.partitions.size();
  // Columnar mode moves columns, not rows: the map side packs its partition
  // into a typed block and routes cells block-to-block (zero Row
  // materializations map-side); the fetch side materializes rows out of the
  // received blocks in the same fixed source order the row path uses.
  // Routing hashes (PartitionBlock::HashRowOn == RowHashOn) and per-row
  // sizes (RowBytesAt == RowDeepSize) are computed from the identical Field
  // values, so placement and every movement stat are bit-identical either
  // way.
  const bool columnar = cluster->columnar_enabled();

  struct SourceBuckets {
    std::vector<std::vector<Row>> rows;  // [target] (row mode)
    std::vector<column::PartitionBlock> blocks;  // [target] (columnar mode)
    std::vector<uint64_t> bytes;         // [target] all routed bytes
    std::vector<uint64_t> moved;         // [target] bytes that changed partition
    uint64_t sent = 0;                   // total bytes leaving this partition
    uint64_t moved_rows = 0;             // rows that changed partition
  };
  std::vector<SourceBuckets> buckets(in_n);
  std::vector<uint64_t> map_col_bytes(in_n, 0);
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      stage->op + ".shuffle_map", in_n, stage,
      [&](size_t p) {
        SourceBuckets& b = buckets[p];
        b.bytes.assign(n, 0);
        b.moved.assign(n, 0);
        if (columnar) {
          column::PartitionBlock in_block =
              column::PartitionBlock::FromRows(in.schema, in.partitions[p]);
          b.blocks.assign(n, column::PartitionBlock(in.schema));
          const size_t rows = in_block.NumRows();
          for (size_t i = 0; i < rows; ++i) {
            size_t target = static_cast<size_t>(
                cluster->PartitionOf(in_block.HashRowOn(i, key_cols)));
            uint64_t sz = in_block.RowBytesAt(i);
            b.bytes[target] += sz;
            if (target != p) {
              b.moved[target] += sz;
              b.sent += sz;
              ++b.moved_rows;
            }
            b.blocks[target].AppendRowFrom(in_block, i);
          }
          map_col_bytes[p] += in_block.ByteFootprint();
          for (const auto& tb : b.blocks) {
            map_col_bytes[p] += tb.ByteFootprint();
          }
          return;
        }
        b.rows.resize(n);
        for (const auto& row : in.partitions[p]) {
          // key_codec::KeyHashOn is the codec's key hash and is identical to
          // RowHashOn, so shuffle routing never depends on the codec mode.
          size_t target = static_cast<size_t>(
              cluster->PartitionOf(key_codec::KeyHashOn(row, key_cols)));
          uint64_t sz = RowDeepSize(row);
          b.bytes[target] += sz;
          if (target != p) {
            b.moved[target] += sz;
            b.sent += sz;
            ++b.moved_rows;
          }
          b.rows[target].push_back(row);
        }
      },
      [&](size_t p) {
        buckets[p] = SourceBuckets{};
        map_col_bytes[p] = 0;
      }));

  std::vector<uint64_t> recv(n, 0);
  std::vector<uint64_t> send(std::max(in_n, n), 0);
  uint64_t moved_rows = 0;
  uint64_t moved_bytes = 0;
  for (size_t p = 0; p < in_n; ++p) {
    send[p] = buckets[p].sent;
    stage->shuffle_bytes += buckets[p].sent;
    moved_rows += buckets[p].moved_rows;
    moved_bytes += buckets[p].sent;
    for (size_t t = 0; t < n; ++t) recv[t] += buckets[p].moved[t];
  }

  ShuffledParts out;
  out.parts.resize(n);
  out.bytes.assign(n, 0);
  std::vector<uint64_t> fetch_rowify(n, 0);

  // Fetch-side spill (runtime/spill.h): a target whose total received bytes
  // exceed the spill threshold writes one run per non-empty source bucket
  // (clearing the bucket as it goes), then stream-merges the runs back in
  // fixed source order — the identical row sequence the in-memory
  // concatenation produces. The spill decision and every run are pure
  // functions of the routed bytes, and the per-target counter slots are
  // folded in target order after the barrier, so results and stats stay
  // thread-count-invariant.
  const bool spill_on = cluster->spill_enabled();
  const uint64_t spill_threshold = cluster->spill_threshold_bytes();
  std::vector<spill::SpillCounters> spill_slots(n);
  std::vector<Status> spill_errs(n, Status::OK());
  auto spill_fetch_target = [&](size_t t) -> Status {
    spill::SpillManager* sm = cluster->spill_manager();
    spill::SpillCounters* c = &spill_slots[t];
    const std::string tag = stage->op + ".shuffle_fetch";
    const uint64_t job = cluster->current_job_id();
    std::vector<std::string> runs;
    for (size_t p = 0; p < in_n; ++p) {
      out.bytes[t] += buckets[p].bytes[t];
      std::string path = sm->RunPath(job, tag, t, runs.size());
      if (columnar) {
        auto& src = buckets[p].blocks[t];
        if (src.NumRows() == 0) continue;
        TRANCE_RETURN_NOT_OK(sm->WriteBlockRun(path, src, c));
        src = column::PartitionBlock(in.schema);
      } else {
        auto& src = buckets[p].rows[t];
        if (src.empty()) continue;
        TRANCE_RETURN_NOT_OK(sm->WriteRowsRun(path, src, c));
        src.clear();
        src.shrink_to_fit();
      }
      runs.push_back(std::move(path));
    }
    // One merge pass: streaming the runs in write order restores the exact
    // source-order concatenation. Block records materialize rows through
    // ReadRun's block_rows count, which lands in the same fetch_rowify slot
    // the in-memory block path uses.
    for (const std::string& path : runs) {
      TRANCE_RETURN_NOT_OK(sm->ReadRun(
          path, &out.parts[t], columnar ? &fetch_rowify[t] : nullptr, c));
    }
    for (const std::string& path : runs) sm->RemoveRun(path);
    c->merge_passes += 1;
    return Status::OK();
  };

  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      stage->op + ".shuffle_fetch", n, stage,
      [&](size_t t) {
        if (spill_on) {
          uint64_t total_bytes = 0;
          for (size_t p = 0; p < in_n; ++p) total_bytes += buckets[p].bytes[t];
          if (total_bytes > spill_threshold) {
            spill_errs[t] = spill_fetch_target(t);
            return;
          }
        }
        if (columnar) {
          size_t total = 0;
          for (size_t p = 0; p < in_n; ++p) {
            total += buckets[p].blocks[t].NumRows();
          }
          out.parts[t].reserve(total);
          for (size_t p = 0; p < in_n; ++p) {
            const auto& src = buckets[p].blocks[t];
            src.AppendRowsTo(&out.parts[t]);
            fetch_rowify[t] += src.NumRows();
            out.bytes[t] += buckets[p].bytes[t];
          }
          return;
        }
        size_t total = 0;
        for (size_t p = 0; p < in_n; ++p) total += buckets[p].rows[t].size();
        out.parts[t].reserve(total);
        for (size_t p = 0; p < in_n; ++p) {
          auto& src = buckets[p].rows[t];
          out.parts[t].insert(out.parts[t].end(),
                              std::make_move_iterator(src.begin()),
                              std::make_move_iterator(src.end()));
          out.bytes[t] += buckets[p].bytes[t];
        }
      },
      nullptr));
  TRANCE_RETURN_NOT_OK(FirstError(spill_errs));
  for (size_t t = 0; t < n; ++t) {
    if (spill_slots[t].runs == 0 && spill_slots[t].merge_passes == 0) continue;
    NoteSpill(cluster, stage, stage->op + ".shuffle_fetch", t, out.bytes[t],
              spill_slots[t]);
  }
  for (uint64_t b : map_col_bytes) stage->columnar_bytes += b;
  for (uint64_t r : fetch_rowify) stage->column_to_row_conversions += r;

  for (uint64_t b : recv) {
    if (b > stage->max_partition_recv_bytes) {
      stage->max_partition_recv_bytes = b;
    }
  }
  stage->movement = DataMovement::kShuffle;
  AccumulateHistogram(&stage->partition_recv_bytes, recv);
  AccumulateHistogram(&stage->partition_send_bytes, send);
  // Driver-side (post-barrier) publication of what this shuffle moved; the
  // bytes also reach the registry via RecordStage, rows only exist here.
  cluster->metrics()
      .GetCounter("trance_shuffle_rows_total",
                  "rows that changed partition in shuffles")
      ->Add(moved_rows);
  obs::EventLog& log = obs::GlobalEventLog();
  if (log.enabled()) {
    obs::Event(&log, "shuffle")
        .U64("job", cluster->current_job_id())
        .Str("op", stage->op)
        .Str("movement", "shuffle")
        .U64("rows_moved", moved_rows)
        .U64("bytes", moved_bytes)
        .U64("partitions", n)
        .Emit();
  }
  return out;
}

/// Shuffle path of operators that group/join on `key_cols`: reuses the input
/// partitions (zero movement — and still one sizing walk for the work meter)
/// when the guarantee already holds, otherwise hash-shuffles.
StatusOr<ShuffledParts> ShuffleOrReuse(Cluster* cluster, const Dataset& in,
                                       const std::vector<int>& key_cols,
                                       StageStats* stage) {
  if (in.partitioning.IsHashOn(key_cols)) {
    ShuffledParts out;
    out.parts = in.partitions;
    out.bytes = in.PartitionBytes(cluster->num_threads());
    // Keyed-input spill: on the reuse path no shuffle bounds the partitions,
    // so an oversized keyed-build input spills to runs here and streams back
    // in the original order — the downstream index build then inserts the
    // identical row sequence (same hash_* stats, same group emission order).
    // Driver-side, in partition order.
    if (cluster->spill_enabled()) {
      const uint64_t threshold = cluster->spill_threshold_bytes();
      for (size_t p = 0; p < out.parts.size(); ++p) {
        if (out.bytes[p] <= threshold) continue;
        spill::SpillCounters pc;
        TRANCE_RETURN_NOT_OK(cluster->spill_manager()->SpillAndRestoreRows(
            cluster->current_job_id(), stage->op + ".keyed_input", p,
            &out.parts[p], &pc));
        NoteSpill(cluster, stage, stage->op + ".keyed_input", p, out.bytes[p],
                  pc);
      }
    }
    return out;
  }
  return ShuffleByKey(cluster, in, key_cols, stage);
}

/// Output schema of a join: left columns then right columns, right-side
/// collisions suffixed "__r".
Schema JoinSchema(const Schema& l, const Schema& r) {
  Schema out = l;
  for (const auto& c : r.columns()) {
    std::string name = c.name;
    while (out.IndexOf(name) >= 0) name += "__r";
    out.Append({name, c.type});
  }
  return out;
}

Row ConcatRows(const Row& l, const Row& r) {
  Row out;
  out.fields = l.fields;
  out.fields.reserve(l.fields.size() + r.fields.size());
  out.fields.insert(out.fields.end(), r.fields.begin(), r.fields.end());
  return out;
}

Row NullPadRight(const Row& l, size_t right_width) {
  Row out;
  out.fields = l.fields;
  out.fields.reserve(l.fields.size() + right_width);
  for (size_t i = 0; i < right_width; ++i) out.fields.push_back(Field::Null());
  return out;
}

bool HasNullKey(const Row& r, const std::vector<int>& cols) {
  for (int c : cols) {
    if (r.fields[static_cast<size_t>(c)].is_null()) return true;
  }
  return false;
}

/// Partition-local hash join of two row lists. `right_schema` supplies the
/// right width (an empty right partition must still NULL-pad fully) and, in
/// columnar mode, the build block's column types. Writes the deep-size
/// footprint of the rows it appended to *out_bytes and the keyed-phase
/// telemetry into *ks. On the encoded modes the build table is keyed by
/// compact binary keys (one arena append per distinct key, no per-probe
/// allocation); kLegacy runs the historical KeyView containers. When
/// `columnar` is set (and the mode is encoded — the legacy path has no
/// block form), the build side is packed into a typed PartitionBlock, keys
/// are encoded column-wise, and the key index references row offsets into
/// the block instead of materialized Row pointers; matches materialize rows
/// out of the block (counted into *rowify, footprint into *col_bytes). All
/// paths count build/probe/chain identically — key identity coincides, so
/// the counters are mode-invariant.
Status LocalJoin(const std::vector<Row>& left, const std::vector<Row>& right,
                 const std::vector<int>& lk, const std::vector<int>& rk,
                 JoinType type, const Schema& right_schema, bool columnar,
                 KeyedMode mode, std::vector<Row>* out, uint64_t* out_bytes,
                 uint64_t* col_bytes, uint64_t* rowify,
                 key_codec::KeyStats* ks) {
  *out_bytes = 0;
  *col_bytes = 0;
  *rowify = 0;
  const size_t right_width = right_schema.size();
  auto emit_matches = [&](const Row& l, const std::vector<const Row*>& rows) {
    for (const Row* r : rows) {
      out->push_back(ConcatRows(l, *r));
      *out_bytes += RowDeepSize(out->back());
    }
  };
  auto emit_miss = [&](const Row& l) {
    if (type == JoinType::kLeftOuter) {
      out->push_back(NullPadRight(l, right_width));
      *out_bytes += RowDeepSize(out->back());
    }
  };
  if (mode != KeyedMode::kLegacy && columnar) {
    return WithKeyIndex(mode, [&](auto tag) -> Status {
      typename decltype(tag)::type built(right.size());
      column::PartitionBlock rb =
          column::PartitionBlock::FromRows(right_schema, right);
      *col_bytes += rb.ByteFootprint();
      // Dense per-key chains of row offsets into the block — the flat table
      // references (block, row-offset) pairs, never materialized Rows.
      std::vector<std::vector<uint32_t>> chains;
      chains.reserve(right.size());
      key_codec::KeyEncoder enc;
      const size_t rn = rb.NumRows();
      for (size_t i = 0; i < rn; ++i) {
        bool null_key = false;
        for (int c : rk) {
          if (rb.IsNull(i, static_cast<size_t>(c))) {
            null_key = true;
            break;
          }
        }
        if (null_key) continue;
        enc.Begin();
        for (int c : rk) {
          TRANCE_RETURN_NOT_OK(enc.Append(rb.FieldAt(i, static_cast<size_t>(c))));
        }
        auto [gi, inserted] = built.FindOrInsert(enc.Finish());
        if (inserted) {
          chains.emplace_back();
          ks->build_rows++;
        } else {
          ks->probe_hits++;
        }
        chains[gi].push_back(static_cast<uint32_t>(i));
        if (chains[gi].size() > ks->max_chain) ks->max_chain = chains[gi].size();
      }
      for (const auto& l : left) {
        bool matched = false;
        if (!HasNullKey(l, lk)) {
          TRANCE_ASSIGN_OR_RETURN(key_codec::EncodedKeyView k,
                                  enc.Encode(l, lk));
          uint32_t gi = built.Find(k);
          if (gi != decltype(built)::kNotFound) {
            matched = true;
            ks->probe_hits++;
            for (uint32_t ri : chains[gi]) {
              Row r = rb.RowAt(ri);
              ++*rowify;
              out->push_back(ConcatRows(l, r));
              *out_bytes += RowDeepSize(out->back());
            }
          }
        }
        if (!matched) emit_miss(l);
      }
      ks->encode_bytes += enc.bytes_encoded();
      NoteTableStats(built, ks);
      return Status::OK();
    });
  }
  if (mode != KeyedMode::kLegacy) {
    return WithKeyIndex(mode, [&](auto tag) -> Status {
      typename decltype(tag)::type built(right.size());
      // Dense per-key row chains, indexed by the table's insertion-order
      // index (the map-based path stored them in the node values).
      std::vector<std::vector<const Row*>> chains;
      chains.reserve(right.size());
      key_codec::KeyEncoder enc;
      for (const auto& r : right) {
        if (HasNullKey(r, rk)) continue;
        TRANCE_ASSIGN_OR_RETURN(key_codec::EncodedKeyView k, enc.Encode(r, rk));
        auto [gi, inserted] = built.FindOrInsert(k);
        if (inserted) {
          chains.emplace_back();
          ks->build_rows++;
        } else {
          ks->probe_hits++;
        }
        chains[gi].push_back(&r);
        if (chains[gi].size() > ks->max_chain) ks->max_chain = chains[gi].size();
      }
      for (const auto& l : left) {
        bool matched = false;
        if (!HasNullKey(l, lk)) {
          TRANCE_ASSIGN_OR_RETURN(key_codec::EncodedKeyView k,
                                  enc.Encode(l, lk));
          uint32_t gi = built.Find(k);
          if (gi != decltype(built)::kNotFound) {
            matched = true;
            ks->probe_hits++;
            emit_matches(l, chains[gi]);
          }
        }
        if (!matched) emit_miss(l);
      }
      ks->encode_bytes += enc.bytes_encoded();
      NoteTableStats(built, ks);
      return Status::OK();
    });
  }
  std::unordered_map<KeyView, std::vector<const Row*>, KeyViewHash, KeyViewEq>
      built;
  built.reserve(right.size());
  for (const auto& r : right) {
    if (HasNullKey(r, rk)) continue;
    auto [it, inserted] = built.try_emplace(ExtractKey(r, rk));
    if (inserted) {
      ks->build_rows++;
    } else {
      ks->probe_hits++;
    }
    it->second.push_back(&r);
    if (it->second.size() > ks->max_chain) ks->max_chain = it->second.size();
  }
  for (const auto& l : left) {
    bool matched = false;
    if (!HasNullKey(l, lk)) {
      auto it = built.find(ExtractKey(l, lk));
      if (it != built.end()) {
        matched = true;
        ks->probe_hits++;
        emit_matches(l, it->second);
      }
    }
    if (!matched) emit_miss(l);
  }
  return Status::OK();
}

// Stage barrier shared with the fused-stage runner.
using detail::FinishStage;

}  // namespace

StatusOr<Dataset> Source(Cluster* cluster, Schema schema,
                         std::vector<Row> rows, const std::string& name) {
  const int n = cluster->num_partitions();
  Dataset ds;
  ds.schema = std::move(schema);
  ds.partitions.resize(static_cast<size_t>(n));
  for (size_t i = 0; i < rows.size(); ++i) {
    ds.partitions[i % static_cast<size_t>(n)].push_back(std::move(rows[i]));
  }
  ds.partitioning = Partitioning::None();
  // Inputs are pre-cached ("runtime starts after caching all inputs"): they
  // are not charged against the per-partition memory cap.
  StageStats stage;
  stage.op = "source(" + name + ")";
  stage.rows_in = ds.NumRows();
  stage.rows_out = ds.NumRows();
  cluster->RecordStage(std::move(stage));
  return ds;
}

StatusOr<Dataset> SourcePartitioned(Cluster* cluster, Schema schema,
                                    std::vector<Row> rows,
                                    std::vector<int> key_cols,
                                    const std::string& name) {
  const int n = cluster->num_partitions();
  Dataset ds;
  ds.schema = std::move(schema);
  ds.partitions.resize(static_cast<size_t>(n));
  for (auto& row : rows) {
    int target = cluster->PartitionOf(key_codec::KeyHashOn(row, key_cols));
    ds.partitions[static_cast<size_t>(target)].push_back(std::move(row));
  }
  ds.partitioning = Partitioning::Hash(std::move(key_cols));
  StageStats stage;
  stage.op = "source_partitioned(" + name + ")";
  stage.rows_in = ds.NumRows();
  stage.rows_out = ds.NumRows();
  cluster->RecordStage(std::move(stage));
  return ds;
}

StatusOr<Dataset> MapRows(Cluster* cluster, const Dataset& in,
                          Schema out_schema, const MapFn& fn,
                          const std::string& name, bool preserves_partitioning,
                          Partitioning out_partitioning) {
  return RunStagePipeline(
      cluster, in, std::move(out_schema), {RowTransform::Map(name, fn)},
      preserves_partitioning ? in.partitioning : std::move(out_partitioning),
      name);
}

StatusOr<Dataset> FilterRows(Cluster* cluster, const Dataset& in,
                             const PredFn& pred, const std::string& name) {
  return RunStagePipeline(cluster, in, in.schema,
                          {RowTransform::Filter(name, pred)}, in.partitioning,
                          name);
}

StatusOr<Dataset> FlatMapRows(Cluster* cluster, const Dataset& in,
                              Schema out_schema, const FlatMapFn& fn,
                              const std::string& name) {
  return RunStagePipeline(cluster, in, std::move(out_schema),
                          {RowTransform::FlatMap(name, fn)},
                          Partitioning::None(), name);
}

StatusOr<Dataset> Repartition(Cluster* cluster, const Dataset& in,
                              std::vector<int> key_cols,
                              const std::string& name) {
  StageStats stage;
  stage.op = name;
  stage.rows_in = in.NumRows();
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts sp,
                          ShuffleOrReuse(cluster, in, key_cols, &stage));
  Dataset out;
  out.schema = in.schema;
  out.partitions = std::move(sp.parts);
  out.partitioning = Partitioning::Hash(std::move(key_cols));
  WorkMeter work(out.partitions.size());
  for (size_t p = 0; p < out.partitions.size(); ++p) {
    work.Add(p, sp.bytes[p]);
  }
  work.Finalize(&stage);
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(sp.bytes)));
  return out;
}

StatusOr<Dataset> HashJoin(Cluster* cluster, const Dataset& left,
                           const Dataset& right, std::vector<int> left_keys,
                           std::vector<int> right_keys, JoinType type,
                           const std::string& name) {
  StageStats stage;
  stage.op = name;
  stage.rows_in = left.NumRows() + right.NumRows();
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts lsp,
                          ShuffleOrReuse(cluster, left, left_keys, &stage));
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts rsp,
                          ShuffleOrReuse(cluster, right, right_keys, &stage));

  Dataset out;
  out.schema = JoinSchema(left.schema, right.schema);
  const size_t nparts = lsp.parts.size();
  out.partitions.resize(nparts);
  WorkMeter work(nparts);
  KeyStatsMeter kmeter(nparts);
  const KeyedMode mode =
      KeyedModeFor(cluster, KeyColsEncodable(left.schema, left_keys) &&
                                KeyColsEncodable(right.schema, right_keys));
  const bool columnar = cluster->columnar_enabled();
  std::vector<uint64_t> out_bytes(nparts, 0);
  std::vector<uint64_t> col_bytes(nparts, 0);
  std::vector<uint64_t> rowify(nparts, 0);
  std::vector<Status> errs(nparts);
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      name, nparts, &stage,
      [&](size_t p) {
        errs[p] = LocalJoin(lsp.parts[p], rsp.parts[p], left_keys, right_keys,
                            type, right.schema, columnar, mode,
                            &out.partitions[p], &out_bytes[p], &col_bytes[p],
                            &rowify[p], &kmeter.slot(p));
        work.Add(p, lsp.bytes[p] + rsp.bytes[p] + out_bytes[p]);
      },
      [&](size_t p) {
        out.partitions[p].clear();
        out_bytes[p] = 0;
        col_bytes[p] = 0;
        rowify[p] = 0;
        work.Reset(p);
        kmeter.Reset(p);
        errs[p] = Status::OK();
      }));
  TRANCE_RETURN_NOT_OK(FirstError(errs));
  work.Finalize(&stage);
  kmeter.Finalize(&stage);
  for (uint64_t b : col_bytes) stage.columnar_bytes += b;
  for (uint64_t r : rowify) stage.column_to_row_conversions += r;
  out.partitioning = Partitioning::Hash(std::move(left_keys));
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(out_bytes)));
  return out;
}

StatusOr<Dataset> BroadcastJoin(Cluster* cluster, const Dataset& left,
                                const Dataset& right,
                                std::vector<int> left_keys,
                                std::vector<int> right_keys, JoinType type,
                                const std::string& name) {
  StageStats stage;
  stage.op = name;
  stage.rows_in = left.NumRows() + right.NumRows();
  // The broadcast replicates the right side to every partition. One parallel
  // sizing pass covers the movement accounting and the send histogram.
  std::vector<Row> bcast = right.Collect(cluster->num_threads());
  std::vector<uint64_t> right_bytes =
      right.PartitionBytes(cluster->num_threads());
  uint64_t bcast_bytes = 0;
  for (uint64_t b : right_bytes) bcast_bytes += b;
  const uint64_t n = static_cast<uint64_t>(cluster->num_partitions());
  stage.shuffle_bytes += bcast_bytes * n;
  stage.max_partition_recv_bytes =
      std::max(stage.max_partition_recv_bytes, bcast_bytes);
  stage.movement = DataMovement::kBroadcast;
  cluster->metrics()
      .GetCounter("trance_broadcast_bytes_total",
                  "bytes replicated to every partition by broadcasts")
      ->Add(bcast_bytes * n);
  {
    obs::EventLog& log = obs::GlobalEventLog();
    if (log.enabled()) {
      obs::Event(&log, "shuffle")
          .U64("job", cluster->current_job_id())
          .Str("op", name)
          .Str("movement", "broadcast")
          .U64("rows_moved", static_cast<uint64_t>(bcast.size()) * n)
          .U64("bytes", bcast_bytes * n)
          .U64("partitions", n)
          .Emit();
    }
  }
  // Every partition receives the full broadcast; each source partition sends
  // its resident right-side rows to all n partitions.
  AccumulateHistogram(&stage.partition_recv_bytes,
                      std::vector<uint64_t>(static_cast<size_t>(n),
                                            bcast_bytes));
  {
    std::vector<uint64_t> send(right.partitions.size(), 0);
    for (size_t p = 0; p < right.partitions.size(); ++p) {
      send[p] = right_bytes[p] * n;
    }
    AccumulateHistogram(&stage.partition_send_bytes, send);
  }

  Dataset out;
  out.schema = JoinSchema(left.schema, right.schema);
  const size_t nparts = left.partitions.size();
  out.partitions.resize(nparts);
  WorkMeter work(nparts);
  KeyStatsMeter kmeter(nparts);
  const KeyedMode mode =
      KeyedModeFor(cluster, KeyColsEncodable(left.schema, left_keys) &&
                                KeyColsEncodable(right.schema, right_keys));
  std::vector<uint64_t> left_bytes =
      left.PartitionBytes(cluster->num_threads());
  const bool columnar = cluster->columnar_enabled();
  std::vector<uint64_t> out_bytes(nparts, 0);
  std::vector<uint64_t> col_bytes(nparts, 0);
  std::vector<uint64_t> rowify(nparts, 0);
  std::vector<Status> errs(nparts);
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      name, nparts, &stage,
      [&](size_t p) {
        // Columnar mode packs the broadcast rows into a typed block per
        // receiving partition inside LocalJoin (each pack is counted).
        errs[p] = LocalJoin(left.partitions[p], bcast, left_keys, right_keys,
                            type, right.schema, columnar, mode,
                            &out.partitions[p], &out_bytes[p], &col_bytes[p],
                            &rowify[p], &kmeter.slot(p));
        work.Add(p, left_bytes[p] + bcast_bytes + out_bytes[p]);
      },
      [&](size_t p) {
        out.partitions[p].clear();
        out_bytes[p] = 0;
        col_bytes[p] = 0;
        rowify[p] = 0;
        work.Reset(p);
        kmeter.Reset(p);
        errs[p] = Status::OK();
      }));
  TRANCE_RETURN_NOT_OK(FirstError(errs));
  work.Finalize(&stage);
  kmeter.Finalize(&stage);
  for (uint64_t b : col_bytes) stage.columnar_bytes += b;
  for (uint64_t r : rowify) stage.column_to_row_conversions += r;
  // Left rows did not move: the left guarantee (if any) is preserved.
  out.partitioning = left.partitioning;
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(out_bytes)));
  return out;
}

StatusOr<Dataset> NestGroup(Cluster* cluster, const Dataset& in,
                            std::vector<int> key_cols,
                            std::vector<int> value_cols,
                            const std::string& bag_col_name,
                            const std::string& name,
                            std::vector<int> indicator_cols) {
  // Fallback miss rule: all non-bag value columns NULL.
  std::vector<int> miss_cols = indicator_cols;
  if (miss_cols.empty()) {
    for (int c : value_cols) {
      const auto& t = in.schema.col(static_cast<size_t>(c)).type;
      if (t == nullptr || !t->is_bag()) miss_cols.push_back(c);
    }
  }
  StageStats stage;
  stage.op = name;
  stage.rows_in = in.NumRows();
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts sp,
                          ShuffleOrReuse(cluster, in, key_cols, &stage));

  Schema out_schema;
  for (int c : key_cols) {
    out_schema.Append(in.schema.col(static_cast<size_t>(c)));
  }
  std::vector<nrc::Field> bag_fields;
  for (int c : value_cols) {
    const auto& col = in.schema.col(static_cast<size_t>(c));
    bag_fields.push_back({col.name, col.type});
  }
  out_schema.Append(
      {bag_col_name, nrc::Type::Bag(nrc::Type::Tuple(std::move(bag_fields)))});

  Dataset out;
  out.schema = out_schema;
  const size_t nparts = sp.parts.size();
  out.partitions.resize(nparts);
  WorkMeter work(nparts);
  std::vector<uint64_t> out_bytes(nparts, 0);
  KeyStatsMeter kmeter(nparts);
  const KeyedMode mode =
      KeyedModeFor(cluster, KeyColsEncodable(in.schema, key_cols));
  std::vector<Status> errs(nparts);
  auto nest_task = [&](size_t p) {
    // Group storage is mode-independent: (key fields of the first row that
    // created the group, members), in first-seen order. The two key paths
    // only differ in how a row finds its group index.
    std::vector<std::pair<std::vector<Field>, std::vector<Row>>> groups;
    std::vector<uint64_t> group_rows;  // rows mapped per group (chain stat)
    key_codec::KeyStats& ks = kmeter.slot(p);
    auto add_row = [&](size_t gi, const Row& row) {
      if (++group_rows[gi] > ks.max_chain) ks.max_chain = group_rows[gi];
      // NULL-to-empty-bag cast: a miss row marks a key with no inner
      // elements (outer join/unnest miss); it creates the group only.
      bool miss = !miss_cols.empty();
      for (int c : miss_cols) {
        if (!row.fields[static_cast<size_t>(c)].is_null()) {
          miss = false;
          break;
        }
      }
      if (!miss) {
        Row inner;
        inner.fields.reserve(value_cols.size());
        for (int c : value_cols) {
          inner.fields.push_back(row.fields[static_cast<size_t>(c)]);
        }
        groups[gi].second.push_back(std::move(inner));
      }
    };
    if (mode != KeyedMode::kLegacy) {
      bool failed = WithKeyIndex(mode, [&](auto tag) -> bool {
        typename decltype(tag)::type index;
        key_codec::KeyEncoder enc;
        for (const auto& row : sp.parts[p]) {
          auto kv = enc.Encode(row, key_cols);
          if (!kv.ok()) {
            errs[p] = kv.status();
            return true;
          }
          auto [gi, inserted] = index.FindOrInsert(kv.value());
          if (inserted) {
            groups.emplace_back(ExtractKey(row, key_cols).fields,
                                std::vector<Row>{});
            group_rows.push_back(0);
            ks.build_rows++;
          } else {
            ks.probe_hits++;
          }
          add_row(gi, row);
        }
        ks.encode_bytes += enc.bytes_encoded();
        NoteTableStats(index, &ks);
        return false;
      });
      if (failed) return;
    } else {
      std::unordered_map<KeyView, size_t, KeyViewHash, KeyViewEq> index;
      for (const auto& row : sp.parts[p]) {
        auto [it, inserted] =
            index.try_emplace(ExtractKey(row, key_cols), groups.size());
        size_t gi = it->second;
        if (inserted) {
          groups.emplace_back(it->first.fields, std::vector<Row>{});
          group_rows.push_back(0);
          ks.build_rows++;
        } else {
          ks.probe_hits++;
        }
        add_row(gi, row);
      }
    }
    for (auto& [key_fields, members] : groups) {
      Row row;
      row.fields = std::move(key_fields);
      row.fields.push_back(Field::Bag(std::move(members)));
      out_bytes[p] += RowDeepSize(row);
      out.partitions[p].push_back(std::move(row));
    }
    work.Add(p, sp.bytes[p] + out_bytes[p]);
  };
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      name, nparts, &stage, nest_task, [&](size_t p) {
        out.partitions[p].clear();
        out_bytes[p] = 0;
        work.Reset(p);
        kmeter.Reset(p);
        errs[p] = Status::OK();
      }));
  TRANCE_RETURN_NOT_OK(FirstError(errs));
  work.Finalize(&stage);
  kmeter.Finalize(&stage);
  out.partitioning = Partitioning::Hash(
      [&] {
        std::vector<int> cols;
        for (int i = 0; i < static_cast<int>(key_cols.size()); ++i) {
          cols.push_back(i);
        }
        return cols;
      }());
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(out_bytes)));
  return out;
}

StatusOr<Dataset> AddIndexColumn(Cluster* cluster, const Dataset& in,
                                 const std::string& id_col_name,
                                 const std::string& name) {
  Schema out_schema = in.schema;
  out_schema.Append({id_col_name, nrc::Type::Int()});
  return RunStagePipeline(cluster, in, std::move(out_schema),
                          {RowTransform::AddIndex(name)}, in.partitioning,
                          name);
}

StatusOr<Dataset> SumAggregate(Cluster* cluster, const Dataset& in,
                               std::vector<int> key_cols,
                               std::vector<int> value_cols,
                               bool map_side_combine,
                               const std::string& name) {
  StageStats stage;
  stage.op = name;
  stage.rows_in = in.NumRows();

  Schema out_schema;
  for (int c : key_cols) {
    out_schema.Append(in.schema.col(static_cast<size_t>(c)));
  }
  std::vector<bool> is_int;
  for (int c : value_cols) {
    const auto& col = in.schema.col(static_cast<size_t>(c));
    out_schema.Append(col);
    is_int.push_back(col.type->is_scalar() &&
                     col.type->scalar_kind() == nrc::ScalarKind::kInt);
  }

  std::vector<int> partial_keys;
  for (int i = 0; i < static_cast<int>(key_cols.size()); ++i) {
    partial_keys.push_back(i);
  }
  const KeyedMode mode =
      KeyedModeFor(cluster, KeyColsEncodable(in.schema, key_cols));

  // Local aggregation of one row list into (key, sums) rows. A row whose
  // value fields are all NULL marks an outer miss: it creates the group but
  // contributes nothing; groups with no contribution emit NULL values.
  // Reads only its arguments and the (const) captured column metadata, so
  // the partition-parallel loops below may share it. Group storage and
  // emission are mode-independent (key fields of the first row that created
  // the group, in first-seen order); only the group lookup differs.
  struct Acc {
    std::vector<double> sums;
    bool seen = false;
  };
  auto aggregate = [&](const std::vector<Row>& rows, bool rows_are_partial,
                       key_codec::KeyStats* ks,
                       std::vector<Row>* out_rows) -> Status {
    std::vector<std::pair<std::vector<Field>, Acc>> groups;
    std::vector<uint64_t> group_rows;
    const std::vector<int>& cols = rows_are_partial ? partial_keys : key_cols;
    auto key_fields_of = [&](const Row& row) {
      return rows_are_partial
                 ? std::vector<Field>{row.fields.begin(),
                                      row.fields.begin() +
                                          static_cast<long>(key_cols.size())}
                 : ExtractKey(row, key_cols).fields;
    };
    auto fold = [&](size_t gi, const Row& row) {
      if (++group_rows[gi] > ks->max_chain) ks->max_chain = group_rows[gi];
      Acc& acc = groups[gi].second;
      bool all_null = !value_cols.empty();
      for (size_t i = 0; i < value_cols.size(); ++i) {
        const Field& f =
            rows_are_partial
                ? row.fields[key_cols.size() + i]
                : row.fields[static_cast<size_t>(value_cols[i])];
        if (!f.is_null()) all_null = false;
      }
      if (all_null) return;  // miss marker: group exists, no contribution
      acc.seen = true;
      for (size_t i = 0; i < value_cols.size(); ++i) {
        const Field& f =
            rows_are_partial
                ? row.fields[key_cols.size() + i]
                : row.fields[static_cast<size_t>(value_cols[i])];
        if (!f.is_null()) acc.sums[i] += f.AsNumber();  // lone NULL casts to 0
      }
    };
    auto new_group = [&](std::vector<Field> key_fields) {
      Acc acc;
      acc.sums.assign(value_cols.size(), 0.0);
      groups.emplace_back(std::move(key_fields), std::move(acc));
      group_rows.push_back(0);
      ks->build_rows++;
    };
    if (mode != KeyedMode::kLegacy) {
      TRANCE_RETURN_NOT_OK(WithKeyIndex(mode, [&](auto tag) -> Status {
        typename decltype(tag)::type index;
        key_codec::KeyEncoder enc;
        for (const auto& row : rows) {
          TRANCE_ASSIGN_OR_RETURN(key_codec::EncodedKeyView k,
                                  enc.Encode(row, cols));
          auto [gi, inserted] = index.FindOrInsert(k);
          if (inserted) {
            new_group(key_fields_of(row));
          } else {
            ks->probe_hits++;
          }
          fold(gi, row);
        }
        ks->encode_bytes += enc.bytes_encoded();
        NoteTableStats(index, ks);
        return Status::OK();
      }));
    } else {
      std::unordered_map<KeyView, size_t, KeyViewHash, KeyViewEq> index;
      for (const auto& row : rows) {
        auto [it, inserted] =
            index.try_emplace(KeyView{key_fields_of(row)}, groups.size());
        size_t gi = it->second;
        if (inserted) {
          new_group(it->first.fields);
        } else {
          ks->probe_hits++;
        }
        fold(gi, row);
      }
    }
    out_rows->reserve(groups.size());
    for (auto& [key_fields, acc] : groups) {
      Row row;
      row.fields = std::move(key_fields);
      for (size_t i = 0; i < acc.sums.size(); ++i) {
        if (!acc.seen) {
          row.fields.push_back(Field::Null());
        } else {
          row.fields.push_back(
              is_int[i] ? Field::Int(static_cast<int64_t>(acc.sums[i]))
                        : Field::Real(acc.sums[i]));
        }
      }
      out_rows->push_back(std::move(row));
    }
    return Status::OK();
  };

  const size_t in_parts = in.partitions.size();
  WorkMeter work(in_parts);
  Dataset partial;
  partial.schema = out_schema;
  partial.partitions.resize(in_parts);
  // The aggregate runs up to three task loops over the same work meter, so
  // each loop accumulates into its own local vector (folded into the meter
  // after its barrier): a recovery reset may then zero the current loop's
  // slot without destroying an earlier loop's contribution.
  {
    std::vector<uint64_t> local_work(in_parts, 0);
    if (map_side_combine) {
      std::vector<uint64_t> in_bytes =
          in.PartitionBytes(cluster->num_threads());
      KeyStatsMeter kmeter(in_parts);
      std::vector<Status> errs(in_parts);
      TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
          name + ".combine", in_parts, &stage,
          [&](size_t p) {
            errs[p] = aggregate(in.partitions[p], false, &kmeter.slot(p),
                                &partial.partitions[p]);
            uint64_t partial_bytes = 0;
            for (const auto& r : partial.partitions[p]) {
              partial_bytes += RowDeepSize(r);
            }
            local_work[p] = in_bytes[p] + partial_bytes;
          },
          [&](size_t p) {
            partial.partitions[p].clear();
            local_work[p] = 0;
            kmeter.Reset(p);
            errs[p] = Status::OK();
          }));
      TRANCE_RETURN_NOT_OK(FirstError(errs));
      kmeter.Finalize(&stage);
    } else {
      // Reshape rows to (key, value) layout without combining.
      TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
          name + ".reshape", in_parts, &stage,
          [&](size_t p) {
            partial.partitions[p].reserve(in.partitions[p].size());
            uint64_t in_bytes = 0;
            for (const auto& row : in.partitions[p]) {
              in_bytes += RowDeepSize(row);
              Row r;
              for (int c : key_cols) {
                r.fields.push_back(row.fields[static_cast<size_t>(c)]);
              }
              for (size_t i = 0; i < value_cols.size(); ++i) {
                // NULLs pass through so the final aggregation pass can apply
                // the miss-marker rule uniformly.
                r.fields.push_back(
                    row.fields[static_cast<size_t>(value_cols[i])]);
              }
              partial.partitions[p].push_back(std::move(r));
            }
            local_work[p] = in_bytes;
          },
          [&](size_t p) {
            partial.partitions[p].clear();
            local_work[p] = 0;
          }));
    }
    for (size_t p = 0; p < in_parts; ++p) work.Add(p, local_work[p]);
  }
  partial.partitioning = in.partitioning.IsHashOn(key_cols)
                             ? Partitioning::Hash(partial_keys)
                             : Partitioning::None();

  TRANCE_ASSIGN_OR_RETURN(ShuffledParts sp,
                          ShuffleOrReuse(cluster, partial, partial_keys,
                                         &stage));

  Dataset out;
  out.schema = out_schema;
  const size_t nparts = sp.parts.size();
  out.partitions.resize(nparts);
  std::vector<uint64_t> out_bytes(nparts, 0);
  {
    std::vector<uint64_t> local_work(nparts, 0);
    KeyStatsMeter kmeter(nparts);
    std::vector<Status> errs(nparts);
    TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
        name, nparts, &stage,
        [&](size_t p) {
          errs[p] = aggregate(sp.parts[p], true, &kmeter.slot(p),
                              &out.partitions[p]);
          for (const auto& r : out.partitions[p]) {
            out_bytes[p] += RowDeepSize(r);
          }
          local_work[p] = sp.bytes[p] + out_bytes[p];
        },
        [&](size_t p) {
          out.partitions[p].clear();
          out_bytes[p] = 0;
          local_work[p] = 0;
          kmeter.Reset(p);
          errs[p] = Status::OK();
        }));
    TRANCE_RETURN_NOT_OK(FirstError(errs));
    kmeter.Finalize(&stage);
    for (size_t p = 0; p < nparts; ++p) work.Add(p, local_work[p]);
  }
  work.Finalize(&stage);
  out.partitioning = Partitioning::Hash(partial_keys);
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(out_bytes)));
  return out;
}

StatusOr<Schema> UnnestedSchema(const Schema& in, int bag_col,
                                const std::string& id_col_name) {
  const auto& bag_type = in.col(static_cast<size_t>(bag_col)).type;
  if (!bag_type->is_bag()) {
    return Status::TypeError("unnest on non-bag column " +
                             in.col(static_cast<size_t>(bag_col)).name);
  }
  TRANCE_ASSIGN_OR_RETURN(Schema inner, Schema::FromBagType(bag_type));
  Schema out;
  if (!id_col_name.empty()) {
    out.Append({id_col_name, nrc::Type::Int()});
  }
  for (size_t i = 0; i < in.size(); ++i) {
    if (static_cast<int>(i) == bag_col) continue;
    out.Append(in.col(i));
  }
  for (const auto& c : inner.columns()) {
    std::string name = c.name;
    while (out.IndexOf(name) >= 0) name += "__u";
    out.Append({name, c.type});
  }
  return out;
}

StatusOr<Dataset> Unnest(Cluster* cluster, const Dataset& in, int bag_col,
                         const std::string& name) {
  TRANCE_ASSIGN_OR_RETURN(Schema out_schema,
                          UnnestedSchema(in.schema, bag_col, ""));
  return RunStagePipeline(cluster, in, std::move(out_schema),
                          {RowTransform::Unnest(name, bag_col)},
                          Partitioning::None(), name);
}

StatusOr<Dataset> OuterUnnest(Cluster* cluster, const Dataset& in, int bag_col,
                              const std::string& id_col_name,
                              const std::string& name) {
  TRANCE_ASSIGN_OR_RETURN(Schema out_schema,
                          UnnestedSchema(in.schema, bag_col, id_col_name));
  const bool with_id = !id_col_name.empty();
  size_t inner_width = out_schema.size() - (with_id ? 1 : 0) -
                       (in.schema.size() - 1);
  return RunStagePipeline(
      cluster, in, std::move(out_schema),
      {RowTransform::OuterUnnest(name, bag_col, with_id, inner_width)},
      Partitioning::None(), name);
}

StatusOr<Dataset> UnionAll(Cluster* cluster, const Dataset& a,
                           const Dataset& b, const std::string& name) {
  if (a.schema.size() != b.schema.size()) {
    return Status::TypeError("union of schemas with different widths");
  }
  Dataset out;
  out.schema = a.schema;
  const size_t nparts = std::max(a.partitions.size(), b.partitions.size());
  out.partitions.resize(nparts);
  StageStats stage;
  stage.op = name;
  stage.rows_in = a.NumRows() + b.NumRows();
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      name, nparts, &stage,
      [&](size_t p) {
        size_t total = (p < a.partitions.size() ? a.partitions[p].size() : 0) +
                       (p < b.partitions.size() ? b.partitions[p].size() : 0);
        out.partitions[p].reserve(total);
        if (p < a.partitions.size()) {
          out.partitions[p].insert(out.partitions[p].end(),
                                   a.partitions[p].begin(),
                                   a.partitions[p].end());
        }
        if (p < b.partitions.size()) {
          out.partitions[p].insert(out.partitions[p].end(),
                                   b.partitions[p].begin(),
                                   b.partitions[p].end());
        }
      },
      [&](size_t p) { out.partitions[p].clear(); }));
  out.partitioning = Partitioning::None();
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name));
  return out;
}

StatusOr<Dataset> Distinct(Cluster* cluster, const Dataset& in,
                           const std::string& name) {
  StageStats stage;
  stage.op = name;
  stage.rows_in = in.NumRows();
  std::vector<int> all_cols;
  for (int i = 0; i < static_cast<int>(in.schema.size()); ++i) {
    all_cols.push_back(i);
  }
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts sp,
                          ShuffleOrReuse(cluster, in, all_cols, &stage));
  Dataset out;
  out.schema = in.schema;
  const size_t nparts = sp.parts.size();
  out.partitions.resize(nparts);
  WorkMeter work(nparts);
  std::vector<uint64_t> out_bytes(nparts, 0);
  KeyStatsMeter kmeter(nparts);
  // Dedup keys on every column, so any bag-typed column sends the whole
  // operator down the legacy path (bag keys compare structurally there).
  const KeyedMode mode =
      KeyedModeFor(cluster, KeyColsEncodable(in.schema, all_cols));
  const bool columnar = cluster->columnar_enabled();
  std::vector<uint64_t> col_bytes(nparts, 0);
  std::vector<uint64_t> rowify(nparts, 0);
  std::vector<Status> errs(nparts);
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      name, nparts, &stage,
      [&](size_t p) {
        key_codec::KeyStats& ks = kmeter.slot(p);
        auto emit = [&](const Row& row) {
          out_bytes[p] += RowDeepSize(row);
          out.partitions[p].push_back(row);
        };
        if (mode != KeyedMode::kLegacy && columnar) {
          // Columnar dedup: pack the partition into a typed block, encode
          // membership keys column-wise, and materialize only the first
          // occurrence of each key back into a row. The encoded bytes match
          // EncodeRow over the same fields, so all key counters are
          // mode-invariant.
          column::PartitionBlock blk =
              column::PartitionBlock::FromRows(in.schema, sp.parts[p]);
          col_bytes[p] += blk.ByteFootprint();
          WithKeyIndex(mode, [&](auto tag) {
            typename decltype(tag)::type seen;
            std::vector<uint64_t> counts;
            key_codec::KeyEncoder enc;
            const size_t rows = blk.NumRows();
            for (size_t i = 0; i < rows; ++i) {
              key_codec::EncodedKeyView kv;
              if (!blk.ragged()) {
                enc.Begin();
                Status st;
                for (size_t c = 0; c < blk.NumCols() && st.ok(); ++c) {
                  st = enc.Append(blk.FieldAt(i, c));
                }
                if (!st.ok()) {
                  errs[p] = st;
                  return;
                }
                kv = enc.Finish();
              } else {
                auto st = enc.EncodeRow(blk.RowAt(i));
                if (!st.ok()) {
                  errs[p] = st.status();
                  return;
                }
                kv = st.value();
              }
              auto [gi, inserted] = seen.FindOrInsert(kv);
              if (inserted) {
                counts.push_back(1);
                ks.build_rows++;
                if (ks.max_chain < 1) ks.max_chain = 1;
                out_bytes[p] += blk.RowBytesAt(i);
                out.partitions[p].push_back(blk.RowAt(i));
                ++rowify[p];
              } else {
                ks.probe_hits++;
                if (++counts[gi] > ks.max_chain) ks.max_chain = counts[gi];
              }
            }
            ks.encode_bytes += enc.bytes_encoded();
            NoteTableStats(seen, &ks);
          });
          if (!errs[p].ok()) return;
        } else if (mode != KeyedMode::kLegacy) {
          // The membership test encodes into the task's scratch buffer and
          // probes without materializing — the fix for the historical
          // full-row KeyView deep copy per test. Per-key duplicate counts
          // (the chain stat) live densely beside the index.
          WithKeyIndex(mode, [&](auto tag) {
            typename decltype(tag)::type seen;
            std::vector<uint64_t> counts;
            key_codec::KeyEncoder enc;
            for (const auto& row : sp.parts[p]) {
              auto kv = enc.EncodeRow(row);
              if (!kv.ok()) {
                errs[p] = kv.status();
                return;
              }
              auto [gi, inserted] = seen.FindOrInsert(kv.value());
              if (inserted) {
                counts.push_back(1);
                ks.build_rows++;
                if (ks.max_chain < 1) ks.max_chain = 1;
                emit(row);
              } else {
                ks.probe_hits++;
                if (++counts[gi] > ks.max_chain) ks.max_chain = counts[gi];
              }
            }
            ks.encode_bytes += enc.bytes_encoded();
            NoteTableStats(seen, &ks);
          });
          if (!errs[p].ok()) return;
        } else {
          std::unordered_map<KeyView, uint64_t, KeyViewHash, KeyViewEq> seen;
          for (const auto& row : sp.parts[p]) {
            auto [it, inserted] = seen.try_emplace(KeyView{row.fields}, 1);
            if (inserted) {
              ks.build_rows++;
              if (ks.max_chain < 1) ks.max_chain = 1;
              emit(row);
            } else {
              ks.probe_hits++;
              if (++it->second > ks.max_chain) ks.max_chain = it->second;
            }
          }
        }
        work.Add(p, sp.bytes[p] + out_bytes[p]);
      },
      [&](size_t p) {
        out.partitions[p].clear();
        out_bytes[p] = 0;
        col_bytes[p] = 0;
        rowify[p] = 0;
        work.Reset(p);
        kmeter.Reset(p);
        errs[p] = Status::OK();
      }));
  TRANCE_RETURN_NOT_OK(FirstError(errs));
  work.Finalize(&stage);
  kmeter.Finalize(&stage);
  for (uint64_t b : col_bytes) stage.columnar_bytes += b;
  for (uint64_t r : rowify) stage.column_to_row_conversions += r;
  out.partitioning = Partitioning::Hash(std::move(all_cols));
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(out_bytes)));
  return out;
}

StatusOr<Dataset> CoGroup(Cluster* cluster, const Dataset& left,
                          const Dataset& right, std::vector<int> left_keys,
                          std::vector<int> right_keys,
                          std::vector<int> right_value_cols,
                          const std::string& bag_col_name,
                          const std::string& name) {
  StageStats stage;
  stage.op = name;
  stage.rows_in = left.NumRows() + right.NumRows();
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts lsp,
                          ShuffleOrReuse(cluster, left, left_keys, &stage));
  TRANCE_ASSIGN_OR_RETURN(ShuffledParts rsp,
                          ShuffleOrReuse(cluster, right, right_keys, &stage));

  Schema out_schema = left.schema;
  std::vector<nrc::Field> bag_fields;
  for (int c : right_value_cols) {
    const auto& col = right.schema.col(static_cast<size_t>(c));
    bag_fields.push_back({col.name, col.type});
  }
  out_schema.Append(
      {bag_col_name, nrc::Type::Bag(nrc::Type::Tuple(std::move(bag_fields)))});

  Dataset out;
  out.schema = std::move(out_schema);
  const size_t nparts = lsp.parts.size();
  out.partitions.resize(nparts);
  WorkMeter work(nparts);
  std::vector<uint64_t> out_bytes(nparts, 0);
  KeyStatsMeter kmeter(nparts);
  const KeyedMode mode =
      KeyedModeFor(cluster, KeyColsEncodable(left.schema, left_keys) &&
                                KeyColsEncodable(right.schema, right_keys));
  std::vector<Status> errs(nparts);
  auto cogroup_task = [&](size_t p) {
    key_codec::KeyStats& ks = kmeter.slot(p);
    auto project_right = [&](const Row& r) {
      Row proj;
      proj.fields.reserve(right_value_cols.size());
      for (int c : right_value_cols) {
        proj.fields.push_back(r.fields[static_cast<size_t>(c)]);
      }
      return proj;
    };
    auto emit = [&](const Row& l, const std::vector<Row>* matches) {
      Row row = l;
      row.fields.push_back(matches == nullptr ? Field::Bag(std::vector<Row>{})
                                              : Field::Bag(*matches));
      uint64_t sz = RowDeepSize(row);
      work.Add(p, sz);
      out_bytes[p] += sz;
      out.partitions[p].push_back(std::move(row));
    };
    if (mode != KeyedMode::kLegacy) {
      WithKeyIndex(mode, [&](auto tag) {
        typename decltype(tag)::type built;
        std::vector<std::vector<Row>> chains;  // dense index -> right rows
        key_codec::KeyEncoder enc;
        for (const auto& r : rsp.parts[p]) {
          if (HasNullKey(r, right_keys)) continue;
          auto kv = enc.Encode(r, right_keys);
          if (!kv.ok()) {
            errs[p] = kv.status();
            return;
          }
          auto [gi, inserted] = built.FindOrInsert(kv.value());
          if (inserted) {
            chains.emplace_back();
            ks.build_rows++;
          } else {
            ks.probe_hits++;
          }
          chains[gi].push_back(project_right(r));
          if (chains[gi].size() > ks.max_chain) {
            ks.max_chain = chains[gi].size();
          }
        }
        for (const auto& l : lsp.parts[p]) {
          const std::vector<Row>* matches = nullptr;
          if (!HasNullKey(l, left_keys)) {
            auto kv = enc.Encode(l, left_keys);
            if (!kv.ok()) {
              errs[p] = kv.status();
              return;
            }
            uint32_t gi = built.Find(kv.value());
            if (gi != decltype(built)::kNotFound) {
              ks.probe_hits++;
              matches = &chains[gi];
            }
          }
          emit(l, matches);
        }
        ks.encode_bytes += enc.bytes_encoded();
        NoteTableStats(built, &ks);
      });
      if (!errs[p].ok()) return;
    } else {
      std::unordered_map<KeyView, std::vector<Row>, KeyViewHash, KeyViewEq>
          built;
      for (const auto& r : rsp.parts[p]) {
        if (HasNullKey(r, right_keys)) continue;
        auto [it, inserted] = built.try_emplace(ExtractKey(r, right_keys));
        if (inserted) {
          ks.build_rows++;
        } else {
          ks.probe_hits++;
        }
        it->second.push_back(project_right(r));
        if (it->second.size() > ks.max_chain) {
          ks.max_chain = it->second.size();
        }
      }
      for (const auto& l : lsp.parts[p]) {
        const std::vector<Row>* matches = nullptr;
        if (!HasNullKey(l, left_keys)) {
          auto it = built.find(ExtractKey(l, left_keys));
          if (it != built.end()) {
            ks.probe_hits++;
            matches = &it->second;
          }
        }
        emit(l, matches);
      }
    }
    work.Add(p, lsp.bytes[p] + rsp.bytes[p]);
  };
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      name, nparts, &stage, cogroup_task, [&](size_t p) {
        out.partitions[p].clear();
        out_bytes[p] = 0;
        work.Reset(p);
        kmeter.Reset(p);
        errs[p] = Status::OK();
      }));
  TRANCE_RETURN_NOT_OK(FirstError(errs));
  work.Finalize(&stage);
  kmeter.Finalize(&stage);
  out.partitioning = Partitioning::Hash(std::move(left_keys));
  TRANCE_RETURN_NOT_OK(FinishStage(cluster, std::move(stage), &out, name,
                                   std::move(out_bytes)));
  return out;
}

std::vector<Row> Take(const Dataset& in, size_t limit) {
  std::vector<Row> out;
  for (const auto& p : in.partitions) {
    for (const auto& r : p) {
      if (out.size() >= limit) return out;
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace runtime
}  // namespace trance
