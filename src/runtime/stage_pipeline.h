// Fused narrow-stage execution.
//
// A RowTransform is one partition-local ("narrow") operator expressed as a
// reusable row-level rewrite: map, filter, flatmap, unnest, outer-unnest or
// add-index. RunStagePipeline runs a *chain* of transforms as one stage:
// every input row is fed through the whole chain in a single per-partition
// pass, so nothing between two narrow operators is ever materialized as a
// Dataset — only the chain's final output is. This mirrors how Spark fuses
// narrow dependencies into one pipelined stage (only shuffle boundaries
// materialize), which the paper's generated bulk programs rely on.
//
// The standalone bulk operators (MapRows, FilterRows, FlatMapRows, Unnest,
// OuterUnnest, AddIndexColumn in runtime/ops.cc) are single-transform chains
// of the same runner, so the fused and standalone paths share one
// implementation and one stats discipline.
//
// Stats contract:
//  - A single-transform chain records a StageStats bit-identical to the
//    historical standalone operator (same op name, same work accounting, and
//    no `fused_transforms`).
//  - A multi-transform chain records ONE StageStats whose work charge is the
//    input footprint plus the final transform's emitted bytes; the bytes the
//    unfused pipeline would have materialized between transforms are summed
//    into `intermediate_bytes_avoided`, and each transform reports its own
//    emitted-row count in `fused_transforms` (EXPLAIN ANALYZE expands these
//    back into one line per plan operator).
//  - All accounting uses per-partition slots merged in partition order after
//    the stage barrier, so outputs and stats are identical at any thread
//    count. Per-partition uid counters reproduce the exact ids the
//    standalone OuterUnnest/AddIndexColumn operators would have assigned.
//  - The memory cap is enforced against the fused chain's peak — the final
//    output partitions, the only rows the chain holds at once (intermediate
//    rows stream through one at a time).
#ifndef TRANCE_RUNTIME_STAGE_PIPELINE_H_
#define TRANCE_RUNTIME_STAGE_PIPELINE_H_

#include <functional>
#include <string>
#include <vector>

#include "runtime/cluster.h"
#include "runtime/dataset.h"
#include "util/status.h"

namespace trance {
namespace runtime {

using MapFn = std::function<Row(const Row&)>;
using FlatMapFn = std::function<void(const Row&, std::vector<Row>*)>;
using PredFn = std::function<bool(const Row&)>;

/// One narrow operator as a row-level rewrite, runnable standalone or fused.
struct RowTransform {
  enum class Kind { kMap, kFilter, kFlatMap, kUnnest, kOuterUnnest, kAddIndex };

  Kind kind = Kind::kMap;
  /// Display name of the operator (e.g. "select", "project.h"); becomes the
  /// stage op for single-transform chains and a fused_transforms entry
  /// otherwise.
  std::string op;
  /// Plan-node attribution for EXPLAIN ANALYZE; empty outside plan execution.
  std::string scope;

  MapFn map;            // kMap
  PredFn pred;          // kFilter
  FlatMapFn flat_map;   // kFlatMap
  int bag_col = -1;     // kUnnest / kOuterUnnest
  bool with_id = false;     // kOuterUnnest: prepend a unique id column
  size_t inner_width = 0;   // kOuterUnnest: NULL pad width for empty bags

  static RowTransform Map(std::string op, MapFn fn);
  static RowTransform Filter(std::string op, PredFn fn);
  static RowTransform FlatMap(std::string op, FlatMapFn fn);
  static RowTransform Unnest(std::string op, int bag_col);
  static RowTransform OuterUnnest(std::string op, int bag_col, bool with_id,
                                  size_t inner_width);
  static RowTransform AddIndex(std::string op);
};

/// Runs `chain` (non-empty) over `in` as one fused stage. `out_schema` is the
/// schema after the whole chain; `out_partitioning` the guarantee the caller
/// derived for the chain's output. `stage_name` is the recorded op and the
/// name memory-cap failures report.
StatusOr<Dataset> RunStagePipeline(Cluster* cluster, const Dataset& in,
                                   Schema out_schema,
                                   const std::vector<RowTransform>& chain,
                                   Partitioning out_partitioning,
                                   const std::string& stage_name);

namespace detail {
/// Stage barrier shared by the bulk operators and the fused-stage runner:
/// finalizes row counts, stamps the memory high-water mark, records the
/// stage and enforces the per-partition cap. `part_bytes`, when provided, is
/// the precomputed footprint of `result`'s partitions (from the operator's
/// own single sizing pass); when empty the result is walked here (in
/// parallel).
Status FinishStage(Cluster* cluster, StageStats stage, Dataset* result,
                   const std::string& name,
                   std::vector<uint64_t> part_bytes = {});
}  // namespace detail

}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_STAGE_PIPELINE_H_
