#include "runtime/stats.h"

#include <sstream>

#include "util/strings.h"

namespace trance {
namespace runtime {

std::string JobStats::ToString() const {
  std::ostringstream os;
  os << "JobStats{stages=" << stages_.size()
     << ", shuffle=" << FormatBytes(totals_.shuffle_bytes)
     << ", max_stage_shuffle=" << FormatBytes(max_stage_shuffle_)
     << ", peak_partition=" << FormatBytes(peak_partition_bytes_)
     << ", sim_time=" << FormatDouble(sim_seconds_, 3) << "s}";
  for (const auto& s : stages_) {
    os << "\n  " << s.op << ": in=" << s.rows_in << " out=" << s.rows_out
       << " shuffle=" << FormatBytes(s.shuffle_bytes)
       << " max_recv=" << FormatBytes(s.max_partition_recv_bytes)
       << " max_work=" << FormatBytes(s.max_partition_work_bytes)
       << " t=" << FormatDouble(s.sim_seconds, 4) << "s";
  }
  return os.str();
}

}  // namespace runtime
}  // namespace trance
