#include "runtime/stats.h"

#include <sstream>

#include "util/strings.h"

namespace trance {
namespace runtime {

const char* DataMovementName(DataMovement m) {
  switch (m) {
    case DataMovement::kLocal:
      return "local";
    case DataMovement::kShuffle:
      return "shuffle";
    case DataMovement::kBroadcast:
      return "broadcast";
  }
  return "?";
}

double StageStats::ImbalanceFactor() const {
  if (partition_work_bytes.empty() || total_work_bytes == 0) return 1.0;
  double mean = static_cast<double>(total_work_bytes) /
                static_cast<double>(partition_work_bytes.size());
  if (mean <= 0) return 1.0;
  return static_cast<double>(max_partition_work_bytes) / mean;
}

StragglerSummary JobStats::straggler() const {
  StragglerSummary out;
  for (const auto& s : stages_) {
    if (s.max_partition_recv_bytes > out.max_partition_recv_bytes) {
      out.max_partition_recv_bytes = s.max_partition_recv_bytes;
    }
    if (s.max_partition_work_bytes > out.max_partition_work_bytes) {
      out.max_partition_work_bytes = s.max_partition_work_bytes;
    }
    double f = s.ImbalanceFactor();
    if (f > out.worst_imbalance) {
      out.worst_imbalance = f;
      out.worst_stage = s.op;
    }
    out.heavy_key_count += s.heavy_key_count;
  }
  return out;
}

std::string JobStats::ToString() const {
  std::ostringstream os;
  StragglerSummary sk = straggler();
  os << "JobStats{stages=" << stages_.size()
     << ", shuffle=" << FormatBytes(totals_.shuffle_bytes)
     << ", max_stage_shuffle=" << FormatBytes(max_stage_shuffle_)
     << ", peak_partition=" << FormatBytes(peak_partition_bytes_)
     << ", max_partition_recv=" << FormatBytes(sk.max_partition_recv_bytes)
     << ", max_partition_work=" << FormatBytes(sk.max_partition_work_bytes)
     << ", straggler=" << FormatDouble(sk.worst_imbalance, 2) << "x"
     << (sk.worst_stage.empty() ? "" : "@" + sk.worst_stage)
     << ", heavy_keys=" << sk.heavy_key_count;
  if (injected_faults_ > 0) {
    os << ", injected_faults=" << injected_faults_ << ", retries=" << retries_
       << ", recovery=" << FormatDouble(recovery_sim_seconds_, 3) << "s";
  }
  os << ", sim_time=" << FormatDouble(sim_seconds_, 3) << "s}";
  for (const auto& s : stages_) {
    os << "\n  " << s.op << ": in=" << s.rows_in << " out=" << s.rows_out
       << " shuffle=" << FormatBytes(s.shuffle_bytes)
       << " max_recv=" << FormatBytes(s.max_partition_recv_bytes)
       << " max_work=" << FormatBytes(s.max_partition_work_bytes)
       << " imb=" << FormatDouble(s.ImbalanceFactor(), 2) << "x"
       << " mode=" << DataMovementName(s.movement);
    if (s.injected_faults > 0) {
      os << " faults=" << s.injected_faults
         << " recovery=" << FormatDouble(s.recovery_sim_seconds, 4) << "s";
    }
    os << " t=" << FormatDouble(s.sim_seconds, 4) << "s";
  }
  return os.str();
}

}  // namespace runtime
}  // namespace trance
