#include "runtime/key_codec.h"

#include <cstring>

namespace trance {
namespace runtime {
namespace key_codec {

namespace {

// One tag byte per field. Tags also separate the int/real/bool/string type
// lattice: Field::operator== calls Int(1) and Real(1.0) equal, but their
// Field::Hash values differ, so the legacy KeyView containers (hash first,
// equality only within a bucket) keep them apart — distinct tags reproduce
// that exactly.
enum Tag : unsigned char {
  kNull = 0x00,
  kInt = 0x01,
  kReal = 0x02,
  kString = 0x03,
  kBool = 0x04,
  kLabel = 0x05,
  kNullLabel = 0x06,  // LabelPtr that is nullptr (hash 0x1AB, != empty label)
};

void PutU32(std::string* out, uint32_t v) {
  unsigned char b[4] = {static_cast<unsigned char>(v),
                        static_cast<unsigned char>(v >> 8),
                        static_cast<unsigned char>(v >> 16),
                        static_cast<unsigned char>(v >> 24)};
  out->append(reinterpret_cast<const char*>(b), 4);
}

void PutU64(std::string* out, uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  out->append(reinterpret_cast<const char*>(b), 8);
}

Status EncodeField(const Field& f, std::string* out) {
  if (f.is_null()) {
    out->push_back(static_cast<char>(kNull));
    return Status::OK();
  }
  if (f.is_int()) {
    out->push_back(static_cast<char>(kInt));
    PutU64(out, static_cast<uint64_t>(f.AsInt()));
    return Status::OK();
  }
  if (f.is_real()) {
    // Normalize -0.0 to 0.0: Field::operator== and HashDouble both treat
    // them as the same key, so their encodings must be byte-identical too.
    double d = f.AsReal();
    if (d == 0.0) d = 0.0;
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    out->push_back(static_cast<char>(kReal));
    PutU64(out, bits);
    return Status::OK();
  }
  if (f.is_string()) {
    const std::string& s = f.AsString();
    out->push_back(static_cast<char>(kString));
    PutU32(out, static_cast<uint32_t>(s.size()));
    out->append(s);
    return Status::OK();
  }
  if (f.is_bool()) {
    out->push_back(static_cast<char>(kBool));
    out->push_back(f.AsBool() ? '\1' : '\0');
    return Status::OK();
  }
  if (f.is_label()) {
    const LabelPtr& l = f.AsLabel();
    if (l == nullptr) {
      out->push_back(static_cast<char>(kNullLabel));
      return Status::OK();
    }
    out->push_back(static_cast<char>(kLabel));
    PutU32(out, static_cast<uint32_t>(l->params.size()));
    for (const auto& [name, param] : l->params) {
      PutU32(out, static_cast<uint32_t>(name.size()));
      out->append(name);
      TRANCE_RETURN_NOT_OK(EncodeField(param, out));
    }
    return Status::OK();
  }
  return Status::TypeError(
      "key codec: bag-typed field cannot be a key (keys must be flat)");
}

}  // namespace

StatusOr<EncodedKeyView> KeyEncoder::Encode(const Row& row,
                                            const std::vector<int>& cols) {
  buf_.clear();
  uint64_t h = 0x5EED;  // the RowHashOn commutative combine, accumulated here
  for (int c : cols) {
    TRANCE_CHECK(c >= 0 && static_cast<size_t>(c) < row.fields.size(),
                 "KeyEncoder::Encode: bad column");
    const Field& f = row.fields[static_cast<size_t>(c)];
    h += SplitMix64(f.Hash());
    TRANCE_RETURN_NOT_OK(EncodeField(f, &buf_));
  }
  bytes_encoded_ += buf_.size();
  return EncodedKeyView{SplitMix64(h), std::string_view(buf_)};
}

StatusOr<EncodedKeyView> KeyEncoder::EncodeRow(const Row& row) {
  buf_.clear();
  uint64_t h = 0x5EED;
  for (const Field& f : row.fields) {
    h += SplitMix64(f.Hash());
    TRANCE_RETURN_NOT_OK(EncodeField(f, &buf_));
  }
  bytes_encoded_ += buf_.size();
  return EncodedKeyView{SplitMix64(h), std::string_view(buf_)};
}

void KeyEncoder::Begin() {
  buf_.clear();
  hash_acc_ = 0x5EED;
}

Status KeyEncoder::Append(const Field& f) {
  hash_acc_ += SplitMix64(f.Hash());
  return EncodeField(f, &buf_);
}

EncodedKeyView KeyEncoder::Finish() {
  bytes_encoded_ += buf_.size();
  return EncodedKeyView{SplitMix64(hash_acc_), std::string_view(buf_)};
}

uint64_t KeyHashOn(const Row& row, const std::vector<int>& cols) {
  return RowHashOn(row, cols);
}

}  // namespace key_codec
}  // namespace runtime
}  // namespace trance
