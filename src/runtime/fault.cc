#include "runtime/fault.h"

#include "obs/metrics.h"
#include "util/hash.h"

namespace trance {
namespace runtime {

void PublishFaultInjected(obs::MetricRegistry* metrics, FaultKind kind) {
  metrics
      ->GetCounter("trance_faults_injected_total",
                   "faults injected by the seeded injector, by kind",
                   {{"kind", FaultKindName(kind)}})
      ->Increment();
}

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kWorkerCrash:
      return "worker_crash";
    case FaultKind::kFetchLoss:
      return "fetch_loss";
    case FaultKind::kResourceExhausted:
      return "resource_exhausted";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultConfig& config) : config_(config) {
  if (config_.inject_worker_crash) kinds_.push_back(FaultKind::kWorkerCrash);
  if (config_.inject_fetch_loss) kinds_.push_back(FaultKind::kFetchLoss);
  if (config_.inject_resource_exhausted) {
    kinds_.push_back(FaultKind::kResourceExhausted);
  }
  active_ = config_.enabled && config_.fault_rate > 0.0 && !kinds_.empty() &&
            config_.max_faults_per_task > 0;
}

FaultKind FaultInjector::Decide(uint64_t stage_seq, size_t partition,
                                int attempt) const {
  if (!active_) return FaultKind::kNone;
  // A task is guaranteed to succeed once max_faults_per_task attempts have
  // faulted — this is what makes "sufficient retry budget => recovery
  // always succeeds" a hard guarantee rather than a probability.
  if (attempt >= config_.max_faults_per_task) return FaultKind::kNone;
  uint64_t h = SplitMix64(config_.seed ^
                          SplitMix64(stage_seq * 0x9E3779B97F4A7C15ull +
                                     static_cast<uint64_t>(partition) *
                                         0xC2B2AE3D27D4EB4Full +
                                     static_cast<uint64_t>(attempt)));
  // Top 53 bits -> uniform double in [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= config_.fault_rate) return FaultKind::kNone;
  return kinds_[SplitMix64(h) % kinds_.size()];
}

double FaultInjector::BackoffSeconds(int attempt) const {
  double b = config_.backoff_base_seconds;
  for (int i = 0; i < attempt && b < config_.backoff_max_seconds; ++i) b *= 2;
  return b < config_.backoff_max_seconds ? b : config_.backoff_max_seconds;
}

}  // namespace runtime
}  // namespace trance
