// Out-of-core spill runs over the runtime/serde.h binary block format.
//
// A SpillManager (one per Cluster) turns the paper's FAIL cells into
// slow-but-correct runs: when a partition's working set crosses the spill
// threshold, its rows are written to length-prefixed, checksummed run files
// (docs/STORAGE.md) in a per-manager temp directory, then streamed back in
// deterministic run order — so the restored row sequence, and therefore every
// pre-existing stat computed from it, is bit-identical to the in-memory path.
// The Thrill external-memory-channel design: bounded runs, sequential I/O,
// merge by fixed run order.
//
// Three spill sites use it (all gated by ExecOptions::enable_spill):
//   - ShuffleByKey fetch targets over budget spill their received buckets to
//     one run per source partition and stream-merge them in source order;
//   - keyed builds (join/cogroup/nest/reduce-by-key/dedup) spill oversized
//     shuffled inputs to runs and re-hash the rows as they stream back;
//   - detail::FinishStage spills any stage-output partition over the memory
//     cap, which is what lets the memory check pass instead of failing.
//
// Spill cost is reported only through the spill-only counters
// (spill_bytes_written / spill_bytes_read / spill_runs / spill_merge_passes);
// all are exactly 0 when nothing spills.
#ifndef TRANCE_RUNTIME_SPILL_H_
#define TRANCE_RUNTIME_SPILL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/column.h"
#include "runtime/field.h"
#include "runtime/schema.h"
#include "util/status.h"

namespace trance {
namespace runtime {
namespace spill {

/// Spill knobs; lives on ClusterConfig as `spill`. Every field is documented
/// in docs/ARCHITECTURE.md (enforced by ci/check_docs.sh).
struct SpillConfig {
  /// Run-file directory. Empty = the TRANCE_SPILL_DIR env var if set, else
  /// the system temp directory. Each manager creates (lazily, on first
  /// spill) its own subdirectory and removes it on destruction.
  std::string dir;
  /// Partition bytes above which the spill sites engage. 0 = use the
  /// cluster's partition_memory_cap, so spilling starts exactly where the
  /// hard failure used to.
  uint64_t threshold_bytes = 0;
  /// Maximum payload bytes per run file; oversized partitions split into
  /// ceil(bytes / max_run_bytes) runs.
  uint64_t max_run_bytes = 8ull << 20;
  /// Hard cap on bytes simultaneously on disk across all runs of this
  /// manager (the spill byte budget). 0 = unlimited. Exceeding it fails the
  /// job with ResourceExhausted naming the budget and the observed bytes.
  uint64_t max_spill_bytes = 0;
  /// Buffer size of the serde file reader/writer.
  uint64_t io_buffer_bytes = 64 * 1024;
  /// Keep run files after restore/destruction (post-mortem debugging).
  bool keep_files = false;
};

/// Per-site spill telemetry; folded into StageStats in partition order at
/// stage barriers (thread-count-invariant, like every other counter).
struct SpillCounters {
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t runs = 0;
  uint64_t merge_passes = 0;
  /// Rows restored from block records straight into a resident block
  /// (ReadRunIntoBlock) — each would have been a disk-side rowification
  /// before partitions were block-resident.
  uint64_t rowify_avoided = 0;

  SpillCounters& operator+=(const SpillCounters& o) {
    bytes_written += o.bytes_written;
    bytes_read += o.bytes_read;
    runs += o.runs;
    merge_passes += o.merge_passes;
    rowify_avoided += o.rowify_avoided;
    return *this;
  }
};

/// Owns one spill directory: deterministic run naming, run write/read
/// helpers, and byte-budget accounting. Write/read methods are thread-safe
/// (concurrent fetch tasks spill distinct targets); the run *names* are a
/// pure function of (job, tag, partition, run), never of thread timing.
class SpillManager {
 public:
  explicit SpillManager(SpillConfig config);
  ~SpillManager();
  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  const SpillConfig& config() const { return config_; }
  /// The engage threshold: config().threshold_bytes, or `fallback` (the
  /// caller's partition_memory_cap) when unset.
  uint64_t ThresholdOr(uint64_t fallback) const {
    return config_.threshold_bytes > 0 ? config_.threshold_bytes : fallback;
  }

  /// Deterministic run path:
  /// <root>/job<J>/<sanitized tag>-p<partition>-r<run>.trs
  std::string RunPath(uint64_t job, const std::string& tag, size_t partition,
                      size_t run) const;

  /// Writes one run file holding `rows` (row-batch records). Accounts the
  /// file's bytes against the budget and into *c.
  Status WriteRowsRun(const std::string& path, const std::vector<Row>& rows,
                      SpillCounters* c);
  /// Writes one run file holding a columnar block (one block record).
  Status WriteBlockRun(const std::string& path,
                       const column::PartitionBlock& block, SpillCounters* c);
  /// Streams a run back, appending its rows to *out in written order.
  /// `block_rows`, when non-null, accumulates the rows that came from block
  /// records (the disk-side analogue of column_to_row_conversions).
  Status ReadRun(const std::string& path, std::vector<Row>* out,
                 uint64_t* block_rows, SpillCounters* c);
  /// Streams a run back into a resident block (per-row appends, so the
  /// block's footprint matches a never-spilled block of the same rows).
  /// Block-record rows count into c->rowify_avoided.
  Status ReadRunIntoBlock(const std::string& path,
                          column::PartitionBlock* out, SpillCounters* c);
  /// Deletes a restored run (no-op with keep_files) and releases its budget.
  void RemoveRun(const std::string& path);

  /// The one-call spill site: writes *rows to max_run_bytes-bounded runs
  /// (moving rows out as it goes), clears the vector, then streams every run
  /// back in run order — restoring the identical row sequence — and removes
  /// the runs. Counts one merge pass.
  Status SpillAndRestoreRows(uint64_t job, const std::string& tag,
                             size_t partition, std::vector<Row>* rows,
                             SpillCounters* c);

  /// Block-resident analogue of SpillAndRestoreRows: splits *block into
  /// max_run_bytes-bounded chunk blocks (by RowBytesAt), writes each as one
  /// block record run, resets *block to an empty schema-typed block, then
  /// restores the identical row sequence via ReadRunIntoBlock and removes
  /// the runs. Counts one merge pass; never materializes a row vector.
  Status SpillAndRestoreBlock(uint64_t job, const std::string& tag,
                              size_t partition, const Schema& schema,
                              column::PartitionBlock* block,
                              SpillCounters* c);

  // Lifetime accounting (monotonic; budget is tracked separately).
  uint64_t total_bytes_written() const { return total_written_.load(); }
  uint64_t total_bytes_read() const { return total_read_.load(); }
  uint64_t total_runs() const { return total_runs_.load(); }
  uint64_t on_disk_bytes() const;
  const std::string& root_dir() const { return root_; }

 private:
  /// Creates the run's parent directory and charges `bytes` against the
  /// budget; fails with ResourceExhausted when the budget would overflow.
  Status AccountRun(const std::string& path, uint64_t bytes);

  SpillConfig config_;
  std::string root_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, uint64_t> file_bytes_;
  uint64_t on_disk_bytes_ = 0;
  bool root_created_ = false;
  std::atomic<uint64_t> total_written_{0};
  std::atomic<uint64_t> total_read_{0};
  std::atomic<uint64_t> total_runs_{0};
};

}  // namespace spill
}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_SPILL_H_
