#include "runtime/serde.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>

namespace trance {
namespace runtime {
namespace serde {

namespace {

// Field tags of the recursive field encoding (docs/STORAGE.md). The scalar
// tags deliberately mirror runtime/key_codec.h so the two byte formats read
// alike in a hex dump.
constexpr uint8_t kFieldNull = 0x00;
constexpr uint8_t kFieldInt = 0x01;
constexpr uint8_t kFieldReal = 0x02;
constexpr uint8_t kFieldString = 0x03;
constexpr uint8_t kFieldBool = 0x04;
constexpr uint8_t kFieldLabel = 0x05;
constexpr uint8_t kFieldBag = 0x06;

// Column kind codes inside kRecordBlock payloads.
constexpr uint8_t kColInt64 = 0;
constexpr uint8_t kColReal = 1;
constexpr uint8_t kColBool = 2;
constexpr uint8_t kColString = 3;
constexpr uint8_t kColVariant = 4;

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

// --- little-endian primitive append/parse --------------------------------
// The format is defined little-endian; memcpy of the native representation
// is correct on every platform this simulator targets (and the bytes are
// what docs/STORAGE.md specifies regardless).

template <typename T>
void AppendPod(T v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void AppendU8(uint8_t v, std::string* out) { AppendPod(v, out); }
void AppendU32(uint32_t v, std::string* out) { AppendPod(v, out); }
void AppendU64(uint64_t v, std::string* out) { AppendPod(v, out); }

Status Truncated(const char* what) {
  return Status::Invalid(std::string("serde: truncated record payload (") +
                         what + ")");
}

template <typename T>
Status ParsePod(const char* data, size_t size, size_t* pos, T* out,
                const char* what) {
  if (size - *pos < sizeof(T)) return Truncated(what);
  std::memcpy(out, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return Status::OK();
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

// --- BufferedFileWriter --------------------------------------------------

BufferedFileWriter::~BufferedFileWriter() {
  if (fd_ >= 0) Close().ok();  // best effort; errors surfaced via Close()
}

Status BufferedFileWriter::Open(const std::string& path,
                                size_t buffer_bytes) {
  if (fd_ >= 0) return Status::Internal("serde: writer already open");
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return Status::Internal(Errno("serde: cannot create", path));
  path_ = path;
  buf_.assign(buffer_bytes > 0 ? buffer_bytes : 1, 0);
  used_ = 0;
  bytes_written_ = 0;
  return Status::OK();
}

Status BufferedFileWriter::Append(const void* data, size_t n) {
  if (fd_ < 0) return Status::Internal("serde: write on closed file");
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    if (used_ == buf_.size()) {
      Status s = Flush();
      if (!s.ok()) return s;
    }
    size_t take = std::min(n, buf_.size() - used_);
    std::memcpy(buf_.data() + used_, p, take);
    used_ += take;
    p += take;
    n -= take;
    bytes_written_ += take;
  }
  return Status::OK();
}

Status BufferedFileWriter::Flush() {
  size_t off = 0;
  while (off < used_) {
    ssize_t w = ::write(fd_, buf_.data() + off, used_ - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("serde: write failed on", path_));
    }
    off += static_cast<size_t>(w);
  }
  used_ = 0;
  return Status::OK();
}

Status BufferedFileWriter::Close() {
  if (fd_ < 0) return Status::OK();
  Status s = Flush();
  if (::close(fd_) != 0 && s.ok()) {
    s = Status::Internal(Errno("serde: close failed on", path_));
  }
  fd_ = -1;
  return s;
}

// --- BufferedFileReader --------------------------------------------------

BufferedFileReader::~BufferedFileReader() {
  if (fd_ >= 0) ::close(fd_);
}

Status BufferedFileReader::Open(const std::string& path,
                                size_t buffer_bytes) {
  if (fd_ >= 0) return Status::Internal("serde: reader already open");
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return Status::Internal(Errno("serde: cannot open", path));
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    Status s = Status::Internal(Errno("serde: cannot stat", path));
    ::close(fd_);
    fd_ = -1;
    return s;
  }
  file_size_ = static_cast<uint64_t>(st.st_size);
  path_ = path;
  buf_.assign(buffer_bytes > 0 ? buffer_bytes : 1, 0);
  used_ = pos_ = 0;
  bytes_read_ = 0;
  return Status::OK();
}

Status BufferedFileReader::Refill() {
  pos_ = used_ = 0;
  for (;;) {
    ssize_t r = ::read(fd_, buf_.data(), buf_.size());
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("serde: read failed on", path_));
    }
    used_ = static_cast<size_t>(r);
    return Status::OK();
  }
}

Status BufferedFileReader::Read(void* dst, size_t n) {
  if (fd_ < 0) return Status::Internal("serde: read on closed file");
  char* p = static_cast<char*>(dst);
  while (n > 0) {
    if (pos_ == used_) {
      Status s = Refill();
      if (!s.ok()) return s;
      if (used_ == 0) {
        return Status::Invalid("serde: truncated file '" + path_ + "' (" +
                               std::to_string(n) + " bytes missing)");
      }
    }
    size_t take = std::min(n, used_ - pos_);
    std::memcpy(p, buf_.data() + pos_, take);
    pos_ += take;
    p += take;
    n -= take;
    bytes_read_ += take;
  }
  return Status::OK();
}

StatusOr<bool> BufferedFileReader::AtEof() {
  if (fd_ < 0) return Status::Internal("serde: AtEof on closed file");
  if (pos_ < used_) return false;
  Status s = Refill();
  if (!s.ok()) return s;
  return used_ == 0;
}

Status BufferedFileReader::Close() {
  if (fd_ < 0) return Status::OK();
  Status s = Status::OK();
  if (::close(fd_) != 0) {
    s = Status::Internal(Errno("serde: close failed on", path_));
  }
  fd_ = -1;
  return s;
}

// --- field / row codecs --------------------------------------------------

void AppendField(const Field& f, std::string* out) {
  if (f.is_null()) {
    AppendU8(kFieldNull, out);
  } else if (f.is_int()) {
    AppendU8(kFieldInt, out);
    AppendPod<int64_t>(f.AsInt(), out);
  } else if (f.is_real()) {
    AppendU8(kFieldReal, out);
    uint64_t bits;
    double v = f.AsReal();
    std::memcpy(&bits, &v, sizeof(bits));
    AppendU64(bits, out);
  } else if (f.is_string()) {
    AppendU8(kFieldString, out);
    const std::string& s = f.AsString();
    AppendU32(static_cast<uint32_t>(s.size()), out);
    out->append(s);
  } else if (f.is_bool()) {
    AppendU8(kFieldBool, out);
    AppendU8(f.AsBool() ? 1 : 0, out);
  } else if (f.is_label()) {
    AppendU8(kFieldLabel, out);
    const LabelPtr& l = f.AsLabel();
    if (l == nullptr) {
      AppendU32(0, out);
      return;
    }
    AppendU32(static_cast<uint32_t>(l->params.size()), out);
    for (const auto& [name, value] : l->params) {
      AppendU32(static_cast<uint32_t>(name.size()), out);
      out->append(name);
      AppendField(value, out);
    }
  } else {  // bag
    AppendU8(kFieldBag, out);
    const BagPtr& b = f.AsBag();
    uint64_t n = b == nullptr ? 0 : b->size();
    AppendU64(n, out);
    if (b != nullptr) {
      for (const Row& r : *b) {
        AppendU32(static_cast<uint32_t>(r.fields.size()), out);
        for (const Field& ff : r.fields) AppendField(ff, out);
      }
    }
  }
}

namespace {

Status ParseRow(const char* data, size_t size, size_t* pos, Row* out) {
  uint32_t nfields = 0;
  TRANCE_RETURN_NOT_OK(ParsePod(data, size, pos, &nfields, "row width"));
  out->fields.clear();
  out->fields.reserve(nfields);
  for (uint32_t i = 0; i < nfields; ++i) {
    Field f;
    TRANCE_RETURN_NOT_OK(ParseField(data, size, pos, &f));
    out->fields.push_back(std::move(f));
  }
  return Status::OK();
}

}  // namespace

Status ParseField(const char* data, size_t size, size_t* pos, Field* out) {
  uint8_t tag = 0;
  TRANCE_RETURN_NOT_OK(ParsePod(data, size, pos, &tag, "field tag"));
  switch (tag) {
    case kFieldNull:
      *out = Field::Null();
      return Status::OK();
    case kFieldInt: {
      int64_t v = 0;
      TRANCE_RETURN_NOT_OK(ParsePod(data, size, pos, &v, "int field"));
      *out = Field::Int(v);
      return Status::OK();
    }
    case kFieldReal: {
      uint64_t bits = 0;
      TRANCE_RETURN_NOT_OK(ParsePod(data, size, pos, &bits, "real field"));
      double v;
      std::memcpy(&v, &bits, sizeof(v));
      *out = Field::Real(v);
      return Status::OK();
    }
    case kFieldString: {
      uint32_t len = 0;
      TRANCE_RETURN_NOT_OK(ParsePod(data, size, pos, &len, "string length"));
      if (size - *pos < len) return Truncated("string bytes");
      *out = Field::Str(std::string(data + *pos, len));
      *pos += len;
      return Status::OK();
    }
    case kFieldBool: {
      uint8_t v = 0;
      TRANCE_RETURN_NOT_OK(ParsePod(data, size, pos, &v, "bool field"));
      *out = Field::Bool(v != 0);
      return Status::OK();
    }
    case kFieldLabel: {
      uint32_t nparams = 0;
      TRANCE_RETURN_NOT_OK(ParsePod(data, size, pos, &nparams, "label arity"));
      auto label = std::make_shared<RtLabel>();
      label->params.reserve(nparams);
      for (uint32_t i = 0; i < nparams; ++i) {
        uint32_t name_len = 0;
        TRANCE_RETURN_NOT_OK(
            ParsePod(data, size, pos, &name_len, "label param name length"));
        if (size - *pos < name_len) return Truncated("label param name");
        std::string name(data + *pos, name_len);
        *pos += name_len;
        Field value;
        TRANCE_RETURN_NOT_OK(ParseField(data, size, pos, &value));
        label->params.emplace_back(std::move(name), std::move(value));
      }
      *out = Field::Label(std::move(label));
      return Status::OK();
    }
    case kFieldBag: {
      uint64_t nrows = 0;
      TRANCE_RETURN_NOT_OK(ParsePod(data, size, pos, &nrows, "bag size"));
      std::vector<Row> rows;
      // Guard the reserve: a corrupt length must not OOM before the
      // element-wise truncation checks reject it.
      rows.reserve(static_cast<size_t>(std::min<uint64_t>(nrows, 4096)));
      for (uint64_t i = 0; i < nrows; ++i) {
        Row r;
        TRANCE_RETURN_NOT_OK(ParseRow(data, size, pos, &r));
        rows.push_back(std::move(r));
      }
      *out = Field::Bag(std::move(rows));
      return Status::OK();
    }
    default:
      return Status::Invalid("serde: unknown field tag " +
                             std::to_string(static_cast<int>(tag)));
  }
}

void AppendRowBatchPayload(const std::vector<Row>& rows, std::string* out) {
  AppendU64(rows.size(), out);
  for (const Row& r : rows) {
    AppendU32(static_cast<uint32_t>(r.fields.size()), out);
    for (const Field& f : r.fields) AppendField(f, out);
  }
}

void AppendBlockPayload(const column::PartitionBlock& block,
                        std::string* out) {
  if (block.ragged()) {
    AppendU32(0, out);  // num_cols = 0 marks the ragged row fallback
    AppendU64(block.NumRows(), out);
    AppendU8(1, out);
    for (size_t i = 0; i < block.NumRows(); ++i) {
      Row r = block.RowAt(i);
      AppendU32(static_cast<uint32_t>(r.fields.size()), out);
      for (const Field& f : r.fields) AppendField(f, out);
    }
    return;
  }
  size_t rows = block.NumRows();
  AppendU32(static_cast<uint32_t>(block.NumCols()), out);
  AppendU64(rows, out);
  AppendU8(0, out);
  size_t words = (rows + 63) / 64;
  for (size_t c = 0; c < block.NumCols(); ++c) {
    const column::AnyColumn& col = block.col(c);
    bool has_nulls = col.nulls().any();
    AppendU8(has_nulls ? 1 : 0, out);
    if (has_nulls) {
      for (size_t w = 0; w < words; ++w) {
        uint64_t word = 0;
        for (size_t b = 0; b < 64; ++b) {
          size_t i = w * 64 + b;
          if (i < rows && col.IsNull(i)) word |= uint64_t{1} << b;
        }
        AppendU64(word, out);
      }
    }
    switch (col.kind()) {
      case column::AnyColumn::Kind::kInt64:
        AppendU8(kColInt64, out);
        out->append(reinterpret_cast<const char*>(col.ints()),
                    rows * sizeof(int64_t));
        break;
      case column::AnyColumn::Kind::kReal:
        AppendU8(kColReal, out);
        out->append(reinterpret_cast<const char*>(col.reals()),
                    rows * sizeof(double));
        break;
      case column::AnyColumn::Kind::kBool:
        AppendU8(kColBool, out);
        out->append(reinterpret_cast<const char*>(col.bools()), rows);
        break;
      case column::AnyColumn::Kind::kString: {
        AppendU8(kColString, out);
        const column::StringColumn& s = col.strings();
        uint64_t chars = 0;
        for (size_t i = 0; i < rows; ++i) chars += s.At(i).size();
        AppendU64(chars, out);
        // The arena is contiguous and value 0 starts at offset 0, so the
        // whole character region is one append.
        if (chars > 0) out->append(s.At(0).data(), chars);
        uint64_t end = 0;
        for (size_t i = 0; i < rows; ++i) {
          end += s.At(i).size();
          AppendU64(end, out);
        }
        break;
      }
      case column::AnyColumn::Kind::kVariant:
        AppendU8(kColVariant, out);
        for (size_t i = 0; i < rows; ++i) AppendField(col.At(i), out);
        break;
    }
  }
}

Status ParseRecordPayload(uint8_t kind, const std::string& payload,
                          std::vector<Row>* out) {
  const char* data = payload.data();
  size_t size = payload.size();
  size_t pos = 0;
  if (kind == kRecordRowBatch) {
    uint64_t nrows = 0;
    TRANCE_RETURN_NOT_OK(ParsePod(data, size, &pos, &nrows, "batch size"));
    out->reserve(out->size() +
                 static_cast<size_t>(std::min<uint64_t>(nrows, 1 << 20)));
    for (uint64_t i = 0; i < nrows; ++i) {
      Row r;
      TRANCE_RETURN_NOT_OK(ParseRow(data, size, &pos, &r));
      out->push_back(std::move(r));
    }
  } else if (kind == kRecordBlock) {
    uint32_t ncols = 0;
    uint64_t nrows = 0;
    uint8_t ragged = 0;
    TRANCE_RETURN_NOT_OK(ParsePod(data, size, &pos, &ncols, "column count"));
    TRANCE_RETURN_NOT_OK(ParsePod(data, size, &pos, &nrows, "row count"));
    TRANCE_RETURN_NOT_OK(ParsePod(data, size, &pos, &ragged, "ragged flag"));
    size_t n = static_cast<size_t>(nrows);
    if (ragged != 0) {
      out->reserve(out->size() + std::min<size_t>(n, 1 << 20));
      for (size_t i = 0; i < n; ++i) {
        Row r;
        TRANCE_RETURN_NOT_OK(ParseRow(data, size, &pos, &r));
        out->push_back(std::move(r));
      }
    } else {
      // Decode column-wise into a cell matrix, then emit rows. Null cells
      // override the stored default value slot, matching AnyColumn::At.
      std::vector<std::vector<Field>> cols(ncols);
      std::vector<std::vector<uint64_t>> null_words(ncols);
      size_t words = (n + 63) / 64;
      for (uint32_t c = 0; c < ncols; ++c) {
        uint8_t has_nulls = 0;
        TRANCE_RETURN_NOT_OK(
            ParsePod(data, size, &pos, &has_nulls, "null flag"));
        if (has_nulls) {
          null_words[c].resize(words);
          for (size_t w = 0; w < words; ++w) {
            TRANCE_RETURN_NOT_OK(
                ParsePod(data, size, &pos, &null_words[c][w], "null bitmap"));
          }
        }
        auto is_null = [&](size_t i) {
          return has_nulls && ((null_words[c][i / 64] >> (i % 64)) & 1) != 0;
        };
        uint8_t col_kind = 0;
        TRANCE_RETURN_NOT_OK(
            ParsePod(data, size, &pos, &col_kind, "column kind"));
        std::vector<Field>& cells = cols[c];
        cells.reserve(std::min<size_t>(n, 1 << 20));
        switch (col_kind) {
          case kColInt64:
            for (size_t i = 0; i < n; ++i) {
              int64_t v = 0;
              TRANCE_RETURN_NOT_OK(
                  ParsePod(data, size, &pos, &v, "int column"));
              cells.push_back(is_null(i) ? Field::Null() : Field::Int(v));
            }
            break;
          case kColReal:
            for (size_t i = 0; i < n; ++i) {
              uint64_t bits = 0;
              TRANCE_RETURN_NOT_OK(
                  ParsePod(data, size, &pos, &bits, "real column"));
              double v;
              std::memcpy(&v, &bits, sizeof(v));
              cells.push_back(is_null(i) ? Field::Null() : Field::Real(v));
            }
            break;
          case kColBool:
            for (size_t i = 0; i < n; ++i) {
              uint8_t v = 0;
              TRANCE_RETURN_NOT_OK(
                  ParsePod(data, size, &pos, &v, "bool column"));
              cells.push_back(is_null(i) ? Field::Null()
                                         : Field::Bool(v != 0));
            }
            break;
          case kColString: {
            uint64_t chars = 0;
            TRANCE_RETURN_NOT_OK(
                ParsePod(data, size, &pos, &chars, "string arena length"));
            if (size - pos < chars) return Truncated("string arena");
            size_t arena_begin = pos;
            pos += static_cast<size_t>(chars);
            uint64_t prev = 0;
            for (size_t i = 0; i < n; ++i) {
              uint64_t end = 0;
              TRANCE_RETURN_NOT_OK(
                  ParsePod(data, size, &pos, &end, "string offsets"));
              if (end < prev || end > chars) {
                return Status::Invalid(
                    "serde: corrupt string offsets (non-monotonic or out of "
                    "arena)");
              }
              cells.push_back(
                  is_null(i)
                      ? Field::Null()
                      : Field::Str(std::string(
                            data + arena_begin + static_cast<size_t>(prev),
                            static_cast<size_t>(end - prev))));
              prev = end;
            }
            break;
          }
          case kColVariant:
            for (size_t i = 0; i < n; ++i) {
              Field f;
              TRANCE_RETURN_NOT_OK(ParseField(data, size, &pos, &f));
              cells.push_back(std::move(f));
            }
            break;
          default:
            return Status::Invalid("serde: unknown column kind " +
                                   std::to_string(static_cast<int>(col_kind)));
        }
      }
      out->reserve(out->size() + std::min<size_t>(n, 1 << 20));
      for (size_t i = 0; i < n; ++i) {
        Row r;
        r.fields.reserve(ncols);
        for (uint32_t c = 0; c < ncols; ++c) {
          r.fields.push_back(std::move(cols[c][i]));
        }
        out->push_back(std::move(r));
      }
    }
  } else {
    return Status::Invalid("serde: unknown record kind " +
                           std::to_string(static_cast<int>(kind)));
  }
  if (pos != size) {
    return Status::Invalid("serde: record payload has " +
                           std::to_string(size - pos) + " trailing bytes");
  }
  return Status::OK();
}

// --- file-level writer / reader ------------------------------------------

Status BlockFileWriter::Open(const std::string& path, size_t buffer_bytes) {
  TRANCE_RETURN_NOT_OK(out_.Open(path, buffer_bytes));
  std::string header;
  AppendU32(kMagic, &header);
  AppendPod<uint16_t>(kFormatVersion, &header);
  AppendPod<uint16_t>(0, &header);  // flags, reserved
  return out_.Append(header.data(), header.size());
}

Status BlockFileWriter::WriteRecord(uint8_t kind, const std::string& payload) {
  std::string frame;
  frame.reserve(payload.size() + 17);
  AppendU8(kind, &frame);
  AppendU64(payload.size(), &frame);
  frame.append(payload);
  AppendU64(Fnv1a64(payload.data(), payload.size()), &frame);
  return out_.Append(frame.data(), frame.size());
}

Status BlockFileWriter::WriteBlock(const column::PartitionBlock& block) {
  std::string payload;
  AppendBlockPayload(block, &payload);
  return WriteRecord(kRecordBlock, payload);
}

Status BlockFileWriter::WriteRows(const std::vector<Row>& rows) {
  std::string payload;
  AppendRowBatchPayload(rows, &payload);
  return WriteRecord(kRecordRowBatch, payload);
}

Status BlockFileWriter::Close() { return out_.Close(); }

Status BlockFileReader::Open(const std::string& path, size_t buffer_bytes) {
  TRANCE_RETURN_NOT_OK(in_.Open(path, buffer_bytes));
  uint32_t magic = 0;
  uint16_t version = 0, flags = 0;
  TRANCE_RETURN_NOT_OK(in_.Read(&magic, sizeof(magic)));
  TRANCE_RETURN_NOT_OK(in_.Read(&version, sizeof(version)));
  TRANCE_RETURN_NOT_OK(in_.Read(&flags, sizeof(flags)));
  if (magic != kMagic) {
    return Status::Invalid("serde: bad magic in '" + path +
                           "' (not a trance block file)");
  }
  if (version != kFormatVersion) {
    return Status::Invalid("serde: unsupported format version " +
                           std::to_string(version) + " in '" + path +
                           "' (this reader speaks version " +
                           std::to_string(kFormatVersion) + ")");
  }
  return Status::OK();
}

StatusOr<bool> BlockFileReader::ReadRecord(uint8_t* kind,
                                           std::string* payload) {
  TRANCE_ASSIGN_OR_RETURN(bool eof, in_.AtEof());
  if (eof) return false;
  uint64_t payload_len = 0;
  TRANCE_RETURN_NOT_OK(in_.Read(kind, sizeof(*kind)));
  TRANCE_RETURN_NOT_OK(in_.Read(&payload_len, sizeof(payload_len)));
  if (payload_len > (uint64_t{1} << 40)) {
    return Status::Invalid("serde: implausible record length " +
                           std::to_string(payload_len) + " (corrupt frame)");
  }
  // Validate against what the file can actually hold (payload + trailer)
  // BEFORE allocating: a corrupt length must produce a clean Status, not a
  // giant allocation.
  uint64_t remaining = in_.file_size() - in_.bytes_read();
  if (payload_len + sizeof(uint64_t) > remaining) {
    return Status::Invalid(
        "serde: truncated record: frame claims " +
        std::to_string(payload_len) + " payload bytes with only " +
        std::to_string(remaining) + " bytes left in the file");
  }
  payload->assign(static_cast<size_t>(payload_len), '\0');
  TRANCE_RETURN_NOT_OK(in_.Read(payload->data(), payload->size()));
  uint64_t stored_sum = 0;
  TRANCE_RETURN_NOT_OK(in_.Read(&stored_sum, sizeof(stored_sum)));
  uint64_t actual_sum = Fnv1a64(payload->data(), payload->size());
  if (stored_sum != actual_sum) {
    return Status::Invalid("serde: checksum mismatch (stored " +
                           std::to_string(stored_sum) + ", computed " +
                           std::to_string(actual_sum) + "): corrupt record");
  }
  return true;
}

StatusOr<bool> BlockFileReader::ReadBatch(std::vector<Row>* out,
                                          uint8_t* kind) {
  uint8_t record_kind = 0;
  std::string payload;
  TRANCE_ASSIGN_OR_RETURN(bool more, ReadRecord(&record_kind, &payload));
  if (!more) return false;
  TRANCE_RETURN_NOT_OK(ParseRecordPayload(record_kind, payload, out));
  if (kind != nullptr) *kind = record_kind;
  return true;
}

StatusOr<bool> BlockFileReader::ReadBatchInto(column::PartitionBlock* out,
                                              uint8_t* kind) {
  uint8_t record_kind = 0;
  std::string payload;
  TRANCE_ASSIGN_OR_RETURN(bool more, ReadRecord(&record_kind, &payload));
  if (!more) return false;
  std::vector<Row> rows;
  TRANCE_RETURN_NOT_OK(ParseRecordPayload(record_kind, payload, &rows));
  for (const Row& r : rows) out->AppendRow(r);
  if (kind != nullptr) *kind = record_kind;
  return true;
}

Status BlockFileReader::Close() { return in_.Close(); }

}  // namespace serde
}  // namespace runtime
}  // namespace trance
