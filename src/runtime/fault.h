// Fault injection for the simulated cluster (see docs/ARCHITECTURE.md,
// "Fault injection & recovery").
//
// A production-scale runtime must survive worker faults instead of aborting
// the job: Spark re-executes lost tasks from stage lineage, and the paper's
// evaluation platform relies on exactly that machinery. The simulator
// reproduces it with a *deterministic* fault model: a seeded FaultInjector
// decides, purely from (stage sequence number, partition, attempt), whether
// a partition's task fails on a given attempt and how. Decisions never
// depend on thread count, wall clock or execution order, so a fault schedule
// is reproducible bit-for-bit — the property the `faults` test label builds
// on (same seed => same faults => results identical to a fault-free run).
//
// Three transient fault kinds are modeled:
//   kWorkerCrash       — the worker dies mid-task; the attempt's partial
//                        output is discarded and the task re-runs from its
//                        stage input (lineage = the immutable input
//                        partitions the driver still holds).
//   kFetchLoss         — a shuffle fetch fails before the task did any work;
//                        the task simply re-fetches and runs.
//   kResourceExhausted — a transient memory spike (the paper's FAIL, but
//                        recoverable): the attempt is discarded like a
//                        crash. Distinct from a *real* cap violation, which
//                        CheckMemory still escalates immediately.
//
// Recovery (the retry loop in Cluster::RunRecoverableTasks) retries each
// failed task with bounded exponential backoff in *simulated* time — no
// wall-clock sleeps — and escalates to a job-level ResourceExhausted naming
// the stage once a task exceeds the retry budget.
#ifndef TRANCE_RUNTIME_FAULT_H_
#define TRANCE_RUNTIME_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trance {
namespace obs {
class MetricRegistry;
}  // namespace obs

namespace runtime {

enum class FaultKind : uint8_t {
  kNone = 0,
  kWorkerCrash = 1,
  kFetchLoss = 2,
  kResourceExhausted = 3,
};

const char* FaultKindName(FaultKind k);

/// Bumps `trance_faults_injected_total{kind=...}` for one injected fault.
/// Lives here (not in cluster.cc) so the fault module owns its metric's
/// name, labels and help text; called from the recovery merge loop.
void PublishFaultInjected(obs::MetricRegistry* metrics, FaultKind kind);

/// Fault-injection + recovery knobs, embedded in ClusterConfig as `faults`.
struct FaultConfig {
  /// Master switch. Off (the default) costs one branch per stage.
  bool enabled = false;
  /// Seed of the injector's hash stream. Independent of the cluster seed so
  /// fault placement can vary while data placement stays fixed.
  uint64_t seed = 0xfa0170;
  /// Probability that a given (stage, partition, attempt) task attempt
  /// faults. Evaluated independently per attempt.
  double fault_rate = 0.0;
  /// The injector stops failing a task after this many faults on it, which
  /// guarantees recovery succeeds whenever max_task_retries >= this value
  /// ("sufficient retry budget" in the acceptance sense).
  int max_faults_per_task = 2;
  /// Recovery budget: re-executions allowed per task before the job fails
  /// with ResourceExhausted (the stage is named in the message).
  int max_task_retries = 4;
  /// Bounded exponential backoff charged to recovery_sim_seconds before
  /// retry i: min(backoff_base_seconds * 2^i, backoff_max_seconds).
  double backoff_base_seconds = 0.5;
  double backoff_max_seconds = 8.0;
  /// Which kinds the injector may pick (all on by default).
  bool inject_worker_crash = true;
  bool inject_fetch_loss = true;
  bool inject_resource_exhausted = true;
};

/// One injected fault, recorded on the StageStats of the stage it hit.
/// RecordStage derives the recovery time charge from these (see
/// docs/METRICS.md, `recovery_sim_seconds`).
struct FaultEvent {
  uint32_t partition = 0;
  uint32_t attempt = 0;  // 0-based attempt index that faulted
  FaultKind kind = FaultKind::kNone;
};

/// Seeded, deterministic fault source. Stateless between calls: every
/// decision is a pure hash of (stage_seq, partition, attempt, seed).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  bool enabled() const { return active_; }
  const FaultConfig& config() const { return config_; }

  /// The fault (or kNone) injected into `partition`'s task attempt number
  /// `attempt` of the stage with driver-side sequence number `stage_seq`.
  FaultKind Decide(uint64_t stage_seq, size_t partition, int attempt) const;

  /// Simulated backoff charged before retrying after the fault on `attempt`.
  double BackoffSeconds(int attempt) const;

 private:
  FaultConfig config_;
  bool active_ = false;
  std::vector<FaultKind> kinds_;  // enabled kinds, selection order fixed
};

}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_FAULT_H_
