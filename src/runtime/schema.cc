#include "runtime/schema.h"

#include "util/strings.h"

namespace trance {
namespace runtime {

StatusOr<Schema> Schema::FromBagType(const nrc::TypePtr& bag_type) {
  if (bag_type == nullptr || !bag_type->is_bag()) {
    return Status::TypeError("Schema::FromBagType: not a bag type");
  }
  const nrc::TypePtr& elem = bag_type->element();
  std::vector<Column> cols;
  if (elem->is_tuple()) {
    for (const auto& f : elem->fields()) {
      cols.push_back({f.name, f.type});
    }
  } else {
    // Bag of scalars: a single anonymous column.
    cols.push_back({"_value", elem});
  }
  return Schema(std::move(cols));
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<int> Schema::Require(const std::string& name) const {
  int i = IndexOf(name);
  if (i < 0) {
    return Status::KeyError("schema has no column '" + name + "' in " +
                            ToString());
  }
  return i;
}

nrc::TypePtr Schema::RowType() const {
  std::vector<nrc::Field> fields;
  fields.reserve(cols_.size());
  for (const auto& c : cols_) fields.push_back({c.name, c.type});
  return nrc::Type::Tuple(std::move(fields));
}

nrc::TypePtr Schema::BagType() const { return nrc::Type::Bag(RowType()); }

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(cols_.size());
  for (const auto& c : cols_) {
    parts.push_back(c.name + ": " + c.type->ToString());
  }
  return "[" + Join(parts, ", ") + "]";
}

}  // namespace runtime
}  // namespace trance
