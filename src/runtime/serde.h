// Binary partition serialization: a versioned, length-prefixed on-disk
// format for PartitionBlock / Row over buffered file reader/writer classes.
//
// This is the spill format of runtime/spill.h and the ROADMAP's persistent
// dataset/dictionary cache format. The byte-level wire layout — magic,
// version, record framing, per-column encodings, null bitmaps, the recursive
// field encoding (labels/bags/variant fallbacks), and the checksum — is
// specified in docs/STORAGE.md precisely enough to write an independent
// reader; this header is the implementation of that spec and must not drift
// from it (ci/check_docs.sh + tests/serde_test.cc).
//
// Round-trip contract: every Field value the columnar path accepts — NULL,
// int64, real (exact IEEE bit pattern, NaNs included), string, bool, label
// (recursively), bag (recursively), plus variant and ragged block fallbacks —
// deserializes bit-identical to what was written. Corrupt, truncated, or
// version-mismatched input returns a clean Status (never crashes, never
// returns partial rows).
//
// Idiom: RaftKeeper's NativeBlockInputStream over
// ReadBufferFromFileDescriptor / WriteBufferFromFileDescriptor, and Thrill's
// external-memory channel block files.
#ifndef TRANCE_RUNTIME_SERDE_H_
#define TRANCE_RUNTIME_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/column.h"
#include "runtime/field.h"
#include "util/status.h"

namespace trance {
namespace runtime {
namespace serde {

/// File header magic: the bytes "TRNB" ("trance block") in file order.
/// Stored little-endian, so the on-disk bytes are 54 52 4E 42.
inline constexpr uint32_t kMagic = 0x424E5254u;

/// Format version. Readers reject any other value with a clean Status;
/// see docs/STORAGE.md "Versioning rules" before bumping.
inline constexpr uint16_t kFormatVersion = 1;

/// Record kinds (the `kind` byte of each record frame).
inline constexpr uint8_t kRecordRowBatch = 1;
inline constexpr uint8_t kRecordBlock = 2;

/// 64-bit FNV-1a over the record payload; the record trailer. Exposed so
/// tests and independent readers can recompute it.
uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed = 0xcbf29ce484222325ull);

/// Buffered file writer over a POSIX descriptor (write(2) behind an
/// app-side buffer). Append never short-writes: it either buffers/flushes
/// all n bytes or returns a Status naming the path and errno.
class BufferedFileWriter {
 public:
  BufferedFileWriter() = default;
  ~BufferedFileWriter();
  BufferedFileWriter(const BufferedFileWriter&) = delete;
  BufferedFileWriter& operator=(const BufferedFileWriter&) = delete;

  Status Open(const std::string& path, size_t buffer_bytes = 64 * 1024);
  Status Append(const void* data, size_t n);
  Status Flush();
  /// Flushes and closes; safe to call twice. The destructor closes too but
  /// swallows errors, so callers that care must Close() explicitly.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  /// Bytes handed to Append so far (buffered or flushed).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::vector<char> buf_;
  size_t used_ = 0;
  uint64_t bytes_written_ = 0;
};

/// Buffered file reader over a POSIX descriptor. Read is exact-or-error:
/// fewer than n bytes available is a truncation Status, except through
/// AtEof() which peeks cleanly at a record boundary.
class BufferedFileReader {
 public:
  BufferedFileReader() = default;
  ~BufferedFileReader();
  BufferedFileReader(const BufferedFileReader&) = delete;
  BufferedFileReader& operator=(const BufferedFileReader&) = delete;

  Status Open(const std::string& path, size_t buffer_bytes = 64 * 1024);
  Status Read(void* dst, size_t n);
  /// True iff no byte remains (refills the buffer to decide).
  StatusOr<bool> AtEof();
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t bytes_read() const { return bytes_read_; }
  /// Total file size, captured at Open. Lets record readers reject a
  /// corrupt length field before allocating for it.
  uint64_t file_size() const { return file_size_; }

 private:
  Status Refill();

  int fd_ = -1;
  std::string path_;
  std::vector<char> buf_;
  size_t used_ = 0;  // valid bytes in buf_
  size_t pos_ = 0;   // next unread byte in buf_
  uint64_t bytes_read_ = 0;
  uint64_t file_size_ = 0;
};

/// Writes one block/row-batch file: [file header][record]*. One writer per
/// file; records are independent, so a file can hold any mix of kinds.
class BlockFileWriter {
 public:
  BlockFileWriter() = default;

  /// Creates/truncates `path` and writes the file header.
  Status Open(const std::string& path, size_t buffer_bytes = 64 * 1024);

  /// Appends one kRecordBlock record. Ragged blocks serialize their row
  /// fallback; columnar blocks serialize column-wise.
  Status WriteBlock(const column::PartitionBlock& block);

  /// Appends one kRecordRowBatch record.
  Status WriteRows(const std::vector<Row>& rows);

  Status Close();
  uint64_t bytes_written() const { return out_.bytes_written(); }

 private:
  Status WriteRecord(uint8_t kind, const std::string& payload);

  BufferedFileWriter out_;
};

/// Reads a block/row-batch file record by record, materializing rows.
class BlockFileReader {
 public:
  BlockFileReader() = default;

  /// Opens `path` and validates magic + version.
  Status Open(const std::string& path, size_t buffer_bytes = 64 * 1024);

  /// Appends the next record's rows to *out (block records materialize
  /// through the same Field values that were written — bit-exact). Returns
  /// false cleanly at end of file. `kind`, when non-null, receives the
  /// record kind so callers can account block→row materializations.
  StatusOr<bool> ReadBatch(std::vector<Row>* out, uint8_t* kind = nullptr);

  /// Appends the next record's rows into *out via per-row AppendRow — the
  /// block-resident restore. The append sequence is exactly what
  /// AppendRowFrom of the written rows would produce, so the restored
  /// block's ByteFootprint matches a never-spilled block built from the same
  /// rows. `kind` as in ReadBatch.
  StatusOr<bool> ReadBatchInto(column::PartitionBlock* out,
                               uint8_t* kind = nullptr);

  Status Close();
  uint64_t bytes_read() const { return in_.bytes_read(); }

 private:
  /// Reads one record frame (kind + payload), validating length and
  /// checksum. Returns false cleanly at end of file.
  StatusOr<bool> ReadRecord(uint8_t* kind, std::string* payload);

  BufferedFileReader in_;
};

// Payload codecs, exposed for tests and for embedding records in other
// containers. AppendField/ParseField implement the recursive tagged field
// encoding shared by both record kinds.
void AppendField(const Field& f, std::string* out);
void AppendRowBatchPayload(const std::vector<Row>& rows, std::string* out);
void AppendBlockPayload(const column::PartitionBlock& block, std::string* out);
Status ParseField(const char* data, size_t size, size_t* pos, Field* out);
Status ParseRecordPayload(uint8_t kind, const std::string& payload,
                          std::vector<Row>* out);

}  // namespace serde
}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_SERDE_H_
