#include "runtime/stage_pipeline.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace trance {
namespace runtime {

namespace detail {

Status FinishStage(Cluster* cluster, StageStats stage, Dataset* result,
                   const std::string& name,
                   std::vector<uint64_t> part_bytes) {
  stage.rows_out = result->NumRows();
  if (part_bytes.empty()) {
    part_bytes = result->PartitionBytes(cluster->num_threads());
  }
  for (uint64_t b : part_bytes) {
    if (b > stage.mem_high_water_bytes) stage.mem_high_water_bytes = b;
  }
  // Out-of-core fallback: partitions whose output footprint crosses the
  // spill threshold are written to disk runs and streamed back (identical
  // row sequence — see runtime/spill.h), turning what the memory check below
  // would fail into a slow-but-correct stage. Driver-side, in partition
  // order, so spill counters and events are thread-count-invariant; the
  // recorded peak bytes are untouched, keeping mem_high_water /
  // peak_partition_bytes bit-identical to an uncapped run.
  Status spill_status = Status::OK();
  std::vector<uint8_t> spilled(part_bytes.size(), 0);
  bool any_spilled = false;
  if (cluster->spill_enabled()) {
    uint64_t threshold = std::min(cluster->spill_threshold_bytes(),
                                  cluster->config().partition_memory_cap);
    spill::SpillCounters c;
    for (size_t p = 0; p < part_bytes.size(); ++p) {
      if (part_bytes[p] <= threshold) continue;
      spill::SpillCounters pc;
      // Residence-preserving: block partitions round-trip as columnar serde
      // records (no disk-side rowification) and come back block-resident.
      spill_status =
          result->store.block_resident()
              ? cluster->spill_manager()->SpillAndRestoreBlock(
                    cluster->current_job_id(), name, p, result->schema,
                    &result->store.block(p), &pc)
              : cluster->spill_manager()->SpillAndRestoreRows(
                    cluster->current_job_id(), name, p,
                    &result->store.rows(p), &pc);
      if (!spill_status.ok()) break;
      spilled[p] = 1;
      any_spilled = true;
      c += pc;
      obs::EventLog& log = obs::GlobalEventLog();
      if (log.enabled()) {
        obs::Event(&log, "spill")
            .U64("job", cluster->current_job_id())
            .Str("op", name)
            .U64("partition", p)
            .U64("partition_bytes", part_bytes[p])
            .U64("bytes_written", pc.bytes_written)
            .U64("bytes_read", pc.bytes_read)
            .U64("runs", pc.runs)
            .U64("merge_passes", pc.merge_passes)
            .U64("rowify_avoided", pc.rowify_avoided)
            .Emit();
      }
    }
    stage.spill_bytes_written += c.bytes_written;
    stage.spill_bytes_read += c.bytes_read;
    stage.spill_runs += c.runs;
    stage.spill_merge_passes += c.merge_passes;
    stage.spill_rowify_avoided += c.rowify_avoided;
  }
  cluster->RecordStage(std::move(stage));
  TRANCE_RETURN_NOT_OK(spill_status);
  return cluster->CheckMemoryBytes(part_bytes, name,
                                   any_spilled ? &spilled : nullptr);
}

}  // namespace detail

namespace {

/// Whether the standalone form of this transform charges its emitted rows to
/// the work meter (filter and add-index historically charge input only /
/// nothing; the others charge input + output).
bool ChargesEmitted(RowTransform::Kind k) {
  switch (k) {
    case RowTransform::Kind::kMap:
    case RowTransform::Kind::kFlatMap:
    case RowTransform::Kind::kUnnest:
    case RowTransform::Kind::kOuterUnnest:
      return true;
    case RowTransform::Kind::kFilter:
    case RowTransform::Kind::kAddIndex:
      return false;
  }
  return false;
}

}  // namespace

RowTransform RowTransform::Map(std::string op, MapFn fn) {
  RowTransform t;
  t.kind = Kind::kMap;
  t.op = std::move(op);
  t.map = std::move(fn);
  return t;
}

RowTransform RowTransform::Filter(std::string op, PredFn fn) {
  RowTransform t;
  t.kind = Kind::kFilter;
  t.op = std::move(op);
  t.pred = std::move(fn);
  return t;
}

RowTransform RowTransform::FlatMap(std::string op, FlatMapFn fn) {
  RowTransform t;
  t.kind = Kind::kFlatMap;
  t.op = std::move(op);
  t.flat_map = std::move(fn);
  return t;
}

RowTransform RowTransform::Unnest(std::string op, int bag_col) {
  RowTransform t;
  t.kind = Kind::kUnnest;
  t.op = std::move(op);
  t.bag_col = bag_col;
  return t;
}

RowTransform RowTransform::OuterUnnest(std::string op, int bag_col,
                                       bool with_id, size_t inner_width) {
  RowTransform t;
  t.kind = Kind::kOuterUnnest;
  t.op = std::move(op);
  t.bag_col = bag_col;
  t.with_id = with_id;
  t.inner_width = inner_width;
  return t;
}

RowTransform RowTransform::AddIndex(std::string op) {
  RowTransform t;
  t.kind = Kind::kAddIndex;
  t.op = std::move(op);
  return t;
}

StatusOr<Dataset> RunStagePipeline(Cluster* cluster, const Dataset& in,
                                   Schema out_schema,
                                   const std::vector<RowTransform>& chain,
                                   Partitioning out_partitioning,
                                   const std::string& stage_name) {
  TRANCE_CHECK(!chain.empty(), "RunStagePipeline: empty chain");
  const size_t len = chain.size();

  // Work-charge policy. An unfused pipeline would charge every transform's
  // input; the fused stage reads the input once and emits the final rows
  // once, so it charges exactly those two walks (preserving the standalone
  // operators' historical accounting for single-transform chains). Bytes the
  // unfused pipeline would have materialized in between are tracked
  // separately as intermediate_bytes_avoided.
  bool charge_input = false;
  for (const auto& t : chain) {
    if (t.kind != RowTransform::Kind::kAddIndex) charge_input = true;
  }
  const bool charge_final = ChargesEmitted(chain.back().kind);
  const bool track_work = charge_input || charge_final;

  const bool columnar = cluster->columnar_enabled();

  Dataset out;
  out.schema = std::move(out_schema);
  const size_t nparts = in.NumPartitions();
  if (columnar) {
    out.store.InitBlocks(nparts, out.schema);
  } else {
    out.store.InitRows(nparts);
  }
  out.partitioning = std::move(out_partitioning);

  // Per-partition accumulator slots, merged in partition order after the
  // barrier (bit-identical stats at any thread count).
  std::vector<uint64_t> work(nparts, 0);
  std::vector<uint64_t> rows_in(nparts, 0);
  std::vector<uint64_t> out_bytes(nparts, 0);
  std::vector<uint64_t> avoided(nparts, 0);
  std::vector<uint64_t> col_bytes(nparts, 0);
  std::vector<std::vector<uint64_t>> transform_rows(
      nparts, std::vector<uint64_t>(len, 0));

  // Columnar mode scans the (typically block-resident) input and appends
  // emitted rows straight into the output partition's resident block — no
  // pack/unpack round-trip on either side. Blocks are lossless, and all
  // work/byte charges are computed from the identical Field values, so every
  // pre-existing stat matches the row path bit-for-bit; only the new
  // columnar_bytes counter observes the mode (the per-row reads feeding the
  // chain are transient, so they do not count as conversions — see
  // column_to_row_conversions in docs/METRICS.md).

  auto task = [&](size_t p) {
    // Per-partition id counters reproduce the standalone operators' uid
    // scheme exactly: ids depend only on the partition and the row order,
    // both of which fusion preserves (and they live inside the task, so a
    // recovery re-execution restarts them from zero).
    std::vector<int64_t> uid(len, 0);
    std::vector<uint64_t>& t_rows = transform_rows[p];

    std::function<void(size_t, const Row&)> feed = [&](size_t i,
                                                       const Row& row) {
      const RowTransform& t = chain[i];
      auto emit = [&](Row r) {
        ++t_rows[i];
        if (i + 1 == len) {
          uint64_t sz = RowDeepSize(r);
          out_bytes[p] += sz;
          if (charge_final) work[p] += sz;
          if (columnar) {
            out.store.block(p).AppendRow(r);
          } else {
            out.store.rows(p).push_back(std::move(r));
          }
        } else {
          avoided[p] += RowDeepSize(r);
          feed(i + 1, r);
        }
      };
      switch (t.kind) {
        case RowTransform::Kind::kMap:
          emit(t.map(row));
          break;
        case RowTransform::Kind::kFilter:
          if (t.pred(row)) emit(row);
          break;
        case RowTransform::Kind::kFlatMap: {
          std::vector<Row> buf;
          t.flat_map(row, &buf);
          for (auto& r : buf) emit(std::move(r));
          break;
        }
        case RowTransform::Kind::kUnnest: {
          const Field& bag = row.fields[static_cast<size_t>(t.bag_col)];
          if (!bag.is_bag() || bag.AsBag() == nullptr) break;
          for (const auto& inner : *bag.AsBag()) {
            Row r;
            r.fields.reserve(row.fields.size() - 1 + inner.fields.size());
            for (size_t c = 0; c < row.fields.size(); ++c) {
              if (static_cast<int>(c) == t.bag_col) continue;
              r.fields.push_back(row.fields[c]);
            }
            for (const auto& f : inner.fields) r.fields.push_back(f);
            emit(std::move(r));
          }
          break;
        }
        case RowTransform::Kind::kOuterUnnest: {
          int64_t u = (static_cast<int64_t>(p) << 40) | uid[i]++;
          const Field& bag = row.fields[static_cast<size_t>(t.bag_col)];
          auto emit_inner = [&](const Row* inner) {
            Row r;
            r.fields.reserve((t.with_id ? 1 : 0) + row.fields.size() - 1 +
                             t.inner_width);
            if (t.with_id) r.fields.push_back(Field::Int(u));
            for (size_t c = 0; c < row.fields.size(); ++c) {
              if (static_cast<int>(c) == t.bag_col) continue;
              r.fields.push_back(row.fields[c]);
            }
            if (inner != nullptr) {
              for (const auto& f : inner->fields) r.fields.push_back(f);
            } else {
              for (size_t k = 0; k < t.inner_width; ++k) {
                r.fields.push_back(Field::Null());
              }
            }
            emit(std::move(r));
          };
          if (!bag.is_bag() || bag.AsBag() == nullptr || bag.AsBag()->empty()) {
            emit_inner(nullptr);
          } else {
            for (const auto& inner : *bag.AsBag()) emit_inner(&inner);
          }
          break;
        }
        case RowTransform::Kind::kAddIndex: {
          Row r = row;
          r.fields.push_back(
              Field::Int((static_cast<int64_t>(p) << 40) | uid[i]++));
          emit(std::move(r));
          break;
        }
      }
    };

    rows_in[p] = in.store.RowCount(p);
    if (in.store.block_resident()) {
      const column::PartitionBlock& in_block = in.store.block(p);
      const size_t n = in_block.NumRows();
      for (size_t i = 0; i < n; ++i) {
        Row row = in_block.RowAt(i);  // transient: feeds the chain, then dies
        if (charge_input) work[p] += RowDeepSize(row);
        feed(0, row);
      }
    } else {
      const std::vector<Row>& in_rows = in.store.rows(p);
      for (const auto& row : in_rows) {
        if (charge_input) work[p] += RowDeepSize(row);
        feed(0, row);
      }
    }
    if (columnar) col_bytes[p] += out.store.block(p).ByteFootprint();
  };

  StageStats stage;
  stage.op = stage_name;
  // Injected crash faults discard the partition's accumulator slots; the
  // retry recomputes them from the input partition, which the chain never
  // mutates.
  TRANCE_RETURN_NOT_OK(cluster->RunRecoverableTasks(
      stage_name, nparts, &stage, task, [&](size_t p) {
        out.store.Clear(p);
        work[p] = 0;
        rows_in[p] = 0;
        out_bytes[p] = 0;
        avoided[p] = 0;
        col_bytes[p] = 0;
        transform_rows[p].assign(len, 0);
      }));

  // Pre-set attribution to the chain's last plan node (RecordStage falls
  // back to the cluster scope stack only when this stays empty).
  stage.scope = chain.back().scope;
  for (uint64_t n : rows_in) stage.rows_in += n;
  if (track_work) {
    for (uint64_t w : work) {
      stage.total_work_bytes += w;
      if (w > stage.max_partition_work_bytes) {
        stage.max_partition_work_bytes = w;
      }
    }
    stage.partition_work_bytes = std::move(work);
  }
  for (uint64_t b : avoided) stage.intermediate_bytes_avoided += b;
  for (uint64_t b : col_bytes) stage.columnar_bytes += b;
  if (len > 1) {
    stage.fused_transforms.resize(len);
    for (size_t i = 0; i < len; ++i) {
      stage.fused_transforms[i].op = chain[i].op;
      stage.fused_transforms[i].scope = chain[i].scope;
      for (size_t p = 0; p < nparts; ++p) {
        stage.fused_transforms[i].rows_out += transform_rows[p][i];
      }
    }
    obs::MetricRegistry& metrics = cluster->metrics();
    metrics
        .GetCounter("trance_fused_stages_total",
                    "stages that ran a fused chain of narrow transforms")
        ->Increment();
    metrics
        .GetCounter("trance_intermediate_bytes_avoided_total",
                    "bytes fusion kept from materializing between transforms")
        ->Add(stage.intermediate_bytes_avoided);
    metrics
        .GetHistogram("trance_fused_chain_length",
                      "narrow transforms per fused stage",
                      {1.0, 2.0, 3.0, 4.0, 6.0, 8.0})
        ->Observe(static_cast<double>(len));
  }
  TRANCE_RETURN_NOT_OK(detail::FinishStage(cluster, std::move(stage), &out,
                                           stage_name, std::move(out_bytes)));
  return out;
}

}  // namespace runtime
}  // namespace trance
