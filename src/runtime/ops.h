// Bulk operators over partitioned datasets — the physical algebra the plan
// language lowers to. Every operator records a StageStats on the cluster and
// enforces per-partition memory caps (ResourceExhausted == the paper's FAIL).
//
// Shuffle accounting is exact: a row contributes its DeepSize to
// shuffle_bytes only when it actually moves to a different partition, so an
// input that already carries the right partitioning guarantee shuffles
// nothing — mirroring how Spark partitioners avoid data movement (Section 3).
#ifndef TRANCE_RUNTIME_OPS_H_
#define TRANCE_RUNTIME_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "runtime/cluster.h"
#include "runtime/dataset.h"
#include "runtime/stage_pipeline.h"
#include "util/status.h"

namespace trance {
namespace runtime {

// MapFn / FlatMapFn / PredFn live in runtime/stage_pipeline.h: the narrow
// operators below are single-transform chains of the fused-stage runner, so
// the fused and standalone paths share one implementation.

enum class JoinType { kInner, kLeftOuter };

/// Creates a dataset from local rows, distributed round-robin (no
/// partitioning guarantee — like a freshly read input).
StatusOr<Dataset> Source(Cluster* cluster, Schema schema,
                         std::vector<Row> rows, const std::string& name);

/// Creates a dataset partitioned by `key_cols` (pre-partitioned input, e.g.
/// the materialized output of a previous query step).
StatusOr<Dataset> SourcePartitioned(Cluster* cluster, Schema schema,
                                    std::vector<Row> rows,
                                    std::vector<int> key_cols,
                                    const std::string& name);

/// Row-wise map. `preserves_partitioning` keeps the input guarantee (caller
/// asserts the key columns survive at the same indexes).
StatusOr<Dataset> MapRows(Cluster* cluster, const Dataset& in,
                          Schema out_schema, const MapFn& fn,
                          const std::string& name,
                          bool preserves_partitioning = false,
                          Partitioning out_partitioning = Partitioning::None());

StatusOr<Dataset> FilterRows(Cluster* cluster, const Dataset& in,
                             const PredFn& pred, const std::string& name);

StatusOr<Dataset> FlatMapRows(Cluster* cluster, const Dataset& in,
                              Schema out_schema, const FlatMapFn& fn,
                              const std::string& name);

/// Hash-shuffles `in` on `key_cols`. No-op (zero movement) when the guarantee
/// already holds.
StatusOr<Dataset> Repartition(Cluster* cluster, const Dataset& in,
                              std::vector<int> key_cols,
                              const std::string& name);

/// Shuffle hash join. Output columns: left columns then right columns
/// (right-side name collisions suffixed "__r"). Left-outer NULL-pads right
/// columns. Output is hash-partitioned on the left keys.
StatusOr<Dataset> HashJoin(Cluster* cluster, const Dataset& left,
                           const Dataset& right, std::vector<int> left_keys,
                           std::vector<int> right_keys, JoinType type,
                           const std::string& name);

/// Broadcast join: replicates `right` to every partition (its bytes count
/// num_partitions times toward the shuffle) and leaves `left` in place. Used
/// by the skew-aware operators on heavy keys.
StatusOr<Dataset> BroadcastJoin(Cluster* cluster, const Dataset& left,
                                const Dataset& right,
                                std::vector<int> left_keys,
                                std::vector<int> right_keys, JoinType type,
                                const std::string& name);

/// Nest (Gamma-union): groups on `key_cols` and collects the `value_cols`
/// projection of each row into a bag column `bag_col_name`.
///
/// NULL-to-empty-bag cast (the plan language's nest semantics for outer
/// operators): a row marking an outer miss contributes nothing to its
/// group's bag (a key with only misses keeps an *empty* bag). A miss is a
/// row whose `indicator_cols` are all NULL; when `indicator_cols` is empty,
/// the fallback rule is "all non-bag value columns NULL" (bag-valued columns
/// are never NULL — an empty inner bag does not by itself signal a miss).
StatusOr<Dataset> NestGroup(Cluster* cluster, const Dataset& in,
                            std::vector<int> key_cols,
                            std::vector<int> value_cols,
                            const std::string& bag_col_name,
                            const std::string& name,
                            std::vector<int> indicator_cols = {});

/// Extends each row with a unique int64 id column (prepended is not needed;
/// the id is appended). Partition-local, preserves partitioning.
StatusOr<Dataset> AddIndexColumn(Cluster* cluster, const Dataset& in,
                                 const std::string& id_col_name,
                                 const std::string& name);

/// Sum aggregate (Gamma-plus): groups on `key_cols`, sums `value_cols`.
/// NULL handling implements the plan language's outer-operator cast: a row
/// whose value columns are ALL NULL marks an outer miss — it creates its
/// group but contributes nothing, and a group with no real contribution
/// emits NULL values (so a downstream Gamma-union casts it to an empty bag).
/// A NULL among otherwise non-NULL values counts as 0.
/// `map_side_combine` pre-aggregates before the shuffle —
/// the mechanism that makes pushed aggregation cut shuffle volume.
StatusOr<Dataset> SumAggregate(Cluster* cluster, const Dataset& in,
                               std::vector<int> key_cols,
                               std::vector<int> value_cols,
                               bool map_side_combine, const std::string& name);

/// Output schema of Unnest/OuterUnnest: the id column (when `id_col_name` is
/// non-empty) then the outer columns minus the bag column, then the bag's
/// element columns (collisions suffixed "__u"). Exposed so the fused-stage
/// builder in exec/lowering can derive chain schemas without materializing.
StatusOr<Schema> UnnestedSchema(const Schema& in, int bag_col,
                                const std::string& id_col_name);

/// Unnest (mu): pairs each row with each element of its bag column, dropping
/// the bag column. Rows with empty bags disappear. Purely partition-local.
StatusOr<Dataset> Unnest(Cluster* cluster, const Dataset& in, int bag_col,
                         const std::string& name);

/// Outer-unnest (mu-bar): like Unnest but first extends each outer row with a
/// unique id column `id_col_name` (prepended), and emits one NULL-padded row
/// for an empty bag.
StatusOr<Dataset> OuterUnnest(Cluster* cluster, const Dataset& in, int bag_col,
                              const std::string& id_col_name,
                              const std::string& name);

/// Bag union of two datasets with identical schemas.
StatusOr<Dataset> UnionAll(Cluster* cluster, const Dataset& a,
                           const Dataset& b, const std::string& name);

/// Dedup: multiplicities to one (full-row key). Requires flat rows.
StatusOr<Dataset> Distinct(Cluster* cluster, const Dataset& in,
                           const std::string& name);

/// Cogroup (the join+nest fusion of Section 3): for each left row, attaches
/// the bag of `right_value_cols` projections of matching right rows as
/// `bag_col_name`. Avoids materializing the flattened join result.
StatusOr<Dataset> CoGroup(Cluster* cluster, const Dataset& left,
                          const Dataset& right, std::vector<int> left_keys,
                          std::vector<int> right_keys,
                          std::vector<int> right_value_cols,
                          const std::string& bag_col_name,
                          const std::string& name);

/// Gathers at most `limit` rows to the driver (result inspection).
std::vector<Row> Take(const Dataset& in, size_t limit);

}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_OPS_H_
