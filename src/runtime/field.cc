#include "runtime/field.h"

#include <algorithm>

#include "util/strings.h"

namespace trance {
namespace runtime {

namespace {
int VariantRank(const Field& f) {
  if (f.is_null()) return 0;
  if (f.is_int()) return 1;
  if (f.is_real()) return 2;
  if (f.is_string()) return 3;
  if (f.is_bool()) return 4;
  if (f.is_label()) return 5;
  return 6;
}
}  // namespace

uint64_t Field::Hash() const {
  if (is_null()) return 0x9E11;
  if (is_int()) return Mix64(static_cast<uint64_t>(AsInt()) ^ 0x11);
  if (is_real()) return HashDouble(AsReal());
  if (is_string()) return HashString(AsString());
  if (is_bool()) return Mix64(AsBool() ? 0xB001u : 0xB000u);
  if (is_label()) return AsLabel() == nullptr ? 0x1AB : AsLabel()->Hash();
  // Bag: order-insensitive.
  uint64_t h = 0xBA6;
  if (AsBag() != nullptr) {
    for (const auto& r : *AsBag()) h += Mix64(RowHash(r));
  }
  return Mix64(h);
}

uint64_t Field::DeepSize() const {
  if (is_string()) return 32 + AsString().size();
  if (is_label()) {
    uint64_t s = 16;
    if (AsLabel() != nullptr) {
      for (const auto& [n, f] : AsLabel()->params) s += 8 + f.DeepSize();
    }
    return s;
  }
  if (is_bag()) {
    uint64_t s = 32;
    if (AsBag() != nullptr) {
      for (const auto& r : *AsBag()) s += RowDeepSize(r);
    }
    return s;
  }
  return 8;
}

std::string Field::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_real()) return FormatDouble(AsReal(), 4);
  if (is_string()) return "\"" + AsString() + "\"";
  if (is_bool()) return AsBool() ? "true" : "false";
  if (is_label()) {
    if (AsLabel() == nullptr) return "Label()";
    std::vector<std::string> parts;
    for (const auto& [n, f] : AsLabel()->params) {
      parts.push_back(n + "=" + f.ToString());
    }
    return "Label(" + Join(parts, ",") + ")";
  }
  std::vector<std::string> parts;
  if (AsBag() != nullptr) {
    for (const auto& r : *AsBag()) parts.push_back(RowToString(r));
  }
  return "{" + Join(parts, ", ") + "}";
}

bool operator==(const Field& a, const Field& b) {
  if (VariantRank(a) != VariantRank(b)) {
    if ((a.is_int() || a.is_real()) && (b.is_int() || b.is_real())) {
      return a.AsNumber() == b.AsNumber();
    }
    return false;
  }
  if (a.is_null()) return true;
  if (a.is_int()) return a.AsInt() == b.AsInt();
  if (a.is_real()) return a.AsReal() == b.AsReal();
  if (a.is_string()) return a.AsString() == b.AsString();
  if (a.is_bool()) return a.AsBool() == b.AsBool();
  if (a.is_label()) {
    if (a.AsLabel() == b.AsLabel()) return true;
    if (a.AsLabel() == nullptr || b.AsLabel() == nullptr) return false;
    return *a.AsLabel() == *b.AsLabel();
  }
  // Bags: multiset equality via canonical sort.
  const auto& ba = a.AsBag();
  const auto& bb = b.AsBag();
  if (ba == bb) return true;
  if (ba == nullptr || bb == nullptr) return false;
  if (ba->size() != bb->size()) return false;
  std::vector<Row> sa = *ba, sb = *bb;
  std::sort(sa.begin(), sa.end(), RowLess);
  std::sort(sb.begin(), sb.end(), RowLess);
  for (size_t i = 0; i < sa.size(); ++i) {
    if (!RowEquals(sa[i], sb[i])) return false;
  }
  return true;
}

bool FieldLess(const Field& a, const Field& b) {
  int ra = VariantRank(a), rb = VariantRank(b);
  if (ra != rb) {
    if ((a.is_int() || a.is_real()) && (b.is_int() || b.is_real())) {
      return a.AsNumber() < b.AsNumber();
    }
    return ra < rb;
  }
  if (a.is_null()) return false;
  if (a.is_int()) return a.AsInt() < b.AsInt();
  if (a.is_real()) return a.AsReal() < b.AsReal();
  if (a.is_string()) return a.AsString() < b.AsString();
  if (a.is_bool()) return a.AsBool() < b.AsBool();
  if (a.is_label()) {
    const auto& pa = a.AsLabel() == nullptr
                         ? std::vector<std::pair<std::string, Field>>{}
                         : a.AsLabel()->params;
    const auto& pb = b.AsLabel() == nullptr
                         ? std::vector<std::pair<std::string, Field>>{}
                         : b.AsLabel()->params;
    size_t n = std::min(pa.size(), pb.size());
    for (size_t i = 0; i < n; ++i) {
      if (pa[i].first != pb[i].first) return pa[i].first < pb[i].first;
      if (FieldLess(pa[i].second, pb[i].second)) return true;
      if (FieldLess(pb[i].second, pa[i].second)) return false;
    }
    return pa.size() < pb.size();
  }
  // Bags: compare canonically sorted contents.
  std::vector<Row> sa = a.AsBag() == nullptr ? std::vector<Row>{} : *a.AsBag();
  std::vector<Row> sb = b.AsBag() == nullptr ? std::vector<Row>{} : *b.AsBag();
  std::sort(sa.begin(), sa.end(), RowLess);
  std::sort(sb.begin(), sb.end(), RowLess);
  size_t n = std::min(sa.size(), sb.size());
  for (size_t i = 0; i < n; ++i) {
    if (RowLess(sa[i], sb[i])) return true;
    if (RowLess(sb[i], sa[i])) return false;
  }
  return sa.size() < sb.size();
}

uint64_t RtLabel::Hash() const {
  uint64_t h = 0x1AB;
  for (const auto& [n, f] : params) {
    h = HashCombine(h, HashString(n));
    h = HashCombine(h, f.Hash());
  }
  return h;
}

bool operator==(const RtLabel& a, const RtLabel& b) {
  if (a.params.size() != b.params.size()) return false;
  for (size_t i = 0; i < a.params.size(); ++i) {
    if (a.params[i].first != b.params[i].first) return false;
    if (!(a.params[i].second == b.params[i].second)) return false;
  }
  return true;
}

Field MakeLabel(std::vector<std::pair<std::string, Field>> params) {
  if (params.size() == 1 && params[0].second.is_label()) {
    return params[0].second;
  }
  auto l = std::make_shared<RtLabel>();
  l->params = std::move(params);
  return Field::Label(std::move(l));
}

uint64_t RowHash(const Row& r) {
  uint64_t h = 0x5EED;
  for (const auto& f : r.fields) h = HashCombine(h, f.Hash());
  return h;
}

uint64_t RowHashOn(const Row& r, const std::vector<int>& cols) {
  // Commutative combine (sum of independently finalized per-column hashes):
  // hashing on a permutation of the same columns places every row on the
  // same partition, which is what lets Partitioning::IsHashOn accept
  // permuted key lists without a re-shuffle.
  uint64_t h = 0x5EED;
  for (int c : cols) {
    TRANCE_CHECK(c >= 0 && static_cast<size_t>(c) < r.fields.size(),
                 "RowHashOn: bad column");
    h += SplitMix64(r.fields[static_cast<size_t>(c)].Hash());
  }
  return SplitMix64(h);
}

bool RowEquals(const Row& a, const Row& b) {
  if (a.fields.size() != b.fields.size()) return false;
  for (size_t i = 0; i < a.fields.size(); ++i) {
    if (!(a.fields[i] == b.fields[i])) return false;
  }
  return true;
}

bool RowEqualsOn(const Row& a, const Row& b, const std::vector<int>& cols_a,
                 const std::vector<int>& cols_b) {
  TRANCE_CHECK(cols_a.size() == cols_b.size(), "RowEqualsOn: arity mismatch");
  for (size_t i = 0; i < cols_a.size(); ++i) {
    if (!(a.fields[static_cast<size_t>(cols_a[i])] ==
          b.fields[static_cast<size_t>(cols_b[i])])) {
      return false;
    }
  }
  return true;
}

bool RowLess(const Row& a, const Row& b) {
  size_t n = std::min(a.fields.size(), b.fields.size());
  for (size_t i = 0; i < n; ++i) {
    if (FieldLess(a.fields[i], b.fields[i])) return true;
    if (FieldLess(b.fields[i], a.fields[i])) return false;
  }
  return a.fields.size() < b.fields.size();
}

uint64_t RowDeepSize(const Row& r) {
  uint64_t s = 8;
  for (const auto& f : r.fields) s += f.DeepSize();
  return s;
}

std::string RowToString(const Row& r) {
  std::vector<std::string> parts;
  parts.reserve(r.fields.size());
  for (const auto& f : r.fields) parts.push_back(f.ToString());
  return "(" + Join(parts, ", ") + ")";
}

KeyView ExtractKey(const Row& r, const std::vector<int>& cols) {
  KeyView k;
  k.fields.reserve(cols.size());
  for (int c : cols) {
    TRANCE_CHECK(c >= 0 && static_cast<size_t>(c) < r.fields.size(),
                 "ExtractKey: bad column");
    k.fields.push_back(r.fields[static_cast<size_t>(c)]);
  }
  return k;
}

}  // namespace runtime
}  // namespace trance
