// A Dataset is a partitioned distributed collection of rows, with the
// partitioning guarantee tracked the way Section 3 describes Spark
// partitioners: key-based (all rows with the same key on the same partition),
// inherited / preserved / dropped / redefined by operators.
#ifndef TRANCE_RUNTIME_DATASET_H_
#define TRANCE_RUNTIME_DATASET_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "runtime/column.h"
#include "runtime/field.h"
#include "runtime/schema.h"
#include "util/thread_pool.h"

namespace trance {
namespace runtime {

/// Partitioning guarantee of a dataset.
struct Partitioning {
  enum class Kind {
    kNone,  // no guarantee (fresh input or guarantee-dropping operator)
    kHash,  // hash-partitioned on `key_cols`
  };
  Kind kind = Kind::kNone;
  std::vector<int> key_cols;

  static Partitioning None() { return {}; }
  static Partitioning Hash(std::vector<int> cols) {
    return {Kind::kHash, std::move(cols)};
  }
  /// True when the guarantee covers hashing on `cols` in ANY order: the
  /// partitioner (RowHashOn) combines per-column hashes commutatively, so a
  /// dataset hashed on {a,b} places every row exactly where hashing on
  /// {b,a} would — a permuted key list needs no re-shuffle.
  ///
  /// This runs once per keyed operator, so the common short-key case (≤4
  /// columns) compares occurrence counts in place — no allocation, no sort.
  /// Counting (rather than membership tests) keeps duplicate-bearing lists
  /// correct: {1,1,2} is not a permutation of {1,2,2}.
  bool IsHashOn(const std::vector<int>& cols) const {
    if (kind != Kind::kHash || key_cols.size() != cols.size()) return false;
    if (key_cols == cols) return true;
    size_t n = cols.size();
    if (n <= 4) {
      for (size_t i = 0; i < n; ++i) {
        int needle = cols[i];
        int in_cols = 0, in_keys = 0;
        for (size_t j = 0; j < n; ++j) {
          in_cols += cols[j] == needle;
          in_keys += key_cols[j] == needle;
        }
        if (in_cols != in_keys) return false;
      }
      return true;
    }
    std::vector<int> a = key_cols;
    std::vector<int> b = cols;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return a == b;
  }
};

struct Dataset {
  Schema schema;
  std::vector<std::vector<Row>> partitions;
  Partitioning partitioning;

  size_t NumRows() const {
    size_t n = 0;
    for (const auto& p : partitions) n += p.size();
    return n;
  }
  /// Total deep-size footprint. The accounting walk recurses into nested
  /// bags and is a hot path; `num_threads > 1` sizes partitions
  /// concurrently (per-partition slots summed in partition order, so the
  /// result is identical for any thread count).
  uint64_t DeepSizeBytes(int num_threads = 1) const {
    uint64_t s = 0;
    for (uint64_t b : PartitionBytes(num_threads)) s += b;
    return s;
  }
  /// Byte footprint of each partition.
  std::vector<uint64_t> PartitionBytes(int num_threads = 1) const {
    std::vector<uint64_t> out(partitions.size(), 0);
    util::ParallelFor(num_threads, partitions.size(), [&](size_t i) {
      uint64_t s = 0;
      for (const auto& r : partitions[i]) s += RowDeepSize(r);
      out[i] = s;
    });
    return out;
  }
  /// All rows gathered into one vector, in partition order (tests / result
  /// collection / broadcast). Mirrors PartitionBytes: `num_threads > 1`
  /// copies partitions concurrently into pre-computed offsets, so the output
  /// is identical for any thread count.
  std::vector<Row> Collect(int num_threads = 1) const {
    std::vector<size_t> offsets(partitions.size() + 1, 0);
    for (size_t i = 0; i < partitions.size(); ++i) {
      offsets[i + 1] = offsets[i] + partitions[i].size();
    }
    std::vector<Row> out(offsets.back());
    util::ParallelFor(num_threads, partitions.size(), [&](size_t i) {
      std::copy(partitions[i].begin(), partitions[i].end(),
                out.begin() + static_cast<ptrdiff_t>(offsets[i]));
    });
    return out;
  }

  /// Columnar view of every partition (runtime/column.h blocks), built
  /// partition-parallel. Lossless: FromBlocks(ToBlocks()) reproduces the
  /// exact rows.
  std::vector<column::PartitionBlock> ToBlocks(int num_threads = 1) const {
    std::vector<column::PartitionBlock> out(partitions.size());
    util::ParallelFor(num_threads, partitions.size(), [&](size_t i) {
      out[i] = column::PartitionBlock::FromRows(schema, partitions[i]);
    });
    return out;
  }

  static Dataset FromBlocks(Schema schema,
                            const std::vector<column::PartitionBlock>& blocks,
                            Partitioning partitioning = Partitioning::None(),
                            int num_threads = 1) {
    Dataset d;
    d.schema = std::move(schema);
    d.partitioning = std::move(partitioning);
    d.partitions.resize(blocks.size());
    util::ParallelFor(num_threads, blocks.size(), [&](size_t i) {
      d.partitions[i] = blocks[i].ToRows();
    });
    return d;
  }
};

}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_DATASET_H_
