// A Dataset is a partitioned distributed collection of rows, with the
// partitioning guarantee tracked the way Section 3 describes Spark
// partitioners: key-based (all rows with the same key on the same partition),
// inherited / preserved / dropped / redefined by operators.
#ifndef TRANCE_RUNTIME_DATASET_H_
#define TRANCE_RUNTIME_DATASET_H_

#include <algorithm>
#include <vector>

#include "runtime/field.h"
#include "runtime/schema.h"
#include "util/thread_pool.h"

namespace trance {
namespace runtime {

/// Partitioning guarantee of a dataset.
struct Partitioning {
  enum class Kind {
    kNone,  // no guarantee (fresh input or guarantee-dropping operator)
    kHash,  // hash-partitioned on `key_cols`
  };
  Kind kind = Kind::kNone;
  std::vector<int> key_cols;

  static Partitioning None() { return {}; }
  static Partitioning Hash(std::vector<int> cols) {
    return {Kind::kHash, std::move(cols)};
  }
  /// True when the guarantee covers hashing on `cols` in ANY order: the
  /// partitioner (RowHashOn) combines per-column hashes commutatively, so a
  /// dataset hashed on {a,b} places every row exactly where hashing on
  /// {b,a} would — a permuted key list needs no re-shuffle.
  bool IsHashOn(const std::vector<int>& cols) const {
    if (kind != Kind::kHash || key_cols.size() != cols.size()) return false;
    if (key_cols == cols) return true;
    std::vector<int> a = key_cols;
    std::vector<int> b = cols;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return a == b;
  }
};

struct Dataset {
  Schema schema;
  std::vector<std::vector<Row>> partitions;
  Partitioning partitioning;

  size_t NumRows() const {
    size_t n = 0;
    for (const auto& p : partitions) n += p.size();
    return n;
  }
  /// Total deep-size footprint. The accounting walk recurses into nested
  /// bags and is a hot path; `num_threads > 1` sizes partitions
  /// concurrently (per-partition slots summed in partition order, so the
  /// result is identical for any thread count).
  uint64_t DeepSizeBytes(int num_threads = 1) const {
    uint64_t s = 0;
    for (uint64_t b : PartitionBytes(num_threads)) s += b;
    return s;
  }
  /// Byte footprint of each partition.
  std::vector<uint64_t> PartitionBytes(int num_threads = 1) const {
    std::vector<uint64_t> out(partitions.size(), 0);
    util::ParallelFor(num_threads, partitions.size(), [&](size_t i) {
      uint64_t s = 0;
      for (const auto& r : partitions[i]) s += RowDeepSize(r);
      out[i] = s;
    });
    return out;
  }
  /// All rows gathered into one vector (tests / result collection).
  std::vector<Row> Collect() const {
    std::vector<Row> out;
    out.reserve(NumRows());
    for (const auto& p : partitions) {
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }
};

}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_DATASET_H_
