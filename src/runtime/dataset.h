// A Dataset is a partitioned distributed collection of rows, with the
// partitioning guarantee tracked the way Section 3 describes Spark
// partitioners: key-based (all rows with the same key on the same partition),
// inherited / preserved / dropped / redefined by operators.
//
// Since the block-residence refactor a Dataset no longer commits to
// std::vector<Row> storage: its PartitionStore holds each partition either as
// a row vector (the historical representation, still used when
// ExecOptions::enable_columnar is off and on the legacy keyed path) or as a
// typed column::PartitionBlock (the resident representation of every
// columnar-mode operator output). Blocks are lossless — RowAt / RowBytesAt /
// HashRowOn observe the exact Field values a row vector would — so every
// consumer that sizes, hashes, or materializes rows sees bit-identical values
// in both residences.
#ifndef TRANCE_RUNTIME_DATASET_H_
#define TRANCE_RUNTIME_DATASET_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "runtime/column.h"
#include "runtime/field.h"
#include "runtime/schema.h"
#include "util/thread_pool.h"

namespace trance {
namespace runtime {

/// Partitioning guarantee of a dataset.
struct Partitioning {
  enum class Kind {
    kNone,  // no guarantee (fresh input or guarantee-dropping operator)
    kHash,  // hash-partitioned on `key_cols`
  };
  Kind kind = Kind::kNone;
  std::vector<int> key_cols;

  static Partitioning None() { return {}; }
  static Partitioning Hash(std::vector<int> cols) {
    return {Kind::kHash, std::move(cols)};
  }
  /// True when the guarantee covers hashing on `cols` in ANY order: the
  /// partitioner (RowHashOn) combines per-column hashes commutatively, so a
  /// dataset hashed on {a,b} places every row exactly where hashing on
  /// {b,a} would — a permuted key list needs no re-shuffle.
  ///
  /// This runs once per keyed operator, so the common short-key case (≤4
  /// columns) compares occurrence counts in place — no allocation, no sort.
  /// Counting (rather than membership tests) keeps duplicate-bearing lists
  /// correct: {1,1,2} is not a permutation of {1,2,2}.
  bool IsHashOn(const std::vector<int>& cols) const {
    if (kind != Kind::kHash || key_cols.size() != cols.size()) return false;
    if (key_cols == cols) return true;
    size_t n = cols.size();
    if (n <= 4) {
      for (size_t i = 0; i < n; ++i) {
        int needle = cols[i];
        int in_cols = 0, in_keys = 0;
        for (size_t j = 0; j < n; ++j) {
          in_cols += cols[j] == needle;
          in_keys += key_cols[j] == needle;
        }
        if (in_cols != in_keys) return false;
      }
      return true;
    }
    std::vector<int> a = key_cols;
    std::vector<int> b = cols;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return a == b;
  }
};

/// Partition storage in one of two residences: row vectors or typed columnar
/// blocks. Exactly one representation is populated at a time; the store never
/// holds both, so there is a single source of truth for every partition.
///
/// Row boundaries are explicit: MaterializeRows / AppendRowsTo / RowAt are
/// the only ways rows leave a block-resident store, which is what lets the
/// runtime count column_to_row_conversions at true representation boundaries
/// instead of per stage.
class PartitionStore {
 public:
  PartitionStore() = default;

  static PartitionStore OfRows(std::vector<std::vector<Row>> parts) {
    PartitionStore s;
    s.rows_ = std::move(parts);
    return s;
  }
  static PartitionStore OfBlocks(Schema schema,
                                 std::vector<column::PartitionBlock> blocks) {
    PartitionStore s;
    s.block_resident_ = true;
    s.schema_ = std::move(schema);
    s.blocks_ = std::move(blocks);
    return s;
  }

  /// Switches to row residence with `n` empty partitions.
  void InitRows(size_t n) {
    block_resident_ = false;
    blocks_.clear();
    rows_.assign(n, {});
  }
  /// Switches to block residence with `n` empty blocks typed by `schema`
  /// (kept for partition resets).
  void InitBlocks(size_t n, const Schema& schema) {
    block_resident_ = true;
    schema_ = schema;
    rows_.clear();
    blocks_.assign(n, column::PartitionBlock(schema));
  }

  bool block_resident() const { return block_resident_; }
  size_t NumPartitions() const {
    return block_resident_ ? blocks_.size() : rows_.size();
  }
  /// The schema blocks were typed with (block residence only).
  const Schema& block_schema() const { return schema_; }

  // Residence-specific accessors; valid only in the matching residence.
  std::vector<Row>& rows(size_t p) { return rows_[p]; }
  const std::vector<Row>& rows(size_t p) const { return rows_[p]; }
  column::PartitionBlock& block(size_t p) { return blocks_[p]; }
  const column::PartitionBlock& block(size_t p) const { return blocks_[p]; }
  std::vector<column::PartitionBlock>& blocks() { return blocks_; }

  size_t RowCount(size_t p) const {
    return block_resident_ ? blocks_[p].NumRows() : rows_[p].size();
  }
  size_t NumRows() const {
    size_t n = 0;
    for (size_t p = 0; p < NumPartitions(); ++p) n += RowCount(p);
    return n;
  }
  /// Materializes row i of partition p (transient read; not a counted
  /// representation boundary).
  Row RowAt(size_t p, size_t i) const {
    return block_resident_ ? blocks_[p].RowAt(i) : rows_[p][i];
  }
  /// Field-accounting bytes of partition p: identical in both residences
  /// (PartitionBlock::TotalRowBytes == sum of RowDeepSize).
  uint64_t PartitionRowBytes(size_t p) const {
    if (block_resident_) return blocks_[p].TotalRowBytes();
    uint64_t s = 0;
    for (const auto& r : rows_[p]) s += RowDeepSize(r);
    return s;
  }
  /// Empties partition p in place, keeping its residence (a block partition
  /// resets to a fresh schema-typed block — the recovery/spill reset).
  void Clear(size_t p) {
    if (block_resident_) {
      blocks_[p] = column::PartitionBlock(schema_);
    } else {
      rows_[p].clear();
    }
  }
  void AppendRowsTo(size_t p, std::vector<Row>* out) const {
    if (block_resident_) {
      blocks_[p].AppendRowsTo(out);
    } else {
      out->insert(out->end(), rows_[p].begin(), rows_[p].end());
    }
  }
  std::vector<Row> MaterializeRows(size_t p) const {
    if (block_resident_) return blocks_[p].ToRows();
    return rows_[p];
  }

 private:
  bool block_resident_ = false;
  Schema schema_;  // block residence only; typed resets
  std::vector<std::vector<Row>> rows_;
  std::vector<column::PartitionBlock> blocks_;
};

struct Dataset {
  Schema schema;
  PartitionStore store;
  Partitioning partitioning;

  size_t NumPartitions() const { return store.NumPartitions(); }
  size_t PartitionRowCount(size_t p) const { return store.RowCount(p); }
  Row RowAt(size_t p, size_t i) const { return store.RowAt(p, i); }
  /// Partition p as a row vector (copy / materialization; tests and true row
  /// boundaries only).
  std::vector<Row> PartitionRows(size_t p) const {
    return store.MaterializeRows(p);
  }

  size_t NumRows() const { return store.NumRows(); }
  /// Total deep-size footprint. The accounting walk recurses into nested
  /// bags and is a hot path; `num_threads > 1` sizes partitions
  /// concurrently (per-partition slots summed in partition order, so the
  /// result is identical for any thread count).
  uint64_t DeepSizeBytes(int num_threads = 1) const {
    uint64_t s = 0;
    for (uint64_t b : PartitionBytes(num_threads)) s += b;
    return s;
  }
  /// Byte footprint of each partition. Block-resident partitions use the
  /// block's own accounting (TotalRowBytes, no row materialization); it is
  /// bit-identical to the RowDeepSize sum of the same rows.
  std::vector<uint64_t> PartitionBytes(int num_threads = 1) const {
    std::vector<uint64_t> out(store.NumPartitions(), 0);
    util::ParallelFor(num_threads, out.size(), [&](size_t i) {
      out[i] = store.PartitionRowBytes(i);
    });
    return out;
  }
  /// All rows gathered into one vector, in partition order (tests / result
  /// collection / broadcast — a true row boundary). Mirrors PartitionBytes:
  /// `num_threads > 1` copies partitions concurrently into pre-computed
  /// offsets, so the output is identical for any thread count.
  std::vector<Row> Collect(int num_threads = 1) const {
    const size_t nparts = store.NumPartitions();
    std::vector<size_t> offsets(nparts + 1, 0);
    for (size_t i = 0; i < nparts; ++i) {
      offsets[i + 1] = offsets[i] + store.RowCount(i);
    }
    std::vector<Row> out(offsets.back());
    util::ParallelFor(num_threads, nparts, [&](size_t i) {
      for (size_t r = 0; r < store.RowCount(i); ++r) {
        out[offsets[i] + r] = store.RowAt(i, r);
      }
    });
    return out;
  }

  /// Columnar view of every partition (runtime/column.h blocks), built
  /// partition-parallel. Lossless: FromBlocks(ToBlocks()) reproduces the
  /// exact rows. Block-resident partitions are repacked from their
  /// materialized rows so the result is append-constructed either way.
  std::vector<column::PartitionBlock> ToBlocks(int num_threads = 1) const {
    std::vector<column::PartitionBlock> out(store.NumPartitions());
    util::ParallelFor(num_threads, out.size(), [&](size_t i) {
      out[i] = column::PartitionBlock::FromRows(schema,
                                                store.MaterializeRows(i));
    });
    return out;
  }

  static Dataset FromBlocks(Schema schema,
                            const std::vector<column::PartitionBlock>& blocks,
                            Partitioning partitioning = Partitioning::None(),
                            int num_threads = 1) {
    Dataset d;
    d.schema = std::move(schema);
    d.partitioning = std::move(partitioning);
    d.store.InitRows(blocks.size());
    util::ParallelFor(num_threads, blocks.size(), [&](size_t i) {
      d.store.rows(i) = blocks[i].ToRows();
    });
    return d;
  }
};

}  // namespace runtime
}  // namespace trance

#endif  // TRANCE_RUNTIME_DATASET_H_
