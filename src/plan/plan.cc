#include "plan/plan.h"

namespace trance {
namespace plan {

#define MAKE(kind) std::shared_ptr<PlanNode>(new PlanNode(kind))

PlanPtr PlanNode::Scan(std::string relation) {
  auto n = MAKE(Kind::kScan);
  n->name_ = std::move(relation);
  return n;
}

PlanPtr PlanNode::Select(PlanPtr child, nrc::ExprPtr cond) {
  TRANCE_CHECK(child != nullptr && cond != nullptr, "Select(null)");
  auto n = MAKE(Kind::kSelect);
  n->children_ = {std::move(child)};
  n->cond_ = std::move(cond);
  return n;
}

PlanPtr PlanNode::OuterSelect(PlanPtr child, nrc::ExprPtr cond,
                              std::vector<std::string> keep_cols) {
  TRANCE_CHECK(child != nullptr && cond != nullptr, "OuterSelect(null)");
  auto n = MAKE(Kind::kOuterSelect);
  n->children_ = {std::move(child)};
  n->cond_ = std::move(cond);
  n->values_ = std::move(keep_cols);
  return n;
}

PlanPtr PlanNode::Project(PlanPtr child, std::vector<NamedColumnExpr> cols) {
  TRANCE_CHECK(child != nullptr, "Project(null)");
  auto n = MAKE(Kind::kProject);
  n->children_ = {std::move(child)};
  n->cols_ = std::move(cols);
  return n;
}

PlanPtr PlanNode::Extend(PlanPtr child, std::vector<NamedColumnExpr> cols) {
  TRANCE_CHECK(child != nullptr, "Extend(null)");
  auto n = MAKE(Kind::kExtend);
  n->children_ = {std::move(child)};
  n->cols_ = std::move(cols);
  return n;
}

PlanPtr PlanNode::Join(PlanPtr left, PlanPtr right,
                       std::vector<std::string> left_keys,
                       std::vector<std::string> right_keys, bool outer) {
  TRANCE_CHECK(left != nullptr && right != nullptr, "Join(null)");
  TRANCE_CHECK(left_keys.size() == right_keys.size(), "join key arity");
  auto n = MAKE(Kind::kJoin);
  n->children_ = {std::move(left), std::move(right)};
  n->left_keys_ = std::move(left_keys);
  n->right_keys_ = std::move(right_keys);
  n->outer_ = outer;
  return n;
}

PlanPtr PlanNode::Unnest(PlanPtr child, std::string bag_col, std::string alias,
                         bool outer, std::string id_attr) {
  TRANCE_CHECK(child != nullptr, "Unnest(null)");
  auto n = MAKE(Kind::kUnnest);
  n->children_ = {std::move(child)};
  n->bag_col_ = std::move(bag_col);
  n->alias_ = std::move(alias);
  n->outer_ = outer;
  n->alias2_ = std::move(id_attr);
  return n;
}

PlanPtr PlanNode::AddIndex(PlanPtr child, std::string id_attr) {
  TRANCE_CHECK(child != nullptr, "AddIndex(null)");
  auto n = MAKE(Kind::kAddIndex);
  n->children_ = {std::move(child)};
  n->name_ = std::move(id_attr);
  return n;
}

PlanPtr PlanNode::Nest(PlanPtr child, NestAgg agg,
                       std::vector<std::string> keys,
                       std::vector<std::string> values,
                       std::vector<std::string> value_names,
                       std::string out_attr, std::string indicator) {
  TRANCE_CHECK(child != nullptr, "Nest(null)");
  TRANCE_CHECK(values.size() == value_names.size(), "nest value arity");
  auto n = MAKE(Kind::kNest);
  n->children_ = {std::move(child)};
  n->agg_ = agg;
  n->left_keys_ = std::move(keys);
  n->values_ = std::move(values);
  n->value_names_ = std::move(value_names);
  n->name_ = std::move(out_attr);
  n->alias2_ = std::move(indicator);
  return n;
}

PlanPtr PlanNode::Dedup(PlanPtr child) {
  TRANCE_CHECK(child != nullptr, "Dedup(null)");
  auto n = MAKE(Kind::kDedup);
  n->children_ = {std::move(child)};
  return n;
}

PlanPtr PlanNode::UnionAll(PlanPtr a, PlanPtr b) {
  TRANCE_CHECK(a != nullptr && b != nullptr, "UnionAll(null)");
  auto n = MAKE(Kind::kUnionAll);
  n->children_ = {std::move(a), std::move(b)};
  return n;
}

PlanPtr PlanNode::CoGroup(PlanPtr left, PlanPtr right,
                          std::vector<std::string> left_keys,
                          std::vector<std::string> right_keys,
                          std::vector<std::string> values,
                          std::vector<std::string> value_names,
                          std::string out_attr) {
  TRANCE_CHECK(left != nullptr && right != nullptr, "CoGroup(null)");
  auto n = MAKE(Kind::kCoGroup);
  n->children_ = {std::move(left), std::move(right)};
  n->left_keys_ = std::move(left_keys);
  n->right_keys_ = std::move(right_keys);
  n->values_ = std::move(values);
  n->value_names_ = std::move(value_names);
  n->name_ = std::move(out_attr);
  return n;
}

PlanPtr PlanNode::BagToDict(PlanPtr child, std::string label_col) {
  TRANCE_CHECK(child != nullptr, "BagToDict(null)");
  auto n = MAKE(Kind::kBagToDict);
  n->children_ = {std::move(child)};
  n->name_ = std::move(label_col);
  return n;
}

#undef MAKE

}  // namespace plan
}  // namespace trance
