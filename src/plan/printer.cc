#include "plan/printer.h"

#include <sstream>

#include "nrc/printer.h"
#include "util/strings.h"

namespace trance {
namespace plan {

std::string NodeLabel(const PlanPtr& p) {
  std::ostringstream os;
  switch (p->kind()) {
    case PlanNode::Kind::kScan:
      os << "Scan(" << p->relation() << ")";
      break;
    case PlanNode::Kind::kSelect:
      os << "Select[" << nrc::PrintExpr(p->cond()) << "]";
      break;
    case PlanNode::Kind::kOuterSelect:
      os << "OuterSelect[" << nrc::PrintExpr(p->cond()) << " keep "
         << Join(p->keep_cols(), ",") << "]";
      break;
    case PlanNode::Kind::kProject:
    case PlanNode::Kind::kExtend: {
      std::vector<std::string> parts;
      for (const auto& c : p->columns()) {
        parts.push_back(c.name + " := " + nrc::PrintExpr(c.expr));
      }
      os << (p->kind() == PlanNode::Kind::kProject ? "Project[" : "Extend[")
         << Join(parts, ", ") << "]";
      break;
    }
    case PlanNode::Kind::kJoin:
      os << (p->outer() ? "OuterJoin[" : "Join[") << Join(p->left_keys(), ",")
         << " = " << Join(p->right_keys(), ",") << "]";
      break;
    case PlanNode::Kind::kUnnest:
      os << (p->outer() ? "OuterUnnest[" : "Unnest[") << p->bag_col() << " as "
         << p->alias() << "]";
      break;
    case PlanNode::Kind::kAddIndex:
      os << "AddIndex[" << p->id_attr() << "]";
      break;
    case PlanNode::Kind::kNest:
      os << (p->agg() == NestAgg::kSum ? "Nest+[" : "NestU[")
         << Join(p->keys(), ",") << " ; " << Join(p->values(), ",");
      if (p->agg() == NestAgg::kBagUnion) os << " -> " << p->out_attr();
      os << "]";
      break;
    case PlanNode::Kind::kDedup:
      os << "Dedup";
      break;
    case PlanNode::Kind::kUnionAll:
      os << "UnionAll";
      break;
    case PlanNode::Kind::kCoGroup:
      os << "CoGroup[" << Join(p->left_keys(), ",") << " = "
         << Join(p->right_keys(), ",") << " ; " << Join(p->values(), ",")
         << " -> " << p->out_attr() << "]";
      break;
    case PlanNode::Kind::kBagToDict:
      os << "BagToDict[" << p->label_col() << "]";
      break;
  }
  return os.str();
}

namespace {

void Print(const PlanPtr& p, int depth, std::ostringstream* os) {
  std::string pad(static_cast<size_t>(depth) * 2, ' ');
  *os << pad << NodeLabel(p) << "\n";
  for (size_t i = 0; i < p->num_children(); ++i) {
    Print(p->child(i), depth + 1, os);
  }
}

}  // namespace

std::string PrintPlan(const PlanPtr& plan) {
  std::ostringstream os;
  Print(plan, 0, &os);
  return os.str();
}

std::string PrintPlanProgram(const PlanProgram& program) {
  std::ostringstream os;
  for (const auto& a : program.assignments) {
    os << a.var << " <=\n" << PrintPlan(a.plan) << "\n";
  }
  return os.str();
}

}  // namespace plan
}  // namespace trance
