#include "plan/printer.h"

#include <sstream>

#include "nrc/printer.h"
#include "util/strings.h"

namespace trance {
namespace plan {

namespace {

void Print(const PlanPtr& p, int depth, std::ostringstream* os) {
  std::string pad(static_cast<size_t>(depth) * 2, ' ');
  *os << pad;
  switch (p->kind()) {
    case PlanNode::Kind::kScan:
      *os << "Scan(" << p->relation() << ")\n";
      return;
    case PlanNode::Kind::kSelect:
      *os << "Select[" << nrc::PrintExpr(p->cond()) << "]\n";
      break;
    case PlanNode::Kind::kOuterSelect:
      *os << "OuterSelect[" << nrc::PrintExpr(p->cond()) << " keep "
          << Join(p->keep_cols(), ",") << "]\n";
      break;
    case PlanNode::Kind::kProject:
    case PlanNode::Kind::kExtend: {
      std::vector<std::string> parts;
      for (const auto& c : p->columns()) {
        parts.push_back(c.name + " := " + nrc::PrintExpr(c.expr));
      }
      *os << (p->kind() == PlanNode::Kind::kProject ? "Project[" : "Extend[")
          << Join(parts, ", ") << "]\n";
      break;
    }
    case PlanNode::Kind::kJoin:
      *os << (p->outer() ? "OuterJoin[" : "Join[")
          << Join(p->left_keys(), ",") << " = " << Join(p->right_keys(), ",")
          << "]\n";
      break;
    case PlanNode::Kind::kUnnest:
      *os << (p->outer() ? "OuterUnnest[" : "Unnest[") << p->bag_col()
          << " as " << p->alias() << "]\n";
      break;
    case PlanNode::Kind::kAddIndex:
      *os << "AddIndex[" << p->id_attr() << "]\n";
      break;
    case PlanNode::Kind::kNest:
      *os << (p->agg() == NestAgg::kSum ? "Nest+[" : "NestU[")
          << Join(p->keys(), ",") << " ; " << Join(p->values(), ",");
      if (p->agg() == NestAgg::kBagUnion) *os << " -> " << p->out_attr();
      *os << "]\n";
      break;
    case PlanNode::Kind::kDedup:
      *os << "Dedup\n";
      break;
    case PlanNode::Kind::kUnionAll:
      *os << "UnionAll\n";
      break;
    case PlanNode::Kind::kCoGroup:
      *os << "CoGroup[" << Join(p->left_keys(), ",") << " = "
          << Join(p->right_keys(), ",") << " ; " << Join(p->values(), ",")
          << " -> " << p->out_attr() << "]\n";
      break;
    case PlanNode::Kind::kBagToDict:
      *os << "BagToDict[" << p->label_col() << "]\n";
      break;
  }
  for (size_t i = 0; i < p->num_children(); ++i) {
    Print(p->child(i), depth + 1, os);
  }
}

}  // namespace

std::string PrintPlan(const PlanPtr& plan) {
  std::ostringstream os;
  Print(plan, 0, &os);
  return os.str();
}

std::string PrintPlanProgram(const PlanProgram& program) {
  std::ostringstream os;
  for (const auto& a : program.assignments) {
    os << a.var << " <=\n" << PrintPlan(a.plan) << "\n";
  }
  return os.str();
}

}  // namespace plan
}  // namespace trance
