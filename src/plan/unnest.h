// The unnesting stage (Section 3): translates NRC programs into algebraic
// plans in the style of Fegaras–Maier.
//
// The algorithm walks a query from the outermost level inward, building one
// linear operator pipeline:
//  - comprehension generators over input relations become scans / equi-joins
//    (join conditions are detected from if-equality filters, as in "detects
//    joins written as nested loops with equality conditions");
//  - generators over bag-valued attributes become unnest operators;
//  - entering a nesting level (a bag-valued attribute inside a tuple
//    constructor) switches to the *outer* variants of join and unnest,
//    attaches a unique id to the outer tuples, and expands the grouping set
//    G with that id and the level's scalar output attributes;
//  - sumBy / groupBy become Gamma-plus / Gamma-union with G-prefixed keys;
//  - on the way out of each level, a Gamma-union regroups the level's output
//    into its bag attribute.
//
// Column naming: a comprehension variable x bound to a tuple surfaces as
// columns "x.<attr>"; level-local computed attributes as "_lvlK.<attr>";
// unique ids as "_uidK".
//
// Supported query class: the NRC fragment used by the paper's benchmarks
// (arbitrary nesting depth, joins, sumBy/groupBy/dedup at any level, at most
// one bag-valued attribute per tuple constructor, filters at non-root levels
// only as join equalities). Everything else returns NotImplemented — the
// interpreter still covers full NRC.
#ifndef TRANCE_PLAN_UNNEST_H_
#define TRANCE_PLAN_UNNEST_H_

#include <map>
#include <string>

#include "nrc/expr.h"
#include "nrc/typecheck.h"
#include "plan/plan.h"
#include "util/status.h"

namespace trance {
namespace plan {

class Unnester {
 public:
  /// `env` types the free input relations (and is extended per assignment
  /// when compiling programs).
  explicit Unnester(nrc::TypeEnv env) : env_(std::move(env)) {}

  /// Compiles one bag-valued query into a plan whose output columns are the
  /// query's top-level attribute names.
  StatusOr<PlanPtr> Compile(const nrc::ExprPtr& query);

  /// Compiles every assignment of a program.
  StatusOr<PlanProgram> CompileProgram(const nrc::Program& program);

 private:
  struct Ctx;  // defined in unnest.cc
  nrc::TypeEnv env_;
  int uid_counter_ = 0;
  int lvl_counter_ = 0;
  int tmp_counter_ = 0;
};

}  // namespace plan
}  // namespace trance

#endif  // TRANCE_PLAN_UNNEST_H_
