// Rendering of algebraic plans for debugging and tests (operator tree with
// the paper's sigma/pi/join/mu/Gamma vocabulary).
#ifndef TRANCE_PLAN_PRINTER_H_
#define TRANCE_PLAN_PRINTER_H_

#include <string>

#include "plan/plan.h"

namespace trance {
namespace plan {

/// One-line label of a single operator node (no children, no newline);
/// shared by the tree printer and the EXPLAIN ANALYZE report.
std::string NodeLabel(const PlanPtr& plan);

std::string PrintPlan(const PlanPtr& plan);
std::string PrintPlanProgram(const PlanProgram& program);

}  // namespace plan
}  // namespace trance

#endif  // TRANCE_PLAN_PRINTER_H_
