#include "plan/optimizer.h"

#include <algorithm>
#include <optional>
#include <set>

namespace trance {
namespace plan {

namespace {

using nrc::Expr;
using nrc::ExprPtr;

void ExprColumnRefs(const ExprPtr& e, std::set<std::string>* out) {
  if (e->kind() == Expr::Kind::kVarRef) {
    out->insert(e->var_name());
    return;
  }
  if (e->kind() == Expr::Kind::kNewLabel ||
      e->kind() == Expr::Kind::kTupleCtor) {
    for (const auto& f : e->fields()) ExprColumnRefs(f.expr, out);
    return;
  }
  for (size_t i = 0; i < e->num_children(); ++i) {
    ExprColumnRefs(e->child(i), out);
  }
}

}  // namespace

StatusOr<std::vector<std::string>> OutputNames(const PlanPtr& plan,
                                               const nrc::TypeEnv& env) {
  using K = PlanNode::Kind;
  switch (plan->kind()) {
    case K::kScan: {
      auto it = env.find(plan->relation());
      if (it == env.end() || !it->second->is_bag()) {
        return Status::KeyError("unknown relation in plan: " +
                                plan->relation());
      }
      std::vector<std::string> names;
      if (it->second->element()->is_tuple()) {
        for (const auto& f : it->second->element()->fields()) {
          names.push_back(f.name);
        }
      } else {
        names.push_back("_value");
      }
      return names;
    }
    case K::kSelect:
    case K::kOuterSelect:
    case K::kDedup:
    case K::kBagToDict:
    case K::kUnionAll:
      return OutputNames(plan->child(0), env);
    case K::kProject: {
      std::vector<std::string> names;
      for (const auto& c : plan->columns()) names.push_back(c.name);
      return names;
    }
    case K::kExtend: {
      TRANCE_ASSIGN_OR_RETURN(std::vector<std::string> names,
                              OutputNames(plan->child(0), env));
      for (const auto& c : plan->columns()) names.push_back(c.name);
      return names;
    }
    case K::kJoin: {
      TRANCE_ASSIGN_OR_RETURN(std::vector<std::string> names,
                              OutputNames(plan->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(std::vector<std::string> right,
                              OutputNames(plan->child(1), env));
      for (const auto& r : right) {
        std::string name = r;
        while (std::find(names.begin(), names.end(), name) != names.end()) {
          name += "__r";
        }
        names.push_back(name);
      }
      return names;
    }
    case K::kUnnest: {
      TRANCE_ASSIGN_OR_RETURN(std::vector<std::string> names,
                              OutputNames(plan->child(0), env));
      std::vector<std::string> out;
      if (plan->outer() && !plan->unnest_id_attr().empty()) {
        out.push_back(plan->unnest_id_attr());
      }
      for (const auto& n : names) {
        if (n != plan->bag_col()) out.push_back(n);
      }
      // Inner attribute names require the bag column's element type, which
      // plans do not carry; lowering knows them. Report a placeholder that
      // pruning treats as opaque.
      out.push_back(plan->alias() + ".*");
      return out;
    }
    case K::kAddIndex: {
      TRANCE_ASSIGN_OR_RETURN(std::vector<std::string> names,
                              OutputNames(plan->child(0), env));
      names.push_back(plan->id_attr());
      return names;
    }
    case K::kNest: {
      std::vector<std::string> names = plan->keys();
      if (plan->agg() == NestAgg::kSum) {
        for (const auto& v : plan->values()) names.push_back(v);
      } else {
        names.push_back(plan->out_attr());
      }
      return names;
    }
    case K::kCoGroup: {
      TRANCE_ASSIGN_OR_RETURN(std::vector<std::string> names,
                              OutputNames(plan->child(0), env));
      names.push_back(plan->out_attr());
      return names;
    }
  }
  return Status::Internal("unhandled plan kind in OutputNames");
}

namespace {

using Needed = std::optional<std::set<std::string>>;  // nullopt = everything

bool IsNeeded(const Needed& needed, const std::string& col) {
  return !needed.has_value() || needed->count(col) > 0;
}

/// Column-pruning rewrite: keeps only columns some ancestor consumes.
/// Pruning points: Project/Extend nodes (every generated scan sits under a
/// renaming Project) and join outputs, which are narrowed with an explicit
/// Project so dead columns do not ride through subsequent shuffles.
StatusOr<PlanPtr> Prune(const PlanPtr& plan, const Needed& needed,
                        const nrc::TypeEnv& env) {
  using K = PlanNode::Kind;
  switch (plan->kind()) {
    case K::kScan:
      return plan;
    case K::kProject: {
      std::vector<NamedColumnExpr> cols;
      std::set<std::string> child_needed;
      for (const auto& c : plan->columns()) {
        if (!IsNeeded(needed, c.name)) continue;
        cols.push_back(c);
        ExprColumnRefs(c.expr, &child_needed);
      }
      TRANCE_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(plan->child(0), Needed(child_needed), env));
      return PlanNode::Project(child, std::move(cols));
    }
    case K::kExtend: {
      std::vector<NamedColumnExpr> cols;
      Needed child_needed = needed;
      for (const auto& c : plan->columns()) {
        if (!IsNeeded(needed, c.name)) continue;
        cols.push_back(c);
        if (child_needed.has_value()) {
          child_needed->erase(c.name);
          ExprColumnRefs(c.expr, &*child_needed);
        }
      }
      TRANCE_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(plan->child(0), child_needed, env));
      if (cols.empty()) return child;
      return PlanNode::Extend(child, std::move(cols));
    }
    case K::kSelect:
    case K::kOuterSelect: {
      Needed child_needed = needed;
      if (child_needed.has_value()) {
        ExprColumnRefs(plan->cond(), &*child_needed);
        if (plan->kind() == K::kOuterSelect) {
          for (const auto& c : plan->keep_cols()) child_needed->insert(c);
        }
      }
      TRANCE_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(plan->child(0), child_needed, env));
      if (plan->kind() == K::kOuterSelect) {
        return PlanNode::OuterSelect(child, plan->cond(), plan->keep_cols());
      }
      return PlanNode::Select(child, plan->cond());
    }
    case K::kJoin: {
      Needed child_needed = needed;
      if (child_needed.has_value()) {
        for (const auto& k : plan->left_keys()) child_needed->insert(k);
        for (const auto& k : plan->right_keys()) child_needed->insert(k);
      }
      TRANCE_ASSIGN_OR_RETURN(PlanPtr l, Prune(plan->child(0), child_needed, env));
      TRANCE_ASSIGN_OR_RETURN(PlanPtr r, Prune(plan->child(1), child_needed, env));
      PlanPtr join = PlanNode::Join(l, r, plan->left_keys(),
                                    plan->right_keys(), plan->outer());
      // Narrow the join output so dead columns do not ride through later
      // shuffles (labels and carried attributes of finished levels).
      if (needed.has_value()) {
        auto names_or = OutputNames(join, env);
        if (names_or.ok()) {
          std::vector<NamedColumnExpr> cols;
          bool narrowed = false;
          for (const auto& n : *names_or) {
            if (needed->count(n)) {
              cols.push_back({n, Expr::Var(n)});
            } else if (n.size() > 2 && n.substr(n.size() - 2) == ".*") {
              return join;  // opaque unnest outputs: skip narrowing
            } else {
              narrowed = true;
            }
          }
          if (narrowed && !cols.empty()) {
            return PlanNode::Project(join, std::move(cols));
          }
        }
      }
      return join;
    }
    case K::kUnnest: {
      Needed child_needed = needed;
      if (child_needed.has_value()) {
        // Inner columns "<alias>.<attr>" come from the bag; strip them and
        // require the bag column itself.
        std::set<std::string> filtered;
        for (const auto& c : *child_needed) {
          if (c.rfind(plan->alias() + ".", 0) != 0 && c != plan->alias()) {
            filtered.insert(c);
          }
        }
        filtered.insert(plan->bag_col());
        child_needed = std::move(filtered);
      }
      TRANCE_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(plan->child(0), child_needed, env));
      return PlanNode::Unnest(child, plan->bag_col(), plan->alias(),
                              plan->outer(), plan->unnest_id_attr());
    }
    case K::kAddIndex: {
      Needed child_needed = needed;
      if (child_needed.has_value()) child_needed->erase(plan->id_attr());
      TRANCE_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(plan->child(0), child_needed, env));
      return PlanNode::AddIndex(child, plan->id_attr());
    }
    case K::kNest: {
      std::set<std::string> child_needed;
      for (const auto& k : plan->keys()) child_needed.insert(k);
      for (const auto& v : plan->values()) child_needed.insert(v);
      if (!plan->nest_indicator().empty()) {
        child_needed.insert(plan->nest_indicator());
      }
      TRANCE_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(plan->child(0), Needed(child_needed), env));
      return PlanNode::Nest(child, plan->agg(), plan->keys(), plan->values(),
                            plan->value_names(), plan->out_attr(),
                            plan->nest_indicator());
    }
    case K::kDedup: {
      TRANCE_ASSIGN_OR_RETURN(PlanPtr child, Prune(plan->child(0), needed, env));
      return PlanNode::Dedup(child);
    }
    case K::kUnionAll: {
      TRANCE_ASSIGN_OR_RETURN(PlanPtr a, Prune(plan->child(0), needed, env));
      TRANCE_ASSIGN_OR_RETURN(PlanPtr b, Prune(plan->child(1), needed, env));
      return PlanNode::UnionAll(a, b);
    }
    case K::kCoGroup: {
      Needed child_needed = needed;
      if (child_needed.has_value()) {
        child_needed->erase(plan->out_attr());
        for (const auto& k : plan->left_keys()) child_needed->insert(k);
      }
      std::set<std::string> right_needed;
      for (const auto& k : plan->right_keys()) right_needed.insert(k);
      for (const auto& v : plan->values()) right_needed.insert(v);
      TRANCE_ASSIGN_OR_RETURN(PlanPtr l, Prune(plan->child(0), child_needed, env));
      TRANCE_ASSIGN_OR_RETURN(PlanPtr r,
                              Prune(plan->child(1), Needed(right_needed), env));
      return PlanNode::CoGroup(l, r, plan->left_keys(), plan->right_keys(),
                               plan->values(), plan->value_names(),
                               plan->out_attr());
    }
    case K::kBagToDict: {
      TRANCE_ASSIGN_OR_RETURN(PlanPtr child, Prune(plan->child(0), needed, env));
      return PlanNode::BagToDict(child, plan->label_col());
    }
  }
  return Status::Internal("unhandled plan kind in Prune");
}

/// Join+nest -> cogroup fusion: Gamma-union directly over a left outer join
/// whose value columns all come from the join's right side and whose keys all
/// come from the left side collapses into one cogroup, avoiding the
/// materialized flat join result.
StatusOr<PlanPtr> FuseCoGroups(const PlanPtr& plan, const nrc::TypeEnv& env) {
  using K = PlanNode::Kind;
  // Rewrite children first.
  std::vector<PlanPtr> kids;
  for (size_t i = 0; i < plan->num_children(); ++i) {
    TRANCE_ASSIGN_OR_RETURN(PlanPtr k, FuseCoGroups(plan->child(i), env));
    kids.push_back(k);
  }
  auto rebuild = [&]() -> PlanPtr {
    switch (plan->kind()) {
      case K::kSelect:
        return PlanNode::Select(kids[0], plan->cond());
      case K::kOuterSelect:
        return PlanNode::OuterSelect(kids[0], plan->cond(),
                                     plan->keep_cols());
      case K::kProject:
        return PlanNode::Project(kids[0], plan->columns());
      case K::kExtend:
        return PlanNode::Extend(kids[0], plan->columns());
      case K::kJoin:
        return PlanNode::Join(kids[0], kids[1], plan->left_keys(),
                              plan->right_keys(), plan->outer());
      case K::kUnnest:
        return PlanNode::Unnest(kids[0], plan->bag_col(), plan->alias(),
                                plan->outer(), plan->unnest_id_attr());
      case K::kAddIndex:
        return PlanNode::AddIndex(kids[0], plan->id_attr());
      case K::kNest:
        return PlanNode::Nest(kids[0], plan->agg(), plan->keys(),
                              plan->values(), plan->value_names(),
                              plan->out_attr(), plan->nest_indicator());
      case K::kDedup:
        return PlanNode::Dedup(kids[0]);
      case K::kUnionAll:
        return PlanNode::UnionAll(kids[0], kids[1]);
      case K::kCoGroup:
        return PlanNode::CoGroup(kids[0], kids[1], plan->left_keys(),
                                 plan->right_keys(), plan->values(),
                                 plan->value_names(), plan->out_attr());
      case K::kBagToDict:
        return PlanNode::BagToDict(kids[0], plan->label_col());
      case K::kScan:
        return plan;
    }
    return plan;
  };

  if (plan->kind() != K::kNest || plan->agg() != NestAgg::kBagUnion ||
      kids[0]->kind() != K::kJoin || !kids[0]->outer()) {
    return rebuild();
  }
  const PlanPtr& join = kids[0];
  // Soundness: a cogroup emits one row per *left row*, a Gamma one row per
  // *key group*. They only coincide when the join's left rows are unique on
  // the grouping keys — guaranteed when the left side just attached a unique
  // id that is part of the keys.
  if (join->child(0)->kind() != K::kAddIndex ||
      std::find(plan->keys().begin(), plan->keys().end(),
                join->child(0)->id_attr()) == plan->keys().end()) {
    return rebuild();
  }
  auto left_names_or = OutputNames(join->child(0), env);
  auto right_names_or = OutputNames(join->child(1), env);
  if (!left_names_or.ok() || !right_names_or.ok()) return rebuild();
  std::set<std::string> left_names(left_names_or->begin(),
                                   left_names_or->end());
  std::set<std::string> right_names(right_names_or->begin(),
                                    right_names_or->end());
  for (const auto& v : plan->values()) {
    if (right_names.count(v) == 0) return rebuild();
  }
  for (const auto& k : plan->keys()) {
    if (left_names.count(k) == 0) return rebuild();
  }
  // The cogroup keeps all left columns; a narrowing Project restores the
  // Gamma's exact output (keys + bag).
  PlanPtr cg = PlanNode::CoGroup(join->child(0), join->child(1),
                                 join->left_keys(), join->right_keys(),
                                 plan->values(), plan->value_names(),
                                 plan->out_attr());
  std::vector<NamedColumnExpr> cols;
  for (const auto& k : plan->keys()) cols.push_back({k, Expr::Var(k)});
  cols.push_back({plan->out_attr(), Expr::Var(plan->out_attr())});
  return PlanNode::Project(cg, std::move(cols));
}


/// Aggregation pushdown past joins (applied bottom-up). Matches
///   Nest+[K; V] over (optional Extend[V := a*b or V := a]) over Join(l, r)
/// where `a` comes from the left side, `b` (if any) from the right, every
/// group key comes from one side, and the join keys are left columns. Since
/// all rows of a (K_left, join-key) group match the same right rows, the sum
/// distributes: partial-sum `a` on the left grouped by {K_left, lk}, join,
/// recompute V, and keep the final Nest+ to combine.
StatusOr<PlanPtr> PushAggPastJoin(const PlanPtr& plan,
                                  const nrc::TypeEnv& env) {
  using K = PlanNode::Kind;
  std::vector<PlanPtr> kids;
  for (size_t i = 0; i < plan->num_children(); ++i) {
    TRANCE_ASSIGN_OR_RETURN(PlanPtr k, PushAggPastJoin(plan->child(i), env));
    kids.push_back(k);
  }
  auto rebuild = [&]() -> PlanPtr {
    if (kids.empty()) return plan;
    switch (plan->kind()) {
      case K::kSelect:
        return PlanNode::Select(kids[0], plan->cond());
      case K::kOuterSelect:
        return PlanNode::OuterSelect(kids[0], plan->cond(),
                                     plan->keep_cols());
      case K::kProject:
        return PlanNode::Project(kids[0], plan->columns());
      case K::kExtend:
        return PlanNode::Extend(kids[0], plan->columns());
      case K::kJoin:
        return PlanNode::Join(kids[0], kids[1], plan->left_keys(),
                              plan->right_keys(), plan->outer());
      case K::kUnnest:
        return PlanNode::Unnest(kids[0], plan->bag_col(), plan->alias(),
                                plan->outer(), plan->unnest_id_attr());
      case K::kAddIndex:
        return PlanNode::AddIndex(kids[0], plan->id_attr());
      case K::kNest:
        return PlanNode::Nest(kids[0], plan->agg(), plan->keys(),
                              plan->values(), plan->value_names(),
                              plan->out_attr(), plan->nest_indicator());
      case K::kDedup:
        return PlanNode::Dedup(kids[0]);
      case K::kUnionAll:
        return PlanNode::UnionAll(kids[0], kids[1]);
      case K::kCoGroup:
        return PlanNode::CoGroup(kids[0], kids[1], plan->left_keys(),
                                 plan->right_keys(), plan->values(),
                                 plan->value_names(), plan->out_attr());
      case K::kBagToDict:
        return PlanNode::BagToDict(kids[0], plan->label_col());
      case K::kScan:
        return plan;
    }
    return plan;
  };

  if (plan->kind() != K::kNest || plan->agg() != NestAgg::kSum ||
      plan->values().size() != 1) {
    return rebuild();
  }
  // Peel an optional single-column Extend computing the summed value.
  PlanPtr below = kids.empty() ? plan->child(0) : kids[0];
  ExprPtr value_expr = Expr::Var(plan->values()[0]);
  PlanPtr join = below;
  std::vector<NamedColumnExpr> extend_cols;
  if (below->kind() == K::kExtend) {
    bool defines = false;
    for (const auto& c : below->columns()) {
      if (c.name == plan->values()[0]) {
        defines = true;
        value_expr = c.expr;
      }
    }
    if (!defines || below->columns().size() != 1) return rebuild();
    extend_cols = below->columns();
    join = below->child(0);
  }
  if (join->kind() != K::kJoin) return rebuild();

  auto left_names_or = OutputNames(join->child(0), env);
  auto right_names_or = OutputNames(join->child(1), env);
  if (!left_names_or.ok() || !right_names_or.ok()) return rebuild();
  std::set<std::string> left_names(left_names_or->begin(),
                                   left_names_or->end());
  std::set<std::string> right_names(right_names_or->begin(),
                                    right_names_or->end());
  for (const auto& n : *left_names_or) {
    if (n.size() > 2 && n.substr(n.size() - 2) == ".*") return rebuild();
  }

  // The summed value: a left column, or left-column * right-column.
  std::string left_factor;
  bool direct = false;
  if (value_expr->kind() == nrc::Expr::Kind::kVarRef &&
      left_names.count(value_expr->var_name())) {
    left_factor = value_expr->var_name();
    direct = true;
  } else if (value_expr->kind() == nrc::Expr::Kind::kPrimOp &&
             value_expr->prim_op() == nrc::PrimOpKind::kMul) {
    const ExprPtr& a = value_expr->child(0);
    const ExprPtr& b = value_expr->child(1);
    if (a->kind() == nrc::Expr::Kind::kVarRef &&
        b->kind() == nrc::Expr::Kind::kVarRef &&
        left_names.count(a->var_name()) &&
        right_names.count(b->var_name())) {
      left_factor = a->var_name();
    }
  }
  if (left_factor.empty()) return rebuild();
  // Join keys must be plain left columns; group keys split cleanly.
  for (const auto& k : join->left_keys()) {
    if (!left_names.count(k)) return rebuild();
  }
  std::vector<std::string> partial_keys;
  for (const auto& k : plan->keys()) {
    if (left_names.count(k)) {
      partial_keys.push_back(k);
    } else if (!right_names.count(k)) {
      return rebuild();
    }
  }
  for (const auto& k : join->left_keys()) {
    if (std::find(partial_keys.begin(), partial_keys.end(), k) ==
        partial_keys.end()) {
      partial_keys.push_back(k);
    }
  }

  PlanPtr partial = PlanNode::Nest(join->child(0), NestAgg::kSum,
                                   partial_keys, {left_factor},
                                   {left_factor}, "");
  PlanPtr new_join =
      PlanNode::Join(partial, join->child(1), join->left_keys(),
                     join->right_keys(), join->outer());
  PlanPtr top = new_join;
  if (!extend_cols.empty()) top = PlanNode::Extend(top, extend_cols);
  return PlanNode::Nest(top, NestAgg::kSum, plan->keys(), plan->values(),
                        plan->value_names(), plan->out_attr(),
                        plan->nest_indicator());
  (void)direct;
}

}  // namespace

StatusOr<PlanPtr> Optimize(const PlanPtr& plan, const nrc::TypeEnv& env,
                           const OptimizerOptions& options) {
  PlanPtr p = plan;
  if (options.enable_agg_pushdown) {
    TRANCE_ASSIGN_OR_RETURN(p, PushAggPastJoin(p, env));
  }
  if (options.enable_cogroup) {
    TRANCE_ASSIGN_OR_RETURN(p, FuseCoGroups(p, env));
  }
  if (options.enable_column_pruning) {
    TRANCE_ASSIGN_OR_RETURN(p, Prune(p, std::nullopt, env));
  }
  return p;
}

StatusOr<PlanProgram> OptimizeProgram(const PlanProgram& program,
                                      const nrc::TypeEnv& env,
                                      const OptimizerOptions& options) {
  PlanProgram out;
  out.inputs = program.inputs;
  for (const auto& a : program.assignments) {
    TRANCE_ASSIGN_OR_RETURN(PlanPtr p, Optimize(a.plan, env, options));
    out.assignments.push_back({a.var, p});
  }
  return out;
}

}  // namespace plan
}  // namespace trance
