// Plan optimizations (Section 3, "Optimization"): column pruning via
// projection pushdown, selection pushdown, and the join+nest -> cogroup
// fusion applied when building nested objects from large input bags.
// Aggregation pushdown past joins is applied by the lowering when enabled
// (it needs runtime schemas).
#ifndef TRANCE_PLAN_OPTIMIZER_H_
#define TRANCE_PLAN_OPTIMIZER_H_

#include "nrc/typecheck.h"
#include "plan/plan.h"
#include "util/status.h"

namespace trance {
namespace plan {

struct OptimizerOptions {
  /// Fuse Gamma-union directly over a left outer join into a cogroup. The
  /// SparkSQL competitor mode disables this (Section 6: "SparkSQL does not
  /// perform the cogroup optimization").
  bool enable_cogroup = true;
  /// Prune columns that no ancestor operator consumes.
  bool enable_column_pruning = true;
  /// Push Gamma-plus past joins: partial-sum the left factor grouped by
  /// {group keys from the left, join keys} before the join (Section 3's
  /// "push the sum aggregate past the join to compute partial sums of qty
  /// values ... grouped by {copID, coID, cname, odate, pid}"). Off by
  /// default; Section 6 enables it for the skew-unaware strategies, where
  /// collapsing duplicated heavy values diminishes skew.
  bool enable_agg_pushdown = false;
};

/// Column names produced by a plan, given the types of scanned relations.
/// Mirrors the lowering's naming rules (join collisions suffixed "__r").
StatusOr<std::vector<std::string>> OutputNames(const PlanPtr& plan,
                                               const nrc::TypeEnv& env);

/// Rewrites `plan` under the given options. Semantics-preserving.
StatusOr<PlanPtr> Optimize(const PlanPtr& plan, const nrc::TypeEnv& env,
                           const OptimizerOptions& options);

/// Optimizes every assignment of a program (later assignments see earlier
/// ones' types).
StatusOr<PlanProgram> OptimizeProgram(const PlanProgram& program,
                                      const nrc::TypeEnv& env,
                                      const OptimizerOptions& options);

}  // namespace plan
}  // namespace trance

#endif  // TRANCE_PLAN_OPTIMIZER_H_
