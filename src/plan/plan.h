// The plan language (Section 2): algebraic operators in the style of the
// Fegaras–Maier intermediate object algebra — selection, projection, join,
// left outer join, unnest, outer-unnest, and the nest operator Gamma
// parameterized by bag-union or sum aggregation — plus the helpers the
// compilation routes need (index/uid attachment, dedup, union, the cogroup
// fusion the optimizer introduces, and BagToDict for the shredded route).
//
// Scalar expressions inside plan operators are NRC expressions whose free
// variables are *column names* of the child operator's output schema. The
// unnesting stage names columns "<var>.<attr>" after the comprehension
// variables that bound them.
#ifndef TRANCE_PLAN_PLAN_H_
#define TRANCE_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nrc/expr.h"
#include "nrc/type.h"
#include "util/status.h"

namespace trance {
namespace plan {

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// A named scalar output expression (projection / extension item).
struct NamedColumnExpr {
  std::string name;
  nrc::ExprPtr expr;  // free vars are child column names
};

/// Aggregation flavor of the nest operator.
enum class NestAgg {
  kBagUnion,  // Gamma-union: collect tuples into a bag attribute
  kSum,       // Gamma-plus: sum value attributes
};

/// One node of an algebraic query plan.
class PlanNode {
 public:
  enum class Kind {
    kScan,        // named input dataset
    kSelect,      // sigma
    kOuterSelect,  // sigma at a nested level: failing rows keep only the
                   // grouping-prefix columns (rest nulled), preserving outer
                   // tuples for the NULL-to-empty-bag cast
    kProject,     // pi (narrowing; computed columns allowed)
    kExtend,      // adds computed columns, keeps existing ones
    kJoin,        // equi-join (inner or left outer); empty keys = cross
    kUnnest,      // mu / mu-bar over a bag column
    kAddIndex,    // extends each tuple with a unique id column
    kNest,        // Gamma^{agg}_{keys}
    kDedup,       // multiplicities to 1
    kUnionAll,    // bag union
    kCoGroup,     // fused join+nest (introduced by the optimizer)
    kBagToDict,   // casts a bag with a label column to dictionary form
  };

  // --- Factories ---
  static PlanPtr Scan(std::string relation);
  static PlanPtr Select(PlanPtr child, nrc::ExprPtr cond);
  /// Nested-level selection: rows failing `cond` survive with every column
  /// outside `keep_cols` set to NULL (so enclosing Gammas see a miss).
  static PlanPtr OuterSelect(PlanPtr child, nrc::ExprPtr cond,
                             std::vector<std::string> keep_cols);
  static PlanPtr Project(PlanPtr child, std::vector<NamedColumnExpr> cols);
  static PlanPtr Extend(PlanPtr child, std::vector<NamedColumnExpr> cols);
  /// Join on pairwise equality of left/right key column names. `outer` makes
  /// it a left outer join. Empty key lists make a cross product.
  static PlanPtr Join(PlanPtr left, PlanPtr right,
                      std::vector<std::string> left_keys,
                      std::vector<std::string> right_keys, bool outer);
  /// Unnests `bag_col`; inner attributes surface as "<alias>.<attr>".
  /// `outer` keeps tuples with empty bags (NULL-padded) and, if `id_attr` is
  /// non-empty, extends each outer tuple with a unique id column first.
  static PlanPtr Unnest(PlanPtr child, std::string bag_col, std::string alias,
                        bool outer, std::string id_attr);
  static PlanPtr AddIndex(PlanPtr child, std::string id_attr);
  /// Gamma: groups on `keys`. For kBagUnion, collects the `values` columns
  /// into bag column `out_attr` (inner tuple attributes renamed to
  /// `value_names`). For kSum, sums the `values` columns in place (out_attr
  /// unused). `indicator` optionally names the column whose NULLness marks
  /// an outer miss for the NULL-to-empty-bag cast.
  static PlanPtr Nest(PlanPtr child, NestAgg agg,
                      std::vector<std::string> keys,
                      std::vector<std::string> values,
                      std::vector<std::string> value_names,
                      std::string out_attr, std::string indicator = "");
  static PlanPtr Dedup(PlanPtr child);
  static PlanPtr UnionAll(PlanPtr a, PlanPtr b);
  /// Fused join+nest: left tuples extended with the bag of matching right
  /// `values` projections (named `value_names`) as `out_attr`.
  static PlanPtr CoGroup(PlanPtr left, PlanPtr right,
                         std::vector<std::string> left_keys,
                         std::vector<std::string> right_keys,
                         std::vector<std::string> values,
                         std::vector<std::string> value_names,
                         std::string out_attr);
  static PlanPtr BagToDict(PlanPtr child, std::string label_col);

  Kind kind() const { return kind_; }
  size_t num_children() const { return children_.size(); }
  const PlanPtr& child(size_t i = 0) const {
    TRANCE_CHECK(i < children_.size(), "plan child out of range");
    return children_[i];
  }

  const std::string& relation() const { return name_; }   // kScan
  const std::string& out_attr() const { return name_; }   // kNest/kCoGroup bag
  const std::string& id_attr() const { return name_; }    // kAddIndex
  const std::string& label_col() const { return name_; }  // kBagToDict
  const std::string& bag_col() const { return bag_col_; }  // kUnnest
  const std::string& alias() const { return alias_; }      // kUnnest
  const std::string& unnest_id_attr() const { return alias2_; }  // kUnnest
  const std::string& nest_indicator() const { return alias2_; }  // kNest
  bool outer() const { return outer_; }  // kJoin / kUnnest
  const nrc::ExprPtr& cond() const { return cond_; }  // kSelect/kOuterSelect
  const std::vector<std::string>& keep_cols() const {  // kOuterSelect
    return values_;
  }
  const std::vector<NamedColumnExpr>& columns() const { return cols_; }
  const std::vector<std::string>& left_keys() const { return left_keys_; }
  const std::vector<std::string>& right_keys() const { return right_keys_; }
  const std::vector<std::string>& keys() const { return left_keys_; }  // kNest
  const std::vector<std::string>& values() const { return values_; }
  const std::vector<std::string>& value_names() const { return value_names_; }
  NestAgg agg() const { return agg_; }

 private:
  explicit PlanNode(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;
  std::string bag_col_;
  std::string alias_;
  std::string alias2_;
  bool outer_ = false;
  nrc::ExprPtr cond_;
  std::vector<NamedColumnExpr> cols_;
  std::vector<std::string> left_keys_;
  std::vector<std::string> right_keys_;
  std::vector<std::string> values_;
  std::vector<std::string> value_names_;
  NestAgg agg_ = NestAgg::kBagUnion;
  std::vector<PlanPtr> children_;
};

/// One plan-producing assignment of a compiled program.
struct PlanAssignment {
  std::string var;
  PlanPtr plan;
};

/// A compiled program: inputs (flat or nested datasets) plus a sequence of
/// plans; later plans may Scan earlier assignments' results.
struct PlanProgram {
  std::vector<nrc::InputDecl> inputs;
  std::vector<PlanAssignment> assignments;
};

}  // namespace plan
}  // namespace trance

#endif  // TRANCE_PLAN_PLAN_H_
