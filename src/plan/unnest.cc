#include "plan/unnest.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace trance {
namespace plan {

namespace {

using nrc::Expr;
using nrc::ExprPtr;
using nrc::Type;
using nrc::TypePtr;

Status NotSupported(const std::string& what) {
  return Status::NotImplemented(
      what + " is outside the plan-language query class (the interpreter "
             "still evaluates it)");
}

/// Inlines all let bindings (Normalize, Fig. 5 line 3).
ExprPtr InlineLets(const ExprPtr& e) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kLet: {
      ExprPtr value = InlineLets(e->child(0));
      ExprPtr body = InlineLets(e->child(1));
      return nrc::Substitute(body, e->var_name(), value);
    }
    case K::kConst:
    case K::kVarRef:
    case K::kEmptyBag:
      return e;
    case K::kForUnion:
      return Expr::ForUnion(e->var_name(), InlineLets(e->child(0)),
                            InlineLets(e->child(1)));
    case K::kLambda:
      return Expr::Lambda(e->var_name(), InlineLets(e->child(0)));
    case K::kMatchLabel:
      return Expr::MatchLabel(InlineLets(e->child(0)), e->var_name(),
                              InlineLets(e->child(1)), e->match_param_type());
    case K::kTupleCtor:
    case K::kNewLabel: {
      std::vector<nrc::NamedExpr> fields;
      for (const auto& f : e->fields()) {
        fields.push_back({f.name, InlineLets(f.expr)});
      }
      return e->kind() == K::kTupleCtor ? Expr::Tuple(std::move(fields))
                                        : Expr::NewLabel(std::move(fields));
    }
    default: {
      // Uniform reconstruction through the child-list factories.
      std::vector<ExprPtr> kids;
      for (size_t i = 0; i < e->num_children(); ++i) {
        kids.push_back(InlineLets(e->child(i)));
      }
      switch (e->kind()) {
        case K::kProj:
          return Expr::Proj(kids[0], e->attr());
        case K::kSingleton:
          return Expr::Singleton(kids[0]);
        case K::kGet:
          return Expr::Get(kids[0]);
        case K::kUnion:
          return Expr::Union(kids[0], kids[1]);
        case K::kIfThen:
          return Expr::IfThen(kids[0], kids[1],
                              kids.size() == 3 ? kids[2] : nullptr);
        case K::kPrimOp:
          return Expr::PrimOp(e->prim_op(), kids[0], kids[1]);
        case K::kCmp:
          return Expr::Cmp(e->cmp_op(), kids[0], kids[1]);
        case K::kBoolOp:
          return Expr::BoolOp(e->bool_op(), kids[0], kids[1]);
        case K::kNot:
          return Expr::Not(kids[0]);
        case K::kDedup:
          return Expr::Dedup(kids[0]);
        case K::kGroupBy:
          return Expr::GroupBy(e->keys(), kids[0], e->attr());
        case K::kSumBy:
          return Expr::SumBy(e->keys(), e->values(), kids[0]);
        case K::kLookup:
          return Expr::Lookup(kids[0], kids[1]);
        case K::kMatLookup:
          return Expr::MatLookup(kids[0], kids[1]);
        case K::kDictTreeUnion:
          return Expr::DictTreeUnion(kids[0], kids[1]);
        case K::kBagToDict:
          return Expr::BagToDict(kids[0]);
        default:
          TRANCE_CHECK(false, "unreachable InlineLets");
          return e;
      }
    }
  }
}

/// Variable binding inside the flattened pipeline.
struct Binding {
  bool is_tuple = true;
  std::string prefix;  // tuple columns are "<prefix>.<attr>"
  std::string scalar_col;
  std::vector<std::pair<std::string, TypePtr>> attrs;

  std::string ColOf(const std::string& attr) const {
    return prefix + "." + attr;
  }
  TypePtr AttrType(const std::string& attr) const {
    for (const auto& [n, t] : attrs) {
      if (n == attr) return t;
    }
    return nullptr;
  }
};

struct Ctx {
  PlanPtr plan;                          // null before the first generator
  std::map<std::string, TypePtr> cols;   // current pipeline columns
  std::map<std::string, Binding> vars;   // live comprehension variables
};

struct Qualifier {
  bool is_gen = false;
  std::string var;
  ExprPtr domain;  // generator domain
  ExprPtr cond;    // filter condition
  bool consumed = false;
};

/// Splits a comprehension into generator/filter qualifiers and its head.
void Decompose(const ExprPtr& e, std::vector<Qualifier>* quals,
               ExprPtr* head) {
  using K = Expr::Kind;
  if (e->kind() == K::kForUnion) {
    Qualifier q;
    q.is_gen = true;
    q.var = e->var_name();
    q.domain = e->child(0);
    quals->push_back(std::move(q));
    Decompose(e->child(1), quals, head);
    return;
  }
  if (e->kind() == K::kIfThen && e->num_children() == 2) {
    // Flatten And-conjunctions into separate filters so each equality can be
    // consumed as a join condition.
    std::vector<ExprPtr> stack{e->child(0)};
    std::vector<ExprPtr> conds;
    while (!stack.empty()) {
      ExprPtr c = stack.back();
      stack.pop_back();
      if (c->kind() == K::kBoolOp &&
          c->bool_op() == nrc::BoolOpKind::kAnd) {
        stack.push_back(c->child(1));
        stack.push_back(c->child(0));
      } else {
        conds.push_back(c);
      }
    }
    for (auto& c : conds) {
      Qualifier q;
      q.cond = std::move(c);
      quals->push_back(std::move(q));
    }
    Decompose(e->child(1), quals, head);
    return;
  }
  *head = e;
}

/// The compilation state machine; one instance per query.
class Compiler {
 public:
  Compiler(const nrc::TypeEnv& env, int* uid, int* lvl, int* tmp)
      : env_(env), uid_(uid), lvl_(lvl), tmp_(tmp) {}

  StatusOr<PlanPtr> CompileRoot(const ExprPtr& query);

 private:
  struct LevelOut {
    Ctx ctx;
    // Output attribute name -> pipeline column name, in output order.
    std::vector<std::pair<std::string, std::string>> attrs;
    // Null-indicator column for this level's outer miss (empty when the
    // level ends in an aggregation, whose outputs self-indicate).
    std::string indicator;
  };

  StatusOr<LevelOut> CompileBag(const ExprPtr& e, Ctx ctx,
                                std::vector<std::string> G, bool outer);
  StatusOr<LevelOut> CompileComp(const ExprPtr& e, Ctx ctx,
                                 std::vector<std::string> G, bool outer);
  Status ProcessQualifiers(std::vector<Qualifier>* quals, Ctx* ctx,
                           bool outer, const std::vector<std::string>& G);
  Status AddGenerator(const Qualifier& gen, std::vector<Qualifier>* quals,
                      size_t gen_index, Ctx* ctx, bool outer);
  StatusOr<LevelOut> ProcessHead(const ExprPtr& head, Ctx ctx,
                                 std::vector<std::string> G, bool outer);

  /// Rewrites an NRC scalar expression over comprehension variables into a
  /// plan expression over pipeline columns.
  StatusOr<ExprPtr> RewriteScalar(const ExprPtr& e, const Ctx& ctx);
  /// Scalar type of a rewritten plan expression.
  StatusOr<TypePtr> TypeOfScalar(const ExprPtr& e, const Ctx& ctx);

  /// True if the expression produces a bag under the current bindings.
  bool IsBagExpr(const ExprPtr& e, const Ctx& ctx);

  /// Binds `var` over bag element type `elem`, producing a renamed scan or
  /// recording unnest output columns in `ctx`.
  Status BindVar(const std::string& var, const TypePtr& elem, Ctx* ctx);

  std::string FreshUid() { return "_uid" + std::to_string(++*uid_); }
  std::string FreshLvl() { return "_lvl" + std::to_string(++*lvl_); }
  std::string FreshTmp() { return "_tmp" + std::to_string(++*tmp_); }

  const nrc::TypeEnv& env_;
  int* uid_;
  int* lvl_;
  int* tmp_;
};

bool Compiler::IsBagExpr(const ExprPtr& e, const Ctx& ctx) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kForUnion:
    case K::kUnion:
    case K::kEmptyBag:
    case K::kSingleton:
    case K::kDedup:
    case K::kGroupBy:
    case K::kSumBy:
    case K::kMatLookup:
    case K::kLookup:
      return true;
    case K::kIfThen:
      return IsBagExpr(e->child(1), ctx);
    case K::kVarRef: {
      auto it = env_.find(e->var_name());
      if (it != env_.end()) return it->second->is_bag();
      auto v = ctx.vars.find(e->var_name());
      return v != ctx.vars.end() && !v->second.is_tuple &&
             false;  // scalar-bound vars are not bags
    }
    case K::kProj: {
      if (e->child(0)->kind() == K::kVarRef) {
        auto v = ctx.vars.find(e->child(0)->var_name());
        if (v != ctx.vars.end() && v->second.is_tuple) {
          TypePtr t = v->second.AttrType(e->attr());
          return t != nullptr && t->is_bag();
        }
      }
      return false;
    }
    default:
      return false;
  }
}

StatusOr<ExprPtr> Compiler::RewriteScalar(const ExprPtr& e, const Ctx& ctx) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kConst:
      return e;
    case K::kVarRef: {
      auto v = ctx.vars.find(e->var_name());
      if (v != ctx.vars.end()) {
        if (!v->second.is_tuple) return Expr::Var(v->second.scalar_col);
        return NotSupported("whole-tuple variable reference in scalar position");
      }
      // Possibly already a column name (plan expressions round-trip).
      if (ctx.cols.count(e->var_name())) return e;
      return Status::Invalid("unbound variable in scalar expression: " +
                             e->var_name());
    }
    case K::kProj: {
      if (e->child(0)->kind() == K::kVarRef) {
        auto v = ctx.vars.find(e->child(0)->var_name());
        if (v != ctx.vars.end() && v->second.is_tuple) {
          std::string col = v->second.ColOf(e->attr());
          if (ctx.cols.count(col) == 0) {
            return Status::Invalid("column not in pipeline: " + col);
          }
          return Expr::Var(col);
        }
      }
      return NotSupported("projection base is not a bound tuple variable");
    }
    case K::kPrimOp: {
      TRANCE_ASSIGN_OR_RETURN(ExprPtr a, RewriteScalar(e->child(0), ctx));
      TRANCE_ASSIGN_OR_RETURN(ExprPtr b, RewriteScalar(e->child(1), ctx));
      return Expr::PrimOp(e->prim_op(), a, b);
    }
    case K::kCmp: {
      TRANCE_ASSIGN_OR_RETURN(ExprPtr a, RewriteScalar(e->child(0), ctx));
      TRANCE_ASSIGN_OR_RETURN(ExprPtr b, RewriteScalar(e->child(1), ctx));
      return Expr::Cmp(e->cmp_op(), a, b);
    }
    case K::kBoolOp: {
      TRANCE_ASSIGN_OR_RETURN(ExprPtr a, RewriteScalar(e->child(0), ctx));
      TRANCE_ASSIGN_OR_RETURN(ExprPtr b, RewriteScalar(e->child(1), ctx));
      return Expr::BoolOp(e->bool_op(), a, b);
    }
    case K::kNot: {
      TRANCE_ASSIGN_OR_RETURN(ExprPtr a, RewriteScalar(e->child(0), ctx));
      return Expr::Not(a);
    }
    case K::kNewLabel: {
      std::vector<nrc::NamedExpr> params;
      for (const auto& p : e->fields()) {
        TRANCE_ASSIGN_OR_RETURN(ExprPtr pe, RewriteScalar(p.expr, ctx));
        params.push_back({p.name, pe});
      }
      return Expr::NewLabel(std::move(params));
    }
    default:
      return NotSupported("scalar expression kind in plan pipeline");
  }
}

StatusOr<TypePtr> Compiler::TypeOfScalar(const ExprPtr& e, const Ctx& ctx) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kConst:
      return Type::Scalar(e->const_value().kind);
    case K::kVarRef: {
      auto it = ctx.cols.find(e->var_name());
      if (it == ctx.cols.end()) {
        return Status::Internal("TypeOfScalar: unknown column " +
                                e->var_name());
      }
      return it->second;
    }
    case K::kPrimOp: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr a, TypeOfScalar(e->child(0), ctx));
      TRANCE_ASSIGN_OR_RETURN(TypePtr b, TypeOfScalar(e->child(1), ctx));
      if (e->prim_op() == nrc::PrimOpKind::kDiv) return Type::Real();
      if ((a->is_scalar() && a->scalar_kind() == nrc::ScalarKind::kReal) ||
          (b->is_scalar() && b->scalar_kind() == nrc::ScalarKind::kReal)) {
        return Type::Real();
      }
      return Type::Int();
    }
    case K::kCmp:
    case K::kBoolOp:
    case K::kNot:
      return Type::Bool();
    case K::kNewLabel:
      return Type::Label();
    default:
      return NotSupported("TypeOfScalar on unsupported node");
  }
}

Status Compiler::BindVar(const std::string& var, const TypePtr& elem,
                         Ctx* ctx) {
  Binding b;
  if (elem->is_tuple()) {
    b.is_tuple = true;
    b.prefix = var;
    for (const auto& f : elem->fields()) {
      b.attrs.emplace_back(f.name, f.type);
      ctx->cols[var + "." + f.name] = f.type;
    }
  } else {
    b.is_tuple = false;
    b.scalar_col = var;
    ctx->cols[var] = elem;
  }
  ctx->vars[var] = std::move(b);
  return Status::OK();
}

namespace {
/// Builds the renamed scan Project for binding `var` over relation columns.
PlanPtr RenamedScan(const std::string& relation, const std::string& var,
                    const TypePtr& elem) {
  std::vector<NamedColumnExpr> cols;
  if (elem->is_tuple()) {
    for (const auto& f : elem->fields()) {
      cols.push_back({var + "." + f.name, Expr::Var(f.name)});
    }
  } else {
    cols.push_back({var, Expr::Var("_value")});
  }
  return PlanNode::Project(PlanNode::Scan(relation), std::move(cols));
}
}  // namespace

Status Compiler::AddGenerator(const Qualifier& gen,
                              std::vector<Qualifier>* quals, size_t gen_index,
                              Ctx* ctx, bool outer) {
  using K = Expr::Kind;
  const ExprPtr& dom = gen.domain;

  // Case 1: domain is a named relation (input or prior assignment), possibly
  // wrapped in MatLookup (shredded route; lookups become joins on labels).
  ExprPtr rel = dom;
  ExprPtr lookup_label;  // non-null for MatLookup domains
  if (dom->kind() == K::kMatLookup) {
    rel = dom->child(0);
    lookup_label = dom->child(1);
  }
  if (rel->kind() == K::kVarRef && env_.count(rel->var_name())) {
    TypePtr bag_t = env_.at(rel->var_name());
    if (!bag_t->is_bag()) {
      return Status::TypeError("generator domain is not a bag: " +
                               rel->var_name());
    }
    TypePtr elem = bag_t->element();

    // Dictionary scans expose the value fields under the variable and keep
    // the label under a hidden name for the join.
    std::string hidden_label_col;
    PlanPtr right;
    if (lookup_label != nullptr) {
      if (!elem->is_tuple() || elem->FieldIndex("label") < 0) {
        return Status::TypeError(
            "MatLookup domain lacks a label attribute: " + rel->var_name());
      }
      hidden_label_col = gen.var + "._label";
      std::vector<NamedColumnExpr> cols;
      cols.push_back({hidden_label_col, Expr::Var("label")});
      std::vector<nrc::Field> value_fields;
      for (const auto& f : elem->fields()) {
        if (f.name == "label") continue;
        cols.push_back({gen.var + "." + f.name, Expr::Var(f.name)});
        value_fields.push_back(f);
      }
      right = PlanNode::Project(PlanNode::Scan(rel->var_name()),
                                std::move(cols));
      elem = Type::Tuple(std::move(value_fields));
    } else {
      right = RenamedScan(rel->var_name(), gen.var, elem);
    }

    if (ctx->plan == nullptr) {
      if (lookup_label != nullptr) {
        return NotSupported("MatLookup as the first generator");
      }
      ctx->plan = right;
      return BindVar(gen.var, elem, ctx);
    }

    // Bind x tentatively to find join equalities in later filters.
    Ctx probe = *ctx;
    TRANCE_RETURN_NOT_OK(BindVar(gen.var, elem, &probe));

    std::vector<std::string> lkeys, rkeys;
    std::vector<NamedColumnExpr> lkey_exprs;  // computed left keys
    if (lookup_label != nullptr) {
      TRANCE_ASSIGN_OR_RETURN(ExprPtr lk, RewriteScalar(lookup_label, *ctx));
      if (lk->kind() == K::kVarRef) {
        lkeys.push_back(lk->var_name());
      } else {
        std::string tmp = FreshTmp();
        lkey_exprs.push_back({tmp, lk});
        lkeys.push_back(tmp);
      }
      rkeys.push_back(hidden_label_col);
    }
    for (size_t j = gen_index + 1; j < quals->size(); ++j) {
      Qualifier& q = (*quals)[j];
      if (q.is_gen || q.consumed || q.cond == nullptr) continue;
      if (q.cond->kind() != K::kCmp ||
          q.cond->cmp_op() != nrc::CmpOpKind::kEq) {
        continue;
      }
      // Try both orientations: (new-var side, bound side).
      for (int flip = 0; flip < 2; ++flip) {
        const ExprPtr& xs = q.cond->child(flip == 0 ? 0 : 1);
        const ExprPtr& bs = q.cond->child(flip == 0 ? 1 : 0);
        auto xr = RewriteScalar(xs, probe);
        auto br = RewriteScalar(bs, *ctx);
        if (!xr.ok() || !br.ok()) continue;
        // The x-side must be a column of the new variable.
        if ((*xr)->kind() != K::kVarRef) continue;
        const std::string& xcol = (*xr)->var_name();
        if (xcol.rfind(gen.var + ".", 0) != 0 && xcol != gen.var) continue;
        if ((*br)->kind() == K::kVarRef) {
          lkeys.push_back((*br)->var_name());
        } else {
          std::string tmp = FreshTmp();
          lkey_exprs.push_back({tmp, *br});
          lkeys.push_back(tmp);
        }
        rkeys.push_back(xcol);
        q.consumed = true;
        break;
      }
    }
    PlanPtr left = ctx->plan;
    if (!lkey_exprs.empty()) {
      for (const auto& c : lkey_exprs) {
        TRANCE_ASSIGN_OR_RETURN(TypePtr t, TypeOfScalar(c.expr, *ctx));
        ctx->cols[c.name] = t;
      }
      left = PlanNode::Extend(left, lkey_exprs);
    }
    ctx->plan = PlanNode::Join(left, right, lkeys, rkeys, outer);
    TRANCE_RETURN_NOT_OK(BindVar(gen.var, elem, ctx));
    if (lookup_label != nullptr) {
      ctx->cols[hidden_label_col] = Type::Label();
    }
    return Status::OK();
  }

  // Case 2: domain is a bag-valued attribute path of a bound variable.
  if (dom->kind() == K::kProj && dom->child(0)->kind() == K::kVarRef) {
    auto v = ctx->vars.find(dom->child(0)->var_name());
    if (v == ctx->vars.end() || !v->second.is_tuple) {
      return Status::Invalid("generator over attribute of unbound variable " +
                             dom->child(0)->var_name());
    }
    std::string bag_col = v->second.ColOf(dom->attr());
    auto ct = ctx->cols.find(bag_col);
    if (ct == ctx->cols.end() || !ct->second->is_bag()) {
      return Status::TypeError("generator over non-bag column " + bag_col);
    }
    if (ctx->plan == nullptr) {
      return NotSupported("attribute generator without an outer generator");
    }
    TypePtr elem = ct->second->element();
    ctx->plan = PlanNode::Unnest(ctx->plan, bag_col, gen.var, outer, "");
    ctx->cols.erase(bag_col);  // mu projects the bag attribute away
    return BindVar(gen.var, elem, ctx);
  }

  return NotSupported("generator domain shape");
}

Status Compiler::ProcessQualifiers(std::vector<Qualifier>* quals, Ctx* ctx,
                                   bool outer,
                                   const std::vector<std::string>& G) {
  for (size_t i = 0; i < quals->size(); ++i) {
    Qualifier& q = (*quals)[i];
    if (q.consumed) continue;
    if (q.is_gen) {
      TRANCE_RETURN_NOT_OK(AddGenerator(q, quals, i, ctx, outer));
      q.consumed = true;
    } else {
      TRANCE_ASSIGN_OR_RETURN(ExprPtr cond, RewriteScalar(q.cond, *ctx));
      if (ctx->plan == nullptr) {
        return NotSupported("filter before any generator");
      }
      if (outer) {
        // A plain selection would drop outer tuples that must survive with
        // empty inner bags: failing rows instead keep only the enclosing
        // grouping columns (everything else nulled), which the enclosing
        // Gammas read as a miss.
        ctx->plan = PlanNode::OuterSelect(ctx->plan, cond, G);
      } else {
        ctx->plan = PlanNode::Select(ctx->plan, cond);
      }
      q.consumed = true;
    }
  }
  return Status::OK();
}

StatusOr<Compiler::LevelOut> Compiler::ProcessHead(const ExprPtr& head,
                                                   Ctx ctx,
                                                   std::vector<std::string> G,
                                                   bool outer) {
  (void)outer;  // nesting decisions key off G; kept for symmetry
  using K = Expr::Kind;
  if (head->kind() != K::kSingleton ||
      head->child(0)->kind() != K::kTupleCtor) {
    return NotSupported("comprehension head that is not a tuple singleton");
  }
  const auto& fields = head->child(0)->fields();

  // Partition head attributes.
  struct BagAttr {
    std::string name;
    ExprPtr expr;
  };
  std::vector<std::pair<std::string, ExprPtr>> scalars;  // attr, source expr
  std::vector<BagAttr> bags;
  for (const auto& f : fields) {
    if (IsBagExpr(f.expr, ctx)) {
      bags.push_back({f.name, f.expr});
    } else {
      scalars.push_back({f.name, f.expr});
    }
  }
  if (bags.size() > 1) {
    return NotSupported("more than one bag-valued attribute per tuple");
  }

  LevelOut out;
  // Scalars: reuse existing columns where possible, otherwise extend.
  std::string lvl = FreshLvl();
  std::vector<NamedColumnExpr> extend_cols;
  std::vector<std::pair<std::string, std::string>> scalar_cols;  // attr->col
  for (const auto& [name, src] : scalars) {
    // A bag-typed passthrough column (e.g. `corders := c.corders`) is not a
    // scalar; IsBagExpr caught subqueries but a Proj of bag type lands here
    // only if typed as bag — IsBagExpr covers it, so src is scalar.
    TRANCE_ASSIGN_OR_RETURN(ExprPtr rewritten, RewriteScalar(src, ctx));
    if (rewritten->kind() == K::kVarRef) {
      scalar_cols.emplace_back(name, rewritten->var_name());
    } else {
      std::string col = lvl + "." + name;
      extend_cols.push_back({col, rewritten});
      scalar_cols.emplace_back(name, col);
    }
  }
  if (!extend_cols.empty()) {
    for (const auto& c : extend_cols) {
      TRANCE_ASSIGN_OR_RETURN(TypePtr t, TypeOfScalar(c.expr, ctx));
      ctx.cols[c.name] = t;
    }
    ctx.plan = PlanNode::Extend(ctx.plan, extend_cols);
  }

  if (bags.empty()) {
    out.ctx = std::move(ctx);
    for (auto& [attr, col] : scalar_cols) out.attrs.emplace_back(attr, col);
    return out;
  }

  const BagAttr& bag = bags[0];
  // Passthrough of an existing bag column?
  if (bag.expr->kind() == K::kProj &&
      bag.expr->child(0)->kind() == K::kVarRef) {
    auto v = ctx.vars.find(bag.expr->child(0)->var_name());
    if (v != ctx.vars.end() && v->second.is_tuple) {
      std::string col = v->second.ColOf(bag.expr->attr());
      if (ctx.cols.count(col) && ctx.cols[col]->is_bag()) {
        out.ctx = std::move(ctx);
        for (auto& [attr, c] : scalar_cols) out.attrs.emplace_back(attr, c);
        out.attrs.emplace_back(bag.name, col);
        return out;
      }
    }
  }

  // Enter a new nesting level: attach a unique id, expand G with the id and
  // this level's scalar output attributes, compile the subquery with outer
  // operators, and regroup with Gamma-union on the way out.
  std::string uid = FreshUid();
  ctx.plan = PlanNode::AddIndex(ctx.plan, uid);
  ctx.cols[uid] = Type::Int();
  std::vector<std::string> g2 = G;
  g2.push_back(uid);
  for (const auto& [attr, col] : scalar_cols) {
    const TypePtr& t = ctx.cols[col];
    if (t != nullptr && (t->is_scalar() || t->is_label())) {
      if (std::find(g2.begin(), g2.end(), col) == g2.end()) {
        g2.push_back(col);
      }
    }
  }

  TRANCE_ASSIGN_OR_RETURN(LevelOut sub, CompileBag(bag.expr, ctx, g2, true));

  std::vector<std::string> values, value_names;
  for (const auto& [attr, col] : sub.attrs) {
    values.push_back(col);
    value_names.push_back(attr);
  }
  std::string bag_col = lvl + "." + bag.name;
  std::string indicator = sub.indicator;
  if (!indicator.empty() && sub.ctx.cols.count(indicator) == 0) {
    indicator.clear();  // consumed by an aggregation; fall back to values
  }
  PlanPtr nested = PlanNode::Nest(sub.ctx.plan, NestAgg::kBagUnion, g2, values,
                                  value_names, bag_col, indicator);

  Ctx out_ctx;
  out_ctx.plan = nested;
  std::vector<nrc::Field> inner_fields;
  for (const auto& [attr, col] : sub.attrs) {
    TypePtr t = sub.ctx.cols.count(col) ? sub.ctx.cols[col] : nullptr;
    if (t == nullptr) {
      return Status::Internal("missing type for nested value column " + col);
    }
    inner_fields.push_back({attr, t});
  }
  for (const auto& g : g2) {
    auto it = sub.ctx.cols.find(g);
    if (it == sub.ctx.cols.end()) {
      return Status::Internal("grouping column lost in subquery: " + g);
    }
    out_ctx.cols[g] = it->second;
  }
  out_ctx.cols[bag_col] = Type::Bag(Type::Tuple(std::move(inner_fields)));
  // Variables from enclosing scopes are no longer addressable column-wise
  // after Gamma; only G columns survive. Keep bindings whose columns are
  // intact (conservatively: none).
  out.ctx = std::move(out_ctx);
  for (auto& [attr, col] : scalar_cols) out.attrs.emplace_back(attr, col);
  out.attrs.emplace_back(bag.name, bag_col);
  return out;
}

StatusOr<Compiler::LevelOut> Compiler::CompileComp(const ExprPtr& e, Ctx ctx,
                                                   std::vector<std::string> G,
                                                   bool outer) {
  std::vector<Qualifier> quals;
  ExprPtr head;
  Decompose(e, &quals, &head);
  TRANCE_RETURN_NOT_OK(ProcessQualifiers(&quals, &ctx, outer, G));

  // Null indicator for this level: the first scalar/label column bound by
  // the level's first generator is NULL exactly when the level's first outer
  // operator produced a miss. It is threaded through the grouping sets of
  // deeper levels (grouping-neutral: those sets already contain this level's
  // unique id) so the parent Gamma-union can distinguish "no element" from
  // "element with empty inner bags".
  std::string indicator;
  if (outer) {
    for (const auto& q : quals) {
      if (!q.is_gen) continue;
      auto v = ctx.vars.find(q.var);
      if (v == ctx.vars.end()) break;
      const Binding& b = v->second;
      if (!b.is_tuple) {
        indicator = b.scalar_col;
      } else {
        for (const auto& [attr, t] : b.attrs) {
          if ((t->is_scalar() || t->is_label()) &&
              ctx.cols.count(b.ColOf(attr))) {
            indicator = b.ColOf(attr);
            break;
          }
        }
      }
      break;
    }
    if (!indicator.empty() &&
        std::find(G.begin(), G.end(), indicator) == G.end()) {
      G.push_back(indicator);
    }
  }
  TRANCE_ASSIGN_OR_RETURN(LevelOut out,
                          ProcessHead(head, std::move(ctx), std::move(G),
                                      outer));
  out.indicator = indicator;
  return out;
}

StatusOr<Compiler::LevelOut> Compiler::CompileBag(const ExprPtr& e, Ctx ctx,
                                                  std::vector<std::string> G,
                                                  bool outer) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kSumBy: {
      TRANCE_ASSIGN_OR_RETURN(LevelOut sub, CompileBag(e->child(0), ctx, G,
                                                       outer));
      auto col_of = [&](const std::string& attr) -> StatusOr<std::string> {
        for (const auto& [a, c] : sub.attrs) {
          if (a == attr) return c;
        }
        return Status::KeyError("sumBy attribute not produced: " + attr);
      };
      std::vector<std::string> keys = G;
      LevelOut out;
      out.attrs.clear();
      for (const auto& k : e->keys()) {
        TRANCE_ASSIGN_OR_RETURN(std::string c, col_of(k));
        keys.push_back(c);
        out.attrs.emplace_back(k, c);
      }
      std::vector<std::string> values;
      for (const auto& v : e->values()) {
        TRANCE_ASSIGN_OR_RETURN(std::string c, col_of(v));
        values.push_back(c);
        out.attrs.emplace_back(v, c);
      }
      out.ctx.plan = PlanNode::Nest(sub.ctx.plan, NestAgg::kSum, keys, values,
                                    values, "");
      for (const auto& c : keys) out.ctx.cols[c] = sub.ctx.cols[c];
      for (const auto& c : values) out.ctx.cols[c] = sub.ctx.cols[c];
      // Gamma-plus emits NULL sums exactly for groups with no real
      // contribution (outer misses *and* groups whose every row was an
      // outer-operator miss); the enclosing Gamma-union must skip those, so
      // the sum column is this level's miss indicator.
      if (!values.empty()) out.indicator = values[0];
      return out;
    }
    case K::kGroupBy: {
      TRANCE_ASSIGN_OR_RETURN(LevelOut sub, CompileBag(e->child(0), ctx, G,
                                                       outer));
      auto col_of = [&](const std::string& attr) -> StatusOr<std::string> {
        for (const auto& [a, c] : sub.attrs) {
          if (a == attr) return c;
        }
        return Status::KeyError("groupBy attribute not produced: " + attr);
      };
      std::vector<std::string> keys = G;
      LevelOut out;
      for (const auto& k : e->keys()) {
        TRANCE_ASSIGN_OR_RETURN(std::string c, col_of(k));
        keys.push_back(c);
        out.attrs.emplace_back(k, c);
      }
      std::vector<std::string> values, value_names;
      std::vector<nrc::Field> inner_fields;
      for (const auto& [a, c] : sub.attrs) {
        if (std::find(e->keys().begin(), e->keys().end(), a) !=
            e->keys().end()) {
          continue;
        }
        values.push_back(c);
        value_names.push_back(a);
        inner_fields.push_back({a, sub.ctx.cols[c]});
      }
      std::string gcol = FreshLvl() + "." + e->attr();
      out.ctx.plan = PlanNode::Nest(sub.ctx.plan, NestAgg::kBagUnion, keys,
                                    values, value_names, gcol);
      for (const auto& c : keys) out.ctx.cols[c] = sub.ctx.cols[c];
      out.ctx.cols[gcol] = Type::Bag(Type::Tuple(std::move(inner_fields)));
      out.attrs.emplace_back(e->attr(), gcol);
      return out;
    }
    case K::kDedup: {
      if (!G.empty()) return NotSupported("dedup below the root level");
      TRANCE_ASSIGN_OR_RETURN(LevelOut sub,
                              CompileBag(e->child(0), ctx, G, outer));
      std::vector<NamedColumnExpr> cols;
      LevelOut out;
      for (const auto& [a, c] : sub.attrs) {
        cols.push_back({a, Expr::Var(c)});
        out.ctx.cols[a] = sub.ctx.cols[c];
        out.attrs.emplace_back(a, a);
      }
      out.ctx.plan = PlanNode::Dedup(
          PlanNode::Project(sub.ctx.plan, std::move(cols)));
      return out;
    }
    case K::kVarRef: {
      // Whole-relation passthrough: synthesize `for x in R union {<attrs>}`.
      auto it = env_.find(e->var_name());
      if (it == env_.end() || !it->second->is_bag() ||
          !it->second->element()->is_tuple()) {
        return NotSupported("bag variable reference of this shape");
      }
      if (ctx.plan != nullptr) {
        return NotSupported("relation passthrough below a generator");
      }
      std::string x = FreshTmp();
      std::vector<nrc::NamedExpr> fields;
      for (const auto& f : it->second->element()->fields()) {
        fields.push_back({f.name, Expr::Proj(Expr::Var(x), f.name)});
      }
      ExprPtr synth = Expr::ForUnion(
          x, e, Expr::Singleton(Expr::Tuple(std::move(fields))));
      return CompileComp(synth, std::move(ctx), std::move(G), outer);
    }
    default:
      return CompileComp(e, std::move(ctx), std::move(G), outer);
  }
}

StatusOr<PlanPtr> Compiler::CompileRoot(const ExprPtr& query) {
  using K = Expr::Kind;
  ExprPtr q = InlineLets(query);
  if (q->kind() == K::kUnion) {
    TRANCE_ASSIGN_OR_RETURN(PlanPtr a, CompileRoot(q->child(0)));
    TRANCE_ASSIGN_OR_RETURN(PlanPtr b, CompileRoot(q->child(1)));
    return PlanNode::UnionAll(a, b);
  }
  Ctx ctx;
  TRANCE_ASSIGN_OR_RETURN(LevelOut out, CompileBag(q, ctx, {}, false));
  std::vector<NamedColumnExpr> cols;
  bool identity = true;
  for (const auto& [attr, col] : out.attrs) {
    cols.push_back({attr, Expr::Var(col)});
    if (attr != col) identity = false;
  }
  if (identity &&
      out.ctx.cols.size() == out.attrs.size()) {
    return out.ctx.plan;  // already exactly the output columns
  }
  return PlanNode::Project(out.ctx.plan, std::move(cols));
}

}  // namespace

StatusOr<PlanPtr> Unnester::Compile(const nrc::ExprPtr& query) {
  Compiler c(env_, &uid_counter_, &lvl_counter_, &tmp_counter_);
  return c.CompileRoot(query);
}

StatusOr<PlanProgram> Unnester::CompileProgram(const nrc::Program& program) {
  PlanProgram out;
  out.inputs = program.inputs;
  nrc::Typechecker tc;
  nrc::TypeEnv env = env_;
  for (const auto& in : program.inputs) {
    env[in.name] = in.type;
  }
  for (const auto& a : program.assignments) {
    TRANCE_ASSIGN_OR_RETURN(nrc::TypePtr t, tc.Check(a.expr, env));
    Unnester sub(env);
    sub.uid_counter_ = uid_counter_;
    sub.lvl_counter_ = lvl_counter_;
    sub.tmp_counter_ = tmp_counter_;
    TRANCE_ASSIGN_OR_RETURN(PlanPtr p, sub.Compile(a.expr));
    uid_counter_ = sub.uid_counter_;
    lvl_counter_ = sub.lvl_counter_;
    tmp_counter_ = sub.tmp_counter_;
    out.assignments.push_back({a.var, p});
    env[a.var] = t;
  }
  env_ = env;
  return out;
}

}  // namespace plan
}  // namespace trance
