#include "skew/skew.h"

#include <unordered_map>

#include "util/hash.h"

namespace trance {
namespace skew {

using runtime::Cluster;
using runtime::Dataset;
using runtime::Field;
using runtime::JoinType;
using runtime::KeyView;
using runtime::Partitioning;
using runtime::Row;
using runtime::StageStats;

namespace key_codec = runtime::key_codec;

bool HeavyKeySet::IsHeavy(const Row& row, const std::vector<int>& cols) const {
  if (use_codec) {
    if (use_flat ? flat.size() == 0 : encoded.empty()) return false;
    // Reusable thread-local scratch buffer: membership tests allocate
    // nothing (the historical path built a KeyView deep copy per probe).
    thread_local key_codec::KeyEncoder scratch;
    auto kv = scratch.Encode(row, cols);
    // A key that cannot encode (bag-typed) was never sampled into the set.
    if (!kv.ok()) return false;
    if (use_flat) {
      return flat.Find(kv.value()) !=
             runtime::flat_hash::FlatKeyIndex::kNotFound;
    }
    return encoded.find(kv.value()) != encoded.end();
  }
  return keys.count(runtime::ExtractKey(row, cols)) > 0;
}

SkewTriple SkewTriple::AllLight(Dataset ds) {
  SkewTriple t;
  t.heavy.schema = ds.schema;
  t.heavy.store.InitRows(ds.NumPartitions());
  t.light = std::move(ds);
  t.heavy_keys = std::nullopt;
  return t;
}

StatusOr<Dataset> MergeTriple(Cluster* cluster, const SkewTriple& t,
                              const std::string& name) {
  if (t.heavy.NumRows() == 0) return t.light;
  return runtime::UnionAll(cluster, t.light, t.heavy, name + ".merge");
}

namespace {

/// Static codec gate, mirroring the keyed operators: key columns statically
/// typed as bags keep the legacy KeyView storage.
bool KeyColsEncodable(const runtime::Schema& s, const std::vector<int>& cols) {
  for (int c : cols) {
    const auto& t = s.col(static_cast<size_t>(c)).type;
    if (t != nullptr && t->is_bag()) return false;
  }
  return true;
}

/// Dispatches the encoded sampling loop to its counting-index type (the
/// keyed-operator WithKeyIndex idiom): the flat table by default, the
/// node-based map when enable_flat_hash is off.
template <class T>
struct IndexTag {
  using type = T;
};
template <class F>
auto WithCountIndex(bool use_flat, F&& f) {
  return use_flat ? f(IndexTag<runtime::flat_hash::FlatKeyIndex>{})
                  : f(IndexTag<runtime::flat_hash::StdKeyIndex>{});
}

}  // namespace

HeavyKeySet DetectHeavyKeys(Cluster* cluster, const Dataset& in,
                            std::vector<int> key_cols) {
  const auto& cfg = cluster->config();
  HeavyKeySet out;
  out.key_cols = key_cols;
  out.use_codec =
      cluster->key_codec_enabled() && KeyColsEncodable(in.schema, key_cols);
  out.use_flat = out.use_codec && cluster->flat_hash_enabled();
  // Deterministic pseudo-random sampling (hash-selected positions; a fixed
  // stride would alias with cyclic key layouts).
  uint64_t stride = cfg.skew_sample_rate <= 0
                        ? 1
                        : static_cast<uint64_t>(1.0 / cfg.skew_sample_rate);
  if (stride == 0) stride = 1;
  StageStats stage;
  stage.op = "heavy_keys";
  key_codec::KeyStats ks;
  key_codec::KeyEncoder enc;  // encodes once per sampled row
  for (size_t p = 0; p < in.NumPartitions(); ++p) {
    const size_t part_rows = in.PartitionRowCount(p);
    // Per-partition sample frequencies. The count maintenance is identical
    // in every mode (key identity coincides), so the heavy set — and the
    // build/probe/chain telemetry — are codec- and flat-invariant. Sampled
    // rows read transiently from the store in either residence (unsampled
    // positions never materialize on block-resident input).
    auto sample_hit = [&](size_t i) {
      return Mix64((static_cast<uint64_t>(p) << 32) ^ i ^ cfg.seed) % stride ==
             0;
    };
    size_t sampled = 0;
    auto cutoff_of = [&] {
      size_t cutoff = static_cast<size_t>(
          cfg.heavy_key_threshold * static_cast<double>(sampled));
      return cutoff < 2 ? size_t{2} : cutoff;
    };
    if (out.use_codec) {
      WithCountIndex(out.use_flat, [&](auto tag) {
        typename decltype(tag)::type idx;
        std::vector<size_t> cnt;  // dense index -> sample frequency
        for (size_t i = 0; i < part_rows; ++i) {
          if (!sample_hit(i)) continue;
          ++sampled;
          stage.rows_in++;
          auto kv = enc.Encode(in.RowAt(p, i), key_cols);
          if (!kv.ok()) continue;  // unencodable key: never a heavy candidate
          auto [gi, inserted] = idx.FindOrInsert(kv.value());
          if (inserted) {
            cnt.push_back(0);
            ks.build_rows++;
          } else {
            ks.probe_hits++;
          }
          if (++cnt[gi] > ks.max_chain) ks.max_chain = cnt[gi];
        }
        runtime::flat_hash::NoteTableStats(idx, &ks);
        if (sampled == 0) return;
        const size_t cutoff = cutoff_of();
        for (size_t gi = 0; gi < idx.size(); ++gi) {
          if (cnt[gi] < cutoff) continue;
          key_codec::EncodedKeyView k = idx.KeyAt(static_cast<uint32_t>(gi));
          if (out.use_flat) {
            out.flat.FindOrInsert(k);
          } else {
            out.encoded.insert(key_codec::Materialize(k));
          }
        }
      });
      continue;
    }
    std::unordered_map<KeyView, size_t, runtime::KeyViewHash,
                       runtime::KeyViewEq>
        counts;
    for (size_t i = 0; i < part_rows; ++i) {
      if (!sample_hit(i)) continue;
      ++sampled;
      stage.rows_in++;
      auto [it, inserted] =
          counts.try_emplace(runtime::ExtractKey(in.RowAt(p, i), key_cols), 0);
      if (inserted) {
        ks.build_rows++;
      } else {
        ks.probe_hits++;
      }
      if (++it->second > ks.max_chain) ks.max_chain = it->second;
    }
    if (sampled == 0) continue;
    const size_t cutoff = cutoff_of();
    for (const auto& [k, c] : counts) {
      if (c >= cutoff) out.keys.insert(k);
    }
  }
  // The sampling pass is cheap but not free; account a small stage. The
  // heavy-key set itself is tiny (<= 100/threshold keys per partition) and is
  // broadcast to all workers.
  ks.encode_bytes = enc.bytes_encoded();
  stage.key_encode_bytes = ks.encode_bytes;
  stage.hash_build_rows = ks.build_rows;
  stage.hash_probe_hits = ks.probe_hits;
  stage.hash_max_chain = ks.max_chain;
  stage.hash_table_bytes = ks.table_bytes;
  stage.hash_resizes = ks.resizes;
  stage.hash_probe_len_max = ks.probe_len_max;
  stage.shuffle_bytes =
      out.size() * 16 * static_cast<uint64_t>(cluster->num_partitions());
  stage.heavy_key_count = out.size();
  stage.movement = runtime::DataMovement::kBroadcast;
  cluster->RecordStage(std::move(stage));
  return out;
}

StatusOr<SkewTriple> SplitByHeavyKeys(Cluster* cluster, const Dataset& in,
                                      std::vector<int> key_cols,
                                      std::optional<HeavyKeySet> known,
                                      const std::string& name) {
  HeavyKeySet hk = known.has_value()
                       ? std::move(*known)
                       : DetectHeavyKeys(cluster, in, key_cols);
  SkewTriple out;
  out.light.schema = in.schema;
  out.heavy.schema = in.schema;
  out.light.store.InitRows(in.NumPartitions());
  out.heavy.store.InitRows(in.NumPartitions());
  out.light.partitioning = in.partitioning;
  out.heavy.partitioning = Partitioning::None();
  StageStats stage;
  stage.op = name + ".split";
  for (size_t p = 0; p < in.NumPartitions(); ++p) {
    const size_t part_rows = in.PartitionRowCount(p);
    for (size_t i = 0; i < part_rows; ++i) {
      Row row = in.RowAt(p, i);  // transient read in either residence
      ++stage.rows_in;
      if (!hk.empty() && hk.IsHeavy(row, key_cols)) {
        out.heavy.store.rows(p).push_back(std::move(row));
      } else {
        out.light.store.rows(p).push_back(std::move(row));
      }
    }
  }
  stage.rows_out = stage.rows_in;
  stage.heavy_key_count = hk.size();
  cluster->RecordStage(std::move(stage));
  hk.key_cols = std::move(key_cols);
  out.heavy_keys = std::move(hk);
  return out;
}

StatusOr<SkewTriple> SkewAwareJoin(Cluster* cluster, const SkewTriple& left,
                                   const SkewTriple& right,
                                   std::vector<int> left_keys,
                                   std::vector<int> right_keys,
                                   JoinType type, const std::string& name) {
  // (X_L, X_H, hk) = X.heavyKeys(f): reuse the incoming key set when it was
  // computed on the same columns, otherwise merge and re-detect.
  SkewTriple x;
  if (left.heavy_keys.has_value() && left.heavy_keys->key_cols == left_keys) {
    x = left;
  } else {
    TRANCE_ASSIGN_OR_RETURN(Dataset merged,
                            MergeTriple(cluster, left, name + ".lhs"));
    TRANCE_ASSIGN_OR_RETURN(
        x, SplitByHeavyKeys(cluster, merged, left_keys, std::nullopt,
                            name + ".lhs"));
  }
  const HeavyKeySet& hk = *x.heavy_keys;

  // Y_L = Y.filter(!hk(g(y))); Y_H = Y.filter(hk(g(y))). The copy keeps the
  // set's storage mode along with its keys.
  TRANCE_ASSIGN_OR_RETURN(Dataset y, MergeTriple(cluster, right, name + ".rhs"));
  HeavyKeySet rhk = hk;
  rhk.key_cols = right_keys;
  TRANCE_ASSIGN_OR_RETURN(
      SkewTriple ysplit,
      SplitByHeavyKeys(cluster, y, right_keys, std::move(rhk), name + ".rhs"));

  TRANCE_ASSIGN_OR_RETURN(
      Dataset light, runtime::HashJoin(cluster, x.light, ysplit.light,
                                       left_keys, right_keys, type,
                                       name + ".light"));
  TRANCE_ASSIGN_OR_RETURN(
      Dataset heavy,
      runtime::BroadcastJoin(cluster, x.heavy, ysplit.heavy, left_keys,
                             right_keys, type, name + ".heavy"));
  SkewTriple out;
  out.light = std::move(light);
  out.heavy = std::move(heavy);
  // Key columns keep their positions (left columns lead the join output).
  HeavyKeySet out_hk = hk;
  out_hk.key_cols = left_keys;
  out.heavy_keys = std::move(out_hk);
  return out;
}

StatusOr<SkewTriple> SkewAwareBagToDict(Cluster* cluster, const SkewTriple& in,
                                        int label_col,
                                        const std::string& name) {
  SkewTriple x;
  std::vector<int> cols{label_col};
  if (in.heavy_keys.has_value() && in.heavy_keys->key_cols == cols) {
    x = in;
  } else {
    TRANCE_ASSIGN_OR_RETURN(Dataset merged, MergeTriple(cluster, in, name));
    TRANCE_ASSIGN_OR_RETURN(
        x, SplitByHeavyKeys(cluster, merged, cols, std::nullopt, name));
  }
  // Light labels are repartitioned (restoring the label-based partitioning
  // guarantee); heavy labels stay distributed where they are.
  TRANCE_ASSIGN_OR_RETURN(
      Dataset light,
      runtime::Repartition(cluster, x.light, cols, name + ".light"));
  SkewTriple out;
  out.light = std::move(light);
  out.heavy = x.heavy;
  out.heavy_keys = x.heavy_keys;
  return out;
}

}  // namespace skew
}  // namespace trance
