#include "skew/skew.h"

#include <unordered_map>

#include "util/hash.h"

namespace trance {
namespace skew {

using runtime::Cluster;
using runtime::Dataset;
using runtime::Field;
using runtime::JoinType;
using runtime::KeyView;
using runtime::Partitioning;
using runtime::Row;
using runtime::StageStats;

SkewTriple SkewTriple::AllLight(Dataset ds) {
  SkewTriple t;
  t.heavy.schema = ds.schema;
  t.heavy.partitions.resize(ds.partitions.size());
  t.light = std::move(ds);
  t.heavy_keys = std::nullopt;
  return t;
}

StatusOr<Dataset> MergeTriple(Cluster* cluster, const SkewTriple& t,
                              const std::string& name) {
  if (t.heavy.NumRows() == 0) return t.light;
  return runtime::UnionAll(cluster, t.light, t.heavy, name + ".merge");
}

HeavyKeySet DetectHeavyKeys(Cluster* cluster, const Dataset& in,
                            std::vector<int> key_cols) {
  const auto& cfg = cluster->config();
  HeavyKeySet out;
  out.key_cols = key_cols;
  // Deterministic pseudo-random sampling (hash-selected positions; a fixed
  // stride would alias with cyclic key layouts).
  uint64_t stride = cfg.skew_sample_rate <= 0
                        ? 1
                        : static_cast<uint64_t>(1.0 / cfg.skew_sample_rate);
  if (stride == 0) stride = 1;
  StageStats stage;
  stage.op = "heavy_keys";
  for (size_t p = 0; p < in.partitions.size(); ++p) {
    const auto& part = in.partitions[p];
    std::unordered_map<KeyView, size_t, runtime::KeyViewHash,
                       runtime::KeyViewEq>
        counts;
    size_t sampled = 0;
    for (size_t i = 0; i < part.size(); ++i) {
      if (Mix64((static_cast<uint64_t>(p) << 32) ^ i ^ cfg.seed) % stride !=
          0) {
        continue;
      }
      ++counts[runtime::ExtractKey(part[i], key_cols)];
      ++sampled;
      stage.rows_in++;
    }
    if (sampled == 0) continue;
    size_t cutoff = static_cast<size_t>(
        cfg.heavy_key_threshold * static_cast<double>(sampled));
    if (cutoff < 2) cutoff = 2;
    for (const auto& [k, c] : counts) {
      if (c >= cutoff) out.keys.insert(k);
    }
  }
  // The sampling pass is cheap but not free; account a small stage. The
  // heavy-key set itself is tiny (<= 100/threshold keys per partition) and is
  // broadcast to all workers.
  stage.shuffle_bytes =
      out.keys.size() * 16 * static_cast<uint64_t>(cluster->num_partitions());
  stage.heavy_key_count = out.keys.size();
  stage.movement = runtime::DataMovement::kBroadcast;
  cluster->RecordStage(std::move(stage));
  return out;
}

StatusOr<SkewTriple> SplitByHeavyKeys(Cluster* cluster, const Dataset& in,
                                      std::vector<int> key_cols,
                                      std::optional<HeavyKeySet> known,
                                      const std::string& name) {
  HeavyKeySet hk = known.has_value()
                       ? std::move(*known)
                       : DetectHeavyKeys(cluster, in, key_cols);
  SkewTriple out;
  out.light.schema = in.schema;
  out.heavy.schema = in.schema;
  out.light.partitions.resize(in.partitions.size());
  out.heavy.partitions.resize(in.partitions.size());
  out.light.partitioning = in.partitioning;
  out.heavy.partitioning = Partitioning::None();
  StageStats stage;
  stage.op = name + ".split";
  for (size_t p = 0; p < in.partitions.size(); ++p) {
    for (const auto& row : in.partitions[p]) {
      ++stage.rows_in;
      if (!hk.empty() && hk.Contains(row, key_cols)) {
        out.heavy.partitions[p].push_back(row);
      } else {
        out.light.partitions[p].push_back(row);
      }
    }
  }
  stage.rows_out = stage.rows_in;
  stage.heavy_key_count = hk.keys.size();
  cluster->RecordStage(std::move(stage));
  hk.key_cols = std::move(key_cols);
  out.heavy_keys = std::move(hk);
  return out;
}

StatusOr<SkewTriple> SkewAwareJoin(Cluster* cluster, const SkewTriple& left,
                                   const SkewTriple& right,
                                   std::vector<int> left_keys,
                                   std::vector<int> right_keys,
                                   JoinType type, const std::string& name) {
  // (X_L, X_H, hk) = X.heavyKeys(f): reuse the incoming key set when it was
  // computed on the same columns, otherwise merge and re-detect.
  SkewTriple x;
  if (left.heavy_keys.has_value() && left.heavy_keys->key_cols == left_keys) {
    x = left;
  } else {
    TRANCE_ASSIGN_OR_RETURN(Dataset merged,
                            MergeTriple(cluster, left, name + ".lhs"));
    TRANCE_ASSIGN_OR_RETURN(
        x, SplitByHeavyKeys(cluster, merged, left_keys, std::nullopt,
                            name + ".lhs"));
  }
  const HeavyKeySet& hk = *x.heavy_keys;

  // Y_L = Y.filter(!hk(g(y))); Y_H = Y.filter(hk(g(y))).
  TRANCE_ASSIGN_OR_RETURN(Dataset y, MergeTriple(cluster, right, name + ".rhs"));
  HeavyKeySet rhk;
  rhk.key_cols = right_keys;
  rhk.keys = hk.keys;
  TRANCE_ASSIGN_OR_RETURN(
      SkewTriple ysplit,
      SplitByHeavyKeys(cluster, y, right_keys, std::move(rhk), name + ".rhs"));

  TRANCE_ASSIGN_OR_RETURN(
      Dataset light, runtime::HashJoin(cluster, x.light, ysplit.light,
                                       left_keys, right_keys, type,
                                       name + ".light"));
  TRANCE_ASSIGN_OR_RETURN(
      Dataset heavy,
      runtime::BroadcastJoin(cluster, x.heavy, ysplit.heavy, left_keys,
                             right_keys, type, name + ".heavy"));
  SkewTriple out;
  out.light = std::move(light);
  out.heavy = std::move(heavy);
  // Key columns keep their positions (left columns lead the join output).
  HeavyKeySet out_hk;
  out_hk.key_cols = left_keys;
  out_hk.keys = hk.keys;
  out.heavy_keys = std::move(out_hk);
  return out;
}

StatusOr<SkewTriple> SkewAwareBagToDict(Cluster* cluster, const SkewTriple& in,
                                        int label_col,
                                        const std::string& name) {
  SkewTriple x;
  std::vector<int> cols{label_col};
  if (in.heavy_keys.has_value() && in.heavy_keys->key_cols == cols) {
    x = in;
  } else {
    TRANCE_ASSIGN_OR_RETURN(Dataset merged, MergeTriple(cluster, in, name));
    TRANCE_ASSIGN_OR_RETURN(
        x, SplitByHeavyKeys(cluster, merged, cols, std::nullopt, name));
  }
  // Light labels are repartitioned (restoring the label-based partitioning
  // guarantee); heavy labels stay distributed where they are.
  TRANCE_ASSIGN_OR_RETURN(
      Dataset light,
      runtime::Repartition(cluster, x.light, cols, name + ".light"));
  SkewTriple out;
  out.light = std::move(light);
  out.heavy = x.heavy;
  out.heavy_keys = x.heavy_keys;
  return out;
}

}  // namespace skew
}  // namespace trance
