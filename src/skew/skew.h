// Skew-resilient processing (Section 5).
//
// A skew-triple is (light bag, heavy bag, heavy-key set). Heavy keys are
// found by a lightweight per-partition sampling procedure: a key is heavy
// when at least `heavy_key_threshold` of a partition's sampled tuples carry
// it — the 2.5% threshold bounds the number of heavy keys at 40 per
// partition, keeping them cheap to broadcast.
//
// Skew-aware operators (Fig. 6):
//  - join: light parts use the standard shuffle join; the heavy part leaves
//    the big side in place and broadcasts the matching rows of the small
//    side;
//  - nest/aggregate: merge light and heavy and run the standard
//    implementation (returning an empty heavy component);
//  - BagToDict: repartition only light labels, leaving heavy labels where
//    they are.
#ifndef TRANCE_SKEW_SKEW_H_
#define TRANCE_SKEW_SKEW_H_

#include <optional>
#include <unordered_set>
#include <vector>

#include "runtime/cluster.h"
#include "runtime/dataset.h"
#include "runtime/flat_hash.h"
#include "runtime/key_codec.h"
#include "runtime/ops.h"
#include "util/status.h"

namespace trance {
namespace skew {

/// The set of heavy keys of a dataset with respect to some key columns.
/// Storage follows the runtime's keyed-container modes, fixed at detection
/// time: with the key codec and flat table enabled the set is a
/// FlatKeyIndex used purely for membership (dense values unused — one arena
/// holds every heavy key's bytes, probes are memcmp against contiguous
/// memory); with the codec alone it is the node-based EncodedKey set; the
/// legacy mode keeps the historical KeyView set (whose Contains path
/// deep-copies the key per probe). IsHeavy encodes through a reusable
/// thread-local scratch encoder on both encoded modes. Membership decisions
/// are identical in all three modes.
struct HeavyKeySet {
  std::vector<int> key_cols;
  /// Storage mode, fixed at detection time from the cluster's codec flag so
  /// every later probe and copy uses one representation.
  bool use_codec = false;
  /// Flat-table storage (use_codec && the cluster's flat_hash flag at
  /// detection time).
  bool use_flat = false;
  runtime::flat_hash::FlatKeyIndex flat;
  std::unordered_set<runtime::key_codec::EncodedKey,
                     runtime::key_codec::EncodedKeyHash,
                     runtime::key_codec::EncodedKeyEq>
      encoded;  // codec storage (use_codec && !use_flat)
  std::unordered_set<runtime::KeyView, runtime::KeyViewHash,
                     runtime::KeyViewEq>
      keys;  // legacy storage (use_codec == false)

  /// True when the row's projected key is in the heavy set.
  bool IsHeavy(const runtime::Row& row, const std::vector<int>& cols) const;
  bool Contains(const runtime::Row& row, const std::vector<int>& cols) const {
    return IsHeavy(row, cols);
  }
  bool empty() const {
    if (use_flat) return flat.size() == 0;
    return use_codec ? encoded.empty() : keys.empty();
  }
  size_t size() const {
    if (use_flat) return flat.size();
    return use_codec ? encoded.size() : keys.size();
  }
};

/// A dataset split into light and heavy components. `heavy_keys` is the key
/// set that induced the split (nullopt when unknown / merged).
struct SkewTriple {
  runtime::Dataset light;
  runtime::Dataset heavy;
  std::optional<HeavyKeySet> heavy_keys;

  /// Wraps a plain dataset as an all-light triple with unknown keys.
  static SkewTriple AllLight(runtime::Dataset ds);

  size_t NumRows() const { return light.NumRows() + heavy.NumRows(); }
  const runtime::Schema& schema() const { return light.schema; }
};

/// Merges light and heavy back into one dataset (partition-wise concat; no
/// shuffle).
StatusOr<runtime::Dataset> MergeTriple(runtime::Cluster* cluster,
                                       const SkewTriple& t,
                                       const std::string& name);

/// Samples each partition and returns the heavy keys of `in` on `key_cols`
/// per the cluster's skew_sample_rate / heavy_key_threshold.
HeavyKeySet DetectHeavyKeys(runtime::Cluster* cluster,
                            const runtime::Dataset& in,
                            std::vector<int> key_cols);

/// Splits a dataset into a triple by the given (or freshly detected) keys.
StatusOr<SkewTriple> SplitByHeavyKeys(runtime::Cluster* cluster,
                                      const runtime::Dataset& in,
                                      std::vector<int> key_cols,
                                      std::optional<HeavyKeySet> known,
                                      const std::string& name);

/// Fig. 6 skew-aware join. The left side is the (potentially skewed) big
/// side: its heavy keys drive the split; the matching heavy rows of `right`
/// are broadcast.
StatusOr<SkewTriple> SkewAwareJoin(runtime::Cluster* cluster,
                                   const SkewTriple& left,
                                   const SkewTriple& right,
                                   std::vector<int> left_keys,
                                   std::vector<int> right_keys,
                                   runtime::JoinType type,
                                   const std::string& name);

/// Fig. 6 skew-aware BagToDict: repartitions light labels, leaves heavy
/// labels in place, and returns the triple with the detected heavy label set.
StatusOr<SkewTriple> SkewAwareBagToDict(runtime::Cluster* cluster,
                                        const SkewTriple& in, int label_col,
                                        const std::string& name);

}  // namespace skew
}  // namespace trance

#endif  // TRANCE_SKEW_SKEW_H_
