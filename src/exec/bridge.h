// Conversions between interpreter values (nested nrc::Value bags) and runtime
// datasets (schema'd rows). Tests use these to compare the distributed routes
// against the interpreter oracle; benchmarks use them to load generated data.
#ifndef TRANCE_EXEC_BRIDGE_H_
#define TRANCE_EXEC_BRIDGE_H_

#include <vector>

#include "nrc/value.h"
#include "runtime/dataset.h"
#include "util/status.h"

namespace trance {
namespace exec {

/// Converts a bag value into rows laid out per `schema` (recursing into
/// bag-valued columns).
StatusOr<std::vector<runtime::Row>> ValueToRows(const nrc::Value& bag,
                                                const runtime::Schema& schema);

/// Converts one tuple value into a row.
StatusOr<runtime::Row> TupleToRow(const nrc::Value& tuple,
                                  const runtime::Schema& schema);

/// Converts rows back into a bag value named per `schema`.
StatusOr<nrc::Value> RowsToValue(const std::vector<runtime::Row>& rows,
                                 const runtime::Schema& schema);

/// Field-level conversions.
StatusOr<runtime::Field> ValueToField(const nrc::Value& v,
                                      const nrc::TypePtr& type);
StatusOr<nrc::Value> FieldToValue(const runtime::Field& f,
                                  const nrc::TypePtr& type);

}  // namespace exec
}  // namespace trance

#endif  // TRANCE_EXEC_BRIDGE_H_
