#include "exec/pipeline.h"

#include <set>

#include "exec/bridge.h"
#include "obs/trace.h"
#include "plan/unnest.h"
#include "nrc/typecheck.h"
#include "plan/unnest.h"

namespace trance {
namespace exec {

namespace {
using TraceSpan = obs::Tracer::Span;
obs::Tracer* Trc() { return &obs::Tracer::Global(); }
}  // namespace

StatusOr<runtime::Dataset> RunStandard(const nrc::Program& program,
                                       Executor* executor,
                                       const PipelineOptions& options,
                                       plan::PlanProgram* compiled_out) {
  TraceSpan pipeline_span(Trc(), "standard_pipeline");
  nrc::TypeEnv env;
  {
    TraceSpan span(Trc(), "typecheck");
    nrc::Typechecker tc;
    TRANCE_ASSIGN_OR_RETURN(env, tc.CheckProgram(program));
  }

  plan::PlanProgram plans;
  {
    TraceSpan span(Trc(), "unnest");
    nrc::TypeEnv input_env;
    for (const auto& in : program.inputs) input_env[in.name] = in.type;
    plan::Unnester unnester(input_env);
    TRANCE_ASSIGN_OR_RETURN(plans, unnester.CompileProgram(program));
  }
  {
    TraceSpan span(Trc(), "optimize");
    TRANCE_ASSIGN_OR_RETURN(
        plans, plan::OptimizeProgram(plans, env, options.optimizer));
  }
  if (compiled_out != nullptr) *compiled_out = plans;

  TraceSpan span(Trc(), "execute");
  TRANCE_ASSIGN_OR_RETURN(std::string final_var,
                          executor->ExecuteProgram(plans));
  return executor->GetDataset(final_var);
}

namespace {

StatusOr<runtime::Dataset> ValueToDataset(runtime::Cluster* cluster,
                                          const nrc::Value& bag,
                                          const nrc::TypePtr& bag_type,
                                          const std::string& name) {
  TRANCE_ASSIGN_OR_RETURN(runtime::Schema schema,
                          runtime::Schema::FromBagType(bag_type));
  TRANCE_ASSIGN_OR_RETURN(std::vector<runtime::Row> rows,
                          ValueToRows(bag, schema));
  return runtime::Source(cluster, schema, std::move(rows), name);
}

}  // namespace

Status RegisterShreddedInput(Executor* executor, const std::string& name,
                             const nrc::TypePtr& type, const nrc::Value& value,
                             int64_t label_seed) {
  TRANCE_ASSIGN_OR_RETURN(shred::ShreddedValue sv,
                          shred::ShredValue(value, type, label_seed));
  TRANCE_ASSIGN_OR_RETURN(shred::ShreddedType st, shred::ShredType(type));
  std::string flat_name = shred::FlatInputName(name);
  TRANCE_ASSIGN_OR_RETURN(
      runtime::Dataset flat,
      ValueToDataset(executor->cluster(), sv.flat, st.flat, flat_name));
  executor->Register(flat_name, std::move(flat));

  TRANCE_ASSIGN_OR_RETURN(std::vector<shred::DictEntry> walk,
                          shred::DictTreeWalk(type));
  for (const auto& entry : walk) {
    const nrc::Value* dict = sv.Dict(entry.path);
    if (dict == nullptr) return Status::Internal("missing shredded dict");
    TRANCE_ASSIGN_OR_RETURN(nrc::TypePtr rel,
                            shred::RelationalDictType(entry.flat_elem));
    std::string dict_name = shred::DictInputName(name, entry.path);
    TRANCE_ASSIGN_OR_RETURN(runtime::Schema schema,
                            runtime::Schema::FromBagType(rel));
    TRANCE_ASSIGN_OR_RETURN(std::vector<runtime::Row> rows,
                            ValueToRows(*dict, schema));
    // Dictionaries carry the label-based partitioning guarantee.
    TRANCE_ASSIGN_OR_RETURN(
        runtime::Dataset ds,
        runtime::SourcePartitioned(executor->cluster(), schema,
                                   std::move(rows), {0}, dict_name));
    executor->Register(dict_name, std::move(ds));
  }
  return Status::OK();
}

StatusOr<ShreddedRun> RunShredded(const nrc::Program& program,
                                  Executor* executor,
                                  const PipelineOptions& options,
                                  shred::MaterializeMode mode,
                                  plan::PlanProgram* compiled_out) {
  TraceSpan pipeline_span(Trc(), "shredded_pipeline");
  shred::MaterializedProgram mat;
  {
    TraceSpan span(Trc(), "shred_materialize");
    TRANCE_ASSIGN_OR_RETURN(mat, shred::ShredAndMaterialize(program, mode));
  }
  if (mat.interpreter_only) {
    return Status::NotImplemented(
        "baseline materialization kept a match construct; only the "
        "interpreter can evaluate this program");
  }
  nrc::TypeEnv env;
  {
    TraceSpan span(Trc(), "typecheck");
    nrc::Typechecker tc;
    TRANCE_ASSIGN_OR_RETURN(env, tc.CheckProgram(mat.program));
  }

  plan::PlanProgram plans;
  {
    TraceSpan span(Trc(), "unnest");
    nrc::TypeEnv input_env;
    for (const auto& in : mat.program.inputs) input_env[in.name] = in.type;
    plan::Unnester unnester(input_env);
    TRANCE_ASSIGN_OR_RETURN(plans, unnester.CompileProgram(mat.program));
  }
  {
    TraceSpan span(Trc(), "optimize");
    TRANCE_ASSIGN_OR_RETURN(
        plans, plan::OptimizeProgram(plans, env, options.optimizer));
  }

  // Dictionary assignments get the BagToDict cast: label partitioning
  // guarantee, skew-aware in skew mode (Fig. 6).
  std::set<std::string> dict_vars;
  for (const auto& d : mat.dicts) dict_vars.insert(d.var);
  for (auto& a : plans.assignments) {
    if (dict_vars.count(a.var)) {
      a.plan = plan::PlanNode::BagToDict(a.plan, "label");
    }
  }
  if (compiled_out != nullptr) *compiled_out = plans;

  TraceSpan span(Trc(), "execute");
  TRANCE_ASSIGN_OR_RETURN(std::string final_var,
                          executor->ExecuteProgram(plans));
  (void)final_var;
  ShreddedRun run;
  TRANCE_ASSIGN_OR_RETURN(run.top, executor->GetDataset(mat.top_var));
  for (const auto& d : mat.dicts) {
    TRANCE_ASSIGN_OR_RETURN(runtime::Dataset ds, executor->GetDataset(d.var));
    run.dicts.emplace_back(d.path, std::move(ds));
  }
  run.output_type = mat.output_type;
  return run;
}

StatusOr<runtime::Dataset> UnshredRun(Executor* executor,
                                      const ShreddedRun& run) {
  TraceSpan span(Trc(), "unshred");
  runtime::Cluster* cluster = executor->cluster();
  TRANCE_ASSIGN_OR_RETURN(std::vector<shred::DictEntry> walk,
                          shred::DictTreeWalk(run.output_type));
  std::map<std::string, runtime::Dataset> ds_map;
  ds_map[""] = run.top;
  for (const auto& [path, ds] : run.dicts) ds_map[path] = ds;

  // Deepest-first: cogroup each dictionary into its parent, replacing the
  // parent's label column with the collected bag.
  for (auto it = walk.rbegin(); it != walk.rend(); ++it) {
    auto dit = ds_map.find(it->path);
    auto pit = ds_map.find(it->parent_path);
    if (dit == ds_map.end() || pit == ds_map.end()) {
      return Status::Internal("unshred: missing dataset for path " + it->path);
    }
    const runtime::Dataset& dict = dit->second;
    const runtime::Dataset& parent = pit->second;
    TRANCE_ASSIGN_OR_RETURN(int attr_col, parent.schema.Require(it->attr));
    TRANCE_ASSIGN_OR_RETURN(int label_col, dict.schema.Require("label"));
    std::vector<int> value_cols;
    for (size_t i = 0; i < dict.schema.size(); ++i) {
      if (static_cast<int>(i) != label_col) {
        value_cols.push_back(static_cast<int>(i));
      }
    }
    TRANCE_ASSIGN_OR_RETURN(
        runtime::Dataset cg,
        runtime::CoGroup(cluster, parent, dict, {attr_col}, {label_col},
                         value_cols, "_unshred_bag",
                         "unshred(" + it->path + ")"));
    // Replace the label column by the bag, in place.
    runtime::Schema out_schema;
    std::vector<size_t> keep;
    for (size_t i = 0; i + 1 < cg.schema.size(); ++i) {
      if (static_cast<int>(i) == attr_col) {
        out_schema.Append({it->attr, cg.schema.col(cg.schema.size() - 1).type});
        keep.push_back(cg.schema.size() - 1);
      } else {
        out_schema.Append(cg.schema.col(i));
        keep.push_back(i);
      }
    }
    TRANCE_ASSIGN_OR_RETURN(
        runtime::Dataset replaced,
        runtime::MapRows(
            cluster, cg, out_schema,
            [keep](const runtime::Row& r) {
              runtime::Row out;
              out.fields.reserve(keep.size());
              for (size_t i : keep) out.fields.push_back(r.fields[i]);
              return out;
            },
            "unshred_project(" + it->path + ")"));
    ds_map[it->parent_path] = std::move(replaced);
  }
  return ds_map[""];
}

StatusOr<nrc::Value> RunShreddedOnValues(
    const nrc::Program& program,
    const std::map<std::string, nrc::Value>& inputs,
    runtime::Cluster* cluster, const PipelineOptions& options,
    shred::MaterializeMode mode) {
  Executor executor(cluster, options.exec);
  int64_t seed = 0;
  for (const auto& in : program.inputs) {
    auto v = inputs.find(in.name);
    if (v == inputs.end()) return Status::Invalid("missing input " + in.name);
    TRANCE_RETURN_NOT_OK(RegisterShreddedInput(&executor, in.name, in.type,
                                               v->second, seed));
    seed += 1000000;
  }
  TRANCE_ASSIGN_OR_RETURN(ShreddedRun run,
                          RunShredded(program, &executor, options, mode));
  TRANCE_ASSIGN_OR_RETURN(runtime::Dataset nested, UnshredRun(&executor, run));
  return RowsToValue(nested.Collect(), nested.schema);
}

StatusOr<nrc::Value> RunStandardOnValues(
    const nrc::Program& program,
    const std::map<std::string, nrc::Value>& inputs,
    runtime::Cluster* cluster, const PipelineOptions& options) {
  Executor executor(cluster, options.exec);
  for (const auto& in : program.inputs) {
    auto v = inputs.find(in.name);
    if (v == inputs.end()) {
      return Status::Invalid("missing input " + in.name);
    }
    TRANCE_ASSIGN_OR_RETURN(runtime::Schema schema,
                            runtime::Schema::FromBagType(in.type));
    TRANCE_ASSIGN_OR_RETURN(std::vector<runtime::Row> rows,
                            ValueToRows(v->second, schema));
    TRANCE_ASSIGN_OR_RETURN(
        runtime::Dataset ds,
        runtime::Source(cluster, schema, std::move(rows), in.name));
    executor.Register(in.name, std::move(ds));
  }
  TRANCE_ASSIGN_OR_RETURN(runtime::Dataset result,
                          RunStandard(program, &executor, options));
  return RowsToValue(result.Collect(), result.schema);
}

}  // namespace exec
}  // namespace trance
