#include "exec/scalar_compiler.h"

#include <vector>

namespace trance {
namespace exec {

namespace {

using nrc::Expr;
using nrc::ExprPtr;
using nrc::Type;
using nrc::TypePtr;
using runtime::Field;
using runtime::Row;

StatusOr<ScalarFn> Compile(const ExprPtr& e, const runtime::Schema& schema) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kConst: {
      const auto& c = e->const_value();
      Field f;
      switch (c.kind) {
        case nrc::ScalarKind::kInt:
        case nrc::ScalarKind::kDate:
          f = Field::Int(std::get<int64_t>(c.v));
          break;
        case nrc::ScalarKind::kReal:
          f = Field::Real(std::get<double>(c.v));
          break;
        case nrc::ScalarKind::kString:
          f = Field::Str(std::get<std::string>(c.v));
          break;
        case nrc::ScalarKind::kBool:
          f = Field::Bool(std::get<bool>(c.v));
          break;
      }
      return ScalarFn([f](const Row&) { return f; });
    }
    case K::kVarRef: {
      TRANCE_ASSIGN_OR_RETURN(int idx, schema.Require(e->var_name()));
      size_t i = static_cast<size_t>(idx);
      return ScalarFn([i](const Row& r) { return r.fields[i]; });
    }
    case K::kPrimOp: {
      TRANCE_ASSIGN_OR_RETURN(ScalarFn a, Compile(e->child(0), schema));
      TRANCE_ASSIGN_OR_RETURN(ScalarFn b, Compile(e->child(1), schema));
      TRANCE_ASSIGN_OR_RETURN(TypePtr ta,
                              ScalarResultType(e->child(0), schema));
      TRANCE_ASSIGN_OR_RETURN(TypePtr tb,
                              ScalarResultType(e->child(1), schema));
      bool int_result =
          e->prim_op() != nrc::PrimOpKind::kDiv && ta->is_scalar() &&
          tb->is_scalar() && ta->scalar_kind() != nrc::ScalarKind::kReal &&
          tb->scalar_kind() != nrc::ScalarKind::kReal;
      nrc::PrimOpKind op = e->prim_op();
      return ScalarFn([a, b, op, int_result](const Row& r) -> Field {
        Field fa = a(r), fb = b(r);
        if (fa.is_null() || fb.is_null()) return Field::Null();
        double x = fa.AsNumber(), y = fb.AsNumber();
        double v = 0;
        switch (op) {
          case nrc::PrimOpKind::kAdd:
            v = x + y;
            break;
          case nrc::PrimOpKind::kSub:
            v = x - y;
            break;
          case nrc::PrimOpKind::kMul:
            v = x * y;
            break;
          case nrc::PrimOpKind::kDiv:
            if (y == 0) return Field::Null();
            v = x / y;
            break;
        }
        return int_result ? Field::Int(static_cast<int64_t>(v))
                          : Field::Real(v);
      });
    }
    case K::kCmp: {
      TRANCE_ASSIGN_OR_RETURN(ScalarFn a, Compile(e->child(0), schema));
      TRANCE_ASSIGN_OR_RETURN(ScalarFn b, Compile(e->child(1), schema));
      nrc::CmpOpKind op = e->cmp_op();
      return ScalarFn([a, b, op](const Row& r) -> Field {
        Field fa = a(r), fb = b(r);
        if (fa.is_null() || fb.is_null()) return Field::Bool(false);
        switch (op) {
          case nrc::CmpOpKind::kEq:
            return Field::Bool(fa == fb);
          case nrc::CmpOpKind::kNe:
            return Field::Bool(!(fa == fb));
          case nrc::CmpOpKind::kLt:
            return Field::Bool(FieldLess(fa, fb));
          case nrc::CmpOpKind::kLe:
            return Field::Bool(!FieldLess(fb, fa));
          case nrc::CmpOpKind::kGt:
            return Field::Bool(FieldLess(fb, fa));
          case nrc::CmpOpKind::kGe:
            return Field::Bool(!FieldLess(fa, fb));
        }
        return Field::Bool(false);
      });
    }
    case K::kBoolOp: {
      TRANCE_ASSIGN_OR_RETURN(ScalarFn a, Compile(e->child(0), schema));
      TRANCE_ASSIGN_OR_RETURN(ScalarFn b, Compile(e->child(1), schema));
      bool is_and = e->bool_op() == nrc::BoolOpKind::kAnd;
      return ScalarFn([a, b, is_and](const Row& r) -> Field {
        Field fa = a(r);
        bool va = fa.is_bool() && fa.AsBool();
        if (is_and && !va) return Field::Bool(false);
        if (!is_and && va) return Field::Bool(true);
        Field fb = b(r);
        return Field::Bool(fb.is_bool() && fb.AsBool());
      });
    }
    case K::kNot: {
      TRANCE_ASSIGN_OR_RETURN(ScalarFn a, Compile(e->child(0), schema));
      return ScalarFn([a](const Row& r) -> Field {
        Field fa = a(r);
        return Field::Bool(!(fa.is_bool() && fa.AsBool()));
      });
    }
    case K::kNewLabel: {
      std::vector<std::pair<std::string, ScalarFn>> params;
      for (const auto& p : e->fields()) {
        TRANCE_ASSIGN_OR_RETURN(ScalarFn pf, Compile(p.expr, schema));
        params.emplace_back(p.name, pf);
      }
      return ScalarFn([params](const Row& r) -> Field {
        std::vector<std::pair<std::string, Field>> vals;
        vals.reserve(params.size());
        for (const auto& [n, f] : params) vals.emplace_back(n, f(r));
        return runtime::MakeLabel(std::move(vals));
      });
    }
    default:
      return Status::NotImplemented(
          "expression kind has no row-level compilation");
  }
}

}  // namespace

StatusOr<ScalarFn> CompileScalar(const nrc::ExprPtr& e,
                                 const runtime::Schema& schema) {
  return Compile(e, schema);
}

StatusOr<nrc::TypePtr> ScalarResultType(const nrc::ExprPtr& e,
                                        const runtime::Schema& schema) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kConst:
      return Type::Scalar(e->const_value().kind);
    case K::kVarRef: {
      TRANCE_ASSIGN_OR_RETURN(int idx, schema.Require(e->var_name()));
      return schema.col(static_cast<size_t>(idx)).type;
    }
    case K::kPrimOp: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr a, ScalarResultType(e->child(0), schema));
      TRANCE_ASSIGN_OR_RETURN(TypePtr b, ScalarResultType(e->child(1), schema));
      if (e->prim_op() == nrc::PrimOpKind::kDiv) return Type::Real();
      if ((a->is_scalar() && a->scalar_kind() == nrc::ScalarKind::kReal) ||
          (b->is_scalar() && b->scalar_kind() == nrc::ScalarKind::kReal)) {
        return Type::Real();
      }
      return Type::Int();
    }
    case K::kCmp:
    case K::kBoolOp:
    case K::kNot:
      return Type::Bool();
    case K::kNewLabel:
      return Type::Label();
    default:
      return Status::NotImplemented("no static type for this expression kind");
  }
}

StatusOr<std::function<bool(const runtime::Row&)>> CompilePredicate(
    const nrc::ExprPtr& e, const runtime::Schema& schema) {
  TRANCE_ASSIGN_OR_RETURN(ScalarFn f, CompileScalar(e, schema));
  return std::function<bool(const runtime::Row&)>(
      [f](const runtime::Row& r) {
        runtime::Field v = f(r);
        return v.is_bool() && v.AsBool();
      });
}

}  // namespace exec
}  // namespace trance
