// Compilation-route drivers: the standard pipeline (Section 3) and, layered
// on top of the shredding module, the shredded pipeline (Section 4) with
// materialization and unshredding. These are the top-level entry points the
// examples and benchmarks use.
#ifndef TRANCE_EXEC_PIPELINE_H_
#define TRANCE_EXEC_PIPELINE_H_

#include <map>
#include <string>

#include "exec/lowering.h"
#include "nrc/expr.h"
#include "nrc/value.h"
#include "plan/optimizer.h"
#include "shred/materialize.h"
#include "shred/value_shredder.h"
#include "util/status.h"

namespace trance {
namespace exec {

struct PipelineOptions {
  plan::OptimizerOptions optimizer;
  ExecOptions exec;

  /// The SparkSQL competitor mode of Section 6: no cogroup fusion (the
  /// optimizer restriction the paper identifies for SparkSQL).
  static PipelineOptions SparkSql() {
    PipelineOptions o;
    o.optimizer.enable_cogroup = false;
    return o;
  }
};

/// Compiles `program` through unnesting + optimization and executes it on
/// `executor` (inputs must be registered under the program's input names).
/// Returns the final assignment's dataset. When `compiled_out` is non-null
/// it receives the optimized plan program actually executed (the input to
/// obs::ExplainAnalyze). Compilation phases and execution emit nested spans
/// on obs::Tracer::Global() when tracing is enabled.
StatusOr<runtime::Dataset> RunStandard(const nrc::Program& program,
                                       Executor* executor,
                                       const PipelineOptions& options,
                                       plan::PlanProgram* compiled_out =
                                           nullptr);

/// Convenience for tests: feeds nested nrc::Values as inputs, runs the
/// standard route on a fresh executor over `cluster`, and converts the
/// result back to a nested value.
StatusOr<nrc::Value> RunStandardOnValues(
    const nrc::Program& program,
    const std::map<std::string, nrc::Value>& inputs,
    runtime::Cluster* cluster, const PipelineOptions& options);

// --- Shredded pipeline (Section 4) --------------------------------------

/// Result of the shredded route: the materialized top bag and relational
/// dictionaries (label-partitioned), plus the nested output type for
/// unshredding.
struct ShreddedRun {
  runtime::Dataset top;
  std::vector<std::pair<std::string, runtime::Dataset>> dicts;  // path -> ds
  nrc::TypePtr output_type;
};

/// Registers the shredded representation of nested input `name` (value
/// shredding + conversion to datasets; dictionaries label-partitioned).
Status RegisterShreddedInput(Executor* executor, const std::string& name,
                             const nrc::TypePtr& type, const nrc::Value& value,
                             int64_t label_seed);

/// Shreds + materializes `program` (Section 4), compiles the materialized
/// assignments through the same unnesting/optimization stages, and executes
/// them. Dictionary assignments end in BagToDict, giving them the label
/// partitioning guarantee (skew-aware in skew mode). Inputs must be
/// registered in shredded form (X_F / X_D_<path>).
StatusOr<ShreddedRun> RunShredded(const nrc::Program& program,
                                  Executor* executor,
                                  const PipelineOptions& options,
                                  shred::MaterializeMode mode =
                                      shred::MaterializeMode::kDomainElimination,
                                  plan::PlanProgram* compiled_out = nullptr);

/// Restores the nested output from a shredded run: bottom-up cogroups of
/// each dictionary with its parent on labels (the regrouping whose cost the
/// paper reports as Unshred).
StatusOr<runtime::Dataset> UnshredRun(Executor* executor,
                                      const ShreddedRun& run);

/// Convenience for tests: shreds the nested inputs, runs the shredded route,
/// unshreds, and converts back to a nested value.
StatusOr<nrc::Value> RunShreddedOnValues(
    const nrc::Program& program,
    const std::map<std::string, nrc::Value>& inputs,
    runtime::Cluster* cluster, const PipelineOptions& options,
    shred::MaterializeMode mode =
        shred::MaterializeMode::kDomainElimination);

}  // namespace exec
}  // namespace trance

#endif  // TRANCE_EXEC_PIPELINE_H_
