// Code generation (Section 3): lowers algebraic plans onto the distributed
// runtime, bottom-up over the plan tree. This is the analogue of the paper's
// Spark code generator — the target is the in-process cluster simulator.
//
// Every dataset flows through the executor as a skew-triple (light, heavy,
// heavy-keys). In the default mode the heavy component is empty and
// operators behave exactly like their standard implementations; with
// `skew_aware` set, joins and BagToDict use the Fig. 6 skew-aware variants
// and nest operators merge components (Section 5).
#ifndef TRANCE_EXEC_LOWERING_H_
#define TRANCE_EXEC_LOWERING_H_

#include <map>
#include <string>

#include "plan/plan.h"
#include "runtime/cluster.h"
#include "runtime/ops.h"
#include "skew/skew.h"
#include "util/status.h"

namespace trance {
namespace exec {

struct ExecOptions {
  /// Use the skew-aware operator variants of Section 5.
  bool skew_aware = false;
  /// Map-side combine for Gamma-plus (partial aggregation before shuffle).
  bool map_side_combine = true;
  /// Automatically broadcast join sides under the cluster's
  /// broadcast_threshold ("Broadcast operations are deferred to Spark, which
  /// broadcasts anything under 10MB").
  bool auto_broadcast = true;
  /// Fuse chains of consecutive partition-local plan operators (select,
  /// outer-select, project, extend, unnest, add-index) into single stages
  /// that stream rows through the whole chain without materializing
  /// intermediate Datasets — the Spark/Tungsten narrow-stage pipelining the
  /// paper's generated bulk programs assume. Off = one stage per operator
  /// (the historical behaviour), for ablations. Results and stats are
  /// bit-identical either way, modulo stage count.
  bool enable_stage_fusion = true;
  /// Run every keyed runtime path (join build/probe, cogroup, nest,
  /// reduce-by-key, dedup, heavy-key sampling and probes) on the compact
  /// binary key codec of runtime/key_codec.h instead of the historical
  /// KeyView deep-copy containers. Escape hatch for ablations: results,
  /// partition placement, shuffle bytes, and all pre-existing stats are
  /// bit-identical either way (tests/key_codec_test.cc); only the
  /// key_encode_bytes counter differs (0 when off).
  bool enable_key_codec = true;
  /// Back the encoded-key operators with the open-addressing flat hash
  /// table of runtime/flat_hash.h (arena-stored key bytes, memcmp probes,
  /// no per-key allocation) instead of the node-based std::unordered_map.
  /// Composes with enable_key_codec: it only takes effect on the encoded
  /// path (the legacy KeyView containers have no encoded keys to index).
  /// Escape hatch for ablations: rows, placement, shuffle bytes, and all
  /// pre-existing stats are bit-identical either way
  /// (tests/flat_hash_test.cc); only the flat-only counters
  /// (hash_table_bytes/hash_resizes/hash_probe_len_max) differ (0 when
  /// off).
  bool enable_flat_hash = true;
  /// Run partition storage under the operators through the typed columnar
  /// blocks of runtime/column.h (ColumnVector<T> arrays, string arenas,
  /// null bitmaps, variant fallback) instead of the historical
  /// std::vector<Row> path: fused stages scan typed blocks, shuffles move
  /// columns, and keyed builds reference (block, row-offset) pairs.
  /// Composes with enable_key_codec / enable_flat_hash (the keyed-build
  /// block applies on the encoded path only). Escape hatch for ablations:
  /// rows, placement, shuffle bytes, and all pre-existing stats are
  /// bit-identical either way (tests/columnar_test.cc); only the
  /// columnar-only counters (columnar_bytes/column_to_row_conversions)
  /// differ (0 when off).
  bool enable_columnar = true;
  /// Spill partitions that cross the memory threshold to disk runs
  /// (runtime/spill.h, format in docs/STORAGE.md) and stream them back,
  /// instead of hard-failing with ResourceExhausted — the historical FAIL
  /// behavior, kept under `false` for ablations and paper-faithful FAIL
  /// cells. Rows, placement, shuffle bytes, and all pre-existing stats are
  /// bit-identical between a capped spilling run and an uncapped run
  /// (tests/spill_test.cc); only the spill-only counters
  /// (spill_bytes_written/spill_bytes_read/spill_runs/spill_merge_passes)
  /// differ (exactly 0 when off or when nothing spills).
  bool enable_spill = true;
};

/// Executes plans against named datasets registered on a cluster.
class Executor {
 public:
  Executor(runtime::Cluster* cluster, ExecOptions options)
      : cluster_(cluster), options_(options) {
    // The codec switch lives on the cluster so the runtime operators (and
    // the skew layer) see it without threading options through every call.
    cluster_->set_key_codec_enabled(options_.enable_key_codec);
    cluster_->set_flat_hash_enabled(options_.enable_flat_hash);
    cluster_->set_columnar_enabled(options_.enable_columnar);
    cluster_->set_spill_enabled(options_.enable_spill);
  }

  /// Registers an input (or intermediate) dataset under `name`.
  void Register(const std::string& name, runtime::Dataset ds) {
    registry_[name] = skew::SkewTriple::AllLight(std::move(ds));
  }
  void RegisterTriple(const std::string& name, skew::SkewTriple t) {
    registry_[name] = std::move(t);
  }
  bool Has(const std::string& name) const { return registry_.count(name) > 0; }
  StatusOr<skew::SkewTriple> Get(const std::string& name) const;
  /// Fetches a registered dataset, merging its components.
  StatusOr<runtime::Dataset> GetDataset(const std::string& name);

  /// Executes one plan.
  StatusOr<skew::SkewTriple> Execute(const plan::PlanPtr& p);
  StatusOr<runtime::Dataset> ExecuteToDataset(const plan::PlanPtr& p);

  /// Executes every assignment, registering each result under its variable;
  /// returns the name of the final assignment.
  StatusOr<std::string> ExecuteProgram(const plan::PlanProgram& program);

  runtime::Cluster* cluster() { return cluster_; }
  const ExecOptions& options() const { return options_; }

 private:
  /// A chain of fusible narrow transforms accumulated over a materialized
  /// `input` triple but not yet run (the narrow-chain batcher of stage
  /// fusion). Defined in lowering.cc.
  struct Pending;

  /// Executes `p` to a materialized triple (flushes any pending chain).
  StatusOr<skew::SkewTriple> Exec(const plan::PlanPtr& p);
  /// Executes `p`, leaving a trailing chain of narrow operators unflushed so
  /// a narrow parent can extend it. Wide operators and scans (stage-fusion
  /// boundaries) return an empty chain over their materialized result.
  StatusOr<Pending> ExecPending(const plan::PlanPtr& p);
  /// ExecPending for the six fusible narrow kinds: appends this node's
  /// transform to the child's pending chain.
  StatusOr<Pending> ExecPendingNarrow(const plan::PlanPtr& p);
  /// Runs a pending chain as one fused stage per skew component.
  StatusOr<skew::SkewTriple> Flush(Pending pd);
  /// The per-node lowering (one stage per operator); used for every node
  /// when stage fusion is off, and for wide nodes always.
  StatusOr<skew::SkewTriple> ExecNode(const plan::PlanPtr& p);
  static Pending PendingFromTriple(skew::SkewTriple t);

  runtime::Cluster* cluster_;
  ExecOptions options_;
  std::map<std::string, skew::SkewTriple> registry_;
  /// Plan-node attribution for EXPLAIN ANALYZE: every Exec() pushes a
  /// cluster scope named obs::StageScopeName(scope_var_, pre-order index);
  /// ExecuteProgram resets the numbering per assignment so the explain
  /// re-walk can join stages back onto operators.
  std::string scope_var_;
  int next_node_id_ = 0;
};

}  // namespace exec
}  // namespace trance

#endif  // TRANCE_EXEC_LOWERING_H_
