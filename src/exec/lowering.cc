#include "exec/lowering.h"

#include <algorithm>
#include <utility>

#include "exec/scalar_compiler.h"
#include "obs/explain.h"
#include "util/strings.h"

namespace trance {
namespace exec {

namespace {

using plan::NestAgg;
using plan::PlanNode;
using plan::PlanPtr;
using runtime::Dataset;
using runtime::Field;
using runtime::JoinType;
using runtime::Partitioning;
using runtime::Row;
using runtime::Schema;
using skew::SkewTriple;

StatusOr<std::vector<int>> ResolveCols(const Schema& schema,
                                       const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const auto& n : names) {
    TRANCE_ASSIGN_OR_RETURN(int i, schema.Require(n));
    out.push_back(i);
  }
  return out;
}

/// Partitioning of a projection output: keys survive iff every key column is
/// projected as a pure column reference.
Partitioning ProjectPartitioning(
    const Partitioning& in, const std::vector<plan::NamedColumnExpr>& cols,
    const Schema& in_schema) {
  if (in.kind != Partitioning::Kind::kHash) return Partitioning::None();
  std::vector<int> mapped;
  for (int key : in.key_cols) {
    const std::string& key_name =
        in_schema.col(static_cast<size_t>(key)).name;
    int found = -1;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].expr->kind() == nrc::Expr::Kind::kVarRef &&
          cols[i].expr->var_name() == key_name) {
        found = static_cast<int>(i);
        break;
      }
    }
    if (found < 0) return Partitioning::None();
    mapped.push_back(found);
  }
  return Partitioning::Hash(std::move(mapped));
}

/// Renames the trailing `count` columns of `schema` to `names`.
void RenameTail(Schema* schema, size_t count,
                const std::vector<std::string>& names) {
  TRANCE_CHECK(names.size() == count && schema->size() >= count,
               "RenameTail arity");
  std::vector<runtime::Column> cols = schema->columns();
  for (size_t i = 0; i < count; ++i) {
    cols[schema->size() - count + i].name = names[i];
  }
  *schema = Schema(std::move(cols));
}

/// Rewrites a bag column's element-tuple attribute names (metadata only).
Status RenameBagColumn(Schema* schema, const std::string& bag_col,
                       const std::vector<std::string>& names) {
  std::vector<runtime::Column> cols = schema->columns();
  for (auto& c : cols) {
    if (c.name != bag_col) continue;
    if (!c.type->is_bag() || !c.type->element()->is_tuple()) {
      return Status::Internal("RenameBagColumn on non-bag-of-tuples");
    }
    const auto& fields = c.type->element()->fields();
    if (fields.size() != names.size()) {
      return Status::Internal("RenameBagColumn arity mismatch");
    }
    std::vector<nrc::Field> renamed;
    for (size_t i = 0; i < fields.size(); ++i) {
      renamed.push_back({names[i], fields[i].type});
    }
    c.type = nrc::Type::Bag(nrc::Type::Tuple(std::move(renamed)));
    *schema = Schema(std::move(cols));
    return Status::OK();
  }
  return Status::KeyError("RenameBagColumn: no column " + bag_col);
}

}  // namespace

StatusOr<SkewTriple> Executor::Get(const std::string& name) const {
  auto it = registry_.find(name);
  if (it == registry_.end()) {
    return Status::KeyError("no dataset registered under '" + name + "'");
  }
  return it->second;
}

StatusOr<Dataset> Executor::GetDataset(const std::string& name) {
  TRANCE_ASSIGN_OR_RETURN(SkewTriple t, Get(name));
  return skew::MergeTriple(cluster_, t, name);
}

StatusOr<SkewTriple> Executor::Execute(const plan::PlanPtr& p) {
  return Exec(p);
}

StatusOr<Dataset> Executor::ExecuteToDataset(const plan::PlanPtr& p) {
  TRANCE_ASSIGN_OR_RETURN(SkewTriple t, Exec(p));
  return skew::MergeTriple(cluster_, t, "result");
}

StatusOr<std::string> Executor::ExecuteProgram(
    const plan::PlanProgram& program) {
  // One program execution is one "job" for telemetry: every event the
  // stages below emit carries this id, so an event-log consumer can slice
  // the log per query exactly like EXPLAIN ANALYZE does.
  const uint64_t job = cluster_->BeginJob();
  const size_t stages_before = cluster_->stats().stages().size();
  obs::EventLog& log = obs::GlobalEventLog();
  if (log.enabled()) {
    obs::Event(&log, "job_start")
        .U64("job", job)
        .U64("assignments", program.assignments.size())
        .Emit();
  }
  cluster_->metrics()
      .GetCounter("trance_jobs_total", "plan programs executed")
      ->Increment();
  auto finish = [&](const char* status) {
    if (!log.enabled()) return;
    obs::Event(&log, "job_finish")
        .U64("job", job)
        .U64("stages", cluster_->stats().stages().size() - stages_before)
        .Str("status", status)
        .Emit();
  };
  std::string last;
  for (const auto& a : program.assignments) {
    scope_var_ = a.var;
    next_node_id_ = 0;
    StatusOr<SkewTriple> t = Exec(a.plan);
    if (!t.ok()) {
      finish("error");
      return t.status();
    }
    registry_[a.var] = std::move(t).value();
    last = a.var;
  }
  if (last.empty()) {
    finish("error");
    return Status::Invalid("program has no assignments");
  }
  finish("ok");
  return last;
}

/// One fusible narrow operator chain accumulated over a materialized input.
/// `light`/`heavy` are the per-component transform chains (they may differ:
/// add-index only runs on the light side when the heavy component is empty);
/// `schema` / partitionings / `heavy_keys` track what the chain's output will
/// look like, mirroring exactly what the unfused per-operator lowering would
/// have produced.
struct Executor::Pending {
  SkewTriple input;
  std::vector<runtime::RowTransform> light;
  std::vector<runtime::RowTransform> heavy;
  Schema schema;
  Partitioning light_part;
  Partitioning heavy_part;
  std::optional<skew::HeavyKeySet> heavy_keys;
  /// Base operator names in chain order, for the fused stage label.
  std::vector<std::string> ops;
};

Executor::Pending Executor::PendingFromTriple(SkewTriple t) {
  Pending pd;
  pd.schema = t.schema();
  pd.light_part = t.light.partitioning;
  pd.heavy_part = t.heavy.partitioning;
  pd.heavy_keys = t.heavy_keys;
  pd.input = std::move(t);
  return pd;
}

StatusOr<SkewTriple> Executor::Exec(const plan::PlanPtr& p) {
  TRANCE_ASSIGN_OR_RETURN(Pending pd, ExecPending(p));
  return Flush(std::move(pd));
}

StatusOr<SkewTriple> Executor::Flush(Pending pd) {
  if (pd.light.empty()) return std::move(pd.input);
  const std::string base =
      pd.ops.size() == 1 ? pd.ops[0] : "fused(" + Join(pd.ops, "+") + ")";
  SkewTriple out;
  TRANCE_ASSIGN_OR_RETURN(
      out.light, runtime::RunStagePipeline(cluster_, pd.input.light, pd.schema,
                                           pd.light, pd.light_part, base));
  if (pd.heavy.empty()) {
    // No heavy-side stages (the chain went all-light at an add-index): the
    // empty heavy component passes through; only its schema is refreshed so
    // the triple stays internally consistent.
    out.heavy = std::move(pd.input.heavy);
    out.heavy.schema = pd.schema;
    out.heavy.partitioning = pd.heavy_part;
  } else {
    TRANCE_ASSIGN_OR_RETURN(
        out.heavy,
        runtime::RunStagePipeline(cluster_, pd.input.heavy, pd.schema,
                                  pd.heavy, pd.heavy_part, base + ".h"));
  }
  out.heavy_keys = std::move(pd.heavy_keys);
  return out;
}

StatusOr<Executor::Pending> Executor::ExecPending(const plan::PlanPtr& p) {
  using K = PlanNode::Kind;
  if (options_.enable_stage_fusion) {
    switch (p->kind()) {
      case K::kSelect:
      case K::kOuterSelect:
      case K::kProject:
      case K::kExtend:
      case K::kUnnest:
      case K::kAddIndex:
        return ExecPendingNarrow(p);
      default:
        break;
    }
  }
  // Wide boundary (or fusion disabled): materialize.
  TRANCE_ASSIGN_OR_RETURN(SkewTriple t, ExecNode(p));
  return PendingFromTriple(std::move(t));
}

StatusOr<Executor::Pending> Executor::ExecPendingNarrow(
    const plan::PlanPtr& p) {
  using K = PlanNode::Kind;
  // Pre-order node numbering must match the unfused walk: take this node's
  // scope before descending into the child.
  const std::string scope = obs::StageScopeName(scope_var_, next_node_id_++);
  TRANCE_ASSIGN_OR_RETURN(Pending pd, ExecPending(p->child()));

  auto add = [&pd, &scope](runtime::RowTransform lt, runtime::RowTransform ht,
                           std::string op) {
    lt.scope = scope;
    ht.scope = scope;
    pd.light.push_back(std::move(lt));
    pd.heavy.push_back(std::move(ht));
    pd.ops.push_back(std::move(op));
  };

  switch (p->kind()) {
    case K::kSelect: {
      TRANCE_ASSIGN_OR_RETURN(auto pred,
                              CompilePredicate(p->cond(), pd.schema));
      add(runtime::RowTransform::Filter("select", pred),
          runtime::RowTransform::Filter("select.h", pred), "select");
      return pd;
    }

    case K::kOuterSelect: {
      TRANCE_ASSIGN_OR_RETURN(auto pred,
                              CompilePredicate(p->cond(), pd.schema));
      std::vector<bool> keep(pd.schema.size(), false);
      for (const auto& name : p->keep_cols()) {
        TRANCE_ASSIGN_OR_RETURN(int i, pd.schema.Require(name));
        keep[static_cast<size_t>(i)] = true;
      }
      runtime::MapFn fn = [pred, keep](const Row& r) {
        if (pred(r)) return r;
        Row out = r;
        for (size_t i = 0; i < out.fields.size(); ++i) {
          if (!keep[i]) out.fields[i] = Field::Null();
        }
        return out;
      };
      add(runtime::RowTransform::Map("outer_select", fn),
          runtime::RowTransform::Map("outer_select.h", fn), "outer_select");
      return pd;
    }

    case K::kProject:
    case K::kExtend: {
      const bool extend = p->kind() == K::kExtend;
      std::vector<ScalarFn> fns;
      Schema out_schema;
      if (extend) out_schema = pd.schema;
      for (const auto& c : p->columns()) {
        TRANCE_ASSIGN_OR_RETURN(ScalarFn f, CompileScalar(c.expr, pd.schema));
        TRANCE_ASSIGN_OR_RETURN(nrc::TypePtr t,
                                ScalarResultType(c.expr, pd.schema));
        fns.push_back(std::move(f));
        out_schema.Append({c.name, t});
      }
      runtime::MapFn map = [fns, extend](const Row& r) {
        Row out;
        out.fields.reserve((extend ? r.fields.size() : 0) + fns.size());
        if (extend) out.fields = r.fields;
        for (const auto& f : fns) out.fields.push_back(f(r));
        return out;
      };
      if (!extend) {
        pd.light_part =
            ProjectPartitioning(pd.light_part, p->columns(), pd.schema);
        pd.heavy_part =
            ProjectPartitioning(pd.heavy_part, p->columns(), pd.schema);
        if (pd.heavy_keys.has_value()) {
          Partitioning mapped = ProjectPartitioning(
              Partitioning::Hash(pd.heavy_keys->key_cols), p->columns(),
              pd.schema);
          if (mapped.kind == Partitioning::Kind::kHash) {
            pd.heavy_keys->key_cols = mapped.key_cols;
          } else {
            pd.heavy_keys = std::nullopt;
          }
        }
      }
      add(runtime::RowTransform::Map(extend ? "extend" : "project", map),
          runtime::RowTransform::Map(extend ? "extend.h" : "project.h", map),
          extend ? "extend" : "project");
      pd.schema = std::move(out_schema);
      return pd;
    }

    case K::kUnnest: {
      TRANCE_ASSIGN_OR_RETURN(int bag, pd.schema.Require(p->bag_col()));
      const nrc::TypePtr& bag_t = pd.schema.col(static_cast<size_t>(bag)).type;
      if (!bag_t->is_bag()) {
        return Status::TypeError("unnest over non-bag column " + p->bag_col());
      }
      std::vector<std::string> inner_names;
      if (bag_t->element()->is_tuple()) {
        for (const auto& f : bag_t->element()->fields()) {
          inner_names.push_back(p->alias() + "." + f.name);
        }
      } else {
        inner_names.push_back(p->alias());
      }
      const std::string id_attr = p->outer() ? p->unnest_id_attr() : "";
      TRANCE_ASSIGN_OR_RETURN(Schema out_schema,
                              runtime::UnnestedSchema(pd.schema, bag, id_attr));
      RenameTail(&out_schema, inner_names.size(), inner_names);
      if (p->outer()) {
        const bool with_id = !id_attr.empty();
        size_t inner_width = out_schema.size() - (with_id ? 1 : 0) -
                             (pd.schema.size() - 1);
        add(runtime::RowTransform::OuterUnnest("unnest", bag, with_id,
                                               inner_width),
            runtime::RowTransform::OuterUnnest("unnest.h", bag, with_id,
                                               inner_width),
            "unnest");
      } else {
        add(runtime::RowTransform::Unnest("unnest", bag),
            runtime::RowTransform::Unnest("unnest.h", bag), "unnest");
      }
      pd.schema = std::move(out_schema);
      pd.light_part = Partitioning::None();
      pd.heavy_part = Partitioning::None();
      // Unnest removes the bag column: recorded heavy-key positions after it
      // shift; conservatively drop them.
      pd.heavy_keys = std::nullopt;
      return pd;
    }

    case K::kAddIndex: {
      if (pd.input.heavy.NumRows() == 0) {
        // The merge the unfused path does is a no-op on an empty heavy
        // component, so add-index fuses: ids come from the same
        // per-partition counters the standalone operator uses, over the
        // same rows in the same order. Light side only — the unfused path
        // records no heavy stage here either.
        runtime::RowTransform t = runtime::RowTransform::AddIndex("add_index");
        t.scope = scope;
        pd.light.push_back(std::move(t));
        pd.ops.push_back("add_index");
        pd.schema.Append({p->id_attr(), nrc::Type::Int()});
        pd.heavy_part = Partitioning::None();
        pd.heavy_keys = std::nullopt;
        return pd;
      }
      // A non-empty heavy component must be concatenated into the light
      // partitions before numbering — a real merge, which breaks fusion.
      TRANCE_ASSIGN_OR_RETURN(SkewTriple in, Flush(std::move(pd)));
      runtime::StageScope stage_scope(cluster_, scope);
      TRANCE_ASSIGN_OR_RETURN(Dataset merged,
                              skew::MergeTriple(cluster_, in, "addindex"));
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out, runtime::AddIndexColumn(cluster_, merged, p->id_attr(),
                                               "add_index"));
      return PendingFromTriple(SkewTriple::AllLight(std::move(out)));
    }

    default:
      return Status::Internal("ExecPendingNarrow on wide plan node");
  }
}

StatusOr<SkewTriple> Executor::ExecNode(const plan::PlanPtr& p) {
  // Pre-order node numbering within the current assignment; every stage the
  // node's operators record is attributed to this scope.
  runtime::StageScope stage_scope(
      cluster_, obs::StageScopeName(scope_var_, next_node_id_++));
  using K = PlanNode::Kind;
  switch (p->kind()) {
    case K::kScan:
      return Get(p->relation());

    case K::kSelect: {
      TRANCE_ASSIGN_OR_RETURN(SkewTriple in, Exec(p->child()));
      TRANCE_ASSIGN_OR_RETURN(auto pred,
                              CompilePredicate(p->cond(), in.schema()));
      SkewTriple out;
      TRANCE_ASSIGN_OR_RETURN(
          out.light, runtime::FilterRows(cluster_, in.light, pred, "select"));
      TRANCE_ASSIGN_OR_RETURN(
          out.heavy,
          runtime::FilterRows(cluster_, in.heavy, pred, "select.h"));
      out.heavy_keys = in.heavy_keys;
      return out;
    }

    case K::kOuterSelect: {
      TRANCE_ASSIGN_OR_RETURN(SkewTriple in, Exec(p->child()));
      const Schema& schema = in.schema();
      TRANCE_ASSIGN_OR_RETURN(auto pred, CompilePredicate(p->cond(), schema));
      // Failing rows keep only the grouping-prefix columns; everything else
      // goes NULL so the enclosing Gammas treat the row as a miss.
      std::vector<bool> keep(schema.size(), false);
      for (const auto& name : p->keep_cols()) {
        TRANCE_ASSIGN_OR_RETURN(int i, schema.Require(name));
        keep[static_cast<size_t>(i)] = true;
      }
      runtime::MapFn fn = [pred, keep](const Row& r) {
        if (pred(r)) return r;
        Row out = r;
        for (size_t i = 0; i < out.fields.size(); ++i) {
          if (!keep[i]) out.fields[i] = Field::Null();
        }
        return out;
      };
      SkewTriple out;
      TRANCE_ASSIGN_OR_RETURN(
          out.light, runtime::MapRows(cluster_, in.light, schema, fn,
                                      "outer_select", true));
      TRANCE_ASSIGN_OR_RETURN(
          out.heavy, runtime::MapRows(cluster_, in.heavy, schema, fn,
                                      "outer_select.h", true));
      out.heavy_keys = in.heavy_keys;
      return out;
    }

    case K::kProject:
    case K::kExtend: {
      TRANCE_ASSIGN_OR_RETURN(SkewTriple in, Exec(p->child()));
      const Schema& in_schema = in.schema();
      bool extend = p->kind() == K::kExtend;

      std::vector<ScalarFn> fns;
      Schema out_schema;
      if (extend) out_schema = in_schema;
      for (const auto& c : p->columns()) {
        TRANCE_ASSIGN_OR_RETURN(ScalarFn f, CompileScalar(c.expr, in_schema));
        TRANCE_ASSIGN_OR_RETURN(nrc::TypePtr t,
                                ScalarResultType(c.expr, in_schema));
        fns.push_back(std::move(f));
        out_schema.Append({c.name, t});
      }
      runtime::MapFn map = [fns, extend](const Row& r) {
        Row out;
        out.fields.reserve((extend ? r.fields.size() : 0) + fns.size());
        if (extend) out.fields = r.fields;
        for (const auto& f : fns) out.fields.push_back(f(r));
        return out;
      };
      Partitioning part =
          extend ? in.light.partitioning
                 : ProjectPartitioning(in.light.partitioning, p->columns(),
                                       in_schema);
      SkewTriple out;
      TRANCE_ASSIGN_OR_RETURN(
          out.light, runtime::MapRows(cluster_, in.light, out_schema, map,
                                      extend ? "extend" : "project", false,
                                      part));
      Partitioning hpart =
          extend ? in.heavy.partitioning
                 : ProjectPartitioning(in.heavy.partitioning, p->columns(),
                                       in_schema);
      TRANCE_ASSIGN_OR_RETURN(
          out.heavy, runtime::MapRows(cluster_, in.heavy, out_schema, map,
                                      extend ? "extend.h" : "project.h",
                                      false, hpart));
      // Heavy keys survive an Extend (column positions unchanged); a Project
      // invalidates the recorded positions unless all key columns map.
      if (extend) {
        out.heavy_keys = in.heavy_keys;
      } else if (in.heavy_keys.has_value()) {
        Partitioning mapped = ProjectPartitioning(
            Partitioning::Hash(in.heavy_keys->key_cols), p->columns(),
            in_schema);
        if (mapped.kind == Partitioning::Kind::kHash) {
          // Copy the whole set so its storage mode rides along with the keys.
          skew::HeavyKeySet hk = *in.heavy_keys;
          hk.key_cols = mapped.key_cols;
          out.heavy_keys = std::move(hk);
        }
      }
      return out;
    }

    case K::kJoin: {
      TRANCE_ASSIGN_OR_RETURN(SkewTriple l, Exec(p->child(0)));
      TRANCE_ASSIGN_OR_RETURN(SkewTriple r, Exec(p->child(1)));
      TRANCE_ASSIGN_OR_RETURN(std::vector<int> lk,
                              ResolveCols(l.schema(), p->left_keys()));
      TRANCE_ASSIGN_OR_RETURN(std::vector<int> rk,
                              ResolveCols(r.schema(), p->right_keys()));
      JoinType type = p->outer() ? JoinType::kLeftOuter : JoinType::kInner;
      if (options_.skew_aware && !lk.empty()) {
        return skew::SkewAwareJoin(cluster_, l, r, lk, rk, type, "skewjoin");
      }
      TRANCE_ASSIGN_OR_RETURN(Dataset lm, skew::MergeTriple(cluster_, l, "j"));
      TRANCE_ASSIGN_OR_RETURN(Dataset rm, skew::MergeTriple(cluster_, r, "j"));
      if (options_.auto_broadcast &&
          rm.DeepSizeBytes(cluster_->num_threads()) <=
              cluster_->config().broadcast_threshold) {
        TRANCE_ASSIGN_OR_RETURN(
            Dataset out, runtime::BroadcastJoin(cluster_, lm, rm, lk, rk,
                                                type, "broadcast_join"));
        return SkewTriple::AllLight(std::move(out));
      }
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out,
          runtime::HashJoin(cluster_, lm, rm, lk, rk, type, "join"));
      return SkewTriple::AllLight(std::move(out));
    }

    case K::kUnnest: {
      TRANCE_ASSIGN_OR_RETURN(SkewTriple in, Exec(p->child()));
      TRANCE_ASSIGN_OR_RETURN(int bag, in.schema().Require(p->bag_col()));
      const nrc::TypePtr& bag_t =
          in.schema().col(static_cast<size_t>(bag)).type;
      if (!bag_t->is_bag()) {
        return Status::TypeError("unnest over non-bag column " + p->bag_col());
      }
      std::vector<std::string> inner_names;
      if (bag_t->element()->is_tuple()) {
        for (const auto& f : bag_t->element()->fields()) {
          inner_names.push_back(p->alias() + "." + f.name);
        }
      } else {
        inner_names.push_back(p->alias());
      }
      auto run = [&](const Dataset& ds,
                     const std::string& nm) -> StatusOr<Dataset> {
        StatusOr<Dataset> out =
            p->outer()
                ? runtime::OuterUnnest(cluster_, ds, bag,
                                       p->unnest_id_attr(), nm)
                : runtime::Unnest(cluster_, ds, bag, nm);
        if (!out.ok()) return out;
        RenameTail(&out->schema, inner_names.size(), inner_names);
        return out;
      };
      SkewTriple out;
      TRANCE_ASSIGN_OR_RETURN(out.light, run(in.light, "unnest"));
      TRANCE_ASSIGN_OR_RETURN(out.heavy, run(in.heavy, "unnest.h"));
      // Unnest removes the bag column: recorded heavy-key positions after it
      // shift; conservatively drop them.
      out.heavy_keys = std::nullopt;
      return out;
    }

    case K::kAddIndex: {
      TRANCE_ASSIGN_OR_RETURN(SkewTriple in, Exec(p->child()));
      // Ids must be unique across components: merge first (cheap concat).
      TRANCE_ASSIGN_OR_RETURN(Dataset merged,
                              skew::MergeTriple(cluster_, in, "addindex"));
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out, runtime::AddIndexColumn(cluster_, merged, p->id_attr(),
                                               "add_index"));
      return SkewTriple::AllLight(std::move(out));
    }

    case K::kNest: {
      TRANCE_ASSIGN_OR_RETURN(SkewTriple in, Exec(p->child()));
      // "All nest operations merge the light and heavy components and follow
      // the standard implementation" (Section 5).
      TRANCE_ASSIGN_OR_RETURN(Dataset merged,
                              skew::MergeTriple(cluster_, in, "nest"));
      TRANCE_ASSIGN_OR_RETURN(std::vector<int> keys,
                              ResolveCols(merged.schema, p->keys()));
      TRANCE_ASSIGN_OR_RETURN(std::vector<int> values,
                              ResolveCols(merged.schema, p->values()));
      if (p->agg() == NestAgg::kSum) {
        TRANCE_ASSIGN_OR_RETURN(
            Dataset out,
            runtime::SumAggregate(cluster_, merged, keys, values,
                                  options_.map_side_combine, "nest_sum"));
        return SkewTriple::AllLight(std::move(out));
      }
      std::vector<int> indicator;
      if (!p->nest_indicator().empty()) {
        TRANCE_ASSIGN_OR_RETURN(int ind,
                                merged.schema.Require(p->nest_indicator()));
        indicator.push_back(ind);
      }
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out,
          runtime::NestGroup(cluster_, merged, keys, values, p->out_attr(),
                             "nest_bag", indicator));
      TRANCE_RETURN_NOT_OK(
          RenameBagColumn(&out.schema, p->out_attr(), p->value_names()));
      return SkewTriple::AllLight(std::move(out));
    }

    case K::kDedup: {
      TRANCE_ASSIGN_OR_RETURN(SkewTriple in, Exec(p->child()));
      TRANCE_ASSIGN_OR_RETURN(Dataset merged,
                              skew::MergeTriple(cluster_, in, "dedup"));
      TRANCE_ASSIGN_OR_RETURN(Dataset out,
                              runtime::Distinct(cluster_, merged, "dedup"));
      return SkewTriple::AllLight(std::move(out));
    }

    case K::kUnionAll: {
      TRANCE_ASSIGN_OR_RETURN(SkewTriple a, Exec(p->child(0)));
      TRANCE_ASSIGN_OR_RETURN(SkewTriple b, Exec(p->child(1)));
      TRANCE_ASSIGN_OR_RETURN(Dataset am, skew::MergeTriple(cluster_, a, "u"));
      TRANCE_ASSIGN_OR_RETURN(Dataset bm, skew::MergeTriple(cluster_, b, "u"));
      TRANCE_ASSIGN_OR_RETURN(Dataset out,
                              runtime::UnionAll(cluster_, am, bm, "union"));
      return SkewTriple::AllLight(std::move(out));
    }

    case K::kCoGroup: {
      TRANCE_ASSIGN_OR_RETURN(SkewTriple l, Exec(p->child(0)));
      TRANCE_ASSIGN_OR_RETURN(SkewTriple r, Exec(p->child(1)));
      TRANCE_ASSIGN_OR_RETURN(Dataset lm, skew::MergeTriple(cluster_, l, "cg"));
      TRANCE_ASSIGN_OR_RETURN(Dataset rm, skew::MergeTriple(cluster_, r, "cg"));
      TRANCE_ASSIGN_OR_RETURN(std::vector<int> lk,
                              ResolveCols(lm.schema, p->left_keys()));
      TRANCE_ASSIGN_OR_RETURN(std::vector<int> rk,
                              ResolveCols(rm.schema, p->right_keys()));
      TRANCE_ASSIGN_OR_RETURN(std::vector<int> vals,
                              ResolveCols(rm.schema, p->values()));
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out, runtime::CoGroup(cluster_, lm, rm, lk, rk, vals,
                                        p->out_attr(), "cogroup"));
      TRANCE_RETURN_NOT_OK(
          RenameBagColumn(&out.schema, p->out_attr(), p->value_names()));
      return SkewTriple::AllLight(std::move(out));
    }

    case K::kBagToDict: {
      TRANCE_ASSIGN_OR_RETURN(SkewTriple in, Exec(p->child()));
      TRANCE_ASSIGN_OR_RETURN(int label, in.schema().Require(p->label_col()));
      if (options_.skew_aware) {
        return skew::SkewAwareBagToDict(cluster_, in, label, "bag_to_dict");
      }
      TRANCE_ASSIGN_OR_RETURN(Dataset merged,
                              skew::MergeTriple(cluster_, in, "b2d"));
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out,
          runtime::Repartition(cluster_, merged, {label}, "bag_to_dict"));
      return SkewTriple::AllLight(std::move(out));
    }
  }
  return Status::Internal("unhandled plan node in lowering");
}

}  // namespace exec
}  // namespace trance
