#include "exec/bridge.h"

namespace trance {
namespace exec {

using nrc::Type;
using nrc::TypePtr;
using nrc::Value;
using runtime::Field;
using runtime::Row;
using runtime::Schema;

StatusOr<Field> ValueToField(const Value& v, const TypePtr& type) {
  if (type == nullptr) return Status::Invalid("ValueToField: null type");
  switch (type->kind()) {
    case Type::Kind::kScalar:
      switch (type->scalar_kind()) {
        case nrc::ScalarKind::kInt:
        case nrc::ScalarKind::kDate:
          if (!v.is_int()) return Status::TypeError("expected int value");
          return Field::Int(v.AsInt());
        case nrc::ScalarKind::kReal:
          if (!v.is_real() && !v.is_int()) {
            return Status::TypeError("expected real value");
          }
          return Field::Real(v.AsNumber());
        case nrc::ScalarKind::kString:
          if (!v.is_string()) return Status::TypeError("expected string");
          return Field::Str(v.AsString());
        case nrc::ScalarKind::kBool:
          if (!v.is_bool()) return Status::TypeError("expected bool");
          return Field::Bool(v.AsBool());
      }
      return Status::Internal("bad scalar kind");
    case Type::Kind::kLabel: {
      if (!v.is_label()) return Status::TypeError("expected label value");
      std::vector<std::pair<std::string, Field>> params;
      for (const auto& [n, pv] : v.AsLabel().params) {
        // Label params are flat values; convert by dynamic type.
        if (pv.is_int()) {
          params.emplace_back(n, Field::Int(pv.AsInt()));
        } else if (pv.is_real()) {
          params.emplace_back(n, Field::Real(pv.AsReal()));
        } else if (pv.is_string()) {
          params.emplace_back(n, Field::Str(pv.AsString()));
        } else if (pv.is_bool()) {
          params.emplace_back(n, Field::Bool(pv.AsBool()));
        } else if (pv.is_label()) {
          TRANCE_ASSIGN_OR_RETURN(Field lf, ValueToField(pv, Type::Label()));
          params.emplace_back(n, lf);
        } else {
          return Status::TypeError("label parameter is not flat");
        }
      }
      return runtime::MakeLabel(std::move(params));
    }
    case Type::Kind::kBag:
    case Type::Kind::kDict: {
      if (!v.is_bag()) return Status::TypeError("expected bag value");
      TRANCE_ASSIGN_OR_RETURN(Schema inner,
                              Schema::FromBagType(
                                  type->is_dict()
                                      ? nrc::Type::Bag(type->element()->element())
                                      : type));
      TRANCE_ASSIGN_OR_RETURN(std::vector<Row> rows, ValueToRows(v, inner));
      return Field::Bag(std::move(rows));
    }
    case Type::Kind::kTuple:
      return Status::TypeError("tuple cannot be a field (wrap in bag)");
  }
  return Status::Internal("unhandled type in ValueToField");
}

StatusOr<Row> TupleToRow(const Value& tuple, const Schema& schema) {
  Row row;
  row.fields.reserve(schema.size());
  if (schema.size() == 1 && schema.col(0).name == "_value" &&
      !tuple.is_tuple()) {
    TRANCE_ASSIGN_OR_RETURN(Field f, ValueToField(tuple, schema.col(0).type));
    row.fields.push_back(std::move(f));
    return row;
  }
  if (!tuple.is_tuple()) {
    return Status::TypeError("expected tuple value: " + tuple.ToString());
  }
  for (const auto& col : schema.columns()) {
    TRANCE_ASSIGN_OR_RETURN(Value fv, tuple.Field(col.name));
    TRANCE_ASSIGN_OR_RETURN(Field f, ValueToField(fv, col.type));
    row.fields.push_back(std::move(f));
  }
  return row;
}

StatusOr<std::vector<Row>> ValueToRows(const Value& bag,
                                       const Schema& schema) {
  if (!bag.is_bag()) return Status::TypeError("ValueToRows on non-bag");
  std::vector<Row> rows;
  rows.reserve(bag.AsBag().elems.size());
  for (const auto& t : bag.AsBag().elems) {
    TRANCE_ASSIGN_OR_RETURN(Row r, TupleToRow(t, schema));
    rows.push_back(std::move(r));
  }
  return rows;
}

StatusOr<Value> FieldToValue(const Field& f, const TypePtr& type) {
  if (f.is_null()) {
    return Status::Invalid("NULL field surfaced to a value conversion");
  }
  if (type != nullptr && type->is_bag()) {
    if (!f.is_bag()) return Status::TypeError("expected bag field");
    TRANCE_ASSIGN_OR_RETURN(Schema inner, Schema::FromBagType(type));
    std::vector<Row> rows = f.AsBag() == nullptr ? std::vector<Row>{}
                                                 : *f.AsBag();
    return RowsToValue(rows, inner);
  }
  if (f.is_int()) {
    return Value::Int(f.AsInt());
  }
  if (f.is_real()) return Value::Real(f.AsReal());
  if (f.is_string()) return Value::Str(f.AsString());
  if (f.is_bool()) return Value::Bool(f.AsBool());
  if (f.is_label()) {
    std::vector<std::pair<std::string, Value>> params;
    if (f.AsLabel() != nullptr) {
      for (const auto& [n, pf] : f.AsLabel()->params) {
        TRANCE_ASSIGN_OR_RETURN(Value pv, FieldToValue(pf, nullptr));
        params.emplace_back(n, pv);
      }
    }
    return Value::Label(std::move(params));
  }
  if (f.is_bag()) {
    return Status::Invalid("bag field without a bag type in conversion");
  }
  return Status::Internal("unhandled field in FieldToValue");
}

StatusOr<Value> RowsToValue(const std::vector<Row>& rows,
                            const Schema& schema) {
  std::vector<Value> elems;
  elems.reserve(rows.size());
  for (const auto& row : rows) {
    if (row.fields.size() != schema.size()) {
      return Status::Internal("row width does not match schema");
    }
    if (schema.size() == 1 && schema.col(0).name == "_value" &&
        !schema.col(0).type->is_tuple()) {
      TRANCE_ASSIGN_OR_RETURN(Value v,
                              FieldToValue(row.fields[0], schema.col(0).type));
      elems.push_back(std::move(v));
      continue;
    }
    nrc::TupleValue t;
    for (size_t i = 0; i < schema.size(); ++i) {
      TRANCE_ASSIGN_OR_RETURN(
          Value v, FieldToValue(row.fields[i], schema.col(i).type));
      t.fields.emplace_back(schema.col(i).name, std::move(v));
    }
    elems.push_back(Value::Tuple(std::move(t)));
  }
  return Value::Bag(std::move(elems));
}

}  // namespace exec
}  // namespace trance
