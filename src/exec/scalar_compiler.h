// Compiles plan scalar expressions (NRC scalar nodes whose free variables
// are column names) into closures over runtime rows, with SQL-style NULL
// propagation: NULL operands make arithmetic NULL and comparisons false.
// NewLabel expressions evaluate to runtime labels.
#ifndef TRANCE_EXEC_SCALAR_COMPILER_H_
#define TRANCE_EXEC_SCALAR_COMPILER_H_

#include <functional>

#include "nrc/expr.h"
#include "runtime/field.h"
#include "runtime/schema.h"
#include "util/status.h"

namespace trance {
namespace exec {

using ScalarFn = std::function<runtime::Field(const runtime::Row&)>;

/// Compiles `e` against `schema`; fails if a referenced column is missing or
/// a node kind has no row-level meaning.
StatusOr<ScalarFn> CompileScalar(const nrc::ExprPtr& e,
                                 const runtime::Schema& schema);

/// Static result type of a compiled scalar expression.
StatusOr<nrc::TypePtr> ScalarResultType(const nrc::ExprPtr& e,
                                        const runtime::Schema& schema);

/// Compiles a boolean expression into a predicate (NULL -> false).
StatusOr<std::function<bool(const runtime::Row&)>> CompilePredicate(
    const nrc::ExprPtr& e, const runtime::Schema& schema);

}  // namespace exec
}  // namespace trance

#endif  // TRANCE_EXEC_SCALAR_COMPILER_H_
