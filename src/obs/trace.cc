#include "obs/trace.h"

#include "obs/json.h"
#include "util/stopwatch.h"

namespace trance {
namespace obs {

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  depth_ = 0;
}

double Tracer::NowMicros() const { return WallMicros(); }

void Tracer::AddCompleteEvent(TraceEvent ev) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

std::string Tracer::ToChromeTraceJson() const {
  // Serialize from a snapshot: spans may still be closing (and appending to
  // events_) on pool workers while an export runs.
  const std::vector<TraceEvent> snapshot = events();
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const auto& e : snapshot) {
    w.BeginObject();
    w.Key("name");
    w.String(e.name);
    w.Key("cat");
    w.String(e.cat.empty() ? "trance" : e.cat);
    w.Key("ph");
    w.String("X");
    w.Key("ts");
    w.Number(e.ts_us);
    w.Key("dur");
    w.Number(e.dur_us);
    w.Key("pid");
    w.Int(0);
    w.Key("tid");
    w.Int(e.tid);
    if (!e.args.empty() || e.depth > 0) {
      w.Key("args");
      w.BeginObject();
      if (e.depth > 0) {
        w.Key("depth");
        w.Int(e.depth);
      }
      for (const auto& [k, v] : e.args) {
        w.Key(k);
        w.String(v);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();
  return w.str();
}

Tracer::Span::Span(Tracer* tracer, std::string name, std::string cat)
    : tracer_(tracer), active_(tracer != nullptr && tracer->enabled()) {
  if (!active_) return;
  ev_.name = std::move(name);
  ev_.cat = std::move(cat);
  ev_.ts_us = tracer_->NowMicros();
  std::lock_guard<std::mutex> lock(tracer_->mu_);
  ev_.depth = tracer_->depth_++;
}

Tracer::Span::~Span() {
  if (!active_) return;
  ev_.dur_us = tracer_->NowMicros() - ev_.ts_us;
  std::lock_guard<std::mutex> lock(tracer_->mu_);
  --tracer_->depth_;
  if (tracer_->enabled()) tracer_->events_.push_back(std::move(ev_));
}

void Tracer::Span::AddArg(std::string key, std::string value) {
  if (!active_) return;
  ev_.args.emplace_back(std::move(key), std::move(value));
}

}  // namespace obs
}  // namespace trance
