#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

#include "obs/json.h"

namespace trance {
namespace obs {

namespace {

// Shard index for the calling thread: hash of thread id, stable per thread.
int ThisThreadShard() {
  static thread_local const int shard = static_cast<int>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      Counter::kShards);
  return shard;
}

// %.17g keeps doubles round-trippable; matches JsonWriter::Number.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Series key: name plus rendered labels, so distinct label sets of one name
// are distinct entries and map ordering gives the sorted snapshot for free.
std::string SeriesKey(const std::string& name, const MetricLabels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';  // unit separator: cannot appear in sane label values
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

}  // namespace

const char* MetricKindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

// ---------------------------------------------------------------- Counter

void Counter::Add(uint64_t v) {
  shards_[ThisThreadShard()].v.fetch_add(v, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Gauge

void Gauge::Set(double v) { v_.store(v, std::memory_order_relaxed); }

void Gauge::Add(double v) {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void Gauge::SetMax(double v) {
  double cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Gauge::Value() const { return v_.load(std::memory_order_relaxed); }

void Gauge::Reset() { v_.store(0.0, std::memory_order_relaxed); }

// -------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      bucket_counts_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double v) {
  size_t i =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  bucket_counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : bucket_counts_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ----------------------------------------------------------- MetricSample

std::string MetricSample::ExpositionName() const {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += JsonEscape(v);
    out += '"';
  }
  out += '}';
  return out;
}

// --------------------------------------------------------- MetricRegistry

MetricRegistry::Entry* MetricRegistry::FindOrCreate(const std::string& name,
                                                    const std::string& help,
                                                    MetricKind kind,
                                                    const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = SeriesKey(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      std::fprintf(stderr,
                   "MetricRegistry: metric %s re-registered as %s (was %s)\n",
                   name.c_str(), MetricKindName(kind),
                   MetricKindName(it->second.kind));
      std::abort();
    }
    return &it->second;
  }
  Entry e;
  e.kind = kind;
  e.help = help;
  e.labels = labels;
  e.name = name;
  auto [pos, inserted] = entries_.emplace(key, std::move(e));
  (void)inserted;
  return &pos->second;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help,
                                    MetricLabels labels) {
  Entry* e = FindOrCreate(name, help, MetricKind::kCounter, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (!e->counter) e->counter.reset(new Counter());
  return e->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help, MetricLabels labels) {
  Entry* e = FindOrCreate(name, help, MetricKind::kGauge, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (!e->gauge) e->gauge.reset(new Gauge());
  return e->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        std::vector<double> bounds,
                                        MetricLabels labels) {
  Entry* e = FindOrCreate(name, help, MetricKind::kHistogram, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (!e->histogram) e->histogram.reset(new Histogram(std::move(bounds)));
  return e->histogram.get();
}

std::vector<MetricSample> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    (void)key;
    MetricSample s;
    s.name = e.name;
    s.help = e.help;
    s.labels = e.labels;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.counter_value = e.counter ? e.counter->Value() : 0;
        break;
      case MetricKind::kGauge:
        s.gauge_value = e.gauge ? e.gauge->Value() : 0;
        break;
      case MetricKind::kHistogram:
        if (e.histogram) {
          s.bounds = e.histogram->bounds_;
          s.bucket_counts.reserve(e.histogram->bucket_counts_.size());
          for (const auto& b : e.histogram->bucket_counts_) {
            s.bucket_counts.push_back(b.load(std::memory_order_relaxed));
          }
          s.sum = e.histogram->sum_.load(std::memory_order_relaxed);
          s.count = e.histogram->count_.load(std::memory_order_relaxed);
        }
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, e] : entries_) {
    (void)key;
    if (e.counter) e.counter->Reset();
    if (e.gauge) e.gauge->Reset();
    if (e.histogram) e.histogram->Reset();
  }
}

std::string MetricRegistry::SamplesToPrometheusText(
    const std::vector<MetricSample>& samples) {
  std::string out;
  std::string last_family;
  for (const MetricSample& s : samples) {
    if (s.name != last_family) {
      last_family = s.name;
      out += "# HELP " + s.name + " " + s.help + "\n";
      out += "# TYPE " + s.name + " " + MetricKindName(s.kind) + "\n";
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        out += s.ExpositionName() + " " + std::to_string(s.counter_value) + "\n";
        break;
      case MetricKind::kGauge:
        out += s.ExpositionName() + " " + FormatDouble(s.gauge_value) + "\n";
        break;
      case MetricKind::kHistogram: {
        // Cumulative buckets per the exposition format.
        uint64_t cum = 0;
        std::string label_infix;
        for (const auto& [k, v] : s.labels) {
          label_infix += k;
          label_infix += "=\"";
          label_infix += JsonEscape(v);
          label_infix += "\",";
        }
        for (size_t i = 0; i < s.bucket_counts.size(); ++i) {
          cum += s.bucket_counts[i];
          const std::string le =
              i < s.bounds.size() ? FormatDouble(s.bounds[i]) : "+Inf";
          out += s.name + "_bucket{" + label_infix + "le=\"" + le + "\"} " +
                 std::to_string(cum) + "\n";
        }
        const std::string suffix =
            s.labels.empty() ? std::string()
                             : "{" + label_infix.substr(0, label_infix.size() - 1) + "}";
        out += s.name + "_sum" + suffix + " " + FormatDouble(s.sum) + "\n";
        out += s.name + "_count" + suffix + " " + std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricRegistry::ToPrometheusText() const {
  return SamplesToPrometheusText(Snapshot());
}

void MetricRegistry::WriteSamplesJson(const std::vector<MetricSample>& samples,
                                      JsonWriter* w) {
  w->BeginObject();
  for (const MetricSample& s : samples) {
    w->Key(s.ExpositionName());
    switch (s.kind) {
      case MetricKind::kCounter:
        w->Uint(s.counter_value);
        break;
      case MetricKind::kGauge:
        w->Number(s.gauge_value);
        break;
      case MetricKind::kHistogram: {
        w->BeginObject();
        w->Key("count");
        w->Uint(s.count);
        w->Key("sum");
        w->Number(s.sum);
        w->Key("buckets");
        w->BeginObject();
        uint64_t cum = 0;
        for (size_t i = 0; i < s.bucket_counts.size(); ++i) {
          cum += s.bucket_counts[i];
          const std::string key =
              i < s.bounds.size() ? "le_" + FormatDouble(s.bounds[i]) : "le_inf";
          w->Key(key);
          w->Uint(cum);
        }
        w->EndObject();
        w->EndObject();
        break;
      }
    }
  }
  w->EndObject();
}

void MetricRegistry::WriteJson(JsonWriter* w) const {
  WriteSamplesJson(Snapshot(), w);
}

std::string MetricRegistry::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.str();
}

}  // namespace obs
}  // namespace trance
