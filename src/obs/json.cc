#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace trance {
namespace obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!counts_.empty() && counts_.back() > 0) out_ += ',';
  if (!counts_.empty()) ++counts_.back();
}

void JsonWriter::Raw(const std::string& s) {
  Separate();
  out_ += s;
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  counts_.push_back(0);
}

void JsonWriter::EndObject() {
  out_ += '}';
  if (counts_.size() > 1) counts_.pop_back();
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  counts_.push_back(0);
}

void JsonWriter::EndArray() {
  out_ += ']';
  if (counts_.size() > 1) counts_.pop_back();
}

void JsonWriter::Key(const std::string& k) {
  if (!counts_.empty() && counts_.back() > 0) out_ += ',';
  if (!counts_.empty()) ++counts_.back();
  out_ += '"';
  out_ += JsonEscape(k);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(const std::string& v) {
  Raw("\"" + JsonEscape(v) + "\"");
}

void JsonWriter::Number(double v) {
  if (!std::isfinite(v)) {
    Null();
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  Raw(buf);
}

void JsonWriter::Int(int64_t v) { Raw(std::to_string(v)); }
void JsonWriter::Uint(uint64_t v) { Raw(std::to_string(v)); }
void JsonWriter::Bool(bool v) { Raw(v ? "true" : "false"); }
void JsonWriter::Null() { Raw("null"); }

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  StatusOr<JsonValue> Parse() {
    TRANCE_ASSIGN_OR_RETURN(JsonValue v, Value());
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::Invalid("json: trailing characters at offset " +
                             std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      return Status::Invalid(std::string("json: expected '") + c +
                             "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  StatusOr<JsonValue> Value() {
    SkipWs();
    if (pos_ >= s_.size()) return Status::Invalid("json: unexpected end");
    char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') {
      TRANCE_ASSIGN_OR_RETURN(std::string str, ParseString());
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.str = std::move(str);
      return v;
    }
    if (c == 't' || c == 'f') return Keyword(c == 't' ? "true" : "false");
    if (c == 'n') return Keyword("null");
    return NumberValue();
  }

  StatusOr<JsonValue> Keyword(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) {
      return Status::Invalid("json: bad literal at offset " +
                             std::to_string(pos_));
    }
    pos_ += word.size();
    JsonValue v;
    if (word == "true" || word == "false") {
      v.kind = JsonValue::Kind::kBool;
      v.b = word == "true";
    }
    return v;
  }

  StatusOr<JsonValue> NumberValue() {
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::Invalid("json: bad value at offset " +
                             std::to_string(pos_));
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  StatusOr<std::string> ParseString() {
    TRANCE_RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return Status::Invalid("json: bad escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Status::Invalid("json: bad \\u");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Status::Invalid("json: bad \\u digit");
          }
          // Decode BMP code points to UTF-8 (surrogates left as-is bytes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Status::Invalid("json: unknown escape");
      }
    }
    TRANCE_RETURN_NOT_OK(Expect('"'));
    return out;
  }

  StatusOr<JsonValue> Object() {
    TRANCE_RETURN_NOT_OK(Expect('{'));
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipWs();
      TRANCE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      TRANCE_RETURN_NOT_OK(Expect(':'));
      TRANCE_ASSIGN_OR_RETURN(JsonValue member, Value());
      v.obj.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    TRANCE_RETURN_NOT_OK(Expect('}'));
    return v;
  }

  StatusOr<JsonValue> Array() {
    TRANCE_RETURN_NOT_OK(Expect('['));
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      TRANCE_ASSIGN_OR_RETURN(JsonValue elem, Value());
      v.arr.push_back(std::move(elem));
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    TRANCE_RETURN_NOT_OK(Expect(']'));
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace obs
}  // namespace trance
