// Low-overhead structured tracer: nested spans for compilation phases
// (typecheck -> unnest -> optimize -> shred/materialize -> lowering/execute)
// and runtime stages, serializable to Chrome trace_event JSON for
// chrome://tracing / Perfetto.
//
// Disabled by default: a Span constructed on a disabled tracer performs a
// single branch and no clock reads, so instrumentation left in hot paths
// costs nothing when tracing is off.
#ifndef TRANCE_OBS_TRACE_H_
#define TRANCE_OBS_TRACE_H_

#include <atomic>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace trance {
namespace obs {

/// One complete ("ph":"X") trace event. Timestamps are microseconds on the
/// process-wide WallMicros timeline.
struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0;
  double dur_us = 0;
  int tid = 0;    // 0 = compile/driver track, 1 = runtime-stage track
  int depth = 0;  // span nesting depth at emission (tid 0 spans)
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  /// Process-global tracer. Event recording is mutex-guarded so spans may
  /// close on pool worker threads (partition-parallel operators); the
  /// disabled fast path stays a single atomic load.
  static Tracer& Global();

  void set_enabled(bool e) { enabled_.store(e, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Clear();

  /// Microseconds on the shared process timeline.
  double NowMicros() const;

  /// Records a finished event (no-op when disabled).
  void AddCompleteEvent(TraceEvent ev);

  /// Snapshot of the recorded events (copied under the lock, so safe to
  /// call while spans are still closing on worker threads).
  std::vector<TraceEvent> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  /// Serializes all recorded events as a Chrome trace_event JSON document
  /// ({"traceEvents": [...], ...}).
  std::string ToChromeTraceJson() const;

  /// RAII span: records a complete event covering its lifetime. Nesting is
  /// tracked via the tracer's depth counter.
  class Span {
   public:
    Span(Tracer* tracer, std::string name, std::string cat = "compile");
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    void AddArg(std::string key, std::string value);

   private:
    Tracer* tracer_;
    TraceEvent ev_;
    bool active_;
  };

 private:
  std::atomic<bool> enabled_{false};
  /// Guards depth_ and events_ (spans can open/close concurrently).
  mutable std::mutex mu_;
  int depth_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace obs
}  // namespace trance

#endif  // TRANCE_OBS_TRACE_H_
