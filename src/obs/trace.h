// Low-overhead structured tracer: nested spans for compilation phases
// (typecheck -> unnest -> optimize -> shred/materialize -> lowering/execute)
// and runtime stages, serializable to Chrome trace_event JSON for
// chrome://tracing / Perfetto.
//
// Disabled by default: a Span constructed on a disabled tracer performs a
// single branch and no clock reads, so instrumentation left in hot paths
// costs nothing when tracing is off.
#ifndef TRANCE_OBS_TRACE_H_
#define TRANCE_OBS_TRACE_H_

#include <string>
#include <utility>
#include <vector>

namespace trance {
namespace obs {

/// One complete ("ph":"X") trace event. Timestamps are microseconds on the
/// process-wide WallMicros timeline.
struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0;
  double dur_us = 0;
  int tid = 0;    // 0 = compile/driver track, 1 = runtime-stage track
  int depth = 0;  // span nesting depth at emission (tid 0 spans)
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  /// Process-global tracer (single-threaded engine; no locking).
  static Tracer& Global();

  void set_enabled(bool e) { enabled_ = e; }
  bool enabled() const { return enabled_; }
  void Clear();

  /// Microseconds on the shared process timeline.
  double NowMicros() const;

  /// Records a finished event (no-op when disabled).
  void AddCompleteEvent(TraceEvent ev);

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Serializes all recorded events as a Chrome trace_event JSON document
  /// ({"traceEvents": [...], ...}).
  std::string ToChromeTraceJson() const;

  /// RAII span: records a complete event covering its lifetime. Nesting is
  /// tracked via the tracer's depth counter.
  class Span {
   public:
    Span(Tracer* tracer, std::string name, std::string cat = "compile");
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    void AddArg(std::string key, std::string value);

   private:
    Tracer* tracer_;
    TraceEvent ev_;
    bool active_;
  };

 private:
  bool enabled_ = false;
  int depth_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace obs
}  // namespace trance

#endif  // TRANCE_OBS_TRACE_H_
