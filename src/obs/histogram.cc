#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace trance {
namespace obs {

uint64_t Percentile(std::vector<uint64_t> values, double p) {
  if (values.empty()) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  std::sort(values.begin(), values.end());
  // Nearest-rank: smallest value with at least ceil(p/100 * N) samples <= it.
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  return values[rank - 1];
}

LoadSummary SummarizeLoads(const std::vector<uint64_t>& loads) {
  LoadSummary s;
  s.partitions = loads.size();
  if (loads.empty()) return s;
  std::vector<uint64_t> sorted = loads;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  for (uint64_t v : sorted) s.total += v;
  s.mean = static_cast<double>(s.total) / static_cast<double>(sorted.size());
  auto nearest = [&](double p) {
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    if (rank == 0) rank = 1;
    return sorted[rank - 1];
  };
  s.p50 = nearest(50);
  s.p95 = nearest(95);
  s.imbalance =
      s.mean > 0 ? static_cast<double>(s.max) / s.mean : 1.0;
  return s;
}

}  // namespace obs
}  // namespace trance
