// Bounded, thread-safe structured event log (JSONL).
//
// The runtime emits one JSON object per line for the lifecycle moments an
// operator (human or tool) wants to replay after the fact: job and stage
// start/finish, shuffles, fault injections, retry/backoff decisions,
// memory-cap checks, and heavy-key handling. Every event carries the ids
// needed to join it against the Chrome trace and EXPLAIN ANALYZE output
// (job id, stage sequence number, partition, attempt).
//
// Determinism contract (tested at 1/4/8 threads): event CONTENT — types,
// ids, counts, sim-time — is bit-identical at any thread count, because
// every Emit() happens on the driver thread at a stage barrier, in stage
// order. Wall-clock readings are confined to fields whose names start with
// `wall_` (added via Event::Wall), so a consumer can strip them and compare
// logs structurally; nothing else in an event may depend on the machine or
// thread count.
//
// Sinks: by default events land in a bounded in-memory ring (oldest dropped
// first, with a drop counter so truncation is visible). When the
// TRANCE_EVENT_LOG environment variable names a file, each event is also
// appended there as it is emitted.
#ifndef TRANCE_OBS_EVENT_LOG_H_
#define TRANCE_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace trance {
namespace obs {

class EventLog;

/// Builder for one event. Appends fields in call order, renders to a single
/// JSON object line on Emit(). Field names must be unique per event; the
/// `type` field is set by the constructor.
class Event {
 public:
  Event(EventLog* log, const std::string& type);

  Event& Str(const std::string& key, const std::string& value);
  Event& U64(const std::string& key, uint64_t value);
  Event& I64(const std::string& key, int64_t value);
  Event& F64(const std::string& key, double value);
  Event& Bool(const std::string& key, bool value);
  /// Wall-clock field: the key is forced to carry the `wall_` prefix so
  /// consumers can strip nondeterministic fields mechanically.
  Event& Wall(const std::string& key, double value);

  /// Renders and appends to the log (no-op when the log is disabled).
  void Emit();

 private:
  EventLog* log_;
  std::string line_;
  bool any_ = false;
};

/// The log itself. One global instance (GlobalEventLog) is shared by the
/// runtime; tests may construct private instances.
class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit EventLog(size_t capacity = kDefaultCapacity);
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Cheap global kill switch — Emit() is a relaxed load + early-out when
  /// disabled, so an always-on runtime call site costs ~nothing.
  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops buffered events and resets the drop counter (file sink is left
  /// alone: the file is an append-only history).
  void Clear();

  /// Snapshot of the buffered JSONL lines, oldest first.
  std::vector<std::string> Lines() const;

  /// Number of events evicted from the ring since the last Clear().
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// All buffered lines joined with '\n' (trailing newline included when
  /// non-empty) — the JSONL document.
  std::string ToJsonl() const;

  /// (Re)reads TRANCE_EVENT_LOG and opens/closes the file sink accordingly.
  /// Called once at construction; tests call it after setenv.
  void ReopenFileSinkFromEnv();

 private:
  friend class Event;
  void Append(std::string line);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<std::string> ring_;
  std::FILE* file_ = nullptr;
};

/// Process-wide log used by the runtime. Disabled until something (bench
/// harness, tests, user code) enables it.
EventLog& GlobalEventLog();

}  // namespace obs
}  // namespace trance

#endif  // TRANCE_OBS_EVENT_LOG_H_
