// Percentile / load-imbalance math over per-partition byte histograms
// (Section 6 reads straggler load and memory saturation off exactly these
// distributions).
#ifndef TRANCE_OBS_HISTOGRAM_H_
#define TRANCE_OBS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trance {
namespace obs {

/// Nearest-rank percentile (p in [0,100]) of an unsorted sample; 0 on empty.
uint64_t Percentile(std::vector<uint64_t> values, double p);

/// Summary of one per-partition load histogram.
struct LoadSummary {
  size_t partitions = 0;
  uint64_t min = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t max = 0;
  uint64_t total = 0;
  double mean = 0;
  /// Straggler factor max/mean; 1.0 for empty or all-zero loads.
  double imbalance = 1.0;
};

LoadSummary SummarizeLoads(const std::vector<uint64_t>& loads);

}  // namespace obs
}  // namespace trance

#endif  // TRANCE_OBS_HISTOGRAM_H_
