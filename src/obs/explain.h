// EXPLAIN ANALYZE: joins recorded runtime stage metrics back onto the
// printed algebraic plan, so each operator line shows rows, shuffle bytes,
// data-movement mode, straggler ratio, and partition-load percentiles.
//
// Attribution contract: the executor pushes a StageScope named
// StageScopeName(var, pre-order-node-index) around every plan node it
// lowers; this module re-walks the compiled program with the same numbering
// and matches stages by that scope string.
#ifndef TRANCE_OBS_EXPLAIN_H_
#define TRANCE_OBS_EXPLAIN_H_

#include <string>

#include "plan/plan.h"
#include "runtime/stats.h"

namespace trance {
namespace obs {

/// Scope string attributed to the `node_index`-th node (pre-order, children
/// in child-index order) of assignment `var`. Must match the executor's
/// numbering exactly.
std::string StageScopeName(const std::string& var, int node_index);

/// Renders the per-assignment plan trees with per-operator runtime stats
/// joined on, a section for stages recorded outside plan execution
/// (sources, unshredding, heavy-key sampling of merged inputs), and a job
/// summary with straggler/imbalance aggregates.
std::string ExplainAnalyze(const plan::PlanProgram& program,
                           const runtime::JobStats& stats);

}  // namespace obs
}  // namespace trance

#endif  // TRANCE_OBS_EXPLAIN_H_
