// Central metric registry: typed, labeled counters / gauges / histograms
// with one registration site per metric and generic exposition.
//
// Motivation (PR 6): every counter added since PR 1 (fusion, faults, key
// codec) had to be hand-threaded through StageStats -> JobStats -> explain ->
// JSON export -> BENCH_*.json -> docs — five edit sites per metric. The
// registry collapses that to one: a module calls
//
//   registry->GetCounter("trance_shuffle_bytes_total", "bytes shuffled")
//           ->Add(bytes);
//
// and the metric automatically appears in MetricRegistry::Snapshot(), the
// Prometheus text exposition (ToPrometheusText), the JSON rendering
// (WriteJson / ToJson), and — because the bench harness serializes the
// snapshot generically — in every BENCH_*.json report. The only other edit
// is the documentation row in docs/METRICS.md, which CI enforces.
//
// Thread model:
//  - Counter::Add is the hot-path update: a relaxed atomic add on a
//    thread-sharded slot (no contention between pool workers), safe from any
//    thread. Totals are exact because uint64 addition is commutative.
//  - Gauge and Histogram updates are atomic (CAS loops) and safe from any
//    thread, but DOUBLE accumulation order is not commutative — modules that
//    need deterministic values only update them from driver-sequential code
//    (stage barriers), which is where all current publishers run. This is
//    the registry half of the determinism contract in docs/ARCHITECTURE.md
//    ("Telemetry"): integer counters may be updated from workers, floating
//    point only from the driver.
//  - GetCounter/GetGauge/GetHistogram and Snapshot take the registry mutex;
//    handles returned are stable for the registry's lifetime, so hot loops
//    look a metric up once and keep the pointer.
//
// The registry layers BELOW the runtime (trance_obs_core depends only on
// util), so runtime/cluster, runtime/ops, runtime/fault and
// runtime/stage_pipeline can publish directly without breaking the
// "runtime never depends on the plan-aware obs layer" discipline.
#ifndef TRANCE_OBS_METRICS_H_
#define TRANCE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace trance {
namespace obs {

class JsonWriter;

/// Label key/value pairs, e.g. {{"movement", "shuffle"}}. Keep cardinality
/// bounded (enum-like values only): every distinct label set is a distinct
/// time series in the exposition.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind k);

/// Monotone integer counter with thread-sharded slots: Add() from pool
/// workers never contends on one cache line, Value() folds the shards.
class Counter {
 public:
  static constexpr int kShards = 16;

  void Add(uint64_t v);
  void Increment() { Add(1); }
  uint64_t Value() const;

 private:
  friend class MetricRegistry;
  Counter() = default;
  void Reset();

  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Floating-point gauge with set / add / monotone-max update modes (Add is
/// for accumulated quantities like sim-seconds, SetMax for high-water
/// marks). Updates are atomic; deterministic values require driver-side
/// updates (see header comment).
class Gauge {
 public:
  void Set(double v);
  void Add(double v);
  void SetMax(double v);
  double Value() const;

 private:
  friend class MetricRegistry;
  Gauge() = default;
  void Reset();

  std::atomic<double> v_{0.0};
};

/// Fixed-bound histogram (cumulative exposition like Prometheus: bucket i
/// counts observations <= bounds[i], plus a +Inf bucket, sum and count).
class Histogram {
 public:
  void Observe(double v);

 private:
  friend class MetricRegistry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();

  std::vector<double> bounds_;                       // sorted, strictly inc.
  std::vector<std::atomic<uint64_t>> bucket_counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One metric's state at Snapshot() time.
struct MetricSample {
  std::string name;
  std::string help;
  MetricLabels labels;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter_value = 0;  // kCounter
  double gauge_value = 0;      // kGauge
  // kHistogram: per-bucket cumulative counts are derivable from the
  // non-cumulative counts here; bounds_ has one fewer entry (the last
  // bucket is +Inf).
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
  double sum = 0;
  uint64_t count = 0;

  /// `name` or `name{k="v",...}` — the Prometheus series identity, also used
  /// as the JSON object key in BENCH_*.json `metrics` objects.
  std::string ExpositionName() const;
};

/// The registry: owns every metric, hands out stable handles, renders
/// deterministic (name+labels sorted) snapshots.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Find-or-create. `help` is stored on first registration; re-registering
  /// the same name with a different kind aborts (programmer error).
  Counter* GetCounter(const std::string& name, const std::string& help,
                      MetricLabels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  MetricLabels labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds, MetricLabels labels = {});

  /// All metrics, sorted by (name, labels) — deterministic for a
  /// deterministic update sequence.
  std::vector<MetricSample> Snapshot() const;

  /// Zeroes every value but keeps registrations (and handles) alive.
  /// Benches call this per run, next to JobStats::Reset().
  void Reset();

  /// Prometheus text exposition format (one # HELP / # TYPE per family).
  std::string ToPrometheusText() const;

  /// JSON object keyed by exposition name; histograms render as
  /// {"count":..,"sum":..,"buckets":{"<=bound>":n,...,"+inf":n}}.
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;

  /// Renders an already-taken snapshot (the bench report path, which
  /// snapshots per run and serializes later).
  static void WriteSamplesJson(const std::vector<MetricSample>& samples,
                               JsonWriter* w);
  static std::string SamplesToPrometheusText(
      const std::vector<MetricSample>& samples);

 private:
  struct Entry {
    MetricKind kind;
    std::string help;
    MetricLabels labels;
    std::string name;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, const std::string& help,
                      MetricKind kind, const MetricLabels& labels);

  mutable std::mutex mu_;
  /// Keyed by name + rendered labels (one entry per series).
  std::map<std::string, Entry> entries_;
};

}  // namespace obs
}  // namespace trance

#endif  // TRANCE_OBS_METRICS_H_
