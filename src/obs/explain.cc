#include "obs/explain.h"

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "obs/histogram.h"
#include "plan/printer.h"
#include "util/strings.h"

namespace trance {
namespace obs {

namespace {

using runtime::FusedTransformStats;
using runtime::StageStats;

/// One stage (or one transform of a fused stage) attributed to a plan node.
/// A fused stage expands to one entry per transform, each under the
/// transform's own scope; only the entry for the chain's last transform
/// "owns" the stage, so stage-level metrics (shuffle, work histogram, sim
/// time) are counted exactly once across the chain.
struct NodeEntry {
  const StageStats* stage = nullptr;
  const FusedTransformStats* transform = nullptr;  // null for plain stages
  bool owns_stage = false;

  uint64_t rows_out() const {
    return transform != nullptr ? transform->rows_out : stage->rows_out;
  }
};

/// Stats of one plan operator, aggregated over the stages/fused transforms
/// it recorded (a node may record several: e.g. a skew-aware join records
/// split + light + heavy stages).
struct NodeStats {
  std::vector<NodeEntry> entries;

  bool empty() const { return entries.empty(); }
  /// True iff every entry is a mid-chain transform of a fused stage (the
  /// node's rows streamed through without a stage boundary of its own).
  bool fused_only() const {
    for (const auto& e : entries) {
      if (e.owns_stage) return false;
    }
    return true;
  }
  uint64_t rows_out() const {
    return entries.empty() ? 0 : entries.back().rows_out();
  }
  uint64_t shuffle_bytes() const {
    uint64_t s = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) s += e.stage->shuffle_bytes;
    }
    return s;
  }
  uint64_t bytes_avoided() const {
    uint64_t s = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) s += e.stage->intermediate_bytes_avoided;
    }
    return s;
  }
  double sim_seconds() const {
    double s = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) s += e.stage->sim_seconds;
    }
    return s;
  }
  double straggler() const {
    double worst = 1.0;
    for (const auto& e : entries) {
      if (!e.owns_stage) continue;
      double f = e.stage->ImbalanceFactor();
      if (f > worst) worst = f;
    }
    return worst;
  }
  uint64_t heavy_keys() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->heavy_key_count;
    }
    return n;
  }
  uint64_t key_encode_bytes() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->key_encode_bytes;
    }
    return n;
  }
  uint64_t hash_build_rows() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->hash_build_rows;
    }
    return n;
  }
  uint64_t hash_probe_hits() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->hash_probe_hits;
    }
    return n;
  }
  uint64_t hash_max_chain() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage && e.stage->hash_max_chain > n) n = e.stage->hash_max_chain;
    }
    return n;
  }
  uint64_t hash_table_bytes() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->hash_table_bytes;
    }
    return n;
  }
  uint64_t hash_resizes() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->hash_resizes;
    }
    return n;
  }
  uint64_t hash_probe_len_max() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage && e.stage->hash_probe_len_max > n) {
        n = e.stage->hash_probe_len_max;
      }
    }
    return n;
  }
  uint64_t columnar_bytes() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->columnar_bytes;
    }
    return n;
  }
  uint64_t column_to_row_conversions() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->column_to_row_conversions;
    }
    return n;
  }
  uint64_t spill_bytes_written() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->spill_bytes_written;
    }
    return n;
  }
  uint64_t spill_bytes_read() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->spill_bytes_read;
    }
    return n;
  }
  uint64_t spill_runs() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->spill_runs;
    }
    return n;
  }
  uint64_t spill_merge_passes() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->spill_merge_passes;
    }
    return n;
  }
  uint64_t spill_rowify_avoided() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->spill_rowify_avoided;
    }
    return n;
  }
  uint64_t injected_faults() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->injected_faults;
    }
    return n;
  }
  uint64_t retries() const {
    uint64_t n = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) n += e.stage->retries;
    }
    return n;
  }
  double recovery_sim_seconds() const {
    double s = 0;
    for (const auto& e : entries) {
      if (e.owns_stage) s += e.stage->recovery_sim_seconds;
    }
    return s;
  }
  /// Movement modes used, deduplicated, in first-use order.
  std::string movements() const {
    std::vector<std::string> seen;
    for (const auto& e : entries) {
      if (!e.owns_stage) continue;
      std::string m = runtime::DataMovementName(e.stage->movement);
      bool dup = false;
      for (const auto& s : seen) dup = dup || s == m;
      if (!dup) seen.push_back(std::move(m));
    }
    return Join(seen, "+");
  }
  /// Work histogram of the dominant (largest total work) stage.
  const std::vector<uint64_t>* dominant_work() const {
    const StageStats* best = nullptr;
    for (const auto& e : entries) {
      if (!e.owns_stage || e.stage->partition_work_bytes.empty()) continue;
      if (best == nullptr || e.stage->total_work_bytes > best->total_work_bytes) {
        best = e.stage;
      }
    }
    return best == nullptr ? nullptr : &best->partition_work_bytes;
  }
};

std::string StatsSuffix(const NodeStats& ns) {
  if (ns.empty()) return "  [no stages recorded]";
  if (ns.fused_only()) {
    // Mid-chain operator of a fused stage: it has per-transform row counts
    // but no stage boundary (no shuffle, no materialization) of its own.
    std::ostringstream os;
    os << "  [rows=" << ns.rows_out() << " fused]";
    return os.str();
  }
  std::ostringstream os;
  os << "  [rows=" << ns.rows_out()
     << " shuffle=" << FormatBytes(ns.shuffle_bytes())
     << " mode=" << ns.movements()
     << " straggler=" << FormatDouble(ns.straggler(), 2) << "x";
  if (const std::vector<uint64_t>* work = ns.dominant_work()) {
    LoadSummary ls = SummarizeLoads(*work);
    os << " work(p50/p95/max)=" << FormatBytes(ls.p50) << "/"
       << FormatBytes(ls.p95) << "/" << FormatBytes(ls.max);
  }
  if (ns.heavy_keys() > 0) os << " heavy_keys=" << ns.heavy_keys();
  if (ns.hash_build_rows() > 0 || ns.hash_probe_hits() > 0) {
    os << " ht(build=" << ns.hash_build_rows()
       << " hits=" << ns.hash_probe_hits()
       << " chain=" << ns.hash_max_chain() << ")";
  }
  if (ns.hash_table_bytes() > 0) {
    os << " flat(tbl=" << FormatBytes(ns.hash_table_bytes())
       << " resizes=" << ns.hash_resizes()
       << " probe=" << ns.hash_probe_len_max() << ")";
  }
  if (ns.key_encode_bytes() > 0) {
    os << " key_bytes=" << FormatBytes(ns.key_encode_bytes());
  }
  if (ns.columnar_bytes() > 0) {
    os << " col(blocks=" << FormatBytes(ns.columnar_bytes())
       << " rowify=" << ns.column_to_row_conversions() << ")";
  }
  if (ns.spill_bytes_written() > 0) {
    os << " spill(w=" << FormatBytes(ns.spill_bytes_written())
       << " r=" << FormatBytes(ns.spill_bytes_read())
       << " runs=" << ns.spill_runs() << " merges=" << ns.spill_merge_passes();
    if (ns.spill_rowify_avoided() > 0) {
      os << " rowify_avoided=" << ns.spill_rowify_avoided();
    }
    os << ")";
  }
  if (ns.bytes_avoided() > 0) {
    os << " avoided=" << FormatBytes(ns.bytes_avoided());
  }
  if (ns.injected_faults() > 0) {
    os << " faults=" << ns.injected_faults() << " retries=" << ns.retries()
       << " recovery=" << FormatDouble(ns.recovery_sim_seconds(), 3) << "s";
  }
  os << " sim=" << FormatDouble(ns.sim_seconds(), 3) << "s]";
  return os.str();
}

void Walk(const plan::PlanPtr& p, const std::string& var, int depth,
          int* next_index,
          const std::map<std::string, NodeStats>& by_scope,
          std::ostringstream* os) {
  int index = (*next_index)++;
  std::string scope = StageScopeName(var, index);
  std::string pad(static_cast<size_t>(depth) * 2, ' ');
  auto it = by_scope.find(scope);
  *os << pad << plan::NodeLabel(p)
      << (it == by_scope.end() ? StatsSuffix(NodeStats{})
                               : StatsSuffix(it->second))
      << "\n";
  for (size_t i = 0; i < p->num_children(); ++i) {
    Walk(p->child(i), var, depth + 1, next_index, by_scope, os);
  }
}

}  // namespace

std::string StageScopeName(const std::string& var, int node_index) {
  return var + "#" + std::to_string(node_index);
}

std::string ExplainAnalyze(const plan::PlanProgram& program,
                           const runtime::JobStats& stats) {
  // Group stages by their recorded scope. A scan node re-executes nothing on
  // its own, so scopes may legitimately be missing from the map.
  std::map<std::string, NodeStats> by_scope;
  std::set<std::string> known_scopes;
  for (const auto& s : stats.stages()) {
    if (!s.fused_transforms.empty()) {
      // A fused stage expands to one entry per chained operator; the last
      // transform's node owns the stage-level metrics.
      for (size_t i = 0; i < s.fused_transforms.size(); ++i) {
        const auto& t = s.fused_transforms[i];
        if (t.scope.empty()) continue;
        by_scope[t.scope].entries.push_back(
            {&s, &t, i + 1 == s.fused_transforms.size()});
      }
    } else if (!s.scope.empty()) {
      by_scope[s.scope].entries.push_back({&s, nullptr, true});
    }
  }

  std::ostringstream os;
  os << "EXPLAIN ANALYZE\n";
  for (const auto& a : program.assignments) {
    os << a.var << " <=\n";
    int next_index = 0;
    Walk(a.plan, a.var, 1, &next_index, by_scope, &os);
    for (int i = 0; i < next_index; ++i) {
      known_scopes.insert(StageScopeName(a.var, i));
    }
  }

  // Stages recorded outside any plan operator (input sources, unshredding,
  // merged-triple unions) plus scopes that did not match the walked trees.
  std::vector<const StageStats*> unattributed;
  for (const auto& s : stats.stages()) {
    if (s.scope.empty() || known_scopes.count(s.scope) == 0) {
      unattributed.push_back(&s);
    }
  }
  if (!unattributed.empty()) {
    os << "unattributed stages:\n";
    for (const auto* s : unattributed) {
      os << "  " << s->op << "  [rows=" << s->rows_out
         << " shuffle=" << FormatBytes(s->shuffle_bytes)
         << " mode=" << runtime::DataMovementName(s->movement)
         << " straggler=" << FormatDouble(s->ImbalanceFactor(), 2) << "x";
      if (s->injected_faults > 0) {
        os << " faults=" << s->injected_faults << " retries=" << s->retries
           << " recovery=" << FormatDouble(s->recovery_sim_seconds, 3) << "s";
      }
      os << " sim=" << FormatDouble(s->sim_seconds, 3) << "s]\n";
    }
  }

  runtime::StragglerSummary sk = stats.straggler();
  os << "job: stages=" << stats.stages().size();
  if (stats.fused_stages() > 0) {
    os << " fused_stages=" << stats.fused_stages()
       << " avoided=" << FormatBytes(stats.intermediate_bytes_avoided());
  }
  os << " shuffle=" << FormatBytes(stats.total_shuffle_bytes())
     << " max_stage_shuffle=" << FormatBytes(stats.max_stage_shuffle_bytes())
     << " peak_partition=" << FormatBytes(stats.peak_partition_bytes())
     << " max_partition_recv=" << FormatBytes(sk.max_partition_recv_bytes)
     << " max_partition_work=" << FormatBytes(sk.max_partition_work_bytes)
     << " straggler=" << FormatDouble(sk.worst_imbalance, 2) << "x"
     << (sk.worst_stage.empty() ? "" : "@" + sk.worst_stage)
     << " heavy_keys=" << sk.heavy_key_count;
  if (stats.hash_build_rows() > 0 || stats.hash_probe_hits() > 0) {
    os << " ht(build=" << stats.hash_build_rows()
       << " hits=" << stats.hash_probe_hits()
       << " chain=" << stats.hash_max_chain() << ")";
  }
  if (stats.hash_table_bytes() > 0) {
    os << " flat(tbl=" << FormatBytes(stats.hash_table_bytes())
       << " resizes=" << stats.hash_resizes()
       << " probe=" << stats.hash_probe_len_max() << ")";
  }
  if (stats.key_encode_bytes() > 0) {
    os << " key_bytes=" << FormatBytes(stats.key_encode_bytes());
  }
  if (stats.columnar_bytes() > 0) {
    os << " col(blocks=" << FormatBytes(stats.columnar_bytes())
       << " rowify=" << stats.column_to_row_conversions() << ")";
  }
  if (stats.spill_bytes_written() > 0) {
    os << " spill(w=" << FormatBytes(stats.spill_bytes_written())
       << " r=" << FormatBytes(stats.spill_bytes_read())
       << " runs=" << stats.spill_runs()
       << " merges=" << stats.spill_merge_passes();
    if (stats.spill_rowify_avoided() > 0) {
      os << " rowify_avoided=" << stats.spill_rowify_avoided();
    }
    os << ")";
  }
  if (stats.injected_faults() > 0) {
    os << " injected_faults=" << stats.injected_faults()
       << " retries=" << stats.retries()
       << " recovery=" << FormatDouble(stats.recovery_sim_seconds(), 3) << "s";
  }
  os << " sim=" << FormatDouble(stats.sim_seconds(), 3) << "s\n";
  return os.str();
}

}  // namespace obs
}  // namespace trance
