#include "obs/explain.h"

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "obs/histogram.h"
#include "plan/printer.h"
#include "util/strings.h"

namespace trance {
namespace obs {

namespace {

using runtime::StageStats;

/// Stats of one plan operator, aggregated over the stages it recorded (a
/// node may record several: e.g. a skew-aware join records split + light +
/// heavy stages).
struct NodeStats {
  std::vector<const StageStats*> stages;

  bool empty() const { return stages.empty(); }
  uint64_t rows_out() const {
    return stages.empty() ? 0 : stages.back()->rows_out;
  }
  uint64_t shuffle_bytes() const {
    uint64_t s = 0;
    for (const auto* st : stages) s += st->shuffle_bytes;
    return s;
  }
  double sim_seconds() const {
    double s = 0;
    for (const auto* st : stages) s += st->sim_seconds;
    return s;
  }
  double straggler() const {
    double worst = 1.0;
    for (const auto* st : stages) {
      double f = st->ImbalanceFactor();
      if (f > worst) worst = f;
    }
    return worst;
  }
  uint64_t heavy_keys() const {
    uint64_t n = 0;
    for (const auto* st : stages) n += st->heavy_key_count;
    return n;
  }
  /// Movement modes used, deduplicated, in first-use order.
  std::string movements() const {
    std::vector<std::string> seen;
    for (const auto* st : stages) {
      std::string m = runtime::DataMovementName(st->movement);
      bool dup = false;
      for (const auto& s : seen) dup = dup || s == m;
      if (!dup) seen.push_back(std::move(m));
    }
    return Join(seen, "+");
  }
  /// Work histogram of the dominant (largest total work) stage.
  const std::vector<uint64_t>* dominant_work() const {
    const StageStats* best = nullptr;
    for (const auto* st : stages) {
      if (st->partition_work_bytes.empty()) continue;
      if (best == nullptr || st->total_work_bytes > best->total_work_bytes) {
        best = st;
      }
    }
    return best == nullptr ? nullptr : &best->partition_work_bytes;
  }
};

std::string StatsSuffix(const NodeStats& ns) {
  if (ns.empty()) return "  [no stages recorded]";
  std::ostringstream os;
  os << "  [rows=" << ns.rows_out()
     << " shuffle=" << FormatBytes(ns.shuffle_bytes())
     << " mode=" << ns.movements()
     << " straggler=" << FormatDouble(ns.straggler(), 2) << "x";
  if (const std::vector<uint64_t>* work = ns.dominant_work()) {
    LoadSummary ls = SummarizeLoads(*work);
    os << " work(p50/p95/max)=" << FormatBytes(ls.p50) << "/"
       << FormatBytes(ls.p95) << "/" << FormatBytes(ls.max);
  }
  if (ns.heavy_keys() > 0) os << " heavy_keys=" << ns.heavy_keys();
  os << " sim=" << FormatDouble(ns.sim_seconds(), 3) << "s]";
  return os.str();
}

void Walk(const plan::PlanPtr& p, const std::string& var, int depth,
          int* next_index,
          const std::map<std::string, NodeStats>& by_scope,
          std::ostringstream* os) {
  int index = (*next_index)++;
  std::string scope = StageScopeName(var, index);
  std::string pad(static_cast<size_t>(depth) * 2, ' ');
  auto it = by_scope.find(scope);
  *os << pad << plan::NodeLabel(p)
      << (it == by_scope.end() ? StatsSuffix(NodeStats{})
                               : StatsSuffix(it->second))
      << "\n";
  for (size_t i = 0; i < p->num_children(); ++i) {
    Walk(p->child(i), var, depth + 1, next_index, by_scope, os);
  }
}

}  // namespace

std::string StageScopeName(const std::string& var, int node_index) {
  return var + "#" + std::to_string(node_index);
}

std::string ExplainAnalyze(const plan::PlanProgram& program,
                           const runtime::JobStats& stats) {
  // Group stages by their recorded scope. A scan node re-executes nothing on
  // its own, so scopes may legitimately be missing from the map.
  std::map<std::string, NodeStats> by_scope;
  std::set<std::string> known_scopes;
  for (const auto& s : stats.stages()) {
    if (!s.scope.empty()) by_scope[s.scope].stages.push_back(&s);
  }

  std::ostringstream os;
  os << "EXPLAIN ANALYZE\n";
  for (const auto& a : program.assignments) {
    os << a.var << " <=\n";
    int next_index = 0;
    Walk(a.plan, a.var, 1, &next_index, by_scope, &os);
    for (int i = 0; i < next_index; ++i) {
      known_scopes.insert(StageScopeName(a.var, i));
    }
  }

  // Stages recorded outside any plan operator (input sources, unshredding,
  // merged-triple unions) plus scopes that did not match the walked trees.
  std::vector<const StageStats*> unattributed;
  for (const auto& s : stats.stages()) {
    if (s.scope.empty() || known_scopes.count(s.scope) == 0) {
      unattributed.push_back(&s);
    }
  }
  if (!unattributed.empty()) {
    os << "unattributed stages:\n";
    for (const auto* s : unattributed) {
      os << "  " << s->op << "  [rows=" << s->rows_out
         << " shuffle=" << FormatBytes(s->shuffle_bytes)
         << " mode=" << runtime::DataMovementName(s->movement)
         << " straggler=" << FormatDouble(s->ImbalanceFactor(), 2) << "x"
         << " sim=" << FormatDouble(s->sim_seconds, 3) << "s]\n";
    }
  }

  runtime::StragglerSummary sk = stats.straggler();
  os << "job: stages=" << stats.stages().size()
     << " shuffle=" << FormatBytes(stats.total_shuffle_bytes())
     << " max_stage_shuffle=" << FormatBytes(stats.max_stage_shuffle_bytes())
     << " peak_partition=" << FormatBytes(stats.peak_partition_bytes())
     << " max_partition_recv=" << FormatBytes(sk.max_partition_recv_bytes)
     << " max_partition_work=" << FormatBytes(sk.max_partition_work_bytes)
     << " straggler=" << FormatDouble(sk.worst_imbalance, 2) << "x"
     << (sk.worst_stage.empty() ? "" : "@" + sk.worst_stage)
     << " heavy_keys=" << sk.heavy_key_count
     << " sim=" << FormatDouble(stats.sim_seconds(), 3) << "s\n";
  return os.str();
}

}  // namespace obs
}  // namespace trance
