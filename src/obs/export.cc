#include "obs/export.h"

#include <fstream>

#include "obs/histogram.h"
#include "util/strings.h"

namespace trance {
namespace obs {

namespace {

void WriteLoadSummary(const char* key, const std::vector<uint64_t>& loads,
                      JsonWriter* w) {
  if (loads.empty()) return;
  LoadSummary s = SummarizeLoads(loads);
  w->Key(key);
  w->BeginObject();
  w->Key("partitions");
  w->Uint(s.partitions);
  w->Key("min");
  w->Uint(s.min);
  w->Key("p50");
  w->Uint(s.p50);
  w->Key("p95");
  w->Uint(s.p95);
  w->Key("max");
  w->Uint(s.max);
  w->Key("total");
  w->Uint(s.total);
  w->Key("mean");
  w->Number(s.mean);
  w->Key("imbalance");
  w->Number(s.imbalance);
  w->EndObject();
}

}  // namespace

void WriteJobStats(const runtime::JobStats& stats, JsonWriter* w) {
  runtime::StragglerSummary sk = stats.straggler();
  w->BeginObject();
  w->Key("stages");
  w->BeginArray();
  for (const auto& s : stats.stages()) {
    w->BeginObject();
    w->Key("op");
    w->String(s.op);
    if (!s.scope.empty()) {
      w->Key("scope");
      w->String(s.scope);
    }
    w->Key("rows_in");
    w->Uint(s.rows_in);
    w->Key("rows_out");
    w->Uint(s.rows_out);
    w->Key("shuffle_bytes");
    w->Uint(s.shuffle_bytes);
    w->Key("max_partition_recv_bytes");
    w->Uint(s.max_partition_recv_bytes);
    w->Key("max_partition_work_bytes");
    w->Uint(s.max_partition_work_bytes);
    w->Key("total_work_bytes");
    w->Uint(s.total_work_bytes);
    w->Key("mem_high_water_bytes");
    w->Uint(s.mem_high_water_bytes);
    w->Key("movement");
    w->String(runtime::DataMovementName(s.movement));
    if (s.heavy_key_count > 0) {
      w->Key("heavy_key_count");
      w->Uint(s.heavy_key_count);
    }
    if (!s.fused_transforms.empty()) {
      w->Key("fused_transforms");
      w->BeginArray();
      for (const auto& t : s.fused_transforms) {
        w->BeginObject();
        w->Key("op");
        w->String(t.op);
        if (!t.scope.empty()) {
          w->Key("scope");
          w->String(t.scope);
        }
        w->Key("rows_out");
        w->Uint(t.rows_out);
        w->EndObject();
      }
      w->EndArray();
    }
    if (s.intermediate_bytes_avoided > 0) {
      w->Key("intermediate_bytes_avoided");
      w->Uint(s.intermediate_bytes_avoided);
    }
    if (s.key_encode_bytes > 0) {
      w->Key("key_encode_bytes");
      w->Uint(s.key_encode_bytes);
    }
    if (s.hash_build_rows > 0 || s.hash_probe_hits > 0) {
      w->Key("hash_build_rows");
      w->Uint(s.hash_build_rows);
      w->Key("hash_probe_hits");
      w->Uint(s.hash_probe_hits);
      w->Key("hash_max_chain");
      w->Uint(s.hash_max_chain);
    }
    if (s.hash_table_bytes > 0 || s.hash_resizes > 0) {
      w->Key("hash_table_bytes");
      w->Uint(s.hash_table_bytes);
      w->Key("hash_resizes");
      w->Uint(s.hash_resizes);
      w->Key("hash_probe_len_max");
      w->Uint(s.hash_probe_len_max);
    }
    if (s.columnar_bytes > 0 || s.column_to_row_conversions > 0) {
      w->Key("columnar_bytes");
      w->Uint(s.columnar_bytes);
      w->Key("column_to_row_conversions");
      w->Uint(s.column_to_row_conversions);
    }
    if (s.spill_bytes_written > 0 || s.spill_runs > 0) {
      w->Key("spill_bytes_written");
      w->Uint(s.spill_bytes_written);
      w->Key("spill_bytes_read");
      w->Uint(s.spill_bytes_read);
      w->Key("spill_runs");
      w->Uint(s.spill_runs);
      w->Key("spill_merge_passes");
      w->Uint(s.spill_merge_passes);
      w->Key("spill_rowify_avoided");
      w->Uint(s.spill_rowify_avoided);
    }
    if (s.injected_faults > 0) {
      w->Key("injected_faults");
      w->Uint(s.injected_faults);
      w->Key("retries");
      w->Uint(s.retries);
      w->Key("recovery_sim_seconds");
      w->Number(s.recovery_sim_seconds);
      w->Key("fault_events");
      w->BeginArray();
      for (const auto& ev : s.fault_events) {
        w->BeginObject();
        w->Key("partition");
        w->Uint(ev.partition);
        w->Key("attempt");
        w->Uint(ev.attempt);
        w->Key("kind");
        w->String(runtime::FaultKindName(ev.kind));
        w->EndObject();
      }
      w->EndArray();
    }
    w->Key("imbalance");
    w->Number(s.ImbalanceFactor());
    w->Key("sim_seconds");
    w->Number(s.sim_seconds);
    w->Key("wall_dur_us");
    w->Number(s.wall_dur_us);
    WriteLoadSummary("work", s.partition_work_bytes, w);
    WriteLoadSummary("recv", s.partition_recv_bytes, w);
    WriteLoadSummary("send", s.partition_send_bytes, w);
    w->EndObject();
  }
  w->EndArray();
  w->Key("totals");
  w->BeginObject();
  w->Key("num_stages");
  w->Uint(stats.stages().size());
  w->Key("fused_stages");
  w->Uint(stats.fused_stages());
  w->Key("intermediate_bytes_avoided");
  w->Uint(stats.intermediate_bytes_avoided());
  w->Key("shuffle_bytes");
  w->Uint(stats.total_shuffle_bytes());
  w->Key("max_stage_shuffle_bytes");
  w->Uint(stats.max_stage_shuffle_bytes());
  w->Key("peak_partition_bytes");
  w->Uint(stats.peak_partition_bytes());
  w->Key("max_partition_recv_bytes");
  w->Uint(sk.max_partition_recv_bytes);
  w->Key("max_partition_work_bytes");
  w->Uint(sk.max_partition_work_bytes);
  w->Key("worst_imbalance");
  w->Number(sk.worst_imbalance);
  w->Key("worst_stage");
  w->String(sk.worst_stage);
  w->Key("heavy_key_count");
  w->Uint(sk.heavy_key_count);
  w->Key("key_encode_bytes");
  w->Uint(stats.key_encode_bytes());
  w->Key("hash_build_rows");
  w->Uint(stats.hash_build_rows());
  w->Key("hash_probe_hits");
  w->Uint(stats.hash_probe_hits());
  w->Key("hash_max_chain");
  w->Uint(stats.hash_max_chain());
  w->Key("hash_table_bytes");
  w->Uint(stats.hash_table_bytes());
  w->Key("hash_resizes");
  w->Uint(stats.hash_resizes());
  w->Key("hash_probe_len_max");
  w->Uint(stats.hash_probe_len_max());
  w->Key("columnar_bytes");
  w->Uint(stats.columnar_bytes());
  w->Key("column_to_row_conversions");
  w->Uint(stats.column_to_row_conversions());
  w->Key("spill_bytes_written");
  w->Uint(stats.spill_bytes_written());
  w->Key("spill_bytes_read");
  w->Uint(stats.spill_bytes_read());
  w->Key("spill_runs");
  w->Uint(stats.spill_runs());
  w->Key("spill_merge_passes");
  w->Uint(stats.spill_merge_passes());
  w->Key("spill_rowify_avoided");
  w->Uint(stats.spill_rowify_avoided());
  w->Key("injected_faults");
  w->Uint(stats.injected_faults());
  w->Key("retries");
  w->Uint(stats.retries());
  w->Key("recovery_sim_seconds");
  w->Number(stats.recovery_sim_seconds());
  w->Key("sim_seconds");
  w->Number(stats.sim_seconds());
  w->EndObject();
  w->EndObject();
}

std::string JobStatsToJson(const runtime::JobStats& stats) {
  JsonWriter w;
  WriteJobStats(stats, &w);
  return w.str();
}

void AppendJobStagesToTrace(const runtime::JobStats& stats, Tracer* tracer,
                            const std::string& prefix, int tid) {
  if (tracer == nullptr || !tracer->enabled()) return;
  for (const auto& s : stats.stages()) {
    TraceEvent ev;
    ev.name = prefix.empty() ? s.op : prefix + "/" + s.op;
    ev.cat = "stage";
    ev.ts_us = s.wall_start_us;
    ev.dur_us = s.wall_dur_us;
    ev.tid = tid;
    ev.args.emplace_back("rows_in", std::to_string(s.rows_in));
    ev.args.emplace_back("rows_out", std::to_string(s.rows_out));
    ev.args.emplace_back("shuffle", FormatBytes(s.shuffle_bytes));
    ev.args.emplace_back("movement",
                         runtime::DataMovementName(s.movement));
    ev.args.emplace_back("straggler",
                         FormatDouble(s.ImbalanceFactor(), 2) + "x");
    ev.args.emplace_back("sim_seconds", FormatDouble(s.sim_seconds, 4));
    if (!s.scope.empty()) ev.args.emplace_back("scope", s.scope);
    tracer->AddCompleteEvent(std::move(ev));
  }
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::Invalid("cannot open " + path + " for writing");
  f << content;
  f.close();
  if (!f) return Status::Invalid("short write to " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace trance
