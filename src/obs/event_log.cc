#include "obs/event_log.h"

#include <cstdlib>

#include "obs/json.h"

namespace trance {
namespace obs {

// ------------------------------------------------------------------ Event

Event::Event(EventLog* log, const std::string& type) : log_(log) {
  line_ = "{\"type\":\"" + JsonEscape(type) + "\"";
  any_ = true;
}

namespace {
std::string FieldKey(const std::string& key) {
  return ",\"" + JsonEscape(key) + "\":";
}

std::string FormatF64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}
}  // namespace

Event& Event::Str(const std::string& key, const std::string& value) {
  line_ += FieldKey(key) + "\"" + JsonEscape(value) + "\"";
  return *this;
}

Event& Event::U64(const std::string& key, uint64_t value) {
  line_ += FieldKey(key) + std::to_string(value);
  return *this;
}

Event& Event::I64(const std::string& key, int64_t value) {
  line_ += FieldKey(key) + std::to_string(value);
  return *this;
}

Event& Event::F64(const std::string& key, double value) {
  line_ += FieldKey(key) + FormatF64(value);
  return *this;
}

Event& Event::Bool(const std::string& key, bool value) {
  line_ += FieldKey(key) + (value ? "true" : "false");
  return *this;
}

Event& Event::Wall(const std::string& key, double value) {
  const std::string k =
      key.rfind("wall_", 0) == 0 ? key : "wall_" + key;
  return F64(k, value);
}

void Event::Emit() {
  if (!log_ || !log_->enabled()) return;
  line_ += '}';
  log_->Append(std::move(line_));
  line_.clear();
}

// --------------------------------------------------------------- EventLog

EventLog::EventLog(size_t capacity) : capacity_(capacity) {
  ReopenFileSinkFromEnv();
}

EventLog::~EventLog() {
  if (file_) std::fclose(file_);
}

void EventLog::ReopenFileSinkFromEnv() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const char* path = std::getenv("TRANCE_EVENT_LOG");
  if (path && *path) {
    file_ = std::fopen(path, "a");
  }
}

void EventLog::Append(std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_) {
    std::fputs(line.c_str(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  }
  if (capacity_ == 0) return;
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_.push_back(std::move(line));
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::vector<std::string> EventLog::Lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::string>(ring_.begin(), ring_.end());
}

std::string EventLog::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::string& line : ring_) {
    out += line;
    out += '\n';
  }
  return out;
}

EventLog& GlobalEventLog() {
  static EventLog* log = new EventLog();
  return *log;
}

}  // namespace obs
}  // namespace trance
