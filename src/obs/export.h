// JSON exporters: machine-readable job metrics (per-stage partition-load
// percentile summaries + job aggregates) and conversion of recorded runtime
// stages into Chrome trace events on the shared process timeline.
#ifndef TRANCE_OBS_EXPORT_H_
#define TRANCE_OBS_EXPORT_H_

#include <string>

#include "obs/json.h"
#include "obs/trace.h"
#include "runtime/stats.h"
#include "util/status.h"

namespace trance {
namespace obs {

/// Writes one JobStats as a JSON object into an open writer (callable in a
/// larger document, e.g. the per-run array of a benchmark report).
void WriteJobStats(const runtime::JobStats& stats, JsonWriter* w);

/// Standalone JSON document for one job.
std::string JobStatsToJson(const runtime::JobStats& stats);

/// Appends every recorded stage as a complete trace event on track `tid`
/// (wall timestamps stamped by Cluster::RecordStage), with rows/shuffle/
/// straggler metadata in args. `prefix` namespaces stage names (e.g. the
/// benchmark run name). No-op when the tracer is disabled.
void AppendJobStagesToTrace(const runtime::JobStats& stats, Tracer* tracer,
                            const std::string& prefix = "", int tid = 1);

/// Writes `content` to `path` (overwrite).
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace obs
}  // namespace trance

#endif  // TRANCE_OBS_EXPORT_H_
