// Minimal JSON support for the observability layer: a streaming writer used
// by the trace / metrics exporters, and a small recursive-descent parser used
// to validate round-trips in tests (no external dependencies).
#ifndef TRANCE_OBS_JSON_H_
#define TRANCE_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace trance {
namespace obs {

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string JsonEscape(const std::string& s);

/// Streaming JSON writer with automatic comma/nesting management. Values
/// written at the top level or inside arrays separate themselves; inside
/// objects, call Key() before each value.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(const std::string& k);
  void String(const std::string& v);
  void Number(double v);
  void Int(int64_t v);
  void Uint(uint64_t v);
  void Bool(bool v);
  void Null();

  const std::string& str() const { return out_; }

 private:
  void Separate();
  void Raw(const std::string& s);

  std::string out_;
  /// Per open container: number of values already written (objects count
  /// key-value pairs via Key()).
  std::vector<int> counts_{0};
  bool after_key_ = false;
};

/// Parsed JSON value (tests / validation only; not performance-sensitive).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses a complete JSON document (fails on trailing garbage).
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace obs
}  // namespace trance

#endif  // TRANCE_OBS_JSON_H_
