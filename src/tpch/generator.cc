#include "tpch/generator.h"

#include <algorithm>

#include "util/random.h"

namespace trance {
namespace tpch {

using nrc::Type;
using runtime::Field;
using runtime::Row;
using runtime::Schema;

namespace {

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP",
                            "TRUCK"};
const char* kContainers[] = {"JUMBO BAG", "LG BOX", "MED CASE", "SM PKG",
                             "WRAP CAN"};
const char* kTypes[] = {"ECONOMY ANODIZED", "LARGE BRUSHED",
                        "MEDIUM BURNISHED", "PROMO PLATED", "SMALL POLISHED"};

template <size_t N>
std::string Pick(Rng* rng, const char* (&arr)[N]) {
  return arr[rng->Uniform(N)];
}

std::string Comment(Rng* rng) { return rng->NextString(12); }

}  // namespace

runtime::Schema RegionSchema() {
  return Schema({{"r_regionkey", Type::Int()},
                 {"r_name", Type::String()},
                 {"r_comment", Type::String()}});
}

runtime::Schema NationSchema() {
  return Schema({{"n_nationkey", Type::Int()},
                 {"n_name", Type::String()},
                 {"n_regionkey", Type::Int()},
                 {"n_comment", Type::String()}});
}

runtime::Schema CustomerSchema() {
  return Schema({{"c_custkey", Type::Int()},
                 {"c_name", Type::String()},
                 {"c_address", Type::String()},
                 {"c_nationkey", Type::Int()},
                 {"c_phone", Type::String()},
                 {"c_acctbal", Type::Real()},
                 {"c_mktsegment", Type::String()},
                 {"c_comment", Type::String()}});
}

runtime::Schema OrdersSchema() {
  return Schema({{"o_orderkey", Type::Int()},
                 {"o_custkey", Type::Int()},
                 {"o_orderstatus", Type::String()},
                 {"o_totalprice", Type::Real()},
                 {"o_orderdate", Type::Date()},
                 {"o_orderpriority", Type::String()},
                 {"o_clerk", Type::String()},
                 {"o_shippriority", Type::Int()},
                 {"o_comment", Type::String()}});
}

runtime::Schema LineitemSchema() {
  return Schema({{"l_orderkey", Type::Int()},
                 {"l_partkey", Type::Int()},
                 {"l_suppkey", Type::Int()},
                 {"l_linenumber", Type::Int()},
                 {"l_quantity", Type::Real()},
                 {"l_extendedprice", Type::Real()},
                 {"l_discount", Type::Real()},
                 {"l_tax", Type::Real()},
                 {"l_returnflag", Type::String()},
                 {"l_linestatus", Type::String()},
                 {"l_shipdate", Type::Date()},
                 {"l_commitdate", Type::Date()},
                 {"l_receiptdate", Type::Date()},
                 {"l_shipinstruct", Type::String()},
                 {"l_shipmode", Type::String()},
                 {"l_comment", Type::String()}});
}

runtime::Schema PartSchema() {
  return Schema({{"p_partkey", Type::Int()},
                 {"p_name", Type::String()},
                 {"p_mfgr", Type::String()},
                 {"p_brand", Type::String()},
                 {"p_type", Type::String()},
                 {"p_size", Type::Int()},
                 {"p_container", Type::String()},
                 {"p_retailprice", Type::Real()},
                 {"p_comment", Type::String()}});
}

runtime::Schema SupplierSchema() {
  return Schema({{"s_suppkey", Type::Int()},
                 {"s_name", Type::String()},
                 {"s_address", Type::String()},
                 {"s_nationkey", Type::Int()},
                 {"s_phone", Type::String()},
                 {"s_acctbal", Type::Real()},
                 {"s_comment", Type::String()}});
}

runtime::Schema PartsuppSchema() {
  return Schema({{"ps_partkey", Type::Int()},
                 {"ps_suppkey", Type::Int()},
                 {"ps_availqty", Type::Int()},
                 {"ps_supplycost", Type::Real()},
                 {"ps_comment", Type::String()}});
}

TpchData Generate(const TpchConfig& config) {
  Rng rng(config.seed);
  TpchData d;
  const double sf = config.scale;
  const int64_t n_cust = std::max<int64_t>(4, static_cast<int64_t>(150000 * sf));
  const int64_t n_orders =
      std::max<int64_t>(8, static_cast<int64_t>(1500000 * sf));
  const int64_t n_lineitem =
      std::max<int64_t>(16, static_cast<int64_t>(6000000 * sf));
  const int64_t n_part = std::max<int64_t>(4, static_cast<int64_t>(200000 * sf));
  const int64_t n_supp = std::max<int64_t>(2, static_cast<int64_t>(10000 * sf));
  const int64_t n_partsupp = n_part * 4;

  d.region.schema = RegionSchema();
  for (int64_t i = 0; i < 5; ++i) {
    d.region.rows.push_back(Row({Field::Int(i), Field::Str(kRegions[i]),
                                 Field::Str(Comment(&rng))}));
  }

  d.nation.schema = NationSchema();
  for (int64_t i = 0; i < 25; ++i) {
    d.nation.rows.push_back(Row({Field::Int(i),
                                 Field::Str("NATION_" + std::to_string(i)),
                                 Field::Int(i % 5),
                                 Field::Str(Comment(&rng))}));
  }

  d.customer.schema = CustomerSchema();
  for (int64_t i = 0; i < n_cust; ++i) {
    d.customer.rows.push_back(Row({
        Field::Int(i),
        Field::Str("Customer#" + std::to_string(i)),
        Field::Str(rng.NextString(10)),
        Field::Int(rng.UniformRange(0, 24)),
        Field::Str(rng.NextString(10)),
        Field::Real(rng.UniformReal(-999.99, 9999.99)),
        Field::Str(Pick(&rng, kSegments)),
        Field::Str(Comment(&rng)),
    }));
  }

  // Skewed foreign keys: rank r of the Zipf sampler maps to key r, so key 0
  // is the heaviest ("duplicating values", as the skewed dbgen does).
  ZipfSampler cust_zipf(static_cast<size_t>(n_cust), config.skew);
  d.orders.schema = OrdersSchema();
  for (int64_t i = 0; i < n_orders; ++i) {
    int64_t custkey = static_cast<int64_t>(cust_zipf.Sample(&rng));
    d.orders.rows.push_back(Row({
        Field::Int(i),
        Field::Int(custkey),
        Field::Str(rng.NextBool(0.5) ? "O" : "F"),
        Field::Real(rng.UniformReal(1000.0, 450000.0)),
        Field::Int(rng.UniformRange(8036, 10590)),  // 1992..1998 day numbers
        Field::Str(Pick(&rng, kPriorities)),
        Field::Str("Clerk#" + std::to_string(rng.Uniform(1000))),
        Field::Int(0),
        Field::Str(Comment(&rng)),
    }));
  }

  // Orders per customer and part usage are skewed ("very few customers can
  // have very many orders"); lineitems per order stay uniform, as in the
  // skewed dbgen which duplicates join values.
  ZipfSampler part_zipf(static_cast<size_t>(n_part), config.skew);
  d.lineitem.schema = LineitemSchema();
  for (int64_t i = 0; i < n_lineitem; ++i) {
    int64_t orderkey = rng.UniformRange(0, n_orders - 1);
    int64_t partkey = static_cast<int64_t>(part_zipf.Sample(&rng));
    int64_t shipdate = rng.UniformRange(8036, 10590);
    d.lineitem.rows.push_back(Row({
        Field::Int(orderkey),
        Field::Int(partkey),
        Field::Int(rng.UniformRange(0, n_supp - 1)),
        Field::Int(i % 7),
        Field::Real(static_cast<double>(rng.UniformRange(1, 50))),
        Field::Real(rng.UniformReal(900.0, 105000.0)),
        Field::Real(rng.UniformRange(0, 10) / 100.0),
        Field::Real(rng.UniformRange(0, 8) / 100.0),
        Field::Str(rng.NextBool(0.25) ? "R" : (rng.NextBool(0.5) ? "A" : "N")),
        Field::Str(rng.NextBool(0.5) ? "O" : "F"),
        Field::Int(shipdate),
        Field::Int(shipdate + rng.UniformRange(-30, 30)),
        Field::Int(shipdate + rng.UniformRange(1, 30)),
        Field::Str(rng.NextString(8)),
        Field::Str(Pick(&rng, kShipModes)),
        Field::Str(Comment(&rng)),
    }));
  }

  d.part.schema = PartSchema();
  for (int64_t i = 0; i < n_part; ++i) {
    d.part.rows.push_back(Row({
        Field::Int(i),
        Field::Str("part_" + rng.NextString(6) + "_" + std::to_string(i)),
        Field::Str("Manufacturer#" + std::to_string(rng.Uniform(5) + 1)),
        Field::Str("Brand#" + std::to_string(rng.Uniform(25) + 11)),
        Field::Str(Pick(&rng, kTypes)),
        Field::Int(rng.UniformRange(1, 50)),
        Field::Str(Pick(&rng, kContainers)),
        Field::Real(900.0 + (static_cast<double>(i % 1000) / 10.0)),
        Field::Str(Comment(&rng)),
    }));
  }

  d.supplier.schema = SupplierSchema();
  for (int64_t i = 0; i < n_supp; ++i) {
    d.supplier.rows.push_back(Row({
        Field::Int(i),
        Field::Str("Supplier#" + std::to_string(i)),
        Field::Str(rng.NextString(10)),
        Field::Int(rng.UniformRange(0, 24)),
        Field::Str(rng.NextString(10)),
        Field::Real(rng.UniformReal(-999.99, 9999.99)),
        Field::Str(Comment(&rng)),
    }));
  }

  d.partsupp.schema = PartsuppSchema();
  for (int64_t i = 0; i < n_partsupp; ++i) {
    d.partsupp.rows.push_back(Row({
        Field::Int(i % n_part),
        Field::Int(rng.UniformRange(0, n_supp - 1)),
        Field::Int(rng.UniformRange(1, 9999)),
        Field::Real(rng.UniformReal(1.0, 1000.0)),
        Field::Str(Comment(&rng)),
    }));
  }

  return d;
}

}  // namespace tpch
}  // namespace trance
