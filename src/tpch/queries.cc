#include "tpch/queries.h"

#include <vector>

#include "nrc/builder.h"
#include "tpch/generator.h"

namespace trance {
namespace tpch {

using nrc::Expr;
using nrc::ExprPtr;
using nrc::Type;
using nrc::TypePtr;

namespace {

struct LevelSpec {
  const char* rel;       // source relation
  const char* var;       // comprehension variable
  const char* pk;        // key the child level joins on (this side)
  const char* child_fk;  // foreign key attribute in the child relation
  const char* bag_attr;  // name of the nested attribute holding children
  std::vector<const char*> narrow_attrs;
  runtime::Schema (*schema)();
};

/// Levels from top (Region) to bottom (Lineitem). A depth-L query uses the
/// last L+1 entries.
const std::vector<LevelSpec>& Levels() {
  static const std::vector<LevelSpec> kLevels = {
      {"Region", "r", "r_regionkey", "n_regionkey", "nations",
       {"r_name"}, &RegionSchema},
      {"Nation", "n", "n_nationkey", "c_nationkey", "customers",
       {"n_name"}, &NationSchema},
      {"Customer", "c", "c_custkey", "o_custkey", "orders",
       {"c_name"}, &CustomerSchema},
      {"Orders", "o", "o_orderkey", "l_orderkey", "lineitems",
       {"o_orderdate"}, &OrdersSchema},
      {"Lineitem", "l", nullptr, nullptr, nullptr,
       {"l_partkey", "l_quantity"}, &LineitemSchema},
  };
  return kLevels;
}

std::vector<std::string> LevelAttrs(const LevelSpec& spec, Width width) {
  std::vector<std::string> attrs;
  if (width == Width::kWide) {
    runtime::Schema s = spec.schema();  // keep alive across the loop
    for (const auto& c : s.columns()) attrs.push_back(c.name);
  } else {
    for (const char* a : spec.narrow_attrs) attrs.push_back(a);
  }
  return attrs;
}

TypePtr AttrType(const LevelSpec& spec, const std::string& attr) {
  runtime::Schema s = spec.schema();
  int i = s.IndexOf(attr);
  TRANCE_CHECK(i >= 0, "unknown TPC-H attribute " + attr);
  return s.col(static_cast<size_t>(i)).type;
}

Status CheckDepth(int depth) {
  if (depth < 0 || depth > kMaxDepth) {
    return Status::Invalid("nesting depth must be in [0, 4]");
  }
  return Status::OK();
}

/// Builds the flat-to-nested comprehension for levels[i..].
ExprPtr BuildFlatToNested(const std::vector<LevelSpec>& levels, size_t i,
                          Width width) {
  const LevelSpec& spec = levels[i];
  std::vector<nrc::NamedExpr> fields;
  for (const auto& a : LevelAttrs(spec, width)) {
    fields.push_back({a, Expr::Proj(Expr::Var(spec.var), a)});
  }
  ExprPtr head;
  if (i + 1 < levels.size()) {
    const LevelSpec& child = levels[i + 1];
    ExprPtr sub = BuildFlatToNested(levels, i + 1, width);
    // The child comprehension gains the correlation filter to this level.
    // BuildFlatToNested returns `for v in Rel union BODY`; inject the filter.
    ExprPtr cond = Expr::Cmp(nrc::CmpOpKind::kEq,
                             Expr::Proj(Expr::Var(child.var), spec.child_fk),
                             Expr::Proj(Expr::Var(spec.var), spec.pk));
    ExprPtr body = Expr::IfThen(cond, sub->child(1));
    ExprPtr correlated = Expr::ForUnion(child.var, sub->child(0), body);
    fields.push_back({spec.bag_attr, correlated});
  }
  head = Expr::Singleton(Expr::Tuple(std::move(fields)));
  return Expr::ForUnion(spec.var, Expr::Var(spec.rel), head);
}

StatusOr<TypePtr> OutputElemType(const std::vector<LevelSpec>& levels,
                                 size_t i, Width width) {
  const LevelSpec& spec = levels[i];
  std::vector<nrc::Field> fields;
  for (const auto& a : LevelAttrs(spec, width)) {
    fields.push_back({a, AttrType(spec, a)});
  }
  if (i + 1 < levels.size()) {
    TRANCE_ASSIGN_OR_RETURN(TypePtr child,
                            OutputElemType(levels, i + 1, width));
    fields.push_back({spec.bag_attr, Type::Bag(child)});
  }
  return Type::Tuple(std::move(fields));
}

std::vector<LevelSpec> DepthLevels(int depth) {
  const auto& all = Levels();
  return std::vector<LevelSpec>(all.end() - (depth + 1), all.end());
}

/// The leaf aggregation of the nested-to-* queries: join Part, sum
/// qty*price per part name. `leaf_bag` is the expression producing the leaf
/// bag, `leaf_var` the variable to bind its elements to. Extra head fields
/// (for nested-to-flat's top-level key) are prepended.
ExprPtr LeafAggregation(ExprPtr leaf_bag, const std::string& leaf_var,
                        std::vector<nrc::NamedExpr> extra_fields,
                        std::vector<std::string> extra_keys) {
  std::vector<nrc::NamedExpr> head = std::move(extra_fields);
  head.push_back({"pname", Expr::Proj(Expr::Var("p"), "p_name")});
  head.push_back(
      {"total",
       Expr::PrimOp(nrc::PrimOpKind::kMul,
                    Expr::Proj(Expr::Var(leaf_var), "l_quantity"),
                    Expr::Proj(Expr::Var("p"), "p_retailprice"))});
  ExprPtr comp = Expr::ForUnion(
      leaf_var, std::move(leaf_bag),
      Expr::ForUnion(
          "p", Expr::Var("Part"),
          Expr::IfThen(
              Expr::Cmp(nrc::CmpOpKind::kEq,
                        Expr::Proj(Expr::Var(leaf_var), "l_partkey"),
                        Expr::Proj(Expr::Var("p"), "p_partkey")),
              Expr::Singleton(Expr::Tuple(std::move(head))))));
  std::vector<std::string> keys = std::move(extra_keys);
  keys.push_back("pname");
  return Expr::SumBy(std::move(keys), {"total"}, comp);
}

/// Rebuilds the nested structure over input variable chain, applying the
/// leaf aggregation at the bottom (nested-to-nested).
StatusOr<ExprPtr> BuildNestedToNested(const TypePtr& elem,
                                      const std::string& var, int level) {
  std::vector<nrc::NamedExpr> fields;
  for (const auto& f : elem->fields()) {
    if (f.type->is_bag()) {
      std::string child_var = "x" + std::to_string(level + 1);
      const TypePtr& child_elem = f.type->element();
      bool leaf = true;
      for (const auto& cf : child_elem->fields()) {
        if (cf.type->is_bag()) leaf = false;
      }
      ExprPtr bag_expr;
      if (leaf) {
        bag_expr = LeafAggregation(Expr::Proj(Expr::Var(var), f.name),
                                   child_var, {}, {});
      } else {
        TRANCE_ASSIGN_OR_RETURN(ExprPtr sub,
                                BuildNestedToNested(child_elem, child_var,
                                                    level + 1));
        bag_expr = Expr::ForUnion(
            child_var, Expr::Proj(Expr::Var(var), f.name), sub);
      }
      fields.push_back({f.name, bag_expr});
    } else {
      fields.push_back({f.name, Expr::Proj(Expr::Var(var), f.name)});
    }
  }
  return Expr::Singleton(Expr::Tuple(std::move(fields)));
}

}  // namespace

StatusOr<nrc::Program> FlatToNested(int depth, Width width) {
  TRANCE_RETURN_NOT_OK(CheckDepth(depth));
  std::vector<LevelSpec> levels = DepthLevels(depth);
  nrc::Program p;
  for (const auto& l : levels) {
    p.inputs.push_back({l.rel, l.schema().BagType()});
  }
  p.assignments.push_back({"Q", BuildFlatToNested(levels, 0, width)});
  return p;
}

StatusOr<nrc::TypePtr> FlatToNestedOutputType(int depth, Width width) {
  TRANCE_RETURN_NOT_OK(CheckDepth(depth));
  std::vector<LevelSpec> levels = DepthLevels(depth);
  TRANCE_ASSIGN_OR_RETURN(TypePtr elem, OutputElemType(levels, 0, width));
  return Type::Bag(elem);
}

StatusOr<nrc::Program> NestedToNested(int depth, Width width) {
  TRANCE_RETURN_NOT_OK(CheckDepth(depth));
  TRANCE_ASSIGN_OR_RETURN(TypePtr input, FlatToNestedOutputType(depth, width));
  nrc::Program p;
  p.inputs.push_back({"COP", input});
  p.inputs.push_back({"Part", PartSchema().BagType()});
  if (depth == 0) {
    // Flat input: aggregate directly.
    p.assignments.push_back(
        {"Q", LeafAggregation(Expr::Var("COP"), "x0", {}, {})});
    return p;
  }
  TRANCE_ASSIGN_OR_RETURN(ExprPtr body,
                          BuildNestedToNested(input->element(), "x0", 0));
  p.assignments.push_back(
      {"Q", Expr::ForUnion("x0", Expr::Var("COP"), body)});
  return p;
}

StatusOr<nrc::Program> NestedToFlat(int depth, Width width) {
  TRANCE_RETURN_NOT_OK(CheckDepth(depth));
  TRANCE_ASSIGN_OR_RETURN(TypePtr input, FlatToNestedOutputType(depth, width));
  std::vector<LevelSpec> levels = DepthLevels(depth);
  nrc::Program p;
  p.inputs.push_back({"COP", input});
  p.inputs.push_back({"Part", PartSchema().BagType()});

  // Navigate every level: for x0 in COP union for x1 in x0.<bag> union ...
  std::string top_key =
      depth == 0 ? "l_partkey" : std::string(levels[0].narrow_attrs[0]);
  std::string leaf_var = "x" + std::to_string(depth);
  // Build the navigation bottom-up inside LeafAggregation's comprehension:
  // the leaf bag expression is x_{depth-1}.<bag>; generators for upper
  // levels wrap around the sumBy's comprehension, so instead build the
  // navigation as nested for-loops with the aggregation at the very top.
  std::vector<nrc::NamedExpr> extra;
  extra.push_back({"name", depth == 0
                               ? Expr::Proj(Expr::Var(leaf_var), "l_partkey")
                               : Expr::Proj(Expr::Var("x0"), top_key)});
  ExprPtr inner = LeafAggregation(
      depth == 0 ? Expr::Var("COP")
                 : Expr::Proj(Expr::Var("x" + std::to_string(depth - 1)),
                              levels[depth - 1].bag_attr),
      leaf_var, std::move(extra), {"name"});
  // LeafAggregation returns sumBy(comp); we need the navigation loops wrapped
  // around comp, inside the sumBy.
  TRANCE_CHECK(inner->kind() == Expr::Kind::kSumBy, "expected sumBy");
  ExprPtr comp = inner->child(0);
  for (int i = depth - 1; i >= 0; --i) {
    ExprPtr domain = i == 0 ? Expr::Var("COP")
                            : Expr::Proj(Expr::Var("x" + std::to_string(i - 1)),
                                         levels[i - 1].bag_attr);
    comp = Expr::ForUnion("x" + std::to_string(i), domain, comp);
  }
  p.assignments.push_back(
      {"Q", Expr::SumBy(inner->keys(), inner->values(), comp)});
  return p;
}

}  // namespace tpch
}  // namespace trance
