// TPC-H data generator with a Zipfian skew knob (the paper's skewed TPC-H
// generator [43]): seeded, in-memory, producing runtime rows for all eight
// tables. Skew factor 0 draws foreign keys uniformly (the standard
// generator); higher factors concentrate order ownership and part usage on
// few heavy keys ("skew factor 4 gives the greatest skew").
#ifndef TRANCE_TPCH_GENERATOR_H_
#define TRANCE_TPCH_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/dataset.h"
#include "runtime/schema.h"
#include "util/status.h"

namespace trance {
namespace tpch {

struct TpchConfig {
  /// Fraction of the SF-1 row counts (0.001 => 6k lineitems).
  double scale = 0.002;
  /// Zipf exponent applied to orders.custkey and lineitem.partkey
  /// (0 = uniform); lineitems per order stay uniform.
  double skew = 0.0;
  uint64_t seed = 42;
};

/// One generated table.
struct Table {
  runtime::Schema schema;
  std::vector<runtime::Row> rows;
};

/// The eight TPC-H tables.
struct TpchData {
  Table region;
  Table nation;
  Table customer;
  Table orders;
  Table lineitem;
  Table part;
  Table supplier;
  Table partsupp;
};

/// Generates all tables for `config`.
TpchData Generate(const TpchConfig& config);

/// Schemas (independent of data; used to declare program input types).
runtime::Schema RegionSchema();
runtime::Schema NationSchema();
runtime::Schema CustomerSchema();
runtime::Schema OrdersSchema();
runtime::Schema LineitemSchema();
runtime::Schema PartSchema();
runtime::Schema SupplierSchema();
runtime::Schema PartsuppSchema();

}  // namespace tpch
}  // namespace trance

#endif  // TRANCE_TPCH_GENERATOR_H_
