// The TPC-H micro-benchmark query suite (Section 6): flat-to-nested,
// nested-to-nested, and nested-to-flat NRC programs with 0-4 levels of
// nesting, in narrow and wide variants.
//
// Queries "start with the Lineitem table at level 0, then group across
// Orders, Customer, Nation, then Region as the level increases"; the narrow
// variant keeps a single attribute per upper level (o_orderdate, c_name,
// n_name, r_name) and (l_partkey, l_quantity) at the leaf, while the wide
// variant keeps every attribute. Nested-to-nested joins Part at the lowest
// level and aggregates qty*price per part name (Example 1); nested-to-flat
// applies the aggregation at top level keyed by a top-level attribute.
#ifndef TRANCE_TPCH_QUERIES_H_
#define TRANCE_TPCH_QUERIES_H_

#include "nrc/expr.h"
#include "util/status.h"

namespace trance {
namespace tpch {

enum class Width { kNarrow, kWide };

/// Maximum nesting depth of the suite (Region level).
inline constexpr int kMaxDepth = 4;

/// Flat-to-nested query of the given depth. Inputs: the depth+1 relations
/// (Lineitem .. Region). Depth 0 degenerates to a lineitem projection.
StatusOr<nrc::Program> FlatToNested(int depth, Width width);

/// Output type of FlatToNested (the nested input type of the downstream
/// queries).
StatusOr<nrc::TypePtr> FlatToNestedOutputType(int depth, Width width);

/// Nested-to-nested query over input "COP" of the flat-to-nested output
/// type: joins Part at the lowest level, sumBy total per part name.
StatusOr<nrc::Program> NestedToNested(int depth, Width width);

/// Nested-to-flat query: navigates all levels and aggregates at top level.
StatusOr<nrc::Program> NestedToFlat(int depth, Width width);

}  // namespace tpch
}  // namespace trance

#endif  // TRANCE_TPCH_QUERIES_H_
