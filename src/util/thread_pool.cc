#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace trance {
namespace util {

ThreadPool::ThreadPool(int num_workers) {
  EnsureWorkers(num_workers);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(0);  // leaked: outlives all users
  return *pool;
}

void ThreadPool::EnsureWorkers(int n) {
  n = std::min(n, kMaxWorkers);
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelFor. Kept on the heap (shared_ptr) so a helper
/// task that is dequeued only after the loop already finished can still run
/// its (empty) claim loop safely.
struct ForState {
  std::function<void(size_t)> fn;
  size_t n = 0;
  size_t chunk = 1;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;  // indexes claimed-and-retired; loop is over at done == n
  std::exception_ptr error;

  /// Claims chunks until the cursor is exhausted. Every claimed index is
  /// counted retired even when fn threw earlier (claiming continues so the
  /// done-count always reaches n — the caller's own claim loop drains
  /// whatever the helpers never picked up).
  void Run() {
    for (;;) {
      size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      size_t end = std::min(n, begin + chunk);
      if (!failed.load(std::memory_order_relaxed)) {
        for (size_t i = begin; i < end; ++i) {
          try {
            fn(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(mu);
            if (!error) error = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
            break;
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      done += end - begin;
      if (done == n) cv.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, int parallelism,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  int helpers =
      std::min({parallelism - 1, kMaxWorkers, static_cast<int>(n) - 1});
  if (helpers <= 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  EnsureWorkers(helpers);

  auto state = std::make_shared<ForState>();
  state->fn = fn;
  state->n = n;
  // ~4 chunks per participant: small enough for dynamic balance, large
  // enough that the atomic cursor is not contended per index.
  state->chunk =
      std::max<size_t>(1, n / (static_cast<size_t>(helpers + 1) * 4));
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < helpers; ++i) {
      tasks_.emplace_back([state] { state->Run(); });
    }
  }
  cv_.notify_all();
  state->Run();  // the caller participates — no idle wait, no deadlock
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done == state->n; });
    if (state->error) std::rethrow_exception(state->error);
  }
}

void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (num_threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool::Shared().ParallelFor(n, num_threads, fn);
}

int DefaultNumThreads() {
  if (const char* env = std::getenv("TRANCE_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace util
}  // namespace trance
