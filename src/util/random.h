// Seeded pseudo-random generation: uniform helpers and a Zipf sampler used
// by the skewed TPC-H and biomedical data generators.
#ifndef TRANCE_UTIL_RANDOM_H_
#define TRANCE_UTIL_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace trance {

/// Deterministic 64-bit PRNG (splitmix64 seeded xorshift). All generators in
/// the repo take an explicit seed so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();
  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);
  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);
  /// Uniform real in [0, 1).
  double NextDouble();
  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);
  /// Random lowercase ASCII string of length `len`.
  std::string NextString(size_t len);
  /// Bernoulli trial with probability p.
  bool NextBool(double p = 0.5);

 private:
  uint64_t state_;
};

/// Zipf(s) sampler over {0, .., n-1} using the inverse-CDF method over a
/// precomputed table. Exponent s == 0 degenerates to uniform, matching the
/// paper's "skew factor 0" (standard TPC-H generator behaviour); larger s
/// concentrates mass on few heavy keys ("skew factor 4 gives the greatest
/// skew").
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  /// Draws a rank in [0, n); rank 0 is the heaviest.
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

 private:
  double exponent_;
  std::vector<double> cdf_;
};

}  // namespace trance

#endif  // TRANCE_UTIL_RANDOM_H_
