// Small string helpers shared across modules.
#ifndef TRANCE_UTIL_STRINGS_H_
#define TRANCE_UTIL_STRINGS_H_

#include <sstream>
#include <string>
#include <vector>

namespace trance {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// printf-like formatting into std::string for simple cases.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Fixed-point formatting with `digits` decimals.
std::string FormatDouble(double v, int digits = 2);

/// Human-readable byte count ("1.2 MB").
std::string FormatBytes(uint64_t bytes);

}  // namespace trance

#endif  // TRANCE_UTIL_STRINGS_H_
