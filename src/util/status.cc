#include "util/status.h"

namespace trance {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kKeyError:
      return "KeyError";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::ostringstream os;
  os << CodeName(code_) << ": " << message_;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace trance
