// Shared thread pool + chunked ParallelFor for partition-parallel operator
// execution (the multi-core substitute for the paper's 100-core Spark
// cluster; Thrill-style bulk dataflow engines get their wins from exactly
// this kind of partition-parallel operator loop).
//
// Determinism contract: ParallelFor(i) runs every index exactly once, with
// no ordering guarantee *during* the loop but a full barrier at return. All
// callers keep their accumulators indexed by loop index (one slot per
// partition) and merge them after the barrier in fixed index order, so
// results are bit-identical to a sequential run.
//
// num_threads <= 1 short-circuits to a plain inline loop on the calling
// thread — no pool, no atomics, byte-for-byte the sequential engine.
#ifndef TRANCE_UTIL_THREAD_POOL_H_
#define TRANCE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trance {
namespace util {

/// A work queue drained by a fixed set of worker threads. "Work-stealing-ish":
/// parallel loops are not pre-split per worker — participants repeatedly
/// claim small chunks from a shared atomic cursor, so a straggler chunk never
/// idles the other threads (cheap dynamic load balancing without deques).
class ThreadPool {
 public:
  /// Pool with `num_workers` background threads (0 is allowed: every
  /// ParallelFor then runs entirely on the calling thread).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const;

  /// Process-wide shared pool. Starts empty; EnsureWorkers (called by
  /// ParallelFor below) grows it on demand up to kMaxWorkers.
  static ThreadPool& Shared();

  /// Grows the pool to at least `n` workers (capped at kMaxWorkers). Lets a
  /// test request 8-way parallelism on a 1-core machine — oversubscription
  /// is harmless for correctness/TSan coverage.
  void EnsureWorkers(int n);

  /// Runs fn(i) for every i in [0, n) using the calling thread plus up to
  /// `parallelism - 1` pool workers; blocks until all indexes have run.
  /// Chunks are claimed dynamically; the caller always participates, so the
  /// loop completes even when every worker is busy (nested ParallelFor
  /// cannot deadlock). The first exception thrown by `fn` is rethrown on the
  /// calling thread after the barrier.
  void ParallelFor(size_t n, int parallelism,
                   const std::function<void(size_t)>& fn);

  static constexpr int kMaxWorkers = 64;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Chunked parallel loop on the shared pool. `num_threads <= 1` (or n <= 1)
/// runs the loop inline on the calling thread — the exact sequential path.
void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& fn);

/// TRANCE_THREADS env override if set (> 0), else hardware_concurrency,
/// else 1. The resolution used by ClusterConfig's num_threads = 0 default.
int DefaultNumThreads();

}  // namespace util
}  // namespace trance

#endif  // TRANCE_UTIL_THREAD_POOL_H_
