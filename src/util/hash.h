// Hash combination helpers used by row hashing, label fingerprints, and the
// hash-partitioner.
#ifndef TRANCE_UTIL_HASH_H_
#define TRANCE_UTIL_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace trance {

/// 64-bit mix (Murmur3 finalizer); good avalanche for partitioning.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

/// SplitMix64 finalizer: full-avalanche mixing for the hash-partitioner, so
/// partition assignment does not inherit weak low-bit entropy from raw key
/// hashes (e.g. sequential integer keys).
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (v + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2)));
}

inline uint64_t HashBytes(const void* data, size_t n, uint64_t seed = 0xcbf29ce484222325ull) {
  // FNV-1a followed by a strong mix.
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return Mix64(h);
}

inline uint64_t HashString(const std::string& s) {
  return HashBytes(s.data(), s.size());
}

inline uint64_t HashDouble(double d) {
  uint64_t bits;
  if (d == 0.0) d = 0.0;  // normalize -0.0
  std::memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits);
}

}  // namespace trance

#endif  // TRANCE_UTIL_HASH_H_
