#include "util/strings.h"

#include <cstdio>

namespace trance {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  return buf;
}

}  // namespace trance
