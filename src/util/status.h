// Status / StatusOr: Arrow/absl-style error propagation without exceptions.
//
// Library code returns Status (or StatusOr<T>) for failures that are expected
// in normal operation: malformed queries, type errors, and — centrally for
// this system — simulated resource exhaustion (a worker running out of
// memory, which the paper's charts report as FAIL). Invariant violations use
// TRANCE_CHECK and abort.
#ifndef TRANCE_UTIL_STATUS_H_
#define TRANCE_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace trance {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kTypeError,
  kNotImplemented,
  kResourceExhausted,  // simulated worker memory saturation => FAIL
  kInternal,
  kKeyError,
};

/// Result of an operation that can fail without a value payload.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True when the failure is the simulated out-of-memory condition the
  /// benchmark harness reports as FAIL.
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : repr_(std::move(status)) {}  // NOLINT(runtime/explicit)
  StatusOr(T value) : repr_(std::move(value)) {}         // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(repr_); }
  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }
  T& value() & { return std::get<T>(repr_); }
  const T& value() const& { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or aborts with the error; for tests and examples.
  T ValueOrDie() && {
    if (!ok()) {
      std::cerr << "StatusOr::ValueOrDie on error: " << status().ToString()
                << std::endl;
      std::abort();
    }
    return std::get<T>(std::move(repr_));
  }

 private:
  std::variant<Status, T> repr_;
};

#define TRANCE_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::trance::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define TRANCE_CONCAT_IMPL(a, b) a##b
#define TRANCE_CONCAT(a, b) TRANCE_CONCAT_IMPL(a, b)

#define TRANCE_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  auto TRANCE_CONCAT(_statusor_, __LINE__) = (rexpr);            \
  if (!TRANCE_CONCAT(_statusor_, __LINE__).ok())                 \
    return TRANCE_CONCAT(_statusor_, __LINE__).status();         \
  lhs = std::move(TRANCE_CONCAT(_statusor_, __LINE__)).value()

/// Aborts when `cond` is false; for internal invariants only.
#define TRANCE_CHECK(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::cerr << "TRANCE_CHECK failed at " << __FILE__ << ":"         \
                << __LINE__ << ": " << (msg) << std::endl;              \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

}  // namespace trance

#endif  // TRANCE_UTIL_STATUS_H_
