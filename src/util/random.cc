#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace trance {

namespace {
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97f4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  state_ = SplitMix64(&s);
  if (state_ == 0) state_ = 0x2545F4914F6CDD1Dull;
}

uint64_t Rng::NextU64() {
  uint64_t x = state_;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  state_ = x;
  return x * 0x2545F4914F6CDD1Dull;
}

uint64_t Rng::Uniform(uint64_t n) {
  TRANCE_CHECK(n > 0, "Uniform(0)");
  return NextU64() % n;
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  TRANCE_CHECK(lo <= hi, "UniformRange: lo > hi");
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::UniformReal(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::string Rng::NextString(size_t len) {
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return s;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double exponent) : exponent_(exponent) {
  TRANCE_CHECK(n > 0, "ZipfSampler over empty domain");
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += (exponent == 0.0)
                 ? 1.0
                 : 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace trance
