// Wall-clock stopwatch for the benchmark harness.
#ifndef TRANCE_UTIL_STOPWATCH_H_
#define TRANCE_UTIL_STOPWATCH_H_

#include <chrono>

namespace trance {

/// Microseconds since a process-wide epoch (first call). All observability
/// timestamps (compile-phase spans, runtime stage wall times) share this
/// epoch so they land on one consistent trace timeline.
inline double WallMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
      .count();
}

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace trance

#endif  // TRANCE_UTIL_STOPWATCH_H_
