// Wall-clock stopwatch for the benchmark harness.
#ifndef TRANCE_UTIL_STOPWATCH_H_
#define TRANCE_UTIL_STOPWATCH_H_

#include <chrono>

namespace trance {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace trance

#endif  // TRANCE_UTIL_STOPWATCH_H_
