#include "nrc/typecheck.h"

#include <algorithm>

namespace trance {
namespace nrc {

namespace {

Status Err(const std::string& msg) { return Status::TypeError(msg); }

/// Numeric result type of a binary arithmetic op.
StatusOr<TypePtr> NumericJoin(const TypePtr& a, const TypePtr& b) {
  if (!a->is_numeric() || !b->is_numeric()) {
    return Err("arithmetic on non-numeric types " + a->ToString() + ", " +
               b->ToString());
  }
  if (a->scalar_kind() == ScalarKind::kReal ||
      b->scalar_kind() == ScalarKind::kReal) {
    return Type::Real();
  }
  return Type::Int();
}

bool ComparableScalars(const TypePtr& a, const TypePtr& b) {
  if (a->is_label() && b->is_label()) return true;
  if (!a->is_scalar() || !b->is_scalar()) return false;
  if (a->is_numeric() && b->is_numeric()) return true;
  return a->scalar_kind() == b->scalar_kind();
}

}  // namespace

StatusOr<TypePtr> Typechecker::Check(const ExprPtr& e, const TypeEnv& env) {
  auto it = keys_.find(e.get());
  if (it != keys_.end()) return it->second;
  TRANCE_ASSIGN_OR_RETURN(TypePtr t, CheckImpl(e, env));
  owned_.push_back(e);
  keys_[e.get()] = t;
  return t;
}

StatusOr<TypePtr> Typechecker::CheckImpl(const ExprPtr& e,
                                         const TypeEnv& env) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kConst:
      return Type::Scalar(e->const_value().kind);
    case K::kVarRef: {
      auto v = env.find(e->var_name());
      if (v == env.end()) return Err("unbound variable " + e->var_name());
      return v->second;
    }
    case K::kProj: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr base, Check(e->child(0), env));
      return base->FieldType(e->attr());
    }
    case K::kTupleCtor: {
      std::vector<Field> fields;
      fields.reserve(e->fields().size());
      for (const auto& f : e->fields()) {
        TRANCE_ASSIGN_OR_RETURN(TypePtr ft, Check(f.expr, env));
        if (ft->is_tuple()) {
          return Err("tuple nested directly inside tuple at attribute " +
                     f.name + " (wrap in a bag)");
        }
        fields.push_back({f.name, ft});
      }
      return Type::Tuple(std::move(fields));
    }
    case K::kEmptyBag:
      return e->declared_type();
    case K::kSingleton: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr inner, Check(e->child(0), env));
      if (inner->is_dict()) return Err("cannot put a dictionary in a bag");
      return Type::Bag(inner);
    }
    case K::kGet: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr inner, Check(e->child(0), env));
      if (!inner->is_bag()) return Err("get() on non-bag " + inner->ToString());
      return inner->element();
    }
    case K::kForUnion: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr dom, Check(e->child(0), env));
      if (!dom->is_bag()) {
        return Err("for-loop domain is not a bag: " + dom->ToString());
      }
      TypeEnv inner = env;
      inner[e->var_name()] = dom->element();
      TRANCE_ASSIGN_OR_RETURN(TypePtr body, Check(e->child(1), inner));
      if (!body->is_bag()) {
        return Err("for-union body is not a bag: " + body->ToString());
      }
      return body;
    }
    case K::kUnion: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr a, Check(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(TypePtr b, Check(e->child(1), env));
      if (!a->is_bag() || !TypeEquals(a, b)) {
        return Err("union of incompatible types " + a->ToString() + " and " +
                   b->ToString());
      }
      return a;
    }
    case K::kLet: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr v, Check(e->child(0), env));
      TypeEnv inner = env;
      inner[e->var_name()] = v;
      return Check(e->child(1), inner);
    }
    case K::kIfThen: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr c, Check(e->child(0), env));
      if (!c->is_bool()) return Err("if condition is not bool");
      TRANCE_ASSIGN_OR_RETURN(TypePtr t, Check(e->child(1), env));
      if (e->num_children() == 3) {
        TRANCE_ASSIGN_OR_RETURN(TypePtr f, Check(e->child(2), env));
        if (!TypeEquals(t, f)) {
          return Err("if branches have different types: " + t->ToString() +
                     " vs " + f->ToString());
        }
      } else if (!t->is_bag()) {
        return Err("if-then without else must produce a bag, got " +
                   t->ToString());
      }
      return t;
    }
    case K::kPrimOp: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr a, Check(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(TypePtr b, Check(e->child(1), env));
      return NumericJoin(a, b);
    }
    case K::kCmp: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr a, Check(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(TypePtr b, Check(e->child(1), env));
      if (!ComparableScalars(a, b)) {
        return Err("comparison of incomparable types " + a->ToString() +
                   " and " + b->ToString());
      }
      if (a->is_label() && e->cmp_op() != CmpOpKind::kEq &&
          e->cmp_op() != CmpOpKind::kNe) {
        return Err("labels support only ==/!=");
      }
      return Type::Bool();
    }
    case K::kBoolOp: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr a, Check(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(TypePtr b, Check(e->child(1), env));
      if (!a->is_bool() || !b->is_bool()) return Err("boolean op on non-bool");
      return Type::Bool();
    }
    case K::kNot: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr a, Check(e->child(0), env));
      if (!a->is_bool()) return Err("not on non-bool");
      return Type::Bool();
    }
    case K::kDedup: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr a, Check(e->child(0), env));
      if (!a->IsFlatBag()) {
        return Err("dedup requires a flat bag, got " + a->ToString());
      }
      return a;
    }
    case K::kGroupBy: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr a, Check(e->child(0), env));
      if (!a->is_bag() || !a->element()->is_tuple()) {
        return Err("groupBy over non-tuple bag " + a->ToString());
      }
      const auto& elem = a->element();
      std::vector<Field> key_fields, rest_fields;
      for (const auto& key : e->keys()) {
        TRANCE_ASSIGN_OR_RETURN(TypePtr kt, elem->FieldType(key));
        if (!kt->IsFlatValueType()) {
          return Err("groupBy key " + key + " is not flat");
        }
        key_fields.push_back({key, kt});
      }
      for (const auto& f : elem->fields()) {
        if (std::find(e->keys().begin(), e->keys().end(), f.name) ==
            e->keys().end()) {
          rest_fields.push_back(f);
        }
      }
      key_fields.push_back(
          {e->attr(), Type::Bag(Type::Tuple(std::move(rest_fields)))});
      return Type::Bag(Type::Tuple(std::move(key_fields)));
    }
    case K::kSumBy: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr a, Check(e->child(0), env));
      if (!a->is_bag() || !a->element()->is_tuple()) {
        return Err("sumBy over non-tuple bag " + a->ToString());
      }
      const auto& elem = a->element();
      std::vector<Field> fields;
      for (const auto& key : e->keys()) {
        TRANCE_ASSIGN_OR_RETURN(TypePtr kt, elem->FieldType(key));
        if (!kt->IsFlatValueType()) {
          return Err("sumBy key " + key + " is not flat");
        }
        fields.push_back({key, kt});
      }
      for (const auto& v : e->values()) {
        TRANCE_ASSIGN_OR_RETURN(TypePtr vt, elem->FieldType(v));
        if (!vt->is_numeric()) {
          return Err("sumBy value " + v + " is not numeric");
        }
        fields.push_back({v, vt});
      }
      return Type::Bag(Type::Tuple(std::move(fields)));
    }
    case K::kNewLabel: {
      for (const auto& p : e->fields()) {
        TRANCE_ASSIGN_OR_RETURN(TypePtr pt, Check(p.expr, env));
        if (!pt->IsFlatValueType()) {
          return Err("NewLabel parameter " + p.name + " is not flat: " +
                     pt->ToString());
        }
      }
      return Type::Label();
    }
    case K::kMatchLabel: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr lt, Check(e->child(0), env));
      if (!lt->is_label()) return Err("match on non-label");
      if (e->match_param_type() == nullptr) {
        return Err("match construct lacks a parameter type annotation");
      }
      TypeEnv inner = env;
      inner[e->var_name()] = e->match_param_type();
      return Check(e->child(1), inner);
    }
    case K::kLookup: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr dt, Check(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(TypePtr lt, Check(e->child(1), env));
      if (!lt->is_label()) return Err("Lookup key is not a label");
      if (dt->is_dict()) return dt->element();
      return Err("Lookup on non-dictionary " + dt->ToString());
    }
    case K::kMatLookup: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr bt, Check(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(TypePtr lt, Check(e->child(1), env));
      if (!lt->is_label()) return Err("MatLookup key is not a label");
      // Accept a symbolic dictionary (Dict type), the label/value-bag pair
      // encoding, or the relational encoding (label column + element fields).
      if (bt->is_dict()) return bt->element();
      if (bt->is_bag() && bt->element()->is_tuple()) {
        const auto& elem = bt->element();
        int lab_idx = elem->FieldIndex("label");
        if (lab_idx >= 0 &&
            elem->fields()[static_cast<size_t>(lab_idx)].type->is_label()) {
          if (elem->FieldIndex("value") >= 0) {
            TRANCE_ASSIGN_OR_RETURN(TypePtr val, elem->FieldType("value"));
            if (val->is_bag()) return val;
          } else {
            std::vector<Field> rest;
            for (const auto& f : elem->fields()) {
              if (f.name != "label") rest.push_back(f);
            }
            if (rest.size() == 1 && rest[0].name == "_value") {
              return Type::Bag(rest[0].type);
            }
            return Type::Bag(Type::Tuple(std::move(rest)));
          }
        }
      }
      return Err("MatLookup over non-dictionary bag " + bt->ToString());
    }
    case K::kLambda: {
      TypeEnv inner = env;
      inner[e->var_name()] = Type::Label();
      TRANCE_ASSIGN_OR_RETURN(TypePtr body, Check(e->child(0), inner));
      if (!body->is_bag()) return Err("lambda body must be a bag");
      return Type::Dict(body);
    }
    case K::kDictTreeUnion: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr a, Check(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(TypePtr b, Check(e->child(1), env));
      if (!TypeEquals(a, b)) {
        return Err("DictTreeUnion of different shapes: " + a->ToString() +
                   " vs " + b->ToString());
      }
      return a;
    }
    case K::kBagToDict: {
      TRANCE_ASSIGN_OR_RETURN(TypePtr bt, Check(e->child(0), env));
      if (!bt->is_bag() || !bt->element()->is_tuple() ||
          bt->element()->FieldIndex("label") < 0) {
        return Err("BagToDict input must be a bag with a label attribute");
      }
      return bt;
    }
  }
  return Err("unhandled expression kind");
}

StatusOr<TypeEnv> Typechecker::CheckProgram(const Program& program) {
  TypeEnv env;
  for (const auto& in : program.inputs) {
    env[in.name] = in.type;
  }
  for (const auto& a : program.assignments) {
    TRANCE_ASSIGN_OR_RETURN(TypePtr t, Check(a.expr, env));
    env[a.var] = t;
  }
  return env;
}

}  // namespace nrc
}  // namespace trance
