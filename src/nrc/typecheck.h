// NRC / NRC^{Lbl+lambda} type checker.
//
// Besides validating programs, the checker memoizes the type of every
// expression node; later compilation stages (unnesting, shredding, lowering)
// query these types to derive operator schemas.
#ifndef TRANCE_NRC_TYPECHECK_H_
#define TRANCE_NRC_TYPECHECK_H_

#include <map>
#include <string>
#include <unordered_map>

#include "nrc/expr.h"
#include "nrc/type.h"
#include "util/status.h"

namespace trance {
namespace nrc {

/// Typing environment: variable name -> type.
using TypeEnv = std::map<std::string, TypePtr>;

/// Type checker with per-node memoization. One instance per program; nodes
/// are keyed by identity, so reusing an instance across unrelated programs
/// that share subtrees bound in different environments is not supported.
class Typechecker {
 public:
  /// Types expression `e` under `env`; caches the result per node.
  StatusOr<TypePtr> Check(const ExprPtr& e, const TypeEnv& env);

  /// Types a whole program (inputs seed the environment; each assignment
  /// extends it). On success returns the environment including all assigned
  /// variables.
  StatusOr<TypeEnv> CheckProgram(const Program& program);

  /// The memoized type of a node, or nullptr if it was never checked.
  TypePtr TypeOf(const Expr* e) const {
    auto it = keys_.find(e);
    return it == keys_.end() ? nullptr : it->second;
  }

 private:
  StatusOr<TypePtr> CheckImpl(const ExprPtr& e, const TypeEnv& env);

  // The memo holds shared ownership of every checked node: keying raw
  // pointers without ownership would let a freed node's address be reused by
  // a later allocation and return a stale type.
  std::vector<ExprPtr> owned_;
  std::unordered_map<const Expr*, TypePtr> keys_;
};

/// The per-type default value returned by get() on non-singleton bags.
class Value;

}  // namespace nrc
}  // namespace trance

#endif  // TRANCE_NRC_TYPECHECK_H_
