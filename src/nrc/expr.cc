#include "nrc/expr.h"

#include <algorithm>

namespace trance {
namespace nrc {

const char* PrimOpName(PrimOpKind op) {
  switch (op) {
    case PrimOpKind::kAdd:
      return "+";
    case PrimOpKind::kSub:
      return "-";
    case PrimOpKind::kMul:
      return "*";
    case PrimOpKind::kDiv:
      return "/";
  }
  return "?";
}

const char* CmpOpName(CmpOpKind op) {
  switch (op) {
    case CmpOpKind::kEq:
      return "==";
    case CmpOpKind::kNe:
      return "!=";
    case CmpOpKind::kLt:
      return "<";
    case CmpOpKind::kLe:
      return "<=";
    case CmpOpKind::kGt:
      return ">";
    case CmpOpKind::kGe:
      return ">=";
  }
  return "?";
}

const char* BoolOpName(BoolOpKind op) {
  return op == BoolOpKind::kAnd ? "&&" : "||";
}

#define MAKE(kind) std::shared_ptr<Expr>(new Expr(kind))

ExprPtr Expr::Const(ConstValue c) {
  auto e = MAKE(Kind::kConst);
  e->const_value_ = std::move(c);
  return e;
}

ExprPtr Expr::Var(std::string name) {
  auto e = MAKE(Kind::kVarRef);
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Proj(ExprPtr base, std::string attr) {
  TRANCE_CHECK(base != nullptr, "Proj(null)");
  auto e = MAKE(Kind::kProj);
  e->children_ = {std::move(base)};
  e->name_ = std::move(attr);
  return e;
}

ExprPtr Expr::Tuple(std::vector<NamedExpr> fields) {
  auto e = MAKE(Kind::kTupleCtor);
  e->fields_ = std::move(fields);
  return e;
}

ExprPtr Expr::EmptyBag(TypePtr bag_type) {
  TRANCE_CHECK(bag_type != nullptr && bag_type->is_bag(),
               "EmptyBag requires a bag type");
  auto e = MAKE(Kind::kEmptyBag);
  e->declared_type_ = std::move(bag_type);
  return e;
}

ExprPtr Expr::Singleton(ExprPtr inner) {
  TRANCE_CHECK(inner != nullptr, "Singleton(null)");
  auto e = MAKE(Kind::kSingleton);
  e->children_ = {std::move(inner)};
  return e;
}

ExprPtr Expr::Get(ExprPtr inner) {
  TRANCE_CHECK(inner != nullptr, "Get(null)");
  auto e = MAKE(Kind::kGet);
  e->children_ = {std::move(inner)};
  return e;
}

ExprPtr Expr::ForUnion(std::string var, ExprPtr domain, ExprPtr body) {
  TRANCE_CHECK(domain != nullptr && body != nullptr, "ForUnion(null)");
  auto e = MAKE(Kind::kForUnion);
  e->name_ = std::move(var);
  e->children_ = {std::move(domain), std::move(body)};
  return e;
}

ExprPtr Expr::Union(ExprPtr a, ExprPtr b) {
  TRANCE_CHECK(a != nullptr && b != nullptr, "Union(null)");
  auto e = MAKE(Kind::kUnion);
  e->children_ = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::Let(std::string var, ExprPtr value, ExprPtr body) {
  TRANCE_CHECK(value != nullptr && body != nullptr, "Let(null)");
  auto e = MAKE(Kind::kLet);
  e->name_ = std::move(var);
  e->children_ = {std::move(value), std::move(body)};
  return e;
}

ExprPtr Expr::IfThen(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) {
  TRANCE_CHECK(cond != nullptr && then_e != nullptr, "IfThen(null)");
  auto e = MAKE(Kind::kIfThen);
  e->children_ = {std::move(cond), std::move(then_e)};
  if (else_e != nullptr) e->children_.push_back(std::move(else_e));
  return e;
}

ExprPtr Expr::PrimOp(PrimOpKind op, ExprPtr a, ExprPtr b) {
  TRANCE_CHECK(a != nullptr && b != nullptr, "PrimOp(null)");
  auto e = MAKE(Kind::kPrimOp);
  e->prim_op_ = op;
  e->children_ = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::Cmp(CmpOpKind op, ExprPtr a, ExprPtr b) {
  TRANCE_CHECK(a != nullptr && b != nullptr, "Cmp(null)");
  auto e = MAKE(Kind::kCmp);
  e->cmp_op_ = op;
  e->children_ = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::BoolOp(BoolOpKind op, ExprPtr a, ExprPtr b) {
  TRANCE_CHECK(a != nullptr && b != nullptr, "BoolOp(null)");
  auto e = MAKE(Kind::kBoolOp);
  e->bool_op_ = op;
  e->children_ = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::Not(ExprPtr inner) {
  TRANCE_CHECK(inner != nullptr, "Not(null)");
  auto e = MAKE(Kind::kNot);
  e->children_ = {std::move(inner)};
  return e;
}

ExprPtr Expr::Dedup(ExprPtr inner) {
  TRANCE_CHECK(inner != nullptr, "Dedup(null)");
  auto e = MAKE(Kind::kDedup);
  e->children_ = {std::move(inner)};
  return e;
}

ExprPtr Expr::GroupBy(std::vector<std::string> keys, ExprPtr inner,
                      std::string group_attr) {
  TRANCE_CHECK(inner != nullptr, "GroupBy(null)");
  auto e = MAKE(Kind::kGroupBy);
  e->keys_ = std::move(keys);
  e->name_ = std::move(group_attr);
  e->children_ = {std::move(inner)};
  return e;
}

ExprPtr Expr::SumBy(std::vector<std::string> keys,
                    std::vector<std::string> values, ExprPtr inner) {
  TRANCE_CHECK(inner != nullptr, "SumBy(null)");
  TRANCE_CHECK(!values.empty(), "SumBy without value attributes");
  auto e = MAKE(Kind::kSumBy);
  e->keys_ = std::move(keys);
  e->values_ = std::move(values);
  e->children_ = {std::move(inner)};
  return e;
}

ExprPtr Expr::NewLabel(std::vector<NamedExpr> params) {
  auto e = MAKE(Kind::kNewLabel);
  e->fields_ = std::move(params);
  return e;
}

ExprPtr Expr::MatchLabel(ExprPtr label, std::string var, ExprPtr body,
                         TypePtr param_type) {
  TRANCE_CHECK(label != nullptr && body != nullptr, "MatchLabel(null)");
  auto e = MAKE(Kind::kMatchLabel);
  e->name_ = std::move(var);
  e->children_ = {std::move(label), std::move(body)};
  e->declared_type_ = std::move(param_type);
  return e;
}

ExprPtr Expr::Lookup(ExprPtr dict, ExprPtr label) {
  TRANCE_CHECK(dict != nullptr && label != nullptr, "Lookup(null)");
  auto e = MAKE(Kind::kLookup);
  e->children_ = {std::move(dict), std::move(label)};
  return e;
}

ExprPtr Expr::MatLookup(ExprPtr mat_dict_bag, ExprPtr label) {
  TRANCE_CHECK(mat_dict_bag != nullptr && label != nullptr, "MatLookup(null)");
  auto e = MAKE(Kind::kMatLookup);
  e->children_ = {std::move(mat_dict_bag), std::move(label)};
  return e;
}

ExprPtr Expr::Lambda(std::string var, ExprPtr body) {
  TRANCE_CHECK(body != nullptr, "Lambda(null)");
  auto e = MAKE(Kind::kLambda);
  e->name_ = std::move(var);
  e->children_ = {std::move(body)};
  return e;
}

ExprPtr Expr::DictTreeUnion(ExprPtr a, ExprPtr b) {
  TRANCE_CHECK(a != nullptr && b != nullptr, "DictTreeUnion(null)");
  auto e = MAKE(Kind::kDictTreeUnion);
  e->children_ = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::BagToDict(ExprPtr inner) {
  TRANCE_CHECK(inner != nullptr, "BagToDict(null)");
  auto e = MAKE(Kind::kBagToDict);
  e->children_ = {std::move(inner)};
  return e;
}

#undef MAKE

const ConstValue& Expr::const_value() const {
  TRANCE_CHECK(kind_ == Kind::kConst, "const_value on non-const");
  return const_value_;
}

const std::string& Expr::var_name() const {
  TRANCE_CHECK(kind_ == Kind::kVarRef || kind_ == Kind::kForUnion ||
                   kind_ == Kind::kLet || kind_ == Kind::kLambda ||
                   kind_ == Kind::kMatchLabel,
               "var_name on wrong node kind");
  return name_;
}

const std::string& Expr::attr() const {
  TRANCE_CHECK(kind_ == Kind::kProj || kind_ == Kind::kGroupBy,
               "attr on wrong node kind");
  return name_;
}

const std::vector<NamedExpr>& Expr::fields() const {
  TRANCE_CHECK(kind_ == Kind::kTupleCtor || kind_ == Kind::kNewLabel,
               "fields on wrong node kind");
  return fields_;
}

const TypePtr& Expr::declared_type() const {
  TRANCE_CHECK(kind_ == Kind::kEmptyBag, "declared_type on wrong node kind");
  return declared_type_;
}

const TypePtr& Expr::match_param_type() const {
  TRANCE_CHECK(kind_ == Kind::kMatchLabel,
               "match_param_type on wrong node kind");
  return declared_type_;
}

const ExprPtr& Expr::child(size_t i) const {
  TRANCE_CHECK(i < children_.size(), "child index out of range");
  return children_[i];
}

const std::vector<std::string>& Expr::keys() const {
  TRANCE_CHECK(kind_ == Kind::kGroupBy || kind_ == Kind::kSumBy,
               "keys on wrong node kind");
  return keys_;
}

const std::vector<std::string>& Expr::values() const {
  TRANCE_CHECK(kind_ == Kind::kSumBy, "values on wrong node kind");
  return values_;
}

void Expr::CollectFreeVars(std::set<std::string>* bound,
                           std::set<std::string>* out) const {
  switch (kind_) {
    case Kind::kVarRef:
      if (bound->find(name_) == bound->end()) out->insert(name_);
      return;
    case Kind::kForUnion:
    case Kind::kLet: {
      children_[0]->CollectFreeVars(bound, out);
      bool inserted = bound->insert(name_).second;
      children_[1]->CollectFreeVars(bound, out);
      if (inserted) bound->erase(name_);
      return;
    }
    case Kind::kLambda: {
      bool inserted = bound->insert(name_).second;
      children_[0]->CollectFreeVars(bound, out);
      if (inserted) bound->erase(name_);
      return;
    }
    case Kind::kMatchLabel: {
      children_[0]->CollectFreeVars(bound, out);
      bool inserted = bound->insert(name_).second;
      children_[1]->CollectFreeVars(bound, out);
      if (inserted) bound->erase(name_);
      return;
    }
    case Kind::kTupleCtor:
    case Kind::kNewLabel:
      for (const auto& f : fields_) f.expr->CollectFreeVars(bound, out);
      return;
    default:
      for (const auto& c : children_) c->CollectFreeVars(bound, out);
      return;
  }
}

std::set<std::string> Expr::FreeVars() const {
  std::set<std::string> bound, out;
  CollectFreeVars(&bound, &out);
  return out;
}

namespace {
ExprPtr SubstituteImpl(const ExprPtr& e, const std::string& var,
                       const ExprPtr& replacement) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kVarRef:
      return e->var_name() == var ? replacement : e;
    case K::kConst:
    case K::kEmptyBag:
      return e;
    case K::kForUnion: {
      ExprPtr domain = SubstituteImpl(e->child(0), var, replacement);
      ExprPtr body = e->var_name() == var
                         ? e->child(1)
                         : SubstituteImpl(e->child(1), var, replacement);
      return Expr::ForUnion(e->var_name(), domain, body);
    }
    case K::kLet: {
      ExprPtr value = SubstituteImpl(e->child(0), var, replacement);
      ExprPtr body = e->var_name() == var
                         ? e->child(1)
                         : SubstituteImpl(e->child(1), var, replacement);
      return Expr::Let(e->var_name(), value, body);
    }
    case K::kLambda: {
      if (e->var_name() == var) return e;
      return Expr::Lambda(e->var_name(),
                          SubstituteImpl(e->child(0), var, replacement));
    }
    case K::kMatchLabel: {
      ExprPtr label = SubstituteImpl(e->child(0), var, replacement);
      ExprPtr body = e->var_name() == var
                         ? e->child(1)
                         : SubstituteImpl(e->child(1), var, replacement);
      return Expr::MatchLabel(label, e->var_name(), body,
                              e->match_param_type());
    }
    case K::kTupleCtor:
    case K::kNewLabel: {
      std::vector<NamedExpr> fields;
      fields.reserve(e->fields().size());
      for (const auto& f : e->fields()) {
        fields.push_back({f.name, SubstituteImpl(f.expr, var, replacement)});
      }
      return e->kind() == K::kTupleCtor ? Expr::Tuple(std::move(fields))
                                        : Expr::NewLabel(std::move(fields));
    }
    case K::kProj:
      return Expr::Proj(SubstituteImpl(e->child(0), var, replacement),
                        e->attr());
    case K::kSingleton:
      return Expr::Singleton(SubstituteImpl(e->child(0), var, replacement));
    case K::kGet:
      return Expr::Get(SubstituteImpl(e->child(0), var, replacement));
    case K::kUnion:
      return Expr::Union(SubstituteImpl(e->child(0), var, replacement),
                         SubstituteImpl(e->child(1), var, replacement));
    case K::kIfThen: {
      ExprPtr cond = SubstituteImpl(e->child(0), var, replacement);
      ExprPtr then_e = SubstituteImpl(e->child(1), var, replacement);
      ExprPtr else_e = e->num_children() == 3
                           ? SubstituteImpl(e->child(2), var, replacement)
                           : nullptr;
      return Expr::IfThen(cond, then_e, else_e);
    }
    case K::kPrimOp:
      return Expr::PrimOp(e->prim_op(),
                          SubstituteImpl(e->child(0), var, replacement),
                          SubstituteImpl(e->child(1), var, replacement));
    case K::kCmp:
      return Expr::Cmp(e->cmp_op(),
                       SubstituteImpl(e->child(0), var, replacement),
                       SubstituteImpl(e->child(1), var, replacement));
    case K::kBoolOp:
      return Expr::BoolOp(e->bool_op(),
                          SubstituteImpl(e->child(0), var, replacement),
                          SubstituteImpl(e->child(1), var, replacement));
    case K::kNot:
      return Expr::Not(SubstituteImpl(e->child(0), var, replacement));
    case K::kDedup:
      return Expr::Dedup(SubstituteImpl(e->child(0), var, replacement));
    case K::kGroupBy:
      return Expr::GroupBy(e->keys(),
                           SubstituteImpl(e->child(0), var, replacement),
                           e->attr());
    case K::kSumBy:
      return Expr::SumBy(e->keys(), e->values(),
                         SubstituteImpl(e->child(0), var, replacement));
    case K::kLookup:
      return Expr::Lookup(SubstituteImpl(e->child(0), var, replacement),
                          SubstituteImpl(e->child(1), var, replacement));
    case K::kMatLookup:
      return Expr::MatLookup(SubstituteImpl(e->child(0), var, replacement),
                             SubstituteImpl(e->child(1), var, replacement));
    case K::kDictTreeUnion:
      return Expr::DictTreeUnion(
          SubstituteImpl(e->child(0), var, replacement),
          SubstituteImpl(e->child(1), var, replacement));
    case K::kBagToDict:
      return Expr::BagToDict(SubstituteImpl(e->child(0), var, replacement));
  }
  TRANCE_CHECK(false, "unreachable in Substitute");
  return e;
}
}  // namespace

ExprPtr Substitute(const ExprPtr& e, const std::string& var,
                   const ExprPtr& replacement) {
  TRANCE_CHECK(e != nullptr && replacement != nullptr, "Substitute(null)");
  return SubstituteImpl(e, var, replacement);
}

}  // namespace nrc
}  // namespace trance
