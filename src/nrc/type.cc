#include "nrc/type.h"

#include "util/strings.h"

namespace trance {
namespace nrc {

const char* ScalarKindName(ScalarKind k) {
  switch (k) {
    case ScalarKind::kInt:
      return "int";
    case ScalarKind::kReal:
      return "real";
    case ScalarKind::kString:
      return "string";
    case ScalarKind::kBool:
      return "bool";
    case ScalarKind::kDate:
      return "date";
  }
  return "?";
}

TypePtr Type::Scalar(ScalarKind k) {
  auto t = std::shared_ptr<Type>(new Type(Kind::kScalar));
  t->scalar_kind_ = k;
  return t;
}

TypePtr Type::Int() {
  static const TypePtr t = Scalar(ScalarKind::kInt);
  return t;
}
TypePtr Type::Real() {
  static const TypePtr t = Scalar(ScalarKind::kReal);
  return t;
}
TypePtr Type::String() {
  static const TypePtr t = Scalar(ScalarKind::kString);
  return t;
}
TypePtr Type::Bool() {
  static const TypePtr t = Scalar(ScalarKind::kBool);
  return t;
}
TypePtr Type::Date() {
  static const TypePtr t = Scalar(ScalarKind::kDate);
  return t;
}

TypePtr Type::Tuple(std::vector<Field> fields) {
  auto t = std::shared_ptr<Type>(new Type(Kind::kTuple));
  t->fields_ = std::move(fields);
  return t;
}

TypePtr Type::Bag(TypePtr element) {
  TRANCE_CHECK(element != nullptr, "Bag(null)");
  auto t = std::shared_ptr<Type>(new Type(Kind::kBag));
  t->element_ = std::move(element);
  return t;
}

TypePtr Type::Label() {
  static const TypePtr t = std::shared_ptr<Type>(new Type(Kind::kLabel));
  return t;
}

TypePtr Type::Dict(TypePtr bag) {
  TRANCE_CHECK(bag != nullptr && bag->is_bag(), "Dict over non-bag");
  auto t = std::shared_ptr<Type>(new Type(Kind::kDict));
  t->element_ = std::move(bag);
  return t;
}

int Type::FieldIndex(const std::string& name) const {
  TRANCE_CHECK(is_tuple(), "FieldIndex on non-tuple");
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<TypePtr> Type::FieldType(const std::string& name) const {
  if (!is_tuple()) {
    return Status::TypeError("projection ." + name + " on non-tuple type " +
                             ToString());
  }
  int i = FieldIndex(name);
  if (i < 0) {
    return Status::TypeError("no attribute '" + name + "' in " + ToString());
  }
  return fields_[static_cast<size_t>(i)].type;
}

bool Type::IsFlatBag() const {
  if (!is_bag()) return false;
  const TypePtr& el = element_;
  if (el->is_scalar()) return true;
  if (!el->is_tuple()) return false;
  for (const auto& f : el->fields()) {
    if (!f.type->is_scalar() && !f.type->is_label()) return false;
  }
  return true;
}

bool Type::IsFlatValueType() const {
  switch (kind_) {
    case Kind::kScalar:
    case Kind::kLabel:
      return true;
    case Kind::kTuple:
      for (const auto& f : fields_) {
        if (!f.type->IsFlatValueType()) return false;
      }
      return true;
    default:
      return false;
  }
}

std::string Type::ToString() const {
  switch (kind_) {
    case Kind::kScalar:
      return ScalarKindName(scalar_kind_);
    case Kind::kLabel:
      return "Label";
    case Kind::kBag:
      return "Bag(" + element_->ToString() + ")";
    case Kind::kDict:
      return "Label -> " + element_->ToString();
    case Kind::kTuple: {
      std::vector<std::string> parts;
      parts.reserve(fields_.size());
      for (const auto& f : fields_) {
        parts.push_back(f.name + ": " + f.type->ToString());
      }
      return "<" + Join(parts, ", ") + ">";
    }
  }
  return "?";
}

bool TypeEquals(const Type& a, const Type& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Type::Kind::kScalar:
      return a.scalar_kind_ == b.scalar_kind_;
    case Type::Kind::kLabel:
      return true;
    case Type::Kind::kBag:
    case Type::Kind::kDict:
      return TypeEquals(*a.element_, *b.element_);
    case Type::Kind::kTuple: {
      if (a.fields_.size() != b.fields_.size()) return false;
      for (size_t i = 0; i < a.fields_.size(); ++i) {
        if (a.fields_[i].name != b.fields_[i].name) return false;
        if (!TypeEquals(*a.fields_[i].type, *b.fields_[i].type)) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace nrc
}  // namespace trance
