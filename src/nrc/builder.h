// Terse construction helpers for NRC expressions ("the weapon of choice for
// rapid prototyping"): benchmark query suites and tests build programs with
// these instead of raw Expr factories.
#ifndef TRANCE_NRC_BUILDER_H_
#define TRANCE_NRC_BUILDER_H_

#include <string>
#include <vector>

#include "nrc/expr.h"

namespace trance {
namespace nrc {
namespace dsl {

/// Variable reference, optionally with a projection path: V("x"),
/// V("x.a.b") == Proj(Proj(Var(x), a), b).
ExprPtr V(const std::string& path);

inline ExprPtr I(int64_t v) { return Expr::Const(ConstValue::Int(v)); }
inline ExprPtr R(double v) { return Expr::Const(ConstValue::Real(v)); }
inline ExprPtr S(const std::string& v) {
  return Expr::Const(ConstValue::Str(v));
}
inline ExprPtr B(bool v) { return Expr::Const(ConstValue::Bool(v)); }

/// Tuple constructor: Tup({{"a", e1}, {"b", e2}}).
inline ExprPtr Tup(std::vector<NamedExpr> fields) {
  return Expr::Tuple(std::move(fields));
}
/// Singleton-of-tuple, the most common comprehension head.
inline ExprPtr SngTup(std::vector<NamedExpr> fields) {
  return Expr::Singleton(Expr::Tuple(std::move(fields)));
}
inline ExprPtr Sng(ExprPtr e) { return Expr::Singleton(std::move(e)); }

inline ExprPtr For(const std::string& var, ExprPtr domain, ExprPtr body) {
  return Expr::ForUnion(var, std::move(domain), std::move(body));
}
inline ExprPtr Let(const std::string& var, ExprPtr value, ExprPtr body) {
  return Expr::Let(var, std::move(value), std::move(body));
}
inline ExprPtr If(ExprPtr cond, ExprPtr then_e, ExprPtr else_e = nullptr) {
  return Expr::IfThen(std::move(cond), std::move(then_e), std::move(else_e));
}

inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Expr::Cmp(CmpOpKind::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Expr::Cmp(CmpOpKind::kNe, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Expr::Cmp(CmpOpKind::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Expr::Cmp(CmpOpKind::kLe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Expr::Cmp(CmpOpKind::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Expr::Cmp(CmpOpKind::kGe, std::move(a), std::move(b));
}
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Expr::BoolOp(BoolOpKind::kAnd, std::move(a), std::move(b));
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Expr::BoolOp(BoolOpKind::kOr, std::move(a), std::move(b));
}

inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Expr::PrimOp(PrimOpKind::kAdd, std::move(a), std::move(b));
}
inline ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Expr::PrimOp(PrimOpKind::kSub, std::move(a), std::move(b));
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Expr::PrimOp(PrimOpKind::kMul, std::move(a), std::move(b));
}
inline ExprPtr Div(ExprPtr a, ExprPtr b) {
  return Expr::PrimOp(PrimOpKind::kDiv, std::move(a), std::move(b));
}

inline ExprPtr SumBy(std::vector<std::string> keys,
                     std::vector<std::string> values, ExprPtr e) {
  return Expr::SumBy(std::move(keys), std::move(values), std::move(e));
}
inline ExprPtr GroupBy(std::vector<std::string> keys, ExprPtr e,
                       const std::string& group_attr = "group") {
  return Expr::GroupBy(std::move(keys), std::move(e), group_attr);
}

/// Tuple type helper: Tu({{"a", Type::Int()}, ...}).
TypePtr Tu(std::vector<std::pair<std::string, TypePtr>> fields);
/// Bag-of-tuple type helper.
TypePtr BagTu(std::vector<std::pair<std::string, TypePtr>> fields);

}  // namespace dsl
}  // namespace nrc
}  // namespace trance

#endif  // TRANCE_NRC_BUILDER_H_
