#include "nrc/interp.h"

#include <unordered_map>

#include "util/hash.h"

namespace trance {
namespace nrc {

Value DefaultValue(const TypePtr& type) {
  if (type == nullptr) return Value::Int(0);
  switch (type->kind()) {
    case Type::Kind::kScalar:
      switch (type->scalar_kind()) {
        case ScalarKind::kInt:
        case ScalarKind::kDate:
          return Value::Int(0);
        case ScalarKind::kReal:
          return Value::Real(0.0);
        case ScalarKind::kString:
          return Value::Str("");
        case ScalarKind::kBool:
          return Value::Bool(false);
      }
      return Value::Int(0);
    case Type::Kind::kLabel:
      return Value::Label({});
    case Type::Kind::kBag:
    case Type::Kind::kDict:
      return Value::EmptyBag();
    case Type::Kind::kTuple: {
      TupleValue t;
      for (const auto& f : type->fields()) {
        t.fields.emplace_back(f.name, DefaultValue(f.type));
      }
      return Value::Tuple(std::move(t));
    }
  }
  return Value::Int(0);
}

StatusOr<Value> Interpreter::ApplyDict(const Value& dict, const Value& label) {
  if (dict.is_closure()) {
    const ClosureValue& c = dict.AsClosure();
    EnvPtr env = Env::Bind(c.env, c.var, label);
    return Eval(c.body, env);
  }
  if (dict.is_bag()) {
    // Two bag encodings are accepted: label/value pairs (Fig. 5) and the
    // relational representation (label column + element fields), which the
    // runtime uses.
    std::vector<Value> out;
    for (const auto& entry : dict.AsBag().elems) {
      TRANCE_ASSIGN_OR_RETURN(Value l, entry.Field("label"));
      if (!(l == label)) continue;
      auto pair_value = entry.Field("value");
      if (pair_value.ok()) {
        if (!pair_value->is_bag()) {
          return Status::TypeError("dictionary value is not a bag");
        }
        for (const auto& x : pair_value->AsBag().elems) out.push_back(x);
        continue;
      }
      nrc::TupleValue rest;
      for (const auto& [n, v] : entry.AsTuple().fields) {
        if (n != "label") rest.fields.emplace_back(n, v);
      }
      if (rest.fields.size() == 1 && rest.fields[0].first == "_value") {
        out.push_back(rest.fields[0].second);
      } else {
        out.push_back(Value::Tuple(std::move(rest)));
      }
    }
    return Value::Bag(std::move(out));
  }
  return Status::TypeError("ApplyDict on non-dictionary value " +
                           dict.ToString());
}

StatusOr<Value> Interpreter::EvalGroupBy(const Expr& e, const Value& input) {
  if (!input.is_bag()) return Status::TypeError("groupBy over non-bag");
  // Group while preserving first-seen key order (determinism for tests).
  std::unordered_map<Value, size_t, ValueHash, ValueEq> index;
  std::vector<std::pair<Value, std::vector<Value>>> groups;
  for (const auto& t : input.AsBag().elems) {
    if (!t.is_tuple()) return Status::TypeError("groupBy over non-tuples");
    TupleValue key;
    TupleValue rest;
    for (const auto& [n, v] : t.AsTuple().fields) {
      bool is_key = false;
      for (const auto& k : e.keys()) {
        if (k == n) {
          is_key = true;
          break;
        }
      }
      if (is_key) {
        key.fields.emplace_back(n, v);
      } else {
        rest.fields.emplace_back(n, v);
      }
    }
    if (key.fields.size() != e.keys().size()) {
      return Status::KeyError("groupBy key attribute missing from tuple");
    }
    Value kv = Value::Tuple(std::move(key));
    auto [it, inserted] = index.try_emplace(kv, groups.size());
    if (inserted) groups.emplace_back(kv, std::vector<Value>{});
    groups[it->second].second.push_back(Value::Tuple(std::move(rest)));
  }
  std::vector<Value> out;
  out.reserve(groups.size());
  for (auto& [kv, members] : groups) {
    TupleValue row;
    for (const auto& [n, v] : kv.AsTuple().fields) {
      row.fields.emplace_back(n, v);
    }
    row.fields.emplace_back(e.attr(), Value::Bag(std::move(members)));
    out.push_back(Value::Tuple(std::move(row)));
  }
  return Value::Bag(std::move(out));
}

StatusOr<Value> Interpreter::EvalSumBy(const Expr& e, const Value& input) {
  if (!input.is_bag()) return Status::TypeError("sumBy over non-bag");
  struct Acc {
    std::vector<double> sums;
    std::vector<bool> is_int;
  };
  std::unordered_map<Value, size_t, ValueHash, ValueEq> index;
  std::vector<std::pair<Value, Acc>> groups;
  for (const auto& t : input.AsBag().elems) {
    if (!t.is_tuple()) return Status::TypeError("sumBy over non-tuples");
    TupleValue key;
    for (const auto& k : e.keys()) {
      TRANCE_ASSIGN_OR_RETURN(Value kv, t.Field(k));
      key.fields.emplace_back(k, std::move(kv));
    }
    Value kv = Value::Tuple(std::move(key));
    auto [it, inserted] = index.try_emplace(kv, groups.size());
    if (inserted) {
      Acc acc;
      acc.sums.assign(e.values().size(), 0.0);
      acc.is_int.assign(e.values().size(), true);
      groups.emplace_back(kv, std::move(acc));
    }
    Acc& acc = groups[it->second].second;
    for (size_t i = 0; i < e.values().size(); ++i) {
      TRANCE_ASSIGN_OR_RETURN(Value vv, t.Field(e.values()[i]));
      if (!vv.is_int() && !vv.is_real()) {
        return Status::TypeError("sumBy over non-numeric value attribute " +
                                 e.values()[i]);
      }
      if (!vv.is_int()) acc.is_int[i] = false;
      acc.sums[i] += vv.AsNumber();
    }
  }
  std::vector<Value> out;
  out.reserve(groups.size());
  for (auto& [kv, acc] : groups) {
    TupleValue row;
    for (const auto& [n, v] : kv.AsTuple().fields) {
      row.fields.emplace_back(n, v);
    }
    for (size_t i = 0; i < e.values().size(); ++i) {
      row.fields.emplace_back(
          e.values()[i], acc.is_int[i]
                             ? Value::Int(static_cast<int64_t>(acc.sums[i]))
                             : Value::Real(acc.sums[i]));
    }
    out.push_back(Value::Tuple(std::move(row)));
  }
  return Value::Bag(std::move(out));
}

StatusOr<Value> Interpreter::DictUnion(const Value& a, const Value& b) {
  // Dictionary-tree union: tuples merge attribute-wise; *fun attributes are
  // dictionaries (bags of label/value pairs, or closures reduced to bags is
  // not possible symbolically, so closures union via bag concatenation when
  // both sides are bags); *child attributes recurse.
  if (a.is_bag() && b.is_bag()) {
    std::vector<Value> elems = a.AsBag().elems;
    for (const auto& x : b.AsBag().elems) elems.push_back(x);
    return Value::Bag(std::move(elems));
  }
  if (a.is_tuple() && b.is_tuple()) {
    const auto& fa = a.AsTuple().fields;
    const auto& fb = b.AsTuple().fields;
    if (fa.size() != fb.size()) {
      return Status::TypeError("DictTreeUnion of different tuple widths");
    }
    TupleValue out;
    for (size_t i = 0; i < fa.size(); ++i) {
      if (fa[i].first != fb[i].first) {
        return Status::TypeError("DictTreeUnion attribute mismatch");
      }
      // A child dictionary tree is wrapped in a singleton bag; merge the
      // wrapped trees rather than concatenating the wrappers.
      const Value& va = fa[i].second;
      const Value& vb = fb[i].second;
      bool child_wrapper = va.is_bag() && vb.is_bag() &&
                           va.AsBag().elems.size() == 1 &&
                           vb.AsBag().elems.size() == 1 &&
                           va.AsBag().elems[0].is_tuple();
      if (child_wrapper) {
        TRANCE_ASSIGN_OR_RETURN(
            Value merged, DictUnion(va.AsBag().elems[0], vb.AsBag().elems[0]));
        out.fields.emplace_back(fa[i].first,
                                Value::Bag({std::move(merged)}));
      } else {
        TRANCE_ASSIGN_OR_RETURN(Value merged, DictUnion(va, vb));
        out.fields.emplace_back(fa[i].first, std::move(merged));
      }
    }
    return Value::Tuple(std::move(out));
  }
  return Status::TypeError("DictTreeUnion over unsupported value shapes");
}

StatusOr<Value> Interpreter::Eval(const ExprPtr& e, const EnvPtr& env) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kConst:
      return Value::FromConst(e->const_value());
    case K::kVarRef: {
      const Value* v = Env::Find(env, e->var_name());
      if (v == nullptr) {
        return Status::KeyError("unbound variable " + e->var_name());
      }
      return *v;
    }
    case K::kProj: {
      TRANCE_ASSIGN_OR_RETURN(Value base, Eval(e->child(0), env));
      return base.Field(e->attr());
    }
    case K::kTupleCtor: {
      TupleValue t;
      t.fields.reserve(e->fields().size());
      for (const auto& f : e->fields()) {
        TRANCE_ASSIGN_OR_RETURN(Value v, Eval(f.expr, env));
        t.fields.emplace_back(f.name, std::move(v));
      }
      return Value::Tuple(std::move(t));
    }
    case K::kEmptyBag:
      return Value::EmptyBag();
    case K::kSingleton: {
      TRANCE_ASSIGN_OR_RETURN(Value v, Eval(e->child(0), env));
      return Value::Bag({std::move(v)});
    }
    case K::kGet: {
      TRANCE_ASSIGN_OR_RETURN(Value v, Eval(e->child(0), env));
      if (!v.is_bag()) return Status::TypeError("get() on non-bag");
      if (v.AsBag().elems.size() == 1) return v.AsBag().elems[0];
      // The memoized type of the get() node is the element type itself.
      TypePtr t = types_ == nullptr ? nullptr : types_->TypeOf(e.get());
      return DefaultValue(t);
    }
    case K::kForUnion: {
      TRANCE_ASSIGN_OR_RETURN(Value dom, Eval(e->child(0), env));
      if (!dom.is_bag()) return Status::TypeError("for over non-bag");
      std::vector<Value> out;
      for (const auto& x : dom.AsBag().elems) {
        EnvPtr inner = Env::Bind(env, e->var_name(), x);
        TRANCE_ASSIGN_OR_RETURN(Value body, Eval(e->child(1), inner));
        if (!body.is_bag()) {
          return Status::TypeError("for-union body is not a bag");
        }
        for (const auto& y : body.AsBag().elems) out.push_back(y);
      }
      return Value::Bag(std::move(out));
    }
    case K::kUnion: {
      TRANCE_ASSIGN_OR_RETURN(Value a, Eval(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(Value b, Eval(e->child(1), env));
      if (!a.is_bag() || !b.is_bag()) {
        return Status::TypeError("union of non-bags");
      }
      std::vector<Value> out = a.AsBag().elems;
      for (const auto& y : b.AsBag().elems) out.push_back(y);
      return Value::Bag(std::move(out));
    }
    case K::kLet: {
      TRANCE_ASSIGN_OR_RETURN(Value v, Eval(e->child(0), env));
      EnvPtr inner = Env::Bind(env, e->var_name(), std::move(v));
      return Eval(e->child(1), inner);
    }
    case K::kIfThen: {
      TRANCE_ASSIGN_OR_RETURN(Value c, Eval(e->child(0), env));
      if (!c.is_bool()) return Status::TypeError("if on non-bool");
      if (c.AsBool()) return Eval(e->child(1), env);
      if (e->num_children() == 3) return Eval(e->child(2), env);
      return Value::EmptyBag();
    }
    case K::kPrimOp: {
      TRANCE_ASSIGN_OR_RETURN(Value a, Eval(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(Value b, Eval(e->child(1), env));
      if ((!a.is_int() && !a.is_real()) || (!b.is_int() && !b.is_real())) {
        return Status::TypeError("arithmetic on non-numeric values");
      }
      bool int_result = a.is_int() && b.is_int() &&
                        e->prim_op() != PrimOpKind::kDiv;
      double x = a.AsNumber(), y = b.AsNumber();
      double r = 0;
      switch (e->prim_op()) {
        case PrimOpKind::kAdd:
          r = x + y;
          break;
        case PrimOpKind::kSub:
          r = x - y;
          break;
        case PrimOpKind::kMul:
          r = x * y;
          break;
        case PrimOpKind::kDiv:
          if (y == 0) return Status::Invalid("division by zero");
          r = x / y;
          break;
      }
      return int_result ? Value::Int(static_cast<int64_t>(r)) : Value::Real(r);
    }
    case K::kCmp: {
      TRANCE_ASSIGN_OR_RETURN(Value a, Eval(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(Value b, Eval(e->child(1), env));
      switch (e->cmp_op()) {
        case CmpOpKind::kEq:
          return Value::Bool(a == b);
        case CmpOpKind::kNe:
          return Value::Bool(!(a == b));
        case CmpOpKind::kLt:
          return Value::Bool(ValueLess(a, b));
        case CmpOpKind::kLe:
          return Value::Bool(!ValueLess(b, a));
        case CmpOpKind::kGt:
          return Value::Bool(ValueLess(b, a));
        case CmpOpKind::kGe:
          return Value::Bool(!ValueLess(a, b));
      }
      return Status::Internal("bad cmp op");
    }
    case K::kBoolOp: {
      TRANCE_ASSIGN_OR_RETURN(Value a, Eval(e->child(0), env));
      if (!a.is_bool()) return Status::TypeError("bool op on non-bool");
      if (e->bool_op() == BoolOpKind::kAnd && !a.AsBool()) {
        return Value::Bool(false);
      }
      if (e->bool_op() == BoolOpKind::kOr && a.AsBool()) {
        return Value::Bool(true);
      }
      TRANCE_ASSIGN_OR_RETURN(Value b, Eval(e->child(1), env));
      if (!b.is_bool()) return Status::TypeError("bool op on non-bool");
      return b;
    }
    case K::kNot: {
      TRANCE_ASSIGN_OR_RETURN(Value a, Eval(e->child(0), env));
      if (!a.is_bool()) return Status::TypeError("not on non-bool");
      return Value::Bool(!a.AsBool());
    }
    case K::kDedup: {
      TRANCE_ASSIGN_OR_RETURN(Value a, Eval(e->child(0), env));
      if (!a.is_bag()) return Status::TypeError("dedup on non-bag");
      std::unordered_map<Value, bool, ValueHash, ValueEq> seen;
      std::vector<Value> out;
      for (const auto& x : a.AsBag().elems) {
        if (seen.try_emplace(x, true).second) out.push_back(x);
      }
      return Value::Bag(std::move(out));
    }
    case K::kGroupBy: {
      TRANCE_ASSIGN_OR_RETURN(Value a, Eval(e->child(0), env));
      return EvalGroupBy(*e, a);
    }
    case K::kSumBy: {
      TRANCE_ASSIGN_OR_RETURN(Value a, Eval(e->child(0), env));
      return EvalSumBy(*e, a);
    }
    case K::kNewLabel: {
      std::vector<std::pair<std::string, Value>> params;
      params.reserve(e->fields().size());
      for (const auto& p : e->fields()) {
        TRANCE_ASSIGN_OR_RETURN(Value v, Eval(p.expr, env));
        params.emplace_back(p.name, std::move(v));
      }
      return Value::Label(std::move(params));
    }
    case K::kMatchLabel: {
      TRANCE_ASSIGN_OR_RETURN(Value l, Eval(e->child(0), env));
      if (!l.is_label()) return Status::TypeError("match on non-label");
      TupleValue params;
      for (const auto& [n, v] : l.AsLabel().params) {
        params.fields.emplace_back(n, v);
      }
      EnvPtr inner =
          Env::Bind(env, e->var_name(), Value::Tuple(std::move(params)));
      StatusOr<Value> body = Eval(e->child(1), inner);
      if (!body.ok() && body.status().code() == StatusCode::kKeyError) {
        // "If there is no such x, F returns the empty bag."
        return Value::EmptyBag();
      }
      return body;
    }
    case K::kLookup: {
      TRANCE_ASSIGN_OR_RETURN(Value d, Eval(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(Value l, Eval(e->child(1), env));
      return ApplyDict(d, l);
    }
    case K::kMatLookup: {
      TRANCE_ASSIGN_OR_RETURN(Value d, Eval(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(Value l, Eval(e->child(1), env));
      return ApplyDict(d, l);
    }
    case K::kLambda:
      return Value::Closure({e->var_name(), e->child(0), env});
    case K::kDictTreeUnion: {
      TRANCE_ASSIGN_OR_RETURN(Value a, Eval(e->child(0), env));
      TRANCE_ASSIGN_OR_RETURN(Value b, Eval(e->child(1), env));
      return DictUnion(a, b);
    }
    case K::kBagToDict:
      return Eval(e->child(0), env);
  }
  return Status::Internal("unhandled expression kind in interpreter");
}

StatusOr<std::map<std::string, Value>> Interpreter::EvalProgram(
    const Program& program, const std::map<std::string, Value>& inputs) {
  EnvPtr env = Env::Empty();
  std::map<std::string, Value> out;
  for (const auto& in : program.inputs) {
    auto it = inputs.find(in.name);
    if (it == inputs.end()) {
      return Status::Invalid("missing input relation " + in.name);
    }
    env = Env::Bind(env, in.name, it->second);
  }
  for (const auto& a : program.assignments) {
    TRANCE_ASSIGN_OR_RETURN(Value v, Eval(a.expr, env));
    env = Env::Bind(env, a.var, v);
    out[a.var] = std::move(v);
  }
  return out;
}

}  // namespace nrc
}  // namespace trance
