#include "nrc/builder.h"

namespace trance {
namespace nrc {
namespace dsl {

ExprPtr V(const std::string& path) {
  size_t pos = path.find('.');
  if (pos == std::string::npos) return Expr::Var(path);
  ExprPtr e = Expr::Var(path.substr(0, pos));
  while (pos != std::string::npos) {
    size_t next = path.find('.', pos + 1);
    std::string attr = next == std::string::npos
                           ? path.substr(pos + 1)
                           : path.substr(pos + 1, next - pos - 1);
    e = Expr::Proj(std::move(e), attr);
    pos = next;
  }
  return e;
}

TypePtr Tu(std::vector<std::pair<std::string, TypePtr>> fields) {
  std::vector<Field> fs;
  fs.reserve(fields.size());
  for (auto& [n, t] : fields) fs.push_back({std::move(n), std::move(t)});
  return Type::Tuple(std::move(fs));
}

TypePtr BagTu(std::vector<std::pair<std::string, TypePtr>> fields) {
  return Type::Bag(Tu(std::move(fields)));
}

}  // namespace dsl
}  // namespace nrc
}  // namespace trance
