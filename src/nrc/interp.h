// Reference interpreter for NRC / NRC^{Lbl+lambda} over nested values.
//
// This is the semantic oracle: every compilation route (standard, shredded,
// skew-aware) is property-tested against it. It evaluates centrally and
// recursively, with no regard for distribution.
#ifndef TRANCE_NRC_INTERP_H_
#define TRANCE_NRC_INTERP_H_

#include <map>
#include <string>

#include "nrc/expr.h"
#include "nrc/typecheck.h"
#include "nrc/value.h"
#include "util/status.h"

namespace trance {
namespace nrc {

/// Returns the "default value" of a type (what get() yields on a non-
/// singleton bag).
Value DefaultValue(const TypePtr& type);

/// NRC interpreter. An optional Typechecker supplies per-node types so that
/// get() can produce typed default values; without it, get() on a
/// non-singleton bag returns Int(0).
class Interpreter {
 public:
  Interpreter() = default;
  /// `types` may be nullptr; if given it must have checked the same nodes.
  explicit Interpreter(const Typechecker* types) : types_(types) {}

  /// Evaluates `e` under environment `env`.
  StatusOr<Value> Eval(const ExprPtr& e, const EnvPtr& env);

  /// Runs a program: binds `inputs`, evaluates each assignment in order, and
  /// returns the value of every assigned variable.
  StatusOr<std::map<std::string, Value>> EvalProgram(
      const Program& program, const std::map<std::string, Value>& inputs);

  /// Applies a dictionary value to a label: closures are beta-reduced;
  /// bags of <label, value> pairs are scanned (union of matching bags).
  StatusOr<Value> ApplyDict(const Value& dict, const Value& label);

 private:
  StatusOr<Value> EvalGroupBy(const Expr& e, const Value& input);
  StatusOr<Value> EvalSumBy(const Expr& e, const Value& input);
  StatusOr<Value> DictUnion(const Value& a, const Value& b);

  const Typechecker* types_ = nullptr;
};

}  // namespace nrc
}  // namespace trance

#endif  // TRANCE_NRC_INTERP_H_
