#include "nrc/printer.h"

#include <sstream>

#include "util/strings.h"

namespace trance {
namespace nrc {

namespace {

std::string Ind(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

std::string Print(const ExprPtr& e, int indent);

std::string PrintConst(const ConstValue& c) {
  switch (c.kind) {
    case ScalarKind::kInt:
      return std::to_string(std::get<int64_t>(c.v));
    case ScalarKind::kDate:
      return "date:" + std::to_string(std::get<int64_t>(c.v));
    case ScalarKind::kReal:
      return FormatDouble(std::get<double>(c.v), 4);
    case ScalarKind::kString:
      return "\"" + std::get<std::string>(c.v) + "\"";
    case ScalarKind::kBool:
      return std::get<bool>(c.v) ? "true" : "false";
  }
  return "?";
}

std::string Print(const ExprPtr& e, int indent) {
  using K = Expr::Kind;
  switch (e->kind()) {
    case K::kConst:
      return PrintConst(e->const_value());
    case K::kVarRef:
      return e->var_name();
    case K::kProj:
      return Print(e->child(0), indent) + "." + e->attr();
    case K::kTupleCtor: {
      std::vector<std::string> parts;
      for (const auto& f : e->fields()) {
        parts.push_back(f.name + " := " + Print(f.expr, indent + 1));
      }
      return "<" + Join(parts, ", ") + ">";
    }
    case K::kEmptyBag:
      return "{}";
    case K::kSingleton:
      return "{ " + Print(e->child(0), indent) + " }";
    case K::kGet:
      return "get(" + Print(e->child(0), indent) + ")";
    case K::kForUnion:
      return "for " + e->var_name() + " in " + Print(e->child(0), indent) +
             " union\n" + Ind(indent + 1) + Print(e->child(1), indent + 1);
    case K::kUnion:
      return Print(e->child(0), indent) + " (+) " + Print(e->child(1), indent);
    case K::kLet:
      return "let " + e->var_name() + " := " + Print(e->child(0), indent) +
             " in\n" + Ind(indent) + Print(e->child(1), indent);
    case K::kIfThen: {
      std::string s = "if " + Print(e->child(0), indent) + " then " +
                      Print(e->child(1), indent + 1);
      if (e->num_children() == 3) {
        s += " else " + Print(e->child(2), indent + 1);
      }
      return s;
    }
    case K::kPrimOp:
      return "(" + Print(e->child(0), indent) + " " +
             PrimOpName(e->prim_op()) + " " + Print(e->child(1), indent) + ")";
    case K::kCmp:
      return Print(e->child(0), indent) + " " + CmpOpName(e->cmp_op()) + " " +
             Print(e->child(1), indent);
    case K::kBoolOp:
      return "(" + Print(e->child(0), indent) + " " +
             BoolOpName(e->bool_op()) + " " + Print(e->child(1), indent) + ")";
    case K::kNot:
      return "!(" + Print(e->child(0), indent) + ")";
    case K::kDedup:
      return "dedup(" + Print(e->child(0), indent) + ")";
    case K::kGroupBy:
      return "groupBy_{" + Join(e->keys(), ",") + "}(" +
             Print(e->child(0), indent + 1) + ")";
    case K::kSumBy: {
      // values() carries the summed attributes; keys() the grouping ones.
      const Expr& ex = *e;
      std::string vals = Join(ex.values(), ",");
      return "sumBy^{" + vals + "}_{" + Join(ex.keys(), ",") + "}(" +
             Print(e->child(0), indent + 1) + ")";
    }
    case K::kNewLabel: {
      std::vector<std::string> parts;
      for (const auto& f : e->fields()) {
        parts.push_back(f.name + " := " + Print(f.expr, indent));
      }
      return "NewLabel(" + Join(parts, ", ") + ")";
    }
    case K::kMatchLabel:
      return "match " + Print(e->child(0), indent) + " = NewLabel(" +
             e->var_name() + ") then\n" + Ind(indent + 1) +
             Print(e->child(1), indent + 1);
    case K::kLookup:
      return "Lookup(" + Print(e->child(0), indent) + ", " +
             Print(e->child(1), indent) + ")";
    case K::kMatLookup:
      return "MatLookup(" + Print(e->child(0), indent) + ", " +
             Print(e->child(1), indent) + ")";
    case K::kLambda:
      return "\\" + e->var_name() + ". " + Print(e->child(0), indent);
    case K::kDictTreeUnion:
      return Print(e->child(0), indent) + " DictTreeUnion " +
             Print(e->child(1), indent);
    case K::kBagToDict:
      return "BagToDict(" + Print(e->child(0), indent) + ")";
  }
  return "?";
}

}  // namespace

std::string PrintExpr(const ExprPtr& e, int indent) {
  return Print(e, indent);
}

std::string PrintProgram(const Program& program) {
  std::ostringstream os;
  for (const auto& in : program.inputs) {
    os << "input " << in.name << " : " << in.type->ToString() << "\n";
  }
  for (const auto& a : program.assignments) {
    os << a.var << " <= " << PrintExpr(a.expr, 1) << "\n";
  }
  return os.str();
}

}  // namespace nrc
}  // namespace trance
