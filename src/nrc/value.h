// Nested runtime values for the NRC reference interpreter, the correctness
// oracle for every compilation route.
//
// Values include the NRC^{Lbl+lambda} citizens: labels (tuples of captured
// flat values with structural equality) and closures (symbolic dictionaries,
// i.e. lambda terms over labels).
//
// Label semantics: a label is identified by its named captured parameters.
// Following the paper's refinement that NewLabel retains only the relevant
// attributes, a NewLabel over a *single, label-valued* parameter collapses to
// that label. This makes the labels flowing through a shredded query line up
// with the labels minted when the input was shredded, which is what makes
// unshredding joins (and domain-eliminated dictionaries) match up.
#ifndef TRANCE_NRC_VALUE_H_
#define TRANCE_NRC_VALUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "nrc/expr.h"
#include "nrc/type.h"
#include "util/status.h"

namespace trance {
namespace nrc {

class Value;

/// Named-field tuple.
struct TupleValue {
  std::vector<std::pair<std::string, Value>> fields;
};

/// Bag of values (multiset; order is not semantically meaningful).
struct BagValue {
  std::vector<Value> elems;
};

/// Label: named captured flat parameters, structural identity.
struct LabelValue {
  std::vector<std::pair<std::string, Value>> params;
};

/// Interpreter environment: immutable chain of bindings.
class Env;
using EnvPtr = std::shared_ptr<const Env>;

/// Symbolic dictionary: a lambda over labels, closed over an environment.
struct ClosureValue {
  std::string var;
  ExprPtr body;
  EnvPtr env;
};

/// A nested NRC value.
class Value {
 public:
  using Repr =
      std::variant<int64_t, double, std::string, bool,
                   std::shared_ptr<const TupleValue>,
                   std::shared_ptr<const BagValue>,
                   std::shared_ptr<const LabelValue>,
                   std::shared_ptr<const ClosureValue>>;

  Value() : repr_(int64_t{0}) {}

  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value Str(std::string v) { return Value(Repr(std::move(v))); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Tuple(TupleValue t) {
    return Value(Repr(std::make_shared<const TupleValue>(std::move(t))));
  }
  static Value Tuple(std::vector<std::pair<std::string, Value>> fields) {
    return Tuple(TupleValue{std::move(fields)});
  }
  static Value Bag(BagValue b) {
    return Value(Repr(std::make_shared<const BagValue>(std::move(b))));
  }
  static Value Bag(std::vector<Value> elems) {
    return Bag(BagValue{std::move(elems)});
  }
  static Value EmptyBag() { return Bag(BagValue{}); }
  /// Creates a label; applies the single-label collapse rule.
  static Value Label(std::vector<std::pair<std::string, Value>> params);
  static Value Closure(ClosureValue c) {
    return Value(Repr(std::make_shared<const ClosureValue>(std::move(c))));
  }
  static Value FromConst(const ConstValue& c);

  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_real() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_tuple() const {
    return std::holds_alternative<std::shared_ptr<const TupleValue>>(repr_);
  }
  bool is_bag() const {
    return std::holds_alternative<std::shared_ptr<const BagValue>>(repr_);
  }
  bool is_label() const {
    return std::holds_alternative<std::shared_ptr<const LabelValue>>(repr_);
  }
  bool is_closure() const {
    return std::holds_alternative<std::shared_ptr<const ClosureValue>>(repr_);
  }

  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsReal() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  bool AsBool() const { return std::get<bool>(repr_); }
  const TupleValue& AsTuple() const {
    return *std::get<std::shared_ptr<const TupleValue>>(repr_);
  }
  const BagValue& AsBag() const {
    return *std::get<std::shared_ptr<const BagValue>>(repr_);
  }
  const LabelValue& AsLabel() const {
    return *std::get<std::shared_ptr<const LabelValue>>(repr_);
  }
  const ClosureValue& AsClosure() const {
    return *std::get<std::shared_ptr<const ClosureValue>>(repr_);
  }

  /// Numeric coercion: int or real as double.
  double AsNumber() const;

  /// Field lookup in a tuple value; KeyError if absent.
  StatusOr<Value> Field(const std::string& name) const;
  /// Field lookup that aborts on failure (internal use on checked paths).
  const Value& FieldOrDie(const std::string& name) const;

  std::string ToString() const;
  uint64_t Hash() const;

  friend bool operator==(const Value& a, const Value& b);
  /// Total order for canonicalizing bags (multiset comparison in tests).
  friend bool ValueLess(const Value& a, const Value& b);

 private:
  explicit Value(Repr repr) : repr_(std::move(repr)) {}
  Repr repr_;
};

bool operator==(const Value& a, const Value& b);
inline bool operator!=(const Value& a, const Value& b) { return !(a == b); }
bool ValueLess(const Value& a, const Value& b);

/// Multiset equality of two bags (sorts canonical copies).
bool BagEquals(const Value& a, const Value& b);
/// Recursive multiset-aware equality: bags compare as multisets at every
/// nesting level. This is the equality the oracle tests use.
bool DeepBagEquals(const Value& a, const Value& b);
/// Canonicalizes a value: recursively sorts all bags.
Value Canonicalize(const Value& v);

/// Multiset-aware equality that snaps reals to ~10 significant digits before
/// comparing: distributed aggregation sums in a different order than the
/// sequential oracle, so totals differ in the last bits.
bool ApproxDeepBagEquals(const Value& a, const Value& b);

/// Immutable environment chain.
class Env {
 public:
  static EnvPtr Empty() { return nullptr; }
  static EnvPtr Bind(EnvPtr parent, std::string name, Value v) {
    return std::make_shared<const Env>(std::move(parent), std::move(name),
                                       std::move(v));
  }

  Env(EnvPtr parent, std::string name, Value v)
      : parent_(std::move(parent)), name_(std::move(name)), v_(std::move(v)) {}

  static const Value* Find(const EnvPtr& env, const std::string& name) {
    for (const Env* e = env.get(); e != nullptr; e = e->parent_.get()) {
      if (e->name_ == name) return &e->v_;
    }
    return nullptr;
  }

 private:
  EnvPtr parent_;
  std::string name_;
  Value v_;
};

struct ValueHash {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a == b; }
};

}  // namespace nrc
}  // namespace trance

#endif  // TRANCE_NRC_VALUE_H_
