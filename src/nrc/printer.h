// Pretty-printer for NRC expressions and programs, in the paper's notation.
#ifndef TRANCE_NRC_PRINTER_H_
#define TRANCE_NRC_PRINTER_H_

#include <string>

#include "nrc/expr.h"

namespace trance {
namespace nrc {

/// Renders an expression in the paper's surface syntax (for-union,
/// sumBy^{v}_{k}, NewLabel(...), match, ...). `indent` is the starting
/// indentation depth.
std::string PrintExpr(const ExprPtr& e, int indent = 0);

/// Renders a whole program as a sequence of `var <= expr` assignments.
std::string PrintProgram(const Program& program);

}  // namespace nrc
}  // namespace trance

#endif  // TRANCE_NRC_PRINTER_H_
