#include "nrc/value.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"
#include "util/strings.h"

namespace trance {
namespace nrc {

Value Value::Label(std::vector<std::pair<std::string, Value>> params) {
  // Single-label collapse rule (see header).
  if (params.size() == 1 && params[0].second.is_label()) {
    return params[0].second;
  }
  LabelValue l;
  l.params = std::move(params);
  return Value(Repr(std::make_shared<const LabelValue>(std::move(l))));
}

Value Value::FromConst(const ConstValue& c) {
  switch (c.kind) {
    case ScalarKind::kInt:
    case ScalarKind::kDate:
      return Int(std::get<int64_t>(c.v));
    case ScalarKind::kReal:
      return Real(std::get<double>(c.v));
    case ScalarKind::kString:
      return Str(std::get<std::string>(c.v));
    case ScalarKind::kBool:
      return Bool(std::get<bool>(c.v));
  }
  TRANCE_CHECK(false, "bad ConstValue");
  return Value();
}

double Value::AsNumber() const {
  if (is_int()) return static_cast<double>(AsInt());
  TRANCE_CHECK(is_real(), "AsNumber on non-numeric");
  return AsReal();
}

StatusOr<Value> Value::Field(const std::string& name) const {
  if (!is_tuple()) {
    return Status::TypeError("field access ." + name + " on non-tuple value " +
                             ToString());
  }
  for (const auto& [fname, fv] : AsTuple().fields) {
    if (fname == name) return fv;
  }
  return Status::KeyError("no field '" + name + "' in " + ToString());
}

const Value& Value::FieldOrDie(const std::string& name) const {
  TRANCE_CHECK(is_tuple(), "FieldOrDie on non-tuple");
  for (const auto& [fname, fv] : AsTuple().fields) {
    if (fname == name) return fv;
  }
  TRANCE_CHECK(false, "FieldOrDie: missing field " + name);
  static Value dummy;
  return dummy;
}

namespace {
int VariantRank(const Value& v) {
  if (v.is_int()) return 0;
  if (v.is_real()) return 1;
  if (v.is_string()) return 2;
  if (v.is_bool()) return 3;
  if (v.is_tuple()) return 4;
  if (v.is_bag()) return 5;
  if (v.is_label()) return 6;
  return 7;
}
}  // namespace

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  if (is_real()) return FormatDouble(AsReal(), 4);
  if (is_string()) return "\"" + AsString() + "\"";
  if (is_bool()) return AsBool() ? "true" : "false";
  if (is_tuple()) {
    std::vector<std::string> parts;
    for (const auto& [n, fv] : AsTuple().fields) {
      parts.push_back(n + " := " + fv.ToString());
    }
    return "<" + Join(parts, ", ") + ">";
  }
  if (is_bag()) {
    std::vector<std::string> parts;
    for (const auto& e : AsBag().elems) parts.push_back(e.ToString());
    return "{" + Join(parts, ", ") + "}";
  }
  if (is_label()) {
    std::vector<std::string> parts;
    for (const auto& [n, pv] : AsLabel().params) {
      parts.push_back(n + "=" + pv.ToString());
    }
    return "Label(" + Join(parts, ", ") + ")";
  }
  return "<closure>";
}

uint64_t Value::Hash() const {
  if (is_int()) return Mix64(static_cast<uint64_t>(AsInt()) ^ 0x11);
  if (is_real()) return HashDouble(AsReal());
  if (is_string()) return HashString(AsString());
  if (is_bool()) return Mix64(AsBool() ? 0xB001u : 0xB000u);
  if (is_tuple()) {
    uint64_t h = 0x7001;
    for (const auto& [n, fv] : AsTuple().fields) {
      h = HashCombine(h, HashString(n));
      h = HashCombine(h, fv.Hash());
    }
    return h;
  }
  if (is_bag()) {
    // Order-insensitive combine so equal multisets hash equal.
    uint64_t h = 0xBA6;
    for (const auto& e : AsBag().elems) h += Mix64(e.Hash());
    return Mix64(h);
  }
  if (is_label()) {
    uint64_t h = 0x1AB;
    for (const auto& [n, pv] : AsLabel().params) {
      h = HashCombine(h, HashString(n));
      h = HashCombine(h, pv.Hash());
    }
    return h;
  }
  return 0xC705;  // closures: identity-free constant (never keyed)
}

bool operator==(const Value& a, const Value& b) {
  if (VariantRank(a) != VariantRank(b)) {
    // int/real numeric cross-comparison.
    if ((a.is_int() || a.is_real()) && (b.is_int() || b.is_real())) {
      return a.AsNumber() == b.AsNumber();
    }
    return false;
  }
  if (a.is_int()) return a.AsInt() == b.AsInt();
  if (a.is_real()) return a.AsReal() == b.AsReal();
  if (a.is_string()) return a.AsString() == b.AsString();
  if (a.is_bool()) return a.AsBool() == b.AsBool();
  if (a.is_tuple()) {
    const auto& fa = a.AsTuple().fields;
    const auto& fb = b.AsTuple().fields;
    if (fa.size() != fb.size()) return false;
    for (size_t i = 0; i < fa.size(); ++i) {
      if (fa[i].first != fb[i].first || !(fa[i].second == fb[i].second)) {
        return false;
      }
    }
    return true;
  }
  if (a.is_bag()) {
    // Bag equality at this level is *sequence* equality; use BagEquals /
    // DeepBagEquals for multiset semantics.
    const auto& ea = a.AsBag().elems;
    const auto& eb = b.AsBag().elems;
    if (ea.size() != eb.size()) return false;
    for (size_t i = 0; i < ea.size(); ++i) {
      if (!(ea[i] == eb[i])) return false;
    }
    return true;
  }
  if (a.is_label()) {
    const auto& pa = a.AsLabel().params;
    const auto& pb = b.AsLabel().params;
    if (pa.size() != pb.size()) return false;
    for (size_t i = 0; i < pa.size(); ++i) {
      if (pa[i].first != pb[i].first || !(pa[i].second == pb[i].second)) {
        return false;
      }
    }
    return true;
  }
  return false;  // closures never equal
}

bool ValueLess(const Value& a, const Value& b) {
  int ra = VariantRank(a), rb = VariantRank(b);
  if (ra != rb) {
    if ((a.is_int() || a.is_real()) && (b.is_int() || b.is_real())) {
      return a.AsNumber() < b.AsNumber();
    }
    return ra < rb;
  }
  if (a.is_int()) return a.AsInt() < b.AsInt();
  if (a.is_real()) return a.AsReal() < b.AsReal();
  if (a.is_string()) return a.AsString() < b.AsString();
  if (a.is_bool()) return a.AsBool() < b.AsBool();
  if (a.is_tuple()) {
    const auto& fa = a.AsTuple().fields;
    const auto& fb = b.AsTuple().fields;
    size_t n = std::min(fa.size(), fb.size());
    for (size_t i = 0; i < n; ++i) {
      if (fa[i].first != fb[i].first) return fa[i].first < fb[i].first;
      if (ValueLess(fa[i].second, fb[i].second)) return true;
      if (ValueLess(fb[i].second, fa[i].second)) return false;
    }
    return fa.size() < fb.size();
  }
  if (a.is_bag()) {
    const auto& ea = a.AsBag().elems;
    const auto& eb = b.AsBag().elems;
    size_t n = std::min(ea.size(), eb.size());
    for (size_t i = 0; i < n; ++i) {
      if (ValueLess(ea[i], eb[i])) return true;
      if (ValueLess(eb[i], ea[i])) return false;
    }
    return ea.size() < eb.size();
  }
  if (a.is_label()) {
    const auto& pa = a.AsLabel().params;
    const auto& pb = b.AsLabel().params;
    size_t n = std::min(pa.size(), pb.size());
    for (size_t i = 0; i < n; ++i) {
      if (pa[i].first != pb[i].first) return pa[i].first < pb[i].first;
      if (ValueLess(pa[i].second, pb[i].second)) return true;
      if (ValueLess(pb[i].second, pa[i].second)) return false;
    }
    return pa.size() < pb.size();
  }
  return false;
}

Value Canonicalize(const Value& v) {
  if (v.is_tuple()) {
    TupleValue t;
    t.fields.reserve(v.AsTuple().fields.size());
    for (const auto& [n, fv] : v.AsTuple().fields) {
      t.fields.emplace_back(n, Canonicalize(fv));
    }
    return Value::Tuple(std::move(t));
  }
  if (v.is_bag()) {
    std::vector<Value> elems;
    elems.reserve(v.AsBag().elems.size());
    for (const auto& e : v.AsBag().elems) elems.push_back(Canonicalize(e));
    std::sort(elems.begin(), elems.end(), ValueLess);
    return Value::Bag(std::move(elems));
  }
  return v;
}

bool BagEquals(const Value& a, const Value& b) {
  TRANCE_CHECK(a.is_bag() && b.is_bag(), "BagEquals on non-bags");
  if (a.AsBag().elems.size() != b.AsBag().elems.size()) return false;
  return Canonicalize(a) == Canonicalize(b);
}

bool DeepBagEquals(const Value& a, const Value& b) {
  return Canonicalize(a) == Canonicalize(b);
}

namespace {
double SnapReal(double r) {
  if (r == 0.0 || !std::isfinite(r)) return r;
  double mag = std::ceil(std::log10(std::fabs(r)));
  double scale = std::pow(10.0, 10.0 - mag);
  return std::round(r * scale) / scale;
}

Value SnapReals(const Value& v) {
  if (v.is_real()) return Value::Real(SnapReal(v.AsReal()));
  if (v.is_tuple()) {
    TupleValue t;
    for (const auto& [n, fv] : v.AsTuple().fields) {
      t.fields.emplace_back(n, SnapReals(fv));
    }
    return Value::Tuple(std::move(t));
  }
  if (v.is_bag()) {
    std::vector<Value> elems;
    for (const auto& e : v.AsBag().elems) elems.push_back(SnapReals(e));
    return Value::Bag(std::move(elems));
  }
  return v;
}
}  // namespace

bool ApproxDeepBagEquals(const Value& a, const Value& b) {
  return Canonicalize(SnapReals(a)) == Canonicalize(SnapReals(b));
}

}  // namespace nrc
}  // namespace trance
