// NRC abstract syntax (paper Fig. 1) extended with the NRC^{Lbl+lambda}
// constructs of Section 4 (NewLabel / label match / Lookup / MatLookup /
// lambda / DictTreeUnion / BagToDict).
//
// Expressions are immutable and shared (ExprPtr). A Program is a sequence of
// assignments `var <= expr`, as in the paper's P ::= (var <= e)*; the
// materialization phase of the shredded pipeline emits such sequences.
#ifndef TRANCE_NRC_EXPR_H_
#define TRANCE_NRC_EXPR_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "nrc/type.h"
#include "util/status.h"

namespace trance {
namespace nrc {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Scalar constant payload. Dates are day numbers (int64) with kDate kind.
struct ConstValue {
  ScalarKind kind;
  std::variant<int64_t, double, std::string, bool> v;

  static ConstValue Int(int64_t i) { return {ScalarKind::kInt, i}; }
  static ConstValue Real(double d) { return {ScalarKind::kReal, d}; }
  static ConstValue Str(std::string s) {
    return {ScalarKind::kString, std::move(s)};
  }
  static ConstValue Bool(bool b) { return {ScalarKind::kBool, b}; }
  static ConstValue Date(int64_t day) { return {ScalarKind::kDate, day}; }
};

enum class PrimOpKind { kAdd, kSub, kMul, kDiv };
enum class CmpOpKind { kEq, kNe, kLt, kLe, kGt, kGe };
enum class BoolOpKind { kAnd, kOr };

const char* PrimOpName(PrimOpKind op);
const char* CmpOpName(CmpOpKind op);
const char* BoolOpName(BoolOpKind op);

/// A named field expression inside a tuple constructor or NewLabel.
struct NamedExpr {
  std::string name;
  ExprPtr expr;
};

/// Immutable NRC expression node. Construct via the static factories (they
/// check arity/shape invariants; full typing is `Typecheck`'s job).
class Expr {
 public:
  enum class Kind {
    // --- NRC core (Fig. 1) ---
    kConst,       // scalar constant
    kVarRef,      // variable reference
    kProj,        // e.a
    kTupleCtor,   // <a1 := e1, ..., an := en>
    kEmptyBag,    // {} of a declared bag type
    kSingleton,   // {e}
    kGet,         // get(e): only element of a singleton bag
    kForUnion,    // for x in e1 union e2
    kUnion,       // e1 (+) e2
    kLet,         // let x := e1 in e2
    kIfThen,      // if cond then e1 [else e2]
    kPrimOp,      // e1 op e2 on scalars
    kCmp,         // e1 relop e2
    kBoolOp,      // cond1 and/or cond2
    kNot,         // not cond
    kDedup,       // dedup(e), e a flat bag
    kGroupBy,     // groupBy_key(e)
    kSumBy,       // sumBy^value_key(e)
    // --- NRC^{Lbl+lambda} (Section 4) ---
    kNewLabel,     // NewLabel(a1 := e1, ...): label capturing flat values
    kMatchLabel,   // match e_lbl = NewLabel(x) then body (x bound to params)
    kLookup,       // Lookup(e_dict, e_lbl): apply symbolic dictionary
    kMatLookup,    // MatLookup(e_bag, e_lbl): lookup in materialized dict
    kLambda,       // lambda l. e : Label -> Bag(F)
    kDictTreeUnion,  // union of dictionary trees
    kBagToDict,    // cast bag of <label, ...> rows to dictionary
  };

  // --- Factories ---
  static ExprPtr Const(ConstValue c);
  static ExprPtr Var(std::string name);
  static ExprPtr Proj(ExprPtr e, std::string attr);
  static ExprPtr Tuple(std::vector<NamedExpr> fields);
  static ExprPtr EmptyBag(TypePtr bag_type);
  static ExprPtr Singleton(ExprPtr e);
  static ExprPtr Get(ExprPtr e);
  static ExprPtr ForUnion(std::string var, ExprPtr domain, ExprPtr body);
  static ExprPtr Union(ExprPtr a, ExprPtr b);
  static ExprPtr Let(std::string var, ExprPtr value, ExprPtr body);
  static ExprPtr IfThen(ExprPtr cond, ExprPtr then_e,
                        ExprPtr else_e = nullptr);
  static ExprPtr PrimOp(PrimOpKind op, ExprPtr a, ExprPtr b);
  static ExprPtr Cmp(CmpOpKind op, ExprPtr a, ExprPtr b);
  static ExprPtr BoolOp(BoolOpKind op, ExprPtr a, ExprPtr b);
  static ExprPtr Not(ExprPtr e);
  static ExprPtr Dedup(ExprPtr e);
  /// groupBy: groups tuples of `e` by `keys`; remaining attributes become a
  /// bag-valued attribute named `group_attr`.
  static ExprPtr GroupBy(std::vector<std::string> keys, ExprPtr e,
                         std::string group_attr = "group");
  /// sumBy: groups tuples of `e` by `keys` and sums each attribute in
  /// `values`.
  static ExprPtr SumBy(std::vector<std::string> keys,
                       std::vector<std::string> values, ExprPtr e);
  static ExprPtr NewLabel(std::vector<NamedExpr> params);
  /// match `label` = NewLabel(`var`) then `body`; `var` is bound to a tuple
  /// assembled from the label's captured parameters. `param_type`, when
  /// provided (the shredder knows it), is the tuple type of those parameters
  /// and enables static checking and plan lowering of the construct.
  static ExprPtr MatchLabel(ExprPtr label, std::string var, ExprPtr body,
                            TypePtr param_type = nullptr);
  static ExprPtr Lookup(ExprPtr dict, ExprPtr label);
  static ExprPtr MatLookup(ExprPtr mat_dict_bag, ExprPtr label);
  static ExprPtr Lambda(std::string var, ExprPtr body);
  static ExprPtr DictTreeUnion(ExprPtr a, ExprPtr b);
  static ExprPtr BagToDict(ExprPtr e);

  Kind kind() const { return kind_; }

  // --- Accessors (checked) ---
  const ConstValue& const_value() const;
  const std::string& var_name() const;   // kVarRef, kForUnion, kLet, kLambda,
                                          // kMatchLabel bound variable
  const std::string& attr() const;        // kProj attribute, kGroupBy group_attr
  const std::vector<NamedExpr>& fields() const;  // kTupleCtor, kNewLabel
  const TypePtr& declared_type() const;          // kEmptyBag
  /// Parameter tuple type annotation of kMatchLabel; may be nullptr.
  const TypePtr& match_param_type() const;
  const ExprPtr& child(size_t i) const;
  size_t num_children() const { return children_.size(); }
  const std::vector<std::string>& keys() const;    // kGroupBy/kSumBy
  const std::vector<std::string>& values() const;  // kSumBy summed attrs

  /// Free variables of this expression.
  std::set<std::string> FreeVars() const;

  /// Structural helpers used across compilation stages.
  bool IsComprehension() const {
    return kind_ == Kind::kForUnion || kind_ == Kind::kIfThen ||
           kind_ == Kind::kSingleton || kind_ == Kind::kUnion ||
           kind_ == Kind::kEmptyBag;
  }

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  void CollectFreeVars(std::set<std::string>* bound,
                       std::set<std::string>* out) const;

  Kind kind_;
  ConstValue const_value_{ScalarKind::kInt, int64_t{0}};
  std::string name_;                // var name / attr
  std::vector<NamedExpr> fields_;   // tuple ctor / new label params
  TypePtr declared_type_;           // empty bag
  std::vector<ExprPtr> children_;
  std::vector<std::string> keys_;
  std::vector<std::string> values_;
  PrimOpKind prim_op_ = PrimOpKind::kAdd;
  CmpOpKind cmp_op_ = CmpOpKind::kEq;
  BoolOpKind bool_op_ = BoolOpKind::kAnd;

 public:
  PrimOpKind prim_op() const { return prim_op_; }
  CmpOpKind cmp_op() const { return cmp_op_; }
  BoolOpKind bool_op() const { return bool_op_; }
};

/// One `var <= expr` assignment of a program.
struct Assignment {
  std::string var;
  ExprPtr expr;
};

/// A named input relation with its type (free variables of the program).
struct InputDecl {
  std::string name;
  TypePtr type;
};

/// P ::= (var <= e)*, plus declarations of the free input relations.
struct Program {
  std::vector<InputDecl> inputs;
  std::vector<Assignment> assignments;

  /// The final assignment is the program's result.
  const Assignment& result() const {
    TRANCE_CHECK(!assignments.empty(), "empty program");
    return assignments.back();
  }
};

/// Substitutes `replacement` for free occurrences of variable `var` in `e`.
ExprPtr Substitute(const ExprPtr& e, const std::string& var,
                   const ExprPtr& replacement);

}  // namespace nrc
}  // namespace trance

#endif  // TRANCE_NRC_EXPR_H_
