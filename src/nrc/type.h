// NRC type system (paper Fig. 1) plus the NRC^{Lbl+lambda} extensions of
// Section 4: Label and Dictionary (Label -> Bag(F)) types.
//
// Types are immutable and shared via TypePtr. The grammar:
//   T ::= S | Bag(F)                     (top-level values)
//   F ::= <a1:T, ..., an:T> | S          (bag contents: tuple or scalar)
//   S ::= int | real | string | bool | date
// plus Label and Label -> Bag(F) for the shredded pipeline.
#ifndef TRANCE_NRC_TYPE_H_
#define TRANCE_NRC_TYPE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace trance {
namespace nrc {

enum class ScalarKind { kInt, kReal, kString, kBool, kDate };

const char* ScalarKindName(ScalarKind k);

class Type;
using TypePtr = std::shared_ptr<const Type>;

/// A named tuple field.
struct Field {
  std::string name;
  TypePtr type;
};

/// Immutable NRC type node.
class Type {
 public:
  enum class Kind { kScalar, kTuple, kBag, kLabel, kDict };

  static TypePtr Int();
  static TypePtr Real();
  static TypePtr String();
  static TypePtr Bool();
  static TypePtr Date();
  static TypePtr Scalar(ScalarKind k);
  static TypePtr Tuple(std::vector<Field> fields);
  static TypePtr Bag(TypePtr element);
  static TypePtr Label();
  /// Dictionary type Label -> Bag(F); `bag` must be a bag type.
  static TypePtr Dict(TypePtr bag);

  Kind kind() const { return kind_; }
  bool is_scalar() const { return kind_ == Kind::kScalar; }
  bool is_tuple() const { return kind_ == Kind::kTuple; }
  bool is_bag() const { return kind_ == Kind::kBag; }
  bool is_label() const { return kind_ == Kind::kLabel; }
  bool is_dict() const { return kind_ == Kind::kDict; }
  bool is_bool() const {
    return is_scalar() && scalar_kind_ == ScalarKind::kBool;
  }
  bool is_numeric() const {
    return is_scalar() && (scalar_kind_ == ScalarKind::kInt ||
                           scalar_kind_ == ScalarKind::kReal);
  }

  ScalarKind scalar_kind() const {
    TRANCE_CHECK(is_scalar(), "scalar_kind on non-scalar");
    return scalar_kind_;
  }
  const std::vector<Field>& fields() const {
    TRANCE_CHECK(is_tuple(), "fields on non-tuple");
    return fields_;
  }
  /// Element type of a bag, or the value bag type of a dictionary.
  const TypePtr& element() const {
    TRANCE_CHECK(is_bag() || is_dict(), "element on non-bag/dict");
    return element_;
  }

  /// Index of field `name`, or -1.
  int FieldIndex(const std::string& name) const;
  /// Type of field `name`; TypeError status if absent.
  StatusOr<TypePtr> FieldType(const std::string& name) const;

  /// A bag of tuples whose attributes are all scalars (paper: "flat bag").
  bool IsFlatBag() const;
  /// Scalars, labels, and tuples thereof — the values a label may capture and
  /// the legal grouping keys.
  bool IsFlatValueType() const;

  std::string ToString() const;

  friend bool TypeEquals(const Type& a, const Type& b);

 private:
  explicit Type(Kind kind) : kind_(kind) {}

  Kind kind_;
  ScalarKind scalar_kind_ = ScalarKind::kInt;
  std::vector<Field> fields_;
  TypePtr element_;
};

bool TypeEquals(const Type& a, const Type& b);
inline bool TypeEquals(const TypePtr& a, const TypePtr& b) {
  TRANCE_CHECK(a != nullptr && b != nullptr, "TypeEquals(null)");
  return TypeEquals(*a, *b);
}

}  // namespace nrc
}  // namespace trance

#endif  // TRANCE_NRC_TYPE_H_
