#include "biomed/pipeline.h"

#include "biomed/generator.h"
#include "nrc/builder.h"

namespace trance {
namespace biomed {

using namespace nrc::dsl;
using nrc::Expr;
using nrc::ExprPtr;
using nrc::Type;
using nrc::TypePtr;

namespace {

TypePtr SampleGenesType() {
  // Sample metadata rides along through steps 1-3: the flattening methods
  // duplicate it per flattened tuple, the shredded route keeps it top-level.
  return BagTu({{"sample", Type::Int()},
                {"donor", Type::String()},
                {"tissue", Type::String()},
                {"notes", Type::String()},
                {"genes", BagTu({{"gene", Type::Int()},
                                 {"score", Type::Real()}})}});
}

TypePtr GeneScoreType() {
  return BagTu({{"gene", Type::Int()}, {"score", Type::Real()}});
}

TypePtr HubScoreType() {
  return BagTu({{"gene", Type::Int()}, {"hub", Type::Real()}});
}

/// Step1 body: flatten BN2 with per-level joins, aggregate, regroup.
ExprPtr Step1Expr(const std::string& bn2) {
  return For(
      "s", V(bn2),
      SngTup(
          {{"sample", V("s.sample")},
           {"donor", V("s.donor")},
           {"tissue", V("s.tissue")},
           {"notes", V("s.notes")},
           {"genes",
            SumBy({"gene"}, {"score"},
                  For("m", V("s.mutations"),
                      For("e", V("BF2"),
                          If(Eq(V("e.gene1"), V("m.gene")),
                             For("cq", V("m.consequences"),
                                 For("t", V("BF3"),
                                     If(Eq(V("t.so_term"), V("cq.so_term")),
                                        SngTup({{"gene", V("e.gene2")},
                                                {"score",
                                                 Mul(Mul(V("m.score"),
                                                         V("e.weight")),
                                                     Mul(V("t.impact"),
                                                         V("cq.weight")))}}))))))))}}));
}

/// Step2 body: nested join of BN1 on the first level of `prev`.
ExprPtr Step2Expr(const std::string& prev) {
  ExprPtr head = SngTup({{"gene", V("g2.gene")},
                         {"score", Mul(V("g2.score"),
                                       Add(V("cv.cn"), R(0.01)))}});
  ExprPtr cnv_loop =
      For("cv", V("b.cnvs"), If(Eq(V("cv.gene"), V("g2.gene")), head));
  ExprPtr bn1_loop =
      For("b", V("BN1"), If(Eq(V("b.sample"), V("x2.sample")), cnv_loop));
  ExprPtr genes = SumBy({"gene"}, {"score"},
                        For("g2", V("x2.genes"), bn1_loop));
  return For("x2", V(prev),
             SngTup({{"sample", V("x2.sample")},
                     {"donor", V("x2.donor")},
                     {"tissue", V("x2.tissue")},
                     {"notes", V("x2.notes")},
                     {"genes", genes}}));
}

/// Step3 body: flat expression join on the first level.
ExprPtr Step3Expr(const std::string& prev) {
  return For(
      "x3", V(prev),
      SngTup(
          {{"sample", V("x3.sample")},
           {"donor", V("x3.donor")},
           {"tissue", V("x3.tissue")},
           {"notes", V("x3.notes")},
           {"genes",
            SumBy({"gene"}, {"score"},
                  For("g3", V("x3.genes"),
                      For("f", V("BF1"),
                          If(And(Eq(V("f.sample"), V("x3.sample")),
                                 Eq(V("f.gene"), V("g3.gene"))),
                             SngTup({{"gene", V("g3.gene")},
                                     {"score", Mul(V("g3.score"),
                                                   V("f.expr"))}})))))}}));
}

/// Step4 body: gene burden across samples (nested-to-flat).
ExprPtr Step4Expr(const std::string& prev) {
  return SumBy({"gene"}, {"score"},
               For("x4", V(prev),
                   For("g4", V("x4.genes"),
                       SngTup({{"gene", V("g4.gene")},
                               {"score", V("g4.score")}}))));
}

/// Step5 body: propagate burdens over the network (flat-to-flat).
ExprPtr Step5Expr(const std::string& prev) {
  return SumBy({"gene"}, {"hub"},
               For("gb", V(prev),
                   For("e5", V("BF2"),
                       If(Eq(V("e5.gene1"), V("gb.gene")),
                          SngTup({{"gene", V("e5.gene2")},
                                  {"hub", Mul(V("gb.score"),
                                              V("e5.weight"))}})))));
}

void AddBaseInputs(nrc::Program* p) {
  p->inputs.push_back({"BN2", Bn2Type()});
  p->inputs.push_back({"BN1", Bn1Type()});
  p->inputs.push_back({"BF1", Bf1Type()});
  p->inputs.push_back({"BF2", Bf2Type()});
  p->inputs.push_back({"BF3", Bf3Type()});
}

}  // namespace

nrc::Program E2EProgram() {
  nrc::Program p;
  AddBaseInputs(&p);
  p.assignments.push_back({"Step1", Step1Expr("BN2")});
  p.assignments.push_back({"Step2", Step2Expr("Step1")});
  p.assignments.push_back({"Step3", Step3Expr("Step2")});
  p.assignments.push_back({"Step4", Step4Expr("Step3")});
  p.assignments.push_back({"Step5", Step5Expr("Step4")});
  return p;
}

StatusOr<nrc::TypePtr> StepOutputType(int step) {
  switch (step) {
    case 1:
    case 2:
    case 3:
      return SampleGenesType();
    case 4:
      return GeneScoreType();
    case 5:
      return HubScoreType();
    default:
      return Status::Invalid("step must be in [1, 5]");
  }
}

StatusOr<nrc::Program> StepProgram(int step) {
  nrc::Program p;
  AddBaseInputs(&p);
  switch (step) {
    case 1:
      p.assignments.push_back({"Step1", Step1Expr("BN2")});
      return p;
    case 2:
      p.inputs.push_back({"Step1", SampleGenesType()});
      p.assignments.push_back({"Step2", Step2Expr("Step1")});
      return p;
    case 3:
      p.inputs.push_back({"Step2", SampleGenesType()});
      p.assignments.push_back({"Step3", Step3Expr("Step2")});
      return p;
    case 4:
      p.inputs.push_back({"Step3", SampleGenesType()});
      p.assignments.push_back({"Step4", Step4Expr("Step3")});
      return p;
    case 5:
      p.inputs.push_back({"Step4", GeneScoreType()});
      p.assignments.push_back({"Step5", Step5Expr("Step4")});
      return p;
    default:
      return Status::Invalid("step must be in [1, 5]");
  }
}

}  // namespace biomed
}  // namespace trance
