// Synthetic biomedical benchmark data, shaped like the paper's ICGC inputs
// (see DESIGN.md substitutions):
//   BN2 — two-level nested somatic-mutation occurrences with wide sample
//         metadata (donor/tissue/notes strings, the top-level baggage the
//         flattening methods duplicate):
//         Bag(<sample, donor, tissue, notes, mutations: Bag(<mid, gene,
//              score, consequences: Bag(<so_term, weight>)>)>)   (280GB analogue)
//   BN1 — one-level nested copy-number:
//         Bag(<sample, cnvs: Bag(<gene, cn>)>)                   (4GB analogue)
//   BF1 — flat gene expression (sample, gene, expr)              (23GB analogue)
//   BF2 — flat gene-gene network (gene1, gene2, weight)          (34GB analogue)
//   BF3 — tiny flat sequence-ontology weights (so_term, impact)  (5KB analogue)
//
// Sizes scale together; SmallConfig/FullConfig mirror the paper's small/full
// dataset ratio. `mutation_skew` concentrates mutations on few samples.
#ifndef TRANCE_BIOMED_GENERATOR_H_
#define TRANCE_BIOMED_GENERATOR_H_

#include <cstdint>

#include "nrc/type.h"
#include "runtime/dataset.h"
#include "runtime/schema.h"

namespace trance {
namespace biomed {

struct BiomedConfig {
  int64_t samples = 25;
  int64_t genes = 120;
  int64_t mutations_per_sample = 15;
  int64_t consequences_per_mutation = 3;
  int64_t network_edges = 480;   // ~4 edges per gene
  int64_t cnvs_per_sample = 12;
  int64_t so_terms = 12;
  double mutation_skew = 0.0;  // Zipf exponent over samples
  uint64_t seed = 7;

  static BiomedConfig Small() { return BiomedConfig{}; }
  static BiomedConfig Full() {
    BiomedConfig c;
    c.samples = 100;
    c.genes = 300;
    c.mutations_per_sample = 50;
    c.network_edges = 1200;
    c.cnvs_per_sample = 60;
    return c;
  }
};

/// Flat relations as runtime tables; nested relations as shredded datasets
/// (top bag + relational dictionaries) *and* as nested datasets, so both
/// compilation routes load without conversion cost.
struct BiomedData {
  // Nested inputs, standard representation (bag-valued columns).
  runtime::Schema bn2_schema;
  std::vector<runtime::Row> bn2;
  runtime::Schema bn1_schema;
  std::vector<runtime::Row> bn1;
  // Flat inputs.
  runtime::Schema bf1_schema;
  std::vector<runtime::Row> bf1;
  runtime::Schema bf2_schema;
  std::vector<runtime::Row> bf2;
  runtime::Schema bf3_schema;
  std::vector<runtime::Row> bf3;
};

/// NRC types of the inputs.
nrc::TypePtr Bn2Type();
nrc::TypePtr Bn1Type();
nrc::TypePtr Bf1Type();
nrc::TypePtr Bf2Type();
nrc::TypePtr Bf3Type();

BiomedData Generate(const BiomedConfig& config);

}  // namespace biomed
}  // namespace trance

#endif  // TRANCE_BIOMED_GENERATOR_H_
