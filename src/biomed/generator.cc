#include "biomed/generator.h"

#include "nrc/builder.h"
#include "util/random.h"

namespace trance {
namespace biomed {

using nrc::Type;
using nrc::TypePtr;
using runtime::Field;
using runtime::Row;
using runtime::Schema;

TypePtr Bn2Type() {
  using nrc::dsl::BagTu;
  return BagTu(
      {{"sample", Type::Int()},
       {"donor", Type::String()},
       {"tissue", Type::String()},
       {"notes", Type::String()},
       {"mutations",
        BagTu({{"mid", Type::Int()},
               {"gene", Type::Int()},
               {"score", Type::Real()},
               {"consequences",
                BagTu({{"so_term", Type::Int()},
                       {"weight", Type::Real()}})}})}});
}

TypePtr Bn1Type() {
  using nrc::dsl::BagTu;
  return BagTu({{"sample", Type::Int()},
                {"cnvs", BagTu({{"gene", Type::Int()},
                                {"cn", Type::Real()}})}});
}

TypePtr Bf1Type() {
  using nrc::dsl::BagTu;
  return BagTu({{"sample", Type::Int()},
                {"gene", Type::Int()},
                {"expr", Type::Real()}});
}

TypePtr Bf2Type() {
  using nrc::dsl::BagTu;
  return BagTu({{"gene1", Type::Int()},
                {"gene2", Type::Int()},
                {"weight", Type::Real()}});
}

TypePtr Bf3Type() {
  using nrc::dsl::BagTu;
  return BagTu({{"so_term", Type::Int()}, {"impact", Type::Real()}});
}

BiomedData Generate(const BiomedConfig& config) {
  Rng rng(config.seed);
  BiomedData d;

  auto schema_of = [](const TypePtr& t) {
    auto s = Schema::FromBagType(t);
    TRANCE_CHECK(s.ok(), "biomed schema");
    return std::move(s).value();
  };
  d.bn2_schema = schema_of(Bn2Type());
  d.bn1_schema = schema_of(Bn1Type());
  d.bf1_schema = schema_of(Bf1Type());
  d.bf2_schema = schema_of(Bf2Type());
  d.bf3_schema = schema_of(Bf3Type());

  // BN2: distribute the total mutation budget over samples, Zipf-skewed.
  const int64_t total_mutations =
      config.samples * config.mutations_per_sample;
  ZipfSampler sample_zipf(static_cast<size_t>(config.samples),
                          config.mutation_skew);
  std::vector<int64_t> per_sample(static_cast<size_t>(config.samples), 0);
  for (int64_t i = 0; i < total_mutations; ++i) {
    ++per_sample[sample_zipf.Sample(&rng)];
  }
  int64_t mid = 0;
  for (int64_t s = 0; s < config.samples; ++s) {
    std::vector<Row> mutations;
    for (int64_t m = 0; m < per_sample[static_cast<size_t>(s)]; ++m) {
      std::vector<Row> consequences;
      int64_t nc = 1 + static_cast<int64_t>(
                           rng.Uniform(static_cast<uint64_t>(
                               config.consequences_per_mutation * 2 - 1)));
      for (int64_t c = 0; c < nc; ++c) {
        consequences.push_back(
            Row({Field::Int(rng.UniformRange(0, config.so_terms - 1)),
                 Field::Real(rng.NextDouble())}));
      }
      mutations.push_back(
          Row({Field::Int(mid++),
               Field::Int(rng.UniformRange(0, config.genes - 1)),
               Field::Real(rng.NextDouble()),
               Field::Bag(std::move(consequences))}));
    }
    d.bn2.push_back(Row({Field::Int(s),
                         Field::Str("DO" + std::to_string(10000 + s) + "_" +
                                    rng.NextString(24)),
                         Field::Str("tissue_" + rng.NextString(20)),
                         Field::Str(rng.NextString(48)),
                         Field::Bag(std::move(mutations))}));
  }

  // BN1: each sample has copy-number calls for a random gene subset.
  for (int64_t s = 0; s < config.samples; ++s) {
    std::vector<Row> cnvs;
    int64_t n = config.cnvs_per_sample / 2 +
                static_cast<int64_t>(rng.Uniform(
                    static_cast<uint64_t>(config.cnvs_per_sample) + 1));
    for (int64_t i = 0; i < n; ++i) {
      cnvs.push_back(Row({Field::Int(rng.UniformRange(0, config.genes - 1)),
                          Field::Real(rng.UniformReal(0.0, 4.0))}));
    }
    d.bn1.push_back(Row({Field::Int(s), Field::Bag(std::move(cnvs))}));
  }

  // BF1: expression per (sample, gene) sample.
  for (int64_t s = 0; s < config.samples; ++s) {
    for (int64_t i = 0; i < 6; ++i) {
      d.bf1.push_back(Row({Field::Int(s),
                           Field::Int(rng.UniformRange(0, config.genes - 1)),
                           Field::Real(rng.UniformReal(0.0, 10.0))}));
    }
  }

  // BF2: gene-gene network edges.
  for (int64_t e = 0; e < config.network_edges; ++e) {
    d.bf2.push_back(Row({Field::Int(rng.UniformRange(0, config.genes - 1)),
                         Field::Int(rng.UniformRange(0, config.genes - 1)),
                         Field::Real(rng.NextDouble())}));
  }

  // BF3: tiny ontology-impact table.
  for (int64_t t = 0; t < config.so_terms; ++t) {
    d.bf3.push_back(Row({Field::Int(t), Field::Real(0.1 + 0.9 * rng.NextDouble())}));
  }

  return d;
}

}  // namespace biomed
}  // namespace trance
