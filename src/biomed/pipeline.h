// The biomedical end-to-end pipeline E2E (Section 6): five NRC steps over
// the ICGC-shaped inputs, modeled on the driver-gene analysis of [47].
//
//  Step1  flattens all of BN2 with a nested join on each level (BF2 network
//         at level 1, BF3 ontology at level 2), aggregates, and regroups to
//         nested per-sample gene scores — the full-flatten stress test.
//  Step2  joins BN1 copy-number on the first level of Step1's output — the
//         blow-up step where the flattening methods diverge.
//  Step3  joins flat BF1 expression on the first level.
//  Step4  aggregates gene burdens across samples (nested-to-flat).
//  Step5  propagates burdens over the network (flat-to-flat).
// The final output is flat, so the shredded route needs no unshredding.
#ifndef TRANCE_BIOMED_PIPELINE_H_
#define TRANCE_BIOMED_PIPELINE_H_

#include "nrc/expr.h"
#include "util/status.h"

namespace trance {
namespace biomed {

inline constexpr int kNumSteps = 5;

/// The whole pipeline as one five-assignment program over BN2/BN1/BF1-BF3.
nrc::Program E2EProgram();

/// Step `step` (1-based) as a standalone program whose inputs are the base
/// relations plus the previous step's output ("StepK" of its output type).
/// Used by the benchmark harness to time steps individually.
StatusOr<nrc::Program> StepProgram(int step);

/// Output type of step `step` (1-based).
StatusOr<nrc::TypePtr> StepOutputType(int step);

}  // namespace biomed
}  // namespace trance

#endif  // TRANCE_BIOMED_PIPELINE_H_
