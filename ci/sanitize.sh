#!/usr/bin/env bash
# CI-style sanitizer pass: checks the docs for drift (ci/check_docs.sh)
# and the bench-report schema (ci/bench_smoke.sh), then builds the tree
# with TRANCE_SANITIZE=ON (ASan + UBSan) into its own build directory and
# runs the fast observability suite (ctest label `obs`), the stage-fusion
# equivalence suite (label `fusion`), the fault-recovery suite (label
# `faults`), the encoded-key suite (label `keys`), the flat hash-table
# suite (label `flathash` — arena OOB stress for exactly this pass), the
# columnar-block suite (label `columnar` — string-arena and bitmap bounds
# under ASan), the spill-format suites (labels `serde` and `spill` — byte
# parsers over corrupt input are exactly what ASan is for), and the
# telemetry suites (labels `metrics` and `events`) under the sanitizers.
# TRANCE_WERROR keeps the build warning-clean.
#
# Usage: ci/sanitize.sh [build-dir]   (default: build-sanitize)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-sanitize}"

ci/check_docs.sh
ci/bench_smoke.sh

cmake -B "$BUILD_DIR" -S . -DTRANCE_SANITIZE=ON -DTRANCE_WERROR=ON
cmake --build "$BUILD_DIR" --target obs_test fusion_test fault_test key_codec_test flat_hash_test metrics_test event_log_test column_test columnar_test serde_test spill_test -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" -L 'obs|fusion|faults|keys|flathash|metrics|events|columnar|serde|spill' --output-on-failure -j"$(nproc)"
