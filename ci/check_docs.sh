#!/usr/bin/env bash
# Documentation consistency gate, run by ci/sanitize.sh and ci/tsan.sh (or
# standalone). Two checks:
#
#  1. Markdown link check: every relative link target referenced from the
#     top-level docs and docs/*.md must exist in the tree (external http(s)
#     links are not fetched).
#  2. Doc-drift check: every field of the user-facing option structs
#     (runtime::ClusterConfig, runtime::FaultConfig, runtime::spill::
#     SpillConfig, exec::ExecOptions) must be mentioned by name somewhere in
#     the documentation, so adding a knob without documenting it fails CI.
#
# Usage: ci/check_docs.sh
set -euo pipefail

cd "$(dirname "$0")/.."

DOCS=(README.md DESIGN.md EXPERIMENTS.md docs/ARCHITECTURE.md docs/METRICS.md docs/STORAGE.md)
fail=0

# --- 1. relative markdown links -----------------------------------------
for doc in "${DOCS[@]}"; do
  [ -f "$doc" ] || { echo "MISSING DOC: $doc"; fail=1; continue; }
  dir=$(dirname "$doc")
  # [text](target) links, minus externals, anchors and mailto.
  while IFS= read -r target; do
    target="${target%%#*}"            # strip fragment
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN LINK in $doc: $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//' |
           grep -vE '^(https?:|mailto:|#)' || true)
done

# --- 2. option-struct fields must appear in the docs --------------------
# Extracts field names from a struct definition: lines like
#   <type> <name> = <default>;   or   <type> <name>;
fields_of() { # file struct_name
  awk -v s="struct $2 {" '
    index($0, s) { in_s = 1; next }
    in_s && /^};/ { in_s = 0 }
    in_s' "$1" |
    grep -vE '^\s*(//|/\*|\*)' |
    grep -oE '[A-Za-z_][A-Za-z0-9_]*\s*(=[^;]*)?;' |
    sed -E 's/\s*=.*$//; s/;$//' | sed -E 's/^\s+|\s+$//g'
}

check_struct() { # file struct_name
  local f
  for f in $(fields_of "$1" "$2"); do
    if ! grep -qF "$f" "${DOCS[@]}"; then
      echo "UNDOCUMENTED FIELD: $2::$f (from $1) appears in none of: ${DOCS[*]}"
      fail=1
    fi
  done
}

check_struct src/runtime/cluster.h ClusterConfig
check_struct src/runtime/fault.h FaultConfig
check_struct src/runtime/spill.h SpillConfig
check_struct src/exec/lowering.h ExecOptions

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK (${#DOCS[@]} docs, links + option-struct coverage)"
