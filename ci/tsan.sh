#!/usr/bin/env bash
# CI-style ThreadSanitizer pass: builds the tree with TRANCE_SANITIZE=thread
# into its own build directory and runs the suites that exercise concurrency
# (ctest labels `parallel`, `obs` and `fusion`) under TSan. The partition-parallel
# runtime oversubscribes threads on small machines, so data races are
# reachable (and reported) even on a single core.
#
# Usage: ci/tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DTRANCE_SANITIZE=thread -DTRANCE_WERROR=ON
cmake --build "$BUILD_DIR" --target parallel_test obs_test fusion_test -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" -L 'parallel|obs|fusion' --output-on-failure -j"$(nproc)"
