#!/usr/bin/env bash
# CI-style ThreadSanitizer pass: checks the docs for drift
# (ci/check_docs.sh) and the bench-report schema (ci/bench_smoke.sh), then
# builds the tree with TRANCE_SANITIZE=thread into its own build directory
# and runs the suites that exercise concurrency (ctest labels `parallel`,
# `obs`, `fusion`, `faults`, `keys`, `flathash`, `columnar`, `spill`,
# `metrics` and `events` — fault recovery retries tasks inside the parallel
# loops, the encoded-key, flat hash-table, and columnar-block suites run
# every keyed operator at 1, 4, and 8 threads, the spill suite forces
# concurrent fetch-side disk runs at those same thread counts, and the
# telemetry suites hammer the sharded counters and the event ring from
# worker threads)
# under TSan. The partition-parallel runtime
# oversubscribes threads on small machines, so data races are reachable
# (and reported) even on a single core.
#
# Usage: ci/tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

ci/check_docs.sh
ci/bench_smoke.sh

cmake -B "$BUILD_DIR" -S . -DTRANCE_SANITIZE=thread -DTRANCE_WERROR=ON
cmake --build "$BUILD_DIR" --target parallel_test obs_test fusion_test fault_test key_codec_test flat_hash_test metrics_test event_log_test column_test columnar_test spill_test -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" -L 'parallel|obs|fusion|faults|keys|flathash|metrics|events|columnar|spill' --output-on-failure -j"$(nproc)"
