#!/usr/bin/env bash
# Bench smoke gate: Release-builds the bench binaries, runs one tiny Fig-7
# pass covering every compilation route (bench_fig7_smoke) plus the
# key-codec ablation report of bench_micro_ops (its google-benchmark suite
# filtered out), then sanity-checks that every key appearing in the emitted
# BENCH_*.json reports is documented in docs/METRICS.md — the
# machine-readable twin of ci/check_docs.sh's option-struct drift guard.
#
# Usage: ci/bench_smoke.sh [build-dir]   (default: build-bench-smoke)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench-smoke}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target bench_fig7_smoke bench_micro_ops -j"$(nproc)"

OUT_DIR="$BUILD_DIR/bench-out"
mkdir -p "$OUT_DIR"
rm -f "$OUT_DIR"/BENCH_*.json

TRANCE_BENCH_OUT="$OUT_DIR" "$BUILD_DIR/bench/bench_fig7_smoke"
# bench_micro_ops writes BENCH_micro_key_codec.json from its main() before
# the google-benchmark suite starts; filter every registered benchmark out
# so only the ablation pass runs.
TRANCE_BENCH_OUT="$OUT_DIR" "$BUILD_DIR/bench/bench_micro_ops" \
  --benchmark_filter='^$'

fail=0
for json in "$OUT_DIR"/BENCH_*.json; do
  case "$json" in *_trace.json) continue ;; esac
  while IFS= read -r key; do
    if ! grep -qF "\`$key" docs/METRICS.md; then
      echo "UNDOCUMENTED BENCH KEY: \"$key\" (from $json) not in docs/METRICS.md"
      fail=1
    fi
  done < <(grep -oE '"[A-Za-z_][A-Za-z0-9_]*"[[:space:]]*:' "$json" |
           sed -E 's/^"//; s/"[[:space:]]*:$//' | sort -u)
done

if [ "$fail" -ne 0 ]; then
  echo "bench_smoke: FAILED"
  exit 1
fi
echo "bench_smoke: OK (reports: $(ls "$OUT_DIR" | tr '\n' ' '))"
