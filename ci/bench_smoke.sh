#!/usr/bin/env bash
# Bench smoke gate: Release-builds the bench binaries, runs one tiny Fig-7
# pass covering every compilation route (bench_fig7_smoke) three times —
# columnar blocks on (default), off (TRANCE_COLUMNAR=0), and under a forced
# out-of-core spill (TRANCE_SPILL_FORCE=1 shrinks the memory cap so every
# route must survive through disk runs), each diffed against its own
# baseline — plus the ablation reports of bench_micro_ops (its
# google-benchmark suite filtered out), then runs four machine-readable
# drift gates:
#
#   1. docs:     every key in the emitted BENCH_*.json reports AND in the
#                event-log JSONL must appear in docs/METRICS.md as an exact
#                backtick token (`key` with closing backtick — prefixes do
#                not count). Labeled metric series (name{k="v"}) gate on the
#                family name; histogram bucket keys (le_1, le_2.5, le_inf)
#                gate on the single documented `le_*` token.
#   2. events:   the TRANCE_EVENT_LOG output of the smoke bench must be
#                schema-valid JSONL (bench_diff --check-events).
#   3. baseline: each report is diffed against bench/baselines/ with
#                bench_diff (hard-fail on deterministic invariants, soft
#                wall-time warnings). A self-diff must pass and a tampered
#                report must fail, so the gate itself is exercised on every
#                run. Refresh workflow: EXPERIMENTS.md.
#   4. resident: the columnar fig7 pass must keep its summed
#                column_to_row_conversions under a pinned bound (>= 90%
#                below the PR-9 pack-per-stage total) — partitions are
#                block-resident, not repacked per stage.
#
# Usage: ci/bench_smoke.sh [build-dir]   (default: build-bench-smoke)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench-smoke}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target bench_fig7_smoke bench_micro_ops \
  bench_diff -j"$(nproc)"

OUT_DIR="$BUILD_DIR/bench-out"
mkdir -p "$OUT_DIR"
rm -f "$OUT_DIR"/BENCH_*.json "$OUT_DIR"/events.jsonl

TRANCE_BENCH_OUT="$OUT_DIR" TRANCE_EVENT_LOG="$OUT_DIR/events.jsonl" \
  "$BUILD_DIR/bench/bench_fig7_smoke"
# Same suite on the historical row path (writes
# BENCH_fig7_smoke_columnar_off.json): the flag must stay runnable end to
# end, and its report diffs against its own baseline below.
TRANCE_BENCH_OUT="$OUT_DIR" TRANCE_COLUMNAR=0 \
  "$BUILD_DIR/bench/bench_fig7_smoke"
# Forced-spill pass (writes BENCH_fig7_smoke_spill.json): an 8 KiB memory
# cap would FAIL every route without the spill path; the binary asserts
# spill_runs > 0 and at least one completed route before writing the report.
TRANCE_BENCH_OUT="$OUT_DIR" TRANCE_SPILL_FORCE=1 \
  "$BUILD_DIR/bench/bench_fig7_smoke"
# bench_micro_ops writes BENCH_micro_key_codec.json from its main() before
# the google-benchmark suite starts; filter every registered benchmark out
# so only the ablation pass runs.
TRANCE_BENCH_OUT="$OUT_DIR" "$BUILD_DIR/bench/bench_micro_ops" \
  --benchmark_filter='^$'

fail=0

# --- gate 1: report/event keys vs docs/METRICS.md ------------------------
# documented <key>: exact backtick-token membership test.
documented() {
  grep -qF "\`$1\`" docs/METRICS.md
}

# Emits the distinct gate tokens for one JSON/JSONL file: plain scalar keys
# (dots allowed: le_1.25), labeled metric series reduced to the family name
# (trance_stages_total{movement=\"local\"} -> trance_stages_total), and
# histogram bucket keys collapsed onto le_*.
extract_keys() {
  {
    grep -oE '"[A-Za-z_][A-Za-z0-9_.]*"[[:space:]]*:' "$1" |
      sed -E 's/^"//; s/"[[:space:]]*:$//'
    grep -oE '"[A-Za-z_][A-Za-z0-9_]*\{[^}]*}"[[:space:]]*:' "$1" |
      sed -E 's/^"//; s/\{.*$//'
  } | sed -E 's/^le_([0-9.]+|inf)$/le_*/' | sort -u
}

for f in "$OUT_DIR"/BENCH_*.json "$OUT_DIR/events.jsonl"; do
  case "$f" in *_trace.json) continue ;; esac
  while IFS= read -r key; do
    if ! documented "$key"; then
      echo "UNDOCUMENTED BENCH KEY: \"$key\" (from $f) not in docs/METRICS.md"
      fail=1
    fi
  done < <(extract_keys "$f")
done

# --- gate 2: event-log JSONL schema --------------------------------------
if ! "$BUILD_DIR/bench/bench_diff" --check-events "$OUT_DIR/events.jsonl"; then
  echo "event log schema check FAILED"
  fail=1
fi

# --- gate 3: baseline comparison -----------------------------------------
for report in "$OUT_DIR"/BENCH_*.json; do
  case "$report" in *_trace.json) continue ;; esac
  base="bench/baselines/$(basename "$report")"
  if [ ! -f "$base" ]; then
    echo "MISSING BASELINE: $base (refresh: see EXPERIMENTS.md)"
    fail=1
    continue
  fi
  if ! "$BUILD_DIR/bench/bench_diff" "$base" "$report"; then
    echo "baseline diff FAILED for $report"
    fail=1
  fi
  # Self-diff must pass by construction.
  if ! "$BUILD_DIR/bench/bench_diff" "$report" "$report" >/dev/null; then
    echo "SELF-DIFF FAILED for $report (bench_diff is broken)"
    fail=1
  fi
done

# --- gate 4: block-resident conversion bound -----------------------------
# Partitions are block-resident end to end (PR 10): the columnar fig7 pass
# must keep column_to_row_conversions at (near) zero. The bound is pinned at
# a >= 90% reduction from the PR-9 pack-per-stage total (857,851); the
# block-resident paths actually report 0, so any operator that regresses to
# materializing block inputs trips this long before the baseline diff churns.
CONV_BOUND=85785
conv_total=$(grep -oE '"column_to_row_conversions":[0-9]+' \
  "$OUT_DIR/BENCH_fig7_smoke.json" |
  awk -F: '{s += $2} END {print s + 0}')
if [ "$conv_total" -gt "$CONV_BOUND" ]; then
  echo "CONVERSION BOUND EXCEEDED: fig7 columnar column_to_row_conversions" \
    "total $conv_total > $CONV_BOUND (block-resident bound)"
  fail=1
fi

# A synthetically regressed report must hard-fail, proving the gate bites.
tampered="$OUT_DIR/tampered.json"
sed -E 's/"out_rows":[0-9]+/"out_rows":999999999/' \
  "$OUT_DIR/BENCH_fig7_smoke.json" >"$tampered"
if "$BUILD_DIR/bench/bench_diff" "$OUT_DIR/BENCH_fig7_smoke.json" \
  "$tampered" >/dev/null; then
  echo "TAMPER CHECK FAILED: bench_diff accepted a regressed report"
  fail=1
fi
rm -f "$tampered"

if [ "$fail" -ne 0 ]; then
  echo "bench_smoke: FAILED"
  exit 1
fi
echo "bench_smoke: OK (reports: $(ls "$OUT_DIR" | tr '\n' ' '))"
