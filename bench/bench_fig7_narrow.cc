// Figure 7a: performance of the narrow TPC-H benchmark queries with varying
// levels of nesting (0-4), comparing UNSHRED / SHRED / STANDARD / SPARKSQL.
//
// The suite runs twice: once with num_threads = 1 (the sequential baseline)
// and once with the auto thread budget (TRANCE_THREADS / hardware
// concurrency), so the report carries per-run and total speedup_vs_1thread.
// Simulated metrics are identical between the two passes by construction.
#include "fig7_harness.h"

#include "util/thread_pool.h"

int main() {
  trance::bench::EnableBenchObservability();
  trance::bench::Fig7Config cfg;
  cfg.width = trance::tpch::Width::kNarrow;
  cfg.partition_memory_cap = 700ull << 10;
  cfg.num_threads = 1;
  auto baseline = trance::bench::RunFig7(cfg);
  cfg.num_threads = trance::util::DefaultNumThreads();
  auto results = trance::bench::RunFig7(cfg);
  TRANCE_CHECK(
      trance::bench::WriteBenchReport("fig7_narrow", results, &baseline).ok(),
      "bench report");
  return 0;
}
