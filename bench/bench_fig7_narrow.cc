// Figure 7a: performance of the narrow TPC-H benchmark queries with varying
// levels of nesting (0-4), comparing UNSHRED / SHRED / STANDARD / SPARKSQL.
#include "fig7_harness.h"

int main() {
  trance::bench::EnableBenchObservability();
  trance::bench::Fig7Config cfg;
  cfg.width = trance::tpch::Width::kNarrow;
  cfg.partition_memory_cap = 700ull << 10;
  auto results = trance::bench::RunFig7(cfg);
  TRANCE_CHECK(trance::bench::WriteBenchReport("fig7_narrow", results).ok(),
               "bench report");
  return 0;
}
