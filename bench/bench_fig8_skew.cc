// Figure 8: the narrow nested-to-nested TPC-H query with two levels of
// nesting on increasingly skewed datasets (skew factor 0-4), comparing all
// seven strategies: UNSHRED / SHRED / STANDARD, their skew-aware variants,
// and SPARKSQL. Expected shape: skew-aware SHRED degrades gracefully while
// the flattening methods crash at higher skew.
#include <optional>

#include "bench_common.h"
#include "tpch/queries.h"
#include "util/strings.h"

namespace trance {
namespace bench {
namespace {

constexpr int kDepth = 2;
constexpr double kScale = 0.004;
constexpr uint64_t kCap = 1100ull << 10;

Status RegisterFlat(exec::Executor* executor, const tpch::TpchData& d) {
  for (const auto& [t, n] :
       std::initializer_list<std::pair<const tpch::Table*, const char*>>{
           {&d.customer, "Customer"},
           {&d.orders, "Orders"},
           {&d.lineitem, "Lineitem"},
           {&d.part, "Part"}}) {
    TRANCE_RETURN_NOT_OK(RegisterTable(executor, *t, n));
    TRANCE_RETURN_NOT_OK(
        RegisterTable(executor, *t, shred::FlatInputName(n)));
  }
  return Status::OK();
}

void RunSkewFactor(int skew_factor, std::vector<RunResult>* all) {
  tpch::TpchConfig tcfg;
  tcfg.scale = kScale;
  tcfg.skew = static_cast<double>(skew_factor);
  tpch::TpchData data = tpch::Generate(tcfg);
  auto prep = tpch::FlatToNested(kDepth, tpch::Width::kNarrow).ValueOrDie();
  auto query = tpch::NestedToNested(kDepth, tpch::Width::kNarrow).ValueOrDie();

  // Untimed input materialization, per route.
  std::optional<runtime::Dataset> nested_std;
  std::string std_fail;
  {
    runtime::Cluster c(BenchClusterConfig(8, kCap, 48 << 10));
    exec::Executor e(&c, {});
    TRANCE_CHECK(RegisterFlat(&e, data).ok(), "register");
    auto ds = exec::RunStandard(prep, &e, {});
    if (ds.ok()) {
      nested_std = std::move(ds).value();
    } else {
      std_fail = ds.status().ToString();
    }
  }
  std::optional<exec::ShreddedRun> nested_shred;
  std::string shred_fail;
  {
    runtime::Cluster c(BenchClusterConfig(8, kCap, 48 << 10));
    exec::Executor e(&c, {});
    TRANCE_CHECK(RegisterFlat(&e, data).ok(), "register");
    auto run = exec::RunShredded(prep, &e, {});
    if (run.ok()) {
      nested_shred = std::move(run).value();
    } else {
      shred_fail = run.status().ToString();
    }
  }

  const Strategy kStrategies[] = {
      Strategy::kSparkSql,   Strategy::kStandard, Strategy::kStandardSkew,
      Strategy::kShred,      Strategy::kShredSkew, Strategy::kUnshred,
      Strategy::kUnshredSkew};
  for (Strategy s : kStrategies) {
    std::string name = "skew" + std::to_string(skew_factor) + " " +
                       StrategyName(s);
    runtime::Cluster cluster(BenchClusterConfig(8, kCap, 48 << 10));
    exec::Executor executor(&cluster, OptionsFor(s).exec);
    Status setup = RegisterFlat(&executor, data);
    if (setup.ok()) {
      if (IsShredded(s)) {
        setup = nested_shred.has_value()
                    ? RegisterShreddedRun(&executor, "COP", *nested_shred)
                    : Status::ResourceExhausted("input materialization: " +
                                                shred_fail);
      } else {
        if (nested_std.has_value()) {
          executor.Register("COP", *nested_std);
        } else {
          setup = Status::ResourceExhausted("input materialization: " +
                                            std_fail);
        }
      }
    }
    // Section 6: aggregation pushing benefits the skew-unaware methods
    // (collapsing duplicated heavy values diminishes skew); the skew-aware
    // ones instead maintain the distribution of heavy keys.
    exec::PipelineOptions opts = OptionsFor(s);
    if (!IsSkewAware(s)) opts.optimizer.enable_agg_pushdown = true;
    RunResult r;
    if (!setup.ok()) {
      r.name = name;
      r.ok = false;
      r.fail_reason = setup.ToString();
    } else {
      size_t out_rows = 0;
      r = TimedRun(name, &cluster, [&]() -> Status {
        if (IsShredded(s)) {
          TRANCE_ASSIGN_OR_RETURN(
              exec::ShreddedRun run,
              exec::RunShredded(query, &executor, opts));
          if (WantsUnshred(s)) {
            TRANCE_ASSIGN_OR_RETURN(runtime::Dataset out,
                                    exec::UnshredRun(&executor, run));
            out_rows = out.NumRows();
          } else {
            out_rows = run.top.NumRows();
          }
          return Status::OK();
        }
        TRANCE_ASSIGN_OR_RETURN(
            runtime::Dataset out,
            exec::RunStandard(query, &executor, opts));
        out_rows = out.NumRows();
        return Status::OK();
      });
      r.out_rows = out_rows;
    }
    PrintResult(r);
    all->push_back(std::move(r));
  }
}

}  // namespace

std::vector<RunResult> RunFig8() {
  PrintHeader("Figure 8: nested-to-nested narrow, 2 nesting levels, "
              "increasing skew");
  std::vector<RunResult> all;
  for (int z = 0; z <= 4; ++z) {
    RunSkewFactor(z, &all);
  }
  return all;
}

}  // namespace bench
}  // namespace trance

int main() {
  trance::bench::EnableBenchObservability();
  auto results = trance::bench::RunFig8();
  TRANCE_CHECK(trance::bench::WriteBenchReport("fig8_skew", results).ok(),
               "bench report");
  return 0;
}
