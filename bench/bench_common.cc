#include "bench_common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace trance {
namespace bench {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kStandard:
      return "STANDARD";
    case Strategy::kStandardSkew:
      return "STANDARD_SKEW";
    case Strategy::kShred:
      return "SHRED";
    case Strategy::kShredSkew:
      return "SHRED_SKEW";
    case Strategy::kUnshred:
      return "SHRED+UNSHRED";
    case Strategy::kUnshredSkew:
      return "SHRED+UNSHRED_SKEW";
    case Strategy::kSparkSql:
      return "SPARKSQL";
  }
  return "?";
}

bool IsShredded(Strategy s) {
  return s == Strategy::kShred || s == Strategy::kShredSkew ||
         s == Strategy::kUnshred || s == Strategy::kUnshredSkew;
}

bool IsSkewAware(Strategy s) {
  return s == Strategy::kStandardSkew || s == Strategy::kShredSkew ||
         s == Strategy::kUnshredSkew;
}

bool WantsUnshred(Strategy s) {
  return s == Strategy::kUnshred || s == Strategy::kUnshredSkew;
}

exec::PipelineOptions OptionsFor(Strategy s) {
  exec::PipelineOptions o;
  if (s == Strategy::kSparkSql) {
    // Section 6: SparkSQL does not perform the cogroup optimization.
    o.optimizer.enable_cogroup = false;
  }
  if (IsSkewAware(s)) {
    o.exec.skew_aware = true;
  }
  return o;
}

runtime::ClusterConfig BenchClusterConfig(int num_partitions,
                                          uint64_t partition_memory_cap,
                                          uint64_t broadcast_threshold) {
  runtime::ClusterConfig c;
  c.num_partitions = num_partitions;
  c.partition_memory_cap = partition_memory_cap;
  c.broadcast_threshold = broadcast_threshold;
  c.stage_overhead_seconds = 0.005;
  c.seconds_per_net_byte = 4e-8;   // ~25 MB/s shuffle path
  c.seconds_per_cpu_byte = 1e-8;   // ~100 MB/s per-worker processing
  return c;
}

Status RegisterTable(exec::Executor* executor, const tpch::Table& table,
                     const std::string& name) {
  TRANCE_ASSIGN_OR_RETURN(
      runtime::Dataset ds,
      runtime::Source(executor->cluster(), table.schema, table.rows, name));
  executor->Register(name, std::move(ds));
  return Status::OK();
}

Status RegisterShreddedRun(exec::Executor* executor, const std::string& name,
                           const exec::ShreddedRun& run) {
  executor->Register(shred::FlatInputName(name), run.top);
  for (const auto& [path, ds] : run.dicts) {
    executor->Register(shred::DictInputName(name, path), ds);
  }
  return Status::OK();
}

RunResult TimedRun(const std::string& name, runtime::Cluster* cluster,
                   const std::function<Status()>& body) {
  RunResult r;
  r.name = name;
  r.num_threads = cluster->num_threads();
  cluster->stats().Reset();
  cluster->metrics().Reset();
  obs::Tracer* tracer = &obs::Tracer::Global();
  Status st;
  {
    obs::Tracer::Span run_span(tracer, "run:" + name);
    Stopwatch watch;
    st = body();
    r.wall_s = watch.ElapsedSeconds();
  }
  const auto& stats = cluster->stats();
  r.sim_s = stats.sim_seconds();
  r.shuffle_bytes = stats.total_shuffle_bytes();
  r.max_stage_shuffle = stats.max_stage_shuffle_bytes();
  r.peak_partition = stats.peak_partition_bytes();
  r.fused_stages = stats.fused_stages();
  r.intermediate_bytes_avoided = stats.intermediate_bytes_avoided();
  r.injected_faults = stats.injected_faults();
  r.retries = stats.retries();
  r.recovery_sim_s = stats.recovery_sim_seconds();
  r.key_encode_bytes = stats.key_encode_bytes();
  r.hash_build_rows = stats.hash_build_rows();
  r.hash_probe_hits = stats.hash_probe_hits();
  r.hash_max_chain = stats.hash_max_chain();
  r.hash_table_bytes = stats.hash_table_bytes();
  r.hash_resizes = stats.hash_resizes();
  r.hash_probe_len_max = stats.hash_probe_len_max();
  r.columnar_bytes = stats.columnar_bytes();
  r.column_to_row_conversions = stats.column_to_row_conversions();
  r.spill_bytes_written = stats.spill_bytes_written();
  r.spill_bytes_read = stats.spill_bytes_read();
  r.spill_runs = stats.spill_runs();
  r.spill_merge_passes = stats.spill_merge_passes();
  r.spill_rowify_avoided = stats.spill_rowify_avoided();
  r.stats = stats;
  r.metrics = cluster->metrics().Snapshot();
  r.ok = st.ok();
  if (!st.ok()) r.fail_reason = st.ToString();
  obs::AppendJobStagesToTrace(stats, tracer, name);
  return r;
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-44s %9s %9s %12s %12s %12s %8s\n", "run", "wall(s)",
              "sim(s)", "shuffle", "maxstage", "peakpart", "rows");
}

void PrintResult(const RunResult& r) {
  if (!r.ok) {
    std::printf("%-44s %9s %9s %12s %12s %12s %8s   [%s]\n", r.name.c_str(),
                "FAIL", "FAIL", "-", "-", "-", "-",
                r.fail_reason.substr(0, 100).c_str());
    return;
  }
  std::printf("%-44s %9.3f %9.2f %12s %12s %12s %8zu\n", r.name.c_str(),
              r.wall_s, r.sim_s, FormatBytes(r.shuffle_bytes).c_str(),
              FormatBytes(r.max_stage_shuffle).c_str(),
              FormatBytes(r.peak_partition).c_str(), r.out_rows);
}

std::string Ratio(const RunResult& num, const RunResult& den,
                  uint64_t RunResult::*field) {
  if (!num.ok || !den.ok || den.*field == 0) return "n/a";
  double v = static_cast<double>(num.*field) /
             static_cast<double>(den.*field);
  return FormatDouble(v, 1) + "x";
}

void EnableBenchObservability() {
  obs::Tracer::Global().set_enabled(true);
  obs::Tracer::Global().Clear();
  obs::GlobalEventLog().Enable(true);
  obs::GlobalEventLog().Clear();
}

namespace {

std::string BenchOutPath(const std::string& file) {
  const char* dir = std::getenv("TRANCE_BENCH_OUT");
  std::string d = (dir != nullptr && *dir != '\0') ? dir : ".";
  if (d.back() != '/') d += '/';
  return d + file;
}

}  // namespace

Status WriteBenchReport(const std::string& bench_name,
                        const std::vector<RunResult>& results,
                        const std::vector<RunResult>* baseline) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String(bench_name);
  double wall_total = 0;
  double wall_total_1thread = 0;
  w.Key("runs");
  w.BeginArray();
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    w.BeginObject();
    w.Key("name");
    w.String(r.name);
    w.Key("ok");
    w.Bool(r.ok);
    if (!r.ok) {
      w.Key("fail_reason");
      w.String(r.fail_reason);
    }
    w.Key("num_threads");
    w.Int(r.num_threads);
    w.Key("wall_seconds");
    w.Number(r.wall_s);
    if (baseline != nullptr && i < baseline->size()) {
      const RunResult& b = (*baseline)[i];
      w.Key("wall_seconds_1thread");
      w.Number(b.wall_s);
      if (r.ok && b.ok && r.wall_s > 0) {
        w.Key("speedup_vs_1thread");
        w.Number(b.wall_s / r.wall_s);
        wall_total += r.wall_s;
        wall_total_1thread += b.wall_s;
      }
    }
    w.Key("sim_seconds");
    w.Number(r.sim_s);
    w.Key("shuffle_bytes");
    w.Uint(r.shuffle_bytes);
    w.Key("max_stage_shuffle_bytes");
    w.Uint(r.max_stage_shuffle);
    w.Key("peak_partition_bytes");
    w.Uint(r.peak_partition);
    w.Key("fused_stages");
    w.Uint(r.fused_stages);
    w.Key("intermediate_bytes_avoided");
    w.Uint(r.intermediate_bytes_avoided);
    w.Key("injected_faults");
    w.Uint(r.injected_faults);
    w.Key("retries");
    w.Uint(r.retries);
    w.Key("recovery_sim_seconds");
    w.Number(r.recovery_sim_s);
    w.Key("key_encode_bytes");
    w.Uint(r.key_encode_bytes);
    w.Key("hash_build_rows");
    w.Uint(r.hash_build_rows);
    w.Key("hash_probe_hits");
    w.Uint(r.hash_probe_hits);
    w.Key("hash_max_chain");
    w.Uint(r.hash_max_chain);
    w.Key("hash_table_bytes");
    w.Uint(r.hash_table_bytes);
    w.Key("hash_resizes");
    w.Uint(r.hash_resizes);
    w.Key("hash_probe_len_max");
    w.Uint(r.hash_probe_len_max);
    w.Key("columnar_bytes");
    w.Uint(r.columnar_bytes);
    w.Key("column_to_row_conversions");
    w.Uint(r.column_to_row_conversions);
    w.Key("spill_bytes_written");
    w.Uint(r.spill_bytes_written);
    w.Key("spill_bytes_read");
    w.Uint(r.spill_bytes_read);
    w.Key("spill_runs");
    w.Uint(r.spill_runs);
    w.Key("spill_merge_passes");
    w.Uint(r.spill_merge_passes);
    w.Key("spill_rowify_avoided");
    w.Uint(r.spill_rowify_avoided);
    w.Key("out_rows");
    w.Uint(r.out_rows);
    w.Key("job");
    obs::WriteJobStats(r.stats, &w);
    // Generic registry dump: one loop, any registered metric — the bench
    // report never needs a per-metric edit.
    w.Key("metrics");
    obs::MetricRegistry::WriteSamplesJson(r.metrics, &w);
    w.EndObject();
  }
  w.EndArray();
  if (baseline != nullptr) {
    w.Key("scaling");
    w.BeginObject();
    w.Key("num_threads");
    w.Int(results.empty() ? 1 : results.front().num_threads);
    w.Key("wall_seconds_total");
    w.Number(wall_total);
    w.Key("wall_seconds_total_1thread");
    w.Number(wall_total_1thread);
    if (wall_total > 0) {
      w.Key("speedup_vs_1thread");
      w.Number(wall_total_1thread / wall_total);
    }
    w.EndObject();
  }
  w.EndObject();
  std::string metrics_path = BenchOutPath("BENCH_" + bench_name + ".json");
  TRANCE_RETURN_NOT_OK(obs::WriteFile(metrics_path, w.str()));
  std::printf("wrote %s\n", metrics_path.c_str());

  obs::Tracer& tracer = obs::Tracer::Global();
  if (tracer.enabled()) {
    std::string trace_path =
        BenchOutPath("BENCH_" + bench_name + "_trace.json");
    TRANCE_RETURN_NOT_OK(
        obs::WriteFile(trace_path, tracer.ToChromeTraceJson()));
    std::printf("wrote %s\n", trace_path.c_str());
  }
  return Status::OK();
}

}  // namespace bench
}  // namespace trance
