#include "bench_common.h"

#include <cinttypes>
#include <cstdio>

#include "util/stopwatch.h"
#include "util/strings.h"

namespace trance {
namespace bench {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kStandard:
      return "STANDARD";
    case Strategy::kStandardSkew:
      return "STANDARD_SKEW";
    case Strategy::kShred:
      return "SHRED";
    case Strategy::kShredSkew:
      return "SHRED_SKEW";
    case Strategy::kUnshred:
      return "SHRED+UNSHRED";
    case Strategy::kUnshredSkew:
      return "SHRED+UNSHRED_SKEW";
    case Strategy::kSparkSql:
      return "SPARKSQL";
  }
  return "?";
}

bool IsShredded(Strategy s) {
  return s == Strategy::kShred || s == Strategy::kShredSkew ||
         s == Strategy::kUnshred || s == Strategy::kUnshredSkew;
}

bool IsSkewAware(Strategy s) {
  return s == Strategy::kStandardSkew || s == Strategy::kShredSkew ||
         s == Strategy::kUnshredSkew;
}

bool WantsUnshred(Strategy s) {
  return s == Strategy::kUnshred || s == Strategy::kUnshredSkew;
}

exec::PipelineOptions OptionsFor(Strategy s) {
  exec::PipelineOptions o;
  if (s == Strategy::kSparkSql) {
    // Section 6: SparkSQL does not perform the cogroup optimization.
    o.optimizer.enable_cogroup = false;
  }
  if (IsSkewAware(s)) {
    o.exec.skew_aware = true;
  }
  return o;
}

runtime::ClusterConfig BenchClusterConfig(int num_partitions,
                                          uint64_t partition_memory_cap,
                                          uint64_t broadcast_threshold) {
  runtime::ClusterConfig c;
  c.num_partitions = num_partitions;
  c.partition_memory_cap = partition_memory_cap;
  c.broadcast_threshold = broadcast_threshold;
  c.stage_overhead_seconds = 0.005;
  c.seconds_per_net_byte = 4e-8;   // ~25 MB/s shuffle path
  c.seconds_per_cpu_byte = 1e-8;   // ~100 MB/s per-worker processing
  return c;
}

Status RegisterTable(exec::Executor* executor, const tpch::Table& table,
                     const std::string& name) {
  TRANCE_ASSIGN_OR_RETURN(
      runtime::Dataset ds,
      runtime::Source(executor->cluster(), table.schema, table.rows, name));
  executor->Register(name, std::move(ds));
  return Status::OK();
}

Status RegisterShreddedRun(exec::Executor* executor, const std::string& name,
                           const exec::ShreddedRun& run) {
  executor->Register(shred::FlatInputName(name), run.top);
  for (const auto& [path, ds] : run.dicts) {
    executor->Register(shred::DictInputName(name, path), ds);
  }
  return Status::OK();
}

RunResult TimedRun(const std::string& name, runtime::Cluster* cluster,
                   const std::function<Status()>& body) {
  RunResult r;
  r.name = name;
  cluster->stats().Reset();
  Stopwatch watch;
  Status st = body();
  r.wall_s = watch.ElapsedSeconds();
  const auto& stats = cluster->stats();
  r.sim_s = stats.sim_seconds();
  r.shuffle_bytes = stats.total_shuffle_bytes();
  r.max_stage_shuffle = stats.max_stage_shuffle_bytes();
  r.peak_partition = stats.peak_partition_bytes();
  r.ok = st.ok();
  if (!st.ok()) r.fail_reason = st.ToString();
  return r;
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-44s %9s %9s %12s %12s %12s %8s\n", "run", "wall(s)",
              "sim(s)", "shuffle", "maxstage", "peakpart", "rows");
}

void PrintResult(const RunResult& r) {
  if (!r.ok) {
    std::printf("%-44s %9s %9s %12s %12s %12s %8s   [%s]\n", r.name.c_str(),
                "FAIL", "FAIL", "-", "-", "-", "-",
                r.fail_reason.substr(0, 100).c_str());
    return;
  }
  std::printf("%-44s %9.3f %9.2f %12s %12s %12s %8zu\n", r.name.c_str(),
              r.wall_s, r.sim_s, FormatBytes(r.shuffle_bytes).c_str(),
              FormatBytes(r.max_stage_shuffle).c_str(),
              FormatBytes(r.peak_partition).c_str(), r.out_rows);
}

std::string Ratio(const RunResult& num, const RunResult& den,
                  uint64_t RunResult::*field) {
  if (!num.ok || !den.ok || den.*field == 0) return "n/a";
  double v = static_cast<double>(num.*field) /
             static_cast<double>(den.*field);
  return FormatDouble(v, 1) + "x";
}

}  // namespace bench
}  // namespace trance
