// Figure 7b: performance of the wide TPC-H benchmark queries with varying
// levels of nesting (0-4), comparing UNSHRED / SHRED / STANDARD / SPARKSQL.
//
// Like fig7_narrow, the suite runs at num_threads = 1 and at the auto
// thread budget so the report records thread-scaling wall times.
#include "fig7_harness.h"

#include "util/thread_pool.h"

int main() {
  trance::bench::EnableBenchObservability();
  trance::bench::Fig7Config cfg;
  cfg.width = trance::tpch::Width::kWide;
  cfg.partition_memory_cap = 2ull << 20;
  cfg.num_threads = 1;
  auto baseline = trance::bench::RunFig7(cfg);
  cfg.num_threads = trance::util::DefaultNumThreads();
  auto results = trance::bench::RunFig7(cfg);
  TRANCE_CHECK(
      trance::bench::WriteBenchReport("fig7_wide", results, &baseline).ok(),
      "bench report");
  return 0;
}
