#include "fig7_harness.h"

#include <optional>

#include "util/stopwatch.h"
#include "util/strings.h"

namespace trance {
namespace bench {

namespace {

enum class QueryKind { kFlatToNested, kNestedToNested, kNestedToFlat };

const char* KindName(QueryKind k) {
  switch (k) {
    case QueryKind::kFlatToNested:
      return "flat_to_nested";
    case QueryKind::kNestedToNested:
      return "nested_to_nested";
    case QueryKind::kNestedToFlat:
      return "nested_to_flat";
  }
  return "?";
}

runtime::ClusterConfig MakeClusterConfig(const Fig7Config& cfg) {
  runtime::ClusterConfig c =
      BenchClusterConfig(cfg.num_partitions, cfg.partition_memory_cap,
                         cfg.broadcast_threshold);
  c.num_threads = cfg.num_threads;
  return c;
}

exec::PipelineOptions OptionsForConfig(Strategy s, const Fig7Config& cfg) {
  exec::PipelineOptions o = OptionsFor(s);
  o.exec.enable_columnar = cfg.enable_columnar;
  o.exec.enable_spill = cfg.enable_spill;
  return o;
}

Status RegisterAllTables(exec::Executor* executor, const tpch::TpchData& d) {
  // Flat relations double as their own shredded form (no dictionaries), so
  // both routes find their inputs.
  struct Entry {
    const tpch::Table* t;
    const char* name;
  };
  for (const Entry& e :
       {Entry{&d.region, "Region"}, Entry{&d.nation, "Nation"},
        Entry{&d.customer, "Customer"}, Entry{&d.orders, "Orders"},
        Entry{&d.lineitem, "Lineitem"}, Entry{&d.part, "Part"}}) {
    TRANCE_RETURN_NOT_OK(RegisterTable(executor, *e.t, e.name));
    TRANCE_RETURN_NOT_OK(
        RegisterTable(executor, *e.t, shred::FlatInputName(e.name)));
  }
  return Status::OK();
}

/// Prepared nested input for the nested-to-* queries (untimed).
struct NestedInput {
  std::optional<runtime::Dataset> standard;  // nullopt if materialization FAILed
  std::string standard_fail;
  std::optional<exec::ShreddedRun> shredded;
  std::string shredded_fail;
};

StatusOr<NestedInput> PrepareNestedInput(const Fig7Config& cfg,
                                         const tpch::TpchData& data,
                                         int depth) {
  NestedInput out;
  TRANCE_ASSIGN_OR_RETURN(nrc::Program prep,
                          tpch::FlatToNested(depth, cfg.width));
  exec::ExecOptions prep_exec;
  prep_exec.enable_columnar = cfg.enable_columnar;
  prep_exec.enable_spill = cfg.enable_spill;
  exec::PipelineOptions prep_opts;
  prep_opts.exec = prep_exec;
  {
    runtime::Cluster cluster(MakeClusterConfig(cfg));
    exec::Executor executor(&cluster, prep_exec);
    TRANCE_RETURN_NOT_OK(RegisterAllTables(&executor, data));
    auto ds = exec::RunStandard(prep, &executor, prep_opts);
    if (ds.ok()) {
      out.standard = std::move(ds).value();
    } else {
      out.standard_fail = ds.status().ToString();
    }
  }
  {
    runtime::Cluster cluster(MakeClusterConfig(cfg));
    exec::Executor executor(&cluster, prep_exec);
    TRANCE_RETURN_NOT_OK(RegisterAllTables(&executor, data));
    auto run = exec::RunShredded(prep, &executor, prep_opts);
    if (run.ok()) {
      out.shredded = std::move(run).value();
    } else {
      out.shredded_fail = run.status().ToString();
    }
  }
  return out;
}

}  // namespace

std::vector<RunResult> RunFig7(const Fig7Config& cfg) {
  std::vector<RunResult> all;
  tpch::TpchConfig tcfg;
  tcfg.scale = cfg.scale;
  tcfg.skew = cfg.skew;
  tpch::TpchData data = tpch::Generate(tcfg);

  std::string title =
      std::string("Figure 7") +
      (cfg.width == tpch::Width::kNarrow ? "a (narrow" : "b (wide") +
      " TPC-H), scale=" + FormatDouble(cfg.scale, 4) +
      ", skew=" + FormatDouble(cfg.skew, 1);
  PrintHeader(title);

  const Strategy kStrategies[] = {Strategy::kSparkSql, Strategy::kStandard,
                                  Strategy::kShred, Strategy::kUnshred};

  for (QueryKind kind :
       {QueryKind::kFlatToNested, QueryKind::kNestedToNested,
        QueryKind::kNestedToFlat}) {
    for (int depth = 0; depth <= cfg.max_depth; ++depth) {
      // Program + (for nested inputs) untimed preparation.
      StatusOr<nrc::Program> program = Status::OK();
      NestedInput nested;
      switch (kind) {
        case QueryKind::kFlatToNested:
          program = tpch::FlatToNested(depth, cfg.width);
          break;
        case QueryKind::kNestedToNested:
          program = tpch::NestedToNested(depth, cfg.width);
          break;
        case QueryKind::kNestedToFlat:
          program = tpch::NestedToFlat(depth, cfg.width);
          break;
      }
      TRANCE_CHECK(program.ok(), program.status().ToString());
      if (kind != QueryKind::kFlatToNested) {
        auto prep = PrepareNestedInput(cfg, data, depth);
        TRANCE_CHECK(prep.ok(), prep.status().ToString());
        nested = std::move(prep).value();
      }

      for (Strategy s : kStrategies) {
        std::string name = std::string(KindName(kind)) + " d" +
                           std::to_string(depth) + " " + StrategyName(s);
        const exec::PipelineOptions run_opts = OptionsForConfig(s, cfg);
        runtime::Cluster cluster(MakeClusterConfig(cfg));
        exec::Executor executor(&cluster, run_opts.exec);
        RunResult r;
        // Register inputs (untimed).
        Status setup = RegisterAllTables(&executor, data);
        if (setup.ok() && kind != QueryKind::kFlatToNested) {
          if (IsShredded(s)) {
            if (nested.shredded.has_value()) {
              setup = RegisterShreddedRun(&executor, "COP", *nested.shredded);
            } else {
              setup = Status::ResourceExhausted("input materialization: " +
                                                nested.shredded_fail);
            }
          } else {
            if (nested.standard.has_value()) {
              executor.Register("COP", *nested.standard);
              // The Part side also needs its shredded alias for SparkSQL? No:
              // standard/sparksql read plain names.
            } else {
              setup = Status::ResourceExhausted("input materialization: " +
                                                nested.standard_fail);
            }
          }
        }
        if (!setup.ok()) {
          r.name = name;
          r.ok = false;
          r.fail_reason = setup.ToString();
          PrintResult(r);
          all.push_back(std::move(r));
          continue;
        }

        size_t out_rows = 0;
        r = TimedRun(name, &cluster, [&]() -> Status {
          if (IsShredded(s)) {
            TRANCE_ASSIGN_OR_RETURN(
                exec::ShreddedRun run,
                exec::RunShredded(*program, &executor, run_opts));
            if (WantsUnshred(s)) {
              TRANCE_ASSIGN_OR_RETURN(runtime::Dataset nested_out,
                                      exec::UnshredRun(&executor, run));
              out_rows = nested_out.NumRows();
            } else {
              out_rows = run.top.NumRows();
            }
            return Status::OK();
          }
          TRANCE_ASSIGN_OR_RETURN(
              runtime::Dataset out,
              exec::RunStandard(*program, &executor, run_opts));
          out_rows = out.NumRows();
          return Status::OK();
        });
        r.out_rows = out_rows;
        PrintResult(r);
        all.push_back(std::move(r));
      }
    }
  }
  return all;
}

}  // namespace bench
}  // namespace trance
