// A tiny Figure-7 run for CI smoke checks (ci/bench_smoke.sh): one
// flat-to-nested depth-0/1 pass per compilation route at a very small scale,
// single-threaded, writing BENCH_fig7_smoke.json. The point is not the
// numbers but that every route executes and the report schema stays in sync
// with docs/METRICS.md.
//
// TRANCE_COLUMNAR=0 disables ExecOptions::enable_columnar (the PR 8 typed
// partition-block path) and renames the report fig7_smoke_columnar_off, so
// CI diffs both sides of the ablation against their own baselines.
//
// TRANCE_SPILL_FORCE=1 shrinks the per-partition memory cap to a few KB so
// the out-of-core spill path (PR 9, runtime/spill.h) engages on every route
// and renames the report fig7_smoke_spill: runs that would FAIL under the
// tiny cap must complete through disk runs with spill_* counters > 0.
#include <cstdlib>
#include <cstring>

#include "fig7_harness.h"

int main() {
  trance::bench::EnableBenchObservability();
  trance::bench::Fig7Config cfg;
  cfg.width = trance::tpch::Width::kNarrow;
  cfg.scale = 0.001;
  cfg.max_depth = 1;
  cfg.num_threads = 1;
  const char* columnar = std::getenv("TRANCE_COLUMNAR");
  const char* spill_force = std::getenv("TRANCE_SPILL_FORCE");
  std::string report = "fig7_smoke";
  if (columnar != nullptr && std::strcmp(columnar, "0") == 0) {
    cfg.enable_columnar = false;
    report = "fig7_smoke_columnar_off";
  }
  bool forced_spill = spill_force != nullptr && std::strcmp(spill_force, "1") == 0;
  if (forced_spill) {
    cfg.partition_memory_cap = 8ull << 10;  // saturates at this scale
    report = "fig7_smoke_spill";
  }
  auto results = trance::bench::RunFig7(cfg);
  TRANCE_CHECK(!results.empty(), "fig7 smoke produced no runs");
  if (forced_spill) {
    uint64_t spill_runs = 0;
    bool any_ok = false;
    for (const auto& r : results) {
      spill_runs += r.spill_runs;
      any_ok = any_ok || r.ok;
    }
    TRANCE_CHECK(any_ok, "forced-spill smoke: every run failed");
    TRANCE_CHECK(spill_runs > 0, "forced-spill smoke spilled nothing");
  }
  TRANCE_CHECK(trance::bench::WriteBenchReport(report, results).ok(),
               "bench report");
  return 0;
}
