// A tiny Figure-7 run for CI smoke checks (ci/bench_smoke.sh): one
// flat-to-nested depth-0/1 pass per compilation route at a very small scale,
// single-threaded, writing BENCH_fig7_smoke.json. The point is not the
// numbers but that every route executes and the report schema stays in sync
// with docs/METRICS.md.
//
// TRANCE_COLUMNAR=0 disables ExecOptions::enable_columnar (the PR 8 typed
// partition-block path) and renames the report fig7_smoke_columnar_off, so
// CI diffs both sides of the ablation against their own baselines.
#include <cstdlib>
#include <cstring>

#include "fig7_harness.h"

int main() {
  trance::bench::EnableBenchObservability();
  trance::bench::Fig7Config cfg;
  cfg.width = trance::tpch::Width::kNarrow;
  cfg.scale = 0.001;
  cfg.max_depth = 1;
  cfg.num_threads = 1;
  const char* columnar = std::getenv("TRANCE_COLUMNAR");
  std::string report = "fig7_smoke";
  if (columnar != nullptr && std::strcmp(columnar, "0") == 0) {
    cfg.enable_columnar = false;
    report = "fig7_smoke_columnar_off";
  }
  auto results = trance::bench::RunFig7(cfg);
  TRANCE_CHECK(!results.empty(), "fig7 smoke produced no runs");
  TRANCE_CHECK(trance::bench::WriteBenchReport(report, results).ok(),
               "bench report");
  return 0;
}
