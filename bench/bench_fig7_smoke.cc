// A tiny Figure-7 run for CI smoke checks (ci/bench_smoke.sh): one
// flat-to-nested depth-0/1 pass per compilation route at a very small scale,
// single-threaded, writing BENCH_fig7_smoke.json. The point is not the
// numbers but that every route executes and the report schema stays in sync
// with docs/METRICS.md.
#include "fig7_harness.h"

int main() {
  trance::bench::EnableBenchObservability();
  trance::bench::Fig7Config cfg;
  cfg.width = trance::tpch::Width::kNarrow;
  cfg.scale = 0.001;
  cfg.max_depth = 1;
  cfg.num_threads = 1;
  auto results = trance::bench::RunFig7(cfg);
  TRANCE_CHECK(!results.empty(), "fig7 smoke produced no runs");
  TRANCE_CHECK(trance::bench::WriteBenchReport("fig7_smoke", results).ok(),
               "bench report");
  return 0;
}
