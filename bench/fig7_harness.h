// Harness for Figure 7 (a: narrow, b: wide): the TPC-H micro-benchmark —
// flat-to-nested / nested-to-nested / nested-to-flat queries with 0-4
// nesting levels, run with SPARKSQL / STANDARD / SHRED / SHRED+UNSHRED.
#ifndef TRANCE_BENCH_FIG7_HARNESS_H_
#define TRANCE_BENCH_FIG7_HARNESS_H_

#include "bench_common.h"
#include "tpch/queries.h"

namespace trance {
namespace bench {

struct Fig7Config {
  tpch::Width width = tpch::Width::kNarrow;
  double scale = 0.004;
  double skew = 0.0;
  int num_partitions = 8;
  uint64_t partition_memory_cap = 3ull << 20;
  uint64_t broadcast_threshold = 48ull << 10;
  int max_depth = 4;
  /// Thread budget forwarded to ClusterConfig::num_threads (0 = auto).
  int num_threads = 0;
  /// Forwarded to ExecOptions::enable_columnar for every route (PR 8
  /// ablation hook; results and simulated stats are flag-invariant).
  bool enable_columnar = true;
  /// Forwarded to ExecOptions::enable_spill for every route (PR 9). With
  /// spilling on, a run over the memory cap completes through disk runs
  /// (spill_* counters > 0) instead of FAILing; results and all
  /// pre-existing stats stay bit-identical to an uncapped run.
  bool enable_spill = true;
};

/// Runs the whole Figure-7 suite and prints the result table. Returns the
/// per-run results (used by the shuffle-table benchmark).
std::vector<RunResult> RunFig7(const Fig7Config& config);

}  // namespace bench
}  // namespace trance

#endif  // TRANCE_BENCH_FIG7_HARNESS_H_
