// Ablations of the design choices DESIGN.md calls out:
//   1. domain elimination on/off (materialization mode) — shredded
//      nested-to-nested, 2 levels;
//   2. join+nest -> cogroup fusion on/off — standard flat-to-nested;
//   3. map-side combine for Gamma-plus on/off — nested-to-flat;
//   4. aggregation pushdown past joins on/off — shredded nested-to-nested
//      on skewed data;
//   5. column pruning on/off — shredded nested-to-flat, 4 levels;
//   6. heavy-key threshold sweep — skew-aware join at skew factor 3;
//   7. narrow-stage fusion on/off — standard flat-to-nested, both the fused
//      single-pass chains and the per-operator materializing baseline;
//   8. fault injection & recovery sweep — standard flat-to-nested across
//      fault rates (sim stays fault-invariant; recovery columns grow);
//   9. flat open-addressing hash tables on/off — standard flat-to-nested,
//      arena-backed linear probing vs. the std::unordered_map route
//      (results and shuffle stats are bit-identical; only wall time and
//      the flat-only table counters differ);
//  10. columnar partition blocks on/off — standard flat-to-nested, typed
//      column storage under the operators vs. the historical row vectors
//      (again stats-transparent: only wall time and the columnar-only
//      counters differ).
#include <cstdio>
#include <optional>

#include "bench_common.h"
#include "tpch/queries.h"
#include "util/strings.h"

namespace trance {
namespace bench {
namespace {

constexpr double kScale = 0.004;
constexpr uint64_t kCap = 64ull << 20;  // uncapped: measure costs, not FAILs

Status RegisterFlat(exec::Executor* executor, const tpch::TpchData& d) {
  struct E {
    const tpch::Table* t;
    const char* n;
  };
  for (const E& e : {E{&d.region, "Region"}, E{&d.nation, "Nation"},
                     E{&d.customer, "Customer"}, E{&d.orders, "Orders"},
                     E{&d.lineitem, "Lineitem"}, E{&d.part, "Part"}}) {
    TRANCE_RETURN_NOT_OK(RegisterTable(executor, *e.t, e.n));
    TRANCE_RETURN_NOT_OK(
        RegisterTable(executor, *e.t, shred::FlatInputName(e.n)));
  }
  return Status::OK();
}

struct Prepared {
  tpch::TpchData data;
  std::optional<runtime::Dataset> nested;
  std::optional<exec::ShreddedRun> shredded;
};

Prepared Prepare(int depth, double skew) {
  Prepared p;
  tpch::TpchConfig tcfg;
  tcfg.scale = kScale;
  tcfg.skew = skew;
  p.data = tpch::Generate(tcfg);
  auto prep = tpch::FlatToNested(depth, tpch::Width::kNarrow).ValueOrDie();
  {
    runtime::Cluster c(BenchClusterConfig(8, kCap, 48 << 10));
    exec::Executor e(&c, {});
    TRANCE_CHECK(RegisterFlat(&e, p.data).ok(), "register");
    p.nested = exec::RunStandard(prep, &e, {}).ValueOrDie();
  }
  {
    runtime::Cluster c(BenchClusterConfig(8, kCap, 48 << 10));
    exec::Executor e(&c, {});
    TRANCE_CHECK(RegisterFlat(&e, p.data).ok(), "register");
    p.shredded = exec::RunShredded(prep, &e, {}).ValueOrDie();
  }
  return p;
}

RunResult RunShred(const std::string& name, const Prepared& p,
                   const nrc::Program& q, exec::PipelineOptions opts,
                   shred::MaterializeMode mode,
                   runtime::ClusterConfig ccfg) {
  runtime::Cluster cluster(ccfg);
  exec::Executor executor(&cluster, opts.exec);
  TRANCE_CHECK(RegisterFlat(&executor, p.data).ok(), "register");
  TRANCE_CHECK(RegisterShreddedRun(&executor, "COP", *p.shredded).ok(),
               "register shredded");
  return TimedRun(name, &cluster, [&]() -> Status {
    TRANCE_ASSIGN_OR_RETURN(exec::ShreddedRun run,
                            exec::RunShredded(q, &executor, opts, mode));
    (void)run;
    return Status::OK();
  });
}

RunResult RunStdCfg(const std::string& name, const Prepared& p,
                    const nrc::Program& q, exec::PipelineOptions opts,
                    bool needs_nested, runtime::ClusterConfig ccfg) {
  runtime::Cluster cluster(ccfg);
  exec::Executor executor(&cluster, opts.exec);
  TRANCE_CHECK(RegisterFlat(&executor, p.data).ok(), "register");
  if (needs_nested) executor.Register("COP", *p.nested);
  return TimedRun(name, &cluster, [&]() -> Status {
    TRANCE_ASSIGN_OR_RETURN(runtime::Dataset out,
                            exec::RunStandard(q, &executor, opts));
    (void)out;
    return Status::OK();
  });
}

RunResult RunStd(const std::string& name, const Prepared& p,
                 const nrc::Program& q, exec::PipelineOptions opts,
                 bool needs_nested) {
  return RunStdCfg(name, p, q, opts, needs_nested,
                   BenchClusterConfig(8, kCap, 48 << 10));
}

}  // namespace
}  // namespace bench
}  // namespace trance

int main() {
  using namespace trance;
  using namespace trance::bench;

  EnableBenchObservability();
  std::vector<RunResult> all;
  auto rec = [&all](RunResult r) {
    PrintResult(r);
    all.push_back(std::move(r));
  };

  // 1. Domain elimination.
  {
    PrintHeader("Ablation 1: domain elimination (shredded nested-to-nested d2)");
    Prepared p = Prepare(2, 0.0);
    auto q = tpch::NestedToNested(2, tpch::Width::kNarrow).ValueOrDie();
    auto ccfg = BenchClusterConfig(8, kCap, 48 << 10);
    rec(RunShred("domain elimination ON (rules 1/2/3)", p, q, {},
                 shred::MaterializeMode::kDomainElimination, ccfg));
    rec(RunShred("domain elimination OFF (Fig. 5 label domains)", p,
                 q, {}, shred::MaterializeMode::kBaseline, ccfg));
  }

  // 2. Cogroup fusion.
  {
    PrintHeader("Ablation 2: join+nest -> cogroup fusion (standard flat-to-nested d2)");
    Prepared p = Prepare(2, 0.0);
    auto q = tpch::FlatToNested(2, tpch::Width::kNarrow).ValueOrDie();
    exec::PipelineOptions on;
    rec(RunStd("cogroup fusion ON", p, q, on, false));
    exec::PipelineOptions off;
    off.optimizer.enable_cogroup = false;
    rec(RunStd("cogroup fusion OFF (the SparkSQL restriction)", p, q,
               off, false));
  }

  // 3. Map-side combine.
  {
    PrintHeader("Ablation 3: map-side combine for Gamma-plus (nested-to-flat d2)");
    Prepared p = Prepare(2, 0.0);
    auto q = tpch::NestedToFlat(2, tpch::Width::kNarrow).ValueOrDie();
    exec::PipelineOptions on;
    rec(RunStd("map-side combine ON", p, q, on, true));
    exec::PipelineOptions off;
    off.exec.map_side_combine = false;
    rec(RunStd("map-side combine OFF", p, q, off, true));
  }

  // 4. Aggregation pushdown on skewed data.
  {
    PrintHeader("Ablation 4: aggregation pushdown past joins (shredded "
                "nested-to-nested d2, skew 3)");
    Prepared p = Prepare(2, 3.0);
    auto q = tpch::NestedToNested(2, tpch::Width::kNarrow).ValueOrDie();
    auto ccfg = BenchClusterConfig(8, kCap, 48 << 10);
    exec::PipelineOptions on;
    on.optimizer.enable_agg_pushdown = true;
    rec(RunShred("agg pushdown ON", p, q, on,
                 shred::MaterializeMode::kDomainElimination, ccfg));
    rec(RunShred("agg pushdown OFF", p, q, {},
                 shred::MaterializeMode::kDomainElimination, ccfg));
  }

  // 5. Column pruning.
  {
    PrintHeader("Ablation 5: column pruning (shredded nested-to-flat d4)");
    Prepared p = Prepare(4, 0.0);
    auto q = tpch::NestedToFlat(4, tpch::Width::kNarrow).ValueOrDie();
    auto ccfg = BenchClusterConfig(8, kCap, 48 << 10);
    exec::PipelineOptions on;
    rec(RunShred("column pruning ON", p, q, on,
                 shred::MaterializeMode::kDomainElimination, ccfg));
    exec::PipelineOptions off;
    off.optimizer.enable_column_pruning = false;
    rec(RunShred("column pruning OFF", p, q, off,
                 shred::MaterializeMode::kDomainElimination, ccfg));
  }

  // 6. Heavy-key threshold sweep.
  {
    PrintHeader("Ablation 6: heavy-key threshold (skew-aware shredded "
                "nested-to-nested d2, skew 3)");
    Prepared p = Prepare(2, 3.0);
    auto q = tpch::NestedToNested(2, tpch::Width::kNarrow).ValueOrDie();
    for (double threshold : {0.01, 0.025, 0.05, 0.10}) {
      auto ccfg = BenchClusterConfig(8, kCap, 48 << 10);
      ccfg.heavy_key_threshold = threshold;
      exec::PipelineOptions opts;
      opts.exec.skew_aware = true;
      rec(RunShred("threshold " + FormatDouble(threshold, 3), p, q,
                   opts, shred::MaterializeMode::kDomainElimination,
                   ccfg));
    }
  }
  // 7. Narrow-stage fusion.
  {
    PrintHeader("Ablation 7: narrow-stage fusion (standard flat-to-nested d2)");
    Prepared p = Prepare(2, 0.0);
    auto q = tpch::FlatToNested(2, tpch::Width::kNarrow).ValueOrDie();
    exec::PipelineOptions on;
    rec(RunStd("stage fusion ON", p, q, on, false));
    exec::PipelineOptions off;
    off.exec.enable_stage_fusion = false;
    rec(RunStd("stage fusion OFF (materialize between narrow ops)", p, q,
               off, false));
  }
  // 8. Fault injection & recovery.
  {
    PrintHeader("Ablation 8: fault injection & recovery (standard "
                "flat-to-nested d2)");
    Prepared p = Prepare(2, 0.0);
    auto q = tpch::FlatToNested(2, tpch::Width::kNarrow).ValueOrDie();
    for (double rate : {0.0, 0.05, 0.2}) {
      auto ccfg = BenchClusterConfig(8, kCap, 48 << 10);
      ccfg.faults.enabled = rate > 0;
      ccfg.faults.fault_rate = rate;
      RunResult r = RunStdCfg("fault rate " + FormatDouble(rate, 2), p, q, {},
                              false, ccfg);
      // Recovery is stats-transparent: shuffle/sim are identical across
      // rates; only the recovery columns grow.
      std::printf(
          "    faults=%llu retries=%llu recovery=%ss (sim unchanged)\n",
          static_cast<unsigned long long>(r.injected_faults),
          static_cast<unsigned long long>(r.retries),
          FormatDouble(r.recovery_sim_s, 2).c_str());
      rec(std::move(r));
    }
  }
  // 9. Flat open-addressing hash tables.
  {
    PrintHeader("Ablation 9: flat hash tables (standard flat-to-nested d2)");
    Prepared p = Prepare(2, 0.0);
    auto q = tpch::FlatToNested(2, tpch::Width::kNarrow).ValueOrDie();
    exec::PipelineOptions on;
    RunResult r_on = RunStd("flat hash ON", p, q, on, false);
    exec::PipelineOptions off;
    off.exec.enable_flat_hash = false;
    RunResult r_off =
        RunStd("flat hash OFF (std::unordered_map)", p, q, off, false);
    // The flag only changes the hash-table implementation: every simulated
    // stat must match, and the flat-only counters must vanish when off.
    TRANCE_CHECK(r_on.shuffle_bytes == r_off.shuffle_bytes &&
                     r_on.hash_build_rows == r_off.hash_build_rows &&
                     r_on.hash_probe_hits == r_off.hash_probe_hits,
                 "flat hash ablation must be stats-transparent");
    TRANCE_CHECK(r_on.hash_table_bytes > 0 && r_off.hash_table_bytes == 0,
                 "flat-only counters gate on the flag");
    rec(std::move(r_on));
    rec(std::move(r_off));
  }
  // 10. Columnar partition blocks.
  {
    PrintHeader("Ablation 10: columnar blocks (standard flat-to-nested d2)");
    Prepared p = Prepare(2, 0.0);
    auto q = tpch::FlatToNested(2, tpch::Width::kNarrow).ValueOrDie();
    exec::PipelineOptions on;
    RunResult r_on = RunStd("columnar ON", p, q, on, false);
    exec::PipelineOptions off;
    off.exec.enable_columnar = false;
    RunResult r_off =
        RunStd("columnar OFF (row vectors)", p, q, off, false);
    // The flag only changes the storage representation: every simulated
    // stat must match, and the columnar-only counters must vanish when off.
    TRANCE_CHECK(r_on.shuffle_bytes == r_off.shuffle_bytes &&
                     r_on.sim_s == r_off.sim_s &&
                     r_on.peak_partition == r_off.peak_partition &&
                     r_on.hash_build_rows == r_off.hash_build_rows &&
                     r_on.hash_probe_hits == r_off.hash_probe_hits &&
                     r_on.key_encode_bytes == r_off.key_encode_bytes,
                 "columnar ablation must be stats-transparent");
    TRANCE_CHECK(r_on.columnar_bytes > 0 && r_off.columnar_bytes == 0 &&
                     r_off.column_to_row_conversions == 0,
                 "columnar-only counters gate on the flag");
    rec(std::move(r_on));
    rec(std::move(r_off));
  }
  TRANCE_CHECK(WriteBenchReport("ablations", all).ok(), "bench report");
  return 0;
}
