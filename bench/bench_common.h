// Shared harness for the figure/table benchmarks: strategy definitions,
// timed execution with FAIL capture (simulated worker memory saturation),
// dataset preparation for all compilation routes, and table rendering.
//
// Reported quantities per run:
//   wall   — actual wall-clock of the in-process execution;
//   sim    — simulated cluster time (sum over stages of straggler-bound
//            work + shuffle cost; see runtime/stats.h), the number whose
//            *shape* reproduces the paper's figures;
//   shuffle / max-stage shuffle / peak partition — data-movement stats.
// A run that exhausts a worker's memory reports FAIL, like the paper's
// missing bars.
#ifndef TRANCE_BENCH_BENCH_COMMON_H_
#define TRANCE_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "exec/pipeline.h"
#include "obs/metrics.h"
#include "runtime/cluster.h"
#include "tpch/generator.h"

namespace trance {
namespace bench {

struct RunResult {
  std::string name;
  bool ok = false;
  std::string fail_reason;
  /// Resolved thread budget of the run's cluster (partition-parallel
  /// operator execution; see ClusterConfig::num_threads).
  int num_threads = 1;
  double wall_s = 0;
  double sim_s = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t max_stage_shuffle = 0;
  uint64_t peak_partition = 0;
  /// Stage-fusion telemetry: stages that ran a fused narrow chain, and the
  /// bytes of intermediate Datasets the fusion never materialized.
  uint64_t fused_stages = 0;
  uint64_t intermediate_bytes_avoided = 0;
  /// Fault-injection telemetry (all zero unless the run's cluster enabled
  /// ClusterConfig::faults): faults injected, task re-executions performed,
  /// and the simulated recovery time (backoff + discarded work — reported
  /// separately from sim_s, which stays fault-invariant). See docs/METRICS.md.
  uint64_t injected_faults = 0;
  uint64_t retries = 0;
  double recovery_sim_s = 0;
  /// Encoded-key telemetry (PR 5): bytes written by the binary key codec
  /// (0 when ExecOptions::enable_key_codec is off) and the codec-invariant
  /// keyed hash-table counters (new keys built, lookups that hit, worst
  /// rows-per-key chain across stages). See docs/METRICS.md.
  uint64_t key_encode_bytes = 0;
  uint64_t hash_build_rows = 0;
  uint64_t hash_probe_hits = 0;
  uint64_t hash_max_chain = 0;
  /// Flat hash-table telemetry (PR 7): table footprint, slot-array
  /// doublings, longest probe sequence. All zero when
  /// ExecOptions::enable_flat_hash is off. See docs/METRICS.md.
  uint64_t hash_table_bytes = 0;
  uint64_t hash_resizes = 0;
  uint64_t hash_probe_len_max = 0;
  /// Columnar-block telemetry (PR 8): typed partition-block footprint built
  /// by operators and rows materialized back out of blocks. Both zero when
  /// ExecOptions::enable_columnar is off. See docs/METRICS.md.
  uint64_t columnar_bytes = 0;
  uint64_t column_to_row_conversions = 0;
  /// Out-of-core spill telemetry (PR 9): bytes written to / streamed back
  /// from run files, run files produced, merge passes. All zero when
  /// nothing spills or ExecOptions::enable_spill is off. See
  /// docs/METRICS.md and docs/STORAGE.md.
  uint64_t spill_bytes_written = 0;
  uint64_t spill_bytes_read = 0;
  uint64_t spill_runs = 0;
  uint64_t spill_merge_passes = 0;
  /// Rows restored from columnar spill records without a disk-side
  /// row-form conversion (PR 10): block-resident partitions spill and
  /// restore in columnar form end to end.
  uint64_t spill_rowify_avoided = 0;
  size_t out_rows = 0;
  /// Full per-stage telemetry of the run (partition histograms, movement
  /// decisions, straggler summary) for the JSON bench report.
  runtime::JobStats stats;
  /// Snapshot of the cluster's metric registry at the end of the run.
  /// Serialized generically into the report's per-run `metrics` object, so
  /// a metric registered anywhere in the runtime appears in BENCH_*.json
  /// with no bench-side edits.
  std::vector<obs::MetricSample> metrics;
};

/// The evaluation strategies of Section 6.
enum class Strategy {
  kStandard,      // standard compilation (Section 3)
  kStandardSkew,  // + skew-aware operators
  kShred,         // shredded compilation, output left shredded
  kShredSkew,
  kUnshred,       // shredded compilation + unshredding to nested output
  kUnshredSkew,
  kSparkSql,      // competitor mode: standard route without cogroup fusion
};

const char* StrategyName(Strategy s);
bool IsShredded(Strategy s);
bool IsSkewAware(Strategy s);
bool WantsUnshred(Strategy s);
exec::PipelineOptions OptionsFor(Strategy s);

/// Cluster configuration with the benchmark cost model: small per-stage
/// overhead and shuffle-dominated costs, so the simulated time tracks data
/// movement (the quantity the paper's figures vary with).
runtime::ClusterConfig BenchClusterConfig(int num_partitions,
                                          uint64_t partition_memory_cap,
                                          uint64_t broadcast_threshold);

/// Registers a TPC-H table as an input dataset (untimed; the paper reports
/// runtime "after caching all inputs").
Status RegisterTable(exec::Executor* executor, const tpch::Table& table,
                     const std::string& name);

/// Registers a previously computed shredded run as shredded input `name`
/// (name_F + name_D_<path>).
Status RegisterShreddedRun(exec::Executor* executor, const std::string& name,
                           const exec::ShreddedRun& run);

/// Times `body` on a fresh stats scope of `cluster`; captures FAIL.
RunResult TimedRun(const std::string& name, runtime::Cluster* cluster,
                   const std::function<Status()>& body);

/// Renders results as an aligned table.
void PrintHeader(const std::string& title);
void PrintResult(const RunResult& r);

/// Ratio helper for the shuffle-comparison tables ("n/a" on zero/FAIL).
std::string Ratio(const RunResult& num, const RunResult& den,
                  uint64_t RunResult::*field);

// --- Observability hooks -------------------------------------------------

/// Turns on obs::Tracer::Global() so TimedRun records one span per run and
/// the per-stage trace events land on the runtime track. Benchmarks call
/// this at the top of main(); it is honor-the-env cheap otherwise.
void EnableBenchObservability();

/// Writes BENCH_<name>.json (machine-readable run metrics: per-run scalars
/// plus per-stage partition-load percentile summaries) and, when tracing is
/// enabled, BENCH_<name>_trace.json (Chrome trace_event format, loadable in
/// chrome://tracing or Perfetto). Output directory comes from the
/// TRANCE_BENCH_OUT env var (default: current directory).
/// `baseline`, when non-null, holds the same runs executed with
/// num_threads = 1 (matched per index); each run then additionally reports
/// wall_seconds_1thread and speedup_vs_1thread, and the report gains a
/// top-level "scaling" summary (total wall at 1 thread vs. this run's
/// thread count). Simulated metrics are thread-count-invariant, so only the
/// wall numbers scale.
Status WriteBenchReport(const std::string& bench_name,
                        const std::vector<RunResult>& results,
                        const std::vector<RunResult>* baseline = nullptr);

}  // namespace bench
}  // namespace trance

#endif  // TRANCE_BENCH_BENCH_COMMON_H_
