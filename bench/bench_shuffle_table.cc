// The shuffle-volume comparisons quoted in Section 6's text:
//  - flat-to-nested: Standard/Unshred max-stage shuffle ~20x Shred's;
//  - nested-to-nested: Standard total shuffle ~3x Shred's;
//  - nested-to-flat (wide): Standard total shuffle >2x Shred's;
//  - the skew-aware join shuffles far less than the skew-unaware one at
//    moderate (factor 2) and high (factor 4) skew.
// Exact multipliers depend on the simulator scale; the table reports who
// shuffles more and by what factor.
#include <cstdio>

#include "bench_common.h"
#include "fig7_harness.h"
#include "tpch/queries.h"
#include "util/strings.h"

namespace trance {
namespace bench {
namespace {

const RunResult* Find(const std::vector<RunResult>& rs,
                      const std::string& name) {
  for (const auto& r : rs) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

void Compare(const char* label, const std::vector<RunResult>& rs,
             const std::string& a, const std::string& b,
             uint64_t RunResult::*field) {
  const RunResult* ra = Find(rs, a);
  const RunResult* rb = Find(rs, b);
  if (ra == nullptr || rb == nullptr) {
    std::printf("%-58s  (missing runs)\n", label);
    return;
  }
  std::printf("%-58s  %s  (%s vs %s)\n", label,
              Ratio(*ra, *rb, field).c_str(),
              ra->ok ? FormatBytes(ra->*field).c_str() : "FAIL",
              rb->ok ? FormatBytes(rb->*field).c_str() : "FAIL");
}

}  // namespace
}  // namespace bench
}  // namespace trance

int main() {
  using namespace trance;
  using namespace trance::bench;

  EnableBenchObservability();
  Fig7Config narrow;
  narrow.width = tpch::Width::kNarrow;
  narrow.partition_memory_cap = 64ull << 20;  // uncapped: measure volumes
  auto nruns = RunFig7(narrow);
  Fig7Config wide = narrow;
  wide.width = tpch::Width::kWide;
  auto wruns = RunFig7(wide);

  std::printf("\n=== Shuffle comparisons (Section 6 text) ===\n");
  Compare("flat-to-nested wide d2: STANDARD vs SHRED (max stage)", wruns,
          "flat_to_nested d2 STANDARD", "flat_to_nested d2 SHRED",
          &RunResult::max_stage_shuffle);
  Compare("flat-to-nested wide d4: STANDARD vs SHRED (max stage)", wruns,
          "flat_to_nested d4 STANDARD", "flat_to_nested d4 SHRED",
          &RunResult::max_stage_shuffle);
  Compare("nested-to-nested narrow d2: STANDARD vs SHRED (total)", nruns,
          "nested_to_nested d2 STANDARD", "nested_to_nested d2 SHRED",
          &RunResult::shuffle_bytes);
  Compare("nested-to-nested wide d2: STANDARD vs SHRED (total)", wruns,
          "nested_to_nested d2 STANDARD", "nested_to_nested d2 SHRED",
          &RunResult::shuffle_bytes);
  Compare("nested-to-flat wide d2: STANDARD vs SHRED (total)", wruns,
          "nested_to_flat d2 STANDARD", "nested_to_flat d2 SHRED",
          &RunResult::shuffle_bytes);
  std::printf(
      "\n(skew join shuffle reductions: see bench_fig8_skew — SHRED vs "
      "SHRED_SKEW at skew 2 and 4)\n");

  std::vector<RunResult> all = nruns;
  all.insert(all.end(), wruns.begin(), wruns.end());
  TRANCE_CHECK(WriteBenchReport("shuffle_table", all).ok(), "bench report");
  return 0;
}
