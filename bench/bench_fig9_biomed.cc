// Figure 9: the end-to-end biomedical pipeline (5 steps) on the small and
// full datasets, comparing SPARKSQL / STANDARD / SHRED. Each route chains
// its own per-step outputs; once a step FAILs, the rest of that route's
// pipeline is dead (as in the paper, where Standard and SparkSQL fail during
// Step2 on the full dataset while Shred survives the whole pipeline).
#include <iterator>
#include <optional>

#include "bench_common.h"
#include "exec/bridge.h"
#include "biomed/generator.h"
#include "biomed/pipeline.h"
#include "util/strings.h"

namespace trance {
namespace bench {
namespace {

Status RegisterBase(exec::Executor* executor, const biomed::BiomedData& d) {
  // Flat inputs serve both routes; nested inputs (BN2, BN1) are registered
  // in standard form and, for the shredded route, pre-shredded via the
  // dataset shredder below.
  struct E {
    const runtime::Schema* s;
    const std::vector<runtime::Row>* r;
    const char* name;
    bool flat;
  };
  for (const E& e : {E{&d.bn2_schema, &d.bn2, "BN2", false},
                     E{&d.bn1_schema, &d.bn1, "BN1", false},
                     E{&d.bf1_schema, &d.bf1, "BF1", true},
                     E{&d.bf2_schema, &d.bf2, "BF2", true},
                     E{&d.bf3_schema, &d.bf3, "BF3", true}}) {
    TRANCE_ASSIGN_OR_RETURN(
        runtime::Dataset ds,
        runtime::Source(executor->cluster(), *e.s, *e.r, e.name));
    executor->Register(e.name, ds);
    if (e.flat) {
      executor->Register(shred::FlatInputName(e.name), std::move(ds));
    }
  }
  return Status::OK();
}

/// Shreds a nested input via an identity query on the shredded route
/// (untimed preparation).
Status RegisterShreddedNestedInput(exec::Executor* executor,
                                   const std::string& name,
                                   const nrc::TypePtr& type) {
  // Identity program: N <= for x in <name> union {<all attrs>}.
  nrc::Program identity;
  identity.inputs.push_back({name, type});
  std::vector<nrc::NamedExpr> fields;
  for (const auto& f : type->element()->fields()) {
    fields.push_back({f.name, nrc::Expr::Proj(nrc::Expr::Var("x"), f.name)});
  }
  identity.assignments.push_back(
      {"N", nrc::Expr::ForUnion(
                "x", nrc::Expr::Var(name),
                nrc::Expr::Singleton(nrc::Expr::Tuple(fields)))});
  // The shredded route needs the *input* itself shredded: do it via the
  // value shredder over the dataset rows.
  TRANCE_ASSIGN_OR_RETURN(runtime::Dataset ds, executor->GetDataset(name));
  TRANCE_ASSIGN_OR_RETURN(nrc::Value v,
                          exec::RowsToValue(ds.Collect(), ds.schema));
  static int64_t seed = 0;
  seed += 50000000;
  return exec::RegisterShreddedInput(executor, name, type, v, seed);
}

}  // namespace

std::vector<RunResult> RunDataset(const char* label,
                                  const biomed::BiomedConfig& cfg,
                                  uint64_t cap) {
  std::vector<RunResult> all;
  biomed::BiomedData data = biomed::Generate(cfg);
  const Strategy kStrategies[] = {Strategy::kSparkSql, Strategy::kStandard,
                                  Strategy::kShred};
  for (Strategy s : kStrategies) {
    runtime::Cluster cluster(BenchClusterConfig(8, cap, 48 << 10));
    exec::Executor executor(&cluster, OptionsFor(s).exec);
    Status setup = RegisterBase(&executor, data);
    if (setup.ok() && IsShredded(s)) {
      setup = RegisterShreddedNestedInput(&executor, "BN2",
                                          biomed::Bn2Type());
      if (setup.ok()) {
        setup = RegisterShreddedNestedInput(&executor, "BN1",
                                            biomed::Bn1Type());
      }
    }
    TRANCE_CHECK(setup.ok(), setup.ToString());

    bool dead = false;
    std::string dead_reason;
    double total = 0;
    for (int step = 1; step <= biomed::kNumSteps; ++step) {
      std::string name = std::string(label) + " Step" +
                         std::to_string(step) + " " + StrategyName(s);
      if (dead) {
        RunResult r;
        r.name = name;
        r.ok = false;
        r.fail_reason = "pipeline dead: " + dead_reason;
        PrintResult(r);
        all.push_back(std::move(r));
        continue;
      }
      auto program = biomed::StepProgram(step).ValueOrDie();
      std::string out_var = "Step" + std::to_string(step);
      size_t out_rows = 0;
      RunResult r = TimedRun(name, &cluster, [&]() -> Status {
        if (IsShredded(s)) {
          TRANCE_ASSIGN_OR_RETURN(
              exec::ShreddedRun run,
              exec::RunShredded(program, &executor, OptionsFor(s)));
          // The next step consumes the shredded output directly (Section 6:
          // an aggregation pipeline never needs to reassociate dictionaries).
          TRANCE_RETURN_NOT_OK(
              RegisterShreddedRun(&executor, out_var, run));
          out_rows = run.top.NumRows();
          return Status::OK();
        }
        TRANCE_ASSIGN_OR_RETURN(
            runtime::Dataset out,
            exec::RunStandard(program, &executor, OptionsFor(s)));
        out_rows = out.NumRows();
        executor.Register(out_var, std::move(out));
        return Status::OK();
      });
      r.out_rows = out_rows;
      total += r.ok ? r.sim_s : 0;
      PrintResult(r);
      if (!r.ok) {
        dead = true;
        dead_reason = "Step" + std::to_string(step) + " " + r.fail_reason;
      }
      all.push_back(std::move(r));
    }
    std::printf("%-44s %9s %9.2f\n",
                (std::string(label) + " TOTAL " + StrategyName(s) +
                 (dead ? " (FAILED)" : ""))
                    .c_str(),
                "", total);
  }
  return all;
}

}  // namespace bench
}  // namespace trance

int main() {
  using namespace trance;
  bench::EnableBenchObservability();
  bench::PrintHeader("Figure 9: biomedical end-to-end pipeline (E2E)");
  biomed::BiomedConfig small = biomed::BiomedConfig::Small();
  biomed::BiomedConfig full = biomed::BiomedConfig::Full();
  auto results = bench::RunDataset("small", small, 3ull << 20);
  auto full_results = bench::RunDataset("full", full, 3ull << 20);
  results.insert(results.end(),
                 std::make_move_iterator(full_results.begin()),
                 std::make_move_iterator(full_results.end()));
  TRANCE_CHECK(bench::WriteBenchReport("fig9_biomed", results).ok(),
               "bench report");
  return 0;
}
