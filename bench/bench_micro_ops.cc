// Micro-benchmarks (google-benchmark) for the runtime primitives and the
// shredding kernels: shuffle hash join vs broadcast join, nest vs cogroup,
// sum aggregation with/without map-side combine, value shredding and
// unshredding, heavy-key detection, and dedup.
//
// The keyed operators (join, nest, dedup) take a second argument toggling
// ExecOptions::enable_key_codec, the binary-key/legacy-KeyView ablation of
// PR 5; BM_FlatHashBuild/BM_FlatHashProbe compare the flat open-addressing
// table against the std::unordered_map fallback directly (PR 7);
// BM_ColumnScan/BM_ColumnProject compare typed PartitionBlock column loops
// against the historical row-vector Field dispatch (PR 8). main()
// additionally runs fixed-size rows/sec regression passes over dedup, join
// build/probe, and nest — codec on/off to BENCH_micro_key_codec.json, flat
// table on/off to BENCH_micro_flat_hash.json, columnar blocks on/off
// (plus the raw scan comparison) to BENCH_micro_columnar.json, and the
// block-resident vs pack-per-stage comparison to
// BENCH_micro_resident.json — before the
// google-benchmark suite starts.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "nrc/builder.h"
#include "runtime/cluster.h"
#include "runtime/column.h"
#include "runtime/flat_hash.h"
#include "runtime/key_codec.h"
#include "runtime/ops.h"
#include "runtime/serde.h"
#include "shred/value_shredder.h"
#include "skew/skew.h"
#include "util/random.h"

namespace trance {
namespace {

using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::Dataset;
using runtime::Field;
using runtime::Row;
using runtime::Schema;

Schema KvSchema() {
  return Schema({{"k", nrc::Type::Int()}, {"v", nrc::Type::Real()}});
}

Dataset MakeKv(Cluster* cluster, int64_t n, int64_t keys, double zipf,
               uint64_t seed) {
  Rng rng(seed);
  ZipfSampler sampler(static_cast<size_t>(keys), zipf);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Row({Field::Int(static_cast<int64_t>(sampler.Sample(&rng))),
                        Field::Real(rng.NextDouble())}));
  }
  return runtime::Source(cluster, KvSchema(), std::move(rows), "kv")
      .ValueOrDie();
}

void BM_HashJoin(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  cluster.set_key_codec_enabled(state.range(1) != 0);
  Dataset l = MakeKv(&cluster, state.range(0), 1000, 0.0, 1);
  Dataset r = MakeKv(&cluster, 1000, 1000, 0.0, 2);
  for (auto _ : state) {
    auto j = runtime::HashJoin(&cluster, l, r, {0}, {0},
                               runtime::JoinType::kInner, "join");
    benchmark::DoNotOptimize(j);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)
    ->Args({10000, 1})
    ->Args({10000, 0})
    ->Args({100000, 1})
    ->Args({100000, 0});

void BM_BroadcastJoin(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  Dataset l = MakeKv(&cluster, state.range(0), 1000, 0.0, 1);
  Dataset r = MakeKv(&cluster, 1000, 1000, 0.0, 2);
  for (auto _ : state) {
    auto j = runtime::BroadcastJoin(&cluster, l, r, {0}, {0},
                                    runtime::JoinType::kInner, "bjoin");
    benchmark::DoNotOptimize(j);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BroadcastJoin)->Arg(10000)->Arg(100000);

void BM_SkewAwareJoin(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  // Heavily skewed left side.
  Dataset l = MakeKv(&cluster, state.range(0), 1000, 3.0, 1);
  Dataset r = MakeKv(&cluster, 1000, 1000, 0.0, 2);
  for (auto _ : state) {
    auto lt = skew::SkewTriple::AllLight(l);
    auto rt = skew::SkewTriple::AllLight(r);
    auto j = skew::SkewAwareJoin(&cluster, lt, rt, {0}, {0},
                                 runtime::JoinType::kInner, "sjoin");
    benchmark::DoNotOptimize(j);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SkewAwareJoin)->Arg(10000)->Arg(100000);

void BM_SumAggregate(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  Dataset ds = MakeKv(&cluster, state.range(0), 64, 0.0, 3);
  bool combine = state.range(1) != 0;
  for (auto _ : state) {
    auto out =
        runtime::SumAggregate(&cluster, ds, {0}, {1}, combine, "sum");
    benchmark::DoNotOptimize(out);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SumAggregate)->Args({100000, 1})->Args({100000, 0});

void BM_NestGroup(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  cluster.set_key_codec_enabled(state.range(1) != 0);
  Dataset ds = MakeKv(&cluster, state.range(0), 1024, 0.0, 4);
  for (auto _ : state) {
    auto out = runtime::NestGroup(&cluster, ds, {0}, {1}, "bag", "nest");
    benchmark::DoNotOptimize(out);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NestGroup)->Args({100000, 1})->Args({100000, 0});

Dataset MakeDup(Cluster* cluster, int64_t n, int64_t distinct, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int64_t k = rng.UniformRange(0, distinct);
    rows.push_back(Row({Field::Int(k), Field::Str("p" + std::to_string(k))}));
  }
  Schema s({{"k", nrc::Type::Int()}, {"p", nrc::Type::String()}});
  return runtime::Source(cluster, std::move(s), std::move(rows), "dup")
      .ValueOrDie();
}

void BM_Distinct(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  cluster.set_key_codec_enabled(state.range(1) != 0);
  // ~16 duplicates per distinct row: the membership-test path dominates
  // (the path that historically deep-copied the whole row per test).
  Dataset ds = MakeDup(&cluster, state.range(0), state.range(0) / 16, 6);
  for (auto _ : state) {
    auto out = runtime::Distinct(&cluster, ds, "dedup");
    benchmark::DoNotOptimize(out);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Distinct)->Args({100000, 1})->Args({100000, 0});

void BM_HeavyKeyDetection(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  Dataset ds = MakeKv(&cluster, state.range(0), 1000, 2.0, 5);
  for (auto _ : state) {
    auto hk = skew::DetectHeavyKeys(&cluster, ds, {0});
    benchmark::DoNotOptimize(hk);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HeavyKeyDetection)->Arg(100000);

nrc::Value MakeNested(int64_t customers, int64_t orders_per,
                      int64_t parts_per) {
  Rng rng(7);
  std::vector<nrc::Value> tops;
  for (int64_t c = 0; c < customers; ++c) {
    std::vector<nrc::Value> os;
    for (int64_t o = 0; o < orders_per; ++o) {
      std::vector<nrc::Value> ps;
      for (int64_t k = 0; k < parts_per; ++k) {
        ps.push_back(nrc::Value::Tuple(
            {{"pid", nrc::Value::Int(rng.UniformRange(0, 100))},
             {"qty", nrc::Value::Real(rng.NextDouble())}}));
      }
      os.push_back(nrc::Value::Tuple({{"odate", nrc::Value::Int(o)},
                                      {"oparts", nrc::Value::Bag(ps)}}));
    }
    tops.push_back(nrc::Value::Tuple(
        {{"cname", nrc::Value::Str("c" + std::to_string(c))},
         {"corders", nrc::Value::Bag(os)}}));
  }
  return nrc::Value::Bag(tops);
}

nrc::TypePtr NestedType() {
  using nrc::dsl::BagTu;
  using nrc::Type;
  return BagTu(
      {{"cname", Type::String()},
       {"corders",
        BagTu({{"odate", Type::Int()},
               {"oparts",
                BagTu({{"pid", Type::Int()}, {"qty", Type::Real()}})}})}});
}

namespace key_codec = runtime::key_codec;
namespace flat_hash = runtime::flat_hash;

/// Pre-encoded distinct keys for the container micro-benchmarks (an int +
/// short string key, the shape the keyed operators encode most).
std::vector<key_codec::EncodedKey> MakeEncodedKeys(int64_t n) {
  key_codec::KeyEncoder enc;
  std::vector<key_codec::EncodedKey> keys;
  keys.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Row row({Field::Int(i), Field::Str("k" + std::to_string(i))});
    keys.push_back(key_codec::Materialize(enc.EncodeRow(row).ValueOrDie()));
  }
  return keys;
}

/// Direct container ablation: insert n distinct pre-encoded keys into the
/// flat table (arg 1 = 1) or the std::unordered_map fallback (arg 1 = 0),
/// growth included (tables start empty, as nest/aggregate builds do).
template <class Index>
void FlatHashBuildLoop(benchmark::State& state,
                       const std::vector<key_codec::EncodedKey>& keys) {
  for (auto _ : state) {
    Index idx;
    for (const auto& k : keys) {
      benchmark::DoNotOptimize(
          idx.FindOrInsert(key_codec::EncodedKeyView{k.hash, k.bytes}));
    }
    benchmark::DoNotOptimize(idx.size());
  }
}

void BM_FlatHashBuild(benchmark::State& state) {
  std::vector<key_codec::EncodedKey> keys = MakeEncodedKeys(state.range(0));
  if (state.range(1) != 0) {
    FlatHashBuildLoop<flat_hash::FlatKeyIndex>(state, keys);
  } else {
    FlatHashBuildLoop<flat_hash::StdKeyIndex>(state, keys);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlatHashBuild)
    ->Args({1000, 1})
    ->Args({1000, 0})
    ->Args({100000, 1})
    ->Args({100000, 0});

/// Probe side of the same ablation: every lookup hits a key built once
/// outside the timed loop (the join-probe access pattern).
template <class Index>
void FlatHashProbeLoop(benchmark::State& state,
                       const std::vector<key_codec::EncodedKey>& keys) {
  Index idx(keys.size());
  for (const auto& k : keys) {
    idx.FindOrInsert(key_codec::EncodedKeyView{k.hash, k.bytes});
  }
  for (auto _ : state) {
    uint64_t found = 0;
    for (const auto& k : keys) {
      found += idx.Find(key_codec::EncodedKeyView{k.hash, k.bytes}) !=
               Index::kNotFound;
    }
    benchmark::DoNotOptimize(found);
  }
}

void BM_FlatHashProbe(benchmark::State& state) {
  std::vector<key_codec::EncodedKey> keys = MakeEncodedKeys(state.range(0));
  if (state.range(1) != 0) {
    FlatHashProbeLoop<flat_hash::FlatKeyIndex>(state, keys);
  } else {
    FlatHashProbeLoop<flat_hash::StdKeyIndex>(state, keys);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlatHashProbe)
    ->Args({1000, 1})
    ->Args({1000, 0})
    ->Args({100000, 1})
    ->Args({100000, 0});

namespace column = runtime::column;

/// Rows for the row-vs-block column benchmarks: the kv shape (int key,
/// real value), the layout the typed scan loops target.
std::vector<Row> MakeScanRows(int64_t n) {
  Rng rng(9);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Row({Field::Int(rng.UniformRange(0, 1 << 20)),
                        Field::Real(rng.NextDouble())}));
  }
  return rows;
}

/// Column scan ablation (PR 8): sum the int and real columns of n rows.
/// arg 1 = 1 scans the PartitionBlock's flat typed arrays; arg 1 = 0 is the
/// historical row loop with per-cell variant dispatch. The block build is
/// outside the timed loop (operators amortize it across the whole stage).
void BM_ColumnScan(benchmark::State& state) {
  std::vector<Row> rows = MakeScanRows(state.range(0));
  column::PartitionBlock block =
      column::PartitionBlock::FromRows(KvSchema(), rows);
  const bool columnar = state.range(1) != 0;
  for (auto _ : state) {
    int64_t isum = 0;
    double rsum = 0;
    if (columnar) {
      const int64_t* ks = block.col(0).ints();
      const double* vs = block.col(1).reals();
      for (size_t i = 0; i < block.NumRows(); ++i) {
        isum += ks[i];
        rsum += vs[i];
      }
    } else {
      for (const Row& r : rows) {
        isum += r.fields[0].AsInt();
        rsum += r.fields[1].AsReal();
      }
    }
    benchmark::DoNotOptimize(isum);
    benchmark::DoNotOptimize(rsum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColumnScan)->Args({65536, 1})->Args({65536, 0});

/// Column project ablation (PR 8): copy the (int, real) columns out of a
/// three-column (int, real, string) input. The block path appends
/// column-wise (typed array copies, string arena untouched); the row path
/// copies Fields row-by-row into fresh Rows.
void BM_ColumnProject(benchmark::State& state) {
  Rng rng(10);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(state.range(0)));
  for (int64_t i = 0; i < state.range(0); ++i) {
    rows.push_back(Row({Field::Int(i), Field::Real(rng.NextDouble()),
                        Field::Str("p" + std::to_string(i % 997))}));
  }
  Schema s({{"k", nrc::Type::Int()},
            {"v", nrc::Type::Real()},
            {"p", nrc::Type::String()}});
  column::PartitionBlock block = column::PartitionBlock::FromRows(s, rows);
  const bool columnar = state.range(1) != 0;
  for (auto _ : state) {
    if (columnar) {
      column::AnyColumn k(column::AnyColumn::Kind::kInt64);
      column::AnyColumn v(column::AnyColumn::Kind::kReal);
      for (size_t i = 0; i < block.NumRows(); ++i) {
        k.AppendFrom(block.col(0), i);
        v.AppendFrom(block.col(1), i);
      }
      benchmark::DoNotOptimize(k.size() + v.size());
    } else {
      std::vector<Row> out;
      out.reserve(rows.size());
      for (const Row& r : rows) {
        out.push_back(Row({r.fields[0], r.fields[1]}));
      }
      benchmark::DoNotOptimize(out.size());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColumnProject)->Args({65536, 1})->Args({65536, 0});

namespace serde = runtime::serde;

/// Rows for the serde throughput benchmarks: the dup shape (int key, short
/// string), written in the 4096-row records the spill manager uses.
std::string SerdeBenchPath() {
  return (std::filesystem::temp_directory_path() /
          ("trance-serde-bench-" + std::to_string(::getpid()) + ".trs"))
      .string();
}

/// Serde write throughput (PR 9): serialize n rows into a run file through
/// BlockFileWriter (bytes/s is the number to watch; docs/STORAGE.md format).
void BM_SerdeWrite(benchmark::State& state) {
  Rng rng(11);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(state.range(0)));
  for (int64_t i = 0; i < state.range(0); ++i) {
    int64_t k = rng.UniformRange(0, 1 << 20);
    rows.push_back(Row({Field::Int(k), Field::Str("p" + std::to_string(k))}));
  }
  const std::string path = SerdeBenchPath();
  uint64_t bytes = 0;
  for (auto _ : state) {
    serde::BlockFileWriter writer;
    TRANCE_CHECK(writer.Open(path).ok(), "serde bench open");
    TRANCE_CHECK(writer.WriteRows(rows).ok(), "serde bench write");
    TRANCE_CHECK(writer.Close().ok(), "serde bench close");
    bytes = writer.bytes_written();
    benchmark::DoNotOptimize(bytes);
  }
  std::remove(path.c_str());
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerdeWrite)->Arg(65536);

/// Serde read throughput (PR 9): stream the same run file back into rows.
void BM_SerdeRead(benchmark::State& state) {
  Rng rng(12);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(state.range(0)));
  for (int64_t i = 0; i < state.range(0); ++i) {
    int64_t k = rng.UniformRange(0, 1 << 20);
    rows.push_back(Row({Field::Int(k), Field::Str("p" + std::to_string(k))}));
  }
  const std::string path = SerdeBenchPath();
  {
    serde::BlockFileWriter writer;
    TRANCE_CHECK(writer.Open(path).ok(), "serde bench open");
    TRANCE_CHECK(writer.WriteRows(rows).ok(), "serde bench write");
    TRANCE_CHECK(writer.Close().ok(), "serde bench close");
  }
  uint64_t bytes = 0;
  for (auto _ : state) {
    serde::BlockFileReader reader;
    TRANCE_CHECK(reader.Open(path).ok(), "serde bench open");
    std::vector<Row> back;
    back.reserve(rows.size());
    for (;;) {
      auto more = reader.ReadBatch(&back);
      TRANCE_CHECK(more.ok(), "serde bench read");
      if (!more.value()) break;
    }
    TRANCE_CHECK(back.size() == rows.size(), "serde bench row count");
    bytes = reader.bytes_read();
    TRANCE_CHECK(reader.Close().ok(), "serde bench close");
    benchmark::DoNotOptimize(back);
  }
  std::remove(path.c_str());
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerdeRead)->Arg(65536);

void BM_ValueShred(benchmark::State& state) {
  nrc::Value v = MakeNested(state.range(0), 10, 10);
  nrc::TypePtr t = NestedType();
  for (auto _ : state) {
    auto sv = shred::ShredValue(v, t);
    benchmark::DoNotOptimize(sv);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 100);
}
BENCHMARK(BM_ValueShred)->Arg(100);

void BM_ValueUnshred(benchmark::State& state) {
  nrc::Value v = MakeNested(state.range(0), 10, 10);
  nrc::TypePtr t = NestedType();
  auto sv = shred::ShredValue(v, t).ValueOrDie();
  for (auto _ : state) {
    auto back = shred::UnshredValue(sv, t);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 100);
}
BENCHMARK(BM_ValueUnshred)->Arg(100);

}  // namespace

// Fixed-size regression pass over the keyed operators — dedup, join
// build/probe, nest — with the key codec on and off. Each run lands in
// BENCH_micro_key_codec.json with its wall time, row counts, and the keyed
// hash-table counters (key_encode_bytes is 0 on the codec_off runs), so the
// ablation and the Distinct full-row-copy regression are machine-checkable.
Status RunKeyCodecAblation() {
  std::vector<bench::RunResult> results;
  const int64_t n = 200000;
  for (bool codec : {true, false}) {
    ClusterConfig cfg{.num_partitions = 8};
    Cluster cluster(cfg);
    cluster.set_key_codec_enabled(codec);
    const std::string suffix = codec ? ".codec_on" : ".codec_off";

    Dataset dup = MakeDup(&cluster, n, n / 16, 6);
    size_t rows = 0;
    bench::RunResult r = bench::TimedRun(
        "distinct" + suffix, &cluster, [&]() -> Status {
          TRANCE_ASSIGN_OR_RETURN(Dataset out,
                                  runtime::Distinct(&cluster, dup, "dedup"));
          rows = out.NumRows();
          return Status::OK();
        });
    r.out_rows = rows;
    results.push_back(std::move(r));

    Dataset l = MakeKv(&cluster, n, 1000, 0.0, 1);
    Dataset d = MakeKv(&cluster, 1000, 1000, 0.0, 2);
    r = bench::TimedRun("hash_join" + suffix, &cluster, [&]() -> Status {
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out, runtime::HashJoin(&cluster, l, d, {0}, {0},
                                         runtime::JoinType::kInner, "join"));
      rows = out.NumRows();
      return Status::OK();
    });
    r.out_rows = rows;
    results.push_back(std::move(r));

    Dataset kv = MakeKv(&cluster, n, 1024, 0.0, 4);
    r = bench::TimedRun("nest" + suffix, &cluster, [&]() -> Status {
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out,
          runtime::NestGroup(&cluster, kv, {0}, {1}, "bag", "nest"));
      rows = out.NumRows();
      return Status::OK();
    });
    r.out_rows = rows;
    results.push_back(std::move(r));
  }
  bench::PrintHeader("key codec ablation (rows/s = rows / wall)");
  for (const auto& r : results) bench::PrintResult(r);
  return bench::WriteBenchReport("micro_key_codec", results);
}

// Fixed-size regression pass over the same keyed workloads with the codec
// on and ExecOptions::enable_flat_hash toggled — the flat-vs-unordered_map
// container ablation. Results land in BENCH_micro_flat_hash.json; the
// flat_off runs report hash_table_bytes/hash_resizes/hash_probe_len_max as
// exactly 0 while every codec-invariant counter matches the flat_on runs.
Status RunFlatHashAblation() {
  std::vector<bench::RunResult> results;
  const int64_t n = 200000;
  for (bool flat : {true, false}) {
    ClusterConfig cfg{.num_partitions = 8};
    Cluster cluster(cfg);
    cluster.set_key_codec_enabled(true);
    cluster.set_flat_hash_enabled(flat);
    const std::string suffix = flat ? ".flat_on" : ".flat_off";

    Dataset dup = MakeDup(&cluster, n, n / 16, 6);
    size_t rows = 0;
    bench::RunResult r = bench::TimedRun(
        "distinct" + suffix, &cluster, [&]() -> Status {
          TRANCE_ASSIGN_OR_RETURN(Dataset out,
                                  runtime::Distinct(&cluster, dup, "dedup"));
          rows = out.NumRows();
          return Status::OK();
        });
    r.out_rows = rows;
    results.push_back(std::move(r));

    Dataset l = MakeKv(&cluster, n, 1000, 0.0, 1);
    Dataset d = MakeKv(&cluster, 1000, 1000, 0.0, 2);
    r = bench::TimedRun("hash_join" + suffix, &cluster, [&]() -> Status {
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out, runtime::HashJoin(&cluster, l, d, {0}, {0},
                                         runtime::JoinType::kInner, "join"));
      rows = out.NumRows();
      return Status::OK();
    });
    r.out_rows = rows;
    results.push_back(std::move(r));

    Dataset kv = MakeKv(&cluster, n, 1024, 0.0, 4);
    r = bench::TimedRun("nest" + suffix, &cluster, [&]() -> Status {
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out,
          runtime::NestGroup(&cluster, kv, {0}, {1}, "bag", "nest"));
      rows = out.NumRows();
      return Status::OK();
    });
    r.out_rows = rows;
    results.push_back(std::move(r));
  }
  bench::PrintHeader("flat hash ablation (rows/s = rows / wall)");
  for (const auto& r : results) bench::PrintResult(r);
  return bench::WriteBenchReport("micro_flat_hash", results);
}

// Fixed-size regression pass over the same keyed workloads with
// ExecOptions::enable_columnar toggled — the typed partition-block ablation
// of PR 8. The columnar_off runs report columnar_bytes /
// column_to_row_conversions as exactly 0 while every pre-existing counter
// (rows out, shuffle bytes, simulated time, keyed hash counters) matches the
// columnar_on runs bit-for-bit; both properties are asserted in-binary
// below. Two additional runs time a raw 64k-row int/real scan on the block
// representation vs the historical row loop, so the PR's >= 2x scan target
// is recorded in BENCH_micro_columnar.json (recorded, not hard-asserted —
// absolute ratios are machine-dependent).
Status RunColumnarAblation() {
  std::vector<bench::RunResult> results;
  const int64_t n = 200000;
  for (bool columnar : {true, false}) {
    ClusterConfig cfg{.num_partitions = 8};
    Cluster cluster(cfg);
    cluster.set_key_codec_enabled(true);
    cluster.set_columnar_enabled(columnar);
    const std::string suffix = columnar ? ".columnar_on" : ".columnar_off";

    Dataset dup = MakeDup(&cluster, n, n / 16, 6);
    size_t rows = 0;
    bench::RunResult r = bench::TimedRun(
        "distinct" + suffix, &cluster, [&]() -> Status {
          TRANCE_ASSIGN_OR_RETURN(Dataset out,
                                  runtime::Distinct(&cluster, dup, "dedup"));
          rows = out.NumRows();
          return Status::OK();
        });
    r.out_rows = rows;
    results.push_back(std::move(r));

    Dataset l = MakeKv(&cluster, n, 1000, 0.0, 1);
    Dataset d = MakeKv(&cluster, 1000, 1000, 0.0, 2);
    r = bench::TimedRun("hash_join" + suffix, &cluster, [&]() -> Status {
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out, runtime::HashJoin(&cluster, l, d, {0}, {0},
                                         runtime::JoinType::kInner, "join"));
      rows = out.NumRows();
      return Status::OK();
    });
    r.out_rows = rows;
    results.push_back(std::move(r));

    Dataset kv = MakeKv(&cluster, n, 1024, 0.0, 4);
    r = bench::TimedRun("nest" + suffix, &cluster, [&]() -> Status {
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out,
          runtime::NestGroup(&cluster, kv, {0}, {1}, "bag", "nest"));
      rows = out.NumRows();
      return Status::OK();
    });
    r.out_rows = rows;
    results.push_back(std::move(r));
  }

  // Stats transparency: run i (columnar on) against run i + 3 (off).
  for (size_t i = 0; i < 3; ++i) {
    const bench::RunResult& on = results[i];
    const bench::RunResult& off = results[i + 3];
    TRANCE_CHECK(on.ok && off.ok, "columnar ablation run failed");
    TRANCE_CHECK(on.out_rows == off.out_rows,
                 "columnar ablation: result rows differ for " + on.name);
    TRANCE_CHECK(on.shuffle_bytes == off.shuffle_bytes &&
                     on.max_stage_shuffle == off.max_stage_shuffle &&
                     on.peak_partition == off.peak_partition,
                 "columnar ablation: movement stats differ for " + on.name);
    TRANCE_CHECK(on.sim_s == off.sim_s,
                 "columnar ablation: sim time differs for " + on.name);
    TRANCE_CHECK(on.key_encode_bytes == off.key_encode_bytes &&
                     on.hash_build_rows == off.hash_build_rows &&
                     on.hash_probe_hits == off.hash_probe_hits &&
                     on.hash_max_chain == off.hash_max_chain,
                 "columnar ablation: keyed counters differ for " + on.name);
    TRANCE_CHECK(on.columnar_bytes > 0,
                 "columnar ablation: no blocks built in " + on.name);
    TRANCE_CHECK(off.columnar_bytes == 0 &&
                     off.column_to_row_conversions == 0,
                 "columnar ablation: counters leak into " + off.name);
  }

  // Raw scan comparison (the BM_ColumnScan shape, as recorded runs).
  {
    ClusterConfig cfg{.num_partitions = 1};
    Cluster cluster(cfg);
    std::vector<Row> rows = MakeScanRows(1 << 16);
    column::PartitionBlock block =
        column::PartitionBlock::FromRows(KvSchema(), rows);
    const int reps = 400;
    double sink = 0;
    bench::RunResult r = bench::TimedRun(
        "column_scan.block", &cluster, [&]() -> Status {
          for (int rep = 0; rep < reps; ++rep) {
            int64_t isum = 0;
            double rsum = 0;
            const int64_t* ks = block.col(0).ints();
            const double* vs = block.col(1).reals();
            for (size_t i = 0; i < block.NumRows(); ++i) {
              isum += ks[i];
              rsum += vs[i];
            }
            sink += static_cast<double>(isum) + rsum;
          }
          return Status::OK();
        });
    r.out_rows = rows.size() * reps;
    results.push_back(std::move(r));

    r = bench::TimedRun("column_scan.rows", &cluster, [&]() -> Status {
      for (int rep = 0; rep < reps; ++rep) {
        int64_t isum = 0;
        double rsum = 0;
        for (const Row& row : rows) {
          isum += row.fields[0].AsInt();
          rsum += row.fields[1].AsReal();
        }
        sink += static_cast<double>(isum) + rsum;
      }
      return Status::OK();
    });
    r.out_rows = rows.size() * reps;
    results.push_back(std::move(r));
    benchmark::DoNotOptimize(sink);
  }

  bench::PrintHeader("columnar ablation (rows/s = rows / wall)");
  for (const auto& r : results) bench::PrintResult(r);
  return bench::WriteBenchReport("micro_columnar", results);
}

// Resident-vs-pack ablation of PR 10: partitions now LIVE as typed blocks,
// so a keyed chain (distinct -> nest) crosses its stage boundary without any
// per-stage pack/unpack. The chain.resident run (columnar on) must report
// column_to_row_conversions == 0 — asserted in-binary, the PR's acceptance
// property — while chain.rows (columnar off) provides the historical
// row-path comparison with bit-identical pre-existing stats. Two recorded
// micro runs then quantify the boundary tax itself on a fixed 64k-row
// partition crossing three simulated stage boundaries: repack.per_stage
// re-packs (FromRows) and re-materializes (ToRows) at every boundary — the
// PR-8/9 costume — while repack.resident crosses the same boundaries with
// block-to-block AppendRowFrom copies, never touching rows (recorded, not
// hard-asserted — absolute ratios are machine-dependent). Results land in
// BENCH_micro_resident.json.
Status RunResidentAblation() {
  std::vector<bench::RunResult> results;
  const int64_t n = 200000;
  for (bool columnar : {true, false}) {
    ClusterConfig cfg{.num_partitions = 8};
    Cluster cluster(cfg);
    cluster.set_key_codec_enabled(true);
    cluster.set_columnar_enabled(columnar);
    const std::string suffix = columnar ? ".resident" : ".rows";

    Dataset dup = MakeDup(&cluster, n, n / 16, 9);
    size_t rows = 0;
    bench::RunResult r =
        bench::TimedRun("chain" + suffix, &cluster, [&]() -> Status {
          TRANCE_ASSIGN_OR_RETURN(Dataset deduped,
                                  runtime::Distinct(&cluster, dup, "dedup"));
          TRANCE_ASSIGN_OR_RETURN(
              Dataset nested,
              runtime::NestGroup(&cluster, deduped, {0}, {1}, "bag", "nest"));
          rows = nested.NumRows();
          return Status::OK();
        });
    r.out_rows = rows;
    results.push_back(std::move(r));
  }
  {
    const bench::RunResult& resident = results[0];
    const bench::RunResult& row_path = results[1];
    TRANCE_CHECK(resident.ok && row_path.ok, "resident ablation run failed");
    TRANCE_CHECK(resident.out_rows == row_path.out_rows,
                 "resident ablation: result rows differ");
    TRANCE_CHECK(resident.sim_s == row_path.sim_s &&
                     resident.shuffle_bytes == row_path.shuffle_bytes &&
                     resident.hash_build_rows == row_path.hash_build_rows,
                 "resident ablation: pre-existing stats differ");
    TRANCE_CHECK(resident.columnar_bytes > 0,
                 "resident ablation: no blocks built");
    TRANCE_CHECK(resident.column_to_row_conversions == 0,
                 "resident ablation: block-resident chain converted rows");
    TRANCE_CHECK(row_path.columnar_bytes == 0 &&
                     row_path.column_to_row_conversions == 0,
                 "resident ablation: counters leak into the row path");
  }

  // Boundary-tax comparison (recorded runs, column_scan idiom).
  {
    ClusterConfig cfg{.num_partitions = 1};
    Cluster cluster(cfg);
    std::vector<Row> rows = MakeScanRows(1 << 16);
    const int reps = 40;
    const int boundaries = 3;
    double sink = 0;
    bench::RunResult r =
        bench::TimedRun("repack.per_stage", &cluster, [&]() -> Status {
          for (int rep = 0; rep < reps; ++rep) {
            std::vector<Row> cur = rows;
            for (int b = 0; b < boundaries; ++b) {
              column::PartitionBlock blk =
                  column::PartitionBlock::FromRows(KvSchema(), cur);
              cur = blk.ToRows();
            }
            sink += static_cast<double>(cur.size());
          }
          return Status::OK();
        });
    r.out_rows = rows.size() * reps;
    results.push_back(std::move(r));

    r = bench::TimedRun("repack.resident", &cluster, [&]() -> Status {
      for (int rep = 0; rep < reps; ++rep) {
        column::PartitionBlock cur =
            column::PartitionBlock::FromRows(KvSchema(), rows);
        for (int b = 0; b < boundaries; ++b) {
          column::PartitionBlock next(KvSchema());
          const size_t nrows = cur.NumRows();
          for (size_t i = 0; i < nrows; ++i) next.AppendRowFrom(cur, i);
          cur = std::move(next);
        }
        sink += static_cast<double>(cur.NumRows());
      }
      return Status::OK();
    });
    r.out_rows = rows.size() * reps;
    results.push_back(std::move(r));
    benchmark::DoNotOptimize(sink);
  }

  bench::PrintHeader("resident ablation (rows/s = rows / wall)");
  for (const auto& r : results) bench::PrintResult(r);
  return bench::WriteBenchReport("micro_resident", results);
}

// Fixed-size regression pass over the same keyed workloads for the
// out-of-core spill path of PR 9. The .spill_forced runs use a 256 KiB
// per-partition memory cap — far under the working set, so shuffles, keyed
// inputs and stage outputs all spill through runtime/spill.h run files —
// while the .spill_off runs use the default (effectively unlimited) cap with
// ExecOptions-level spilling disabled. Stats transparency is asserted
// in-binary: rows, movement stats, simulated time and keyed counters are
// bit-identical across the pair, the forced runs report spill_* > 0, and the
// off runs report exactly 0. Results land in BENCH_micro_spill.json.
Status RunSpillAblation() {
  std::vector<bench::RunResult> results;
  const int64_t n = 200000;
  for (bool forced : {true, false}) {
    ClusterConfig cfg{.num_partitions = 8};
    if (forced) cfg.partition_memory_cap = 256ull << 10;
    Cluster cluster(cfg);
    cluster.set_key_codec_enabled(true);
    cluster.set_spill_enabled(forced);
    const std::string suffix = forced ? ".spill_forced" : ".spill_off";

    Dataset dup = MakeDup(&cluster, n, n / 16, 6);
    size_t rows = 0;
    bench::RunResult r = bench::TimedRun(
        "distinct" + suffix, &cluster, [&]() -> Status {
          TRANCE_ASSIGN_OR_RETURN(Dataset out,
                                  runtime::Distinct(&cluster, dup, "dedup"));
          rows = out.NumRows();
          return Status::OK();
        });
    r.out_rows = rows;
    results.push_back(std::move(r));

    Dataset l = MakeKv(&cluster, n, 1000, 0.0, 1);
    Dataset d = MakeKv(&cluster, 1000, 1000, 0.0, 2);
    r = bench::TimedRun("hash_join" + suffix, &cluster, [&]() -> Status {
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out, runtime::HashJoin(&cluster, l, d, {0}, {0},
                                         runtime::JoinType::kInner, "join"));
      rows = out.NumRows();
      return Status::OK();
    });
    r.out_rows = rows;
    results.push_back(std::move(r));

    Dataset kv = MakeKv(&cluster, n, 1024, 0.0, 4);
    r = bench::TimedRun("nest" + suffix, &cluster, [&]() -> Status {
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out,
          runtime::NestGroup(&cluster, kv, {0}, {1}, "bag", "nest"));
      rows = out.NumRows();
      return Status::OK();
    });
    r.out_rows = rows;
    results.push_back(std::move(r));
  }

  // Stats transparency: run i (spill forced under a tiny cap) against run
  // i + 3 (spill off, uncapped) — the acceptance pairing of the PR.
  for (size_t i = 0; i < 3; ++i) {
    const bench::RunResult& forced = results[i];
    const bench::RunResult& off = results[i + 3];
    TRANCE_CHECK(forced.ok && off.ok, "spill ablation run failed");
    TRANCE_CHECK(forced.out_rows == off.out_rows,
                 "spill ablation: result rows differ for " + forced.name);
    TRANCE_CHECK(forced.shuffle_bytes == off.shuffle_bytes &&
                     forced.max_stage_shuffle == off.max_stage_shuffle &&
                     forced.peak_partition == off.peak_partition,
                 "spill ablation: movement stats differ for " + forced.name);
    TRANCE_CHECK(forced.sim_s == off.sim_s,
                 "spill ablation: sim time differs for " + forced.name);
    TRANCE_CHECK(forced.key_encode_bytes == off.key_encode_bytes &&
                     forced.hash_build_rows == off.hash_build_rows &&
                     forced.hash_probe_hits == off.hash_probe_hits &&
                     forced.hash_max_chain == off.hash_max_chain,
                 "spill ablation: keyed counters differ for " + forced.name);
    TRANCE_CHECK(forced.spill_runs > 0 && forced.spill_bytes_written > 0,
                 "spill ablation: nothing spilled in " + forced.name);
    TRANCE_CHECK(forced.spill_bytes_read == forced.spill_bytes_written,
                 "spill ablation: restore did not stream every spilled byte");
    TRANCE_CHECK(off.spill_bytes_written == 0 && off.spill_bytes_read == 0 &&
                     off.spill_runs == 0 && off.spill_merge_passes == 0,
                 "spill ablation: counters leak into " + off.name);
  }

  bench::PrintHeader("spill ablation (rows/s = rows / wall)");
  for (const auto& r : results) bench::PrintResult(r);
  return bench::WriteBenchReport("micro_spill", results);
}

}  // namespace trance

int main(int argc, char** argv) {
  TRANCE_CHECK(trance::RunKeyCodecAblation().ok(), "key codec ablation");
  TRANCE_CHECK(trance::RunResidentAblation().ok(), "resident ablation");
  TRANCE_CHECK(trance::RunFlatHashAblation().ok(), "flat hash ablation");
  TRANCE_CHECK(trance::RunColumnarAblation().ok(), "columnar ablation");
  TRANCE_CHECK(trance::RunSpillAblation().ok(), "spill ablation");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
