// Micro-benchmarks (google-benchmark) for the runtime primitives and the
// shredding kernels: shuffle hash join vs broadcast join, nest vs cogroup,
// sum aggregation with/without map-side combine, value shredding and
// unshredding, heavy-key detection, and dedup.
//
// The keyed operators (join, nest, dedup) take a second argument toggling
// ExecOptions::enable_key_codec, the binary-key/legacy-KeyView ablation of
// PR 5; BM_FlatHashBuild/BM_FlatHashProbe compare the flat open-addressing
// table against the std::unordered_map fallback directly (PR 7). main()
// additionally runs fixed-size rows/sec regression passes over dedup, join
// build/probe, and nest — codec on/off to BENCH_micro_key_codec.json and
// flat table on/off to BENCH_micro_flat_hash.json — before the
// google-benchmark suite starts.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "nrc/builder.h"
#include "runtime/cluster.h"
#include "runtime/flat_hash.h"
#include "runtime/key_codec.h"
#include "runtime/ops.h"
#include "shred/value_shredder.h"
#include "skew/skew.h"
#include "util/random.h"

namespace trance {
namespace {

using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::Dataset;
using runtime::Field;
using runtime::Row;
using runtime::Schema;

Schema KvSchema() {
  return Schema({{"k", nrc::Type::Int()}, {"v", nrc::Type::Real()}});
}

Dataset MakeKv(Cluster* cluster, int64_t n, int64_t keys, double zipf,
               uint64_t seed) {
  Rng rng(seed);
  ZipfSampler sampler(static_cast<size_t>(keys), zipf);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Row({Field::Int(static_cast<int64_t>(sampler.Sample(&rng))),
                        Field::Real(rng.NextDouble())}));
  }
  return runtime::Source(cluster, KvSchema(), std::move(rows), "kv")
      .ValueOrDie();
}

void BM_HashJoin(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  cluster.set_key_codec_enabled(state.range(1) != 0);
  Dataset l = MakeKv(&cluster, state.range(0), 1000, 0.0, 1);
  Dataset r = MakeKv(&cluster, 1000, 1000, 0.0, 2);
  for (auto _ : state) {
    auto j = runtime::HashJoin(&cluster, l, r, {0}, {0},
                               runtime::JoinType::kInner, "join");
    benchmark::DoNotOptimize(j);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)
    ->Args({10000, 1})
    ->Args({10000, 0})
    ->Args({100000, 1})
    ->Args({100000, 0});

void BM_BroadcastJoin(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  Dataset l = MakeKv(&cluster, state.range(0), 1000, 0.0, 1);
  Dataset r = MakeKv(&cluster, 1000, 1000, 0.0, 2);
  for (auto _ : state) {
    auto j = runtime::BroadcastJoin(&cluster, l, r, {0}, {0},
                                    runtime::JoinType::kInner, "bjoin");
    benchmark::DoNotOptimize(j);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BroadcastJoin)->Arg(10000)->Arg(100000);

void BM_SkewAwareJoin(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  // Heavily skewed left side.
  Dataset l = MakeKv(&cluster, state.range(0), 1000, 3.0, 1);
  Dataset r = MakeKv(&cluster, 1000, 1000, 0.0, 2);
  for (auto _ : state) {
    auto lt = skew::SkewTriple::AllLight(l);
    auto rt = skew::SkewTriple::AllLight(r);
    auto j = skew::SkewAwareJoin(&cluster, lt, rt, {0}, {0},
                                 runtime::JoinType::kInner, "sjoin");
    benchmark::DoNotOptimize(j);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SkewAwareJoin)->Arg(10000)->Arg(100000);

void BM_SumAggregate(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  Dataset ds = MakeKv(&cluster, state.range(0), 64, 0.0, 3);
  bool combine = state.range(1) != 0;
  for (auto _ : state) {
    auto out =
        runtime::SumAggregate(&cluster, ds, {0}, {1}, combine, "sum");
    benchmark::DoNotOptimize(out);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SumAggregate)->Args({100000, 1})->Args({100000, 0});

void BM_NestGroup(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  cluster.set_key_codec_enabled(state.range(1) != 0);
  Dataset ds = MakeKv(&cluster, state.range(0), 1024, 0.0, 4);
  for (auto _ : state) {
    auto out = runtime::NestGroup(&cluster, ds, {0}, {1}, "bag", "nest");
    benchmark::DoNotOptimize(out);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NestGroup)->Args({100000, 1})->Args({100000, 0});

Dataset MakeDup(Cluster* cluster, int64_t n, int64_t distinct, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int64_t k = rng.UniformRange(0, distinct);
    rows.push_back(Row({Field::Int(k), Field::Str("p" + std::to_string(k))}));
  }
  Schema s({{"k", nrc::Type::Int()}, {"p", nrc::Type::String()}});
  return runtime::Source(cluster, std::move(s), std::move(rows), "dup")
      .ValueOrDie();
}

void BM_Distinct(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  cluster.set_key_codec_enabled(state.range(1) != 0);
  // ~16 duplicates per distinct row: the membership-test path dominates
  // (the path that historically deep-copied the whole row per test).
  Dataset ds = MakeDup(&cluster, state.range(0), state.range(0) / 16, 6);
  for (auto _ : state) {
    auto out = runtime::Distinct(&cluster, ds, "dedup");
    benchmark::DoNotOptimize(out);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Distinct)->Args({100000, 1})->Args({100000, 0});

void BM_HeavyKeyDetection(benchmark::State& state) {
  ClusterConfig cfg{.num_partitions = 8};
  Cluster cluster(cfg);
  Dataset ds = MakeKv(&cluster, state.range(0), 1000, 2.0, 5);
  for (auto _ : state) {
    auto hk = skew::DetectHeavyKeys(&cluster, ds, {0});
    benchmark::DoNotOptimize(hk);
    cluster.stats().Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HeavyKeyDetection)->Arg(100000);

nrc::Value MakeNested(int64_t customers, int64_t orders_per,
                      int64_t parts_per) {
  Rng rng(7);
  std::vector<nrc::Value> tops;
  for (int64_t c = 0; c < customers; ++c) {
    std::vector<nrc::Value> os;
    for (int64_t o = 0; o < orders_per; ++o) {
      std::vector<nrc::Value> ps;
      for (int64_t k = 0; k < parts_per; ++k) {
        ps.push_back(nrc::Value::Tuple(
            {{"pid", nrc::Value::Int(rng.UniformRange(0, 100))},
             {"qty", nrc::Value::Real(rng.NextDouble())}}));
      }
      os.push_back(nrc::Value::Tuple({{"odate", nrc::Value::Int(o)},
                                      {"oparts", nrc::Value::Bag(ps)}}));
    }
    tops.push_back(nrc::Value::Tuple(
        {{"cname", nrc::Value::Str("c" + std::to_string(c))},
         {"corders", nrc::Value::Bag(os)}}));
  }
  return nrc::Value::Bag(tops);
}

nrc::TypePtr NestedType() {
  using nrc::dsl::BagTu;
  using nrc::Type;
  return BagTu(
      {{"cname", Type::String()},
       {"corders",
        BagTu({{"odate", Type::Int()},
               {"oparts",
                BagTu({{"pid", Type::Int()}, {"qty", Type::Real()}})}})}});
}

namespace key_codec = runtime::key_codec;
namespace flat_hash = runtime::flat_hash;

/// Pre-encoded distinct keys for the container micro-benchmarks (an int +
/// short string key, the shape the keyed operators encode most).
std::vector<key_codec::EncodedKey> MakeEncodedKeys(int64_t n) {
  key_codec::KeyEncoder enc;
  std::vector<key_codec::EncodedKey> keys;
  keys.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Row row({Field::Int(i), Field::Str("k" + std::to_string(i))});
    keys.push_back(key_codec::Materialize(enc.EncodeRow(row).ValueOrDie()));
  }
  return keys;
}

/// Direct container ablation: insert n distinct pre-encoded keys into the
/// flat table (arg 1 = 1) or the std::unordered_map fallback (arg 1 = 0),
/// growth included (tables start empty, as nest/aggregate builds do).
template <class Index>
void FlatHashBuildLoop(benchmark::State& state,
                       const std::vector<key_codec::EncodedKey>& keys) {
  for (auto _ : state) {
    Index idx;
    for (const auto& k : keys) {
      benchmark::DoNotOptimize(
          idx.FindOrInsert(key_codec::EncodedKeyView{k.hash, k.bytes}));
    }
    benchmark::DoNotOptimize(idx.size());
  }
}

void BM_FlatHashBuild(benchmark::State& state) {
  std::vector<key_codec::EncodedKey> keys = MakeEncodedKeys(state.range(0));
  if (state.range(1) != 0) {
    FlatHashBuildLoop<flat_hash::FlatKeyIndex>(state, keys);
  } else {
    FlatHashBuildLoop<flat_hash::StdKeyIndex>(state, keys);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlatHashBuild)
    ->Args({1000, 1})
    ->Args({1000, 0})
    ->Args({100000, 1})
    ->Args({100000, 0});

/// Probe side of the same ablation: every lookup hits a key built once
/// outside the timed loop (the join-probe access pattern).
template <class Index>
void FlatHashProbeLoop(benchmark::State& state,
                       const std::vector<key_codec::EncodedKey>& keys) {
  Index idx(keys.size());
  for (const auto& k : keys) {
    idx.FindOrInsert(key_codec::EncodedKeyView{k.hash, k.bytes});
  }
  for (auto _ : state) {
    uint64_t found = 0;
    for (const auto& k : keys) {
      found += idx.Find(key_codec::EncodedKeyView{k.hash, k.bytes}) !=
               Index::kNotFound;
    }
    benchmark::DoNotOptimize(found);
  }
}

void BM_FlatHashProbe(benchmark::State& state) {
  std::vector<key_codec::EncodedKey> keys = MakeEncodedKeys(state.range(0));
  if (state.range(1) != 0) {
    FlatHashProbeLoop<flat_hash::FlatKeyIndex>(state, keys);
  } else {
    FlatHashProbeLoop<flat_hash::StdKeyIndex>(state, keys);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlatHashProbe)
    ->Args({1000, 1})
    ->Args({1000, 0})
    ->Args({100000, 1})
    ->Args({100000, 0});

void BM_ValueShred(benchmark::State& state) {
  nrc::Value v = MakeNested(state.range(0), 10, 10);
  nrc::TypePtr t = NestedType();
  for (auto _ : state) {
    auto sv = shred::ShredValue(v, t);
    benchmark::DoNotOptimize(sv);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 100);
}
BENCHMARK(BM_ValueShred)->Arg(100);

void BM_ValueUnshred(benchmark::State& state) {
  nrc::Value v = MakeNested(state.range(0), 10, 10);
  nrc::TypePtr t = NestedType();
  auto sv = shred::ShredValue(v, t).ValueOrDie();
  for (auto _ : state) {
    auto back = shred::UnshredValue(sv, t);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 100);
}
BENCHMARK(BM_ValueUnshred)->Arg(100);

}  // namespace

// Fixed-size regression pass over the keyed operators — dedup, join
// build/probe, nest — with the key codec on and off. Each run lands in
// BENCH_micro_key_codec.json with its wall time, row counts, and the keyed
// hash-table counters (key_encode_bytes is 0 on the codec_off runs), so the
// ablation and the Distinct full-row-copy regression are machine-checkable.
Status RunKeyCodecAblation() {
  std::vector<bench::RunResult> results;
  const int64_t n = 200000;
  for (bool codec : {true, false}) {
    ClusterConfig cfg{.num_partitions = 8};
    Cluster cluster(cfg);
    cluster.set_key_codec_enabled(codec);
    const std::string suffix = codec ? ".codec_on" : ".codec_off";

    Dataset dup = MakeDup(&cluster, n, n / 16, 6);
    size_t rows = 0;
    bench::RunResult r = bench::TimedRun(
        "distinct" + suffix, &cluster, [&]() -> Status {
          TRANCE_ASSIGN_OR_RETURN(Dataset out,
                                  runtime::Distinct(&cluster, dup, "dedup"));
          rows = out.NumRows();
          return Status::OK();
        });
    r.out_rows = rows;
    results.push_back(std::move(r));

    Dataset l = MakeKv(&cluster, n, 1000, 0.0, 1);
    Dataset d = MakeKv(&cluster, 1000, 1000, 0.0, 2);
    r = bench::TimedRun("hash_join" + suffix, &cluster, [&]() -> Status {
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out, runtime::HashJoin(&cluster, l, d, {0}, {0},
                                         runtime::JoinType::kInner, "join"));
      rows = out.NumRows();
      return Status::OK();
    });
    r.out_rows = rows;
    results.push_back(std::move(r));

    Dataset kv = MakeKv(&cluster, n, 1024, 0.0, 4);
    r = bench::TimedRun("nest" + suffix, &cluster, [&]() -> Status {
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out,
          runtime::NestGroup(&cluster, kv, {0}, {1}, "bag", "nest"));
      rows = out.NumRows();
      return Status::OK();
    });
    r.out_rows = rows;
    results.push_back(std::move(r));
  }
  bench::PrintHeader("key codec ablation (rows/s = rows / wall)");
  for (const auto& r : results) bench::PrintResult(r);
  return bench::WriteBenchReport("micro_key_codec", results);
}

// Fixed-size regression pass over the same keyed workloads with the codec
// on and ExecOptions::enable_flat_hash toggled — the flat-vs-unordered_map
// container ablation. Results land in BENCH_micro_flat_hash.json; the
// flat_off runs report hash_table_bytes/hash_resizes/hash_probe_len_max as
// exactly 0 while every codec-invariant counter matches the flat_on runs.
Status RunFlatHashAblation() {
  std::vector<bench::RunResult> results;
  const int64_t n = 200000;
  for (bool flat : {true, false}) {
    ClusterConfig cfg{.num_partitions = 8};
    Cluster cluster(cfg);
    cluster.set_key_codec_enabled(true);
    cluster.set_flat_hash_enabled(flat);
    const std::string suffix = flat ? ".flat_on" : ".flat_off";

    Dataset dup = MakeDup(&cluster, n, n / 16, 6);
    size_t rows = 0;
    bench::RunResult r = bench::TimedRun(
        "distinct" + suffix, &cluster, [&]() -> Status {
          TRANCE_ASSIGN_OR_RETURN(Dataset out,
                                  runtime::Distinct(&cluster, dup, "dedup"));
          rows = out.NumRows();
          return Status::OK();
        });
    r.out_rows = rows;
    results.push_back(std::move(r));

    Dataset l = MakeKv(&cluster, n, 1000, 0.0, 1);
    Dataset d = MakeKv(&cluster, 1000, 1000, 0.0, 2);
    r = bench::TimedRun("hash_join" + suffix, &cluster, [&]() -> Status {
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out, runtime::HashJoin(&cluster, l, d, {0}, {0},
                                         runtime::JoinType::kInner, "join"));
      rows = out.NumRows();
      return Status::OK();
    });
    r.out_rows = rows;
    results.push_back(std::move(r));

    Dataset kv = MakeKv(&cluster, n, 1024, 0.0, 4);
    r = bench::TimedRun("nest" + suffix, &cluster, [&]() -> Status {
      TRANCE_ASSIGN_OR_RETURN(
          Dataset out,
          runtime::NestGroup(&cluster, kv, {0}, {1}, "bag", "nest"));
      rows = out.NumRows();
      return Status::OK();
    });
    r.out_rows = rows;
    results.push_back(std::move(r));
  }
  bench::PrintHeader("flat hash ablation (rows/s = rows / wall)");
  for (const auto& r : results) bench::PrintResult(r);
  return bench::WriteBenchReport("micro_flat_hash", results);
}

}  // namespace trance

int main(int argc, char** argv) {
  TRANCE_CHECK(trance::RunKeyCodecAblation().ok(), "key codec ablation");
  TRANCE_CHECK(trance::RunFlatHashAblation().ok(), "flat hash ablation");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
