// bench_diff: compares a BENCH_*.json report against a committed baseline
// (bench/baselines/) with per-metric, direction-aware policies:
//
//   - correctness-adjacent invariants (row counts, shuffle bytes, hash and
//     fusion counters, fault telemetry, the whole `metrics` registry dump)
//     are deterministic for a given workload, so ANY difference is a hard
//     failure — either a real regression or a behavior change that needs a
//     deliberate baseline refresh (see EXPERIMENTS.md);
//   - simulated times compare with a tiny relative tolerance (they are
//     deterministic doubles; the tolerance only absorbs serialization);
//   - wall-clock times only soft-warn, and only in the slower direction —
//     the CI container has one noisy CPU, so wall time is not gateable.
//
// Exit status: 0 = pass (warnings allowed), 1 = hard difference, 2 = usage
// or parse error. Run twice on the same build it must pass by construction;
// ci/bench_smoke.sh also checks that a tampered report fails.
//
// Usage: bench_diff <baseline.json> <candidate.json> [--max-wall-ratio R]
//        bench_diff --check-events <events.jsonl>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using trance::obs::JsonValue;

struct DiffState {
  int hard_failures = 0;
  int warnings = 0;
  double max_wall_ratio = 5.0;

  void Fail(const std::string& what) {
    ++hard_failures;
    std::printf("FAIL  %s\n", what.c_str());
  }
  void Warn(const std::string& what) {
    ++warnings;
    std::printf("WARN  %s\n", what.c_str());
  }
};

std::string FmtNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool NearlyEqual(double a, double b) {
  if (a == b) return true;
  double scale = std::fmax(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= 1e-9 * scale;
}

const JsonValue* FindRun(const JsonValue& runs, const std::string& name) {
  for (const JsonValue& r : runs.arr) {
    const JsonValue* n = r.Find("name");
    if (n != nullptr && n->str == name) return &r;
  }
  return nullptr;
}

/// How one per-run scalar is compared.
enum class Policy {
  kExact,     // deterministic invariant: any difference hard-fails
  kSimTime,   // deterministic double: hard-fail outside 1e-9 relative
  kWallSoft,  // wall clock: warn only, and only when slower than
              // baseline * max_wall_ratio
  kInfo,      // machine-dependent (thread budget): never compared
};

struct ScalarRule {
  const char* key;
  Policy policy;
};

// Every scalar WriteBenchReport emits for a run. Keys absent from both
// reports are skipped (e.g. fail_reason on ok runs, speedup fields on
// baseline-less reports).
const ScalarRule kScalarRules[] = {
    {"ok", Policy::kExact},
    {"out_rows", Policy::kExact},
    {"shuffle_bytes", Policy::kExact},
    {"max_stage_shuffle_bytes", Policy::kExact},
    {"peak_partition_bytes", Policy::kExact},
    {"fused_stages", Policy::kExact},
    {"intermediate_bytes_avoided", Policy::kExact},
    {"injected_faults", Policy::kExact},
    {"retries", Policy::kExact},
    {"key_encode_bytes", Policy::kExact},
    {"hash_build_rows", Policy::kExact},
    {"hash_probe_hits", Policy::kExact},
    {"hash_max_chain", Policy::kExact},
    {"hash_table_bytes", Policy::kExact},
    {"hash_resizes", Policy::kExact},
    {"hash_probe_len_max", Policy::kExact},
    {"columnar_bytes", Policy::kExact},
    {"column_to_row_conversions", Policy::kExact},
    {"spill_bytes_written", Policy::kExact},
    {"spill_bytes_read", Policy::kExact},
    {"spill_runs", Policy::kExact},
    {"spill_merge_passes", Policy::kExact},
    {"spill_rowify_avoided", Policy::kExact},
    {"sim_seconds", Policy::kSimTime},
    {"recovery_sim_seconds", Policy::kSimTime},
    {"wall_seconds", Policy::kWallSoft},
    {"wall_seconds_1thread", Policy::kInfo},
    {"speedup_vs_1thread", Policy::kInfo},
    {"num_threads", Policy::kInfo},
};

double AsNumber(const JsonValue& v) {
  if (v.kind == JsonValue::Kind::kBool) return v.b ? 1 : 0;
  return v.num;
}

void DiffScalar(DiffState* st, const std::string& where, const char* key,
                Policy policy, const JsonValue* base, const JsonValue* cand) {
  if (policy == Policy::kInfo) return;
  if (base == nullptr && cand == nullptr) return;
  const std::string label = where + "." + key;
  if (base == nullptr || cand == nullptr) {
    st->Fail(label + ": present in only one report");
    return;
  }
  const double b = AsNumber(*base);
  const double c = AsNumber(*cand);
  switch (policy) {
    case Policy::kExact:
      if (b != c) {
        st->Fail(label + ": baseline=" + FmtNum(b) + " candidate=" + FmtNum(c));
      }
      break;
    case Policy::kSimTime:
      if (!NearlyEqual(b, c)) {
        st->Fail(label + ": baseline=" + FmtNum(b) + " candidate=" + FmtNum(c));
      }
      break;
    case Policy::kWallSoft:
      if (b > 0 && c > b * st->max_wall_ratio) {
        st->Warn(label + ": " + FmtNum(c) + "s is >" +
                 FmtNum(st->max_wall_ratio) + "x baseline " + FmtNum(b) + "s");
      }
      break;
    case Policy::kInfo:
      break;
  }
}

/// Generic structural diff of a run's `metrics` registry dump. Counters and
/// gauges are numbers; histograms are nested objects — recurse. The registry
/// holds no wall-clock metrics, so everything here is deterministic and any
/// numeric difference hard-fails. A key present only in the candidate is a
/// newly-registered metric (warn: the baseline wants a refresh); a key
/// present only in the baseline means a metric disappeared (fail).
void DiffMetricsObject(DiffState* st, const std::string& where,
                       const JsonValue& base, const JsonValue& cand) {
  for (const auto& [key, bval] : base.obj) {
    const JsonValue* cval = cand.Find(key);
    const std::string label = where + "." + key;
    if (cval == nullptr) {
      st->Fail(label + ": metric missing from candidate");
      continue;
    }
    if (bval.kind == JsonValue::Kind::kObject) {
      if (cval->kind != JsonValue::Kind::kObject) {
        st->Fail(label + ": kind changed");
      } else {
        DiffMetricsObject(st, label, bval, *cval);
      }
      continue;
    }
    if (!NearlyEqual(AsNumber(bval), AsNumber(*cval))) {
      st->Fail(label + ": baseline=" + FmtNum(AsNumber(bval)) +
               " candidate=" + FmtNum(AsNumber(*cval)));
    }
  }
  for (const auto& [key, cval] : cand.obj) {
    (void)cval;
    if (base.Find(key) == nullptr) {
      st->Warn(where + "." + key +
               ": new metric not in baseline (refresh baselines, see "
               "EXPERIMENTS.md)");
    }
  }
}

void DiffRun(DiffState* st, const std::string& name, const JsonValue& base,
             const JsonValue& cand) {
  for (const ScalarRule& rule : kScalarRules) {
    DiffScalar(st, name, rule.key, rule.policy, base.Find(rule.key),
               cand.Find(rule.key));
  }
  const JsonValue* bm = base.Find("metrics");
  const JsonValue* cm = cand.Find("metrics");
  if (bm != nullptr && cm != nullptr) {
    DiffMetricsObject(st, name + ".metrics", *bm, *cm);
  } else if (bm != nullptr || cm != nullptr) {
    st->Fail(name + ".metrics: present in only one report");
  }
}

/// --check-events mode: validates an event-log JSONL file (one JSON object
/// per line, leading "type" string, lowercase snake_case field names). This
/// is the schema gate ci/bench_smoke.sh runs over the TRANCE_EVENT_LOG
/// output of the smoke bench.
int CheckEvents(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  auto valid_key = [](const std::string& k) {
    if (k.empty() || !(std::islower(static_cast<unsigned char>(k[0])) ||
                       k[0] == '_')) {
      return false;
    }
    for (char c : k) {
      if (!(std::islower(static_cast<unsigned char>(c)) ||
            std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
        return false;
      }
    }
    return true;
  };
  int bad = 0;
  int lineno = 0;
  size_t events = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    ++events;
    auto parsed = trance::obs::ParseJson(line);
    if (!parsed.ok()) {
      std::printf("FAIL  line %d: not valid JSON: %s\n", lineno,
                  parsed.status().ToString().c_str());
      ++bad;
      continue;
    }
    const JsonValue& v = parsed.value();
    if (!v.is_object() || v.obj.empty() || v.obj[0].first != "type" ||
        v.obj[0].second.kind != JsonValue::Kind::kString ||
        v.obj[0].second.str.empty()) {
      std::printf("FAIL  line %d: not an object with a leading type field\n",
                  lineno);
      ++bad;
      continue;
    }
    for (const auto& [key, val] : v.obj) {
      (void)val;
      if (!valid_key(key)) {
        std::printf("FAIL  line %d: field %s is not lowercase snake_case\n",
                    lineno, key.c_str());
        ++bad;
      }
    }
  }
  if (events == 0) {
    std::printf("FAIL  %s: no events\n", path);
    ++bad;
  }
  std::printf("bench_diff --check-events: %zu event(s), %d problem(s) [%s]\n",
              events, bad, path);
  return bad > 0 ? 1 : 0;
}

trance::StatusOr<JsonValue> LoadReport(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return trance::Status::Invalid(std::string("cannot open ") + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return trance::obs::ParseJson(buf.str());
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* candidate_path = nullptr;
  DiffState st;
  if (argc == 3 && std::strcmp(argv[1], "--check-events") == 0) {
    return CheckEvents(argv[2]);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-wall-ratio") == 0 && i + 1 < argc) {
      st.max_wall_ratio = std::atof(argv[++i]);
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (candidate_path == nullptr) {
      candidate_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (baseline_path == nullptr || candidate_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <candidate.json> "
                 "[--max-wall-ratio R]\n"
                 "       bench_diff --check-events <events.jsonl>\n");
    return 2;
  }

  auto base_or = LoadReport(baseline_path);
  if (!base_or.ok()) {
    std::fprintf(stderr, "baseline: %s\n", base_or.status().ToString().c_str());
    return 2;
  }
  auto cand_or = LoadReport(candidate_path);
  if (!cand_or.ok()) {
    std::fprintf(stderr, "candidate: %s\n",
                 cand_or.status().ToString().c_str());
    return 2;
  }
  const JsonValue& base = base_or.value();
  const JsonValue& cand = cand_or.value();

  const JsonValue* bname = base.Find("bench");
  const JsonValue* cname = cand.Find("bench");
  if (bname == nullptr || cname == nullptr || bname->str != cname->str) {
    st.Fail("bench name differs (comparing different benchmarks?)");
  }

  const JsonValue* bruns = base.Find("runs");
  const JsonValue* cruns = cand.Find("runs");
  if (bruns == nullptr || cruns == nullptr || !bruns->is_array() ||
      !cruns->is_array()) {
    std::fprintf(stderr, "reports lack a runs array\n");
    return 2;
  }
  for (const JsonValue& br : bruns->arr) {
    const JsonValue* n = br.Find("name");
    if (n == nullptr) continue;
    const JsonValue* cr = FindRun(*cruns, n->str);
    if (cr == nullptr) {
      st.Fail(n->str + ": run missing from candidate");
      continue;
    }
    DiffRun(&st, n->str, br, *cr);
  }
  for (const JsonValue& cr : cruns->arr) {
    const JsonValue* n = cr.Find("name");
    if (n != nullptr && FindRun(*bruns, n->str) == nullptr) {
      st.Fail(n->str + ": run not in baseline (refresh baselines, see "
              "EXPERIMENTS.md)");
    }
  }

  std::printf("bench_diff: %d hard difference(s), %d warning(s) [%s vs %s]\n",
              st.hard_failures, st.warnings, baseline_path, candidate_path);
  return st.hard_failures > 0 ? 1 : 0;
}
